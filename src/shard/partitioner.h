// Dataset partitioners for the sharded index (src/shard/).
//
// A partitioner splits the n rows of a Dataset into K disjoint shards and
// reports one routing centroid per shard (the mean of the shard's members).
// Three strategies are provided, all deterministic in (data, params, seed):
//
//   kContiguous  rows [s*ceil(n/K), ...) go to shard s. The degenerate but
//                important baseline: with K=1 it reproduces the unsharded
//                index bit-for-bit, and for pre-clustered ingest orders it
//                is free.
//   kRandom      a seeded shuffle dealt into equal chunks. Perfectly
//                balanced, deliberately locality-free — the stress case for
//                routing (every query must probe widely).
//   kKMeans      balanced k-means over a sampled subset: Lloyd iterations
//                on at most `kmeans_sample` sampled rows pick K centroids,
//                then every row is assigned to its nearest centroid that
//                still has capacity (ceil(n/K) * (1 + balance_slack)).
//                This is the Faiss-style IVF partitioning that makes
//                centroid routing effective: nearby vectors land in the
//                same shard, so a few probes recover almost all of recall.
//
// Partitioners read the data through core::DatasetView — ids plus shared
// storage — and never copy base vectors; the only copies made here are the
// K centroid rows. See docs/SHARDING.md.

#ifndef GASS_SHARD_PARTITIONER_H_
#define GASS_SHARD_PARTITIONER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/status.h"
#include "core/types.h"

namespace gass::shard {

enum class PartitionerKind : std::uint8_t {
  kContiguous = 0,
  kRandom = 1,
  kKMeans = 2,
};

/// Lowercase label ("contiguous", "random", "kmeans").
const char* PartitionerKindName(PartitionerKind kind);

/// Inverse of PartitionerKindName; returns false on an unknown label.
bool ParsePartitionerKind(const std::string& name, PartitionerKind* out);

struct PartitionerParams {
  PartitionerKind kind = PartitionerKind::kKMeans;
  std::size_t num_shards = 4;
  /// Rows sampled for the Lloyd iterations (capped at n). Sampling keeps
  /// k-means O(sample * K * iters) instead of O(n * K * iters).
  std::size_t kmeans_sample = 16384;
  std::size_t kmeans_iters = 10;
  /// Per-shard capacity headroom over the perfectly even ceil(n/K):
  /// capacity = ceil(ceil(n/K) * (1 + balance_slack)). 0 forces exact
  /// balance (round-robin overflow), larger values trade balance for
  /// cluster purity.
  double balance_slack = 0.25;
};

/// The result of partitioning one dataset: disjoint, exhaustive shards.
struct Partitioning {
  /// assignment[id] = shard owning global row `id`; size n.
  std::vector<std::uint32_t> assignment;
  /// shard_ids[s] = global ids owned by shard s, ascending; the position of
  /// an id in this list is its shard-local id.
  std::vector<std::vector<core::VectorId>> shard_ids;
  /// K routing centroids: row s is the mean of shard s's members (zero for
  /// an empty shard).
  core::Dataset centroids;
  /// Distances evaluated while partitioning (for BuildStats accounting).
  std::uint64_t distance_computations = 0;

  std::size_t num_shards() const { return shard_ids.size(); }

  /// Zero-copy view of shard `s`'s rows inside `base` (which must be the
  /// dataset this partitioning was computed over).
  core::DatasetView ShardView(const core::Dataset& base, std::size_t s) const;
};

/// Partitions `data` into `params.num_shards` shards. Deterministic in
/// (data, params, seed); shards are disjoint and cover every row. num_shards
/// must be >= 1 and <= data.size() (unless the dataset is empty).
Partitioning Partition(const core::Dataset& data,
                       const PartitionerParams& params, std::uint64_t seed);

/// Recomputes the member-mean centroids for a given assignment — used by
/// the snapshot loader to cross-validate a manifest's stored centroids.
core::Dataset ComputeCentroids(const core::Dataset& data,
                               const std::vector<std::vector<core::VectorId>>&
                                   shard_ids);

}  // namespace gass::shard

#endif  // GASS_SHARD_PARTITIONER_H_
