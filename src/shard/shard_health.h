// Per-shard health tracking for the sharded serve path: a deterministic
// circuit breaker per shard.
//
// The breaker is the classic three-state machine (closed → open →
// half-open), but every transition is driven by counters, never by wall
// time, so a fixed query stream reproduces the exact same trip/probe/
// recovery sequence on every run — which is what makes the fault suite
// (tests/shard/shard_fault_test.cc) assertable:
//
//   closed:    sub-searches run normally. `failure_threshold` consecutive
//              failures trip the shard to open.
//   open:      routing skips the shard (the query substitutes the next
//              nearest centroid instead of failing); every
//              `probe_period`-th routing decision that considers the shard
//              is granted a half-open probe.
//   half-open: exactly one probe sub-search is in flight. Success closes
//              the breaker (the shard re-enters rotation); failure re-opens
//              it and the probe countdown restarts.
//
// An online reload (ShardedIndex::ReloadShard) does not close the breaker
// directly — it resets the failure count and forces the next routing
// decision to probe, so a recovered shard re-enters rotation through the
// same half-open path a spontaneously-healed shard would.
//
// Thread-safety: all methods are safe to call concurrently; state is a
// per-shard atomic with CAS transitions, so two queries racing to probe a
// half-open shard cannot both win.

#ifndef GASS_SHARD_SHARD_HEALTH_H_
#define GASS_SHARD_SHARD_HEALTH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace gass::shard {

/// Circuit-breaker knobs, per shard. The defaults are conservative: three
/// consecutive failures quarantine a shard, and while open one routing
/// decision in sixteen probes it.
struct ShardBreakerOptions {
  /// Consecutive sub-search failures that trip the breaker. 0 disables the
  /// breaker entirely: every shard is always routed to (failures still
  /// count into stats, they just never quarantine).
  std::uint32_t failure_threshold = 3;
  /// While open, every probe_period-th routing decision that considers the
  /// shard is granted a half-open probe (min 1: every decision probes).
  std::uint64_t probe_period = 16;
};

enum class BreakerState : std::uint8_t {
  kClosed = 0,
  kOpen,
  kHalfOpen,
};

/// Short lowercase label ("closed", "open", "half-open").
const char* BreakerStateName(BreakerState state);

/// What routing should do with a shard (see RouteDecision()).
enum class ShardRoute : std::uint8_t {
  kSearch = 0,  ///< Closed breaker: search normally.
  kProbe,       ///< Half-open probe granted to THIS query: search, and the
                ///< result decides whether the breaker closes or re-opens.
  kSkip,        ///< Open (or probe already in flight): skip the shard.
};

/// One breaker per shard. See the file comment for the state machine.
class ShardHealthTable {
 public:
  ShardHealthTable(std::size_t num_shards, const ShardBreakerOptions& options);

  ShardHealthTable(const ShardHealthTable&) = delete;
  ShardHealthTable& operator=(const ShardHealthTable&) = delete;

  /// Routing-time decision for shard `s`. kSkip increments the skip
  /// counter; kProbe atomically moves the shard open → half-open, so at
  /// most one probe is in flight at a time.
  ShardRoute RouteDecision(std::size_t s);

  /// Outcome of one sub-search attempt against shard `s` (primary, hedge,
  /// or half-open probe — the first attempt to resolve the shard reports).
  /// Returns true when this call tripped the breaker closed → open, so the
  /// caller can kick off recovery exactly once per trip.
  bool OnResult(std::size_t s, bool ok);

  /// A granted half-open probe was never executed (the query's deadline
  /// expired first): release the half-open state back to open so a later
  /// query can probe, without counting a failure against the shard.
  void OnProbeAbandoned(std::size_t s);

  /// A fresh copy of shard `s` was successfully reloaded from its
  /// snapshot: reset the failure count, bump the generation, and force the
  /// next routing decision to grant a half-open probe. Does NOT close the
  /// breaker — the shard re-enters rotation only by passing that probe.
  void OnReloaded(std::size_t s);

  bool enabled() const { return options_.failure_threshold != 0; }
  std::size_t num_shards() const { return num_shards_; }

  BreakerState state(std::size_t s) const {
    return shards_[s].state.load(std::memory_order_acquire);
  }
  std::uint32_t consecutive_failures(std::size_t s) const {
    return shards_[s].consecutive_failures.load(std::memory_order_relaxed);
  }
  /// Reload generation of shard `s` (starts at 0, +1 per OnReloaded()).
  std::uint64_t generation(std::size_t s) const {
    return shards_[s].generation.load(std::memory_order_relaxed);
  }

  /// Lifetime transition counters (for metrics / bench reporting).
  std::uint64_t trips() const {
    return trips_.load(std::memory_order_relaxed);
  }
  std::uint64_t recoveries() const {
    return recoveries_.load(std::memory_order_relaxed);
  }
  std::uint64_t probes_granted() const {
    return probes_.load(std::memory_order_relaxed);
  }
  std::uint64_t skips() const {
    return skips_.load(std::memory_order_relaxed);
  }

  /// One-line human summary, e.g.
  /// "breaker: 7/8 closed, 1 open | trips 1 recoveries 0 probes 12 skips 840".
  std::string Summary() const;

 private:
  struct alignas(64) Shard {
    std::atomic<BreakerState> state{BreakerState::kClosed};
    std::atomic<std::uint32_t> consecutive_failures{0};
    /// Routing decisions that considered this shard while open; drives the
    /// every-Nth probe cadence.
    std::atomic<std::uint64_t> open_ticks{0};
    /// Set by OnReloaded(): the next routing decision probes immediately.
    std::atomic<bool> force_probe{false};
    std::atomic<std::uint64_t> generation{0};
  };

  ShardBreakerOptions options_;
  std::size_t num_shards_;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<std::uint64_t> trips_{0};
  std::atomic<std::uint64_t> recoveries_{0};
  std::atomic<std::uint64_t> probes_{0};
  std::atomic<std::uint64_t> skips_{0};
};

}  // namespace gass::shard

#endif  // GASS_SHARD_SHARD_HEALTH_H_
