// Per-replica health tracking for the sharded serve path: a deterministic
// circuit breaker per (shard, replica) slot.
//
// The breaker is the classic three-state machine (closed → open →
// half-open), but every transition is driven by counters, never by wall
// time, so a fixed query stream reproduces the exact same trip/probe/
// recovery sequence on every run — which is what makes the fault suite
// (tests/shard/shard_fault_test.cc) assertable:
//
//   closed:    sub-searches run normally. `failure_threshold` consecutive
//              failures trip the slot to open.
//   open:      routing skips the slot (the query fails over to another
//              replica of the same shard, or — with no replica left — to
//              the next nearest centroid); every `probe_period`-th routing
//              decision that considers the slot is granted a half-open
//              probe.
//   half-open: exactly one probe sub-search is in flight. Success closes
//              the breaker (the replica re-enters rotation); failure
//              re-opens it and the probe countdown restarts.
//
// An online reload (ShardedIndex::ReloadShard / RebuildReplica) does not
// close the breaker directly — it resets the failure count and forces the
// next routing decision to probe, so a recovered replica re-enters
// rotation through the same half-open path a spontaneously-healed one
// would. The anti-entropy scrubber quarantines a divergent replica by
// forcing its breaker open (Quarantine()).
//
// The table is constructed with a replication factor R; the single-index
// case is simply R = 1, and the (shard)-only method overloads below are
// exact aliases for replica 0 so unreplicated callers read naturally.
//
// Thread-safety: all methods are safe to call concurrently; state is a
// per-slot atomic with CAS transitions, so two queries racing to probe a
// half-open replica cannot both win.

#ifndef GASS_SHARD_SHARD_HEALTH_H_
#define GASS_SHARD_SHARD_HEALTH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace gass::shard {

/// Circuit-breaker knobs, per (shard, replica) slot. The defaults are
/// conservative: three consecutive failures quarantine a replica, and
/// while open one routing decision in sixteen probes it.
struct ShardBreakerOptions {
  /// Consecutive sub-search failures that trip the breaker. 0 disables the
  /// breaker entirely: every replica is always routed to (failures still
  /// count into stats, they just never quarantine).
  std::uint32_t failure_threshold = 3;
  /// While open, every probe_period-th routing decision that considers the
  /// slot is granted a half-open probe (min 1: every decision probes).
  std::uint64_t probe_period = 16;
};

enum class BreakerState : std::uint8_t {
  kClosed = 0,
  kOpen,
  kHalfOpen,
};

/// Short lowercase label ("closed", "open", "half-open").
const char* BreakerStateName(BreakerState state);

/// What routing should do with a (shard, replica) slot (see
/// RouteDecision()).
enum class ShardRoute : std::uint8_t {
  kSearch = 0,  ///< Closed breaker: search normally.
  kProbe,       ///< Half-open probe granted to THIS query: search, and the
                ///< result decides whether the breaker closes or re-opens.
  kSkip,        ///< Open (or probe already in flight): skip the slot.
};

/// One breaker per (shard, replica). See the file comment for the state
/// machine.
class ShardHealthTable {
 public:
  /// Unreplicated table: one slot per shard (replication factor 1).
  ShardHealthTable(std::size_t num_shards, const ShardBreakerOptions& options);
  /// Replicated table: num_shards * num_replicas slots (num_replicas is
  /// clamped to a minimum of 1).
  ShardHealthTable(std::size_t num_shards, std::size_t num_replicas,
                   const ShardBreakerOptions& options);

  ShardHealthTable(const ShardHealthTable&) = delete;
  ShardHealthTable& operator=(const ShardHealthTable&) = delete;

  /// Routing-time decision for replica `r` of shard `s`. kSkip increments
  /// the skip counter; kProbe atomically moves the slot open → half-open,
  /// so at most one probe is in flight at a time.
  ShardRoute RouteDecision(std::size_t s, std::size_t r);
  ShardRoute RouteDecision(std::size_t s) { return RouteDecision(s, 0); }

  /// Outcome of one sub-search attempt against replica `r` of shard `s`
  /// (primary, failover, hedge, or half-open probe — the first attempt to
  /// resolve the slot reports). Returns true when this call tripped the
  /// breaker closed → open, so the caller can kick off recovery exactly
  /// once per trip.
  bool OnResult(std::size_t s, std::size_t r, bool ok);
  bool OnResult(std::size_t s, bool ok) { return OnResult(s, 0, ok); }

  /// A granted half-open probe was never executed (the query's deadline
  /// expired first): release the half-open state back to open so a later
  /// query can probe, without counting a failure against the replica.
  void OnProbeAbandoned(std::size_t s, std::size_t r);
  void OnProbeAbandoned(std::size_t s) { OnProbeAbandoned(s, 0); }

  /// A fresh copy of replica `r` of shard `s` was successfully reloaded
  /// (from its snapshot or copied from a healthy peer replica): reset the
  /// failure count, bump the generation, and force the next routing
  /// decision to grant a half-open probe. Does NOT close the breaker — the
  /// replica re-enters rotation only by passing that probe.
  void OnReloaded(std::size_t s, std::size_t r);
  void OnReloaded(std::size_t s) { OnReloaded(s, 0); }

  /// Forces the slot's breaker open regardless of its current state — the
  /// anti-entropy scrubber's verdict on a divergent replica. Counts into
  /// quarantines() (and trips() when the slot was not already open). With
  /// the breaker disabled (failure_threshold == 0) this only counts: a
  /// disabled table never routes around anything.
  void Quarantine(std::size_t s, std::size_t r);

  bool enabled() const { return options_.failure_threshold != 0; }
  std::size_t num_shards() const { return num_shards_; }
  std::size_t num_replicas() const { return num_replicas_; }

  BreakerState state(std::size_t s, std::size_t r) const {
    return slot(s, r).state.load(std::memory_order_acquire);
  }
  BreakerState state(std::size_t s) const { return state(s, 0); }
  std::uint32_t consecutive_failures(std::size_t s, std::size_t r) const {
    return slot(s, r).consecutive_failures.load(std::memory_order_relaxed);
  }
  std::uint32_t consecutive_failures(std::size_t s) const {
    return consecutive_failures(s, 0);
  }
  /// Reload generation of the slot (starts at 0, +1 per OnReloaded()).
  std::uint64_t generation(std::size_t s, std::size_t r) const {
    return slot(s, r).generation.load(std::memory_order_relaxed);
  }
  std::uint64_t generation(std::size_t s) const { return generation(s, 0); }
  /// True when a forced probe (OnReloaded()) is pending on the slot: the
  /// next routing decision that considers it is granted a half-open probe.
  /// Replica selection steers one query at such a slot — health ranking
  /// alone would starve a rebuilt replica forever, because open slots rank
  /// last and are never routed to while a healthy peer exists.
  bool probe_pending(std::size_t s, std::size_t r) const {
    return slot(s, r).force_probe.load(std::memory_order_relaxed);
  }

  /// Lifetime transition counters (for metrics / bench reporting).
  std::uint64_t trips() const {
    return trips_.load(std::memory_order_relaxed);
  }
  std::uint64_t recoveries() const {
    return recoveries_.load(std::memory_order_relaxed);
  }
  std::uint64_t probes_granted() const {
    return probes_.load(std::memory_order_relaxed);
  }
  std::uint64_t skips() const {
    return skips_.load(std::memory_order_relaxed);
  }
  /// Quarantine() calls (scrubber-forced trips).
  std::uint64_t quarantines() const {
    return quarantines_.load(std::memory_order_relaxed);
  }

  /// One-line human summary over all slots, e.g.
  /// "breaker: 7/8 closed, 1 open | trips 1 recoveries 0 probes 12 skips
  /// 840". With replication the slot count is num_shards * num_replicas.
  std::string Summary() const;

 private:
  struct alignas(64) Slot {
    std::atomic<BreakerState> state{BreakerState::kClosed};
    std::atomic<std::uint32_t> consecutive_failures{0};
    /// Routing decisions that considered this slot while open; drives the
    /// every-Nth probe cadence.
    std::atomic<std::uint64_t> open_ticks{0};
    /// Set by OnReloaded(): the next routing decision probes immediately.
    std::atomic<bool> force_probe{false};
    std::atomic<std::uint64_t> generation{0};
  };

  Slot& slot(std::size_t s, std::size_t r) const {
    return slots_[s * num_replicas_ + r];
  }

  ShardBreakerOptions options_;
  std::size_t num_shards_;
  std::size_t num_replicas_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> trips_{0};
  std::atomic<std::uint64_t> recoveries_{0};
  std::atomic<std::uint64_t> probes_{0};
  std::atomic<std::uint64_t> skips_{0};
  std::atomic<std::uint64_t> quarantines_{0};
};

}  // namespace gass::shard

#endif  // GASS_SHARD_SHARD_HEALTH_H_
