// ShardedIndex: K per-shard graph indexes behind one GraphIndex facade.
//
// Build partitions the dataset into K shards (see shard/partitioner.h),
// builds one sub-index of any factory method per shard — in parallel on a
// core::ThreadPool, each shard with a deterministic derived seed — and
// keeps one routing centroid per shard. Search routes each query to the
// `nprobe` nearest centroids, fans a beam search out to those shards
// (parallel on an internal pool, or on the caller thread), and merges the
// per-shard top-k into one global result carrying correct global VectorIds.
//
// Why shard: graph builds are superlinear in n, so K builds of n/K rows
// each — run concurrently — cut build wall-clock by far more than K-way
// parallelism alone; and centroid routing turns a well-clustered partition
// into an accuracy knob (nprobe) that trades recall for per-query work,
// exactly the IVF idea transplanted onto graph indexes. With K=1 and the
// contiguous partitioner the facade is bit-identical to the unsharded
// index (same seed, same data order, same graph). See docs/SHARDING.md.
//
// Thread-safety matches the library contract: Build once, then the const
// three-argument Search may run concurrently from many threads
// (SupportsConcurrentSearch() is true); per-query scratch for sub-searches
// comes from an internal context freelist sized to the largest shard.
//
// Persistence: SaveSnapshot writes a checksummed manifest snapshot at
// `path` (partitioner state, assignment, centroids, per-shard file
// hashes) plus one ordinary index snapshot per shard at
// ShardPath(path, s). LoadSnapshot validates everything — including
// semantic cross-checks that survive a resealed checksum — before any
// shard is searched.

#ifndef GASS_SHARD_SHARDED_INDEX_H_
#define GASS_SHARD_SHARDED_INDEX_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/thread_pool.h"
#include "methods/graph_index.h"
#include "serve/request.h"
#include "shard/partitioner.h"
#include "shard/replica_set.h"
#include "shard/shard_health.h"

namespace gass::serve {
class FaultInjector;  // serve/fault_injector.h; the header only carries a
                      // pointer so shard/ stays light to include.
}  // namespace gass::serve

namespace gass::shard {

struct HedgeState;  // Heap-shared fan-out state (sharded_index.cc).

struct ShardedIndexOptions {
  /// Factory name of the per-shard method (lowercase, e.g. "hnsw").
  std::string method = "hnsw";
  PartitionerParams partitioner;
  /// Shards probed per query: the nprobe nearest routing centroids.
  /// 0 = probe every shard. Query-time knob (excluded from the params
  /// fingerprint); adjustable after build via SetNprobe().
  std::size_t nprobe = 0;
  /// Threads for the parallel shard builds; 0 = hardware concurrency.
  std::size_t build_threads = 0;
  /// Threads for parallel per-query fan-out; 0 = fan out on the caller
  /// thread (the right choice when an outer executor already runs one
  /// query per thread).
  std::size_t fanout_threads = 0;
  /// Base seed. Shard s's sub-index is built with seed ^ (mix * s), so
  /// shard 0 of a K=1 index uses exactly `seed` (bit-identity baseline).
  std::uint64_t seed = 42;
  /// Replication factor R: copies of every shard's sub-index, all built by
  /// the same factory with the same derived seed, so replicas are
  /// bit-identical and any of them answers any query identically. Search
  /// routes each probe to a health-chosen replica and fails over to peers
  /// on failure; the anti-entropy scrubber (ScrubReplicas) compares
  /// replica digests and rebuilds divergent copies online. 0 or 1 = no
  /// replication (the exact pre-replication code path). A serving knob
  /// like nprobe: excluded from the params fingerprint, so snapshots load
  /// under any R.
  std::size_t replicas = 1;
  /// Per-shard circuit breaker (see shard/shard_health.h). The default
  /// trips a shard after 3 consecutive sub-search failures; threshold 0
  /// disables quarantining entirely.
  ShardBreakerOptions breaker;
  /// Hedged fan-out: after this fraction of the query's remaining deadline
  /// budget elapses with shards still outstanding, launch one backup
  /// sub-search per outstanding shard on the fanout pool and take the
  /// first result per shard. 0 (default) disables hedging and keeps the
  /// classic fan-out path (bit-identical to previous behavior). Requires a
  /// deadline and fanout_threads > 0 to take effect.
  double hedge_fraction = 0.0;
};

/// Outcome of one anti-entropy scrub pass over every replica (see
/// ShardedIndex::ScrubReplicas).
struct ScrubReport {
  std::size_t replicas_checked = 0;
  /// Replicas whose digest disagreed with their shard's majority.
  std::size_t divergent = 0;
  /// Divergent replicas quarantined (breaker forced open).
  std::size_t quarantined = 0;
  /// Quarantined replicas rebuilt online this pass.
  std::size_t rebuilt = 0;
  std::size_t rebuild_failures = 0;
};

/// K per-shard indexes + centroid routing, behind the GraphIndex interface.
class ShardedIndex : public methods::GraphIndex {
 public:
  explicit ShardedIndex(const ShardedIndexOptions& options);
  ~ShardedIndex() override;

  /// "SHARDED:<METHOD>" (e.g. "SHARDED:HNSW").
  std::string Name() const override;

  methods::BuildStats Build(const core::Dataset& data) override;

  methods::SearchResult Search(const float* query,
                               const methods::SearchParams& params) override;
  methods::SearchResult Search(const float* query,
                               const methods::SearchParams& params,
                               methods::SearchContext* ctx) const override;

  /// Request-based entry point (the serve-tier API, usable standalone):
  /// derives the per-query RNG from (seed, admission id), honors the
  /// request deadline, and — when the request carries a trace — records
  /// route / per-shard search / merge spans into it. Thread-safe like the
  /// three-argument Search.
  serve::SearchResponse Search(const serve::SearchRequest& request) const;

  bool SupportsConcurrentSearch() const override { return true; }

  /// No single base graph; check HasBaseGraph() first (as with ELPIS).
  const core::Graph& graph() const override;
  bool HasBaseGraph() const override { return false; }

  std::size_t IndexBytes() const override;

  /// Hash of (method, partitioner params, seed, sub-index params); nprobe
  /// and thread counts are query/run-time knobs and excluded.
  std::uint64_t ParamsFingerprint() const override;

  core::Status SaveSnapshot(const std::string& path) const override;
  core::Status LoadSnapshot(const std::string& path,
                            const core::Dataset& data) override;

  const ShardedIndexOptions& options() const { return options_; }
  std::size_t num_shards() const { return shards_.size(); }
  /// The nprobe a search will actually use: options clamped to [1, K].
  std::size_t EffectiveNprobe() const;
  /// Adjusts nprobe after build (for sweeps). Not thread-safe against
  /// concurrent searches.
  void SetNprobe(std::size_t nprobe) { options_.nprobe = nprobe; }
  /// Re-sizes the per-query fan-out pool after build/load (0 = fan out on
  /// the caller thread). Not thread-safe against concurrent searches.
  void SetFanoutThreads(std::size_t threads);
  /// Adjusts the hedge trigger after build/load (see
  /// ShardedIndexOptions::hedge_fraction). Not thread-safe against
  /// concurrent searches.
  void SetHedgeFraction(double fraction) { options_.hedge_fraction = fraction; }
  /// Attaches (or detaches, with null) a fault injector whose
  /// ShardFaultPlan entries drive deterministic shard-level faults: slow
  /// sub-searches, failing sub-searches (injected as exceptions inside the
  /// fan-out worker, exercising the same path a real failure takes), and
  /// corrupt reloads. The injector is shared with — and outlived by rules
  /// of — the serve tier; not thread-safe against concurrent searches.
  void SetFaultInjector(serve::FaultInjector* faults) { faults_ = faults; }
  /// Replaces the breaker configuration (resets all breaker state). Not
  /// thread-safe against concurrent searches.
  void SetBreakerOptions(const ShardBreakerOptions& breaker);

  /// Per-shard breaker state + transition counters (valid after
  /// Build/LoadSnapshot).
  const ShardHealthTable& health() const;

  // --- Online shard recovery (see docs/SHARDING.md "Failure semantics") ---

  /// Synchronously re-loads shard `s` from its snapshot file
  /// (ShardPath(recovery_snapshot(), s)), swapping the fresh sub-index in
  /// under that shard's lock while concurrent searches continue on every
  /// other shard. On success the breaker's failure count resets and the
  /// next routing decision probes the shard (half-open), so it re-enters
  /// rotation only by passing that probe. On failure (missing/corrupt
  /// file, injected corruption) the shard keeps serving its old state —
  /// quarantined if the breaker was open. Requires a recovery snapshot
  /// path: recorded automatically by LoadSnapshot, or set explicitly after
  /// Build + SaveSnapshot via SetRecoverySnapshot.
  core::Status ReloadShard(std::size_t s);

  /// Rebuilds one replica of shard `s` online: a fresh sub-index is
  /// restored from the recovery snapshot when one is recorded, otherwise
  /// copied from a healthy peer replica via a spill snapshot (serialized
  /// under the peer's reader lock, re-validated on load), then swapped in
  /// under replica `r`'s writer lock while searches continue everywhere
  /// else. On success the replica's breaker generation bumps and its next
  /// routing decision is a forced half-open probe (OnReloaded) — it
  /// re-enters rotation only by passing that probe. With R == 1 and no
  /// snapshot there is no peer to copy from and the call fails.
  core::Status RebuildReplica(std::size_t s, std::size_t r);

  /// One synchronous anti-entropy pass: digests every replica of every
  /// shard (XXH64 over the adjacency, under the replica's reader lock),
  /// quarantines any replica whose digest diverges from its shard's
  /// majority, and — when `rebuild` is true — rebuilds each quarantined
  /// replica via RebuildReplica. Safe to run concurrently with searches;
  /// not with a second scrub. With R == 1 there is no majority to compare
  /// against and the pass only counts replicas.
  ScrubReport ScrubReplicas(bool rebuild = true);

  /// Launches ReloadShard(s) on a background thread. Returns false (and
  /// does nothing) when a reload of that shard is already in flight. The
  /// thread's Status is discarded — the breaker state tells the story —
  /// so use ReloadShard directly when the caller needs the error.
  bool StartShardReload(std::size_t s);

  /// Joins every background reload launched so far (tests and shutdown).
  void WaitForReloads();

  /// Manifest path used for per-shard reloads; LoadSnapshot records it.
  void SetRecoverySnapshot(const std::string& path) { snapshot_path_ = path; }
  const std::string& recovery_snapshot() const { return snapshot_path_; }

  /// Partition state (valid after Build/LoadSnapshot).
  const Partitioning& partitioning() const { return partitioning_; }
  const methods::GraphIndex& shard(std::size_t s) const;
  /// Replication factor actually in effect (>= 1; valid after
  /// Build/LoadSnapshot).
  std::size_t num_replicas() const { return num_replicas_; }
  /// Replica `r` of shard `s` (replica(s, 0) == shard(s)).
  const methods::GraphIndex& replica(std::size_t s, std::size_t r) const;
  std::size_t shard_size(std::size_t s) const;
  /// Sub-searches dispatched to shard `s` since build/load (relaxed).
  std::uint64_t probe_count(std::size_t s) const;

  /// Build-time breakdown (valid after Build; empty after LoadSnapshot).
  /// partition_seconds() + max(shard_build_seconds()) is the parallel
  /// critical path: the build wall-clock on a machine with >= K free
  /// cores, where every shard constructs concurrently.
  double partition_seconds() const { return partition_seconds_; }
  const std::vector<double>& shard_build_seconds() const {
    return shard_build_seconds_;
  }

  /// Seed shard `s`'s sub-index is constructed with (s = 0 yields `seed`).
  static std::uint64_t SubIndexSeed(std::uint64_t seed, std::size_t s);

  /// Path of shard s's snapshot file: "<path>.shard<s>".
  static std::string ShardPath(const std::string& path, std::size_t s);

 private:
  /// Outcome of one shard probe after replica failover (see
  /// SearchShardReplicas).
  struct ProbeOutcome {
    bool ok = false;
    /// Replica that resolved the probe (the last one attempted).
    std::uint32_t replica = 0;
    /// Failed attempts retried on a peer replica.
    std::size_t failovers = 0;
    methods::SearchResult result;
  };

  methods::SearchResult SearchImpl(const float* query,
                                   const methods::SearchParams& params,
                                   core::Rng* rng) const;
  /// One shard sub-search with replica failover: attempts `first_replica`,
  /// and on failure retries the next routable replica of the same shard
  /// while the deadline allows, feeding every failed attempt to that
  /// replica's breaker. The final success is reported to the breaker only
  /// when `report_final` (the hedged path reports it from the winner
  /// instead, so racing attempts cannot double-report).
  void SearchShardReplicas(std::uint32_t s, std::uint32_t first_replica,
                           const float* query,
                           const methods::SearchParams& sub_params,
                           std::uint64_t attempt_seed,
                           const core::Deadline* deadline,
                           std::uint32_t attempt, bool report_final,
                           obs::QueryTrace* trace, ProbeOutcome* out) const;
  /// One sub-search attempt of the hedged fan-out (attempt 0 = primary,
  /// 1 = backup, racing a different replica when R > 1); runs on the
  /// fanout pool, resolves its slot via a winner CAS, and touches only
  /// `state` plus immutable/thread-safe members so an abandoned straggler
  /// stays harmless after its query returns.
  void RunHedgedAttempt(const std::shared_ptr<HedgeState>& state,
                        std::size_t idx, int attempt) const;
  /// LoadSnapshot body; the wrapper resets this index to the unbuilt state
  /// when any step fails, so a rejected snapshot never leaves a
  /// half-loaded, searchable index behind.
  core::Status LoadSnapshotImpl(const std::string& path,
                                const core::Dataset& data);
  /// Pops a pooled sub-search context (sized for the largest shard) or
  /// creates one.
  std::unique_ptr<methods::SearchContext> AcquireContext() const;
  void ReleaseContext(std::unique_ptr<methods::SearchContext> ctx) const;
  /// Common post-partition state setup (context sizing, fan-out pool,
  /// probe counters).
  void FinishInit(const core::Dataset& data);

  ShardedIndexOptions options_;
  Partitioning partitioning_;
  /// Materialized per-shard rows; each sub-index binds to its entry, so
  /// these must live exactly as long as shards_.
  std::vector<core::Dataset> shard_data_;
  /// One ReplicaSet per shard; replica 0 is the historic sub-index.
  std::vector<ReplicaSet> shards_;
  /// options_.replicas clamped to >= 1 (resolved by FinishInit).
  std::size_t num_replicas_ = 1;
  std::size_t max_shard_size_ = 0;
  double partition_seconds_ = 0.0;
  std::vector<double> shard_build_seconds_;

  std::unique_ptr<core::ThreadPool> fanout_pool_;
  /// Serial-path context backing the two-argument Search.
  std::unique_ptr<methods::SearchContext> serial_ctx_;

  mutable std::mutex ctx_mutex_;
  mutable std::vector<std::unique_ptr<methods::SearchContext>> ctx_pool_;

  /// One relaxed counter per shard (array: std::atomic is not movable).
  std::unique_ptr<std::atomic<std::uint64_t>[]> probe_counts_;

  /// Per-(shard, replica) circuit breakers (constructed by FinishInit).
  /// Replica pointer swaps are guarded inside each ReplicaSet (per-replica
  /// reader/writer locks).
  std::unique_ptr<ShardHealthTable> health_;
  /// Optional shard-level fault injector (not owned; see SetFaultInjector).
  serve::FaultInjector* faults_ = nullptr;
  /// Manifest path for per-shard recovery reloads ("" = none recorded).
  std::string snapshot_path_;

  std::mutex reload_mutex_;
  std::vector<std::thread> reload_threads_;     // Guarded by reload_mutex_.
  std::vector<std::uint8_t> reload_inflight_;   // Guarded by reload_mutex_.
};

/// Opens the sharded manifest at `path`, reconstructs a ShardedIndex with
/// the method and partitioner recorded in it (plus the given base `seed`,
/// verified against the stored params fingerprint), and loads every shard.
/// The counterpart of methods::LoadAnyIndex for sharded snapshots.
core::Status LoadShardedIndex(const std::string& path,
                              const core::Dataset& data, std::uint64_t seed,
                              std::unique_ptr<ShardedIndex>* out);

/// As above, but attaches `replicas` copies of each shard to the loaded
/// snapshot (replication is a serving knob, not a snapshot property: every
/// replica loads from the same per-shard file). `replicas == 0` means 1.
core::Status LoadShardedIndex(const std::string& path,
                              const core::Dataset& data, std::uint64_t seed,
                              std::size_t replicas,
                              std::unique_ptr<ShardedIndex>* out);

/// True when the snapshot at `path` is a sharded manifest (method name
/// "SHARDED:..."), letting CLIs pick the right loader without parsing.
bool IsShardedSnapshotMethod(const std::string& method);

}  // namespace gass::shard

#endif  // GASS_SHARD_SHARDED_INDEX_H_
