// ReplicaSet: R bit-identical copies of one shard's sub-index, plus the
// replica-level primitives the replicated serve path is built from.
//
// Replication here leans on a property most systems have to pay quorums
// for: every replica of shard s is constructed by the same factory with
// the same derived seed (ShardedIndex::SubIndexSeed), so replicas are
// bit-identical by construction — the same graph, the same neighbor
// order, the same answers. That buys three things:
//
//   * Failover is free of consistency questions. Any replica answers any
//     query identically, so health-aware routing (PickReplica) and
//     mid-query failover never change results, only availability.
//   * Anti-entropy is a digest comparison. ReplicaDigest folds a replica's
//     adjacency into one XXH64 value; a replica whose digest diverges from
//     the shard majority (MajorityDigest) has been corrupted — there is no
//     legitimate divergence to distinguish from.
//   * Rebuild is copy-from-peer. A quarantined replica is restored from
//     any healthy peer's serialized state (or the shard snapshot), swapped
//     in under the replica's writer lock while searches continue on the
//     other replicas.
//
// Thread-safety: each replica slot has its own shared_mutex. Search() and
// Digest() hold it shared; SwapIn() holds it exclusive. Set() is
// init-time only (no locking; callers serialize construction).

#ifndef GASS_SHARD_REPLICA_SET_H_
#define GASS_SHARD_REPLICA_SET_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/graph.h"
#include "core/status.h"
#include "methods/graph_index.h"
#include "shard/shard_health.h"

namespace gass::shard {

/// XXH64 digest of a graph's full adjacency structure: vertex count, then
/// per-vertex degree and neighbor ids, chained. Any single-bit change to
/// any neighbor list changes the digest.
std::uint64_t GraphDigest(const core::Graph& graph);

/// Digest of one replica's searchable structure: GraphDigest of its base
/// graph. Indexes without a single base graph (HasBaseGraph() false)
/// digest to a fixed sentinel, so scrubbing degenerates to a no-op for
/// them instead of a false alarm.
std::uint64_t ReplicaDigest(const methods::GraphIndex& index);

/// The digest held by the largest group of replicas; ties break toward the
/// lowest replica index holding a tied digest, so the verdict is
/// deterministic. Precondition: digests is non-empty.
std::uint64_t MajorityDigest(const std::vector<std::uint64_t>& digests);

/// Health-aware power-of-two replica choice for shard `s`: draws two
/// deterministic candidates from `key` (a per-query value), peeks their
/// breaker slots, and returns the healthier one — closed beats half-open
/// beats open; ties break toward fewer consecutive failures, then toward
/// the first draw. A candidate with a forced probe pending (a replica just
/// rebuilt, see ShardHealthTable::probe_pending) wins outright, so the
/// rebuilt replica receives the probe that re-admits it instead of being
/// starved by the ranking. Never consumes a routing decision (callers
/// route the
/// returned replica through ShardHealthTable::RouteDecision themselves).
/// num_replicas == 1 always returns 0.
std::size_t PickReplica(std::uint64_t key, std::size_t s,
                        std::size_t num_replicas,
                        const ShardHealthTable& health);

/// R replicas of one shard's sub-index, each behind its own reader/writer
/// lock so a single replica can be swapped (rebuild) or inspected (scrub)
/// while searches continue on the others.
class ReplicaSet {
 public:
  ReplicaSet() = default;
  explicit ReplicaSet(std::size_t num_replicas)
      : replicas_(num_replicas),
        locks_(std::make_unique<std::shared_mutex[]>(num_replicas)) {}

  ReplicaSet(ReplicaSet&&) = default;
  ReplicaSet& operator=(ReplicaSet&&) = default;
  ReplicaSet(const ReplicaSet&) = delete;
  ReplicaSet& operator=(const ReplicaSet&) = delete;

  std::size_t size() const { return replicas_.size(); }

  /// Installs a freshly built replica (init-time; not thread-safe).
  void Set(std::size_t r, std::unique_ptr<methods::GraphIndex> index) {
    replicas_[r] = std::move(index);
  }

  /// The replica itself (valid once Set; callers must not mutate it while
  /// searches run — rebuilds go through SwapIn).
  const methods::GraphIndex& replica(std::size_t r) const {
    return *replicas_[r];
  }

  /// Searches replica `r` under its reader lock.
  methods::SearchResult Search(std::size_t r, const float* query,
                               const methods::SearchParams& params,
                               methods::SearchContext* ctx) const {
    std::shared_lock<std::shared_mutex> lock(locks_[r]);
    return replicas_[r]->Search(query, params, ctx);
  }

  /// Anti-entropy digest of replica `r`, under its reader lock.
  std::uint64_t Digest(std::size_t r) const {
    std::shared_lock<std::shared_mutex> lock(locks_[r]);
    return ReplicaDigest(*replicas_[r]);
  }

  /// Serializes replica `r` to `path` under its reader lock (the
  /// copy-from-healthy-peer half of a rebuild).
  core::Status Save(std::size_t r, const std::string& path) const {
    std::shared_lock<std::shared_mutex> lock(locks_[r]);
    return methods::SaveIndex(*replicas_[r], path);
  }

  /// Swaps a fresh sub-index into slot `r` under its writer lock;
  /// in-flight searches on the old replica finish first (they hold the
  /// reader side), searches on other replicas are unaffected.
  void SwapIn(std::size_t r, std::unique_ptr<methods::GraphIndex> fresh) {
    std::unique_lock<std::shared_mutex> lock(locks_[r]);
    replicas_[r] = std::move(fresh);
  }

  /// Summed footprint of all replicas.
  std::size_t IndexBytes() const {
    std::size_t total = 0;
    for (const std::unique_ptr<methods::GraphIndex>& r : replicas_) {
      if (r != nullptr) total += r->IndexBytes();
    }
    return total;
  }

 private:
  std::vector<std::unique_ptr<methods::GraphIndex>> replicas_;
  std::unique_ptr<std::shared_mutex[]> locks_;
};

}  // namespace gass::shard

#endif  // GASS_SHARD_REPLICA_SET_H_
