#include "shard/shard_health.h"

#include <cstdio>

namespace gass::shard {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

ShardHealthTable::ShardHealthTable(std::size_t num_shards,
                                   const ShardBreakerOptions& options)
    : options_(options),
      num_shards_(num_shards),
      shards_(std::make_unique<Shard[]>(num_shards)) {}

ShardRoute ShardHealthTable::RouteDecision(std::size_t s) {
  if (!enabled()) return ShardRoute::kSearch;
  Shard& shard = shards_[s];
  const BreakerState state = shard.state.load(std::memory_order_acquire);
  if (state == BreakerState::kClosed) return ShardRoute::kSearch;
  if (state == BreakerState::kOpen) {
    bool want_probe = false;
    if (shard.force_probe.load(std::memory_order_relaxed)) {
      bool expected = true;
      want_probe = shard.force_probe.compare_exchange_strong(
          expected, false, std::memory_order_relaxed);
    }
    if (!want_probe) {
      const std::uint64_t period =
          options_.probe_period == 0 ? 1 : options_.probe_period;
      const std::uint64_t tick =
          shard.open_ticks.fetch_add(1, std::memory_order_relaxed) + 1;
      want_probe = tick % period == 0;
    }
    if (want_probe) {
      BreakerState expected = BreakerState::kOpen;
      if (shard.state.compare_exchange_strong(expected, BreakerState::kHalfOpen,
                                              std::memory_order_acq_rel)) {
        probes_.fetch_add(1, std::memory_order_relaxed);
        return ShardRoute::kProbe;
      }
    }
  }
  // Open without a probe grant, or half-open with a probe already in
  // flight: the query routes around the shard.
  skips_.fetch_add(1, std::memory_order_relaxed);
  return ShardRoute::kSkip;
}

bool ShardHealthTable::OnResult(std::size_t s, bool ok) {
  if (!enabled()) return false;
  Shard& shard = shards_[s];
  if (ok) {
    shard.consecutive_failures.store(0, std::memory_order_relaxed);
    // A success always closes the breaker: the normal case is a half-open
    // probe passing; the rare case is an in-flight search that outlived a
    // trip and proved the shard healthy after all.
    const BreakerState prev =
        shard.state.exchange(BreakerState::kClosed, std::memory_order_acq_rel);
    if (prev != BreakerState::kClosed) {
      recoveries_.fetch_add(1, std::memory_order_relaxed);
    }
    return false;
  }
  const BreakerState state = shard.state.load(std::memory_order_acquire);
  if (state == BreakerState::kHalfOpen) {
    // The probe failed: back to open, and the probe countdown restarts so
    // the next probe is a full probe_period away.
    shard.open_ticks.store(0, std::memory_order_relaxed);
    shard.state.store(BreakerState::kOpen, std::memory_order_release);
    return false;
  }
  const std::uint32_t failures =
      shard.consecutive_failures.fetch_add(1, std::memory_order_relaxed) + 1;
  if (failures >= options_.failure_threshold) {
    BreakerState expected = BreakerState::kClosed;
    if (shard.state.compare_exchange_strong(expected, BreakerState::kOpen,
                                            std::memory_order_acq_rel)) {
      shard.open_ticks.store(0, std::memory_order_relaxed);
      trips_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ShardHealthTable::OnProbeAbandoned(std::size_t s) {
  BreakerState expected = BreakerState::kHalfOpen;
  shards_[s].state.compare_exchange_strong(expected, BreakerState::kOpen,
                                           std::memory_order_acq_rel);
}

void ShardHealthTable::OnReloaded(std::size_t s) {
  Shard& shard = shards_[s];
  shard.consecutive_failures.store(0, std::memory_order_relaxed);
  shard.generation.fetch_add(1, std::memory_order_relaxed);
  shard.force_probe.store(true, std::memory_order_relaxed);
}

std::string ShardHealthTable::Summary() const {
  std::size_t closed = 0, open = 0, half_open = 0;
  for (std::size_t s = 0; s < num_shards_; ++s) {
    switch (state(s)) {
      case BreakerState::kClosed:
        ++closed;
        break;
      case BreakerState::kOpen:
        ++open;
        break;
      case BreakerState::kHalfOpen:
        ++half_open;
        break;
    }
  }
  char buffer[192];
  std::snprintf(buffer, sizeof(buffer),
                "breaker: %zu/%zu closed, %zu open, %zu half-open | "
                "trips %llu recoveries %llu probes %llu skips %llu",
                closed, num_shards_, open, half_open,
                static_cast<unsigned long long>(trips()),
                static_cast<unsigned long long>(recoveries()),
                static_cast<unsigned long long>(probes_granted()),
                static_cast<unsigned long long>(skips()));
  return std::string(buffer);
}

}  // namespace gass::shard
