#include "shard/shard_health.h"

#include <cstdio>

namespace gass::shard {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

ShardHealthTable::ShardHealthTable(std::size_t num_shards,
                                   const ShardBreakerOptions& options)
    : ShardHealthTable(num_shards, 1, options) {}

ShardHealthTable::ShardHealthTable(std::size_t num_shards,
                                   std::size_t num_replicas,
                                   const ShardBreakerOptions& options)
    : options_(options),
      num_shards_(num_shards),
      num_replicas_(num_replicas == 0 ? 1 : num_replicas),
      slots_(std::make_unique<Slot[]>(num_shards_ * num_replicas_)) {}

ShardRoute ShardHealthTable::RouteDecision(std::size_t s, std::size_t r) {
  if (!enabled()) return ShardRoute::kSearch;
  Slot& slot_ref = slot(s, r);
  const BreakerState state = slot_ref.state.load(std::memory_order_acquire);
  if (state == BreakerState::kClosed) return ShardRoute::kSearch;
  if (state == BreakerState::kOpen) {
    bool want_probe = false;
    if (slot_ref.force_probe.load(std::memory_order_relaxed)) {
      bool expected = true;
      want_probe = slot_ref.force_probe.compare_exchange_strong(
          expected, false, std::memory_order_relaxed);
    }
    if (!want_probe) {
      const std::uint64_t period =
          options_.probe_period == 0 ? 1 : options_.probe_period;
      const std::uint64_t tick =
          slot_ref.open_ticks.fetch_add(1, std::memory_order_relaxed) + 1;
      want_probe = tick % period == 0;
    }
    if (want_probe) {
      BreakerState expected = BreakerState::kOpen;
      if (slot_ref.state.compare_exchange_strong(expected,
                                                 BreakerState::kHalfOpen,
                                                 std::memory_order_acq_rel)) {
        probes_.fetch_add(1, std::memory_order_relaxed);
        return ShardRoute::kProbe;
      }
    }
  }
  // Open without a probe grant, or half-open with a probe already in
  // flight: the query routes around the slot.
  skips_.fetch_add(1, std::memory_order_relaxed);
  return ShardRoute::kSkip;
}

bool ShardHealthTable::OnResult(std::size_t s, std::size_t r, bool ok) {
  if (!enabled()) return false;
  Slot& slot_ref = slot(s, r);
  if (ok) {
    slot_ref.consecutive_failures.store(0, std::memory_order_relaxed);
    // A success always closes the breaker: the normal case is a half-open
    // probe passing; the rare case is an in-flight search that outlived a
    // trip and proved the replica healthy after all.
    const BreakerState prev = slot_ref.state.exchange(
        BreakerState::kClosed, std::memory_order_acq_rel);
    if (prev != BreakerState::kClosed) {
      recoveries_.fetch_add(1, std::memory_order_relaxed);
    }
    return false;
  }
  const BreakerState state = slot_ref.state.load(std::memory_order_acquire);
  if (state == BreakerState::kHalfOpen) {
    // The probe failed: back to open, and the probe countdown restarts so
    // the next probe is a full probe_period away.
    slot_ref.open_ticks.store(0, std::memory_order_relaxed);
    slot_ref.state.store(BreakerState::kOpen, std::memory_order_release);
    return false;
  }
  const std::uint32_t failures =
      slot_ref.consecutive_failures.fetch_add(1, std::memory_order_relaxed) +
      1;
  if (failures >= options_.failure_threshold) {
    BreakerState expected = BreakerState::kClosed;
    if (slot_ref.state.compare_exchange_strong(expected, BreakerState::kOpen,
                                               std::memory_order_acq_rel)) {
      slot_ref.open_ticks.store(0, std::memory_order_relaxed);
      trips_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ShardHealthTable::OnProbeAbandoned(std::size_t s, std::size_t r) {
  BreakerState expected = BreakerState::kHalfOpen;
  slot(s, r).state.compare_exchange_strong(expected, BreakerState::kOpen,
                                           std::memory_order_acq_rel);
}

void ShardHealthTable::OnReloaded(std::size_t s, std::size_t r) {
  Slot& slot_ref = slot(s, r);
  slot_ref.consecutive_failures.store(0, std::memory_order_relaxed);
  slot_ref.generation.fetch_add(1, std::memory_order_relaxed);
  slot_ref.force_probe.store(true, std::memory_order_relaxed);
}

void ShardHealthTable::Quarantine(std::size_t s, std::size_t r) {
  quarantines_.fetch_add(1, std::memory_order_relaxed);
  if (!enabled()) return;
  Slot& slot_ref = slot(s, r);
  const BreakerState prev =
      slot_ref.state.exchange(BreakerState::kOpen, std::memory_order_acq_rel);
  if (prev != BreakerState::kOpen) {
    slot_ref.open_ticks.store(0, std::memory_order_relaxed);
    trips_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::string ShardHealthTable::Summary() const {
  std::size_t closed = 0, open = 0, half_open = 0;
  const std::size_t total = num_shards_ * num_replicas_;
  for (std::size_t i = 0; i < total; ++i) {
    switch (slots_[i].state.load(std::memory_order_acquire)) {
      case BreakerState::kClosed:
        ++closed;
        break;
      case BreakerState::kOpen:
        ++open;
        break;
      case BreakerState::kHalfOpen:
        ++half_open;
        break;
    }
  }
  char buffer[192];
  std::snprintf(buffer, sizeof(buffer),
                "breaker: %zu/%zu closed, %zu open, %zu half-open | "
                "trips %llu recoveries %llu probes %llu skips %llu",
                closed, total, open, half_open,
                static_cast<unsigned long long>(trips()),
                static_cast<unsigned long long>(recoveries()),
                static_cast<unsigned long long>(probes_granted()),
                static_cast<unsigned long long>(skips()));
  return std::string(buffer);
}

}  // namespace gass::shard
