#include "shard/partitioner.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "core/distance.h"
#include "core/macros.h"
#include "core/rng.h"

namespace gass::shard {

namespace {

using core::Dataset;
using core::DatasetView;
using core::VectorId;

/// ceil(n / k) for k > 0.
std::size_t CeilDiv(std::size_t n, std::size_t k) { return (n + k - 1) / k; }

void AssignContiguous(std::size_t n, std::size_t num_shards,
                      std::vector<std::uint32_t>* assignment) {
  const std::size_t chunk = CeilDiv(n, num_shards);
  for (std::size_t i = 0; i < n; ++i) {
    (*assignment)[i] = static_cast<std::uint32_t>(i / chunk);
  }
}

void AssignRandom(std::size_t n, std::size_t num_shards, std::uint64_t seed,
                  std::vector<std::uint32_t>* assignment) {
  // Seeded Fisher-Yates shuffle dealt into equal contiguous chunks: shard
  // sizes differ by at most one, membership is uniform.
  std::vector<VectorId> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<VectorId>(i);
  core::Rng rng(seed);
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.UniformInt(i));
    std::swap(order[i - 1], order[j]);
  }
  const std::size_t chunk = CeilDiv(n, num_shards);
  for (std::size_t pos = 0; pos < n; ++pos) {
    (*assignment)[order[pos]] = static_cast<std::uint32_t>(pos / chunk);
  }
}

/// Samples `count` distinct row ids (ascending) via a partial Fisher-Yates
/// over the id range.
std::vector<VectorId> SampleIds(std::size_t n, std::size_t count,
                                core::Rng* rng) {
  std::vector<VectorId> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<VectorId>(i);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng->UniformInt(n - i));
    std::swap(ids[i], ids[j]);
  }
  ids.resize(count);
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// Lloyd iterations over a zero-copy sample view; returns K centroid rows.
/// Centers are seeded k-means++-lite: the first is a random sample row, each
/// next is the sampled row farthest from its nearest chosen center
/// (deterministic, no weighted draw needed at this fidelity).
Dataset LloydOverSample(const DatasetView& sample, std::size_t k,
                        std::size_t iters, core::Rng* rng,
                        std::uint64_t* dist_count) {
  const std::size_t m = sample.size();
  const std::size_t dim = sample.dim();
  GASS_CHECK(m >= k && k > 0);

  Dataset centers(k, dim);
  std::vector<float> nearest(m, std::numeric_limits<float>::max());
  std::size_t first = static_cast<std::size_t>(rng->UniformInt(m));
  std::memcpy(centers.MutableRow(0), sample.Row(first), dim * sizeof(float));
  for (std::size_t c = 1; c < k; ++c) {
    std::size_t farthest = 0;
    float farthest_dist = -1.0f;
    for (std::size_t i = 0; i < m; ++i) {
      const float d = core::L2Sq(sample.Row(i), centers.Row(
                                     static_cast<VectorId>(c - 1)), dim);
      ++*dist_count;
      if (d < nearest[i]) nearest[i] = d;
      if (nearest[i] > farthest_dist) {
        farthest_dist = nearest[i];
        farthest = i;
      }
    }
    std::memcpy(centers.MutableRow(static_cast<VectorId>(c)),
                sample.Row(farthest), dim * sizeof(float));
  }

  std::vector<std::uint32_t> member(m, 0);
  std::vector<double> sum(k * dim);
  std::vector<std::size_t> count(k);
  for (std::size_t it = 0; it < iters; ++it) {
    bool moved = false;
    for (std::size_t i = 0; i < m; ++i) {
      std::uint32_t best = 0;
      float best_dist = std::numeric_limits<float>::max();
      for (std::size_t c = 0; c < k; ++c) {
        const float d =
            core::L2Sq(sample.Row(i), centers.Row(static_cast<VectorId>(c)),
                       dim);
        ++*dist_count;
        if (d < best_dist) {
          best_dist = d;
          best = static_cast<std::uint32_t>(c);
        }
      }
      if (member[i] != best) moved = true;
      member[i] = best;
    }
    std::fill(sum.begin(), sum.end(), 0.0);
    std::fill(count.begin(), count.end(), 0);
    for (std::size_t i = 0; i < m; ++i) {
      const float* row = sample.Row(i);
      double* acc = sum.data() + member[i] * dim;
      for (std::size_t d = 0; d < dim; ++d) acc[d] += row[d];
      ++count[member[i]];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (count[c] == 0) continue;  // Empty cluster keeps its old center.
      float* row = centers.MutableRow(static_cast<VectorId>(c));
      const double inv = 1.0 / static_cast<double>(count[c]);
      for (std::size_t d = 0; d < dim; ++d) {
        row[d] = static_cast<float>(sum[c * dim + d] * inv);
      }
    }
    if (!moved) break;
  }
  return centers;
}

/// Assigns every row to its nearest centroid with remaining capacity.
/// Processing in ascending id order makes the overflow handling (spill to
/// the next-nearest open shard) deterministic.
void AssignBalancedKMeans(const Dataset& data, const Dataset& centers,
                          std::size_t capacity,
                          std::vector<std::uint32_t>* assignment,
                          std::uint64_t* dist_count) {
  const std::size_t n = data.size();
  const std::size_t k = centers.size();
  const std::size_t dim = data.dim();
  std::vector<std::size_t> fill(k, 0);
  std::vector<std::pair<float, std::uint32_t>> ranked(k);
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = data.Row(static_cast<VectorId>(i));
    for (std::size_t c = 0; c < k; ++c) {
      ranked[c] = {core::L2Sq(row, centers.Row(static_cast<VectorId>(c)), dim),
                   static_cast<std::uint32_t>(c)};
    }
    *dist_count += k;
    std::sort(ranked.begin(), ranked.end());
    std::uint32_t chosen = ranked.back().second;  // Fallback: least-near.
    for (const auto& [dist, c] : ranked) {
      (void)dist;
      if (fill[c] < capacity) {
        chosen = c;
        break;
      }
    }
    (*assignment)[i] = chosen;
    ++fill[chosen];
  }
}

}  // namespace

const char* PartitionerKindName(PartitionerKind kind) {
  switch (kind) {
    case PartitionerKind::kContiguous: return "contiguous";
    case PartitionerKind::kRandom: return "random";
    case PartitionerKind::kKMeans: return "kmeans";
  }
  return "unknown";
}

bool ParsePartitionerKind(const std::string& name, PartitionerKind* out) {
  if (name == "contiguous") {
    *out = PartitionerKind::kContiguous;
    return true;
  }
  if (name == "random") {
    *out = PartitionerKind::kRandom;
    return true;
  }
  if (name == "kmeans") {
    *out = PartitionerKind::kKMeans;
    return true;
  }
  return false;
}

core::DatasetView Partitioning::ShardView(const core::Dataset& base,
                                          std::size_t s) const {
  GASS_CHECK(s < shard_ids.size());
  return core::DatasetView(base, shard_ids[s]);
}

core::Dataset ComputeCentroids(
    const core::Dataset& data,
    const std::vector<std::vector<core::VectorId>>& shard_ids) {
  const std::size_t k = shard_ids.size();
  const std::size_t dim = data.dim();
  Dataset centroids(k, dim);
  std::vector<double> acc(dim);
  for (std::size_t s = 0; s < k; ++s) {
    std::fill(acc.begin(), acc.end(), 0.0);
    for (const VectorId id : shard_ids[s]) {
      const float* row = data.Row(id);
      for (std::size_t d = 0; d < dim; ++d) acc[d] += row[d];
    }
    float* out = centroids.MutableRow(static_cast<VectorId>(s));
    const double inv =
        shard_ids[s].empty() ? 0.0 : 1.0 / static_cast<double>(shard_ids[s].size());
    for (std::size_t d = 0; d < dim; ++d) {
      out[d] = static_cast<float>(acc[d] * inv);
    }
  }
  return centroids;
}

Partitioning Partition(const core::Dataset& data,
                       const PartitionerParams& params, std::uint64_t seed) {
  const std::size_t n = data.size();
  const std::size_t k = params.num_shards;
  GASS_CHECK_MSG(k >= 1, "num_shards must be >= 1");
  GASS_CHECK_MSG(n == 0 || k <= n,
                 "num_shards (%zu) exceeds dataset size (%zu)", k, n);

  Partitioning out;
  out.assignment.assign(n, 0);
  out.shard_ids.assign(k, {});

  if (n > 0) {
    switch (params.kind) {
      case PartitionerKind::kContiguous:
        AssignContiguous(n, k, &out.assignment);
        break;
      case PartitionerKind::kRandom:
        AssignRandom(n, k, seed, &out.assignment);
        break;
      case PartitionerKind::kKMeans: {
        core::Rng rng(seed);
        const std::size_t sample_count =
            std::max(k, std::min(params.kmeans_sample, n));
        const Dataset centers = LloydOverSample(
            core::DatasetView(data, SampleIds(n, sample_count, &rng)), k,
            params.kmeans_iters, &rng, &out.distance_computations);
        double slack = params.balance_slack < 0 ? 0.0 : params.balance_slack;
        const std::size_t capacity = std::max<std::size_t>(
            CeilDiv(n, k),
            static_cast<std::size_t>(
                static_cast<double>(CeilDiv(n, k)) * (1.0 + slack) + 0.999999));
        AssignBalancedKMeans(data, centers, capacity, &out.assignment,
                             &out.distance_computations);
        break;
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    out.shard_ids[out.assignment[i]].push_back(static_cast<VectorId>(i));
  }
  // Routing centroids are always the means of the *final* members, so they
  // describe the shards actually searched (not the Lloyd centers, which the
  // balance cap may have diverged from).
  out.centroids = ComputeCentroids(data, out.shard_ids);
  return out;
}

}  // namespace gass::shard
