// LiveIndex over a centroid-routed collection of streaming HNSW shards.
//
// The sharded sibling of serve::LiveHnsw: the base dataset is partitioned
// once at build time (shard::Partition), each shard gets its own
// fixed-capacity arena + HnswIndex built over its base rows, and live
// inserts route to the nearest-centroid shard with arena room — each
// shard is one WAL stream, so an id's insert (and its later delete, via
// RouteDelete = owning shard) is logged in that shard's log and per-stream
// replay order is sufficient for recovery.
//
// Searches rank the shard centroids against the query, probe the top
// `nprobe` shards' indexes serially, map shard-local results to global
// ids, and merge — the same routing/merge shape as shard::ShardedIndex,
// minus its serving armor (breakers, hedging, fan-out pools): this class
// is the *mutable* data plane, and layering it under shard::ShardedIndex's
// fault machinery is future work, not silently half-done here.
//
// Implements both methods::GraphIndex (the searchable face handed to
// serve::Frontend) and serve::LiveIndex (the update face handed to
// serve::Updater).

#ifndef GASS_SHARD_LIVE_SHARDED_INDEX_H_
#define GASS_SHARD_LIVE_SHARDED_INDEX_H_

#include <memory>
#include <vector>

#include "core/dataset.h"
#include "methods/hnsw_index.h"
#include "serve/live_index.h"
#include "shard/partitioner.h"

namespace gass::shard {

struct LiveShardedOptions {
  std::size_t num_shards = 4;
  /// Shards probed per query, best-centroid first (0 = all shards).
  std::size_t nprobe = 0;
  /// Arena headroom per shard: live inserts a shard accepts beyond its
  /// base rows.
  std::size_t reserve_per_shard = 1024;
  /// Replicas per shard (clamped to >= 1). All replicas of a shard share
  /// one arena and are built/extended with identical parameters, so they
  /// stay bit-identical; a serving knob, excluded from the params
  /// fingerprint (checkpoints are replica-oblivious).
  std::size_t replicas = 1;
  methods::HnswParams hnsw;
  PartitionerParams partitioner;
  std::uint64_t seed = 42;
};

class LiveShardedIndex : public methods::GraphIndex, public serve::LiveIndex {
 public:
  explicit LiveShardedIndex(const LiveShardedOptions& options);

  /// An unbuilt shell for checkpoint loading; LoadSections() restores the
  /// shards with base rows re-materialized from `base` (which must be the
  /// dataset the original Build ran over, alive until LoadSections
  /// returns).
  static std::unique_ptr<LiveShardedIndex> Shell(
      const core::Dataset& base, const LiveShardedOptions& options);

  // --- methods::GraphIndex ---

  std::string Name() const override { return "LIVE-SHARDED-HNSW"; }
  methods::BuildStats Build(const core::Dataset& data) override;
  methods::SearchResult Search(const float* query,
                               const methods::SearchParams& params) override;
  methods::SearchResult Search(const float* query,
                               const methods::SearchParams& params,
                               methods::SearchContext* ctx) const override;
  bool SupportsConcurrentSearch() const override { return true; }
  bool HasBaseGraph() const override { return false; }
  const core::Graph& graph() const override;
  std::size_t IndexBytes() const override;
  /// Sized by the largest shard arena: sub-searches run over shard-local
  /// id ranges, never the global one.
  methods::SearchContext MakeSearchContext(
      std::uint64_t seed) const override;
  std::uint64_t ParamsFingerprint() const override;

  using methods::GraphIndex::LoadSections;
  using methods::GraphIndex::SaveSections;

  // --- serve::LiveIndex ---

  const methods::GraphIndex& SearchIndex() const override { return *this; }
  methods::GraphIndex* MutableSearchIndex() override { return this; }
  std::string MethodName() const override { return Name(); }
  std::size_t dim() const override { return dim_; }
  std::size_t id_capacity() const override { return owner_.size(); }
  std::size_t next_id() const override { return next_id_; }
  std::uint32_t num_streams() const override {
    return static_cast<std::uint32_t>(shards_.size());
  }
  std::uint32_t RouteInsert(const float* vec) const override;
  std::uint32_t RouteDelete(core::VectorId id) const override;
  bool CanInsert(std::uint32_t stream) const override;
  bool Exists(core::VectorId id) const override;
  core::Status ApplyInsert(std::uint32_t stream, core::VectorId id,
                           const float* vec) override;
  core::Status SaveSections(io::SnapshotWriter* writer) const override;
  core::Status LoadSections(const io::SnapshotReader& reader) override;

  const methods::HnswIndex& shard_index(std::size_t s) const {
    return *shards_[s]->replicas.front();
  }
  /// Replica `r` of shard `s` (bit-identical to replica 0 by construction;
  /// exposed so tests can assert exactly that).
  const methods::HnswIndex& shard_replica(std::size_t s, std::size_t r) const {
    return *shards_[s]->replicas[r];
  }
  std::size_t num_replicas() const { return num_replicas_; }
  const std::vector<core::VectorId>& shard_global_ids(std::size_t s) const {
    return shards_[s]->global_ids;
  }

 private:
  static constexpr std::uint32_t kNoOwner = ~std::uint32_t{0};

  struct Shard {
    Shard(const methods::HnswParams& params, std::size_t num_replicas) {
      replicas.reserve(num_replicas);
      for (std::size_t r = 0; r < num_replicas; ++r) {
        replicas.push_back(std::make_unique<methods::HnswIndex>(params));
      }
    }
    core::Dataset arena;
    /// R HNSW graphs over the one shared arena; identical parameters and
    /// insertion order keep them bit-identical, so the WAL logs each
    /// update once per shard and replay regenerates every replica.
    std::vector<std::unique_ptr<methods::HnswIndex>> replicas;
    methods::HnswIndex& primary() { return *replicas.front(); }
    const methods::HnswIndex& primary() const { return *replicas.front(); }
    /// global_ids[local] = global id of the shard's local row `local`.
    std::vector<core::VectorId> global_ids;
    std::size_t base_rows = 0;
  };

  LiveShardedOptions options_;
  std::size_t num_replicas_ = 1;
  const core::Dataset* base_ = nullptr;  ///< Shell-load source.
  std::size_t dim_ = 0;
  std::size_t base_n_ = 0;
  core::Dataset centroids_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// owner_[id] = shard owning global id (kNoOwner = not yet inserted).
  std::vector<std::uint32_t> owner_;
  std::size_t next_id_ = 0;
  /// Lazily created context backing the serial two-argument Search.
  std::unique_ptr<methods::SearchContext> serial_ctx_;
};

}  // namespace gass::shard

#endif  // GASS_SHARD_LIVE_SHARDED_INDEX_H_
