#include "shard/live_sharded_index.h"

#include <algorithm>
#include <cstring>

#include "core/distance.h"
#include "core/macros.h"
#include "io/serialize.h"
#include "methods/fingerprint.h"

namespace gass::shard {

namespace {

void EncodeOptions(io::Encoder* enc, const LiveShardedOptions& options) {
  enc->U64(options.num_shards);
  enc->U64(options.reserve_per_shard);
  methods::EncodeParams(enc, options.hnsw);
  enc->U8(static_cast<std::uint8_t>(options.partitioner.kind));
  enc->U64(options.partitioner.kmeans_sample);
  enc->U64(options.partitioner.kmeans_iters);
  enc->F32(static_cast<float>(options.partitioner.balance_slack));
  enc->U64(options.seed);
}

}  // namespace

LiveShardedIndex::LiveShardedIndex(const LiveShardedOptions& options)
    : options_(options),
      num_replicas_(options.replicas == 0 ? 1 : options.replicas) {
  GASS_CHECK_MSG(options.num_shards >= 1, "need at least one shard");
}

std::unique_ptr<LiveShardedIndex> LiveShardedIndex::Shell(
    const core::Dataset& base, const LiveShardedOptions& options) {
  auto index = std::make_unique<LiveShardedIndex>(options);
  index->base_ = &base;
  // The fingerprint covers base_n_, so the shell must pin it before
  // Updater::Open compares against the checkpoint header.
  index->base_n_ = base.size();
  index->dim_ = base.dim();
  return index;
}

std::uint64_t LiveShardedIndex::ParamsFingerprint() const {
  io::Encoder enc;
  EncodeOptions(&enc, options_);
  enc.U64(base_n_);
  return methods::FingerprintBytes(enc);
}

methods::BuildStats LiveShardedIndex::Build(const core::Dataset& data) {
  GASS_CHECK_MSG(!data.empty(), "LiveShardedIndex needs a non-empty base");
  core::Timer timer;
  methods::BuildStats stats;

  PartitionerParams pparams = options_.partitioner;
  pparams.num_shards = options_.num_shards;
  Partitioning partitioning = Partition(data, pparams, options_.seed);
  stats.distance_computations += partitioning.distance_computations;

  dim_ = data.dim();
  base_n_ = data.size();
  centroids_ = std::move(partitioning.centroids);
  shards_.clear();
  shards_.reserve(options_.num_shards);
  owner_.assign(
      base_n_ + options_.num_shards * options_.reserve_per_shard, kNoOwner);

  for (std::size_t s = 0; s < options_.num_shards; ++s) {
    auto shard = std::make_unique<Shard>(options_.hnsw, num_replicas_);
    shard->global_ids = partitioning.shard_ids[s];
    shard->base_rows = shard->global_ids.size();
    shard->arena = core::Dataset(
        shard->base_rows + options_.reserve_per_shard, dim_);
    for (std::size_t local = 0; local < shard->base_rows; ++local) {
      const core::VectorId gid = shard->global_ids[local];
      owner_[gid] = static_cast<std::uint32_t>(s);
      std::memcpy(shard->arena.MutableRow(static_cast<core::VectorId>(local)),
                  data.Row(gid), dim_ * sizeof(float));
    }
    // Every replica builds over the same arena with the same params, so
    // the graphs come out bit-identical.
    for (auto& replica : shard->replicas) {
      const methods::BuildStats sub =
          replica->BuildPrefix(shard->arena, shard->base_rows);
      stats.distance_computations += sub.distance_computations;
      stats.peak_bytes = std::max(stats.peak_bytes, sub.peak_bytes);
    }
    shards_.push_back(std::move(shard));
  }
  next_id_ = base_n_;
  data_ = &data;

  stats.index_bytes = IndexBytes();
  stats.elapsed_seconds = timer.Seconds();
  return stats;
}

const core::Graph& LiveShardedIndex::graph() const {
  GASS_CHECK_MSG(false,
                 "LIVE-SHARDED-HNSW has no single base graph; "
                 "use shard_index(s).graph()");
  __builtin_unreachable();
}

std::size_t LiveShardedIndex::IndexBytes() const {
  std::size_t total = centroids_.SizeBytes() +
                      owner_.size() * sizeof(std::uint32_t);
  for (const auto& shard : shards_) {
    for (const auto& replica : shard->replicas) {
      total += replica->IndexBytes();
    }
    total += shard->global_ids.size() * sizeof(core::VectorId);
  }
  return total;
}

methods::SearchContext LiveShardedIndex::MakeSearchContext(
    std::uint64_t seed) const {
  std::size_t max_arena = 1;
  for (const auto& shard : shards_) {
    max_arena = std::max(max_arena, shard->arena.size());
  }
  return methods::SearchContext(max_arena, seed);
}

methods::SearchResult LiveShardedIndex::Search(
    const float* query, const methods::SearchParams& params) {
  if (serial_ctx_ == nullptr) {
    serial_ctx_ = std::make_unique<methods::SearchContext>(
        MakeSearchContext(options_.seed));
  }
  return Search(query, params, serial_ctx_.get());
}

methods::SearchResult LiveShardedIndex::Search(
    const float* query, const methods::SearchParams& params,
    methods::SearchContext* ctx) const {
  core::Timer timer;
  methods::SearchResult merged;
  merged.degrade_step = params.degrade_step;
  const std::size_t k_shards = shards_.size();

  // Rank centroids by distance to the query (one computation each).
  std::vector<std::pair<float, std::uint32_t>> ranked(k_shards);
  for (std::size_t s = 0; s < k_shards; ++s) {
    ranked[s] = {core::L2Sq(query, centroids_.Row(
                                       static_cast<core::VectorId>(s)),
                            dim_),
                 static_cast<std::uint32_t>(s)};
  }
  std::sort(ranked.begin(), ranked.end());
  const std::size_t nprobe =
      options_.nprobe == 0 ? k_shards : std::min(options_.nprobe, k_shards);

  // Sub-searches run on shard-LOCAL ids: global-keyed tombstones and the
  // caller's trace must not leak into them (same contract as
  // shard::ShardedIndex).
  methods::SearchParams sub_params = params;
  sub_params.trace = nullptr;
  sub_params.tombstones = nullptr;

  const core::TombstoneSet* tombstones = params.tombstones;
  const bool filter = tombstones != nullptr && !tombstones->empty();
  std::vector<core::Neighbor> all;
  bool expired = false;
  // Replica rotation keyed on the admission id: deterministic (replayed
  // workloads probe the same replicas), spreads load across the
  // bit-identical copies, and consumes no RNG draws, so R = 1 results are
  // byte-for-byte what the unreplicated index returned.
  const std::size_t rep =
      num_replicas_ == 1
          ? 0
          : static_cast<std::size_t>(params.admission_id % num_replicas_);
  for (std::size_t r = 0; r < nprobe; ++r) {
    const std::uint32_t s = ranked[r].second;
    const Shard& shard = *shards_[s];
    const methods::HnswIndex& replica = *shard.replicas[rep];
    if (replica.inserted_count() == 0) continue;
    methods::SearchResult sub = replica.Search(query, sub_params, ctx);
    merged.stats.distance_computations += sub.stats.distance_computations;
    merged.stats.hops += sub.stats.hops;
    merged.stats.prefetches += sub.stats.prefetches;
    if (sub.stats.deadline_expiries > 0) expired = true;
    for (const core::Neighbor& nb : sub.neighbors) {
      const core::VectorId gid = shard.global_ids[nb.id];
      if (filter && tombstones->Contains(gid)) continue;
      all.emplace_back(gid, nb.distance);
    }
    ++merged.stats.shards_probed;
  }
  // Neighbor's operator< is (distance, id): cross-shard ties resolve to
  // the lower global id, independent of probe order.
  std::sort(all.begin(), all.end());
  if (all.size() > params.k) all.resize(params.k);
  merged.neighbors = std::move(all);

  merged.stats.distance_computations += k_shards;  // Centroid ranking.
  merged.expired = expired;
  merged.stats.deadline_expiries = expired ? 1 : 0;
  merged.stats.elapsed_seconds = timer.Seconds();
  return merged;
}

std::uint32_t LiveShardedIndex::RouteInsert(const float* vec) const {
  // Nearest centroid among shards with arena room; a full shard spills to
  // the next-nearest. Falls back to shard 0 when everything is full (the
  // updater's CanInsert check then rejects the insert).
  std::uint32_t best = 0;
  float best_dist = 3.402823466e38f;
  bool found = false;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (!CanInsert(static_cast<std::uint32_t>(s))) continue;
    const float d =
        core::L2Sq(vec, centroids_.Row(static_cast<core::VectorId>(s)), dim_);
    if (!found || d < best_dist) {
      best = static_cast<std::uint32_t>(s);
      best_dist = d;
      found = true;
    }
  }
  return best;
}

std::uint32_t LiveShardedIndex::RouteDelete(core::VectorId id) const {
  GASS_CHECK_MSG(id < owner_.size() && owner_[id] != kNoOwner,
                 "RouteDelete of uninserted id %u", id);
  return owner_[id];
}

bool LiveShardedIndex::CanInsert(std::uint32_t stream) const {
  const Shard& shard = *shards_[stream];
  return shard.primary().inserted_count() < shard.arena.size();
}

bool LiveShardedIndex::Exists(core::VectorId id) const {
  return id < owner_.size() && owner_[id] != kNoOwner;
}

core::Status LiveShardedIndex::ApplyInsert(std::uint32_t stream,
                                           core::VectorId id,
                                           const float* vec) {
  GASS_CHECK_MSG(id == next_id_, "non-dense live insert id %u (next is %zu)",
                 id, next_id_);
  Shard& shard = *shards_[stream];
  const std::size_t local = shard.primary().inserted_count();
  GASS_CHECK_MSG(local < shard.arena.size(),
                 "live insert beyond shard %u arena capacity", stream);
  std::memcpy(shard.arena.MutableRow(static_cast<core::VectorId>(local)), vec,
              dim_ * sizeof(float));
  shard.global_ids.push_back(id);
  owner_[id] = stream;
  // The row lands in the shared arena once; the graph insert applies to
  // every replica in the same sequence order (the WAL logged it once per
  // shard), keeping the replicas bit-identical through live growth.
  for (auto& replica : shard.replicas) {
    replica->Extend(local + 1);
  }
  next_id_ = id + 1;
  return core::Status::Ok();
}

core::Status LiveShardedIndex::SaveSections(io::SnapshotWriter* writer) const {
  io::Encoder meta;
  meta.U64(shards_.size());
  meta.U64(dim_);
  meta.U64(base_n_);
  meta.U64(next_id_);
  meta.U64(options_.reserve_per_shard);
  GASS_RETURN_IF_ERROR(writer->AddSection("live.meta", std::move(meta)));

  io::Encoder centroids;
  io::EncodeDataset(centroids_, &centroids);
  GASS_RETURN_IF_ERROR(
      writer->AddSection("live.centroids", std::move(centroids)));

  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    const std::string prefix = "live.s" + std::to_string(s) + ".";
    const std::size_t inserted = shard.primary().inserted_count();

    io::Encoder smeta;
    smeta.U64(shard.arena.size());
    smeta.U64(shard.base_rows);
    smeta.U64(inserted);
    GASS_RETURN_IF_ERROR(writer->AddSection(prefix + "meta",
                                            std::move(smeta)));

    io::Encoder ids;
    std::vector<std::uint64_t> gids(shard.global_ids.begin(),
                                    shard.global_ids.end());
    ids.VecU64(gids);
    GASS_RETURN_IF_ERROR(writer->AddSection(prefix + "ids", std::move(ids)));

    // Base rows re-materialize from the dataset at load; only live rows
    // (local indices >= base_rows) travel in the checkpoint.
    io::Encoder vectors;
    const std::size_t live_rows = inserted - shard.base_rows;
    if (live_rows > 0) {
      vectors.Bytes(
          shard.arena.Row(static_cast<core::VectorId>(shard.base_rows)),
          live_rows * dim_ * sizeof(float));
    }
    GASS_RETURN_IF_ERROR(writer->AddSection(prefix + "vectors",
                                            std::move(vectors)));

    // Replicas are bit-identical: the checkpoint stores exactly one graph
    // per shard (replica 0), keeping the on-disk format replica-oblivious.
    GASS_RETURN_IF_ERROR(
        shard.primary().SaveSections(writer, prefix + "index."));
  }
  return core::Status::Ok();
}

core::Status LiveShardedIndex::LoadSections(const io::SnapshotReader& reader) {
  GASS_CHECK_MSG(base_ != nullptr,
                 "LoadSections requires a Shell()-constructed index");
  io::AlignedBytes buffer;
  io::Decoder dec(nullptr, 0, "");
  GASS_RETURN_IF_ERROR(reader.OpenSection("live.meta", &buffer, &dec));
  const std::uint64_t num_shards = dec.U64();
  const std::uint64_t dim = dec.U64();
  const std::uint64_t base_n = dec.U64();
  const std::uint64_t next_id = dec.U64();
  const std::uint64_t reserve = dec.U64();
  if (!dec.ExpectEnd()) return dec.status();
  dec.Check(num_shards == options_.num_shards,
            "checkpoint shard count does not match LiveShardedOptions");
  dec.Check(dim == base_->dim(),
            "checkpoint dimension does not match the dataset");
  dec.Check(base_n == base_->size(),
            "checkpoint base row count does not match the dataset");
  dec.Check(reserve == options_.reserve_per_shard,
            "checkpoint reserve does not match LiveShardedOptions");
  if (!dec.ok()) return dec.status();

  dim_ = dim;
  base_n_ = base_n;

  GASS_RETURN_IF_ERROR(reader.OpenSection("live.centroids", &buffer, &dec));
  core::Dataset centroids;
  GASS_RETURN_IF_ERROR(io::DecodeDataset(&dec, &centroids));
  if (!dec.ExpectEnd()) return dec.status();
  dec.Check(centroids.size() == num_shards && centroids.dim() == dim_,
            "checkpoint centroid shape mismatch");
  if (!dec.ok()) return dec.status();

  const std::size_t capacity_total =
      base_n_ + options_.num_shards * options_.reserve_per_shard;
  std::vector<std::uint32_t> owner(capacity_total, kNoOwner);
  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(num_shards);

  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::string prefix = "live.s" + std::to_string(s) + ".";
    GASS_RETURN_IF_ERROR(reader.OpenSection(prefix + "meta", &buffer, &dec));
    const std::uint64_t capacity = dec.U64();
    const std::uint64_t base_rows = dec.U64();
    const std::uint64_t inserted = dec.U64();
    if (!dec.ExpectEnd()) return dec.status();
    dec.Check(capacity == base_rows + options_.reserve_per_shard,
              "shard arena capacity mismatch");
    dec.Check(inserted >= base_rows && inserted <= capacity,
              "shard inserted count out of range");
    if (!dec.ok()) return dec.status();

    std::vector<std::uint64_t> gids;
    GASS_RETURN_IF_ERROR(reader.OpenSection(prefix + "ids", &buffer, &dec));
    dec.VecU64(&gids, capacity);
    if (!dec.ExpectEnd()) return dec.status();
    dec.Check(gids.size() == inserted, "shard id list size mismatch");
    if (!dec.ok()) return dec.status();

    auto shard = std::make_unique<Shard>(options_.hnsw, num_replicas_);
    shard->base_rows = base_rows;
    shard->arena = core::Dataset(capacity, dim_);
    shard->global_ids.reserve(inserted);
    for (std::size_t local = 0; local < gids.size(); ++local) {
      const std::uint64_t gid = gids[local];
      dec.Check(gid < capacity_total, "shard global id out of range");
      dec.Check(local >= base_rows || gid < base_n_,
                "shard base row maps beyond the base dataset");
      if (!dec.ok()) return dec.status();
      if (gid < capacity_total && owner[gid] != kNoOwner) {
        return core::Status::Corruption(
            "global id " + std::to_string(gid) + " owned by two shards");
      }
      owner[gid] = static_cast<std::uint32_t>(s);
      shard->global_ids.push_back(static_cast<core::VectorId>(gid));
      if (local < base_rows) {
        std::memcpy(
            shard->arena.MutableRow(static_cast<core::VectorId>(local)),
            base_->Row(static_cast<core::VectorId>(gid)),
            dim_ * sizeof(float));
      }
    }

    const std::size_t live_rows = inserted - base_rows;
    GASS_RETURN_IF_ERROR(
        reader.OpenSection(prefix + "vectors", &buffer, &dec));
    if (live_rows > 0) {
      dec.Bytes(shard->arena.MutableRow(static_cast<core::VectorId>(base_rows)),
                live_rows * dim_ * sizeof(float));
    }
    if (!dec.ExpectEnd()) return dec.status();

    // Every replica attaches from the same checkpoint sections (the graph
    // is stored once per shard; replicas are bit-identical), each getting
    // its own in-memory copy.
    for (auto& replica : shard->replicas) {
      GASS_RETURN_IF_ERROR(
          replica->LoadSections(reader, prefix + "index.", shard->arena));
      if (replica->inserted_count() != inserted) {
        return core::Status::Corruption(
            "shard " + std::to_string(s) + " restored " +
            std::to_string(replica->inserted_count()) +
            " nodes, checkpoint recorded " + std::to_string(inserted));
      }
    }
    shards.push_back(std::move(shard));
  }

  centroids_ = std::move(centroids);
  shards_ = std::move(shards);
  owner_ = std::move(owner);
  next_id_ = next_id;
  data_ = base_;
  serial_ctx_.reset();
  return core::Status::Ok();
}

}  // namespace gass::shard
