#include "shard/replica_set.h"

#include "io/hash.h"

namespace gass::shard {

namespace {

/// SplitMix64 finalizer: full-avalanche mix for the candidate draws.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Lower is healthier; drives the power-of-two comparison.
int StateRank(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return 0;
    case BreakerState::kHalfOpen:
      return 1;
    case BreakerState::kOpen:
      return 2;
  }
  return 3;
}

}  // namespace

std::uint64_t GraphDigest(const core::Graph& graph) {
  const std::uint64_t n = graph.size();
  std::uint64_t h = io::Hash64(&n, sizeof(n), /*seed=*/0);
  for (core::VectorId v = 0; v < graph.size(); ++v) {
    const std::vector<core::VectorId>& neighbors = graph.Neighbors(v);
    const std::uint64_t degree = neighbors.size();
    h = io::Hash64(&degree, sizeof(degree), h);
    if (!neighbors.empty()) {
      h = io::Hash64(neighbors.data(),
                     neighbors.size() * sizeof(core::VectorId), h);
    }
  }
  return h;
}

std::uint64_t ReplicaDigest(const methods::GraphIndex& index) {
  // No single base graph (e.g. ELPIS sub-indexes): nothing comparable to
  // digest, so every replica reports the same sentinel and the scrubber
  // sees agreement rather than phantom divergence.
  if (!index.HasBaseGraph()) return 0x5245504C4943ULL;  // "REPLIC"
  return GraphDigest(index.graph());
}

std::uint64_t MajorityDigest(const std::vector<std::uint64_t>& digests) {
  std::size_t best = 0;
  std::size_t best_count = 0;
  for (std::size_t i = 0; i < digests.size(); ++i) {
    std::size_t count = 0;
    for (std::size_t j = 0; j < digests.size(); ++j) {
      if (digests[j] == digests[i]) ++count;
    }
    // Strict > keeps the earliest replica holding a maximal group, so the
    // verdict is independent of scan order.
    if (count > best_count) {
      best = i;
      best_count = count;
    }
  }
  return digests[best];
}

std::size_t PickReplica(std::uint64_t key, std::size_t s,
                        std::size_t num_replicas,
                        const ShardHealthTable& health) {
  if (num_replicas <= 1) return 0;
  const std::uint64_t mixed =
      Mix64(key ^ (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(s) + 1)));
  const std::size_t a = static_cast<std::size_t>(mixed % num_replicas);
  std::size_t b = static_cast<std::size_t>((mixed >> 32) % num_replicas);
  if (b == a) b = (a + 1) % num_replicas;
  // A freshly rebuilt replica sits open with a forced probe pending; pure
  // health ranking would starve it forever (open ranks last, so it is
  // never routed to while a peer stays healthy). Steering the draw at a
  // probe-pending candidate hands exactly one query to RouteDecision's
  // probe CAS; the grant clears the flag and selection reverts to ranking.
  if (health.probe_pending(s, a)) return a;
  if (health.probe_pending(s, b)) return b;
  const int rank_a = StateRank(health.state(s, a));
  const int rank_b = StateRank(health.state(s, b));
  if (rank_a != rank_b) return rank_a < rank_b ? a : b;
  const std::uint32_t fail_a = health.consecutive_failures(s, a);
  const std::uint32_t fail_b = health.consecutive_failures(s, b);
  if (fail_a != fail_b) return fail_a < fail_b ? a : b;
  return a;
}

}  // namespace gass::shard
