#include "shard/sharded_index.h"

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "core/distance.h"
#include "core/macros.h"
#include "core/stats.h"
#include "io/hash.h"
#include "obs/trace.h"
#include "io/serialize.h"
#include "io/snapshot.h"
#include "methods/factory.h"
#include "methods/fingerprint.h"
#include "serve/fault_injector.h"

namespace gass::shard {

/// One sub-search attempt's outcome within the hedged fan-out.
struct HedgeAttempt {
  methods::SearchResult result;
  /// Offsets from HedgeState::timer, for the coordinator's trace spans.
  double start = 0.0;
  double duration = 0.0;
  bool failed = false;
  /// Deadline already expired when the attempt started; nothing ran.
  bool skipped = false;
  /// Replica failovers this attempt performed, and the replica that
  /// finally resolved it (for the winner's breaker report).
  std::size_t failovers = 0;
  std::uint32_t final_replica = 0;
};

/// One selected shard of a hedged fan-out: up to two attempts (primary and
/// hedged backup), resolved by whichever finishes its winner CAS first.
struct HedgeSlot {
  std::uint32_t shard = 0;
  /// Replica the routing stage chose; the backup attempt starts from the
  /// next replica in the ring so the hedge races different hardware state
  /// when R > 1.
  std::uint32_t replica = 0;
  bool probe_granted = false;
  HedgeAttempt attempts[2];
  /// Index of the attempt that resolved the slot (-1 = still outstanding).
  /// The release CAS publishes that attempt's fields to the coordinator.
  std::atomic<int> winner{-1};
  std::atomic<bool> hedged{false};
};

/// Heap-shared state of one hedged fan-out, kept alive by shared_ptr so an
/// abandoned straggler — a sub-search the query stopped waiting for at its
/// deadline — can finish harmlessly on the pool after the caller's stack
/// frame (query vector, deadline, result slots) is long gone. Everything a
/// straggler touches lives here or is an immutable/thread-safe index
/// member.
struct HedgeState {
  std::vector<float> query;          // Own copy; the caller's may vanish.
  core::Deadline deadline;           // Own copy, referenced by sub_params.
  methods::SearchParams sub_params;  // trace nulled, deadline = &deadline.
  std::uint64_t query_seed = 0;
  std::vector<HedgeSlot> slots;
  core::Timer timer;                 // Attempt-offset origin.

  std::mutex mutex;
  std::condition_variable cv;
  std::size_t unresolved = 0;        // Guarded by mutex.
};

namespace {

/// Golden-ratio odd multiplier (same mix constant as core::Rng).
constexpr std::uint64_t kSeedMix = 0x9E3779B97F4A7C15ULL;
/// Seed for the per-shard whole-file hashes stored in the manifest.
constexpr std::uint64_t kShardFileHashSeed = 0x53484152ULL;  // "SHAR"
/// Decode-time sanity cap on shard counts (far above anything sensible).
constexpr std::uint64_t kMaxShards = 1ULL << 20;

constexpr char kManifestSection[] = "sharded.manifest";
constexpr char kAssignmentSection[] = "sharded.assignment";
constexpr char kCentroidsSection[] = "sharded.centroids";
constexpr char kMethodPrefix[] = "SHARDED:";

core::Status ReadFileBytes(const std::string& path,
                           std::vector<std::uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return core::Status::IoError("cannot open " + path);
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) return core::Status::IoError("cannot stat " + path);
  out->resize(static_cast<std::size_t>(size));
  in.seekg(0, std::ios::beg);
  if (size > 0) {
    in.read(reinterpret_cast<char*>(out->data()), size);
  }
  if (!in) return core::Status::IoError("cannot read " + path);
  return core::Status::Ok();
}

bool IsKnownMethod(const std::string& name) {
  for (const std::string& known : methods::AllMethodNames()) {
    if (known == name) return true;
  }
  return false;
}

}  // namespace

bool IsShardedSnapshotMethod(const std::string& method) {
  return method.rfind(kMethodPrefix, 0) == 0;
}

ShardedIndex::ShardedIndex(const ShardedIndexOptions& options)
    : options_(options) {
  GASS_CHECK_MSG(IsKnownMethod(options_.method),
                 "unknown sub-index method '%s'", options_.method.c_str());
  GASS_CHECK_MSG(options_.partitioner.num_shards >= 1,
                 "num_shards must be >= 1");
}

ShardedIndex::~ShardedIndex() {
  // Ordering matters: background reloads touch shards_/health_, and
  // abandoned hedge stragglers on the fan-out pool touch the context pool,
  // probe counters, and breakers — all of which are destroyed before
  // fanout_pool_ (declaration order). Drain both worlds explicitly while
  // every member is still alive.
  WaitForReloads();
  if (fanout_pool_ != nullptr) fanout_pool_->Shutdown();
}

std::string ShardedIndex::Name() const {
  std::string name = kMethodPrefix;
  for (const char c : options_.method) {
    name.push_back(
        static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
  return name;
}

std::uint64_t ShardedIndex::SubIndexSeed(std::uint64_t seed, std::size_t s) {
  // s == 0 yields `seed` itself, so a K=1 sharded build constructs its one
  // sub-index exactly as the unsharded CreateIndex(method, seed) would —
  // the foundation of the bit-identity guarantee.
  return seed ^ (kSeedMix * static_cast<std::uint64_t>(s));
}

std::string ShardedIndex::ShardPath(const std::string& path, std::size_t s) {
  return path + ".shard" + std::to_string(s);
}

std::uint64_t ShardedIndex::ParamsFingerprint() const {
  io::Encoder enc;
  enc.Str("sharded");
  enc.Str(options_.method);
  enc.U8(static_cast<std::uint8_t>(options_.partitioner.kind));
  enc.U64(options_.partitioner.num_shards);
  enc.U64(options_.partitioner.kmeans_sample);
  enc.U64(options_.partitioner.kmeans_iters);
  enc.F64(options_.partitioner.balance_slack);
  enc.U64(options_.seed);
  // Fold in the sub-method's own parameter fingerprint (a prototype is
  // enough: every shard uses the same construction knobs, only the seed
  // mix differs and the base seed is already encoded above).
  enc.U64(methods::CreateIndex(options_.method,
                               SubIndexSeed(options_.seed, 0))
              ->ParamsFingerprint());
  return methods::FingerprintBytes(enc);
}

methods::BuildStats ShardedIndex::Build(const core::Dataset& data) {
  GASS_CHECK_MSG(shards_.empty(), "ShardedIndex::Build called twice");
  core::Timer timer;
  partitioning_ = Partition(data, options_.partitioner, options_.seed);
  partition_seconds_ = timer.Seconds();
  const std::size_t k = partitioning_.num_shards();
  const std::size_t replicas = options_.replicas == 0 ? 1 : options_.replicas;
  shard_data_.resize(k);
  shards_.clear();
  shards_.reserve(k);
  for (std::size_t s = 0; s < k; ++s) shards_.emplace_back(replicas);
  shard_build_seconds_.assign(k, 0.0);
  std::vector<double> materialize_seconds(k, 0.0);
  std::vector<double> replica_seconds(k * replicas, 0.0);
  std::vector<methods::BuildStats> sub_stats(k * replicas);
  {
    // Shard builds are independent, so they simply fan out on a pool; a
    // failing build (e.g. std::bad_alloc) surfaces here via Wait()'s
    // exception propagation instead of taking the process down. Two
    // phases: every shard's rows materialize first, then all k*R replica
    // builds run concurrently (each replica of shard s uses the same
    // derived seed, so they come out bit-identical).
    core::ThreadPool pool(options_.build_threads);
    for (std::size_t s = 0; s < k; ++s) {
      const bool accepted =
          pool.Submit([this, &data, &materialize_seconds, s] {
            core::Timer mat_timer;
            shard_data_[s] = partitioning_.ShardView(data, s).Materialize();
            materialize_seconds[s] = mat_timer.Seconds();
          });
      GASS_CHECK(accepted);
    }
    pool.Wait();
    for (std::size_t s = 0; s < k; ++s) {
      for (std::size_t r = 0; r < replicas; ++r) {
        const bool accepted = pool.Submit(
            [this, &sub_stats, &replica_seconds, s, r, replicas] {
              core::Timer replica_timer;
              std::unique_ptr<methods::GraphIndex> index =
                  methods::CreateIndex(options_.method,
                                       SubIndexSeed(options_.seed, s));
              sub_stats[s * replicas + r] = index->Build(shard_data_[s]);
              shards_[s].Set(r, std::move(index));
              replica_seconds[s * replicas + r] = replica_timer.Seconds();
            });
        GASS_CHECK(accepted);
      }
    }
    pool.Wait();
  }
  // The shard's critical-path time: materialization plus its slowest
  // replica build (replicas of one shard construct concurrently).
  for (std::size_t s = 0; s < k; ++s) {
    double slowest = 0.0;
    for (std::size_t r = 0; r < replicas; ++r) {
      slowest = std::max(slowest, replica_seconds[s * replicas + r]);
    }
    shard_build_seconds_[s] = materialize_seconds[s] + slowest;
  }
  FinishInit(data);

  methods::BuildStats out;
  out.distance_computations = partitioning_.distance_computations;
  for (const methods::BuildStats& s : sub_stats) {
    out.distance_computations += s.distance_computations;
    // Shard builds overlap in time, so the transient peaks can coexist;
    // summing is the conservative bound.
    out.peak_bytes += s.peak_bytes;
  }
  for (const core::Dataset& d : shard_data_) out.peak_bytes += d.SizeBytes();
  out.index_bytes = IndexBytes();
  out.elapsed_seconds = timer.Seconds();
  return out;
}

void ShardedIndex::FinishInit(const core::Dataset& data) {
  WaitForReloads();
  data_ = &data;
  num_replicas_ = options_.replicas == 0 ? 1 : options_.replicas;
  max_shard_size_ = 1;
  for (const core::Dataset& d : shard_data_) {
    max_shard_size_ = std::max(max_shard_size_, d.size());
  }
  {
    std::unique_lock<std::mutex> lock(ctx_mutex_);
    ctx_pool_.clear();
  }
  fanout_pool_.reset();
  if (options_.fanout_threads > 0) {
    fanout_pool_ =
        std::make_unique<core::ThreadPool>(options_.fanout_threads);
  }
  serial_ctx_ = std::make_unique<methods::SearchContext>(max_shard_size_,
                                                         options_.seed);
  probe_counts_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    probe_counts_[s].store(0, std::memory_order_relaxed);
  }
  health_ = std::make_unique<ShardHealthTable>(shards_.size(), num_replicas_,
                                               options_.breaker);
  {
    std::lock_guard<std::mutex> lock(reload_mutex_);
    reload_inflight_.assign(shards_.size(), 0);
  }
}

void ShardedIndex::SetBreakerOptions(const ShardBreakerOptions& breaker) {
  options_.breaker = breaker;
  if (!shards_.empty()) {
    health_ = std::make_unique<ShardHealthTable>(shards_.size(),
                                                 num_replicas_, breaker);
  }
}

const ShardHealthTable& ShardedIndex::health() const {
  GASS_CHECK_MSG(health_ != nullptr, "health() before Build");
  return *health_;
}

void ShardedIndex::SetFanoutThreads(std::size_t threads) {
  options_.fanout_threads = threads;
  fanout_pool_.reset();
  if (threads > 0) {
    fanout_pool_ = std::make_unique<core::ThreadPool>(threads);
  }
}

std::size_t ShardedIndex::EffectiveNprobe() const {
  GASS_CHECK_MSG(!shards_.empty(), "EffectiveNprobe before Build");
  const std::size_t k = shards_.size();
  if (options_.nprobe == 0) return k;
  return std::min(options_.nprobe, k);
}

const methods::GraphIndex& ShardedIndex::shard(std::size_t s) const {
  GASS_CHECK(s < shards_.size());
  return shards_[s].replica(0);
}

const methods::GraphIndex& ShardedIndex::replica(std::size_t s,
                                                 std::size_t r) const {
  GASS_CHECK(s < shards_.size() && r < shards_[s].size());
  return shards_[s].replica(r);
}

std::size_t ShardedIndex::shard_size(std::size_t s) const {
  GASS_CHECK(s < shard_data_.size());
  return shard_data_[s].size();
}

std::uint64_t ShardedIndex::probe_count(std::size_t s) const {
  GASS_CHECK(s < shards_.size());
  return probe_counts_[s].load(std::memory_order_relaxed);
}

const core::Graph& ShardedIndex::graph() const {
  GASS_CHECK_MSG(false, "a SHARDED index has no single base graph");
  static const core::Graph kEmpty;
  return kEmpty;
}

std::size_t ShardedIndex::IndexBytes() const {
  std::size_t total = partitioning_.centroids.SizeBytes() +
                      partitioning_.assignment.size() * sizeof(std::uint32_t);
  for (const std::vector<core::VectorId>& ids : partitioning_.shard_ids) {
    total += ids.size() * sizeof(core::VectorId);
  }
  for (const ReplicaSet& s : shards_) {
    total += s.IndexBytes();
  }
  return total;
}

std::unique_ptr<methods::SearchContext> ShardedIndex::AcquireContext() const {
  {
    std::unique_lock<std::mutex> lock(ctx_mutex_);
    if (!ctx_pool_.empty()) {
      std::unique_ptr<methods::SearchContext> ctx =
          std::move(ctx_pool_.back());
      ctx_pool_.pop_back();
      return ctx;
    }
  }
  // Sized for the largest shard: VisitedTable is epoch-stamped, so one
  // table serves any smaller shard without clearing.
  return std::make_unique<methods::SearchContext>(max_shard_size_,
                                                  /*seed=*/0);
}

void ShardedIndex::ReleaseContext(
    std::unique_ptr<methods::SearchContext> ctx) const {
  std::unique_lock<std::mutex> lock(ctx_mutex_);
  ctx_pool_.push_back(std::move(ctx));
}

methods::SearchResult ShardedIndex::Search(
    const float* query, const methods::SearchParams& params) {
  GASS_CHECK_MSG(!shards_.empty(), "Search before Build");
  return SearchImpl(query, params, &serial_ctx_->rng);
}

methods::SearchResult ShardedIndex::Search(const float* query,
                                           const methods::SearchParams& params,
                                           methods::SearchContext* ctx) const {
  GASS_CHECK_MSG(!shards_.empty(), "Search before Build");
  return SearchImpl(query, params, &ctx->rng);
}

serve::SearchResponse ShardedIndex::Search(
    const serve::SearchRequest& request) const {
  GASS_CHECK_MSG(!shards_.empty(), "Search before Build");
  // Standalone requests have no admission counter; auto resolves to 0.
  const std::uint64_t id = request.admission_id == serve::kAutoAdmissionId
                               ? 0
                               : request.admission_id;
  // Same (seed, admission id) reseed contract as the serve tier, so a
  // request-based search is reproducible without a Frontend in front.
  core::Rng rng(options_.seed ^ (kSeedMix * (id + 1)));
  methods::SearchParams params = request.params;
  core::Deadline deadline =
      request.has_deadline ? request.deadline : core::Deadline();
  params.deadline = deadline.unlimited() ? nullptr : &deadline;
  if (request.trace != nullptr) request.trace->Begin(id);
  params.trace = request.trace;
  serve::SearchResponse response(SearchImpl(request.query, params, &rng));
  response.admission_id = id;
  response.shards_ok = response.stats.shards_probed;
  response.shards_failed = response.stats.shards_failed;
  response.shards_hedged = response.stats.shards_hedged;
  response.replica_failovers = response.stats.replica_failovers;
  response.outcome = response.expired ? methods::ServeOutcome::kExpired
                     : params.degrade_step > 0
                         ? methods::ServeOutcome::kDegraded
                         : methods::ServeOutcome::kFull;
  if (request.trace != nullptr) {
    request.trace->Finish();
    response.trace = request.trace;
  }
  return response;
}

namespace {

// Per-probe disposition after fan-out (indexes the `state` array below).
enum : std::uint8_t {
  kProbeNotRun = 0,  // Deadline expired before the probe started/resolved.
  kProbeOk = 1,      // Completed; its result merges.
  kProbeFailed = 2,  // Sub-search failed (real or injected fault).
};

}  // namespace

methods::SearchResult ShardedIndex::SearchImpl(
    const float* query, const methods::SearchParams& params,
    core::Rng* rng) const {
  core::Timer timer;
  obs::QueryTrace* trace = params.trace;
  const std::size_t k_shards = shards_.size();
  const std::size_t nprobe = EffectiveNprobe();
  const std::size_t dim = data_->dim();

  // Route span: centroid ranking + shard selection.
  obs::StageTimer route_timer(trace, obs::Stage::kRoute);

  // Route: rank every shard by centroid distance. Ties break toward the
  // lower shard id (pair comparison), keeping routing deterministic.
  std::vector<std::pair<float, std::uint32_t>> ranked(k_shards);
  for (std::size_t s = 0; s < k_shards; ++s) {
    ranked[s] = {core::L2Sq(query,
                            partitioning_.centroids.Row(
                                static_cast<core::VectorId>(s)),
                            dim),
                 static_cast<std::uint32_t>(s)};
  }
  std::sort(ranked.begin(), ranked.end());

  // One RNG draw per query, fanned into per-probe streams by selection
  // position, so parallel, caller-thread, and hedged fan-out all see
  // identical sub-search seeds (a hedged backup replays its primary's
  // stream and returns the same answers, modulo deadline truncation).
  // Drawn before shard selection — it also keys the deterministic replica
  // choice below; routing itself never consumes the RNG, so the draw
  // order does not change any R = 1 result.
  const std::uint64_t query_seed = rng->Next();

  // Walk the ranked list and select up to nprobe shards. For each shard a
  // replica is chosen by health-aware power-of-two selection (R = 1: the
  // one replica, exactly the historic path); a breaker-skip on the chosen
  // replica falls through to the shard's remaining replicas, and only a
  // shard whose every replica skips is routed around (the query
  // substitutes the next-nearest centroid instead of failing). With every
  // breaker closed this selects exactly the first nprobe ranks,
  // preserving the historic routing bit-for-bit.
  struct Selected {
    std::uint32_t shard;
    std::uint32_t replica;
    bool probe_granted;
  };
  std::vector<Selected> selected;
  selected.reserve(nprobe);
  std::size_t breaker_skips = 0;
  for (std::size_t i = 0; i < k_shards && selected.size() < nprobe; ++i) {
    const std::uint32_t s = ranked[i].second;
    const std::uint32_t start_r = static_cast<std::uint32_t>(
        PickReplica(query_seed, s, num_replicas_, *health_));
    bool routed = false;
    for (std::size_t hop = 0; hop < num_replicas_ && !routed; ++hop) {
      const std::uint32_t r =
          static_cast<std::uint32_t>((start_r + hop) % num_replicas_);
      switch (health_->RouteDecision(s, r)) {
        case ShardRoute::kSearch:
          selected.push_back({s, r, false});
          routed = true;
          break;
        case ShardRoute::kProbe:
          selected.push_back({s, r, true});
          routed = true;
          break;
        case ShardRoute::kSkip:
          break;
      }
    }
    if (!routed) ++breaker_skips;
  }
  const std::size_t n_sel = selected.size();

  {
    core::SearchStats route_stats;
    route_stats.distance_computations = k_shards;  // One per centroid.
    route_timer.SetStats(route_stats);
    route_timer.Stop();
  }

  std::vector<methods::SearchResult> sub(n_sel);
  std::vector<std::uint8_t> state(n_sel, kProbeNotRun);
  // Per-probe replica-failover counts (each probe writes only its slot).
  std::vector<std::size_t> failovers(n_sel, 0);
  std::size_t hedges_launched = 0;
  std::size_t hedge_wins = 0;

  // Sub-searches never see the trace: their costs and time are reported
  // as one kShardSearch span per probe, and a trace-aware sub-index would
  // otherwise record a nested, double-counted breakdown. Tombstones are
  // keyed by GLOBAL id, so sub-searches (which speak local ids) must not
  // see them either — deletions are filtered at the merge below.
  methods::SearchParams sub_params = params;
  sub_params.trace = nullptr;
  sub_params.tombstones = nullptr;

  const bool hedged = options_.hedge_fraction > 0.0 &&
                      fanout_pool_ != nullptr && params.deadline != nullptr &&
                      !params.deadline->unlimited() && n_sel > 0;

  if (hedged) {
    // Hedged fan-out: every probe runs on the pool; the caller thread
    // coordinates. After hedge_fraction of the remaining budget elapses
    // with shards still outstanding, one backup attempt per outstanding
    // shard launches; the first attempt to finish resolves its shard. At
    // the deadline the coordinator stops waiting — stragglers keep the
    // heap-shared HedgeState alive and finish harmlessly later.
    auto hstate = std::make_shared<HedgeState>();
    hstate->query.assign(query, query + dim);
    hstate->deadline = *params.deadline;
    hstate->sub_params = sub_params;
    hstate->sub_params.deadline = &hstate->deadline;
    hstate->query_seed = query_seed;
    hstate->slots = std::vector<HedgeSlot>(n_sel);
    hstate->unresolved = n_sel;
    for (std::size_t idx = 0; idx < n_sel; ++idx) {
      hstate->slots[idx].shard = selected[idx].shard;
      hstate->slots[idx].replica = selected[idx].replica;
      hstate->slots[idx].probe_granted = selected[idx].probe_granted;
    }
    const std::uint64_t fanout_begin_ns =
        trace != nullptr ? trace->ElapsedNs() : 0;
    hstate->timer.Reset();
    for (std::size_t idx = 0; idx < n_sel; ++idx) {
      const bool accepted = fanout_pool_->Submit(
          [this, hstate, idx] { RunHedgedAttempt(hstate, idx, 0); });
      if (!accepted) RunHedgedAttempt(hstate, idx, 0);
    }

    const double remaining = hstate->deadline.RemainingSeconds();
    const double hedge_delay =
        options_.hedge_fraction * (remaining > 0.0 ? remaining : 0.0);
    std::unique_lock<std::mutex> lock(hstate->mutex);
    const bool all_done = hstate->cv.wait_for(
        lock, std::chrono::duration<double>(hedge_delay),
        [&] { return hstate->unresolved == 0; });
    if (!all_done) {
      lock.unlock();
      const std::uint64_t hedge_begin_ns =
          trace != nullptr ? trace->ElapsedNs() : 0;
      for (std::size_t idx = 0; idx < n_sel; ++idx) {
        HedgeSlot& slot = hstate->slots[idx];
        if (slot.winner.load(std::memory_order_acquire) != -1) continue;
        // A backup the deadline has already killed would only report
        // `skipped`: don't launch it, and don't count it into
        // shards_hedged — the invariant hedge_wins <= shards_hedged must
        // hold even under pathological deadlines.
        if (hstate->deadline.IsExpired()) break;
        slot.hedged.store(true, std::memory_order_relaxed);
        ++hedges_launched;
        const bool accepted = fanout_pool_->Submit(
            [this, hstate, idx] { RunHedgedAttempt(hstate, idx, 1); });
        if (!accepted) RunHedgedAttempt(hstate, idx, 1);
      }
      lock.lock();
      while (hstate->unresolved > 0) {
        const double rem = hstate->deadline.RemainingSeconds();
        if (rem <= 0.0) break;  // Abandon stragglers at the deadline.
        hstate->cv.wait_for(lock, std::chrono::duration<double>(rem),
                            [&] { return hstate->unresolved == 0; });
        if (hstate->unresolved == 0) break;
      }
      if (trace != nullptr) {
        obs::TraceSpan hedge_span;
        hedge_span.stage = obs::Stage::kHedge;
        hedge_span.start_ns = hedge_begin_ns;
        hedge_span.duration_ns = trace->ElapsedNs() - hedge_begin_ns;
        trace->AddSpan(hedge_span);
      }
    }
    lock.unlock();

    // Harvest resolved slots. An unresolved slot (winner still -1) was
    // abandoned at the deadline: it stays kProbeNotRun and its eventual
    // completion touches only HedgeState + thread-safe index members.
    for (std::size_t idx = 0; idx < n_sel; ++idx) {
      HedgeSlot& slot = hstate->slots[idx];
      const int w = slot.winner.load(std::memory_order_acquire);
      if (w < 0) continue;
      HedgeAttempt& att = slot.attempts[w];
      failovers[idx] = att.failovers;
      if (slot.hedged.load(std::memory_order_relaxed) && w == 1 &&
          !att.skipped && !att.failed) {
        ++hedge_wins;
      }
      if (att.skipped) {
        state[idx] = kProbeNotRun;
      } else if (att.failed) {
        state[idx] = kProbeFailed;
      } else {
        state[idx] = kProbeOk;
        sub[idx] = std::move(att.result);
        if (trace != nullptr) {
          obs::TraceSpan span;
          span.stage = obs::Stage::kShardSearch;
          span.shard = static_cast<std::int32_t>(slot.shard);
          span.start_ns =
              fanout_begin_ns +
              static_cast<std::uint64_t>(att.start * 1e9);
          span.duration_ns = static_cast<std::uint64_t>(att.duration * 1e9);
          span.distance_computations = sub[idx].stats.distance_computations;
          span.hops = sub[idx].stats.hops;
          span.prefetches = sub[idx].stats.prefetches;
          trace->AddSpan(span);
        }
      }
    }
  } else {
    auto run_probe = [&](std::size_t idx) {
      const std::uint32_t s = selected[idx].shard;
      // Deadline poll between probes: once the budget is gone, remaining
      // shards are skipped entirely — the merged answer stays whatever
      // the completed probes produced (all valid ids), never garbage.
      if (params.deadline != nullptr && params.deadline->IsExpired()) {
        if (selected[idx].probe_granted) {
          health_->OnProbeAbandoned(s, selected[idx].replica);
        }
        return;
      }
      obs::StageTimer probe_timer(trace, obs::Stage::kShardSearch,
                                  static_cast<std::int32_t>(s));
      ProbeOutcome outcome;
      SearchShardReplicas(s, selected[idx].replica, query, sub_params,
                          query_seed ^ (kSeedMix * (idx + 1)),
                          params.deadline, /*attempt=*/0,
                          /*report_final=*/true, trace, &outcome);
      failovers[idx] = outcome.failovers;
      if (!outcome.ok) {
        // A failing shard costs the query that shard's contribution, never
        // the query: the failure becomes per-shard status (kProbeFailed →
        // shards_failed/partial) and already fed the breakers.
        probe_timer.Cancel();
        state[idx] = kProbeFailed;
      } else {
        sub[idx] = std::move(outcome.result);
        probe_timer.SetStats(sub[idx].stats);
        state[idx] = kProbeOk;
      }
    };

    if (fanout_pool_ != nullptr && n_sel > 1) {
      // Per-query completion latch: the internal pool is shared by every
      // concurrent query, so ThreadPool::Wait() (a global barrier) would
      // serialize them; count down only this query's probes instead.
      std::mutex done_mutex;
      std::condition_variable done_cv;
      std::size_t remaining = n_sel - 1;
      auto finish_one = [&] {
        std::unique_lock<std::mutex> lock(done_mutex);
        if (--remaining == 0) done_cv.notify_one();
      };
      for (std::size_t idx = 1; idx < n_sel; ++idx) {
        const bool accepted = fanout_pool_->Submit([&, idx] {
          run_probe(idx);  // Never throws: failures become kProbeFailed.
          finish_one();
        });
        if (!accepted) {
          run_probe(idx);
          finish_one();
        }
      }
      run_probe(0);  // The caller searches the nearest shard itself.
      std::unique_lock<std::mutex> lock(done_mutex);
      done_cv.wait(lock, [&] { return remaining == 0; });
    } else {
      for (std::size_t idx = 0; idx < n_sel; ++idx) run_probe(idx);
    }
  }

  // Merge span: per-shard stat aggregation + global-id top-k merge.
  obs::StageTimer merge_timer(trace, obs::Stage::kMerge);

  methods::SearchResult merged;
  merged.degrade_step = params.degrade_step;
  std::size_t probed = 0;
  std::size_t failed_probes = 0;
  std::size_t deadline_missed = 0;
  bool sub_expired = false;
  for (std::size_t idx = 0; idx < n_sel; ++idx) {
    switch (state[idx]) {
      case kProbeOk:
        ++probed;
        merged.stats.distance_computations +=
            sub[idx].stats.distance_computations;
        merged.stats.hops += sub[idx].stats.hops;
        merged.stats.prefetches += sub[idx].stats.prefetches;
        if (sub[idx].stats.deadline_expiries > 0) sub_expired = true;
        break;
      case kProbeFailed:
        ++failed_probes;
        break;
      default:
        ++deadline_missed;
        break;
    }
  }
  merged.stats.distance_computations += k_shards;  // Centroid routing.
  merged.stats.shards_probed = probed;
  merged.stats.shards_failed = failed_probes + breaker_skips;
  merged.stats.shards_hedged = hedges_launched;
  merged.stats.hedge_wins = hedge_wins;
  for (const std::size_t f : failovers) merged.stats.replica_failovers += f;

  // Merge local results into global ids. A single completed probe passes
  // its list through untouched (order, ties, distances) — with K=1 this is
  // what makes the facade bit-identical to the unsharded index. Tombstones
  // (global ids; see SearchParams::tombstones) are filtered here, after
  // the local→global mapping, since sub-searches ran without them.
  const core::TombstoneSet* tombstones = params.tombstones;
  const bool filter = tombstones != nullptr && !tombstones->empty();
  if (probed == 1) {
    for (std::size_t idx = 0; idx < n_sel; ++idx) {
      if (state[idx] != kProbeOk) continue;
      const std::uint32_t s = selected[idx].shard;
      merged.neighbors = std::move(sub[idx].neighbors);
      for (core::Neighbor& nb : merged.neighbors) {
        nb.id = partitioning_.shard_ids[s][nb.id];
      }
      if (filter) {
        merged.neighbors.erase(
            std::remove_if(merged.neighbors.begin(), merged.neighbors.end(),
                           [&](const core::Neighbor& nb) {
                             return tombstones->Contains(nb.id);
                           }),
            merged.neighbors.end());
      }
      break;
    }
  } else if (probed > 1) {
    std::vector<core::Neighbor> all;
    for (std::size_t idx = 0; idx < n_sel; ++idx) {
      if (state[idx] != kProbeOk) continue;
      const std::uint32_t s = selected[idx].shard;
      for (const core::Neighbor& nb : sub[idx].neighbors) {
        const core::VectorId gid = partitioning_.shard_ids[s][nb.id];
        if (filter && tombstones->Contains(gid)) continue;
        all.emplace_back(gid, nb.distance);
      }
    }
    // Neighbor's operator< is (distance, id) — cross-shard ties resolve to
    // the lower global id, independent of probe completion order.
    std::sort(all.begin(), all.end());
    if (all.size() > params.k) all.resize(params.k);
    merged.neighbors = std::move(all);
  }

  merge_timer.Stop();

  // Two independent flags (see docs/SHARDING.md "Failure semantics"):
  // `expired` is deadline-caused — a sub-search truncated, a probe never
  // started, or a hedged straggler was abandoned at the deadline; one
  // query reports at most one expiry regardless of fan-out width.
  // `partial` is fault-caused — a sub-search failed or an open breaker
  // skipped a shard the routing wanted.
  merged.expired = sub_expired || deadline_missed > 0;
  merged.partial = failed_probes + breaker_skips > 0;
  merged.stats.deadline_expiries = merged.expired ? 1 : 0;
  merged.stats.elapsed_seconds = timer.Seconds();
  return merged;
}

void ShardedIndex::SearchShardReplicas(
    std::uint32_t s, std::uint32_t first_replica, const float* query,
    const methods::SearchParams& sub_params, std::uint64_t attempt_seed,
    const core::Deadline* deadline, std::uint32_t attempt, bool report_final,
    obs::QueryTrace* trace, ProbeOutcome* out) const {
  // Failover walk: try the routed replica; every failure feeds its breaker
  // immediately, then the next untried replica of the same shard that the
  // breakers will route retries under the SAME deadline. Replicas are
  // bit-identical and every retry reseeds from attempt_seed, so a failover
  // changes availability, never answers.
  std::vector<bool> tried(num_replicas_, false);
  std::uint32_t r = first_replica;
  for (;;) {
    tried[r] = true;
    bool failed = false;
    if (faults_ != nullptr) {
      faults_->OnShardSearch(sub_params.admission_id, s, attempt);
    }
    try {
      if (faults_ != nullptr &&
          faults_->ShouldFailShardSearch(sub_params.admission_id, s,
                                         static_cast<std::int32_t>(r))) {
        faults_->CountShardFailure();
        // Thrown (not returned) so injected failures walk the exact
        // exception-to-status path a real sub-search failure takes.
        throw std::runtime_error("injected shard fault");
      }
      std::unique_ptr<methods::SearchContext> sctx = AcquireContext();
      sctx->rng = core::Rng(attempt_seed);
      out->result = shards_[s].Search(r, query, sub_params, sctx.get());
      ReleaseContext(std::move(sctx));
    } catch (...) {
      failed = true;
    }
    probe_counts_[s].fetch_add(1, std::memory_order_relaxed);
    if (!failed) {
      out->ok = true;
      out->replica = r;
      // Hedged attempts defer the success report to the winner CAS so a
      // losing attempt cannot double-close a breaker.
      if (report_final) health_->OnResult(s, r, true);
      return;
    }
    health_->OnResult(s, r, false);
    if (deadline != nullptr && deadline->IsExpired()) {
      out->replica = r;
      return;  // No budget left to retry elsewhere.
    }
    // Next untried replica the breakers will route, in ring order from the
    // failed one. A candidate that skips is marked tried (its breaker said
    // no — asking again within the same probe would grant spurious probes).
    bool found = false;
    std::uint32_t next = 0;
    for (std::uint32_t step = 1; step < num_replicas_ && !found; ++step) {
      const std::uint32_t cand =
          static_cast<std::uint32_t>((r + step) % num_replicas_);
      if (tried[cand]) continue;
      if (health_->RouteDecision(s, cand) != ShardRoute::kSkip) {
        next = cand;
        found = true;
      } else {
        tried[cand] = true;
      }
    }
    if (!found) {
      out->replica = r;
      return;  // Every replica failed or is breaker-skipped: shard fails.
    }
    ++out->failovers;
    if (trace != nullptr) {
      obs::TraceSpan span;
      span.stage = obs::Stage::kReplicaFailover;
      span.shard = static_cast<std::int32_t>(s);
      span.start_ns = trace->ElapsedNs();
      trace->AddSpan(span);
    }
    r = next;
  }
}

void ShardedIndex::RunHedgedAttempt(const std::shared_ptr<HedgeState>& state,
                                    std::size_t idx, int attempt) const {
  HedgeSlot& slot = state->slots[idx];
  HedgeAttempt& att = slot.attempts[attempt];
  att.start = state->timer.Seconds();
  if (state->deadline.IsExpired()) {
    att.skipped = true;
  } else {
    // The backup starts from the next replica in the ring, so with R > 1 a
    // hedge races different replica state instead of piling a second
    // attempt onto the same possibly-struggling replica. Seeded by
    // selection position, independent of attempt and replica: replicas are
    // bit-identical, so whichever attempt wins returns the same answers
    // (modulo deadline truncation).
    const std::uint32_t first_r =
        attempt == 0 ? slot.replica
                     : static_cast<std::uint32_t>((slot.replica + 1) %
                                                  num_replicas_);
    ProbeOutcome outcome;
    SearchShardReplicas(slot.shard, first_r, state->query.data(),
                        state->sub_params,
                        state->query_seed ^ (kSeedMix * (idx + 1)),
                        &state->deadline, static_cast<std::uint32_t>(attempt),
                        /*report_final=*/false, /*trace=*/nullptr, &outcome);
    att.failed = !outcome.ok;
    att.failovers = outcome.failovers;
    att.final_replica = outcome.replica;
    if (outcome.ok) att.result = std::move(outcome.result);
  }
  att.duration = state->timer.Seconds() - att.start;
  // First attempt to finish resolves the shard; the release CAS publishes
  // this attempt's fields to the coordinator. The loser's outcome is
  // discarded (it computed the same answers anyway — same seed).
  int expected = -1;
  if (!slot.winner.compare_exchange_strong(expected, attempt,
                                           std::memory_order_acq_rel)) {
    return;
  }
  // Only the winner reports terminal success/abandonment: failed hops
  // already fed their breakers inside SearchShardReplicas, and a success
  // must close its breaker exactly once.
  if (att.skipped) {
    if (slot.probe_granted) {
      health_->OnProbeAbandoned(slot.shard, slot.replica);
    }
  } else if (!att.failed) {
    health_->OnResult(slot.shard, att.final_replica, true);
  }
  std::lock_guard<std::mutex> lock(state->mutex);
  --state->unresolved;
  state->cv.notify_all();
}

core::Status ShardedIndex::ReloadShard(std::size_t s) {
  GASS_CHECK(s < shards_.size());
  if (snapshot_path_.empty()) {
    return core::Status::InvalidArgument(
        "no recovery snapshot recorded for " + Name() +
        " (LoadSnapshot records one; after Build + SaveSnapshot call "
        "SetRecoverySnapshot)");
  }
  if (faults_ != nullptr &&
      faults_->OnShardReload(static_cast<std::uint32_t>(s))) {
    return core::Status::Corruption("injected reload corruption for shard " +
                                    std::to_string(s));
  }
  const std::string shard_path = ShardPath(snapshot_path_, s);
  // Every replica reloads from the same shard file (replicas are
  // bit-identical, and the snapshot stores one copy per shard), each
  // swapped in under its own writer lock so searches keep flowing on the
  // replicas not currently swapping. LoadIndex re-validates the snapshot's
  // checksums, method name, params fingerprint, and dataset binding, so a
  // corrupted shard file fails here and the old (quarantined) sub-indexes
  // keep serving.
  for (std::size_t r = 0; r < num_replicas_; ++r) {
    std::unique_ptr<methods::GraphIndex> fresh =
        methods::CreateIndex(options_.method, SubIndexSeed(options_.seed, s));
    GASS_RETURN_IF_ERROR(
        methods::LoadIndex(fresh.get(), shard_data_[s], shard_path));
    shards_[s].SwapIn(r, std::move(fresh));
    // Re-enter rotation through the half-open path: the next routing
    // decision probes this replica, and only a passing probe closes the
    // breaker (generation bump included).
    health_->OnReloaded(s, r);
  }
  return core::Status::Ok();
}

core::Status ShardedIndex::RebuildReplica(std::size_t s, std::size_t r) {
  GASS_CHECK(s < shards_.size());
  GASS_CHECK(r < num_replicas_);
  if (faults_ != nullptr &&
      faults_->OnShardReload(static_cast<std::uint32_t>(s))) {
    return core::Status::Corruption("injected rebuild corruption for shard " +
                                    std::to_string(s));
  }
  std::unique_ptr<methods::GraphIndex> fresh =
      methods::CreateIndex(options_.method, SubIndexSeed(options_.seed, s));
  if (!snapshot_path_.empty()) {
    // Snapshot-backed: the shard file is the canonical copy.
    GASS_RETURN_IF_ERROR(methods::LoadIndex(fresh.get(), shard_data_[s],
                                            ShardPath(snapshot_path_, s)));
  } else {
    if (num_replicas_ < 2) {
      return core::Status::InvalidArgument(
          "cannot rebuild the only replica of shard " + std::to_string(s) +
          " without a recovery snapshot");
    }
    // Copy-from-healthy-peer: serialize a peer replica — preferring one
    // whose breaker is closed — and restore the quarantined slot from that
    // spill. Save/LoadIndex round-trip the full checksummed snapshot
    // format, so a corrupt peer fails validation here instead of
    // propagating its corruption.
    std::size_t peer = num_replicas_;
    for (std::size_t cand = 0; cand < num_replicas_; ++cand) {
      if (cand == r) continue;
      if (peer == num_replicas_) peer = cand;
      if (health_->state(s, cand) == BreakerState::kClosed) {
        peer = cand;
        break;
      }
    }
    const char* tmp = std::getenv("TMPDIR");
    const std::string spill =
        std::string(tmp != nullptr && tmp[0] != '\0' ? tmp : "/tmp") +
        "/gass.replica.spill." + std::to_string(::getpid()) + "." +
        std::to_string(s) + "." + std::to_string(r);
    core::Status status = shards_[s].Save(peer, spill);
    if (status.ok()) {
      status = methods::LoadIndex(fresh.get(), shard_data_[s], spill);
    }
    std::remove(spill.c_str());
    GASS_RETURN_IF_ERROR(status);
  }
  shards_[s].SwapIn(r, std::move(fresh));
  // Rebuilt but not yet trusted: generation bump + forced half-open probe;
  // only a passing probe re-closes the breaker.
  health_->OnReloaded(s, r);
  return core::Status::Ok();
}

ScrubReport ShardedIndex::ScrubReplicas(bool rebuild) {
  GASS_CHECK_MSG(!shards_.empty(), "ScrubReplicas before Build");
  ScrubReport report;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::size_t reps = shards_[s].size();
    report.replicas_checked += reps;
    if (reps < 2) continue;  // No peer group to compare against.
    std::vector<std::uint64_t> digests(reps);
    for (std::size_t r = 0; r < reps; ++r) {
      digests[r] = shards_[s].Digest(r);
    }
    const std::uint64_t majority = MajorityDigest(digests);
    for (std::size_t r = 0; r < reps; ++r) {
      if (digests[r] == majority) continue;
      // Replicas are bit-identical by construction, so divergence from the
      // peer majority is corruption by definition: force the breaker open
      // (routing stops using the replica immediately), then restore it
      // online while the healthy replicas keep serving.
      ++report.divergent;
      health_->Quarantine(s, r);
      ++report.quarantined;
      if (rebuild) {
        if (RebuildReplica(s, r).ok()) {
          ++report.rebuilt;
        } else {
          ++report.rebuild_failures;
        }
      }
    }
  }
  return report;
}

bool ShardedIndex::StartShardReload(std::size_t s) {
  GASS_CHECK(s < shards_.size());
  std::lock_guard<std::mutex> lock(reload_mutex_);
  if (reload_inflight_[s] != 0) return false;
  reload_inflight_[s] = 1;
  reload_threads_.emplace_back([this, s] {
    // Status intentionally discarded: a failed background reload leaves
    // the breaker open, which is the observable signal.
    (void)ReloadShard(s);
    std::lock_guard<std::mutex> inner(reload_mutex_);
    reload_inflight_[s] = 0;
  });
  return true;
}

void ShardedIndex::WaitForReloads() {
  // Swap the threads out before joining: a finishing worker re-takes
  // reload_mutex_ to clear its in-flight flag, so joining under the lock
  // would deadlock.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(reload_mutex_);
    threads.swap(reload_threads_);
  }
  for (std::thread& t : threads) t.join();
}

core::Status ShardedIndex::SaveSnapshot(const std::string& path) const {
  if (shards_.empty() || data_ == nullptr) {
    return core::Status::InvalidArgument("cannot save an unbuilt " + Name() +
                                         " index");
  }
  const std::size_t k = shards_.size();
  // Shard files first, manifest last: a crash mid-save can orphan shard
  // files but never publish a manifest whose shards are missing, because
  // the manifest itself is written crash-safely after all of them exist.
  std::vector<std::uint64_t> shard_sizes(k);
  std::vector<std::uint64_t> shard_hashes(k);
  for (std::size_t s = 0; s < k; ++s) {
    const std::string shard_path = ShardPath(path, s);
    // Replicas are bit-identical, so the snapshot stores exactly one copy
    // per shard (replica 0) — the on-disk format is replica-oblivious and
    // unchanged from the unreplicated layout.
    GASS_RETURN_IF_ERROR(
        methods::SaveIndex(shards_[s].replica(0), shard_path));
    std::vector<std::uint8_t> bytes;
    GASS_RETURN_IF_ERROR(ReadFileBytes(shard_path, &bytes));
    shard_sizes[s] = shard_data_[s].size();
    shard_hashes[s] = io::Hash64(bytes.data(), bytes.size(),
                                 kShardFileHashSeed);
  }

  io::SnapshotWriter writer(Name(), ParamsFingerprint(), data_->size(),
                            data_->dim());
  io::Encoder manifest;
  manifest.Str(options_.method);
  manifest.U8(static_cast<std::uint8_t>(options_.partitioner.kind));
  manifest.U64(k);
  manifest.U64(options_.partitioner.kmeans_sample);
  manifest.U64(options_.partitioner.kmeans_iters);
  manifest.F64(options_.partitioner.balance_slack);
  manifest.VecU64(shard_sizes);
  manifest.VecU64(shard_hashes);
  GASS_RETURN_IF_ERROR(
      writer.AddSection(kManifestSection, std::move(manifest)));

  io::Encoder assignment;
  assignment.VecU32(partitioning_.assignment);
  GASS_RETURN_IF_ERROR(
      writer.AddSection(kAssignmentSection, std::move(assignment)));

  io::Encoder centroids;
  io::EncodeDataset(partitioning_.centroids, &centroids);
  GASS_RETURN_IF_ERROR(
      writer.AddSection(kCentroidsSection, std::move(centroids)));
  return writer.WriteTo(path);
}

core::Status ShardedIndex::LoadSnapshot(const std::string& path,
                                        const core::Dataset& data) {
  const core::Status status = LoadSnapshotImpl(path, data);
  if (!status.ok()) {
    shards_.clear();
    shard_data_.clear();
    partition_seconds_ = 0.0;
    shard_build_seconds_.clear();
    partitioning_ = Partitioning();
    data_ = nullptr;
    fanout_pool_.reset();
    serial_ctx_.reset();
    probe_counts_.reset();
    health_.reset();
    snapshot_path_.clear();
  }
  return status;
}

core::Status ShardedIndex::LoadSnapshotImpl(const std::string& path,
                                            const core::Dataset& data) {
  io::SnapshotReader reader;
  GASS_RETURN_IF_ERROR(io::SnapshotReader::Open(path, &reader));
  if (reader.method() != Name()) {
    return core::Status::InvalidArgument(path + ": snapshot holds a " +
                                         reader.method() +
                                         " index, cannot load into " + Name());
  }
  if (reader.params_fingerprint() != ParamsFingerprint()) {
    return core::Status::InvalidArgument(
        path + ": snapshot was built with different " + Name() +
        " parameters (fingerprint mismatch)");
  }
  if (reader.data_n() != data.size() || reader.data_dim() != data.dim()) {
    return core::Status::InvalidArgument(
        path + ": snapshot was built over a " +
        std::to_string(reader.data_n()) + "x" +
        std::to_string(reader.data_dim()) + " dataset, got " +
        std::to_string(data.size()) + "x" + std::to_string(data.dim()));
  }

  io::AlignedBytes buffer;
  io::Decoder dec(nullptr, 0, "");
  GASS_RETURN_IF_ERROR(reader.OpenSection(kManifestSection, &buffer, &dec));
  std::string method;
  dec.Str(&method, io::kMaxMethodName);
  const std::uint8_t kind = dec.U8();
  const std::uint64_t k = dec.U64();
  const std::uint64_t kmeans_sample = dec.U64();
  const std::uint64_t kmeans_iters = dec.U64();
  const double balance_slack = dec.F64();
  std::vector<std::uint64_t> shard_sizes;
  std::vector<std::uint64_t> shard_hashes;
  dec.VecU64(&shard_sizes, kMaxShards);
  dec.VecU64(&shard_hashes, kMaxShards);
  if (!dec.ExpectEnd()) return dec.status();
  // Semantic cross-checks. Every field below is also covered by the header
  // fingerprint (already verified), so a disagreement means the manifest
  // payload was altered behind a resealed checksum — reject loudly.
  if (method != options_.method ||
      kind != static_cast<std::uint8_t>(options_.partitioner.kind) ||
      k != options_.partitioner.num_shards ||
      kmeans_sample != options_.partitioner.kmeans_sample ||
      kmeans_iters != options_.partitioner.kmeans_iters ||
      balance_slack != options_.partitioner.balance_slack) {
    return core::Status::Corruption(
        path + ": manifest partitioner state contradicts the fingerprinted "
               "construction parameters");
  }
  if (shard_sizes.size() != k || shard_hashes.size() != k) {
    return core::Status::Corruption(
        path + ": manifest shard table length does not match shard count");
  }
  std::uint64_t total = 0;
  for (const std::uint64_t size : shard_sizes) total += size;
  if (total != data.size()) {
    return core::Status::Corruption(
        path + ": manifest shard sizes do not cover the dataset (" +
        std::to_string(total) + " of " + std::to_string(data.size()) +
        " rows)");
  }

  GASS_RETURN_IF_ERROR(reader.OpenSection(kAssignmentSection, &buffer, &dec));
  std::vector<std::uint32_t> assignment;
  dec.VecU32(&assignment, data.size());
  if (!dec.ExpectEnd()) return dec.status();
  if (assignment.size() != data.size()) {
    return core::Status::Corruption(
        path + ": assignment covers " + std::to_string(assignment.size()) +
        " rows, dataset has " + std::to_string(data.size()));
  }
  std::vector<std::vector<core::VectorId>> shard_ids(k);
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i] >= k) {
      return core::Status::Corruption(
          path + ": assignment references shard " +
          std::to_string(assignment[i]) + " of " + std::to_string(k));
    }
    shard_ids[assignment[i]].push_back(static_cast<core::VectorId>(i));
  }
  for (std::size_t s = 0; s < k; ++s) {
    if (shard_ids[s].size() != shard_sizes[s]) {
      return core::Status::Corruption(
          path + ": shard " + std::to_string(s) + " has " +
          std::to_string(shard_ids[s].size()) +
          " assigned rows but the manifest declares " +
          std::to_string(shard_sizes[s]));
    }
  }

  GASS_RETURN_IF_ERROR(reader.OpenSection(kCentroidsSection, &buffer, &dec));
  core::Dataset centroids;
  GASS_RETURN_IF_ERROR(io::DecodeDataset(&dec, &centroids));
  if (!dec.ExpectEnd()) return dec.status();
  if (centroids.size() != k || centroids.dim() != data.dim()) {
    return core::Status::Corruption(
        path + ": centroid section holds " +
        std::to_string(centroids.size()) + "x" +
        std::to_string(centroids.dim()) + ", expected " + std::to_string(k) +
        "x" + std::to_string(data.dim()));
  }
  // Centroids are a pure function of (data, assignment); recomputing and
  // comparing bitwise catches value tampering that a resealed checksum
  // would otherwise let through.
  const core::Dataset recomputed = ComputeCentroids(data, shard_ids);
  if (centroids.size() > 0 &&
      std::memcmp(centroids.data(), recomputed.data(),
                  centroids.SizeBytes()) != 0) {
    return core::Status::Corruption(
        path + ": stored centroids do not match the shard member means");
  }

  shard_data_.clear();
  shards_.clear();
  partition_seconds_ = 0.0;
  shard_build_seconds_.clear();
  shard_data_.resize(k);
  const std::size_t replicas = options_.replicas == 0 ? 1 : options_.replicas;
  shards_.reserve(k);
  for (std::size_t s = 0; s < k; ++s) shards_.emplace_back(replicas);
  for (std::size_t s = 0; s < k; ++s) {
    const std::string shard_path = ShardPath(path, s);
    std::vector<std::uint8_t> bytes;
    core::Status read = ReadFileBytes(shard_path, &bytes);
    if (!read.ok()) {
      return core::Status::Corruption(path + ": shard file " + shard_path +
                                      " is missing or unreadable (" +
                                      read.message() + ")");
    }
    if (io::Hash64(bytes.data(), bytes.size(), kShardFileHashSeed) !=
        shard_hashes[s]) {
      return core::Status::Corruption(
          path + ": shard file " + shard_path +
          " does not match the hash recorded in the manifest");
    }
    shard_data_[s] = data.Select(shard_ids[s]);
    // The snapshot stores one copy per shard; every replica attaches from
    // that same pre-built file, re-validating it R times (cheap relative
    // to a rebuild, and each replica gets its own arena).
    for (std::size_t r = 0; r < replicas; ++r) {
      std::unique_ptr<methods::GraphIndex> sub = methods::CreateIndex(
          options_.method, SubIndexSeed(options_.seed, s));
      GASS_RETURN_IF_ERROR(
          methods::LoadIndex(sub.get(), shard_data_[s], shard_path));
      shards_[s].Set(r, std::move(sub));
    }
  }

  partitioning_.assignment = std::move(assignment);
  partitioning_.shard_ids = std::move(shard_ids);
  partitioning_.centroids = std::move(centroids);
  partitioning_.distance_computations = 0;
  FinishInit(data);
  // Record where the shards live so ReloadShard can recover any one of
  // them online later.
  snapshot_path_ = path;
  return core::Status::Ok();
}

core::Status LoadShardedIndex(const std::string& path,
                              const core::Dataset& data, std::uint64_t seed,
                              std::unique_ptr<ShardedIndex>* out) {
  return LoadShardedIndex(path, data, seed, 1, out);
}

core::Status LoadShardedIndex(const std::string& path,
                              const core::Dataset& data, std::uint64_t seed,
                              std::size_t replicas,
                              std::unique_ptr<ShardedIndex>* out) {
  io::SnapshotReader reader;
  GASS_RETURN_IF_ERROR(io::SnapshotReader::Open(path, &reader));
  if (!IsShardedSnapshotMethod(reader.method())) {
    return core::Status::InvalidArgument(
        path + ": not a sharded snapshot (method " + reader.method() + ")");
  }
  io::AlignedBytes buffer;
  io::Decoder dec(nullptr, 0, "");
  GASS_RETURN_IF_ERROR(reader.OpenSection(kManifestSection, &buffer, &dec));
  ShardedIndexOptions options;
  options.seed = seed;
  options.replicas = replicas == 0 ? 1 : replicas;
  dec.Str(&options.method, io::kMaxMethodName);
  const std::uint8_t kind = dec.U8();
  const std::uint64_t num_shards = dec.U64();
  const std::uint64_t kmeans_sample = dec.U64();
  const std::uint64_t kmeans_iters = dec.U64();
  const double balance_slack = dec.F64();
  if (!dec.ok()) return dec.status();
  if (!IsKnownMethod(options.method)) {
    return core::Status::Corruption(path + ": manifest names unknown method '" +
                                    options.method + "'");
  }
  if (kind > static_cast<std::uint8_t>(PartitionerKind::kKMeans)) {
    return core::Status::Corruption(path +
                                    ": manifest names an unknown partitioner");
  }
  if (num_shards == 0 || num_shards > kMaxShards) {
    return core::Status::Corruption(path + ": manifest shard count " +
                                    std::to_string(num_shards) +
                                    " is out of range");
  }
  options.partitioner.kind = static_cast<PartitionerKind>(kind);
  options.partitioner.num_shards = static_cast<std::size_t>(num_shards);
  options.partitioner.kmeans_sample = static_cast<std::size_t>(kmeans_sample);
  options.partitioner.kmeans_iters = static_cast<std::size_t>(kmeans_iters);
  options.partitioner.balance_slack = balance_slack;

  auto index = std::make_unique<ShardedIndex>(options);
  GASS_RETURN_IF_ERROR(index->LoadSnapshot(path, data));
  *out = std::move(index);
  return core::Status::Ok();
}

}  // namespace gass::shard
