#include "shard/sharded_index.h"

#include <algorithm>
#include <cctype>
#include <condition_variable>
#include <cstring>
#include <fstream>
#include <utility>

#include "core/distance.h"
#include "core/macros.h"
#include "core/stats.h"
#include "io/hash.h"
#include "obs/trace.h"
#include "io/serialize.h"
#include "io/snapshot.h"
#include "methods/factory.h"
#include "methods/fingerprint.h"

namespace gass::shard {

namespace {

/// Golden-ratio odd multiplier (same mix constant as core::Rng).
constexpr std::uint64_t kSeedMix = 0x9E3779B97F4A7C15ULL;
/// Seed for the per-shard whole-file hashes stored in the manifest.
constexpr std::uint64_t kShardFileHashSeed = 0x53484152ULL;  // "SHAR"
/// Decode-time sanity cap on shard counts (far above anything sensible).
constexpr std::uint64_t kMaxShards = 1ULL << 20;

constexpr char kManifestSection[] = "sharded.manifest";
constexpr char kAssignmentSection[] = "sharded.assignment";
constexpr char kCentroidsSection[] = "sharded.centroids";
constexpr char kMethodPrefix[] = "SHARDED:";

core::Status ReadFileBytes(const std::string& path,
                           std::vector<std::uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return core::Status::IoError("cannot open " + path);
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) return core::Status::IoError("cannot stat " + path);
  out->resize(static_cast<std::size_t>(size));
  in.seekg(0, std::ios::beg);
  if (size > 0) {
    in.read(reinterpret_cast<char*>(out->data()), size);
  }
  if (!in) return core::Status::IoError("cannot read " + path);
  return core::Status::Ok();
}

bool IsKnownMethod(const std::string& name) {
  for (const std::string& known : methods::AllMethodNames()) {
    if (known == name) return true;
  }
  return false;
}

}  // namespace

bool IsShardedSnapshotMethod(const std::string& method) {
  return method.rfind(kMethodPrefix, 0) == 0;
}

ShardedIndex::ShardedIndex(const ShardedIndexOptions& options)
    : options_(options) {
  GASS_CHECK_MSG(IsKnownMethod(options_.method),
                 "unknown sub-index method '%s'", options_.method.c_str());
  GASS_CHECK_MSG(options_.partitioner.num_shards >= 1,
                 "num_shards must be >= 1");
}

ShardedIndex::~ShardedIndex() = default;

std::string ShardedIndex::Name() const {
  std::string name = kMethodPrefix;
  for (const char c : options_.method) {
    name.push_back(
        static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
  return name;
}

std::uint64_t ShardedIndex::SubIndexSeed(std::uint64_t seed, std::size_t s) {
  // s == 0 yields `seed` itself, so a K=1 sharded build constructs its one
  // sub-index exactly as the unsharded CreateIndex(method, seed) would —
  // the foundation of the bit-identity guarantee.
  return seed ^ (kSeedMix * static_cast<std::uint64_t>(s));
}

std::string ShardedIndex::ShardPath(const std::string& path, std::size_t s) {
  return path + ".shard" + std::to_string(s);
}

std::uint64_t ShardedIndex::ParamsFingerprint() const {
  io::Encoder enc;
  enc.Str("sharded");
  enc.Str(options_.method);
  enc.U8(static_cast<std::uint8_t>(options_.partitioner.kind));
  enc.U64(options_.partitioner.num_shards);
  enc.U64(options_.partitioner.kmeans_sample);
  enc.U64(options_.partitioner.kmeans_iters);
  enc.F64(options_.partitioner.balance_slack);
  enc.U64(options_.seed);
  // Fold in the sub-method's own parameter fingerprint (a prototype is
  // enough: every shard uses the same construction knobs, only the seed
  // mix differs and the base seed is already encoded above).
  enc.U64(methods::CreateIndex(options_.method,
                               SubIndexSeed(options_.seed, 0))
              ->ParamsFingerprint());
  return methods::FingerprintBytes(enc);
}

methods::BuildStats ShardedIndex::Build(const core::Dataset& data) {
  GASS_CHECK_MSG(shards_.empty(), "ShardedIndex::Build called twice");
  core::Timer timer;
  partitioning_ = Partition(data, options_.partitioner, options_.seed);
  partition_seconds_ = timer.Seconds();
  const std::size_t k = partitioning_.num_shards();
  shard_data_.resize(k);
  shards_.resize(k);
  shard_build_seconds_.assign(k, 0.0);
  std::vector<methods::BuildStats> sub_stats(k);
  {
    // Shard builds are independent, so they simply fan out on a pool; a
    // failing build (e.g. std::bad_alloc) surfaces here via Wait()'s
    // exception propagation instead of taking the process down.
    core::ThreadPool pool(options_.build_threads);
    for (std::size_t s = 0; s < k; ++s) {
      const bool accepted = pool.Submit([this, &data, &sub_stats, s] {
        core::Timer shard_timer;
        shard_data_[s] = partitioning_.ShardView(data, s).Materialize();
        shards_[s] = methods::CreateIndex(options_.method,
                                          SubIndexSeed(options_.seed, s));
        sub_stats[s] = shards_[s]->Build(shard_data_[s]);
        shard_build_seconds_[s] = shard_timer.Seconds();
      });
      GASS_CHECK(accepted);
    }
    pool.Wait();
  }
  FinishInit(data);

  methods::BuildStats out;
  out.distance_computations = partitioning_.distance_computations;
  for (const methods::BuildStats& s : sub_stats) {
    out.distance_computations += s.distance_computations;
    // Shard builds overlap in time, so the transient peaks can coexist;
    // summing is the conservative bound.
    out.peak_bytes += s.peak_bytes;
  }
  for (const core::Dataset& d : shard_data_) out.peak_bytes += d.SizeBytes();
  out.index_bytes = IndexBytes();
  out.elapsed_seconds = timer.Seconds();
  return out;
}

void ShardedIndex::FinishInit(const core::Dataset& data) {
  data_ = &data;
  max_shard_size_ = 1;
  for (const core::Dataset& d : shard_data_) {
    max_shard_size_ = std::max(max_shard_size_, d.size());
  }
  {
    std::unique_lock<std::mutex> lock(ctx_mutex_);
    ctx_pool_.clear();
  }
  fanout_pool_.reset();
  if (options_.fanout_threads > 0) {
    fanout_pool_ =
        std::make_unique<core::ThreadPool>(options_.fanout_threads);
  }
  serial_ctx_ = std::make_unique<methods::SearchContext>(max_shard_size_,
                                                         options_.seed);
  probe_counts_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    probe_counts_[s].store(0, std::memory_order_relaxed);
  }
}

void ShardedIndex::SetFanoutThreads(std::size_t threads) {
  options_.fanout_threads = threads;
  fanout_pool_.reset();
  if (threads > 0) {
    fanout_pool_ = std::make_unique<core::ThreadPool>(threads);
  }
}

std::size_t ShardedIndex::EffectiveNprobe() const {
  GASS_CHECK_MSG(!shards_.empty(), "EffectiveNprobe before Build");
  const std::size_t k = shards_.size();
  if (options_.nprobe == 0) return k;
  return std::min(options_.nprobe, k);
}

const methods::GraphIndex& ShardedIndex::shard(std::size_t s) const {
  GASS_CHECK(s < shards_.size());
  return *shards_[s];
}

std::size_t ShardedIndex::shard_size(std::size_t s) const {
  GASS_CHECK(s < shard_data_.size());
  return shard_data_[s].size();
}

std::uint64_t ShardedIndex::probe_count(std::size_t s) const {
  GASS_CHECK(s < shards_.size());
  return probe_counts_[s].load(std::memory_order_relaxed);
}

const core::Graph& ShardedIndex::graph() const {
  GASS_CHECK_MSG(false, "a SHARDED index has no single base graph");
  static const core::Graph kEmpty;
  return kEmpty;
}

std::size_t ShardedIndex::IndexBytes() const {
  std::size_t total = partitioning_.centroids.SizeBytes() +
                      partitioning_.assignment.size() * sizeof(std::uint32_t);
  for (const std::vector<core::VectorId>& ids : partitioning_.shard_ids) {
    total += ids.size() * sizeof(core::VectorId);
  }
  for (const std::unique_ptr<methods::GraphIndex>& s : shards_) {
    total += s->IndexBytes();
  }
  return total;
}

std::unique_ptr<methods::SearchContext> ShardedIndex::AcquireContext() const {
  {
    std::unique_lock<std::mutex> lock(ctx_mutex_);
    if (!ctx_pool_.empty()) {
      std::unique_ptr<methods::SearchContext> ctx =
          std::move(ctx_pool_.back());
      ctx_pool_.pop_back();
      return ctx;
    }
  }
  // Sized for the largest shard: VisitedTable is epoch-stamped, so one
  // table serves any smaller shard without clearing.
  return std::make_unique<methods::SearchContext>(max_shard_size_,
                                                  /*seed=*/0);
}

void ShardedIndex::ReleaseContext(
    std::unique_ptr<methods::SearchContext> ctx) const {
  std::unique_lock<std::mutex> lock(ctx_mutex_);
  ctx_pool_.push_back(std::move(ctx));
}

methods::SearchResult ShardedIndex::Search(
    const float* query, const methods::SearchParams& params) {
  GASS_CHECK_MSG(!shards_.empty(), "Search before Build");
  return SearchImpl(query, params, &serial_ctx_->rng);
}

methods::SearchResult ShardedIndex::Search(const float* query,
                                           const methods::SearchParams& params,
                                           methods::SearchContext* ctx) const {
  GASS_CHECK_MSG(!shards_.empty(), "Search before Build");
  return SearchImpl(query, params, &ctx->rng);
}

serve::SearchResponse ShardedIndex::Search(
    const serve::SearchRequest& request) const {
  GASS_CHECK_MSG(!shards_.empty(), "Search before Build");
  // Standalone requests have no admission counter; auto resolves to 0.
  const std::uint64_t id = request.admission_id == serve::kAutoAdmissionId
                               ? 0
                               : request.admission_id;
  // Same (seed, admission id) reseed contract as the serve tier, so a
  // request-based search is reproducible without a Frontend in front.
  core::Rng rng(options_.seed ^ (kSeedMix * (id + 1)));
  methods::SearchParams params = request.params;
  core::Deadline deadline =
      request.has_deadline ? request.deadline : core::Deadline();
  params.deadline = deadline.unlimited() ? nullptr : &deadline;
  if (request.trace != nullptr) request.trace->Begin(id);
  params.trace = request.trace;
  serve::SearchResponse response(SearchImpl(request.query, params, &rng));
  response.admission_id = id;
  response.outcome = response.expired ? methods::ServeOutcome::kExpired
                     : params.degrade_step > 0
                         ? methods::ServeOutcome::kDegraded
                         : methods::ServeOutcome::kFull;
  if (request.trace != nullptr) {
    request.trace->Finish();
    response.trace = request.trace;
  }
  return response;
}

methods::SearchResult ShardedIndex::SearchImpl(
    const float* query, const methods::SearchParams& params,
    core::Rng* rng) const {
  core::Timer timer;
  obs::QueryTrace* trace = params.trace;
  const std::size_t k_shards = shards_.size();
  const std::size_t nprobe = EffectiveNprobe();
  const std::size_t dim = data_->dim();

  // Route span: centroid ranking + shard selection.
  obs::StageTimer route_timer(trace, obs::Stage::kRoute);

  // Route: rank every shard by centroid distance. Ties break toward the
  // lower shard id (pair comparison), keeping routing deterministic.
  std::vector<std::pair<float, std::uint32_t>> ranked(k_shards);
  for (std::size_t s = 0; s < k_shards; ++s) {
    ranked[s] = {core::L2Sq(query,
                            partitioning_.centroids.Row(
                                static_cast<core::VectorId>(s)),
                            dim),
                 static_cast<std::uint32_t>(s)};
  }
  std::sort(ranked.begin(), ranked.end());

  // One RNG draw per query, fanned into per-probe streams by rank, so
  // parallel and caller-thread fan-out see identical sub-search seeds.
  const std::uint64_t query_seed = rng->Next();

  {
    core::SearchStats route_stats;
    route_stats.distance_computations = k_shards;  // One per centroid.
    route_timer.SetStats(route_stats);
    route_timer.Stop();
  }

  std::vector<methods::SearchResult> sub(nprobe);
  std::vector<std::uint8_t> ran(nprobe, 0);

  // Sub-searches never see the trace: their costs and time are reported
  // as one kShardSearch span per probe, and a trace-aware sub-index would
  // otherwise record a nested, double-counted breakdown.
  methods::SearchParams sub_params = params;
  sub_params.trace = nullptr;

  auto run_probe = [&](std::size_t rank) {
    // Deadline poll between probes: once the budget is gone, remaining
    // shards are skipped entirely — the merged answer stays whatever the
    // completed probes produced (all valid ids), never garbage.
    if (params.deadline != nullptr && params.deadline->IsExpired()) return;
    const std::uint32_t s = ranked[rank].second;
    obs::StageTimer probe_timer(trace, obs::Stage::kShardSearch,
                                static_cast<std::int32_t>(s));
    std::unique_ptr<methods::SearchContext> sctx = AcquireContext();
    sctx->rng = core::Rng(query_seed ^ (kSeedMix * (rank + 1)));
    sub[rank] = shards_[s]->Search(query, sub_params, sctx.get());
    probe_timer.SetStats(sub[rank].stats);
    ran[rank] = 1;
    probe_counts_[s].fetch_add(1, std::memory_order_relaxed);
    ReleaseContext(std::move(sctx));
  };

  if (fanout_pool_ != nullptr && nprobe > 1) {
    // Per-query completion latch: the internal pool is shared by every
    // concurrent query, so ThreadPool::Wait() (a global barrier) would
    // serialize them; count down only this query's probes instead.
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::size_t remaining = nprobe - 1;
    auto finish_one = [&] {
      std::unique_lock<std::mutex> lock(done_mutex);
      if (--remaining == 0) done_cv.notify_one();
    };
    for (std::size_t rank = 1; rank < nprobe; ++rank) {
      const bool accepted = fanout_pool_->Submit([&, rank] {
        try {
          run_probe(rank);
        } catch (...) {
          finish_one();  // Never leave the caller waiting.
          throw;
        }
        finish_one();
      });
      if (!accepted) {
        run_probe(rank);
        finish_one();
      }
    }
    run_probe(0);  // The caller searches the nearest shard itself.
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] { return remaining == 0; });
  } else {
    for (std::size_t rank = 0; rank < nprobe; ++rank) run_probe(rank);
  }

  // Merge span: per-shard stat aggregation + global-id top-k merge.
  obs::StageTimer merge_timer(trace, obs::Stage::kMerge);

  methods::SearchResult merged;
  merged.degrade_step = params.degrade_step;
  std::size_t probed = 0;
  bool sub_expired = false;
  for (std::size_t rank = 0; rank < nprobe; ++rank) {
    if (!ran[rank]) continue;
    ++probed;
    merged.stats.distance_computations += sub[rank].stats.distance_computations;
    merged.stats.hops += sub[rank].stats.hops;
    merged.stats.prefetches += sub[rank].stats.prefetches;
    if (sub[rank].stats.deadline_expiries > 0) sub_expired = true;
  }
  merged.stats.distance_computations += k_shards;  // Centroid routing.
  merged.stats.shards_probed = probed;

  // Merge local results into global ids. A single completed probe passes
  // its list through untouched (order, ties, distances) — with K=1 this is
  // what makes the facade bit-identical to the unsharded index.
  if (probed == 1) {
    for (std::size_t rank = 0; rank < nprobe; ++rank) {
      if (!ran[rank]) continue;
      const std::uint32_t s = ranked[rank].second;
      merged.neighbors = std::move(sub[rank].neighbors);
      for (core::Neighbor& nb : merged.neighbors) {
        nb.id = partitioning_.shard_ids[s][nb.id];
      }
      break;
    }
  } else if (probed > 1) {
    std::vector<core::Neighbor> all;
    for (std::size_t rank = 0; rank < nprobe; ++rank) {
      if (!ran[rank]) continue;
      const std::uint32_t s = ranked[rank].second;
      for (const core::Neighbor& nb : sub[rank].neighbors) {
        all.emplace_back(partitioning_.shard_ids[s][nb.id], nb.distance);
      }
    }
    // Neighbor's operator< is (distance, id) — cross-shard ties resolve to
    // the lower global id, independent of probe completion order.
    std::sort(all.begin(), all.end());
    if (all.size() > params.k) all.resize(params.k);
    merged.neighbors = std::move(all);
  }

  merge_timer.Stop();

  // Expired when the deadline skipped probes or truncated any sub-search;
  // one query reports at most one expiry regardless of fan-out width.
  merged.expired = sub_expired || probed < nprobe;
  merged.stats.deadline_expiries = merged.expired ? 1 : 0;
  merged.stats.elapsed_seconds = timer.Seconds();
  return merged;
}

core::Status ShardedIndex::SaveSnapshot(const std::string& path) const {
  if (shards_.empty() || data_ == nullptr) {
    return core::Status::InvalidArgument("cannot save an unbuilt " + Name() +
                                         " index");
  }
  const std::size_t k = shards_.size();
  // Shard files first, manifest last: a crash mid-save can orphan shard
  // files but never publish a manifest whose shards are missing, because
  // the manifest itself is written crash-safely after all of them exist.
  std::vector<std::uint64_t> shard_sizes(k);
  std::vector<std::uint64_t> shard_hashes(k);
  for (std::size_t s = 0; s < k; ++s) {
    const std::string shard_path = ShardPath(path, s);
    GASS_RETURN_IF_ERROR(methods::SaveIndex(*shards_[s], shard_path));
    std::vector<std::uint8_t> bytes;
    GASS_RETURN_IF_ERROR(ReadFileBytes(shard_path, &bytes));
    shard_sizes[s] = shard_data_[s].size();
    shard_hashes[s] = io::Hash64(bytes.data(), bytes.size(),
                                 kShardFileHashSeed);
  }

  io::SnapshotWriter writer(Name(), ParamsFingerprint(), data_->size(),
                            data_->dim());
  io::Encoder manifest;
  manifest.Str(options_.method);
  manifest.U8(static_cast<std::uint8_t>(options_.partitioner.kind));
  manifest.U64(k);
  manifest.U64(options_.partitioner.kmeans_sample);
  manifest.U64(options_.partitioner.kmeans_iters);
  manifest.F64(options_.partitioner.balance_slack);
  manifest.VecU64(shard_sizes);
  manifest.VecU64(shard_hashes);
  GASS_RETURN_IF_ERROR(
      writer.AddSection(kManifestSection, std::move(manifest)));

  io::Encoder assignment;
  assignment.VecU32(partitioning_.assignment);
  GASS_RETURN_IF_ERROR(
      writer.AddSection(kAssignmentSection, std::move(assignment)));

  io::Encoder centroids;
  io::EncodeDataset(partitioning_.centroids, &centroids);
  GASS_RETURN_IF_ERROR(
      writer.AddSection(kCentroidsSection, std::move(centroids)));
  return writer.WriteTo(path);
}

core::Status ShardedIndex::LoadSnapshot(const std::string& path,
                                        const core::Dataset& data) {
  const core::Status status = LoadSnapshotImpl(path, data);
  if (!status.ok()) {
    shards_.clear();
    shard_data_.clear();
    partition_seconds_ = 0.0;
    shard_build_seconds_.clear();
    partitioning_ = Partitioning();
    data_ = nullptr;
    fanout_pool_.reset();
    serial_ctx_.reset();
    probe_counts_.reset();
  }
  return status;
}

core::Status ShardedIndex::LoadSnapshotImpl(const std::string& path,
                                            const core::Dataset& data) {
  io::SnapshotReader reader;
  GASS_RETURN_IF_ERROR(io::SnapshotReader::Open(path, &reader));
  if (reader.method() != Name()) {
    return core::Status::InvalidArgument(path + ": snapshot holds a " +
                                         reader.method() +
                                         " index, cannot load into " + Name());
  }
  if (reader.params_fingerprint() != ParamsFingerprint()) {
    return core::Status::InvalidArgument(
        path + ": snapshot was built with different " + Name() +
        " parameters (fingerprint mismatch)");
  }
  if (reader.data_n() != data.size() || reader.data_dim() != data.dim()) {
    return core::Status::InvalidArgument(
        path + ": snapshot was built over a " +
        std::to_string(reader.data_n()) + "x" +
        std::to_string(reader.data_dim()) + " dataset, got " +
        std::to_string(data.size()) + "x" + std::to_string(data.dim()));
  }

  io::AlignedBytes buffer;
  io::Decoder dec(nullptr, 0, "");
  GASS_RETURN_IF_ERROR(reader.OpenSection(kManifestSection, &buffer, &dec));
  std::string method;
  dec.Str(&method, io::kMaxMethodName);
  const std::uint8_t kind = dec.U8();
  const std::uint64_t k = dec.U64();
  const std::uint64_t kmeans_sample = dec.U64();
  const std::uint64_t kmeans_iters = dec.U64();
  const double balance_slack = dec.F64();
  std::vector<std::uint64_t> shard_sizes;
  std::vector<std::uint64_t> shard_hashes;
  dec.VecU64(&shard_sizes, kMaxShards);
  dec.VecU64(&shard_hashes, kMaxShards);
  if (!dec.ExpectEnd()) return dec.status();
  // Semantic cross-checks. Every field below is also covered by the header
  // fingerprint (already verified), so a disagreement means the manifest
  // payload was altered behind a resealed checksum — reject loudly.
  if (method != options_.method ||
      kind != static_cast<std::uint8_t>(options_.partitioner.kind) ||
      k != options_.partitioner.num_shards ||
      kmeans_sample != options_.partitioner.kmeans_sample ||
      kmeans_iters != options_.partitioner.kmeans_iters ||
      balance_slack != options_.partitioner.balance_slack) {
    return core::Status::Corruption(
        path + ": manifest partitioner state contradicts the fingerprinted "
               "construction parameters");
  }
  if (shard_sizes.size() != k || shard_hashes.size() != k) {
    return core::Status::Corruption(
        path + ": manifest shard table length does not match shard count");
  }
  std::uint64_t total = 0;
  for (const std::uint64_t size : shard_sizes) total += size;
  if (total != data.size()) {
    return core::Status::Corruption(
        path + ": manifest shard sizes do not cover the dataset (" +
        std::to_string(total) + " of " + std::to_string(data.size()) +
        " rows)");
  }

  GASS_RETURN_IF_ERROR(reader.OpenSection(kAssignmentSection, &buffer, &dec));
  std::vector<std::uint32_t> assignment;
  dec.VecU32(&assignment, data.size());
  if (!dec.ExpectEnd()) return dec.status();
  if (assignment.size() != data.size()) {
    return core::Status::Corruption(
        path + ": assignment covers " + std::to_string(assignment.size()) +
        " rows, dataset has " + std::to_string(data.size()));
  }
  std::vector<std::vector<core::VectorId>> shard_ids(k);
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i] >= k) {
      return core::Status::Corruption(
          path + ": assignment references shard " +
          std::to_string(assignment[i]) + " of " + std::to_string(k));
    }
    shard_ids[assignment[i]].push_back(static_cast<core::VectorId>(i));
  }
  for (std::size_t s = 0; s < k; ++s) {
    if (shard_ids[s].size() != shard_sizes[s]) {
      return core::Status::Corruption(
          path + ": shard " + std::to_string(s) + " has " +
          std::to_string(shard_ids[s].size()) +
          " assigned rows but the manifest declares " +
          std::to_string(shard_sizes[s]));
    }
  }

  GASS_RETURN_IF_ERROR(reader.OpenSection(kCentroidsSection, &buffer, &dec));
  core::Dataset centroids;
  GASS_RETURN_IF_ERROR(io::DecodeDataset(&dec, &centroids));
  if (!dec.ExpectEnd()) return dec.status();
  if (centroids.size() != k || centroids.dim() != data.dim()) {
    return core::Status::Corruption(
        path + ": centroid section holds " +
        std::to_string(centroids.size()) + "x" +
        std::to_string(centroids.dim()) + ", expected " + std::to_string(k) +
        "x" + std::to_string(data.dim()));
  }
  // Centroids are a pure function of (data, assignment); recomputing and
  // comparing bitwise catches value tampering that a resealed checksum
  // would otherwise let through.
  const core::Dataset recomputed = ComputeCentroids(data, shard_ids);
  if (centroids.size() > 0 &&
      std::memcmp(centroids.data(), recomputed.data(),
                  centroids.SizeBytes()) != 0) {
    return core::Status::Corruption(
        path + ": stored centroids do not match the shard member means");
  }

  shard_data_.clear();
  shards_.clear();
  partition_seconds_ = 0.0;
  shard_build_seconds_.clear();
  shard_data_.resize(k);
  shards_.resize(k);
  for (std::size_t s = 0; s < k; ++s) {
    const std::string shard_path = ShardPath(path, s);
    std::vector<std::uint8_t> bytes;
    core::Status read = ReadFileBytes(shard_path, &bytes);
    if (!read.ok()) {
      return core::Status::Corruption(path + ": shard file " + shard_path +
                                      " is missing or unreadable (" +
                                      read.message() + ")");
    }
    if (io::Hash64(bytes.data(), bytes.size(), kShardFileHashSeed) !=
        shard_hashes[s]) {
      return core::Status::Corruption(
          path + ": shard file " + shard_path +
          " does not match the hash recorded in the manifest");
    }
    shard_data_[s] = data.Select(shard_ids[s]);
    shards_[s] = methods::CreateIndex(options_.method,
                                      SubIndexSeed(options_.seed, s));
    GASS_RETURN_IF_ERROR(
        methods::LoadIndex(shards_[s].get(), shard_data_[s], shard_path));
  }

  partitioning_.assignment = std::move(assignment);
  partitioning_.shard_ids = std::move(shard_ids);
  partitioning_.centroids = std::move(centroids);
  partitioning_.distance_computations = 0;
  FinishInit(data);
  return core::Status::Ok();
}

core::Status LoadShardedIndex(const std::string& path,
                              const core::Dataset& data, std::uint64_t seed,
                              std::unique_ptr<ShardedIndex>* out) {
  io::SnapshotReader reader;
  GASS_RETURN_IF_ERROR(io::SnapshotReader::Open(path, &reader));
  if (!IsShardedSnapshotMethod(reader.method())) {
    return core::Status::InvalidArgument(
        path + ": not a sharded snapshot (method " + reader.method() + ")");
  }
  io::AlignedBytes buffer;
  io::Decoder dec(nullptr, 0, "");
  GASS_RETURN_IF_ERROR(reader.OpenSection(kManifestSection, &buffer, &dec));
  ShardedIndexOptions options;
  options.seed = seed;
  dec.Str(&options.method, io::kMaxMethodName);
  const std::uint8_t kind = dec.U8();
  const std::uint64_t num_shards = dec.U64();
  const std::uint64_t kmeans_sample = dec.U64();
  const std::uint64_t kmeans_iters = dec.U64();
  const double balance_slack = dec.F64();
  if (!dec.ok()) return dec.status();
  if (!IsKnownMethod(options.method)) {
    return core::Status::Corruption(path + ": manifest names unknown method '" +
                                    options.method + "'");
  }
  if (kind > static_cast<std::uint8_t>(PartitionerKind::kKMeans)) {
    return core::Status::Corruption(path +
                                    ": manifest names an unknown partitioner");
  }
  if (num_shards == 0 || num_shards > kMaxShards) {
    return core::Status::Corruption(path + ": manifest shard count " +
                                    std::to_string(num_shards) +
                                    " is out of range");
  }
  options.partitioner.kind = static_cast<PartitionerKind>(kind);
  options.partitioner.num_shards = static_cast<std::size_t>(num_shards);
  options.partitioner.kmeans_sample = static_cast<std::size_t>(kmeans_sample);
  options.partitioner.kmeans_iters = static_cast<std::size_t>(kmeans_iters);
  options.partitioner.balance_slack = balance_slack;

  auto index = std::make_unique<ShardedIndex>(options);
  GASS_RETURN_IF_ERROR(index->LoadSnapshot(path, data));
  *out = std::move(index);
  return core::Status::Ok();
}

}  // namespace gass::shard
