#include "hash/qalsh_scan.h"

#include <algorithm>
#include <cmath>

#include "core/distance.h"
#include "core/macros.h"
#include "core/rng.h"

namespace gass::hash {

using core::Dataset;
using core::Neighbor;
using core::Rng;
using core::VectorId;

QalshScanner QalshScanner::Build(const Dataset& data,
                                 const QalshParams& params,
                                 std::uint64_t seed) {
  GASS_CHECK(!data.empty());
  GASS_CHECK(params.num_lines > 0);
  QalshScanner scanner;
  scanner.dim_ = data.dim();
  scanner.params_ = params;
  Rng rng(seed);

  scanner.lines_.resize(params.num_lines);
  for (Line& line : scanner.lines_) {
    line.direction.resize(data.dim());
    for (float& v : line.direction) {
      v = static_cast<float>(rng.Normal()) /
          std::sqrt(static_cast<float>(data.dim()));
    }
    line.order.resize(data.size());
    line.projections.resize(data.size());
    std::vector<float> raw(data.size());
    for (VectorId i = 0; i < data.size(); ++i) {
      raw[i] = core::Dot(data.Row(i), line.direction.data(), data.dim());
      line.order[i] = i;
    }
    std::sort(line.order.begin(), line.order.end(),
              [&](VectorId a, VectorId b) { return raw[a] < raw[b]; });
    for (std::size_t pos = 0; pos < data.size(); ++pos) {
      line.projections[pos] = raw[line.order[pos]];
    }
  }
  return scanner;
}

std::vector<Neighbor> QalshScanner::Search(const Dataset& data,
                                           const float* query, std::size_t k,
                                           core::SearchStats* stats) const {
  core::Timer timer;
  core::CandidatePool pool(k);
  const std::size_t n = data.size();
  const std::size_t budget = std::max<std::size_t>(
      k, static_cast<std::size_t>(params_.candidate_fraction *
                                  static_cast<double>(n)));

  // Per-line cursors walking outward from the query's projection.
  struct Cursor {
    float query_projection = 0.0f;
    std::int64_t left = -1;
    std::int64_t right = 0;
  };
  std::vector<Cursor> cursors(lines_.size());
  for (std::size_t m = 0; m < lines_.size(); ++m) {
    const Line& line = lines_[m];
    cursors[m].query_projection =
        core::Dot(query, line.direction.data(), dim_);
    const auto it = std::lower_bound(line.projections.begin(),
                                     line.projections.end(),
                                     cursors[m].query_projection);
    cursors[m].right = it - line.projections.begin();
    cursors[m].left = cursors[m].right - 1;
  }

  std::vector<std::uint16_t> collisions(n, 0);
  std::vector<bool> verified(n, false);
  std::uint64_t distance_count = 0;
  std::size_t verified_count = 0;

  // Round-robin outward walk: each step consumes the nearest unvisited
  // projection on one line.
  bool progress = true;
  while (progress && verified_count < budget) {
    progress = false;
    for (std::size_t m = 0; m < lines_.size() && verified_count < budget;
         ++m) {
      const Line& line = lines_[m];
      Cursor& cursor = cursors[m];
      // Pick the side closer in projection value.
      std::int64_t pos = -1;
      const bool left_ok = cursor.left >= 0;
      const bool right_ok =
          cursor.right < static_cast<std::int64_t>(n);
      if (!left_ok && !right_ok) continue;
      if (!right_ok ||
          (left_ok &&
           cursor.query_projection - line.projections[static_cast<std::size_t>(
                                         cursor.left)] <
               line.projections[static_cast<std::size_t>(cursor.right)] -
                   cursor.query_projection)) {
        pos = cursor.left--;
      } else {
        pos = cursor.right++;
      }
      progress = true;
      const VectorId id = line.order[static_cast<std::size_t>(pos)];
      if (verified[id]) continue;
      if (++collisions[id] >= params_.collision_threshold) {
        verified[id] = true;
        ++verified_count;
        const float d = core::L2Sq(query, data.Row(id), dim_);
        ++distance_count;
        if (d < pool.WorstDistance()) pool.Insert(Neighbor(id, d));
      }
    }
  }

  if (stats != nullptr) {
    stats->distance_computations += distance_count;
    stats->elapsed_seconds += timer.Seconds();
  }
  return pool.TopK(k);
}

std::size_t QalshScanner::MemoryBytes() const {
  std::size_t total = 0;
  for (const Line& line : lines_) {
    total += line.direction.size() * sizeof(float) +
             line.projections.size() * sizeof(float) +
             line.order.size() * sizeof(VectorId);
  }
  return total;
}

}  // namespace gass::hash
