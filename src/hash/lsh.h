// Random-projection locality-sensitive hashing.
//
// Two users inside this library:
//  - seed selection: IEH-style and LSHAPG-style methods hash the query and
//    take its bucket mates as beam-search seeds;
//  - LSHAPG's probabilistic routing: a low-dimensional projected distance
//    cheaply pre-screens neighbors before exact evaluation.
//
// Scheme: E2LSH-style hash functions h(x) = floor((a·x + b) / w) with `a`
// Gaussian and `b` uniform in [0, w); each of the L tables concatenates
// `hash_bits` such functions into a bucket key.

#ifndef GASS_HASH_LSH_H_
#define GASS_HASH_LSH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/dataset.h"
#include "core/status.h"
#include "core/types.h"
#include "io/serialize.h"

namespace gass::hash {

/// LSH index parameters.
struct LshParams {
  std::size_t num_tables = 4;    ///< L independent hash tables.
  std::size_t hash_bits = 8;     ///< Concatenated functions per table.
  float bucket_width = 1.0f;     ///< w; scaled by data spread at build time.
  std::size_t projection_dim = 16;  ///< Dims kept for projected distances.
};

/// Multi-table LSH index over a dataset.
class LshIndex {
 public:
  static LshIndex Build(const core::Dataset& data, const LshParams& params,
                        std::uint64_t seed);

  /// Ids sharing a bucket with `query` in any table, deduplicated, capped at
  /// `max_candidates` (nearest buckets first is not attempted; this mirrors
  /// the plain bucket-probe used for seeding).
  std::vector<core::VectorId> Candidates(const float* query,
                                         std::size_t max_candidates) const;

  /// Squared distance between the query's projection and the stored
  /// projection of `id` — LSHAPG's cheap pre-screen. The caller projects the
  /// query once with ProjectQuery().
  std::vector<float> ProjectQuery(const float* query) const;
  float ProjectedDistance(const std::vector<float>& query_projection,
                          core::VectorId id) const;

  std::size_t num_tables() const { return tables_.size(); }
  std::size_t MemoryBytes() const;

  /// Snapshot codec. Bucket keys are emitted sorted, so encoding is
  /// deterministic despite the hash-map storage. Decode validates every
  /// stored id against `expected_n` and all array sizes against dim_.
  void EncodeTo(io::Encoder* enc) const;
  static core::Status DecodeFrom(io::Decoder* dec, std::uint64_t expected_n,
                                 LshIndex* out);

 private:
  struct Table {
    std::vector<float> directions;  // hash_bits × dim.
    std::vector<float> offsets;     // hash_bits.
    std::unordered_map<std::uint64_t, std::vector<core::VectorId>> buckets;
  };

  std::uint64_t BucketKey(const Table& table, const float* vector) const;

  std::size_t dim_ = 0;
  float width_ = 1.0f;
  std::vector<Table> tables_;
  std::vector<float> projections_;     // n × projection_dim.
  std::vector<float> projection_dirs_; // projection_dim × dim.
  std::size_t projection_dim_ = 0;
};

}  // namespace gass::hash

#endif  // GASS_HASH_LSH_H_
