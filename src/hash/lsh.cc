#include "hash/lsh.h"

#include <algorithm>
#include <cmath>

#include "core/distance.h"
#include "core/macros.h"
#include "core/rng.h"

namespace gass::hash {

using core::Dataset;
using core::Rng;
using core::VectorId;

LshIndex LshIndex::Build(const Dataset& data, const LshParams& params,
                         std::uint64_t seed) {
  GASS_CHECK(!data.empty());
  GASS_CHECK(params.num_tables > 0 && params.hash_bits > 0);
  LshIndex index;
  index.dim_ = data.dim();
  Rng rng(seed);

  // Scale the bucket width by the data spread so the parameter is unitless:
  // estimate the RMS pairwise projected spread from a small sample.
  double sum_sq = 0.0;
  const std::size_t sample =
      std::min<std::size_t>(data.size(), 256);
  for (std::size_t i = 0; i < sample; ++i) {
    const float* row = data.Row(static_cast<VectorId>(
        rng.UniformInt(data.size())));
    for (std::size_t d = 0; d < data.dim(); ++d) {
      sum_sq += static_cast<double>(row[d]) * row[d];
    }
  }
  const double rms = std::sqrt(sum_sq / (sample * data.dim()));
  index.width_ = params.bucket_width * static_cast<float>(rms > 0 ? rms : 1.0);

  index.tables_.resize(params.num_tables);
  for (Table& table : index.tables_) {
    table.directions.resize(params.hash_bits * data.dim());
    table.offsets.resize(params.hash_bits);
    for (float& v : table.directions) {
      v = static_cast<float>(rng.Normal()) /
          std::sqrt(static_cast<float>(data.dim()));
    }
    for (float& b : table.offsets) {
      b = index.width_ * static_cast<float>(rng.UniformDouble());
    }
    for (VectorId i = 0; i < data.size(); ++i) {
      table.buckets[index.BucketKey(table, data.Row(i))].push_back(i);
    }
  }

  // Projection matrix for cheap projected distances.
  index.projection_dim_ = std::min(params.projection_dim, data.dim());
  index.projection_dirs_.resize(index.projection_dim_ * data.dim());
  for (float& v : index.projection_dirs_) {
    v = static_cast<float>(rng.Normal()) /
        std::sqrt(static_cast<float>(index.projection_dim_));
  }
  index.projections_.resize(data.size() * index.projection_dim_);
  for (VectorId i = 0; i < data.size(); ++i) {
    const float* row = data.Row(i);
    for (std::size_t p = 0; p < index.projection_dim_; ++p) {
      index.projections_[i * index.projection_dim_ + p] = core::Dot(
          row, index.projection_dirs_.data() + p * data.dim(), data.dim());
    }
  }
  return index;
}

std::uint64_t LshIndex::BucketKey(const Table& table,
                                  const float* vector) const {
  // FNV-style combination of the per-function integer hashes.
  std::uint64_t key = 1469598103934665603ULL;
  const std::size_t bits = table.offsets.size();
  for (std::size_t h = 0; h < bits; ++h) {
    const float projection =
        core::Dot(vector, table.directions.data() + h * dim_, dim_);
    const std::int64_t cell = static_cast<std::int64_t>(
        std::floor((projection + table.offsets[h]) / width_));
    key ^= static_cast<std::uint64_t>(cell) + 0x9E3779B97F4A7C15ULL;
    key *= 1099511628211ULL;
  }
  return key;
}

std::vector<VectorId> LshIndex::Candidates(const float* query,
                                           std::size_t max_candidates) const {
  std::vector<VectorId> merged;
  for (const Table& table : tables_) {
    const auto it = table.buckets.find(BucketKey(table, query));
    if (it == table.buckets.end()) continue;
    merged.insert(merged.end(), it->second.begin(), it->second.end());
  }
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  if (merged.size() > max_candidates) merged.resize(max_candidates);
  return merged;
}

std::vector<float> LshIndex::ProjectQuery(const float* query) const {
  std::vector<float> projection(projection_dim_);
  for (std::size_t p = 0; p < projection_dim_; ++p) {
    projection[p] =
        core::Dot(query, projection_dirs_.data() + p * dim_, dim_);
  }
  return projection;
}

float LshIndex::ProjectedDistance(const std::vector<float>& query_projection,
                                  VectorId id) const {
  return core::L2Sq(query_projection.data(),
                    projections_.data() + id * projection_dim_,
                    projection_dim_);
}

std::size_t LshIndex::MemoryBytes() const {
  std::size_t total = projections_.size() * sizeof(float) +
                      projection_dirs_.size() * sizeof(float);
  for (const Table& table : tables_) {
    total += table.directions.size() * sizeof(float) +
             table.offsets.size() * sizeof(float);
    for (const auto& [key, bucket] : table.buckets) {
      (void)key;
      total += sizeof(std::uint64_t) + bucket.size() * sizeof(VectorId);
    }
  }
  return total;
}

}  // namespace gass::hash
