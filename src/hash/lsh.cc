#include "hash/lsh.h"

#include <algorithm>
#include <cmath>

#include "core/distance.h"
#include "core/macros.h"
#include "core/rng.h"

namespace gass::hash {

using core::Dataset;
using core::Rng;
using core::VectorId;

LshIndex LshIndex::Build(const Dataset& data, const LshParams& params,
                         std::uint64_t seed) {
  GASS_CHECK(!data.empty());
  GASS_CHECK(params.num_tables > 0 && params.hash_bits > 0);
  LshIndex index;
  index.dim_ = data.dim();
  Rng rng(seed);

  // Scale the bucket width by the data spread so the parameter is unitless:
  // estimate the RMS pairwise projected spread from a small sample.
  double sum_sq = 0.0;
  const std::size_t sample =
      std::min<std::size_t>(data.size(), 256);
  for (std::size_t i = 0; i < sample; ++i) {
    const float* row = data.Row(static_cast<VectorId>(
        rng.UniformInt(data.size())));
    for (std::size_t d = 0; d < data.dim(); ++d) {
      sum_sq += static_cast<double>(row[d]) * row[d];
    }
  }
  const double rms = std::sqrt(sum_sq / (sample * data.dim()));
  index.width_ = params.bucket_width * static_cast<float>(rms > 0 ? rms : 1.0);

  index.tables_.resize(params.num_tables);
  for (Table& table : index.tables_) {
    table.directions.resize(params.hash_bits * data.dim());
    table.offsets.resize(params.hash_bits);
    for (float& v : table.directions) {
      v = static_cast<float>(rng.Normal()) /
          std::sqrt(static_cast<float>(data.dim()));
    }
    for (float& b : table.offsets) {
      b = index.width_ * static_cast<float>(rng.UniformDouble());
    }
    for (VectorId i = 0; i < data.size(); ++i) {
      table.buckets[index.BucketKey(table, data.Row(i))].push_back(i);
    }
  }

  // Projection matrix for cheap projected distances.
  index.projection_dim_ = std::min(params.projection_dim, data.dim());
  index.projection_dirs_.resize(index.projection_dim_ * data.dim());
  for (float& v : index.projection_dirs_) {
    v = static_cast<float>(rng.Normal()) /
        std::sqrt(static_cast<float>(index.projection_dim_));
  }
  index.projections_.resize(data.size() * index.projection_dim_);
  for (VectorId i = 0; i < data.size(); ++i) {
    const float* row = data.Row(i);
    for (std::size_t p = 0; p < index.projection_dim_; ++p) {
      index.projections_[i * index.projection_dim_ + p] = core::Dot(
          row, index.projection_dirs_.data() + p * data.dim(), data.dim());
    }
  }
  return index;
}

std::uint64_t LshIndex::BucketKey(const Table& table,
                                  const float* vector) const {
  // FNV-style combination of the per-function integer hashes.
  std::uint64_t key = 1469598103934665603ULL;
  const std::size_t bits = table.offsets.size();
  for (std::size_t h = 0; h < bits; ++h) {
    const float projection =
        core::Dot(vector, table.directions.data() + h * dim_, dim_);
    const std::int64_t cell = static_cast<std::int64_t>(
        std::floor((projection + table.offsets[h]) / width_));
    key ^= static_cast<std::uint64_t>(cell) + 0x9E3779B97F4A7C15ULL;
    key *= 1099511628211ULL;
  }
  return key;
}

std::vector<VectorId> LshIndex::Candidates(const float* query,
                                           std::size_t max_candidates) const {
  std::vector<VectorId> merged;
  for (const Table& table : tables_) {
    const auto it = table.buckets.find(BucketKey(table, query));
    if (it == table.buckets.end()) continue;
    merged.insert(merged.end(), it->second.begin(), it->second.end());
  }
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  if (merged.size() > max_candidates) merged.resize(max_candidates);
  return merged;
}

std::vector<float> LshIndex::ProjectQuery(const float* query) const {
  std::vector<float> projection(projection_dim_);
  for (std::size_t p = 0; p < projection_dim_; ++p) {
    projection[p] =
        core::Dot(query, projection_dirs_.data() + p * dim_, dim_);
  }
  return projection;
}

float LshIndex::ProjectedDistance(const std::vector<float>& query_projection,
                                  VectorId id) const {
  return core::L2Sq(query_projection.data(),
                    projections_.data() + id * projection_dim_,
                    projection_dim_);
}

void LshIndex::EncodeTo(io::Encoder* enc) const {
  enc->U64(dim_);
  enc->F32(width_);
  enc->U64(projection_dim_);
  enc->U64(tables_.size());
  for (const Table& table : tables_) {
    enc->VecF32(table.directions);
    enc->VecF32(table.offsets);
    std::vector<std::uint64_t> keys;
    keys.reserve(table.buckets.size());
    for (const auto& [key, bucket] : table.buckets) {
      (void)bucket;
      keys.push_back(key);
    }
    std::sort(keys.begin(), keys.end());
    enc->U64(keys.size());
    for (std::uint64_t key : keys) {
      enc->U64(key);
      enc->VecU32(table.buckets.at(key));
    }
  }
  enc->VecF32(projections_);
  enc->VecF32(projection_dirs_);
}

core::Status LshIndex::DecodeFrom(io::Decoder* dec, std::uint64_t expected_n,
                                  LshIndex* out) {
  LshIndex lsh;
  lsh.dim_ = dec->U64();
  lsh.width_ = dec->F32();
  lsh.projection_dim_ = dec->U64();
  const std::uint64_t num_tables = dec->U64();
  if (!dec->Check(lsh.dim_ > 0 && lsh.dim_ <= (1u << 24),
                  "lsh dimension out of range") ||
      !dec->Check(num_tables <= 4096, "lsh table count out of range")) {
    return dec->status();
  }
  lsh.tables_.resize(num_tables);
  for (std::uint64_t t = 0; t < num_tables && dec->ok(); ++t) {
    Table& table = lsh.tables_[t];
    dec->VecF32(&table.directions, dec->remaining());
    dec->VecF32(&table.offsets, dec->remaining());
    if (!dec->Check(table.directions.size() ==
                        table.offsets.size() * lsh.dim_,
                    "lsh table " + std::to_string(t) +
                        " direction/offset size mismatch")) {
      return dec->status();
    }
    std::uint64_t num_buckets = dec->U64();
    if (!dec->Check(num_buckets <= dec->remaining() / sizeof(std::uint64_t),
                    "lsh bucket count exceeds remaining payload")) {
      return dec->status();
    }
    table.buckets.reserve(num_buckets);
    for (std::uint64_t b = 0; b < num_buckets && dec->ok(); ++b) {
      const std::uint64_t key = dec->U64();
      std::vector<core::VectorId> ids;
      if (!dec->VecU32(&ids, expected_n)) return dec->status();
      for (core::VectorId id : ids) {
        if (!dec->Check(id < expected_n,
                        "lsh bucket id " + std::to_string(id) +
                            " out of range")) {
          return dec->status();
        }
      }
      if (!dec->Check(table.buckets.emplace(key, std::move(ids)).second,
                      "duplicate lsh bucket key")) {
        return dec->status();
      }
    }
  }
  dec->VecF32(&lsh.projections_, dec->remaining());
  dec->VecF32(&lsh.projection_dirs_, dec->remaining());
  GASS_RETURN_IF_ERROR(dec->status());
  if (lsh.projections_.size() != expected_n * lsh.projection_dim_ ||
      lsh.projection_dirs_.size() != lsh.projection_dim_ * lsh.dim_) {
    dec->Fail("lsh projection array size mismatch");
    return dec->status();
  }
  *out = std::move(lsh);
  return core::Status::Ok();
}

std::size_t LshIndex::MemoryBytes() const {
  std::size_t total = projections_.size() * sizeof(float) +
                      projection_dirs_.size() * sizeof(float);
  for (const Table& table : tables_) {
    total += table.directions.size() * sizeof(float) +
             table.offsets.size() * sizeof(float);
    for (const auto& [key, bucket] : table.buckets) {
      (void)key;
      total += sizeof(std::uint64_t) + bucket.size() * sizeof(VectorId);
    }
  }
  return total;
}

}  // namespace gass::hash
