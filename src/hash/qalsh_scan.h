// Query-aware LSH searcher in the style of QALSH — the δ-ε-approximate
// baseline of the paper's Fig. 1.
//
// QALSH's key idea is query-aware bucketing: the data is projected onto m
// random lines and *sorted* per line; at query time buckets are formed
// around the query's own projection, and collision counting walks outward
// from the query position on every line. A point whose collision count
// reaches the threshold is verified against the raw vectors; the search
// stops once enough verified candidates are gathered.

#ifndef GASS_HASH_QALSH_SCAN_H_
#define GASS_HASH_QALSH_SCAN_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/neighbor.h"
#include "core/stats.h"

namespace gass::hash {

/// QALSH-style index parameters.
struct QalshParams {
  std::size_t num_lines = 32;          ///< Projection lines m.
  std::size_t collision_threshold = 4; ///< Collisions before verification.
  /// Verified-candidate budget as a fraction of n (the β of c-ANN theory).
  double candidate_fraction = 0.05;
};

/// Query-aware LSH searcher.
class QalshScanner {
 public:
  static QalshScanner Build(const core::Dataset& data,
                            const QalshParams& params, std::uint64_t seed);

  /// ANN search with collision counting; returns the best k verified
  /// answers (approximate, with the usual QALSH-style quality behaviour).
  std::vector<core::Neighbor> Search(const core::Dataset& data,
                                     const float* query, std::size_t k,
                                     core::SearchStats* stats = nullptr) const;

  std::size_t MemoryBytes() const;

 private:
  struct Line {
    std::vector<float> direction;          // dim floats.
    std::vector<float> projections;        // Sorted projection values.
    std::vector<core::VectorId> order;     // Ids in projection order.
  };

  std::size_t dim_ = 0;
  QalshParams params_;
  std::vector<Line> lines_;
};

}  // namespace gass::hash

#endif  // GASS_HASH_QALSH_SCAN_H_
