#include "obs/trace.h"

#include "core/rng.h"

namespace gass::obs {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kQueue:
      return "queue";
    case Stage::kSession:
      return "session";
    case Stage::kSearch:
      return "search";
    case Stage::kRoute:
      return "route";
    case Stage::kShardSearch:
      return "shard_search";
    case Stage::kMerge:
      return "merge";
    case Stage::kHedge:
      return "hedge";
    case Stage::kWalAppend:
      return "wal_append";
    case Stage::kApply:
      return "apply";
    case Stage::kReplicaFailover:
      return "replica_failover";
  }
  return "unknown";
}

void QueryTrace::Begin(std::uint64_t admission_id) {
  admission_id_ = admission_id;
  total_ns_ = 0;
  count_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  start_ = std::chrono::steady_clock::now();
}

std::uint64_t QueryTrace::ElapsedNs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

void QueryTrace::AddSpan(const TraceSpan& span) {
  std::uint32_t idx = count_.load(std::memory_order_relaxed);
  do {
    if (idx >= kMaxSpans) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // Release on success publishes the claimed slot index; the matching
    // acquire in size() keeps post-quiesce readers from seeing a count
    // ahead of the span writes below (writes happen-before the fan-out
    // join that precedes any read, but the fence costs nothing here).
  } while (!count_.compare_exchange_weak(idx, idx + 1,
                                         std::memory_order_release,
                                         std::memory_order_relaxed));
  spans_[idx] = span;
}

void Tracer::Configure(const TracerOptions& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  options_ = options;
  completed_.clear();
  free_.clear();
  slots_.clear();
  if (options_.sample_period > 0) {
    slots_.reserve(options_.max_traces);
    free_.reserve(options_.max_traces);
    completed_.reserve(options_.max_traces);
    for (std::size_t i = 0; i < options_.max_traces; ++i) {
      slots_.push_back(std::make_unique<QueryTrace>());
    }
    for (auto& slot : slots_) free_.push_back(slot.get());
  }
  overflowed_.store(0, std::memory_order_relaxed);
}

bool Tracer::ShouldSample(std::uint64_t admission_id) const {
  if (options_.sample_period == 0) return false;
  if (options_.sample_period == 1) return true;
  // One SplitMix64 step keyed on (seed, id): deterministic, stateless, and
  // well-mixed even for the sequential ids the frontend assigns.
  return core::Rng(options_.seed ^ admission_id).Next() %
             options_.sample_period ==
         0;
}

QueryTrace* Tracer::StartTrace(std::uint64_t admission_id) {
  if (!ShouldSample(admission_id)) return nullptr;
  QueryTrace* trace = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (free_.empty()) {
      overflowed_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    trace = free_.back();
    free_.pop_back();
  }
  trace->Begin(admission_id);
  return trace;
}

void Tracer::FinishTrace(QueryTrace* trace) {
  if (trace == nullptr) return;
  trace->Finish();
  std::lock_guard<std::mutex> lock(mutex_);
  completed_.push_back(trace);
}

std::vector<const QueryTrace*> Tracer::Completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<const QueryTrace*>(completed_.begin(), completed_.end());
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  completed_.clear();
  free_.clear();
  for (auto& slot : slots_) free_.push_back(slot.get());
  overflowed_.store(0, std::memory_order_relaxed);
}

}  // namespace gass::obs
