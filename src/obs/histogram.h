// Lock-free, log-bucketed latency histogram (HDR-style, base 2 with 8
// sub-buckets per octave → ≤ ~6% relative quantile error).
//
// Lives in obs/ (not serve/) so the metrics exporter can walk histogram
// buckets without depending on the serving tier; serve::ServeMetrics
// aliases it. Record() is wait-free (one relaxed fetch_add). Covers ~8ns
// to ~2.4h; out-of-range samples — including the absurd ones an overload
// spike can produce (hours-long waits, +inf from a division by a zero
// rate, NaN) — saturate into the edge buckets instead of wrapping the
// nanosecond conversion, so percentile math stays monotone no matter what
// is fed in.

#ifndef GASS_OBS_HISTOGRAM_H_
#define GASS_OBS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>

namespace gass::obs {

class LatencyHistogram {
 public:
  LatencyHistogram() { Reset(); }

  void Record(double seconds);

  /// Approximate latency at quantile `q` in [0, 1] (0.5 = median). Returns
  /// 0 when empty. Not linearizable against concurrent Record()s.
  double QuantileSeconds(double q) const;

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  /// Samples landed in bucket `index` (for exporters walking the buckets).
  std::uint64_t bucket_count(std::size_t index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }

  /// Inclusive upper edge of bucket `index`, in seconds — the Prometheus
  /// `le` boundary for that bucket.
  static double BucketUpperSeconds(std::size_t index);

  /// Midpoint of bucket `index`, in seconds (quantile/sum estimates).
  static double BucketMidSeconds(std::size_t index) {
    return BucketMidNanos(index) * 1e-9;
  }

  /// Approximate sum of all recorded samples, in seconds (each sample
  /// counted at its bucket midpoint). Feeds the Prometheus `_sum` series.
  double ApproxSumSeconds() const;

  /// Not safe concurrently with Record().
  void Reset();

  // 8 sub-buckets per power-of-two octave over nanoseconds; shift 0 covers
  // [8ns, 16ns), shift kShifts-1 tops out around 2^43 ns ≈ 2.4 h.
  static constexpr std::size_t kSub = 8;
  static constexpr std::size_t kShifts = 40;
  static constexpr std::size_t kBuckets = kSub * kShifts;

 private:
  static std::size_t BucketIndex(std::uint64_t nanos);
  static double BucketMidNanos(std::size_t index);

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_;
  std::atomic<std::uint64_t> count_{0};
};

}  // namespace gass::obs

#endif  // GASS_OBS_HISTOGRAM_H_
