#include "obs/exporter.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace gass::obs {

namespace {

/// Formats a double for both output formats: plain decimal, enough digits
/// to round-trip, never scientific's locale pitfalls. NaN/inf never reach
/// here from our producers, but guard anyway (JSON has no literal for
/// them).
std::string FormatDouble(double value) {
  if (!std::isfinite(value)) return "0";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

std::string FormatU64(std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  return buffer;
}

/// JSON string escaping for names/labels (quotes, backslashes, control
/// bytes; our producers emit ASCII identifiers, so this is belt-and-
/// suspenders).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendJsonSample(std::string* out, const std::string& name,
                      const std::string& labels, double value) {
  *out += "{\"name\":\"";
  *out += JsonEscape(name);
  *out += "\"";
  if (!labels.empty()) {
    *out += ",\"labels\":\"";
    *out += JsonEscape(labels);
    *out += "\"";
  }
  *out += ",\"value\":";
  *out += FormatDouble(value);
  *out += "}";
}

void AppendPromHeader(std::string* out, const std::string& name,
                      const std::string& help, const char* type) {
  if (!help.empty()) {
    *out += "# HELP ";
    *out += name;
    *out += " ";
    *out += help;
    *out += "\n";
  }
  *out += "# TYPE ";
  *out += name;
  *out += " ";
  *out += type;
  *out += "\n";
}

}  // namespace

void Exporter::AddCounter(const std::string& name, double value,
                          const std::string& help,
                          const std::string& labels) {
  counters_.push_back(Sample{name, help, labels, value});
}

void Exporter::AddGauge(const std::string& name, double value,
                        const std::string& help, const std::string& labels) {
  gauges_.push_back(Sample{name, help, labels, value});
}

void Exporter::AddHistogram(const std::string& name,
                            const LatencyHistogram& histogram,
                            const std::string& help) {
  HistogramSnapshot snap;
  snap.name = name;
  snap.help = help;
  snap.count = histogram.count();
  snap.sum_seconds = histogram.ApproxSumSeconds();
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    const std::uint64_t n = histogram.bucket_count(i);
    if (n != 0) {
      snap.buckets.emplace_back(LatencyHistogram::BucketUpperSeconds(i), n);
    }
  }
  histograms_.push_back(std::move(snap));
}

void Exporter::AddTrace(const QueryTrace& trace) {
  TraceSnapshot snap;
  snap.admission_id = trace.admission_id();
  snap.total_ns = trace.total_ns();
  snap.dropped = trace.dropped();
  const std::size_t n = trace.size();
  snap.spans.reserve(n);
  for (std::size_t i = 0; i < n; ++i) snap.spans.push_back(trace.span(i));
  traces_.push_back(std::move(snap));
}

void Exporter::AddTracer(const Tracer& tracer) {
  for (const QueryTrace* trace : tracer.Completed()) AddTrace(*trace);
}

std::string Exporter::ToJson() const {
  std::string out = "{\"counters\":[";
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (i != 0) out += ",";
    AppendJsonSample(&out, counters_[i].name, counters_[i].labels,
                     counters_[i].value);
  }
  out += "],\"gauges\":[";
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    if (i != 0) out += ",";
    AppendJsonSample(&out, gauges_[i].name, gauges_[i].labels,
                     gauges_[i].value);
  }
  out += "],\"histograms\":[";
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    const HistogramSnapshot& h = histograms_[i];
    if (i != 0) out += ",";
    out += "{\"name\":\"";
    out += JsonEscape(h.name);
    out += "\",\"count\":";
    out += FormatU64(h.count);
    out += ",\"sum_seconds\":";
    out += FormatDouble(h.sum_seconds);
    out += ",\"buckets\":[";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b != 0) out += ",";
      out += "{\"le\":";
      out += FormatDouble(h.buckets[b].first);
      out += ",\"count\":";
      out += FormatU64(h.buckets[b].second);
      out += "}";
    }
    out += "]}";
  }
  out += "],\"traces\":[";
  for (std::size_t i = 0; i < traces_.size(); ++i) {
    const TraceSnapshot& t = traces_[i];
    if (i != 0) out += ",";
    out += "{\"admission_id\":";
    out += FormatU64(t.admission_id);
    out += ",\"total_ns\":";
    out += FormatU64(t.total_ns);
    out += ",\"dropped_spans\":";
    out += FormatU64(t.dropped);
    out += ",\"spans\":[";
    for (std::size_t s = 0; s < t.spans.size(); ++s) {
      const TraceSpan& span = t.spans[s];
      if (s != 0) out += ",";
      out += "{\"stage\":\"";
      out += StageName(span.stage);
      out += "\",\"shard\":";
      char shard_buf[16];
      std::snprintf(shard_buf, sizeof(shard_buf), "%d", span.shard);
      out += shard_buf;
      out += ",\"start_ns\":";
      out += FormatU64(span.start_ns);
      out += ",\"duration_ns\":";
      out += FormatU64(span.duration_ns);
      out += ",\"distance_computations\":";
      out += FormatU64(span.distance_computations);
      out += ",\"hops\":";
      out += FormatU64(span.hops);
      out += ",\"prefetches\":";
      out += FormatU64(span.prefetches);
      out += "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string Exporter::ToPrometheus() const {
  std::string out;
  for (const Sample& c : counters_) {
    AppendPromHeader(&out, c.name, c.help, "counter");
    out += c.name;
    if (!c.labels.empty()) {
      out += "{";
      out += c.labels;
      out += "}";
    }
    out += " ";
    out += FormatDouble(c.value);
    out += "\n";
  }
  for (const Sample& g : gauges_) {
    AppendPromHeader(&out, g.name, g.help, "gauge");
    out += g.name;
    if (!g.labels.empty()) {
      out += "{";
      out += g.labels;
      out += "}";
    }
    out += " ";
    out += FormatDouble(g.value);
    out += "\n";
  }
  for (const HistogramSnapshot& h : histograms_) {
    AppendPromHeader(&out, h.name, h.help, "histogram");
    std::uint64_t cumulative = 0;
    for (const auto& [upper, count] : h.buckets) {
      cumulative += count;
      out += h.name;
      out += "_bucket{le=\"";
      out += FormatDouble(upper);
      out += "\"} ";
      out += FormatU64(cumulative);
      out += "\n";
    }
    out += h.name;
    out += "_bucket{le=\"+Inf\"} ";
    out += FormatU64(h.count);
    out += "\n";
    out += h.name;
    out += "_sum ";
    out += FormatDouble(h.sum_seconds);
    out += "\n";
    out += h.name;
    out += "_count ";
    out += FormatU64(h.count);
    out += "\n";
  }
  return out;
}

core::Status Exporter::WriteFile(const std::string& path,
                                 const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return core::Status::IoError("cannot open '" + path + "' for writing");
  }
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out.flush();
  if (!out) return core::Status::IoError("short write to '" + path + "'");
  return core::Status::Ok();
}

core::Status Exporter::WriteJson(const std::string& path) const {
  return WriteFile(path, ToJson() + "\n");
}

core::Status Exporter::WritePrometheus(const std::string& path) const {
  return WriteFile(path, ToPrometheus());
}

}  // namespace gass::obs
