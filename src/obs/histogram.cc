#include "obs/histogram.h"

#include <bit>

namespace gass::obs {

std::size_t LatencyHistogram::BucketIndex(std::uint64_t nanos) {
  if (nanos < kSub) nanos = kSub;  // Clamp into the first octave.
  // Normalize the value into [8, 16): the shift count selects the octave,
  // the three bits below the leading one select the sub-bucket.
  std::size_t shift = static_cast<std::size_t>(std::bit_width(nanos)) - 4;
  if (shift >= kShifts) shift = kShifts - 1;
  const std::uint64_t normalized = nanos >> shift;
  const std::size_t sub =
      normalized >= 2 * kSub ? kSub - 1 : static_cast<std::size_t>(normalized - kSub);
  return shift * kSub + sub;
}

double LatencyHistogram::BucketMidNanos(std::size_t index) {
  const std::size_t shift = index / kSub;
  const std::size_t sub = index % kSub;
  return (static_cast<double>(kSub + sub) + 0.5) *
         static_cast<double>(std::uint64_t{1} << shift);
}

double LatencyHistogram::BucketUpperSeconds(std::size_t index) {
  const std::size_t shift = index / kSub;
  const std::size_t sub = index % kSub;
  return static_cast<double>(kSub + sub + 1) *
         static_cast<double>(std::uint64_t{1} << shift) * 1e-9;
}

void LatencyHistogram::Record(double seconds) {
  // NaN and negatives clamp to zero (bottom bucket). The top clamp happens
  // in floating point, *before* the integer cast: a sample past ~584 years
  // of nanoseconds (or +inf) would otherwise be undefined behavior in the
  // cast and could wrap to a tiny bucket, corrupting every quantile above
  // it. Saturating here pins such samples to the top bucket instead.
  if (!(seconds > 0)) seconds = 0;
  const double nanos_fp = seconds * 1e9;
  constexpr double kMaxNanos = 9.2e18;  // < 2^63, exactly representable.
  const std::uint64_t nanos =
      nanos_fp >= kMaxNanos ? static_cast<std::uint64_t>(kMaxNanos)
                            : static_cast<std::uint64_t>(nanos_fp);
  buckets_[BucketIndex(nanos)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

double LatencyHistogram::QuantileSeconds(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the q-quantile sample (1-based, nearest-rank method).
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return BucketMidNanos(i) * 1e-9;
  }
  return BucketMidNanos(kBuckets - 1) * 1e-9;
}

double LatencyHistogram::ApproxSumSeconds() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) sum += static_cast<double>(n) * BucketMidSeconds(i);
  }
  return sum;
}

void LatencyHistogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
}

}  // namespace gass::obs
