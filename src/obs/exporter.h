// Metrics/trace exporter: collects counters, gauges, histograms, and
// sampled query traces, then renders them as JSON or Prometheus text.
//
// The exporter is a passive sink: producers (serve::ServeMetrics::ExportTo,
// the CLI, benches) push snapshots in, and the two renderers walk the
// collected state. It lives in obs/ and depends only on core, so any layer
// can export without pulling in the serving tier.
//
// Formats:
//  * ToJson(): one object with "counters", "gauges", "histograms", and
//    "traces" arrays. Trace spans carry stage name, shard, start/duration
//    nanoseconds, and work counters — the machine-readable form of a
//    `serve-bench --trace` run.
//  * ToPrometheus(): text exposition format (# HELP/# TYPE lines, then
//    samples). Histograms emit cumulative `_bucket{le="..."}` series over
//    the non-empty bucket edges plus the mandatory `+Inf`, `_sum`
//    (midpoint approximation), and `_count`. Traces are not representable
//    in Prometheus and are omitted.

#ifndef GASS_OBS_EXPORTER_H_
#define GASS_OBS_EXPORTER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/status.h"
#include "obs/histogram.h"
#include "obs/trace.h"

namespace gass::obs {

class Exporter {
 public:
  /// Adds one cumulative counter sample. `labels` is a pre-formatted
  /// Prometheus label body without braces (e.g. `step="3"`); empty = none.
  void AddCounter(const std::string& name, double value,
                  const std::string& help = "",
                  const std::string& labels = "");

  /// Adds one point-in-time gauge sample.
  void AddGauge(const std::string& name, double value,
                const std::string& help = "",
                const std::string& labels = "");

  /// Snapshots `histogram`'s buckets under `name` (counts are copied; the
  /// histogram may keep recording afterwards).
  void AddHistogram(const std::string& name,
                    const LatencyHistogram& histogram,
                    const std::string& help = "");

  /// Copies one finished trace's spans.
  void AddTrace(const QueryTrace& trace);

  /// Copies every completed trace held by `tracer`.
  void AddTracer(const Tracer& tracer);

  std::string ToJson() const;
  std::string ToPrometheus() const;

  core::Status WriteJson(const std::string& path) const;
  core::Status WritePrometheus(const std::string& path) const;

  std::size_t num_traces() const { return traces_.size(); }

 private:
  struct Sample {
    std::string name;
    std::string help;
    std::string labels;
    double value = 0.0;
  };
  struct HistogramSnapshot {
    std::string name;
    std::string help;
    std::uint64_t count = 0;
    double sum_seconds = 0.0;
    /// (upper edge seconds, per-bucket count) for non-empty buckets, in
    /// ascending edge order.
    std::vector<std::pair<double, std::uint64_t>> buckets;
  };
  struct TraceSnapshot {
    std::uint64_t admission_id = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t dropped = 0;
    std::vector<TraceSpan> spans;
  };

  static core::Status WriteFile(const std::string& path,
                                const std::string& text);

  std::vector<Sample> counters_;
  std::vector<Sample> gauges_;
  std::vector<HistogramSnapshot> histograms_;
  std::vector<TraceSnapshot> traces_;
};

}  // namespace gass::obs

#endif  // GASS_OBS_EXPORTER_H_
