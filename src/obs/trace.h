// Per-query tracing: stage spans, steady-clock timers, and a deterministic
// sampler — the observability layer behind serve::SearchRequest::trace.
//
// Design constraints (see docs/OBSERVABILITY.md):
//
//  * Zero heap allocation on the untraced path. A null QueryTrace* is the
//    "tracing off" signal everywhere: StageTimer with a null trace never
//    reads the clock, Tracer::StartTrace for an unsampled query returns
//    nullptr after one SplitMix64 hash (no lock, no allocation), and
//    QueryTrace itself is a fixed-size object — spans live in an inline
//    array, never a growing vector.
//
//  * Deterministic sampling. Whether a query is traced depends only on
//    (sampler seed, admission id): SplitMix64(seed ^ id) % period == 0.
//    Two runs that assign the same admission ids trace the same query set,
//    so per-stage counters (distance computations, hops, prefetches —
//    which are themselves deterministic) compare bit-for-bit run-to-run.
//
//  * Thread-safe span append. One query's trace may receive spans from
//    several threads at once (sharded fan-out workers); AddSpan claims a
//    slot with a CAS and never blocks. Spans past the inline capacity are
//    counted in dropped(), not silently lost.
//
// Stages mirror the serve path: queue wait and session acquire in
// serve::Frontend / QueryExecutor, then either one opaque search span
// (unsharded index) or route + per-shard search + merge spans
// (shard::ShardedIndex).

#ifndef GASS_OBS_TRACE_H_
#define GASS_OBS_TRACE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/stats.h"

namespace gass::obs {

/// Serve-path stages a span can cover.
enum class Stage : std::uint8_t {
  kQueue = 0,     ///< Admission-queue wait (submit → worker dequeue).
  kSession,       ///< Session acquire + per-query param/RNG preparation.
  kSearch,        ///< Whole index search (unsharded indexes only).
  kRoute,         ///< Centroid ranking / shard selection (sharded).
  kShardSearch,   ///< One shard's sub-search (one span per probe).
  kMerge,         ///< Per-shard top-k merge into the global result.
  kHedge,         ///< Hedged fan-out window: backup launch → resolution.
  kWalAppend,     ///< Update path: WAL record append + fsync (durability).
  kApply,         ///< Update path: in-memory apply under the update lock.
  kReplicaFailover,  ///< Failed replica attempt retried on a peer replica
                     ///< of the same shard (one span per failover).
};

inline constexpr std::size_t kNumStages = 10;

/// Short lowercase label ("queue", "session", "search", "route",
/// "shard_search", "merge", "hedge", "wal_append", "apply",
/// "replica_failover") — stable: exported in JSON and metric names.
const char* StageName(Stage stage);

/// One timed stage of one query, with the stage's work counters.
struct TraceSpan {
  Stage stage = Stage::kSearch;
  /// Shard probed (kShardSearch spans); -1 elsewhere.
  std::int32_t shard = -1;
  /// Offset from the trace's Begin(), and the span's length, both in
  /// steady-clock nanoseconds.
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  // Work counters attributed to this stage (0 when not applicable).
  std::uint64_t distance_computations = 0;
  std::uint64_t hops = 0;
  std::uint64_t prefetches = 0;
};

/// One sampled query's spans. Fixed-size: no allocation after construction.
///
/// Lifecycle: Begin(id) (stamps the reference clock) → AddSpan from any
/// thread → Finish() (stamps total_ns) → read-only. Readers must not race
/// AddSpan; the serve tier guarantees that by finishing the trace only
/// after the query's result future is fulfilled.
class QueryTrace {
 public:
  /// Enough for queue + session + route + merge plus ~90 shard probes;
  /// deeper fan-outs count overflow spans in dropped().
  static constexpr std::size_t kMaxSpans = 96;

  QueryTrace() = default;
  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  /// Re-arms the trace for a new query: clears spans, stamps the
  /// steady-clock origin all span offsets are measured from.
  void Begin(std::uint64_t admission_id);

  /// Nanoseconds since Begin() (steady clock).
  std::uint64_t ElapsedNs() const;

  /// Claims a slot and stores `span`. Lock-free; safe from concurrent
  /// fan-out threads. Over-capacity spans increment dropped().
  void AddSpan(const TraceSpan& span);

  /// Stamps total_ns = ElapsedNs(). Call once, after all AddSpan calls.
  void Finish() { total_ns_ = ElapsedNs(); }

  std::uint64_t admission_id() const { return admission_id_; }
  std::uint64_t total_ns() const { return total_ns_; }
  std::size_t size() const {
    const std::uint32_t n = count_.load(std::memory_order_acquire);
    return n < kMaxSpans ? n : kMaxSpans;
  }
  const TraceSpan& span(std::size_t i) const { return spans_[i]; }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  std::uint64_t admission_id_ = 0;
  std::uint64_t total_ns_ = 0;
  std::chrono::steady_clock::time_point start_{};
  std::atomic<std::uint32_t> count_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::array<TraceSpan, kMaxSpans> spans_{};
};

/// RAII stage timer. Null `trace` = no-op: no clock read, no allocation,
/// nothing stored — the untraced fast path compiles down to two pointer
/// checks. Otherwise records one TraceSpan on Stop()/destruction.
class StageTimer {
 public:
  StageTimer(QueryTrace* trace, Stage stage, std::int32_t shard = -1)
      : trace_(trace), stage_(stage), shard_(shard) {
    if (trace_ != nullptr) start_ns_ = trace_->ElapsedNs();
  }
  ~StageTimer() { Stop(); }

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  /// Attributes work counters to the span (typically from the stage's
  /// SearchStats delta).
  void SetStats(const core::SearchStats& stats) {
    if (trace_ == nullptr) return;
    dists_ = stats.distance_computations;
    hops_ = stats.hops;
    prefetches_ = stats.prefetches;
  }

  /// Records the span now (idempotent; destructor calls it).
  void Stop() {
    if (trace_ == nullptr) return;
    TraceSpan span;
    span.stage = stage_;
    span.shard = shard_;
    span.start_ns = start_ns_;
    span.duration_ns = trace_->ElapsedNs() - start_ns_;
    span.distance_computations = dists_;
    span.hops = hops_;
    span.prefetches = prefetches_;
    trace_->AddSpan(span);
    trace_ = nullptr;
  }

  /// Discards the pending span without recording it (used by callers that
  /// learn mid-stage that a finer-grained breakdown was already recorded).
  void Cancel() { trace_ = nullptr; }

 private:
  QueryTrace* trace_;
  Stage stage_;
  std::int32_t shard_;
  std::uint64_t start_ns_ = 0;
  std::uint64_t dists_ = 0;
  std::uint64_t hops_ = 0;
  std::uint64_t prefetches_ = 0;
};

struct TracerOptions {
  /// Sampling period: 0 = tracing disabled, 1 = trace every query,
  /// N = trace the deterministic 1-in-N subset of admission ids.
  std::uint64_t sample_period = 0;
  /// Sampler key. The sampled set is a pure function of (seed, id).
  std::uint64_t seed = 0x0B5ED5EEDULL;
  /// Retained-trace cap: slots are preallocated up front, and each slot is
  /// used once — after max_traces sampled queries finish, further sampled
  /// queries fall back to untraced (counted in overflowed()).
  std::size_t max_traces = 256;
};

/// Owns the trace slot pool and the sampling decision.
///
/// Hot path (StartTrace on an unsampled query) is lock-free and
/// allocation-free. Sampled queries take a mutex to pop a preallocated
/// slot — off the common path by construction when sample_period is large,
/// and bounded by max_traces either way.
class Tracer {
 public:
  Tracer() = default;
  explicit Tracer(const TracerOptions& options) { Configure(options); }

  /// (Re)configures and preallocates slots. Not safe concurrently with
  /// StartTrace/FinishTrace. Discards previously completed traces.
  void Configure(const TracerOptions& options);

  bool enabled() const { return options_.sample_period > 0; }
  const TracerOptions& options() const { return options_; }

  /// Pure sampling decision for `admission_id` (no state touched).
  bool ShouldSample(std::uint64_t admission_id) const;

  /// Begins a trace for a sampled query; returns nullptr when tracing is
  /// disabled, the id is not sampled, or the slot pool is exhausted.
  QueryTrace* StartTrace(std::uint64_t admission_id);

  /// Finishes `trace` (stamps its total) and retires it to the completed
  /// list. Null is a no-op, so callers can pass their handle untested.
  void FinishTrace(QueryTrace* trace);

  /// Completed traces, in completion order. Valid once tracing threads
  /// have quiesced; pointers live until Configure()/Reset().
  std::vector<const QueryTrace*> Completed() const;

  /// Sampled queries that found no free slot (trace lost to the cap).
  std::uint64_t overflowed() const {
    return overflowed_.load(std::memory_order_relaxed);
  }

  /// Returns all slots to the free list and clears counters. Not safe
  /// concurrently with StartTrace/FinishTrace.
  void Reset();

 private:
  TracerOptions options_;
  std::vector<std::unique_ptr<QueryTrace>> slots_;
  std::vector<QueryTrace*> free_;
  std::vector<QueryTrace*> completed_;
  mutable std::mutex mutex_;
  std::atomic<std::uint64_t> overflowed_{0};
};

}  // namespace gass::obs

#endif  // GASS_OBS_TRACE_H_
