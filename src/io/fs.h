// Small filesystem durability helpers shared by the snapshot writer and the
// write-ahead log.
//
// POSIX makes a freshly renamed file durable only once the *parent
// directory* has been fsynced: fsync on the data file persists its bytes,
// but the rename that links the new name into the directory lives in the
// directory's metadata, which has its own dirty state. A power failure
// between rename and directory fsync can resurrect the old file (or no
// file) even though the data itself was flushed. Every crash-safe
// tmp+rename sequence in this codebase therefore ends with
// FsyncParentDirectory (see docs/PERSISTENCE.md "Durability & live
// updates").

#ifndef GASS_IO_FS_H_
#define GASS_IO_FS_H_

#include <cstdint>
#include <string>

#include "core/status.h"

namespace gass::io {

/// Returns the directory component of `path` ("." when there is none).
std::string ParentDirectory(const std::string& path);

/// fsyncs the directory containing `path`, making a preceding rename (or
/// create/unlink) of `path` itself durable.
core::Status FsyncParentDirectory(const std::string& path);

/// Truncates the file at `path` to exactly `size` bytes and makes the new
/// length durable (fsync of the file, then of its parent directory). Used
/// to cut a torn WAL tail; refuses to *extend* a file.
core::Status TruncateFile(const std::string& path, std::uint64_t size);

/// Size of the file at `path` in bytes.
core::Status FileSize(const std::string& path, std::uint64_t* out);

/// Whether a regular file exists at `path`.
bool FileExists(const std::string& path);

/// Creates the directory at `path` (one level, mode 0755) and makes the
/// new entry durable by fsyncing its parent. Ok if it already exists.
core::Status CreateDirectory(const std::string& path);

}  // namespace gass::io

#endif  // GASS_IO_FS_H_
