// One-call snapshot opening for any on-disk index layout.
//
// A snapshot at `path` is either a plain per-method snapshot (load with
// methods::LoadAnyIndex) or a sharded manifest plus per-shard files (load
// with shard::LoadShardedIndex) — and every CLI/bench used to sniff the
// difference itself. OpenIndex centralizes the dispatch: it reads the
// snapshot header once, checks the method name with
// shard::IsShardedSnapshotMethod, and hands back a ready-to-search
// GraphIndex either way.

#ifndef GASS_IO_OPEN_INDEX_H_
#define GASS_IO_OPEN_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/dataset.h"
#include "core/status.h"
#include "methods/graph_index.h"
#include "serve/live_hnsw.h"
#include "serve/updater.h"
#include "shard/live_sharded_index.h"

namespace gass::io {

struct OpenIndexOptions {
  /// Base seed; must match the seed the saved index was built with (the
  /// snapshot's params fingerprint is verified by the underlying loader).
  std::uint64_t seed = 42;
  /// Sharded snapshots only: post-load nprobe override (0 = keep the
  /// manifest default of probing every shard).
  std::size_t nprobe = 0;
  /// Sharded snapshots only: per-query fan-out threads (0 = fan out on
  /// the caller thread — the right choice under an outer executor).
  std::size_t fanout_threads = 0;
  /// Sharded snapshots only: replicas attached per shard (0 or 1 = none).
  /// A serving knob, not a snapshot property — every replica loads from
  /// the same per-shard file.
  std::size_t replicas = 1;
};

/// Opens the snapshot at `path` — plain or sharded — against `data` and
/// returns the loaded index. The sniff reads only the snapshot header;
/// both loaders then re-validate everything they consume.
core::Status OpenIndex(const std::string& path, const core::Dataset& data,
                       const OpenIndexOptions& options,
                       std::unique_ptr<methods::GraphIndex>* out);

/// Convenience overload with default options except the seed.
core::Status OpenIndex(const std::string& path, const core::Dataset& data,
                       std::uint64_t seed,
                       std::unique_ptr<methods::GraphIndex>* out);

struct OpenLiveIndexOptions {
  /// Checkpoint/WAL location and durability knobs; the checkpoint is read
  /// from serve::Updater::CheckpointPath(updater).
  serve::UpdaterOptions updater;
  /// Shell parameters when the checkpoint holds a LIVE-HNSW index — must
  /// match the original build (fingerprint-verified by Updater::Open).
  serve::LiveHnswOptions hnsw;
  /// Shell parameters when the checkpoint holds LIVE-SHARDED-HNSW.
  shard::LiveShardedOptions sharded;
};

/// Recovers a live (updatable) index from its checkpoint + WALs: sniffs
/// which LiveIndex implementation the checkpoint holds, builds the
/// matching shell over `base` (the original build dataset), and replays
/// through serve::Updater::Open. On success `*live` owns the index,
/// `*updater` accepts new updates, and `*report` says what replay did.
core::Status OpenLiveIndex(const core::Dataset& base,
                           const OpenLiveIndexOptions& options,
                           std::unique_ptr<serve::LiveIndex>* live,
                           std::unique_ptr<serve::Updater>* updater,
                           serve::RecoveryReport* report);

}  // namespace gass::io

#endif  // GASS_IO_OPEN_INDEX_H_
