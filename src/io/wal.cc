#include "io/wal.h"

#include <cerrno>
#include <cstring>
#include <vector>

#include <unistd.h>

#include "core/macros.h"
#include "io/fs.h"
#include "io/hash.h"

namespace gass::io {

namespace {

void PutU32(std::uint8_t* dst, std::uint32_t v) {
  std::memcpy(dst, &v, sizeof(v));
}

void PutU64(std::uint8_t* dst, std::uint64_t v) {
  std::memcpy(dst, &v, sizeof(v));
}

std::uint32_t GetU32(const std::uint8_t* src) {
  std::uint32_t v;
  std::memcpy(&v, src, sizeof(v));
  return v;
}

std::uint64_t GetU64(const std::uint8_t* src) {
  std::uint64_t v;
  std::memcpy(&v, src, sizeof(v));
  return v;
}

void EncodeFileHeader(const WalHeader& header, std::uint8_t* buf) {
  std::memset(buf, 0, kWalFileHeaderBytes);
  PutU64(buf + 0, kWalMagic);
  PutU32(buf + 8, kWalFormatVersion);
  PutU32(buf + 12, header.stream);
  PutU64(buf + 16, header.dim);
  PutU64(buf + 24, header.base_sequence);
  PutU64(buf + 32, header.fingerprint);
  PutU64(buf + 56, Hash64(buf, 56));
}

bool DecodeFileHeader(const std::uint8_t* buf, WalHeader* header) {
  if (GetU64(buf + 0) != kWalMagic) return false;
  if (GetU32(buf + 8) != kWalFormatVersion) return false;
  if (GetU64(buf + 56) != Hash64(buf, 56)) return false;
  header->stream = GetU32(buf + 12);
  header->dim = GetU64(buf + 16);
  header->base_sequence = GetU64(buf + 24);
  header->fingerprint = GetU64(buf + 32);
  return true;
}

core::Status SyncFile(std::FILE* file, const std::string& path) {
  if (std::fflush(file) != 0) {
    return core::Status::IoError("cannot flush " + path + ": " +
                                 std::strerror(errno));
  }
  if (::fsync(::fileno(file)) != 0) {
    return core::Status::IoError("cannot fsync " + path + ": " +
                                 std::strerror(errno));
  }
  return core::Status::Ok();
}

std::uint64_t PayloadBytes(std::uint8_t op, std::size_t dim) {
  return op == kWalOpInsert ? 8 + dim * sizeof(float) : 8;
}

}  // namespace

const char* WalFsyncPolicyName(WalFsyncPolicy policy) {
  switch (policy) {
    case WalFsyncPolicy::kEveryRecord:
      return "every";
    case WalFsyncPolicy::kEveryN:
      return "every_n";
    case WalFsyncPolicy::kInterval:
      return "interval";
  }
  return "unknown";
}

WalWriter::~WalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

core::Status WalWriter::Create(const std::string& path,
                               const WalHeader& header,
                               const WalFsyncOptions& fsync,
                               std::unique_ptr<WalWriter>* out) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return core::Status::IoError("cannot create " + tmp + ": " +
                                 std::strerror(errno));
  }
  std::uint8_t buf[kWalFileHeaderBytes];
  EncodeFileHeader(header, buf);
  if (std::fwrite(buf, 1, kWalFileHeaderBytes, file) != kWalFileHeaderBytes) {
    std::fclose(file);
    std::remove(tmp.c_str());
    return core::Status::IoError("cannot write WAL header to " + tmp);
  }
  core::Status sync = SyncFile(file, tmp);
  if (!sync.ok()) {
    std::fclose(file);
    std::remove(tmp.c_str());
    return sync;
  }
  // Rename under the live name while keeping the FILE* open: a POSIX fd
  // follows the inode through the rename, so the writer appends to the
  // (now durable) renamed file without reopening.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fclose(file);
    std::remove(tmp.c_str());
    return core::Status::IoError("cannot rename " + tmp + " to " + path +
                                 ": " + std::strerror(errno));
  }
  core::Status dir = FsyncParentDirectory(path);
  if (!dir.ok()) {
    std::fclose(file);
    return dir;
  }
  auto writer = std::unique_ptr<WalWriter>(new WalWriter());
  writer->path_ = path;
  writer->header_ = header;
  writer->fsync_ = fsync;
  writer->file_ = file;
  writer->bytes_written_ = kWalFileHeaderBytes;
  *out = std::move(writer);
  return core::Status::Ok();
}

core::Status WalWriter::OpenForAppend(const std::string& path,
                                      const WalHeader& expected,
                                      const WalFsyncOptions& fsync,
                                      std::unique_ptr<WalWriter>* out) {
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  if (file == nullptr) {
    return core::Status::IoError("cannot open " + path + ": " +
                                 std::strerror(errno));
  }
  std::uint8_t buf[kWalFileHeaderBytes];
  if (std::fread(buf, 1, kWalFileHeaderBytes, file) != kWalFileHeaderBytes) {
    std::fclose(file);
    return core::Status::Corruption(path + ": short WAL header");
  }
  WalHeader header;
  if (!DecodeFileHeader(buf, &header)) {
    std::fclose(file);
    return core::Status::Corruption(path + ": invalid WAL header");
  }
  if (header.stream != expected.stream || header.dim != expected.dim ||
      header.fingerprint != expected.fingerprint) {
    std::fclose(file);
    return core::Status::InvalidArgument(
        path + ": WAL header does not match this index");
  }
  if (std::fseek(file, 0, SEEK_END) != 0) {
    std::fclose(file);
    return core::Status::IoError("cannot seek to end of " + path);
  }
  const long end = std::ftell(file);
  if (end < 0) {
    std::fclose(file);
    return core::Status::IoError("cannot tell position in " + path);
  }
  auto writer = std::unique_ptr<WalWriter>(new WalWriter());
  writer->path_ = path;
  writer->header_ = header;
  writer->fsync_ = fsync;
  writer->file_ = file;
  writer->bytes_written_ = static_cast<std::uint64_t>(end);
  *out = std::move(writer);
  return core::Status::Ok();
}

core::Status WalWriter::Append(std::uint8_t op, std::uint64_t sequence,
                               std::uint64_t id, const float* vec,
                               std::size_t dim) {
  if (failed_) {
    return core::Status::IoError(path_ +
                                 ": WAL writer failed; no further appends");
  }
  GASS_CHECK(op == kWalOpInsert || op == kWalOpDelete);
  GASS_CHECK((op == kWalOpInsert) == (vec != nullptr));
  const std::uint64_t payload_bytes = PayloadBytes(op, dim);
  std::vector<std::uint8_t> record(kWalRecordHeaderBytes + payload_bytes);
  std::uint8_t* payload = record.data() + kWalRecordHeaderBytes;
  PutU64(payload, id);
  if (op == kWalOpInsert) {
    std::memcpy(payload + 8, vec, dim * sizeof(float));
  }
  std::uint8_t* head = record.data();
  std::memset(head, 0, kWalRecordHeaderBytes);
  PutU32(head + 0, kWalRecordMagic);
  head[4] = op;
  PutU64(head + 8, sequence);
  PutU64(head + 16, payload_bytes);
  // Seeding the payload hash with the header hash chains the two: any bit
  // flip in either region breaks the single stored checksum.
  PutU64(head + 24, Hash64(payload, payload_bytes, Hash64(head, 24)));
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
    failed_ = true;
    return core::Status::IoError("cannot append to " + path_ + ": " +
                                 std::strerror(errno));
  }
  bytes_written_ += record.size();
  ++appended_records_;
  ++records_since_sync_;
  bool should_sync = false;
  switch (fsync_.policy) {
    case WalFsyncPolicy::kEveryRecord:
      should_sync = true;
      break;
    case WalFsyncPolicy::kEveryN:
      should_sync = records_since_sync_ >= fsync_.sync_every_n;
      break;
    case WalFsyncPolicy::kInterval:
      should_sync = since_sync_.Seconds() >= fsync_.sync_interval_seconds;
      break;
  }
  if (should_sync) GASS_RETURN_IF_ERROR(SyncNow());
  return core::Status::Ok();
}

core::Status WalWriter::Sync() {
  if (failed_) {
    return core::Status::IoError(path_ +
                                 ": WAL writer failed; no further syncs");
  }
  if (records_since_sync_ == 0) return core::Status::Ok();
  return SyncNow();
}

core::Status WalWriter::SyncNow() {
  if (fail_sync_armed_) {
    if (fail_sync_after_ == 0) {
      // Injected fsync failure: from here the durable length of the file
      // is unknown, so the writer latches and nothing further can be
      // acknowledged — recovery will replay whatever prefix survived.
      failed_ = true;
      return core::Status::IoError(path_ + ": injected fsync failure");
    }
    --fail_sync_after_;
  }
  core::Status status = SyncFile(file_, path_);
  if (!status.ok()) {
    failed_ = true;
    return status;
  }
  records_since_sync_ = 0;
  ++syncs_;
  since_sync_.Reset();
  return core::Status::Ok();
}

core::Status ReplayWal(const std::string& path, const WalHeader& expected,
                       std::uint64_t watermark, const WalApplyFn& apply,
                       WalReplayStats* stats) {
  *stats = WalReplayStats{};
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    // Missing file ⇒ the WAL was never durably created (crash before the
    // create's rename reached disk). header_valid stays false.
    return core::Status::Ok();
  }
  std::vector<std::uint8_t> bytes;
  {
    std::fseek(file, 0, SEEK_END);
    const long end = std::ftell(file);
    if (end < 0) {
      std::fclose(file);
      return core::Status::IoError("cannot tell size of " + path);
    }
    bytes.resize(static_cast<std::size_t>(end));
    std::fseek(file, 0, SEEK_SET);
    if (!bytes.empty() &&
        std::fread(bytes.data(), 1, bytes.size(), file) != bytes.size()) {
      std::fclose(file);
      return core::Status::IoError("cannot read " + path);
    }
  }
  std::fclose(file);

  if (bytes.size() < kWalFileHeaderBytes) return core::Status::Ok();
  WalHeader header;
  if (!DecodeFileHeader(bytes.data(), &header)) return core::Status::Ok();
  if (header.stream != expected.stream || header.dim != expected.dim ||
      header.fingerprint != expected.fingerprint) {
    return core::Status::InvalidArgument(
        path + ": WAL header does not match this index");
  }
  stats->header_valid = true;
  stats->valid_bytes = kWalFileHeaderBytes;
  // Sequences must rise strictly within a file; records at or below this
  // are duplicated/reordered bytes and are skipped, never applied twice.
  std::uint64_t high_seq = header.base_sequence;

  std::size_t off = kWalFileHeaderBytes;
  const std::size_t dim = static_cast<std::size_t>(header.dim);
  while (off < bytes.size()) {
    if (bytes.size() - off < kWalRecordHeaderBytes) break;  // torn header
    const std::uint8_t* head = bytes.data() + off;
    if (GetU32(head + 0) != kWalRecordMagic) break;
    const std::uint8_t op = head[4];
    if (op != kWalOpInsert && op != kWalOpDelete) break;
    const std::uint64_t sequence = GetU64(head + 8);
    const std::uint64_t payload_bytes = GetU64(head + 16);
    if (payload_bytes != PayloadBytes(op, dim)) break;
    if (bytes.size() - off - kWalRecordHeaderBytes < payload_bytes) break;
    const std::uint8_t* payload = head + kWalRecordHeaderBytes;
    const std::uint64_t want =
        Hash64(payload, payload_bytes, Hash64(head, 24));
    if (GetU64(head + 24) != want) break;

    // Record is fully valid; classify and advance.
    off += kWalRecordHeaderBytes + static_cast<std::size_t>(payload_bytes);
    stats->valid_bytes = off;
    if (sequence <= high_seq) {
      if (sequence <= header.base_sequence || sequence <= watermark) {
        ++stats->records_old;
      } else {
        ++stats->records_duplicate;
      }
      continue;
    }
    high_seq = sequence;
    stats->last_sequence = sequence;
    if (sequence <= watermark) {
      ++stats->records_old;
      continue;
    }
    const std::uint64_t id = GetU64(payload);
    const float* vec = nullptr;
    std::vector<float> vec_copy;
    if (op == kWalOpInsert) {
      // Payload floats are not alignment-guaranteed within the byte
      // stream; copy them out before handing a float* to the callback.
      vec_copy.resize(dim);
      std::memcpy(vec_copy.data(), payload + 8, dim * sizeof(float));
      vec = vec_copy.data();
    }
    GASS_RETURN_IF_ERROR(apply(op, sequence, id, vec));
    ++stats->records_applied;
  }
  if (stats->valid_bytes < bytes.size()) {
    stats->torn_tail = true;
    stats->torn_bytes = bytes.size() - stats->valid_bytes;
  }
  return core::Status::Ok();
}

core::Status TruncateWal(const std::string& path, std::uint64_t valid_bytes) {
  return TruncateFile(path, valid_bytes);
}

core::Status ApplyWalFaults(const std::string& path,
                            const WalFaultPlan& plan) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return core::Status::IoError("cannot open " + path + ": " +
                                 std::strerror(errno));
  }
  std::vector<std::uint8_t> bytes;
  std::fseek(file, 0, SEEK_END);
  const long end = std::ftell(file);
  if (end < 0) {
    std::fclose(file);
    return core::Status::IoError("cannot tell size of " + path);
  }
  bytes.resize(static_cast<std::size_t>(end));
  std::fseek(file, 0, SEEK_SET);
  if (!bytes.empty() &&
      std::fread(bytes.data(), 1, bytes.size(), file) != bytes.size()) {
    std::fclose(file);
    return core::Status::IoError("cannot read " + path);
  }
  std::fclose(file);

  if (plan.duplicate_record != kWalNoFault) {
    // Walk record boundaries (headers only; checksums not needed) to find
    // the plan.duplicate_record-th record and re-append its bytes.
    std::size_t off = kWalFileHeaderBytes;
    std::uint64_t index = 0;
    bool found = false;
    while (off + kWalRecordHeaderBytes <= bytes.size()) {
      const std::uint8_t* head = bytes.data() + off;
      if (GetU32(head + 0) != kWalRecordMagic) break;
      std::uint64_t payload_bytes = GetU64(head + 16);
      const std::size_t record_bytes =
          kWalRecordHeaderBytes + static_cast<std::size_t>(payload_bytes);
      if (bytes.size() - off < record_bytes) break;
      if (index == plan.duplicate_record) {
        std::vector<std::uint8_t> copy(bytes.begin() + off,
                                       bytes.begin() + off + record_bytes);
        bytes.insert(bytes.end(), copy.begin(), copy.end());
        found = true;
        break;
      }
      off += record_bytes;
      ++index;
    }
    if (!found) {
      return core::Status::InvalidArgument(
          path + ": no record #" + std::to_string(plan.duplicate_record) +
          " to duplicate");
    }
  }
  if (plan.flip_offset != kWalNoFault) {
    if (plan.flip_offset >= bytes.size()) {
      return core::Status::InvalidArgument(
          path + ": flip offset " + std::to_string(plan.flip_offset) +
          " beyond file size " + std::to_string(bytes.size()));
    }
    bytes[static_cast<std::size_t>(plan.flip_offset)] ^= plan.flip_mask;
  }
  if (plan.truncate_to != kWalNoFault) {
    if (plan.truncate_to > bytes.size()) {
      return core::Status::InvalidArgument(
          path + ": cannot truncate to " + std::to_string(plan.truncate_to) +
          " (file is " + std::to_string(bytes.size()) + " bytes)");
    }
    bytes.resize(static_cast<std::size_t>(plan.truncate_to));
  }

  file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return core::Status::IoError("cannot rewrite " + path + ": " +
                                 std::strerror(errno));
  }
  if (!bytes.empty() &&
      std::fwrite(bytes.data(), 1, bytes.size(), file) != bytes.size()) {
    std::fclose(file);
    return core::Status::IoError("cannot write " + path);
  }
  std::fclose(file);
  return core::Status::Ok();
}

}  // namespace gass::io
