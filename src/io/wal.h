// Append-only, per-index write-ahead log for live updates.
//
// The update path (serve::Updater) logs every insert/delete here *before*
// applying it to the in-memory index, so a crash between "update accepted"
// and "next checkpoint" loses nothing: recovery loads the last checkpoint
// and replays the log's tail. The format is deliberately dumb — a fixed
// 64-byte file header followed by fixed-header records — because recovery
// must be able to reason about every byte of a half-written file.
//
// On-disk layout (all integers little-endian, matching io/serialize.h):
//
//   file header, 64 bytes:
//     [ 0] u64  magic (kWalMagic)
//     [ 8] u32  format version (kWalFormatVersion)
//     [12] u32  stream id (shard the log belongs to; 0 for plain indexes)
//     [16] u64  vector dimension
//     [24] u64  base sequence (records in this file have sequence > this)
//     [32] u64  index params fingerprint
//     [40] 16 reserved zero bytes
//     [56] u64  XXH64 of bytes [0, 56)
//
//   record = 32-byte header + payload:
//     [ 0] u32  record magic (kWalRecordMagic)
//     [ 4] u8   op (kWalOpInsert / kWalOpDelete)
//     [ 5] 3 zero bytes
//     [ 8] u64  sequence (strictly increasing within a file)
//     [16] u64  payload bytes
//     [24] u64  XXH64 of the payload, seeded with XXH64 of bytes [0, 24) —
//               one checksum covers header and payload together
//     payload: u64 id, then for inserts `dim` raw f32 components
//
// Crash model (see docs/PERSISTENCE.md "Durability & live updates"): the
// log is written strictly sequentially and synced per WalFsyncOptions, so
// after a crash the file is a fully valid prefix followed by at most one
// torn region. Replay verifies every checksum and treats the FIRST invalid
// byte as the end of the log — in this model nothing beyond it was ever
// acknowledged, so stopping there is exactly correct, and TruncateWal cuts
// the tail so the file can be appended to again. Records whose sequence is
// not strictly greater than everything seen before (duplicated or
// reordered bytes, or records already covered by a checkpoint watermark)
// are skipped and counted, which is what makes replay idempotent.

#ifndef GASS_IO_WAL_H_
#define GASS_IO_WAL_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "core/status.h"
#include "core/stats.h"

namespace gass::io {

inline constexpr std::uint64_t kWalMagic = 0x004C4157'53534147ULL;  // GASSWAL
inline constexpr std::uint32_t kWalFormatVersion = 1;
inline constexpr std::uint32_t kWalRecordMagic = 0x43455257U;  // WREC
inline constexpr std::size_t kWalFileHeaderBytes = 64;
inline constexpr std::size_t kWalRecordHeaderBytes = 32;

inline constexpr std::uint8_t kWalOpInsert = 1;
inline constexpr std::uint8_t kWalOpDelete = 2;

/// When an Append becomes durable (and may be acknowledged to the client).
enum class WalFsyncPolicy : std::uint8_t {
  kEveryRecord = 0,  ///< fsync before Append returns: zero-loss window.
  kEveryN = 1,       ///< fsync every `sync_every_n` records.
  kInterval = 2,     ///< fsync when `sync_interval_seconds` elapsed.
};

/// Lowercase label ("every", "every_n", "interval").
const char* WalFsyncPolicyName(WalFsyncPolicy policy);

struct WalFsyncOptions {
  WalFsyncPolicy policy = WalFsyncPolicy::kEveryRecord;
  std::size_t sync_every_n = 64;
  double sync_interval_seconds = 0.05;
};

/// Identity fields of a WAL file header.
struct WalHeader {
  std::uint32_t stream = 0;
  std::uint64_t dim = 0;
  std::uint64_t base_sequence = 0;
  std::uint64_t fingerprint = 0;
};

/// Append side of one WAL file. Not thread-safe: the updater serializes
/// writers (see serve::Updater).
class WalWriter {
 public:
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Creates (or atomically replaces) the WAL at `path` with an empty log
  /// whose header carries `header`. The header is written to a temp file,
  /// fsynced, renamed into place, and the directory fsynced — the same
  /// crash-safe sequence as snapshots, reused for checkpoint rotation.
  static core::Status Create(const std::string& path, const WalHeader& header,
                             const WalFsyncOptions& fsync,
                             std::unique_ptr<WalWriter>* out);

  /// Opens an existing WAL (already validated and, if torn, truncated by
  /// replay) for further appends. `expected` must match the on-disk header.
  static core::Status OpenForAppend(const std::string& path,
                                    const WalHeader& expected,
                                    const WalFsyncOptions& fsync,
                                    std::unique_ptr<WalWriter>* out);

  /// Appends one record and applies the fsync policy. `vec` supplies `dim`
  /// floats for inserts and must be null for deletes. A failed write or
  /// sync latches the writer into a failed state (every later Append
  /// errors): after a lost sync the file's durable length is unknown, so
  /// nothing further may be acknowledged. Sequence numbers must be strictly
  /// increasing; the caller (serve::Updater) assigns them.
  core::Status Append(std::uint8_t op, std::uint64_t sequence,
                      std::uint64_t id, const float* vec, std::size_t dim);

  /// Forces an fsync now, regardless of policy.
  core::Status Sync();

  const std::string& path() const { return path_; }
  const WalHeader& header() const { return header_; }
  /// Total file bytes written (header + records).
  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t appended_records() const { return appended_records_; }
  std::uint64_t syncs() const { return syncs_; }
  bool failed() const { return failed_; }

  /// Deterministic fault hook: the (n+1)-th fsync from now fails and
  /// latches the writer (0 = the very next sync). Drives the
  /// fsync-failure leg of the crash-recovery harness.
  void FailNextSyncAfter(std::uint64_t n) {
    fail_sync_after_ = n;
    fail_sync_armed_ = true;
  }

 private:
  WalWriter() = default;

  core::Status SyncNow();

  std::string path_;
  WalHeader header_;
  WalFsyncOptions fsync_;
  std::FILE* file_ = nullptr;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t appended_records_ = 0;
  std::uint64_t records_since_sync_ = 0;
  std::uint64_t syncs_ = 0;
  core::Timer since_sync_;
  bool failed_ = false;
  bool fail_sync_armed_ = false;
  std::uint64_t fail_sync_after_ = 0;
};

/// What one replay pass found.
struct WalReplayStats {
  /// False when the file is missing or its 64-byte header is invalid —
  /// the crash-consistent reading is "this WAL was never durably created";
  /// the caller recreates it. No records are replayed in that case.
  bool header_valid = false;
  std::uint64_t records_applied = 0;
  /// Records skipped because sequence <= the caller's watermark (already
  /// covered by the checkpoint being replayed onto).
  std::uint64_t records_old = 0;
  /// Records skipped because sequence <= an earlier record in this file
  /// (duplicated/reordered bytes). Valid bytes, not a torn tail.
  std::uint64_t records_duplicate = 0;
  /// Byte length of the valid prefix (header + whole valid records).
  std::uint64_t valid_bytes = 0;
  /// File bytes past the valid prefix (0 when the file ends cleanly).
  std::uint64_t torn_bytes = 0;
  bool torn_tail = false;
  /// Highest sequence seen among valid records (0 when none).
  std::uint64_t last_sequence = 0;
};

/// Replay callback: op is kWalOpInsert/kWalOpDelete, `vec` points at the
/// record's `dim` floats for inserts (null for deletes). A non-ok return
/// aborts the replay and is propagated.
using WalApplyFn = std::function<core::Status(
    std::uint8_t op, std::uint64_t sequence, std::uint64_t id,
    const float* vec)>;

/// Scans the WAL at `path`, verifies every checksum, and calls `apply` for
/// each valid record with sequence > `watermark` (in file order). Stops
/// cleanly at the first invalid byte (torn tail). `expected` pins the
/// header identity (stream, dim, fingerprint; base_sequence is read, not
/// checked). Returns non-ok only for environmental errors or an apply
/// failure — a torn or absent log is a *normal* crash outcome, reported
/// through `stats`.
core::Status ReplayWal(const std::string& path, const WalHeader& expected,
                       std::uint64_t watermark, const WalApplyFn& apply,
                       WalReplayStats* stats);

/// Truncates the WAL to its valid prefix after a torn-tail replay and
/// makes the new length durable (file + parent directory fsync).
core::Status TruncateWal(const std::string& path, std::uint64_t valid_bytes);

// --- Deterministic fault injection (crash-recovery test harness) ---

inline constexpr std::uint64_t kWalNoFault = ~std::uint64_t{0};

/// A deterministic corruption applied to a WAL file (simulating a crash
/// mid-append or media damage). Fields default to "no fault"; several may
/// be combined. `fail_sync_after` is writer-side — tests arm it with
/// WalWriter::FailNextSyncAfter — and is ignored by ApplyWalFaults.
struct WalFaultPlan {
  /// Truncate the file to exactly this many bytes (torn tail at any byte).
  std::uint64_t truncate_to = kWalNoFault;
  /// XOR `flip_mask` into the byte at this offset.
  std::uint64_t flip_offset = kWalNoFault;
  std::uint8_t flip_mask = 0x01;
  /// Re-append the bytes of the record at this index (0-based) at EOF —
  /// a duplicated record with a stale sequence.
  std::uint64_t duplicate_record = kWalNoFault;
  /// Writer-side: nth future fsync fails (see WalWriter::FailNextSyncAfter).
  std::uint64_t fail_sync_after = kWalNoFault;
};

/// Applies `plan` to the file at `path` in the order duplicate → flip →
/// truncate. Record boundaries are located by walking the record headers
/// (bounds-checked, checksums not required). Test-only: the rewrite is not
/// itself crash-safe.
core::Status ApplyWalFaults(const std::string& path, const WalFaultPlan& plan);

}  // namespace gass::io

#endif  // GASS_IO_WAL_H_
