// Bounds-checked binary encoding for snapshot section payloads.
//
// Encoder appends little-endian fixed-width values to a byte buffer;
// Decoder is its defensive inverse: every read is range-checked against the
// buffer *before* it happens, every length prefix is capped against both a
// caller-supplied bound and the bytes actually remaining (so a corrupt
// count can never trigger a huge allocation), and the first failure latches
// — subsequent reads become no-ops and status() reports a kCorruption
// error naming the decoding context. Decoders never trust on-disk sizes.

#ifndef GASS_IO_SERIALIZE_H_
#define GASS_IO_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/graph.h"
#include "core/status.h"

namespace gass::io {

/// Append-only little-endian byte-buffer builder.
class Encoder {
 public:
  void U8(std::uint8_t v) { buffer_.push_back(v); }
  void U32(std::uint32_t v) { AppendRaw(&v, sizeof(v)); }
  void U64(std::uint64_t v) { AppendRaw(&v, sizeof(v)); }
  void F32(float v) { AppendRaw(&v, sizeof(v)); }
  void F64(double v) { AppendRaw(&v, sizeof(v)); }
  void Bytes(const void* data, std::size_t len) { AppendRaw(data, len); }

  /// Length-prefixed (u64 count) element vectors.
  void VecU8(const std::vector<std::uint8_t>& v) {
    U64(v.size());
    AppendRaw(v.data(), v.size());
  }
  void VecU32(const std::vector<std::uint32_t>& v) {
    U64(v.size());
    AppendRaw(v.data(), v.size() * sizeof(std::uint32_t));
  }
  void VecU64(const std::vector<std::uint64_t>& v) {
    U64(v.size());
    AppendRaw(v.data(), v.size() * sizeof(std::uint64_t));
  }
  void VecF32(const std::vector<float>& v) {
    U64(v.size());
    AppendRaw(v.data(), v.size() * sizeof(float));
  }

  /// Length-prefixed (u64) UTF-8/byte string.
  void Str(const std::string& s) {
    U64(s.size());
    AppendRaw(s.data(), s.size());
  }

  const std::vector<std::uint8_t>& bytes() const { return buffer_; }
  std::vector<std::uint8_t> Take() { return std::move(buffer_); }
  std::size_t size() const { return buffer_.size(); }

 private:
  void AppendRaw(const void* data, std::size_t len) {
    if (len == 0) return;
    const std::size_t old = buffer_.size();
    buffer_.resize(old + len);
    std::memcpy(buffer_.data() + old, data, len);
  }

  std::vector<std::uint8_t> buffer_;
};

/// Fail-latching bounds-checked cursor over a read-only byte span.
class Decoder {
 public:
  /// `context` names the payload in error messages ("section 'graph'").
  Decoder(const std::uint8_t* data, std::size_t size, std::string context)
      : data_(data), size_(size), context_(std::move(context)) {}

  std::uint8_t U8() {
    std::uint8_t v = 0;
    ReadRaw(&v, sizeof(v), "u8");
    return v;
  }
  std::uint32_t U32() {
    std::uint32_t v = 0;
    ReadRaw(&v, sizeof(v), "u32");
    return v;
  }
  std::uint64_t U64() {
    std::uint64_t v = 0;
    ReadRaw(&v, sizeof(v), "u64");
    return v;
  }
  float F32() {
    float v = 0;
    ReadRaw(&v, sizeof(v), "f32");
    return v;
  }
  double F64() {
    double v = 0;
    ReadRaw(&v, sizeof(v), "f64");
    return v;
  }
  bool Bytes(void* dst, std::size_t len) {
    return ReadRaw(dst, len, "bytes");
  }

  /// Length-prefixed vector reads. The element count is validated against
  /// `max_count` AND the remaining payload before any allocation.
  bool VecU8(std::vector<std::uint8_t>* out, std::uint64_t max_count);
  bool VecU32(std::vector<std::uint32_t>* out, std::uint64_t max_count);
  bool VecU64(std::vector<std::uint64_t>* out, std::uint64_t max_count);
  bool VecF32(std::vector<float>* out, std::uint64_t max_count);

  /// Length-prefixed string, capped at `max_len` bytes.
  bool Str(std::string* out, std::uint64_t max_len);

  /// Records a decoding failure (no-op if one is already latched).
  void Fail(const std::string& message);

  /// Latches a failure unless `condition`; returns `condition`.
  bool Check(bool condition, const std::string& message) {
    if (!condition) Fail(message);
    return condition;
  }

  /// Fails unless the cursor consumed the payload exactly — trailing bytes
  /// in a section are corruption, not slack.
  bool ExpectEnd() {
    return Check(failed_ || cursor_ == size_, "trailing bytes in payload");
  }

  bool ok() const { return !failed_; }
  std::size_t remaining() const { return size_ - cursor_; }
  const std::string& context() const { return context_; }

  /// Ok, or kCorruption("<context>: <first failure>").
  core::Status status() const {
    if (!failed_) return core::Status::Ok();
    return core::Status::Corruption(context_ + ": " + error_);
  }

 private:
  bool ReadRaw(void* dst, std::size_t len, const char* what);
  /// Validates a u64 element-count prefix; returns count or latches.
  bool ReadCount(std::uint64_t max_count, std::size_t elem_size,
                 std::uint64_t* count);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t cursor_ = 0;
  bool failed_ = false;
  std::string error_;
  std::string context_;
};

/// Adjacency-list graph codec. Decode validates the vertex count against
/// `expected_n` and every neighbor id via Graph::Validate().
void EncodeGraph(const core::Graph& graph, Encoder* enc);
core::Status DecodeGraph(Decoder* dec, std::uint64_t expected_n,
                         core::Graph* out);

/// Dense row-major float matrix codec. Decode caps the total payload via
/// the declared n × dim against the bytes remaining.
void EncodeDataset(const core::Dataset& data, Encoder* enc);
core::Status DecodeDataset(Decoder* dec, core::Dataset* out);

}  // namespace gass::io

#endif  // GASS_IO_SERIALIZE_H_
