#include "io/serialize.h"

namespace gass::io {

void Decoder::Fail(const std::string& message) {
  if (failed_) return;
  failed_ = true;
  error_ = message;
}

bool Decoder::ReadRaw(void* dst, std::size_t len, const char* what) {
  if (failed_) return false;
  if (len > size_ - cursor_) {
    Fail(std::string("truncated payload reading ") + what + " at offset " +
         std::to_string(cursor_));
    return false;
  }
  if (len > 0) std::memcpy(dst, data_ + cursor_, len);
  cursor_ += len;
  return true;
}

bool Decoder::ReadCount(std::uint64_t max_count, std::size_t elem_size,
                        std::uint64_t* count) {
  *count = U64();
  if (failed_) return false;
  if (*count > max_count) {
    Fail("element count " + std::to_string(*count) + " exceeds cap " +
         std::to_string(max_count));
    return false;
  }
  // The bytes must already be present — a huge declared count can never
  // drive a huge allocation.
  if (*count > remaining() / (elem_size == 0 ? 1 : elem_size)) {
    Fail("element count " + std::to_string(*count) +
         " exceeds remaining payload");
    return false;
  }
  return true;
}

bool Decoder::VecU8(std::vector<std::uint8_t>* out, std::uint64_t max_count) {
  std::uint64_t count = 0;
  if (!ReadCount(max_count, sizeof(std::uint8_t), &count)) return false;
  out->resize(count);
  return ReadRaw(out->data(), count, "u8 vector");
}

bool Decoder::VecU32(std::vector<std::uint32_t>* out,
                     std::uint64_t max_count) {
  std::uint64_t count = 0;
  if (!ReadCount(max_count, sizeof(std::uint32_t), &count)) return false;
  out->resize(count);
  return ReadRaw(out->data(), count * sizeof(std::uint32_t), "u32 vector");
}

bool Decoder::VecU64(std::vector<std::uint64_t>* out,
                     std::uint64_t max_count) {
  std::uint64_t count = 0;
  if (!ReadCount(max_count, sizeof(std::uint64_t), &count)) return false;
  out->resize(count);
  return ReadRaw(out->data(), count * sizeof(std::uint64_t), "u64 vector");
}

bool Decoder::VecF32(std::vector<float>* out, std::uint64_t max_count) {
  std::uint64_t count = 0;
  if (!ReadCount(max_count, sizeof(float), &count)) return false;
  out->resize(count);
  return ReadRaw(out->data(), count * sizeof(float), "f32 vector");
}

bool Decoder::Str(std::string* out, std::uint64_t max_len) {
  std::uint64_t count = 0;
  if (!ReadCount(max_len, sizeof(char), &count)) return false;
  out->resize(count);
  return ReadRaw(out->data(), count, "string");
}

void EncodeGraph(const core::Graph& graph, Encoder* enc) {
  const std::size_t n = graph.size();
  enc->U64(n);
  for (core::VectorId v = 0; v < n; ++v) {
    const auto& list = graph.Neighbors(v);
    enc->U32(static_cast<std::uint32_t>(list.size()));
    enc->Bytes(list.data(), list.size() * sizeof(core::VectorId));
  }
}

core::Status DecodeGraph(Decoder* dec, std::uint64_t expected_n,
                         core::Graph* out) {
  const std::uint64_t n = dec->U64();
  if (!dec->Check(n == expected_n,
                  "graph vertex count " + std::to_string(n) +
                      " does not match dataset size " +
                      std::to_string(expected_n))) {
    return dec->status();
  }
  core::Graph graph(n);
  for (std::uint64_t v = 0; v < n; ++v) {
    const std::uint32_t degree = dec->U32();
    if (!dec->Check(degree <= dec->remaining() / sizeof(core::VectorId),
                    "vertex " + std::to_string(v) + " degree " +
                        std::to_string(degree) +
                        " exceeds remaining payload")) {
      return dec->status();
    }
    std::vector<core::VectorId> list(degree);
    if (!dec->Bytes(list.data(), degree * sizeof(core::VectorId))) {
      return dec->status();
    }
    graph.SetNeighbors(static_cast<core::VectorId>(v), std::move(list));
  }
  GASS_RETURN_IF_ERROR(dec->status());
  core::Status valid = graph.Validate();
  if (!valid.ok()) {
    return core::Status::Corruption(dec->context() + ": " + valid.message());
  }
  *out = std::move(graph);
  return core::Status::Ok();
}

void EncodeDataset(const core::Dataset& data, Encoder* enc) {
  enc->U64(data.size());
  enc->U64(data.dim());
  enc->Bytes(data.data(), data.SizeBytes());
}

core::Status DecodeDataset(Decoder* dec, core::Dataset* out) {
  const std::uint64_t n = dec->U64();
  const std::uint64_t dim = dec->U64();
  if (!dec->ok()) return dec->status();
  const std::uint64_t total = n * dim;
  if (!dec->Check(dim > 0 || n == 0, "dataset with zero dimension") ||
      !dec->Check(n == 0 || total / n == dim,
                  "dataset size overflows") ||
      !dec->Check(total <= dec->remaining() / sizeof(float),
                  "dataset payload larger than section")) {
    return dec->status();
  }
  core::Dataset loaded(n, dim);
  if (!dec->Bytes(loaded.mutable_data(), total * sizeof(float))) {
    return dec->status();
  }
  *out = std::move(loaded);
  return core::Status::Ok();
}

}  // namespace gass::io
