// Self-contained 64-bit content hash for snapshot checksums.
//
// The algorithm is XXH64 (Yann Collet's xxHash, public-domain algorithm),
// re-implemented here so the snapshot format has zero external
// dependencies and a single, frozen definition: the on-disk checksum is
// *this* function forever, independent of any library version. Not a
// cryptographic hash — it detects corruption (bit flips, truncation,
// transposition), not adversaries.

#ifndef GASS_IO_HASH_H_
#define GASS_IO_HASH_H_

#include <cstddef>
#include <cstdint>

namespace gass::io {

/// One-shot 64-bit hash of `len` bytes.
std::uint64_t Hash64(const void* data, std::size_t len,
                     std::uint64_t seed = 0);

}  // namespace gass::io

#endif  // GASS_IO_HASH_H_
