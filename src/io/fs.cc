#include "io/fs.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace gass::io {

std::string ParentDirectory(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

core::Status FsyncParentDirectory(const std::string& path) {
  const std::string dir = ParentDirectory(path);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return core::Status::IoError("cannot open directory " + dir + ": " +
                                 std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    return core::Status::IoError("cannot fsync directory " + dir + ": " +
                                 std::strerror(saved_errno));
  }
  return core::Status::Ok();
}

core::Status TruncateFile(const std::string& path, std::uint64_t size) {
  std::uint64_t current = 0;
  GASS_RETURN_IF_ERROR(FileSize(path, &current));
  if (size > current) {
    return core::Status::InvalidArgument(
        path + ": refusing to extend file from " + std::to_string(current) +
        " to " + std::to_string(size) + " bytes");
  }
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) {
    return core::Status::IoError("cannot open " + path + ": " +
                                 std::strerror(errno));
  }
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    const int saved_errno = errno;
    ::close(fd);
    return core::Status::IoError("cannot truncate " + path + ": " +
                                 std::strerror(saved_errno));
  }
  if (::fsync(fd) != 0) {
    const int saved_errno = errno;
    ::close(fd);
    return core::Status::IoError("cannot fsync " + path + ": " +
                                 std::strerror(saved_errno));
  }
  ::close(fd);
  return FsyncParentDirectory(path);
}

core::Status FileSize(const std::string& path, std::uint64_t* out) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return core::Status::IoError("cannot stat " + path + ": " +
                                 std::strerror(errno));
  }
  *out = static_cast<std::uint64_t>(st.st_size);
  return core::Status::Ok();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

core::Status CreateDirectory(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0) return FsyncParentDirectory(path);
  if (errno == EEXIST) {
    struct stat st;
    if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
      return core::Status::Ok();
    }
    return core::Status::IoError(path + ": exists but is not a directory");
  }
  return core::Status::IoError("cannot create directory " + path + ": " +
                               std::strerror(errno));
}

}  // namespace gass::io
