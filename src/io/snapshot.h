// Crash-safe, versioned, checksummed on-disk snapshots of built indexes.
//
// File layout (all integers little-endian):
//
//   FileHeader   (128 bytes)  magic, format version, method name,
//                             build-params fingerprint, dataset binding
//                             (n, dim), section count, header checksum.
//   Section 0    SectionHeader (128 bytes) + payload + zero padding
//   Section 1    ...
//   ...
//
// Every section header records the payload's byte length and 64-bit
// checksum (io::Hash64) plus a checksum of the header itself; payloads are
// padded so each one starts on a 64-byte file offset (the same alignment
// core::Dataset guarantees in memory, keeping an mmap-style loader's SIMD
// contract intact). The reader validates magic, version, both checksums,
// and that every declared length stays inside the file *before* any
// payload is read; decoding then re-validates every count, offset, and
// neighbor id against bounds before allocation. A truncated, bit-flipped,
// or method-swapped file is rejected with a descriptive core::Status —
// never silently searched, never UB.
//
// Crash safety on write: the snapshot is written to "<path>.tmp", fsynced,
// and atomically renamed over <path>, so a crash mid-save leaves either
// the old snapshot or none — never a torn file at <path>.

#ifndef GASS_IO_SNAPSHOT_H_
#define GASS_IO_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/align.h"
#include "core/status.h"
#include "io/serialize.h"

namespace gass::io {

/// "GASSSNAP" read as a little-endian u64.
inline constexpr std::uint64_t kSnapshotMagic = 0x50414E5353534147ULL;
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;
/// "GSEC" read as a little-endian u32.
inline constexpr std::uint32_t kSectionMagic = 0x43455347U;

inline constexpr std::size_t kFileHeaderBytes = 128;
inline constexpr std::size_t kSectionHeaderBytes = 128;
/// Payloads are zero-padded so the next section header (and therefore the
/// next payload) starts on this file-offset alignment.
inline constexpr std::size_t kSectionAlignment = core::kCacheLineBytes;
inline constexpr std::size_t kMaxSectionName = 63;
inline constexpr std::size_t kMaxMethodName = 39;

// Byte offsets of fields inside a section header — exported so the
// fault-injection harness can target precise mutations.
inline constexpr std::size_t kSectionNameOffset = 8;
inline constexpr std::size_t kSectionPayloadBytesOffset = 72;
inline constexpr std::size_t kSectionPayloadChecksumOffset = 80;
inline constexpr std::size_t kSectionHeaderChecksumOffset = 120;
// And inside the file header.
inline constexpr std::size_t kFileMethodNameOffset = 16;
inline constexpr std::size_t kFileHeaderChecksumOffset = 120;

/// Payload bytes with the alignment the SIMD kernels expect.
using AlignedBytes =
    std::vector<std::uint8_t,
                core::AlignedAllocator<std::uint8_t, kSectionAlignment>>;

/// Accumulates named sections, then writes the whole snapshot atomically.
class SnapshotWriter {
 public:
  /// `method` is the index's Name(); `params_fingerprint` a stable hash of
  /// its build parameters; `data_n`/`data_dim` bind the snapshot to the
  /// dataset it was built over.
  SnapshotWriter(std::string method, std::uint64_t params_fingerprint,
                 std::uint64_t data_n, std::uint64_t data_dim);

  /// Adds one section. Names must be unique, non-empty, and at most
  /// kMaxSectionName bytes.
  core::Status AddSection(const std::string& name, Encoder&& payload);

  /// Writes "<path>.tmp", fsyncs, renames onto `path`.
  core::Status WriteTo(const std::string& path) const;

  std::size_t section_count() const { return sections_.size(); }

 private:
  struct Section {
    std::string name;
    std::vector<std::uint8_t> payload;
  };

  std::string method_;
  std::uint64_t params_fingerprint_;
  std::uint64_t data_n_;
  std::uint64_t data_dim_;
  std::vector<Section> sections_;
};

/// One section's location inside an opened snapshot.
struct SectionInfo {
  std::string name;
  std::uint64_t header_offset = 0;   ///< File offset of the section header.
  std::uint64_t payload_offset = 0;  ///< File offset of the payload.
  std::uint64_t payload_bytes = 0;
  std::uint64_t payload_checksum = 0;
};

/// Validates a snapshot's structure on open, then serves checksum-verified
/// section payloads on demand (sections are read lazily, so a loader that
/// rejects the header never touches multi-GB payloads).
class SnapshotReader {
 public:
  /// Opens and fully validates headers: magic, version, header checksums,
  /// section-table bounds, duplicate names, trailing bytes.
  static core::Status Open(const std::string& path, SnapshotReader* out);

  const std::string& method() const { return method_; }
  std::uint64_t params_fingerprint() const { return params_fingerprint_; }
  std::uint64_t data_n() const { return data_n_; }
  std::uint64_t data_dim() const { return data_dim_; }

  const std::vector<SectionInfo>& sections() const { return sections_; }
  bool HasSection(const std::string& name) const;

  /// Reads one payload into an aligned buffer and verifies its checksum.
  core::Status ReadSection(const std::string& name, AlignedBytes* out) const;

  /// ReadSection + a Decoder whose error context names the section.
  core::Status OpenSection(const std::string& name, AlignedBytes* buffer,
                           Decoder* dec) const;

 private:
  std::string path_;
  std::string method_;
  std::uint64_t params_fingerprint_ = 0;
  std::uint64_t data_n_ = 0;
  std::uint64_t data_dim_ = 0;
  std::vector<SectionInfo> sections_;
};

}  // namespace gass::io

#endif  // GASS_IO_SNAPSHOT_H_
