#include "io/open_index.h"

#include <utility>

#include "io/snapshot.h"
#include "methods/factory.h"
#include "shard/sharded_index.h"

namespace gass::io {

core::Status OpenIndex(const std::string& path, const core::Dataset& data,
                       const OpenIndexOptions& options,
                       std::unique_ptr<methods::GraphIndex>* out) {
  SnapshotReader reader;
  GASS_RETURN_IF_ERROR(SnapshotReader::Open(path, &reader));
  if (shard::IsShardedSnapshotMethod(reader.method())) {
    std::unique_ptr<shard::ShardedIndex> sharded;
    GASS_RETURN_IF_ERROR(
        shard::LoadShardedIndex(path, data, options.seed, &sharded));
    if (options.nprobe > 0) sharded->SetNprobe(options.nprobe);
    if (options.fanout_threads > 0) {
      sharded->SetFanoutThreads(options.fanout_threads);
    }
    *out = std::move(sharded);
    return core::Status::Ok();
  }
  return methods::LoadAnyIndex(path, data, options.seed, out);
}

core::Status OpenIndex(const std::string& path, const core::Dataset& data,
                       std::uint64_t seed,
                       std::unique_ptr<methods::GraphIndex>* out) {
  OpenIndexOptions options;
  options.seed = seed;
  return OpenIndex(path, data, options, out);
}

}  // namespace gass::io
