#include "io/open_index.h"

#include <utility>

#include "io/snapshot.h"
#include "methods/factory.h"
#include "shard/sharded_index.h"

namespace gass::io {

core::Status OpenIndex(const std::string& path, const core::Dataset& data,
                       const OpenIndexOptions& options,
                       std::unique_ptr<methods::GraphIndex>* out) {
  SnapshotReader reader;
  GASS_RETURN_IF_ERROR(SnapshotReader::Open(path, &reader));
  if (shard::IsShardedSnapshotMethod(reader.method())) {
    std::unique_ptr<shard::ShardedIndex> sharded;
    GASS_RETURN_IF_ERROR(shard::LoadShardedIndex(
        path, data, options.seed, options.replicas, &sharded));
    if (options.nprobe > 0) sharded->SetNprobe(options.nprobe);
    if (options.fanout_threads > 0) {
      sharded->SetFanoutThreads(options.fanout_threads);
    }
    *out = std::move(sharded);
    return core::Status::Ok();
  }
  return methods::LoadAnyIndex(path, data, options.seed, out);
}

core::Status OpenIndex(const std::string& path, const core::Dataset& data,
                       std::uint64_t seed,
                       std::unique_ptr<methods::GraphIndex>* out) {
  OpenIndexOptions options;
  options.seed = seed;
  return OpenIndex(path, data, options, out);
}

core::Status OpenLiveIndex(const core::Dataset& base,
                           const OpenLiveIndexOptions& options,
                           std::unique_ptr<serve::LiveIndex>* live,
                           std::unique_ptr<serve::Updater>* updater,
                           serve::RecoveryReport* report) {
  const std::string ckpt = serve::Updater::CheckpointPath(options.updater);
  SnapshotReader reader;
  GASS_RETURN_IF_ERROR(SnapshotReader::Open(ckpt, &reader));
  // The method names are pinned by LiveHnsw::MethodName() and
  // LiveShardedIndex::Name(); Updater::Open re-verifies name and
  // fingerprint against the shell before loading anything.
  if (reader.method() == "LIVE-HNSW") {
    *live = serve::LiveHnsw::Shell(base, options.hnsw);
  } else if (reader.method() == "LIVE-SHARDED-HNSW") {
    *live = shard::LiveShardedIndex::Shell(base, options.sharded);
  } else {
    return core::Status::InvalidArgument(
        ckpt + ": not a live-index checkpoint (method " + reader.method() +
        "); open it with OpenIndex instead");
  }
  return serve::Updater::Open(live->get(), options.updater, updater, report);
}

}  // namespace gass::io
