#include "io/snapshot.h"

#include <cstdio>
#include <cstring>

#include <unistd.h>

#include "io/fs.h"
#include "io/hash.h"

namespace gass::io {
namespace {

// Far above any real index (ELPIS at thousands of leaves stays well under
// this), low enough that a corrupt count cannot drive an unbounded scan.
constexpr std::uint64_t kMaxSections = 1u << 20;

std::uint64_t AlignUp(std::uint64_t offset) {
  return (offset + kSectionAlignment - 1) & ~(kSectionAlignment - 1);
}

void PutU32(std::uint8_t* base, std::size_t offset, std::uint32_t v) {
  std::memcpy(base + offset, &v, sizeof(v));
}

void PutU64(std::uint8_t* base, std::size_t offset, std::uint64_t v) {
  std::memcpy(base + offset, &v, sizeof(v));
}

std::uint32_t GetU32(const std::uint8_t* base, std::size_t offset) {
  std::uint32_t v;
  std::memcpy(&v, base + offset, sizeof(v));
  return v;
}

std::uint64_t GetU64(const std::uint8_t* base, std::size_t offset) {
  std::uint64_t v;
  std::memcpy(&v, base + offset, sizeof(v));
  return v;
}

/// RAII FILE handle.
struct File {
  std::FILE* f = nullptr;
  ~File() {
    if (f != nullptr) std::fclose(f);
  }
};

}  // namespace

SnapshotWriter::SnapshotWriter(std::string method,
                               std::uint64_t params_fingerprint,
                               std::uint64_t data_n, std::uint64_t data_dim)
    : method_(std::move(method)),
      params_fingerprint_(params_fingerprint),
      data_n_(data_n),
      data_dim_(data_dim) {}

core::Status SnapshotWriter::AddSection(const std::string& name,
                                        Encoder&& payload) {
  if (name.empty() || name.size() > kMaxSectionName) {
    return core::Status::InvalidArgument("bad section name '" + name + "'");
  }
  for (const Section& s : sections_) {
    if (s.name == name) {
      return core::Status::InvalidArgument("duplicate section '" + name +
                                           "'");
    }
  }
  sections_.push_back(Section{name, payload.Take()});
  return core::Status::Ok();
}

core::Status SnapshotWriter::WriteTo(const std::string& path) const {
  if (method_.size() > kMaxMethodName) {
    return core::Status::InvalidArgument("method name too long: " + method_);
  }

  const std::string tmp = path + ".tmp";
  File file;
  file.f = std::fopen(tmp.c_str(), "wb");
  if (file.f == nullptr) {
    return core::Status::IoError("cannot create " + tmp);
  }

  std::uint8_t header[kFileHeaderBytes] = {};
  PutU64(header, 0, kSnapshotMagic);
  PutU32(header, 8, kSnapshotFormatVersion);
  PutU32(header, 12, static_cast<std::uint32_t>(method_.size()));
  std::memcpy(header + kFileMethodNameOffset, method_.data(), method_.size());
  PutU64(header, 56, params_fingerprint_);
  PutU64(header, 64, data_n_);
  PutU64(header, 72, data_dim_);
  PutU64(header, 80, sections_.size());
  PutU64(header, kFileHeaderChecksumOffset,
         Hash64(header, kFileHeaderChecksumOffset));
  if (std::fwrite(header, 1, kFileHeaderBytes, file.f) != kFileHeaderBytes) {
    return core::Status::IoError("short write to " + tmp);
  }

  std::uint64_t offset = kFileHeaderBytes;
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const Section& section = sections_[i];
    std::uint8_t sh[kSectionHeaderBytes] = {};
    PutU32(sh, 0, kSectionMagic);
    PutU32(sh, 4, static_cast<std::uint32_t>(section.name.size()));
    std::memcpy(sh + kSectionNameOffset, section.name.data(),
                section.name.size());
    PutU64(sh, kSectionPayloadBytesOffset, section.payload.size());
    PutU64(sh, kSectionPayloadChecksumOffset,
           Hash64(section.payload.data(), section.payload.size()));
    PutU64(sh, 88, i);
    PutU64(sh, kSectionHeaderChecksumOffset,
           Hash64(sh, kSectionHeaderChecksumOffset));
    if (std::fwrite(sh, 1, kSectionHeaderBytes, file.f) !=
        kSectionHeaderBytes) {
      return core::Status::IoError("short write to " + tmp);
    }
    if (!section.payload.empty() &&
        std::fwrite(section.payload.data(), 1, section.payload.size(),
                    file.f) != section.payload.size()) {
      return core::Status::IoError("short write to " + tmp);
    }
    offset += kSectionHeaderBytes + section.payload.size();
    const std::uint64_t padded = AlignUp(offset);
    static const std::uint8_t zeros[kSectionAlignment] = {};
    if (padded != offset &&
        std::fwrite(zeros, 1, padded - offset, file.f) != padded - offset) {
      return core::Status::IoError("short write to " + tmp);
    }
    offset = padded;
  }

  // Flush user-space buffers, then the kernel's, before the rename makes
  // the snapshot visible — crash-safety hinges on this ordering.
  if (std::fflush(file.f) != 0 || fsync(fileno(file.f)) != 0) {
    return core::Status::IoError("cannot flush " + tmp);
  }
  std::fclose(file.f);
  file.f = nullptr;
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return core::Status::IoError("cannot rename " + tmp + " to " + path);
  }
  // The rename lives in the parent directory's metadata; without this
  // fsync a power failure can roll the directory back to the old entry
  // even though the data file itself was flushed above.
  return FsyncParentDirectory(path);
}

core::Status SnapshotReader::Open(const std::string& path,
                                  SnapshotReader* out) {
  File file;
  file.f = std::fopen(path.c_str(), "rb");
  if (file.f == nullptr) {
    return core::Status::IoError("cannot open " + path);
  }
  if (std::fseek(file.f, 0, SEEK_END) != 0) {
    return core::Status::IoError("cannot seek " + path);
  }
  const long file_size_long = std::ftell(file.f);
  if (file_size_long < 0) {
    return core::Status::IoError("cannot stat " + path);
  }
  const std::uint64_t file_size = static_cast<std::uint64_t>(file_size_long);
  std::rewind(file.f);

  if (file_size < kFileHeaderBytes) {
    return core::Status::Corruption(path +
                                    ": file shorter than snapshot header");
  }
  std::uint8_t header[kFileHeaderBytes];
  if (std::fread(header, 1, kFileHeaderBytes, file.f) != kFileHeaderBytes) {
    return core::Status::IoError("cannot read header of " + path);
  }
  if (GetU64(header, 0) != kSnapshotMagic) {
    return core::Status::Corruption(path + ": not a GASS snapshot (bad magic)");
  }
  const std::uint32_t version = GetU32(header, 8);
  if (version != kSnapshotFormatVersion) {
    return core::Status::InvalidArgument(
        path + ": unsupported snapshot format version " +
        std::to_string(version) + " (reader supports " +
        std::to_string(kSnapshotFormatVersion) + ")");
  }
  if (GetU64(header, kFileHeaderChecksumOffset) !=
      Hash64(header, kFileHeaderChecksumOffset)) {
    return core::Status::Corruption(path + ": file header checksum mismatch");
  }
  const std::uint32_t method_len = GetU32(header, 12);
  if (method_len > kMaxMethodName) {
    return core::Status::Corruption(path + ": method name length " +
                                    std::to_string(method_len) +
                                    " out of range");
  }

  SnapshotReader reader;
  reader.path_ = path;
  reader.method_.assign(
      reinterpret_cast<const char*>(header + kFileMethodNameOffset),
      method_len);
  reader.params_fingerprint_ = GetU64(header, 56);
  reader.data_n_ = GetU64(header, 64);
  reader.data_dim_ = GetU64(header, 72);
  const std::uint64_t section_count = GetU64(header, 80);
  if (section_count > kMaxSections) {
    return core::Status::Corruption(path + ": section count " +
                                    std::to_string(section_count) +
                                    " out of range");
  }

  std::uint64_t offset = kFileHeaderBytes;
  reader.sections_.reserve(section_count);
  for (std::uint64_t i = 0; i < section_count; ++i) {
    const std::string ordinal = "section " + std::to_string(i);
    if (offset + kSectionHeaderBytes > file_size) {
      return core::Status::Corruption(
          path + ": " + ordinal + ": file truncated inside section header");
    }
    std::uint8_t sh[kSectionHeaderBytes];
    if (std::fseek(file.f, static_cast<long>(offset), SEEK_SET) != 0 ||
        std::fread(sh, 1, kSectionHeaderBytes, file.f) !=
            kSectionHeaderBytes) {
      return core::Status::IoError(path + ": cannot read " + ordinal +
                                   " header");
    }
    if (GetU32(sh, 0) != kSectionMagic) {
      return core::Status::Corruption(path + ": " + ordinal +
                                      ": bad section magic");
    }
    if (GetU64(sh, kSectionHeaderChecksumOffset) !=
        Hash64(sh, kSectionHeaderChecksumOffset)) {
      return core::Status::Corruption(path + ": " + ordinal +
                                      ": section header checksum mismatch");
    }
    const std::uint32_t name_len = GetU32(sh, 4);
    if (name_len == 0 || name_len > kMaxSectionName) {
      return core::Status::Corruption(path + ": " + ordinal +
                                      ": section name length out of range");
    }
    SectionInfo info;
    info.name.assign(reinterpret_cast<const char*>(sh + kSectionNameOffset),
                     name_len);
    info.header_offset = offset;
    info.payload_offset = offset + kSectionHeaderBytes;
    info.payload_bytes = GetU64(sh, kSectionPayloadBytesOffset);
    info.payload_checksum = GetU64(sh, kSectionPayloadChecksumOffset);
    if (GetU64(sh, 88) != i) {
      return core::Status::Corruption(path + ": section '" + info.name +
                                      "': section index mismatch");
    }
    if (info.payload_bytes > file_size - info.payload_offset) {
      return core::Status::Corruption(path + ": section '" + info.name +
                                      "': payload extends past end of file");
    }
    for (const SectionInfo& prior : reader.sections_) {
      if (prior.name == info.name) {
        return core::Status::Corruption(path + ": duplicate section '" +
                                        info.name + "'");
      }
    }
    offset = AlignUp(info.payload_offset + info.payload_bytes);
    reader.sections_.push_back(std::move(info));
  }
  if (offset != AlignUp(file_size) || file_size < offset - kSectionAlignment ||
      file_size > offset) {
    // The last section's padding may be absent (offset rounds past EOF by
    // less than one alignment unit); anything else is trailing garbage or
    // truncation.
    return core::Status::Corruption(path +
                                    ": file size does not match section table");
  }

  *out = std::move(reader);
  return core::Status::Ok();
}

bool SnapshotReader::HasSection(const std::string& name) const {
  for (const SectionInfo& s : sections_) {
    if (s.name == name) return true;
  }
  return false;
}

core::Status SnapshotReader::ReadSection(const std::string& name,
                                         AlignedBytes* out) const {
  const SectionInfo* info = nullptr;
  for (const SectionInfo& s : sections_) {
    if (s.name == name) {
      info = &s;
      break;
    }
  }
  if (info == nullptr) {
    return core::Status::Corruption(path_ + ": missing section '" + name +
                                    "'");
  }
  File file;
  file.f = std::fopen(path_.c_str(), "rb");
  if (file.f == nullptr) {
    return core::Status::IoError("cannot open " + path_);
  }
  out->resize(info->payload_bytes);
  if (std::fseek(file.f, static_cast<long>(info->payload_offset), SEEK_SET) !=
          0 ||
      (info->payload_bytes > 0 &&
       std::fread(out->data(), 1, info->payload_bytes, file.f) !=
           info->payload_bytes)) {
    return core::Status::IoError(path_ + ": cannot read section '" + name +
                                 "'");
  }
  if (Hash64(out->data(), out->size()) != info->payload_checksum) {
    return core::Status::Corruption(path_ + ": section '" + name +
                                    "': payload checksum mismatch");
  }
  return core::Status::Ok();
}

core::Status SnapshotReader::OpenSection(const std::string& name,
                                         AlignedBytes* buffer,
                                         Decoder* dec) const {
  GASS_RETURN_IF_ERROR(ReadSection(name, buffer));
  *dec = Decoder(buffer->data(), buffer->size(), "section '" + name + "'");
  return core::Status::Ok();
}

}  // namespace gass::io
