// Serving-side observability: lock-free latency histograms, QPS, and atomic
// aggregation of per-query SearchStats.
//
// Every counter on the record path is a relaxed atomic, so concurrent
// serving threads never contend on a lock to report a finished query.
// Readers (quantiles, dumps) see a consistent-enough snapshot for
// monitoring; exact totals are available once the writers quiesce.
//
// The histogram implementation lives in obs/histogram.h (the exporter
// walks its buckets without a serve dependency); the alias below keeps the
// historic serve::LatencyHistogram name working.

#ifndef GASS_SERVE_METRICS_H_
#define GASS_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "core/stats.h"
#include "obs/histogram.h"
#include "obs/trace.h"

namespace gass::obs {
class Exporter;  // obs/exporter.h; only needed by ExportTo callers.
}  // namespace gass::obs

namespace gass::serve {

using LatencyHistogram = obs::LatencyHistogram;

/// Aggregated serving metrics for one executor / one shared index.
///
/// RecordQuery() is called once per finished query from any thread; all
/// other members are read-side. Reset() must not race with RecordQuery().
class ServeMetrics {
 public:
  /// `stats.elapsed_seconds` must hold the query's wall latency. `expired`
  /// marks a query whose deadline cut the search short (counted separately
  /// from stats.deadline_expiries, which tallies expiry *events* — one query
  /// can expire in several sub-searches, e.g. ELPIS leaves). `partial`
  /// marks a query that lost a shard's contribution to a fault (failed
  /// sub-search or breaker skip) — independent of `expired`; see
  /// docs/SHARDING.md "Failure semantics".
  void RecordQuery(const core::SearchStats& stats, bool expired = false,
                   bool partial = false) {
    stats_.Add(stats);
    histogram_.Record(stats.elapsed_seconds);
    if (expired) expired_.fetch_add(1, std::memory_order_relaxed);
    if (partial) partial_.fetch_add(1, std::memory_order_relaxed);
    if (stats.shards_probed > 0 || stats.shards_failed > 0) {
      fanout_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Totals across all recorded queries.
  core::SearchStats TotalStats() const { return stats_.Snapshot(); }

  std::uint64_t queries() const { return stats_.queries(); }

  /// Queries whose results were deadline-truncated.
  std::uint64_t expired_queries() const {
    return expired_.load(std::memory_order_relaxed);
  }

  // --- Sharded fan-out accounting (written via stats.shards_probed) ---

  /// Queries that fanned out to a sharded index (stats.shards_probed > 0).
  /// Zero when serving an unsharded index.
  std::uint64_t fanout_queries() const {
    return fanout_.load(std::memory_order_relaxed);
  }
  /// Shard sub-searches dispatched across all recorded queries.
  std::uint64_t shards_probed_total() const {
    return stats_.Snapshot().shards_probed;
  }
  /// Queries that returned with a fault-caused missing shard contribution.
  std::uint64_t partial_queries() const {
    return partial_.load(std::memory_order_relaxed);
  }
  /// Shard contributions lost to faults (failed sub-searches + breaker
  /// skips) across all recorded queries.
  std::uint64_t shards_failed_total() const {
    return stats_.Snapshot().shards_failed;
  }
  /// Hedged backup sub-searches launched / won across all queries.
  std::uint64_t shards_hedged_total() const {
    return stats_.Snapshot().shards_hedged;
  }
  std::uint64_t hedge_wins_total() const {
    return stats_.Snapshot().hedge_wins;
  }
  /// Sub-searches answered by a peer replica after their routed replica
  /// failed (replicated indexes only; flows in via stats).
  std::uint64_t replica_failovers_total() const {
    return stats_.Snapshot().replica_failovers;
  }

  // --- Replica anti-entropy accounting (written by the scrub driver) ---

  /// One replica force-opened after its digest diverged from the shard
  /// majority.
  void RecordReplicaQuarantined() {
    replicas_quarantined_.fetch_add(1, std::memory_order_relaxed);
  }
  /// One quarantined replica restored online (snapshot or peer copy).
  void RecordReplicaRebuild() {
    replica_rebuilds_.fetch_add(1, std::memory_order_relaxed);
  }
  /// One full anti-entropy pass over every (shard, replica) digest.
  void RecordScrubPass() {
    scrub_passes_.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t replicas_quarantined() const {
    return replicas_quarantined_.load(std::memory_order_relaxed);
  }
  std::uint64_t replica_rebuilds() const {
    return replica_rebuilds_.load(std::memory_order_relaxed);
  }
  std::uint64_t scrub_passes() const {
    return scrub_passes_.load(std::memory_order_relaxed);
  }

  // --- Per-stage latency (written from sampled traces) ---

  /// Records one span's duration into the stage's histogram. Only sampled
  /// (traced) queries reach here, so stage histograms describe the traced
  /// subset — deterministic under the sampler's (seed, id) contract, and
  /// unbiased when the period is 1.
  void RecordStageNanos(obs::Stage stage, std::uint64_t nanos) {
    stage_histograms_[static_cast<std::size_t>(stage)].Record(
        static_cast<double>(nanos) * 1e-9);
  }

  const LatencyHistogram& stage_histogram(obs::Stage stage) const {
    return stage_histograms_[static_cast<std::size_t>(stage)];
  }

  // --- Overload accounting (written by serve::Frontend) ---

  /// Occupancy counters cover degradation steps [0, kMaxDegradeSteps);
  /// deeper steps clamp into the last slot.
  static constexpr std::size_t kMaxDegradeSteps = 8;

  /// One query shed (rejected before execution: queue full, forced fault,
  /// or predicted-late). Shed queries are NOT RecordQuery()'d — they never
  /// ran, so they pollute neither the latency histogram nor the per-query
  /// cost averages.
  void RecordShed() { shed_.fetch_add(1, std::memory_order_relaxed); }

  /// The degradation step one executed query actually ran with (0 = full
  /// effort). Feeds the per-step occupancy, and — when `count_degraded` —
  /// the degraded_queries() total. Pass false for a query whose *outcome*
  /// is not degraded (outcome precedence: a query that ran at a reduced
  /// step but then expired reports kExpired, and must count as expired,
  /// not degraded, so the outcome categories stay disjoint and
  /// full + degraded + expired == executed).
  void RecordDegradeStep(std::size_t step, bool count_degraded = true) {
    if (step > 0 && count_degraded) {
      degraded_.fetch_add(1, std::memory_order_relaxed);
    }
    if (step >= kMaxDegradeSteps) step = kMaxDegradeSteps - 1;
    degrade_occupancy_[step].fetch_add(1, std::memory_order_relaxed);
  }

  /// Admission-queue depth observed after an enqueue; keeps the high-water
  /// mark (lock-free CAS max).
  void RecordQueueDepth(std::size_t depth) {
    std::uint64_t seen = queue_high_water_.load(std::memory_order_relaxed);
    while (depth > seen && !queue_high_water_.compare_exchange_weak(
                               seen, depth, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t shed_queries() const {
    return shed_.load(std::memory_order_relaxed);
  }
  std::uint64_t degraded_queries() const {
    return degraded_.load(std::memory_order_relaxed);
  }
  std::uint64_t queue_depth_high_water() const {
    return queue_high_water_.load(std::memory_order_relaxed);
  }
  /// Executed queries that ran at degradation step `step` (clamped).
  std::uint64_t degrade_step_count(std::size_t step) const {
    if (step >= kMaxDegradeSteps) step = kMaxDegradeSteps - 1;
    return degrade_occupancy_[step].load(std::memory_order_relaxed);
  }

  // --- Live-update accounting (written by serve::Updater) ---

  /// One acknowledged insert applied to the index (logged + in memory).
  void RecordUpdateApplied() {
    updates_applied_.fetch_add(1, std::memory_order_relaxed);
  }
  /// One acknowledged delete applied (tombstone set).
  void RecordDeleteApplied() {
    deletes_applied_.fetch_add(1, std::memory_order_relaxed);
  }
  /// WAL bytes made durable (record headers + payloads + file headers).
  void AddWalBytes(std::uint64_t bytes) {
    wal_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  /// Records replayed from WALs during recovery (Updater::Open).
  void AddWalReplayRecords(std::uint64_t records) {
    wal_replay_records_.fetch_add(records, std::memory_order_relaxed);
  }
  /// One completed checkpoint (snapshot written + WALs rotated).
  void RecordCheckpoint() {
    checkpoints_.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t updates_applied() const {
    return updates_applied_.load(std::memory_order_relaxed);
  }
  std::uint64_t deletes_applied() const {
    return deletes_applied_.load(std::memory_order_relaxed);
  }
  std::uint64_t wal_bytes_written() const {
    return wal_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t wal_replay_records() const {
    return wal_replay_records_.load(std::memory_order_relaxed);
  }
  std::uint64_t checkpoints() const {
    return checkpoints_.load(std::memory_order_relaxed);
  }

  double LatencyQuantileSeconds(double q) const {
    return histogram_.QuantileSeconds(q);
  }

  /// Completed queries per second of wall time since construction or the
  /// last Reset().
  double Qps() const;

  /// Human-readable multi-line summary (QPS, p50/p95/p99, per-query costs,
  /// deadline expiries) for benches and the CLI.
  std::string Dump() const;

  /// Registers every metric on `exporter`, each name prefixed with
  /// `prefix` (e.g. "gass_serve_"): query/shed/expiry counters, the
  /// end-to-end latency histogram, one "<prefix>stage_seconds_<stage>"
  /// histogram per serve stage that saw samples, per-step degrade
  /// occupancy (label step="N"), and the queue high-water gauge.
  void ExportTo(obs::Exporter* exporter, const std::string& prefix) const;

  /// Not safe concurrently with RecordQuery().
  void Reset();

 private:
  core::SearchStats::AtomicAccumulator stats_;
  LatencyHistogram histogram_;
  std::array<LatencyHistogram, obs::kNumStages> stage_histograms_;
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> partial_{0};
  std::atomic<std::uint64_t> fanout_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> queue_high_water_{0};
  std::atomic<std::uint64_t> updates_applied_{0};
  std::atomic<std::uint64_t> deletes_applied_{0};
  std::atomic<std::uint64_t> wal_bytes_{0};
  std::atomic<std::uint64_t> wal_replay_records_{0};
  std::atomic<std::uint64_t> checkpoints_{0};
  std::atomic<std::uint64_t> replicas_quarantined_{0};
  std::atomic<std::uint64_t> replica_rebuilds_{0};
  std::atomic<std::uint64_t> scrub_passes_{0};
  std::array<std::atomic<std::uint64_t>, kMaxDegradeSteps> degrade_occupancy_{};
  core::Timer window_;
};

}  // namespace gass::serve

#endif  // GASS_SERVE_METRICS_H_
