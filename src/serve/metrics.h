// Serving-side observability: lock-free latency histogram, QPS, and atomic
// aggregation of per-query SearchStats.
//
// Every counter on the record path is a relaxed atomic, so concurrent
// serving threads never contend on a lock to report a finished query.
// Readers (quantiles, dumps) see a consistent-enough snapshot for
// monitoring; exact totals are available once the writers quiesce.

#ifndef GASS_SERVE_METRICS_H_
#define GASS_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "core/stats.h"

namespace gass::serve {

/// Lock-free, log-bucketed latency histogram (HDR-style, base 2 with 8
/// sub-buckets per octave → ≤ ~6% relative quantile error).
///
/// Record() is wait-free (one relaxed fetch_add). Covers ~8ns to ~18min;
/// out-of-range samples clamp to the edge buckets.
class LatencyHistogram {
 public:
  LatencyHistogram() { Reset(); }

  void Record(double seconds);

  /// Approximate latency at quantile `q` in [0, 1] (0.5 = median). Returns
  /// 0 when empty. Not linearizable against concurrent Record()s.
  double QuantileSeconds(double q) const;

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  /// Not safe concurrently with Record().
  void Reset();

  // 8 sub-buckets per power-of-two octave over nanoseconds; shift 0 covers
  // [8ns, 16ns), shift kShifts-1 tops out around 2^43 ns ≈ 2.4 h.
  static constexpr std::size_t kSub = 8;
  static constexpr std::size_t kShifts = 40;
  static constexpr std::size_t kBuckets = kSub * kShifts;

 private:
  static std::size_t BucketIndex(std::uint64_t nanos);
  static double BucketMidNanos(std::size_t index);

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_;
  std::atomic<std::uint64_t> count_{0};
};

/// Aggregated serving metrics for one executor / one shared index.
///
/// RecordQuery() is called once per finished query from any thread; all
/// other members are read-side. Reset() must not race with RecordQuery().
class ServeMetrics {
 public:
  /// `stats.elapsed_seconds` must hold the query's wall latency. `expired`
  /// marks a query whose deadline cut the search short (counted separately
  /// from stats.deadline_expiries, which tallies expiry *events* — one query
  /// can expire in several sub-searches, e.g. ELPIS leaves).
  void RecordQuery(const core::SearchStats& stats, bool expired = false) {
    stats_.Add(stats);
    histogram_.Record(stats.elapsed_seconds);
    if (expired) expired_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Totals across all recorded queries.
  core::SearchStats TotalStats() const { return stats_.Snapshot(); }

  std::uint64_t queries() const { return stats_.queries(); }

  /// Queries whose results were deadline-truncated.
  std::uint64_t expired_queries() const {
    return expired_.load(std::memory_order_relaxed);
  }

  double LatencyQuantileSeconds(double q) const {
    return histogram_.QuantileSeconds(q);
  }

  /// Completed queries per second of wall time since construction or the
  /// last Reset().
  double Qps() const;

  /// Human-readable multi-line summary (QPS, p50/p95/p99, per-query costs,
  /// deadline expiries) for benches and the CLI.
  std::string Dump() const;

  /// Not safe concurrently with RecordQuery().
  void Reset();

 private:
  core::SearchStats::AtomicAccumulator stats_;
  LatencyHistogram histogram_;
  std::atomic<std::uint64_t> expired_{0};
  core::Timer window_;
};

}  // namespace gass::serve

#endif  // GASS_SERVE_METRICS_H_
