#include "serve/metrics.h"

#include <cstdio>

#include "obs/exporter.h"

namespace gass::serve {

double ServeMetrics::Qps() const {
  const double elapsed = window_.Seconds();
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(queries()) / elapsed;
}

std::string ServeMetrics::Dump() const {
  const core::SearchStats totals = TotalStats();
  const std::uint64_t n = queries();
  const double nq = n == 0 ? 1.0 : static_cast<double>(n);
  char buffer[1536];
  std::snprintf(
      buffer, sizeof(buffer),
      "queries          %llu\n"
      "qps              %.1f\n"
      "latency p50      %.3f ms\n"
      "latency p95      %.3f ms\n"
      "latency p99      %.3f ms\n"
      "dists/query      %.1f\n"
      "hops/query       %.1f\n"
      "deadline expiry  %llu\n"
      "expired queries  %llu\n"
      "partial queries  %llu\n"
      "shed queries     %llu\n"
      "degraded queries %llu\n"
      "queue high-water %llu\n"
      "fan-out queries  %llu\n"
      "shards probed    %llu (%.2f per fanned query)\n"
      "shards failed    %llu\n"
      "shards hedged    %llu (%llu hedge wins)\n"
      "replica failover %llu\n"
      "replicas quarantined %llu\n"
      "replica rebuilds %llu\n"
      "scrub passes     %llu\n"
      "updates applied  %llu\n"
      "deletes applied  %llu\n"
      "wal bytes        %llu\n"
      "wal replayed     %llu\n"
      "checkpoints      %llu\n",
      static_cast<unsigned long long>(n), Qps(),
      1e3 * LatencyQuantileSeconds(0.50), 1e3 * LatencyQuantileSeconds(0.95),
      1e3 * LatencyQuantileSeconds(0.99),
      static_cast<double>(totals.distance_computations) / nq,
      static_cast<double>(totals.hops) / nq,
      static_cast<unsigned long long>(totals.deadline_expiries),
      static_cast<unsigned long long>(expired_queries()),
      static_cast<unsigned long long>(partial_queries()),
      static_cast<unsigned long long>(shed_queries()),
      static_cast<unsigned long long>(degraded_queries()),
      static_cast<unsigned long long>(queue_depth_high_water()),
      static_cast<unsigned long long>(fanout_queries()),
      static_cast<unsigned long long>(totals.shards_probed),
      fanout_queries() == 0
          ? 0.0
          : static_cast<double>(totals.shards_probed) /
                static_cast<double>(fanout_queries()),
      static_cast<unsigned long long>(totals.shards_failed),
      static_cast<unsigned long long>(totals.shards_hedged),
      static_cast<unsigned long long>(totals.hedge_wins),
      static_cast<unsigned long long>(totals.replica_failovers),
      static_cast<unsigned long long>(replicas_quarantined()),
      static_cast<unsigned long long>(replica_rebuilds()),
      static_cast<unsigned long long>(scrub_passes()),
      static_cast<unsigned long long>(updates_applied()),
      static_cast<unsigned long long>(deletes_applied()),
      static_cast<unsigned long long>(wal_bytes_written()),
      static_cast<unsigned long long>(wal_replay_records()),
      static_cast<unsigned long long>(checkpoints()));
  return buffer;
}

void ServeMetrics::ExportTo(obs::Exporter* exporter,
                            const std::string& prefix) const {
  const core::SearchStats totals = TotalStats();
  exporter->AddCounter(prefix + "queries_total",
                       static_cast<double>(queries()),
                       "Queries executed and recorded");
  exporter->AddCounter(prefix + "expired_queries_total",
                       static_cast<double>(expired_queries()),
                       "Queries whose results were deadline-truncated");
  exporter->AddCounter(prefix + "shed_queries_total",
                       static_cast<double>(shed_queries()),
                       "Queries rejected before execution");
  exporter->AddCounter(prefix + "degraded_queries_total",
                       static_cast<double>(degraded_queries()),
                       "Queries served at a reduced effort step");
  exporter->AddCounter(prefix + "fanout_queries_total",
                       static_cast<double>(fanout_queries()),
                       "Queries that fanned out to a sharded index");
  exporter->AddCounter(prefix + "shards_probed_total",
                       static_cast<double>(totals.shards_probed),
                       "Shard sub-searches dispatched");
  exporter->AddCounter(prefix + "partial_queries_total",
                       static_cast<double>(partial_queries()),
                       "Queries missing a shard contribution to a fault");
  exporter->AddCounter(prefix + "shards_failed_total",
                       static_cast<double>(totals.shards_failed),
                       "Shard contributions lost to faults or open breakers");
  exporter->AddCounter(prefix + "shards_hedged_total",
                       static_cast<double>(totals.shards_hedged),
                       "Hedged backup sub-searches launched");
  exporter->AddCounter(prefix + "hedge_wins_total",
                       static_cast<double>(totals.hedge_wins),
                       "Hedged backups that resolved before the primary");
  exporter->AddCounter(prefix + "replica_failovers_total",
                       static_cast<double>(totals.replica_failovers),
                       "Sub-searches answered by a peer replica after the "
                       "routed replica failed");
  exporter->AddCounter(prefix + "replicas_quarantined_total",
                       static_cast<double>(replicas_quarantined()),
                       "Replicas force-opened after digest divergence");
  exporter->AddCounter(prefix + "replica_rebuilds_total",
                       static_cast<double>(replica_rebuilds()),
                       "Quarantined replicas restored online");
  exporter->AddCounter(prefix + "scrub_passes_total",
                       static_cast<double>(scrub_passes()),
                       "Anti-entropy digest passes completed");
  exporter->AddCounter(prefix + "distance_computations_total",
                       static_cast<double>(totals.distance_computations),
                       "Distance evaluations across all queries");
  exporter->AddCounter(prefix + "hops_total",
                       static_cast<double>(totals.hops),
                       "Graph vertices expanded across all queries");
  exporter->AddCounter(prefix + "prefetches_total",
                       static_cast<double>(totals.prefetches),
                       "Vectors prefetched ahead of batched distances");
  exporter->AddCounter(prefix + "deadline_expiries_total",
                       static_cast<double>(totals.deadline_expiries),
                       "Deadline expiry events (>=1 possible per query)");
  exporter->AddCounter(prefix + "updates_applied_total",
                       static_cast<double>(updates_applied()),
                       "Acknowledged inserts applied to the live index");
  exporter->AddCounter(prefix + "deletes_applied_total",
                       static_cast<double>(deletes_applied()),
                       "Acknowledged deletes applied (tombstones set)");
  exporter->AddCounter(prefix + "wal_bytes_written_total",
                       static_cast<double>(wal_bytes_written()),
                       "Write-ahead log bytes made durable");
  exporter->AddCounter(prefix + "wal_replay_records_total",
                       static_cast<double>(wal_replay_records()),
                       "WAL records replayed during recovery");
  exporter->AddCounter(prefix + "checkpoints_total",
                       static_cast<double>(checkpoints()),
                       "Checkpoints written (snapshot + WAL rotation)");
  for (std::size_t step = 0; step < kMaxDegradeSteps; ++step) {
    const std::uint64_t n = degrade_step_count(step);
    if (n == 0 && step > 0) continue;  // Step 0 always exported.
    char labels[24];
    std::snprintf(labels, sizeof(labels), "step=\"%zu\"", step);
    exporter->AddCounter(prefix + "degrade_step_queries_total",
                         static_cast<double>(n),
                         "Executed queries by degradation step", labels);
  }
  exporter->AddGauge(prefix + "queue_depth_high_water",
                     static_cast<double>(queue_depth_high_water()),
                     "Deepest admission queue observed");
  exporter->AddHistogram(prefix + "latency_seconds", histogram_,
                         "End-to-end query latency");
  for (std::size_t s = 0; s < obs::kNumStages; ++s) {
    if (stage_histograms_[s].count() == 0) continue;
    exporter->AddHistogram(
        prefix + "stage_seconds_" +
            obs::StageName(static_cast<obs::Stage>(s)),
        stage_histograms_[s], "Per-stage latency (traced queries)");
  }
}

void ServeMetrics::Reset() {
  stats_.Reset();
  histogram_.Reset();
  for (auto& h : stage_histograms_) h.Reset();
  expired_.store(0, std::memory_order_relaxed);
  partial_.store(0, std::memory_order_relaxed);
  fanout_.store(0, std::memory_order_relaxed);
  shed_.store(0, std::memory_order_relaxed);
  degraded_.store(0, std::memory_order_relaxed);
  queue_high_water_.store(0, std::memory_order_relaxed);
  for (auto& slot : degrade_occupancy_) {
    slot.store(0, std::memory_order_relaxed);
  }
  updates_applied_.store(0, std::memory_order_relaxed);
  deletes_applied_.store(0, std::memory_order_relaxed);
  wal_bytes_.store(0, std::memory_order_relaxed);
  wal_replay_records_.store(0, std::memory_order_relaxed);
  checkpoints_.store(0, std::memory_order_relaxed);
  replicas_quarantined_.store(0, std::memory_order_relaxed);
  replica_rebuilds_.store(0, std::memory_order_relaxed);
  scrub_passes_.store(0, std::memory_order_relaxed);
  window_.Reset();
}

}  // namespace gass::serve
