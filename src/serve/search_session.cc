#include "serve/search_session.h"

namespace gass::serve {

SearchSessionPool::Lease::~Lease() {
  if (pool_ != nullptr && ctx_ != nullptr) pool_->Release(std::move(ctx_));
}

SearchSessionPool::Lease SearchSessionPool::Acquire() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!idle_.empty()) {
    std::unique_ptr<methods::SearchContext> ctx = std::move(idle_.back());
    idle_.pop_back();
    return Lease(this, std::move(ctx));
  }
  const std::uint64_t seed = seed_rng_.Next();
  ++created_;
  lock.unlock();  // The O(n) context allocation happens outside the lock.
  return Lease(this, std::make_unique<methods::SearchContext>(
                         index_->MakeSearchContext(seed)));
}

void SearchSessionPool::Release(std::unique_ptr<methods::SearchContext> ctx) {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.push_back(std::move(ctx));
}

std::size_t SearchSessionPool::idle_count() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return idle_.size();
}

std::size_t SearchSessionPool::created_count() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return created_;
}

}  // namespace gass::serve
