// LiveIndex over a single streaming HNSW.
//
// HNSW is the one method in the suite whose construction is inherently
// incremental (one node at a time), which is exactly what a live update
// path needs: LiveHnsw owns a fixed-capacity vector arena (base rows plus
// reserved growth room), builds the index over the base prefix with
// HnswIndex::BuildPrefix, and applies each acknowledged insert by copying
// the vector into the arena and calling HnswIndex::Extend. One WAL stream;
// deletes are tombstones handled entirely by serve::Updater.

#ifndef GASS_SERVE_LIVE_HNSW_H_
#define GASS_SERVE_LIVE_HNSW_H_

#include <memory>

#include "core/dataset.h"
#include "methods/hnsw_index.h"
#include "serve/live_index.h"

namespace gass::serve {

struct LiveHnswOptions {
  methods::HnswParams hnsw;
  /// Arena headroom: inserts accepted beyond the base set before the
  /// index is full (a rebuild with a larger reserve is then needed).
  std::size_t reserve = 1024;
};

class LiveHnsw : public LiveIndex {
 public:
  /// Builds over all rows of `base` with `options.reserve` rows of growth
  /// room. `base` is copied into the arena; it need not outlive the index.
  static std::unique_ptr<LiveHnsw> Build(const core::Dataset& base,
                                         const LiveHnswOptions& options);

  /// An unbuilt shell for checkpoint loading: LoadSections() restores the
  /// arena (base rows re-materialized from `base`, live rows from the
  /// checkpoint) and the index. `base` must be the dataset the original
  /// Build() ran over and must stay alive until LoadSections returns.
  static std::unique_ptr<LiveHnsw> Shell(const core::Dataset& base,
                                         const LiveHnswOptions& options);

  const methods::GraphIndex& SearchIndex() const override { return hnsw_; }
  methods::GraphIndex* MutableSearchIndex() override { return &hnsw_; }

  std::string MethodName() const override { return "LIVE-HNSW"; }
  std::uint64_t ParamsFingerprint() const override;

  std::size_t dim() const override { return arena_.dim(); }
  std::size_t id_capacity() const override { return arena_.size(); }
  std::size_t next_id() const override { return hnsw_.inserted_count(); }
  std::uint32_t num_streams() const override { return 1; }

  std::uint32_t RouteInsert(const float* vec) const override {
    (void)vec;
    return 0;
  }
  std::uint32_t RouteDelete(core::VectorId id) const override {
    (void)id;
    return 0;
  }

  bool CanInsert(std::uint32_t stream) const override {
    (void)stream;
    return hnsw_.inserted_count() < arena_.size();
  }
  bool Exists(core::VectorId id) const override {
    return id < hnsw_.inserted_count();
  }

  core::Status ApplyInsert(std::uint32_t stream, core::VectorId id,
                           const float* vec) override;

  core::Status SaveSections(io::SnapshotWriter* writer) const override;
  core::Status LoadSections(const io::SnapshotReader& reader) override;

  const methods::HnswIndex& hnsw() const { return hnsw_; }

 private:
  LiveHnsw(const core::Dataset& base, const LiveHnswOptions& options);

  const core::Dataset* base_;  ///< Shell-load source; null after Build.
  LiveHnswOptions options_;
  std::size_t base_rows_ = 0;
  core::Dataset arena_;
  methods::HnswIndex hnsw_;
};

}  // namespace gass::serve

#endif  // GASS_SERVE_LIVE_HNSW_H_
