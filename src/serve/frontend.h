// Overload-resilient serving frontend: bounded admission, load shedding,
// and adaptive degradation on top of the concurrent search path.
//
// QueryExecutor answers "how fast can N threads drain a batch"; it will
// happily accept unbounded work and, under overload, miss every deadline at
// once. The Frontend is the piece that faces an *open-loop* world, where
// clients do not wait for the previous answer before sending the next
// query. It degrades gracefully instead of collapsing:
//
//   * Bounded admission queue — work beyond `queue_capacity` is rejected
//     immediately (shed), so queue delay is bounded and memory cannot grow
//     without limit.
//   * Deadline-aware load shedding — a query whose remaining budget cannot
//     cover the observed p50 service time is shed up front (at admission
//     and again at dequeue, where queue wait may have consumed the budget)
//     rather than executed to certain expiry.
//   * Adaptive degradation — as the queue fills, the effective beam width
//     shrinks in discrete steps (SearchParams::degrade_step, each step
//     halves the beam, never below k), restoring automatically as pressure
//     drains. Cheaper answers for everyone beats no answers for most.
//
// Every query's disposition is explicit in its SearchResult::outcome —
// kFull / kDegraded / kExpired / kRejected — and aggregated in ServeMetrics
// (shed/degraded counts, per-step occupancy, queue high-water mark). See
// docs/SERVING.md for how to read them and pick settings.

#ifndef GASS_SERVE_FRONTEND_H_
#define GASS_SERVE_FRONTEND_H_

#include <cstdint>
#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/deadline.h"
#include "methods/graph_index.h"
#include "obs/trace.h"
#include "serve/fault_injector.h"
#include "serve/metrics.h"
#include "serve/request.h"
#include "serve/search_session.h"
#include "serve/updater.h"

namespace gass::serve {

struct FrontendOptions {
  /// Worker threads; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Admission-queue bound (clamped to >= 1). Submissions beyond it shed.
  std::size_t queue_capacity = 64;
  /// Default per-query budget applied at admission; <= 0 = unlimited.
  /// The Submit overload taking a Deadline overrides it per query.
  double deadline_seconds = 0.0;
  /// Shed queries predicted to miss their deadline: remaining budget <
  /// shed_safety_factor * observed p50 service time. Needs at least
  /// min_service_samples completed queries before it activates (a cold
  /// server has no p50 to predict with).
  bool shed_predicted_late = true;
  double shed_safety_factor = 1.0;
  std::size_t min_service_samples = 32;
  /// Deepest degradation step (0 disables degradation). Step s halves the
  /// effective beam width s times (never below k).
  std::size_t max_degrade_step = 3;
  /// Queue-fill fractions mapping depth to degradation step: at or below
  /// `low` fill the frontend serves full effort, at or above `high` it
  /// serves max_degrade_step, with evenly spaced discrete steps between
  /// (see DegradeStepForDepth).
  double degrade_low_fraction = 0.25;
  double degrade_high_fraction = 0.75;
  /// Base seed for per-query RNG reseeding — the same (seed, admission id)
  /// determinism contract as QueryExecutor.
  std::uint64_t seed = 0xF207E7DULL;
  /// Trace sampling (obs::TracerOptions::sample_period 0 = off). Sampled
  /// queries get per-stage spans recorded into the frontend's tracer and
  /// fed into the per-stage latency histograms; the sampled set is a pure
  /// function of (trace.seed, admission id).
  obs::TracerOptions trace;
};

/// Open-loop serving frontend over one shared, built index.
///
/// Thread-safe: Submit may be called from any number of client threads.
/// The queried vectors must stay alive until the returned ticket resolves.
/// The index must support concurrent search and outlive the frontend.
///
/// Destruction drains the queue (accepted queries still run) and joins the
/// workers; a closed FaultInjector gate must be opened first or the
/// destructor will wait on it forever.
class Frontend {
 public:
  /// Resolves to the query's SearchResponse (a methods::SearchResult plus
  /// admission id and trace); outcome tells full / degraded / expired /
  /// rejected apart. Rejected tickets resolve immediately.
  using Ticket = std::future<SearchResponse>;

  /// An update-resolving ticket: ok status = acknowledged (the WAL record
  /// is durable per the updater's fsync policy).
  using UpdateTicket = std::future<UpdateResult>;

  Frontend(const methods::GraphIndex& index, const FrontendOptions& options,
           FaultInjector* faults = nullptr);

  /// Live-serving mode: searches run over updater.index() under the
  /// updater's search lock (shared side) with its tombstones filtered, and
  /// SubmitInsert / SubmitDelete are admitted through the same bounded
  /// queue as queries. The updater (and its LiveIndex) must outlive the
  /// frontend; its counters are bound to this frontend's ServeMetrics
  /// unless UpdaterOptions::metrics pinned another sink.
  Frontend(Updater& updater, const FrontendOptions& options,
           FaultInjector* faults = nullptr);
  ~Frontend();

  Frontend(const Frontend&) = delete;
  Frontend& operator=(const Frontend&) = delete;

  /// Admission of one SearchRequest — the primary entry point. The
  /// request's deadline is honored when has_deadline is set, otherwise the
  /// default budget (options.deadline_seconds) applies; any caller-set
  /// params.deadline is ignored — the frontend owns deadlines (they must
  /// survive the queue wait, so they cannot point into the caller's
  /// stack). An auto admission id is resolved to the submission counter.
  Ticket Submit(const SearchRequest& request);

  /// Forwarding overload: admission with the default deadline.
  Ticket Submit(const float* query, std::size_t dim,
                const methods::SearchParams& params);

  /// Forwarding overload: admission with an explicit per-query deadline.
  Ticket Submit(const float* query, std::size_t dim,
                const methods::SearchParams& params,
                const core::Deadline& deadline);

  /// Blocking convenience: Submit + wait.
  SearchResponse Search(const SearchRequest& request);
  methods::SearchResult Search(const float* query, std::size_t dim,
                               const methods::SearchParams& params);

  /// Admits one insert (updater mode only). The vector is copied at
  /// admission, so the caller's buffer may be reused immediately. Updates
  /// respect the queue bound (full queue = rejected ticket) but are never
  /// shed by deadline prediction — durability work is not droppable for
  /// latency. Workers funnel them into the updater, whose own mutex
  /// serializes the log-then-apply protocol.
  UpdateTicket SubmitInsert(const float* vec, std::size_t dim);

  /// Admits one delete (updater mode only); same admission rules.
  UpdateTicket SubmitDelete(core::VectorId id);

  /// Blocks until every admitted query has resolved and the queue is empty.
  void Drain();

  /// The degradation step a query dequeued at `depth` runs with: 0 at or
  /// below the low watermark, max_degrade_step at or above the high one,
  /// evenly spaced discrete steps between. Pure function of (options,
  /// depth) — exposed so tests and benches can pin the mapping.
  std::size_t DegradeStepForDepth(std::size_t depth) const;

  const ServeMetrics& metrics() const { return metrics_; }
  ServeMetrics& metrics() { return metrics_; }

  /// The frontend's trace sampler (configured from options.trace).
  /// Completed traces accumulate here until tracer().Reset().
  const obs::Tracer& tracer() const { return tracer_; }
  obs::Tracer& tracer() { return tracer_; }

  /// Queries currently waiting for a worker (excludes in-service).
  std::size_t queue_depth() const;
  /// Total queries ever submitted (accepted or shed).
  std::uint64_t submitted() const {
    return submitted_.load(std::memory_order_relaxed);
  }
  std::size_t thread_count() const { return workers_.size(); }
  const FrontendOptions& options() const { return options_; }

  /// The updater behind SubmitInsert/SubmitDelete (null in search-only
  /// mode).
  Updater* updater() { return updater_; }

 private:
  enum class TaskKind : std::uint8_t { kSearch, kInsert, kDelete };

  struct Task {
    TaskKind kind = TaskKind::kSearch;
    const float* query = nullptr;
    std::size_t dim = 0;
    methods::SearchParams params;
    core::Deadline deadline;
    std::uint64_t id = 0;
    /// Trace sink for this query (null = untraced); owned_trace marks a
    /// tracer slot that must be retired via FinishTrace.
    obs::QueryTrace* trace = nullptr;
    bool owned_trace = false;
    std::promise<SearchResponse> promise;
    /// Update-task payload: the copied vector (inserts) or target id
    /// (deletes), resolved through update_promise instead of promise.
    std::vector<float> update_vector;
    core::VectorId delete_id = core::kInvalidVectorId;
    std::promise<UpdateResult> update_promise;
  };

  Frontend(const methods::GraphIndex& index, const FrontendOptions& options,
           FaultInjector* faults, Updater* updater);

  void WorkerLoop();
  /// Executes one update task against the updater and resolves its ticket.
  void ServeUpdate(Task* task);
  /// Admits one update task (shared tail of SubmitInsert/SubmitDelete).
  UpdateTicket SubmitUpdate(Task task);
  /// Fulfills a ticket as shed (kRejected) and records the metrics.
  void Reject(Task* task);
  /// Finishes the task's trace (if any): stamps the total, feeds the
  /// per-stage histograms, retires tracer-owned slots, and points the
  /// response at the trace.
  void FinishTaskTrace(Task* task, SearchResponse* response);
  /// True when the remaining budget cannot cover the observed p50 service
  /// time (and prediction is active).
  bool PredictedLate(const core::Deadline& deadline) const;

  const methods::GraphIndex& index_;
  FrontendOptions options_;
  FaultInjector* faults_;        // Not owned; null = no injection.
  Updater* updater_ = nullptr;   // Not owned; null = search-only mode.
  SearchSessionPool sessions_;
  ServeMetrics metrics_;
  obs::Tracer tracer_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // Queue non-empty or stopping.
  std::condition_variable drain_cv_;  // Queue empty and nothing in service.
  std::deque<Task> queue_;
  std::size_t in_service_ = 0;  // Dequeued, promise not yet fulfilled.
  bool stop_ = false;

  std::atomic<std::uint64_t> submitted_{0};
  std::vector<std::thread> workers_;
};

}  // namespace gass::serve

#endif  // GASS_SERVE_FRONTEND_H_
