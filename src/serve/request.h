// The unified serve-path request/response pair.
//
// One query used to travel through three different signatures — the
// executor's (queries, n, dim, params), the frontend's (query, dim,
// params, deadline), and the index's (query, params, ctx) — which left no
// place to attach per-query concerns like a trace handle or a stable
// admission id. SearchRequest is that place: everything the serving tier
// needs to know about one query, in one struct, with the old signatures
// kept as thin forwarding overloads.
//
// SearchResponse extends methods::SearchResult (publicly, so existing
// callers that slice into a SearchResult or read .outcome / .neighbors
// through the base keep compiling) with the admission id the query ran
// under and the trace captured for it, if any.

#ifndef GASS_SERVE_REQUEST_H_
#define GASS_SERVE_REQUEST_H_

#include <cstdint>

#include "core/deadline.h"
#include "methods/graph_index.h"
#include "obs/trace.h"

namespace gass::serve {

/// "Assign me an id": the serving tier substitutes its own sequential id
/// (frontend: submission order; executor: batch index). Explicit ids exist
/// so replayed workloads hit the same deterministic RNG/sampling streams.
inline constexpr std::uint64_t kAutoAdmissionId = ~std::uint64_t{0};

struct SearchRequest {
  /// The query vector (`dim` floats); must stay alive until the response
  /// resolves.
  const float* query = nullptr;
  std::size_t dim = 0;
  methods::SearchParams params;
  /// Per-query deadline, honored only when `has_deadline` is true (a
  /// default-constructed Deadline means "explicitly unlimited", which is
  /// different from "use the server's default budget" — the flag keeps the
  /// two apart). params.deadline is ignored by request-based entry points;
  /// the serving tier owns deadline storage.
  core::Deadline deadline;
  bool has_deadline = false;
  /// Identity for RNG reseeding and trace sampling; kAutoAdmissionId lets
  /// the serving tier assign the next sequential id.
  std::uint64_t admission_id = kAutoAdmissionId;
  /// Caller-owned trace sink. Null (the default) delegates the decision to
  /// the server's obs::Tracer sampler; non-null forces this query traced
  /// into the given object.
  obs::QueryTrace* trace = nullptr;
};

struct SearchResponse : methods::SearchResult {
  SearchResponse() = default;
  explicit SearchResponse(methods::SearchResult&& result)
      : methods::SearchResult(std::move(result)) {}

  /// The admission id the query actually ran under (auto ids resolved).
  std::uint64_t admission_id = 0;
  /// The query's trace: the request's own, or the server tracer's slot
  /// (valid until that tracer is Reset/reconfigured). Null = not sampled.
  const obs::QueryTrace* trace = nullptr;
  /// Fan-out accounting (0 for unsharded indexes): shards whose results
  /// merged into `neighbors`, shards that contributed nothing because they
  /// failed or were breaker-skipped (fault-caused — pairs with the
  /// inherited `partial` flag, as deadline-caused misses pair with
  /// `expired`), and hedged backup sub-searches launched. Filled from
  /// stats.shards_* by the serving tier / shard::ShardedIndex.
  std::uint64_t shards_ok = 0;
  std::uint64_t shards_failed = 0;
  std::uint64_t shards_hedged = 0;
  /// Sub-searches that failed on one replica and were answered by a peer
  /// replica of the same shard (replicated indexes only). A query with
  /// failovers but shards_failed == 0 lost nothing — replication absorbed
  /// the fault.
  std::uint64_t replica_failovers = 0;
};

}  // namespace gass::serve

#endif  // GASS_SERVE_REQUEST_H_
