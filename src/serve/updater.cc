#include "serve/updater.h"

#include <algorithm>

#include "core/macros.h"
#include "io/serialize.h"

namespace gass::serve {

std::string Updater::CheckpointPath(const UpdaterOptions& options) {
  return options.directory + "/" + options.name + ".ckpt";
}

std::string Updater::WalPath(const UpdaterOptions& options,
                             std::uint32_t stream) {
  return options.directory + "/" + options.name + ".wal" +
         std::to_string(stream);
}

Updater::Updater(LiveIndex* live, const UpdaterOptions& options)
    : live_(live), options_(options) {
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
    metrics_bound_ = true;
  } else {
    owned_metrics_ = std::make_unique<ServeMetrics>();
    metrics_ = owned_metrics_.get();
  }
  tombstones_.Resize(live_->id_capacity());
}

void Updater::BindMetrics(ServeMetrics* metrics) {
  if (metrics_bound_ || metrics == nullptr) return;
  metrics_ = metrics;
  metrics_bound_ = true;
}

io::WalHeader Updater::HeaderFor(std::uint32_t stream,
                                 std::uint64_t base_sequence) const {
  io::WalHeader header;
  header.stream = stream;
  header.dim = live_->dim();
  header.base_sequence = base_sequence;
  header.fingerprint = live_->ParamsFingerprint();
  return header;
}

core::Status Updater::Create(LiveIndex* live, const UpdaterOptions& options,
                             std::unique_ptr<Updater>* out) {
  auto updater = std::unique_ptr<Updater>(new Updater(live, options));
  GASS_RETURN_IF_ERROR(updater->WriteCheckpoint(0));
  updater->wals_.resize(live->num_streams());
  for (std::uint32_t s = 0; s < live->num_streams(); ++s) {
    GASS_RETURN_IF_ERROR(io::WalWriter::Create(WalPath(options, s),
                                               updater->HeaderFor(s, 0),
                                               options.wal,
                                               &updater->wals_[s]));
    updater->metrics_->AddWalBytes(io::kWalFileHeaderBytes);
  }
  *out = std::move(updater);
  return core::Status::Ok();
}

core::Status Updater::Open(LiveIndex* live, const UpdaterOptions& options,
                           std::unique_ptr<Updater>* out,
                           RecoveryReport* report) {
  *report = RecoveryReport{};
  auto updater = std::unique_ptr<Updater>(new Updater(live, options));

  // 1. Load the checkpoint (the durable baseline every WAL is relative to).
  const std::string ckpt = CheckpointPath(options);
  io::SnapshotReader reader;
  GASS_RETURN_IF_ERROR(io::SnapshotReader::Open(ckpt, &reader));
  if (reader.method() != live->MethodName()) {
    return core::Status::InvalidArgument(
        ckpt + ": checkpoint holds a " + reader.method() +
        " index, cannot recover into " + live->MethodName());
  }
  if (reader.params_fingerprint() != live->ParamsFingerprint()) {
    return core::Status::InvalidArgument(
        ckpt + ": checkpoint was written with different " +
        live->MethodName() + " parameters (fingerprint mismatch)");
  }

  io::AlignedBytes buffer;
  io::Decoder dec(nullptr, 0, "");
  GASS_RETURN_IF_ERROR(reader.OpenSection("upd.meta", &buffer, &dec));
  const std::uint64_t watermark = dec.U64();
  const std::uint64_t ckpt_next_id = dec.U64();
  if (!dec.ExpectEnd()) return dec.status();
  dec.Check(ckpt_next_id == reader.data_n(),
            "checkpoint next-id disagrees with its own header");
  if (!dec.ok()) return dec.status();

  GASS_RETURN_IF_ERROR(live->LoadSections(reader));
  if (live->next_id() != ckpt_next_id) {
    return core::Status::Corruption(
        ckpt + ": live index restored " + std::to_string(live->next_id()) +
        " ids, checkpoint recorded " + std::to_string(ckpt_next_id));
  }

  updater->tombstones_.Resize(live->id_capacity());
  std::vector<std::uint64_t> dead;
  GASS_RETURN_IF_ERROR(reader.OpenSection("upd.tombstones", &buffer, &dec));
  dec.VecU64(&dead, live->id_capacity());
  if (!dec.ExpectEnd()) return dec.status();
  for (std::uint64_t id : dead) {
    dec.Check(id < live->id_capacity(), "tombstoned id out of range");
    if (!dec.ok()) return dec.status();
    updater->tombstones_.Insert(static_cast<core::VectorId>(id));
  }

  updater->sequence_ = watermark;
  report->watermark = watermark;

  // 2. Scan each stream's WAL past the watermark, collecting the surviving
  // records. Application is deferred until every stream is read: sequence
  // numbers are assigned globally under update_mutex_, so inserts from
  // different streams interleave in id order, and only a merge by sequence
  // re-creates the original order the ids were assigned in. (Within one
  // stream file order and sequence order coincide.)
  struct PendingRecord {
    std::uint64_t sequence = 0;
    std::uint64_t id = 0;
    std::uint32_t stream = 0;
    std::uint8_t op = 0;
    std::vector<float> vec;  // Inserts only.
  };
  std::vector<PendingRecord> pending;
  updater->wals_.resize(live->num_streams());
  std::uint64_t max_seq = watermark;
  for (std::uint32_t s = 0; s < live->num_streams(); ++s) {
    const std::string path = WalPath(options, s);
    io::WalReplayStats stats;
    auto collect = [&](std::uint8_t op, std::uint64_t seq, std::uint64_t id,
                       const float* vec) -> core::Status {
      PendingRecord record;
      record.sequence = seq;
      record.id = id;
      record.stream = s;
      record.op = op;
      if (op == io::kWalOpInsert) {
        record.vec.assign(vec, vec + live->dim());
      }
      pending.push_back(std::move(record));
      return core::Status::Ok();
    };
    GASS_RETURN_IF_ERROR(
        io::ReplayWal(path, updater->HeaderFor(s, 0), watermark, collect,
                      &stats));
    report->records_skipped += stats.records_old + stats.records_duplicate;

    if (!stats.header_valid) {
      // Missing or header-corrupt log: under the crash model it was never
      // durably created, so nothing in it was acknowledged. Start fresh at
      // the watermark.
      ++report->wals_recreated;
      GASS_RETURN_IF_ERROR(io::WalWriter::Create(
          path, updater->HeaderFor(s, watermark), options.wal,
          &updater->wals_[s]));
      updater->metrics_->AddWalBytes(io::kWalFileHeaderBytes);
      continue;
    }
    if (stats.torn_tail) {
      ++report->torn_tails;
      report->bytes_truncated += stats.torn_bytes;
      GASS_RETURN_IF_ERROR(io::TruncateWal(path, stats.valid_bytes));
    }
    GASS_RETURN_IF_ERROR(io::WalWriter::OpenForAppend(
        path, updater->HeaderFor(s, 0), options.wal, &updater->wals_[s]));
    max_seq = std::max(max_seq, stats.last_sequence);
  }

  // 3. Apply the merged records in global sequence order.
  std::sort(pending.begin(), pending.end(),
            [](const PendingRecord& a, const PendingRecord& b) {
              return a.sequence < b.sequence;
            });
  for (const PendingRecord& record : pending) {
    const std::string path = WalPath(options, record.stream);
    if (record.op == io::kWalOpInsert) {
      if (record.id != live->next_id()) {
        return core::Status::Corruption(
            path + ": replayed insert id " + std::to_string(record.id) +
            " but index expects " + std::to_string(live->next_id()));
      }
      if (!live->CanInsert(record.stream)) {
        return core::Status::Corruption(
            path + ": replayed insert overflows stream " +
            std::to_string(record.stream));
      }
      GASS_RETURN_IF_ERROR(live->ApplyInsert(
          record.stream, static_cast<core::VectorId>(record.id),
          record.vec.data()));
    } else {
      if (record.id >= live->id_capacity()) {
        return core::Status::Corruption(path + ": replayed delete of id " +
                                        std::to_string(record.id) +
                                        " beyond the id space");
      }
      updater->tombstones_.Insert(static_cast<core::VectorId>(record.id));
    }
    ++report->records_applied;
  }
  updater->metrics_->AddWalReplayRecords(pending.size());
  updater->sequence_ = max_seq;

  *out = std::move(updater);
  return core::Status::Ok();
}

UpdateResult Updater::Insert(const float* vec, obs::QueryTrace* trace) {
  UpdateResult result;
  std::lock_guard<std::mutex> guard(update_mutex_);

  const std::uint32_t stream = live_->RouteInsert(vec);
  if (!live_->CanInsert(stream)) {
    result.status = core::Status::Error(
        "live index full: stream " + std::to_string(stream) +
        " has no arena room (rebuild with a larger reserve)");
    return result;
  }
  const auto id = static_cast<core::VectorId>(live_->next_id());
  const std::uint64_t seq = sequence_ + 1;

  {
    obs::StageTimer wal_timer(trace, obs::Stage::kWalAppend);
    io::WalWriter& wal = *wals_[stream];
    const std::uint64_t before = wal.bytes_written();
    result.status =
        wal.Append(io::kWalOpInsert, seq, id, vec, live_->dim());
    if (!result.status.ok()) return result;  // Not acknowledged.
    metrics_->AddWalBytes(wal.bytes_written() - before);
  }
  sequence_ = seq;

  {
    obs::StageTimer apply_timer(trace, obs::Stage::kApply);
    std::unique_lock<std::shared_mutex> lock(search_mutex_);
    // A logged insert that cannot apply is an invariant violation (the
    // routing/capacity checks above ran under the same lock), not a
    // recoverable condition — failing here would desync log and memory.
    const core::Status applied = live_->ApplyInsert(stream, id, vec);
    GASS_CHECK_MSG(applied.ok(), "apply after WAL append failed: %s",
                   applied.message().c_str());
  }
  metrics_->RecordUpdateApplied();
  ++applied_since_checkpoint_;

  result.id = id;
  result.sequence = seq;
  if (options_.checkpoint_every > 0 &&
      applied_since_checkpoint_ >= options_.checkpoint_every) {
    result.status = CheckpointLocked();
  }
  return result;
}

UpdateResult Updater::Delete(core::VectorId id, obs::QueryTrace* trace) {
  UpdateResult result;
  std::lock_guard<std::mutex> guard(update_mutex_);

  // tombstones_ is only mutated under update_mutex_ (held here), so this
  // read needs no search-side lock.
  if (!live_->Exists(id)) {
    result.status = core::Status::InvalidArgument(
        "delete of id " + std::to_string(id) + ": never inserted");
    return result;
  }
  if (tombstones_.Contains(id)) {
    result.status = core::Status::InvalidArgument(
        "delete of id " + std::to_string(id) + ": already deleted");
    return result;
  }
  const std::uint32_t stream = live_->RouteDelete(id);
  const std::uint64_t seq = sequence_ + 1;

  {
    obs::StageTimer wal_timer(trace, obs::Stage::kWalAppend);
    io::WalWriter& wal = *wals_[stream];
    const std::uint64_t before = wal.bytes_written();
    result.status = wal.Append(io::kWalOpDelete, seq, id, nullptr, 0);
    if (!result.status.ok()) return result;  // Not acknowledged.
    metrics_->AddWalBytes(wal.bytes_written() - before);
  }
  sequence_ = seq;

  {
    obs::StageTimer apply_timer(trace, obs::Stage::kApply);
    std::unique_lock<std::shared_mutex> lock(search_mutex_);
    tombstones_.Insert(id);
  }
  metrics_->RecordDeleteApplied();
  ++applied_since_checkpoint_;

  result.id = id;
  result.sequence = seq;
  if (options_.checkpoint_every > 0 &&
      applied_since_checkpoint_ >= options_.checkpoint_every) {
    result.status = CheckpointLocked();
  }
  return result;
}

core::Status Updater::Checkpoint() {
  std::lock_guard<std::mutex> guard(update_mutex_);
  return CheckpointLocked();
}

core::Status Updater::CheckpointLocked() {
  // update_mutex_ is held: the live state is frozen for writers, while
  // searches (shared holders of search_mutex_) read on undisturbed — the
  // checkpoint only reads.
  const std::uint64_t watermark = sequence_;
  GASS_RETURN_IF_ERROR(WriteCheckpoint(watermark));
  // Rotate after the snapshot is durable: each stream restarts from an
  // empty log based at the watermark. Create() replaces the old file
  // atomically (tmp + rename + dir fsync), so a crash mid-rotation leaves
  // either the old log (fully covered by the new checkpoint — its records
  // are all <= watermark and will be skipped) or the new empty one.
  for (std::uint32_t s = 0; s < live_->num_streams(); ++s) {
    GASS_RETURN_IF_ERROR(io::WalWriter::Create(WalPath(options_, s),
                                               HeaderFor(s, watermark),
                                               options_.wal, &wals_[s]));
    metrics_->AddWalBytes(io::kWalFileHeaderBytes);
  }
  applied_since_checkpoint_ = 0;
  metrics_->RecordCheckpoint();
  return core::Status::Ok();
}

core::Status Updater::WriteCheckpoint(std::uint64_t watermark) const {
  io::SnapshotWriter writer(live_->MethodName(), live_->ParamsFingerprint(),
                            live_->next_id(), live_->dim());
  io::Encoder meta;
  meta.U64(watermark);
  meta.U64(live_->next_id());
  GASS_RETURN_IF_ERROR(writer.AddSection("upd.meta", std::move(meta)));

  io::Encoder dead;
  dead.VecU64(tombstones_.ToVector());
  GASS_RETURN_IF_ERROR(writer.AddSection("upd.tombstones", std::move(dead)));

  GASS_RETURN_IF_ERROR(live_->SaveSections(&writer));
  return writer.WriteTo(CheckpointPath(options_));
}

}  // namespace gass::serve
