// The mutable-index contract the WAL-backed update path writes through.
//
// serve::Updater (updater.h) is generic over what it updates: a plain
// streaming HNSW (serve::LiveHnsw) or a centroid-routed sharded collection
// (shard::LiveShardedIndex). LiveIndex is the seam — it owns the vector
// arena(s) and graph(s) and answers "where does this update go" (stream
// routing) and "apply it" (in-memory mutation); the updater owns everything
// durable (WAL, tombstones, checkpoints) and all locking. serve/ therefore
// never includes shard/ headers: the sharded implementation lives in
// shard/ and is handed in through this interface, same layering as
// Frontend over GraphIndex.

#ifndef GASS_SERVE_LIVE_INDEX_H_
#define GASS_SERVE_LIVE_INDEX_H_

#include <cstdint>
#include <string>

#include "core/status.h"
#include "core/types.h"
#include "io/snapshot.h"
#include "methods/graph_index.h"

namespace gass::serve {

/// A graph index that can grow in place. All methods are externally
/// synchronized by the updater (Apply* under its exclusive lock, the rest
/// under at least the shared lock); implementations hold no locks of
/// their own.
class LiveIndex {
 public:
  virtual ~LiveIndex() = default;

  /// The searchable face of this index (what Frontend / QueryExecutor
  /// query). Alive for the lifetime of the LiveIndex.
  virtual const methods::GraphIndex& SearchIndex() const = 0;
  virtual methods::GraphIndex* MutableSearchIndex() = 0;

  /// Snapshot identity: method name and params fingerprint stored in
  /// checkpoint headers and WAL headers, so recovery can never replay a
  /// log into an index built with different knobs.
  virtual std::string MethodName() const = 0;
  virtual std::uint64_t ParamsFingerprint() const = 0;

  virtual std::size_t dim() const = 0;
  /// Total id space (base vectors + reserved growth room). Ids are
  /// assigned densely: the next insert gets id next_id().
  virtual std::size_t id_capacity() const = 0;
  virtual std::size_t next_id() const = 0;

  /// Number of WAL streams this index shards its updates over (1 for a
  /// plain index, num_shards for a sharded one). Stream s gets its own
  /// log file; recovery merges the streams by global sequence number, so
  /// inserts that interleaved across shards replay in exactly the order
  /// their ids were assigned.
  virtual std::uint32_t num_streams() const = 0;

  /// Stream an insert of `vec` belongs to (nearest-centroid shard for the
  /// sharded index; always 0 for a plain one). Pure routing — no mutation.
  virtual std::uint32_t RouteInsert(const float* vec) const = 0;
  /// Stream that owns already-inserted id (the shard it lives in).
  virtual std::uint32_t RouteDelete(core::VectorId id) const = 0;

  /// Whether stream `s` has arena room for one more insert.
  virtual bool CanInsert(std::uint32_t stream) const = 0;
  /// Whether `id` has been inserted (base or live).
  virtual bool Exists(core::VectorId id) const = 0;

  /// Applies a logged insert: copies `vec` into the arena as `id` and
  /// extends the graph. `id` must equal next_id() at call time and the
  /// routed stream must have room — the updater validates both *before*
  /// logging, so a replayed record can never fail here.
  virtual core::Status ApplyInsert(std::uint32_t stream, core::VectorId id,
                                   const float* vec) = 0;

  /// Checkpoint persistence: the full live state (arena vectors beyond the
  /// base set, graphs, routing) as sections under the "live." prefix.
  virtual core::Status SaveSections(io::SnapshotWriter* writer) const = 0;
  virtual core::Status LoadSections(const io::SnapshotReader& reader) = 0;
};

}  // namespace gass::serve

#endif  // GASS_SERVE_LIVE_INDEX_H_
