// Pooled per-thread search state for serving a shared, read-only index.
//
// A methods::SearchContext is everything one in-flight query mutates (the
// visited table and a seed RNG). Allocating one per query would cost an
// O(n) visited-table allocation on the hot path, so the pool recycles
// contexts: a serving thread leases one for the duration of a query (or a
// run of queries), and the lease returns it automatically.

#ifndef GASS_SERVE_SEARCH_SESSION_H_
#define GASS_SERVE_SEARCH_SESSION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/rng.h"
#include "methods/graph_index.h"

namespace gass::serve {

/// Thread-safe pool of SearchContexts for one built index.
///
/// Acquire() is O(1) after warm-up (a mutex-guarded free-list pop); the
/// pool grows on demand, so it never blocks waiting for a context. The
/// index must outlive the pool; contexts are sized at acquire time, so the
/// pool must be created after Build().
class SearchSessionPool {
 public:
  explicit SearchSessionPool(const methods::GraphIndex& index,
                             std::uint64_t seed = 0x5E55105ULL)
      : index_(&index), seed_rng_(seed) {}

  SearchSessionPool(const SearchSessionPool&) = delete;
  SearchSessionPool& operator=(const SearchSessionPool&) = delete;

  /// RAII checkout: returns the context to the pool on destruction.
  class Lease {
   public:
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), ctx_(std::move(other.ctx_)) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    methods::SearchContext* get() { return ctx_.get(); }
    methods::SearchContext* operator->() { return ctx_.get(); }
    methods::SearchContext& operator*() { return *ctx_; }

   private:
    friend class SearchSessionPool;
    Lease(SearchSessionPool* pool,
          std::unique_ptr<methods::SearchContext> ctx)
        : pool_(pool), ctx_(std::move(ctx)) {}

    SearchSessionPool* pool_;
    std::unique_ptr<methods::SearchContext> ctx_;
  };

  /// Leases an idle context, creating one if the pool is dry.
  Lease Acquire();

  /// Contexts currently idle in the pool (not leased).
  std::size_t idle_count() const;

  /// Total contexts ever created — the high-water mark of concurrency.
  std::size_t created_count() const;

 private:
  void Release(std::unique_ptr<methods::SearchContext> ctx);

  const methods::GraphIndex* index_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<methods::SearchContext>> idle_;
  core::Rng seed_rng_;    // Guarded by mutex_; forks a seed per context.
  std::size_t created_ = 0;
};

}  // namespace gass::serve

#endif  // GASS_SERVE_SEARCH_SESSION_H_
