#include "serve/live_hnsw.h"

#include <cstring>

#include "core/macros.h"
#include "io/serialize.h"
#include "methods/fingerprint.h"

namespace gass::serve {

LiveHnsw::LiveHnsw(const core::Dataset& base, const LiveHnswOptions& options)
    : base_(&base),
      options_(options),
      base_rows_(base.size()),
      arena_(base.size() + options.reserve, base.dim()),
      hnsw_(options.hnsw) {}

std::unique_ptr<LiveHnsw> LiveHnsw::Build(const core::Dataset& base,
                                          const LiveHnswOptions& options) {
  GASS_CHECK_MSG(!base.empty(), "LiveHnsw needs a non-empty base set");
  auto live = std::unique_ptr<LiveHnsw>(new LiveHnsw(base, options));
  std::memcpy(live->arena_.mutable_data(), base.data(), base.SizeBytes());
  live->hnsw_.BuildPrefix(live->arena_, base.size());
  live->base_ = nullptr;  // Only Shell/LoadSections need the base later.
  return live;
}

std::unique_ptr<LiveHnsw> LiveHnsw::Shell(const core::Dataset& base,
                                          const LiveHnswOptions& options) {
  GASS_CHECK_MSG(!base.empty(), "LiveHnsw needs a non-empty base set");
  return std::unique_ptr<LiveHnsw>(new LiveHnsw(base, options));
}

std::uint64_t LiveHnsw::ParamsFingerprint() const {
  io::Encoder enc;
  methods::EncodeParams(&enc, options_.hnsw);
  enc.U64(options_.reserve);
  enc.U64(base_rows_);
  return methods::FingerprintBytes(enc);
}

core::Status LiveHnsw::ApplyInsert(std::uint32_t stream, core::VectorId id,
                                   const float* vec) {
  (void)stream;
  GASS_CHECK_MSG(id == hnsw_.inserted_count(),
                 "non-dense live insert id %u (next is %zu)", id,
                 hnsw_.inserted_count());
  GASS_CHECK_MSG(id < arena_.size(), "live insert beyond arena capacity");
  std::memcpy(arena_.MutableRow(id), vec, arena_.dim() * sizeof(float));
  hnsw_.Extend(id + 1);
  return core::Status::Ok();
}

core::Status LiveHnsw::SaveSections(io::SnapshotWriter* writer) const {
  io::Encoder meta;
  meta.U64(arena_.size());
  meta.U64(base_rows_);
  meta.U64(hnsw_.inserted_count());
  meta.U64(arena_.dim());
  GASS_RETURN_IF_ERROR(writer->AddSection("live.meta", std::move(meta)));

  // Only rows beyond the base set travel in the checkpoint — the base
  // vectors are re-materialized from the dataset at load time, keeping
  // checkpoints proportional to the live delta, not the collection.
  io::Encoder vectors;
  const std::size_t live_rows = hnsw_.inserted_count() - base_rows_;
  if (live_rows > 0) {
    vectors.Bytes(arena_.Row(static_cast<core::VectorId>(base_rows_)),
                  live_rows * arena_.dim() * sizeof(float));
  }
  GASS_RETURN_IF_ERROR(writer->AddSection("live.vectors", std::move(vectors)));

  return hnsw_.SaveSections(writer, "live.index.");
}

core::Status LiveHnsw::LoadSections(const io::SnapshotReader& reader) {
  GASS_CHECK_MSG(base_ != nullptr,
                 "LoadSections requires a Shell()-constructed LiveHnsw");
  io::AlignedBytes buffer;
  io::Decoder dec(nullptr, 0, "");
  GASS_RETURN_IF_ERROR(reader.OpenSection("live.meta", &buffer, &dec));
  const std::uint64_t capacity = dec.U64();
  const std::uint64_t base_rows = dec.U64();
  const std::uint64_t inserted = dec.U64();
  const std::uint64_t dim = dec.U64();
  if (!dec.ExpectEnd()) return dec.status();
  dec.Check(base_rows == base_->size(),
            "checkpoint base row count does not match the dataset");
  dec.Check(dim == base_->dim(),
            "checkpoint dimension does not match the dataset");
  dec.Check(capacity == arena_.size(),
            "checkpoint arena capacity does not match LiveHnswOptions");
  dec.Check(inserted >= base_rows && inserted <= capacity,
            "checkpoint inserted count out of range");
  if (!dec.ok()) return dec.status();

  std::memcpy(arena_.mutable_data(), base_->data(), base_->SizeBytes());
  const std::size_t live_rows = inserted - base_rows;
  GASS_RETURN_IF_ERROR(reader.OpenSection("live.vectors", &buffer, &dec));
  if (live_rows > 0) {
    dec.Bytes(arena_.MutableRow(static_cast<core::VectorId>(base_rows)),
              live_rows * dim * sizeof(float));
  }
  if (!dec.ExpectEnd()) return dec.status();

  return hnsw_.LoadSections(reader, "live.index.", arena_);
}

}  // namespace gass::serve
