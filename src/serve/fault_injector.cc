#include "serve/fault_injector.h"

#include <chrono>
#include <thread>

namespace gass::serve {

void FaultInjector::OnExecute(std::uint64_t id) {
  {
    std::unique_lock<std::mutex> lock(gate_mutex_);
    ++arrivals_;
    gate_cv_.notify_all();
    gate_cv_.wait(lock, [this] { return gate_open_; });
  }
  const double spike = LatencySpikeSeconds(id);
  if (spike > 0) {
    spikes_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::duration<double>(spike));
  }
}

void FaultInjector::OnShardSearch(std::uint64_t id, std::uint32_t shard,
                                  std::uint32_t attempt) {
  const double delay = ShardSearchDelaySeconds(id, shard, attempt);
  if (delay > 0) {
    shard_delays_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::duration<double>(delay));
  }
}

bool FaultInjector::OnShardReload(std::uint32_t shard) {
  for (std::size_t i = 0; i < plan_.shard_faults.size(); ++i) {
    const ShardFaultPlan& p = plan_.shard_faults[i];
    if (p.shard != shard || p.reload_corrupt_times == 0) continue;
    const std::uint64_t attempt =
        reload_attempts_[i].fetch_add(1, std::memory_order_relaxed);
    if (attempt < p.reload_corrupt_times) {
      reload_corruptions_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void FaultInjector::CloseGate() {
  std::lock_guard<std::mutex> lock(gate_mutex_);
  gate_open_ = false;
}

void FaultInjector::OpenGate() {
  std::lock_guard<std::mutex> lock(gate_mutex_);
  gate_open_ = true;
  gate_cv_.notify_all();
}

void FaultInjector::WaitForArrivals(std::uint64_t n) {
  std::unique_lock<std::mutex> lock(gate_mutex_);
  gate_cv_.wait(lock, [this, n] { return arrivals_ >= n; });
}

}  // namespace gass::serve
