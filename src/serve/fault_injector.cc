#include "serve/fault_injector.h"

#include <chrono>
#include <thread>

namespace gass::serve {

void FaultInjector::OnExecute(std::uint64_t id) {
  {
    std::unique_lock<std::mutex> lock(gate_mutex_);
    ++arrivals_;
    gate_cv_.notify_all();
    gate_cv_.wait(lock, [this] { return gate_open_; });
  }
  const double spike = LatencySpikeSeconds(id);
  if (spike > 0) {
    spikes_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::duration<double>(spike));
  }
}

void FaultInjector::CloseGate() {
  std::lock_guard<std::mutex> lock(gate_mutex_);
  gate_open_ = false;
}

void FaultInjector::OpenGate() {
  std::lock_guard<std::mutex> lock(gate_mutex_);
  gate_open_ = true;
  gate_cv_.notify_all();
}

void FaultInjector::WaitForArrivals(std::uint64_t n) {
  std::unique_lock<std::mutex> lock(gate_mutex_);
  gate_cv_.wait(lock, [this, n] { return arrivals_ >= n; });
}

}  // namespace gass::serve
