#include "serve/executor.h"

#include <atomic>

#include "core/deadline.h"
#include "core/macros.h"
#include "methods/search_params.h"

namespace gass::serve {

QueryExecutor::QueryExecutor(const methods::GraphIndex& index,
                             const ExecutorOptions& options)
    : index_(index),
      options_(options),
      pool_(options.threads),
      sessions_(index, options.seed ^ 0xC0417E57ULL) {
  GASS_CHECK_MSG(index.SupportsConcurrentSearch(),
                 "%s does not support concurrent search; clone one instance "
                 "per thread instead (see docs/SERVING.md)",
                 index.Name().c_str());
}

BatchResult QueryExecutor::SearchBatch(const float* queries,
                                       std::size_t num_queries,
                                       std::size_t dim,
                                       const methods::SearchParams& params) {
  BatchResult batch;
  batch.results.resize(num_queries);
  if (num_queries == 0) return batch;

  core::Timer timer;
  const std::size_t workers = pool_.thread_count();
  std::atomic<std::size_t> next_query{0};

  // Each worker leases one context for its whole run and pulls query
  // indices from a shared counter — queries are independent, so dynamic
  // scheduling absorbs latency variance without any per-query dispatch.
  auto worker = [&]() {
    SearchSessionPool::Lease lease = sessions_.Acquire();
    for (;;) {
      const std::size_t q = next_query.fetch_add(1, std::memory_order_relaxed);
      if (q >= num_queries) break;
      // Reseed per query: results depend only on (seed, query index), never
      // on which worker ran the query or in what order.
      lease->rng =
          core::Rng(options_.seed ^ (0x9E3779B97F4A7C15ULL * (q + 1)));
      // Effective deadline: the earlier of the caller's params.deadline and
      // the executor's per-query timeout (see the header contract).
      core::Deadline deadline =
          params.deadline != nullptr ? *params.deadline : core::Deadline();
      if (options_.timeout_seconds > 0) {
        deadline = core::Deadline::Earliest(
            deadline, core::Deadline::After(options_.timeout_seconds));
      }
      const methods::SearchParams query_params = methods::WithDeadline(
          params, deadline.unlimited() ? nullptr : &deadline);
      methods::SearchResult result =
          index_.Search(queries + q * dim, query_params, lease.get());
      result.expired = result.stats.deadline_expiries > 0;
      result.outcome = result.expired ? methods::ServeOutcome::kExpired
                       : params.degrade_step > 0
                           ? methods::ServeOutcome::kDegraded
                           : methods::ServeOutcome::kFull;
      result.degrade_step = params.degrade_step;
      metrics_.RecordQuery(result.stats, result.expired);
      batch.results[q] = std::move(result);
    }
  };

  std::size_t submitted = 0;
  for (std::size_t w = 0; w + 1 < workers; ++w) {
    if (pool_.Submit(worker)) ++submitted;
  }
  // The calling thread is the last worker; with submitted == 0 (e.g. the
  // pool is shutting down) the batch still completes, just serially.
  worker();
  pool_.Wait();
  (void)submitted;

  batch.elapsed_seconds = timer.Seconds();
  for (const methods::SearchResult& r : batch.results) {
    if (r.expired) ++batch.expired;
  }
  return batch;
}

}  // namespace gass::serve
