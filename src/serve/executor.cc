#include "serve/executor.h"

#include <atomic>

#include "core/deadline.h"
#include "core/macros.h"
#include "methods/search_params.h"

namespace gass::serve {

QueryExecutor::QueryExecutor(const methods::GraphIndex& index,
                             const ExecutorOptions& options)
    : index_(index),
      options_(options),
      pool_(options.threads),
      sessions_(index, options.seed ^ 0xC0417E57ULL),
      tracer_(options.trace) {
  GASS_CHECK_MSG(index.SupportsConcurrentSearch(),
                 "%s does not support concurrent search; clone one instance "
                 "per thread instead (see docs/SERVING.md)",
                 index.Name().c_str());
}

BatchResult QueryExecutor::SearchBatch(
    const std::vector<SearchRequest>& requests) {
  BatchResult batch;
  const std::size_t num_queries = requests.size();
  batch.results.resize(num_queries);
  if (num_queries == 0) return batch;

  core::Timer timer;
  const std::size_t workers = pool_.thread_count();
  std::atomic<std::size_t> next_query{0};

  // Each worker leases one context for its whole run and pulls query
  // indices from a shared counter — queries are independent, so dynamic
  // scheduling absorbs latency variance without any per-query dispatch.
  auto worker = [&]() {
    SearchSessionPool::Lease lease = sessions_.Acquire();
    for (;;) {
      const std::size_t q = next_query.fetch_add(1, std::memory_order_relaxed);
      if (q >= num_queries) break;
      const SearchRequest& request = requests[q];
      const std::uint64_t id = request.admission_id == kAutoAdmissionId
                                   ? static_cast<std::uint64_t>(q)
                                   : request.admission_id;
      // Trace attachment: the request's own sink wins over the sampler.
      obs::QueryTrace* trace = request.trace;
      bool owned_trace = false;
      if (trace != nullptr) {
        trace->Begin(id);
      } else {
        trace = tracer_.StartTrace(id);
        owned_trace = trace != nullptr;
      }
      obs::StageTimer session_timer(trace, obs::Stage::kSession);
      // Reseed per query: results depend only on (seed, admission id),
      // never on which worker ran the query or in what order.
      lease->rng = core::Rng(options_.seed ^ (0x9E3779B97F4A7C15ULL * (id + 1)));
      // Effective deadline: the earliest of the request deadline, the
      // caller's params.deadline, and the executor's per-query timeout
      // (see the header contract).
      core::Deadline deadline = request.params.deadline != nullptr
                                    ? *request.params.deadline
                                    : core::Deadline();
      if (request.has_deadline) {
        deadline = core::Deadline::Earliest(deadline, request.deadline);
      }
      if (options_.timeout_seconds > 0) {
        deadline = core::Deadline::Earliest(
            deadline, core::Deadline::After(options_.timeout_seconds));
      }
      methods::SearchParams query_params = methods::WithDeadline(
          request.params, deadline.unlimited() ? nullptr : &deadline);
      query_params.admission_id = id;
      query_params.trace = trace;
      session_timer.Stop();

      const std::size_t spans_before = trace != nullptr ? trace->size() : 0;
      obs::StageTimer search_timer(trace, obs::Stage::kSearch);
      SearchResponse response(
          index_.Search(request.query, query_params, lease.get()));
      if (trace != nullptr && trace->size() > spans_before) {
        // The index recorded its own stage breakdown (sharded fan-out); an
        // enclosing span would double-count it.
        search_timer.Cancel();
      } else {
        search_timer.SetStats(response.stats);
        search_timer.Stop();
      }
      response.admission_id = id;
      response.expired = response.stats.deadline_expiries > 0;
      response.shards_ok = response.stats.shards_probed;
      response.shards_failed = response.stats.shards_failed;
      response.shards_hedged = response.stats.shards_hedged;
      response.replica_failovers = response.stats.replica_failovers;
      response.outcome = response.expired ? methods::ServeOutcome::kExpired
                         : request.params.degrade_step > 0
                             ? methods::ServeOutcome::kDegraded
                             : methods::ServeOutcome::kFull;
      response.degrade_step = request.params.degrade_step;
      metrics_.RecordQuery(response.stats, response.expired, response.partial);
      if (trace != nullptr) {
        if (owned_trace) {
          tracer_.FinishTrace(trace);
        } else {
          trace->Finish();
        }
        for (std::size_t i = 0; i < trace->size(); ++i) {
          const obs::TraceSpan& span = trace->span(i);
          metrics_.RecordStageNanos(span.stage, span.duration_ns);
        }
        response.trace = trace;
      }
      batch.results[q] = std::move(response);
    }
  };

  std::size_t submitted = 0;
  for (std::size_t w = 0; w + 1 < workers; ++w) {
    if (pool_.Submit(worker)) ++submitted;
  }
  // The calling thread is the last worker; with submitted == 0 (e.g. the
  // pool is shutting down) the batch still completes, just serially.
  worker();
  pool_.Wait();
  (void)submitted;

  batch.elapsed_seconds = timer.Seconds();
  for (const methods::SearchResult& r : batch.results) {
    if (r.expired) ++batch.expired;
  }
  return batch;
}

BatchResult QueryExecutor::SearchBatch(const float* queries,
                                       std::size_t num_queries,
                                       std::size_t dim,
                                       const methods::SearchParams& params) {
  std::vector<SearchRequest> requests(num_queries);
  for (std::size_t q = 0; q < num_queries; ++q) {
    requests[q].query = queries + q * dim;
    requests[q].dim = dim;
    requests[q].params = params;
  }
  return SearchBatch(requests);
}

}  // namespace gass::serve
