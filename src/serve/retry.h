// Client-side retry for shed queries: capped exponential backoff with
// jitter, budget-aware so a retry is never scheduled past the deadline.
//
// A frontend that sheds load only helps if clients back off instead of
// hammering it harder; this is the reference retry loop used by the serve
// benches, the CLI, and the tests. All arithmetic is deterministic for a
// fixed Rng state, so backoff sequences can be pinned in tests.

#ifndef GASS_SERVE_RETRY_H_
#define GASS_SERVE_RETRY_H_

#include <cstddef>

#include "core/deadline.h"
#include "core/rng.h"
#include "methods/graph_index.h"
#include "serve/frontend.h"

namespace gass::serve {

struct RetryPolicy {
  /// Total attempts, including the first (1 = never retry).
  std::size_t max_attempts = 4;
  /// Backoff before retry r (1-based) grows as initial * multiplier^(r-1),
  /// capped at max_backoff_seconds, then jittered.
  double initial_backoff_seconds = 0.0005;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 0.01;
  /// Multiplicative jitter: the capped backoff is scaled by a uniform
  /// draw from [1 - jitter_fraction, 1 + jitter_fraction). Zero = none.
  double jitter_fraction = 0.2;
};

/// Backoff before retry number `retry` (1-based: the wait after the first
/// rejection is retry == 1). Capped exponential growth, then jitter drawn
/// from `rng` (null = no jitter). Deterministic for a fixed rng state.
double BackoffSeconds(const RetryPolicy& policy, std::size_t retry,
                      core::Rng* rng);

/// Whether one more attempt is allowed after `attempts_made` attempts: the
/// attempt cap must not be exhausted AND the deadline's remaining budget
/// must cover the backoff sleep — a retry that would wake up past the
/// deadline is pointless load, so it is never made.
bool ShouldRetry(const RetryPolicy& policy, std::size_t attempts_made,
                 double backoff_seconds, const core::Deadline& deadline);

/// Blocking submit-with-retry loop: submits to `frontend`, and while the
/// result is kRejected, sleeps the policy backoff and resubmits — stopping
/// when the policy or the deadline says so. Returns the final result (the
/// last rejection when retries exhaust). `attempts_out` (optional) reports
/// how many submissions were made.
methods::SearchResult SearchWithRetry(Frontend& frontend, const float* query,
                                      std::size_t dim,
                                      const methods::SearchParams& params,
                                      const core::Deadline& deadline,
                                      const RetryPolicy& policy,
                                      core::Rng* rng,
                                      std::size_t* attempts_out = nullptr);

}  // namespace gass::serve

#endif  // GASS_SERVE_RETRY_H_
