#include "serve/retry.h"

#include <chrono>
#include <thread>

namespace gass::serve {

double BackoffSeconds(const RetryPolicy& policy, std::size_t retry,
                      core::Rng* rng) {
  if (retry == 0) return 0.0;
  double backoff = policy.initial_backoff_seconds;
  for (std::size_t i = 1; i < retry; ++i) {
    backoff *= policy.backoff_multiplier;
    if (backoff >= policy.max_backoff_seconds) break;  // Saturated; stop early.
  }
  if (backoff > policy.max_backoff_seconds) backoff = policy.max_backoff_seconds;
  if (rng != nullptr && policy.jitter_fraction > 0) {
    const double scale =
        1.0 + policy.jitter_fraction * (2.0 * rng->UniformDouble() - 1.0);
    backoff *= scale;
  }
  return backoff < 0 ? 0.0 : backoff;
}

bool ShouldRetry(const RetryPolicy& policy, std::size_t attempts_made,
                 double backoff_seconds, const core::Deadline& deadline) {
  if (attempts_made >= policy.max_attempts) return false;
  // Never retry past the deadline: the backoff sleep itself must fit in
  // the remaining budget, or the retry would arrive already dead.
  return deadline.RemainingSeconds() > backoff_seconds;
}

methods::SearchResult SearchWithRetry(Frontend& frontend, const float* query,
                                      std::size_t dim,
                                      const methods::SearchParams& params,
                                      const core::Deadline& deadline,
                                      const RetryPolicy& policy,
                                      core::Rng* rng,
                                      std::size_t* attempts_out) {
  std::size_t attempts = 0;
  methods::SearchResult result;
  for (;;) {
    result = frontend.Submit(query, dim, params, deadline).get();
    ++attempts;
    if (result.outcome != methods::ServeOutcome::kRejected) break;
    const double backoff = BackoffSeconds(policy, attempts, rng);
    if (!ShouldRetry(policy, attempts, backoff, deadline)) break;
    std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
  }
  if (attempts_out != nullptr) *attempts_out = attempts;
  return result;
}

}  // namespace gass::serve
