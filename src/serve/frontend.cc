#include "serve/frontend.h"

#include <shared_mutex>

#include "core/macros.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "methods/search_params.h"

namespace gass::serve {

Frontend::Frontend(const methods::GraphIndex& index,
                   const FrontendOptions& options, FaultInjector* faults)
    : Frontend(index, options, faults, nullptr) {}

Frontend::Frontend(Updater& updater, const FrontendOptions& options,
                   FaultInjector* faults)
    : Frontend(updater.index(), options, faults, &updater) {}

Frontend::Frontend(const methods::GraphIndex& index,
                   const FrontendOptions& options, FaultInjector* faults,
                   Updater* updater)
    : index_(index),
      options_(options),
      faults_(faults),
      updater_(updater),
      sessions_(index, options.seed ^ 0xF207E7D5E55105ULL),
      tracer_(options.trace) {
  // One exporter for the whole serving stack: the updater's WAL/apply
  // counters land in this frontend's ServeMetrics (no-op if the updater
  // was configured with an explicit sink).
  if (updater_ != nullptr) updater_->BindMetrics(&metrics_);
  GASS_CHECK_MSG(index.SupportsConcurrentSearch(),
                 "%s does not support concurrent search; clone one instance "
                 "per thread instead (see docs/SERVING.md)",
                 index.Name().c_str());
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  std::size_t threads = options_.threads;
  if (threads == 0) threads = core::DefaultThreadCount();
  workers_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Frontend::~Frontend() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void Frontend::Reject(Task* task) {
  metrics_.RecordShed();
  if (task->kind != TaskKind::kSearch) {
    if (task->trace != nullptr && task->owned_trace) {
      tracer_.FinishTrace(task->trace);
      task->trace = nullptr;
    }
    UpdateResult result;
    result.status = core::Status::Error(
        "update rejected: admission queue full or frontend stopping");
    task->update_promise.set_value(std::move(result));
    return;
  }
  SearchResponse response;
  response.outcome = methods::ServeOutcome::kRejected;
  response.admission_id = task->id;
  FinishTaskTrace(task, &response);
  task->promise.set_value(std::move(response));
}

void Frontend::FinishTaskTrace(Task* task, SearchResponse* response) {
  if (task->trace == nullptr) return;
  if (task->owned_trace) {
    tracer_.FinishTrace(task->trace);
  } else {
    task->trace->Finish();
  }
  // Traced queries feed the per-stage latency histograms; the untraced
  // majority never touches them.
  for (std::size_t i = 0; i < task->trace->size(); ++i) {
    const obs::TraceSpan& span = task->trace->span(i);
    metrics_.RecordStageNanos(span.stage, span.duration_ns);
  }
  response->trace = task->trace;
  task->trace = nullptr;
}

bool Frontend::PredictedLate(const core::Deadline& deadline) const {
  if (!options_.shed_predicted_late || deadline.unlimited()) return false;
  if (metrics_.queries() < options_.min_service_samples) return false;
  const double p50 = metrics_.LatencyQuantileSeconds(0.5);
  return deadline.RemainingSeconds() < options_.shed_safety_factor * p50;
}

std::size_t Frontend::DegradeStepForDepth(std::size_t depth) const {
  const std::size_t max_step = options_.max_degrade_step;
  if (max_step == 0) return 0;
  const double fill = static_cast<double>(depth) /
                      static_cast<double>(options_.queue_capacity);
  const double low = options_.degrade_low_fraction;
  const double high = options_.degrade_high_fraction;
  if (fill <= low || high <= low) return fill >= high ? max_step : 0;
  if (fill >= high) return max_step;
  // Evenly spaced interior steps: (low, high) splits into max_step - 1
  // bands mapping to steps 1 .. max_step - 1.
  const double t = (fill - low) / (high - low);
  const std::size_t step =
      1 + static_cast<std::size_t>(t * static_cast<double>(max_step - 1));
  return step > max_step ? max_step : step;
}

Frontend::Ticket Frontend::Submit(const float* query, std::size_t dim,
                                  const methods::SearchParams& params) {
  SearchRequest request;
  request.query = query;
  request.dim = dim;
  request.params = params;
  return Submit(request);
}

Frontend::Ticket Frontend::Submit(const float* query, std::size_t dim,
                                  const methods::SearchParams& params,
                                  const core::Deadline& deadline) {
  SearchRequest request;
  request.query = query;
  request.dim = dim;
  request.params = params;
  request.deadline = deadline;
  request.has_deadline = true;
  return Submit(request);
}

Frontend::Ticket Frontend::Submit(const SearchRequest& request) {
  Task task;
  task.query = request.query;
  task.dim = request.dim;
  task.params = request.params;
  task.params.deadline = nullptr;  // The frontend owns the deadline.
  task.params.trace = nullptr;     // Likewise the trace attachment.
  task.deadline = request.has_deadline
                      ? request.deadline
                      : (options_.deadline_seconds > 0
                             ? core::Deadline::After(options_.deadline_seconds)
                             : core::Deadline());
  const std::uint64_t auto_id =
      submitted_.fetch_add(1, std::memory_order_relaxed);
  task.id =
      request.admission_id == kAutoAdmissionId ? auto_id : request.admission_id;
  // The trace clock starts at admission, so queue wait is span #1. A
  // caller-provided sink wins over the sampler; either way the untraced
  // path costs one hash, no lock, no allocation.
  if (request.trace != nullptr) {
    task.trace = request.trace;
    task.trace->Begin(task.id);
    task.owned_trace = false;
  } else {
    task.trace = tracer_.StartTrace(task.id);
    task.owned_trace = task.trace != nullptr;
  }
  Ticket ticket = task.promise.get_future();

  if (faults_ != nullptr && faults_->ShouldRejectAdmission(task.id)) {
    faults_->CountRejection();
    Reject(&task);
    return ticket;
  }
  // Predicted-late shedding at admission: if the budget already cannot
  // cover a median service, reject now instead of queueing doomed work.
  if (PredictedLate(task.deadline)) {
    Reject(&task);
    return ticket;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_ || queue_.size() >= options_.queue_capacity) {
      Reject(&task);
      return ticket;
    }
    queue_.push_back(std::move(task));
    metrics_.RecordQueueDepth(queue_.size());
  }
  work_cv_.notify_one();
  return ticket;
}

Frontend::UpdateTicket Frontend::SubmitInsert(const float* vec,
                                              std::size_t dim) {
  GASS_CHECK_MSG(updater_ != nullptr,
                 "SubmitInsert needs the updater-mode Frontend constructor");
  Task task;
  task.kind = TaskKind::kInsert;
  task.update_vector.assign(vec, vec + dim);
  return SubmitUpdate(std::move(task));
}

Frontend::UpdateTicket Frontend::SubmitDelete(core::VectorId id) {
  GASS_CHECK_MSG(updater_ != nullptr,
                 "SubmitDelete needs the updater-mode Frontend constructor");
  Task task;
  task.kind = TaskKind::kDelete;
  task.delete_id = id;
  return SubmitUpdate(std::move(task));
}

Frontend::UpdateTicket Frontend::SubmitUpdate(Task task) {
  task.id = submitted_.fetch_add(1, std::memory_order_relaxed);
  // Updates ride the query trace sampler: a sampled update records its
  // queue wait plus the updater's wal_append / apply spans.
  task.trace = tracer_.StartTrace(task.id);
  task.owned_trace = task.trace != nullptr;
  UpdateTicket ticket = task.update_promise.get_future();
  // No deadline shedding: an update is durability work, not a query whose
  // value decays — the only admission control is the queue bound.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_ || queue_.size() >= options_.queue_capacity) {
      Reject(&task);
      return ticket;
    }
    queue_.push_back(std::move(task));
    metrics_.RecordQueueDepth(queue_.size());
  }
  work_cv_.notify_one();
  return ticket;
}

SearchResponse Frontend::Search(const SearchRequest& request) {
  return Submit(request).get();
}

methods::SearchResult Frontend::Search(const float* query, std::size_t dim,
                                       const methods::SearchParams& params) {
  return Submit(query, dim, params).get();
}

void Frontend::WorkerLoop() {
  for (;;) {
    Task task;
    std::size_t depth_after_pop = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and all accepted work done.
      task = std::move(queue_.front());
      queue_.pop_front();
      depth_after_pop = queue_.size();
      ++in_service_;
    }

    // Queue-wait span: the trace clock started at admission, so the wait
    // is simply the elapsed time at dequeue.
    if (task.trace != nullptr) {
      obs::TraceSpan queue_span;
      queue_span.stage = obs::Stage::kQueue;
      queue_span.start_ns = 0;
      queue_span.duration_ns = task.trace->ElapsedNs();
      task.trace->AddSpan(queue_span);
    }

    if (task.kind != TaskKind::kSearch) {
      ServeUpdate(&task);
      std::lock_guard<std::mutex> lock(mutex_);
      --in_service_;
      if (queue_.empty() && in_service_ == 0) drain_cv_.notify_all();
      continue;
    }

    // Pressure is sampled when service starts: the depth left behind in
    // the queue decides this query's degradation step.
    const std::size_t step = DegradeStepForDepth(depth_after_pop);

    bool shed = false;
    if (faults_ != nullptr && faults_->ShouldFailSessionAcquire(task.id)) {
      faults_->CountSessionFailure();
      shed = true;
    } else if (task.deadline.IsExpired() || PredictedLate(task.deadline)) {
      // Queue wait consumed the budget (or the p50 prediction says the
      // rest of it cannot cover a median service): shed instead of
      // executing to certain expiry.
      shed = true;
    }

    if (shed) {
      Reject(&task);
    } else {
      if (faults_ != nullptr) faults_->OnExecute(task.id);
      obs::StageTimer session_timer(task.trace, obs::Stage::kSession);
      SearchSessionPool::Lease lease = sessions_.Acquire();
      // Same determinism contract as QueryExecutor: results depend only on
      // (seed, admission id), never on which worker ran the query.
      lease->rng =
          core::Rng(options_.seed ^ (0x9E3779B97F4A7C15ULL * (task.id + 1)));
      methods::SearchParams query_params = task.params;
      query_params.admission_id = task.id;
      query_params.degrade_step = static_cast<std::uint32_t>(step);
      query_params.deadline =
          task.deadline.unlimited() ? nullptr : &task.deadline;
      query_params.trace = task.trace;
      session_timer.Stop();

      const std::size_t spans_before =
          task.trace != nullptr ? task.trace->size() : 0;
      obs::StageTimer search_timer(task.trace, obs::Stage::kSearch);
      // Live mode: hold the updater's search lock shared for the duration
      // of the query (in-memory applies take it exclusive, briefly) and
      // filter its tombstones at result emission.
      std::shared_lock<std::shared_mutex> live_guard;
      if (updater_ != nullptr) {
        live_guard = std::shared_lock<std::shared_mutex>(
            updater_->search_mutex());
        query_params.tombstones = &updater_->tombstones();
      }
      SearchResponse response(
          index_.Search(task.query, query_params, lease.get()));
      if (live_guard.owns_lock()) live_guard.unlock();
      if (task.trace != nullptr && task.trace->size() > spans_before) {
        // A trace-aware index (shard::ShardedIndex) already recorded its
        // own finer-grained breakdown; an enclosing search span would
        // double-count those nanoseconds in the stage histograms.
        search_timer.Cancel();
      } else {
        search_timer.SetStats(response.stats);
        search_timer.Stop();
      }
      response.admission_id = task.id;
      response.expired = response.stats.deadline_expiries > 0;
      response.shards_ok = response.stats.shards_probed;
      response.shards_failed = response.stats.shards_failed;
      response.shards_hedged = response.stats.shards_hedged;
      response.replica_failovers = response.stats.replica_failovers;
      response.degrade_step = static_cast<std::uint32_t>(step);
      response.outcome = response.expired ? methods::ServeOutcome::kExpired
                         : step > 0       ? methods::ServeOutcome::kDegraded
                                          : methods::ServeOutcome::kFull;
      metrics_.RecordQuery(response.stats, response.expired, response.partial);
      metrics_.RecordDegradeStep(
          step, response.outcome == methods::ServeOutcome::kDegraded);
      FinishTaskTrace(&task, &response);
      task.promise.set_value(std::move(response));
    }

    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_service_;
      if (queue_.empty() && in_service_ == 0) drain_cv_.notify_all();
    }
  }
}

void Frontend::ServeUpdate(Task* task) {
  UpdateResult result =
      task->kind == TaskKind::kInsert
          ? updater_->Insert(task->update_vector.data(), task->trace)
          : updater_->Delete(task->delete_id, task->trace);
  if (task->trace != nullptr) {
    if (task->owned_trace) {
      tracer_.FinishTrace(task->trace);
    } else {
      task->trace->Finish();
    }
    for (std::size_t i = 0; i < task->trace->size(); ++i) {
      const obs::TraceSpan& span = task->trace->span(i);
      metrics_.RecordStageNanos(span.stage, span.duration_ns);
    }
    task->trace = nullptr;
  }
  task->update_promise.set_value(std::move(result));
}

void Frontend::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drain_cv_.wait(lock, [this] { return queue_.empty() && in_service_ == 0; });
}

std::size_t Frontend::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace gass::serve
