#include "serve/frontend.h"

#include "core/macros.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "methods/search_params.h"

namespace gass::serve {

Frontend::Frontend(const methods::GraphIndex& index,
                   const FrontendOptions& options, FaultInjector* faults)
    : index_(index),
      options_(options),
      faults_(faults),
      sessions_(index, options.seed ^ 0xF207E7D5E55105ULL) {
  GASS_CHECK_MSG(index.SupportsConcurrentSearch(),
                 "%s does not support concurrent search; clone one instance "
                 "per thread instead (see docs/SERVING.md)",
                 index.Name().c_str());
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  std::size_t threads = options_.threads;
  if (threads == 0) threads = core::DefaultThreadCount();
  workers_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Frontend::~Frontend() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void Frontend::Reject(Task* task, ServeMetrics* metrics) {
  metrics->RecordShed();
  methods::SearchResult result;
  result.outcome = methods::ServeOutcome::kRejected;
  task->promise.set_value(std::move(result));
}

bool Frontend::PredictedLate(const core::Deadline& deadline) const {
  if (!options_.shed_predicted_late || deadline.unlimited()) return false;
  if (metrics_.queries() < options_.min_service_samples) return false;
  const double p50 = metrics_.LatencyQuantileSeconds(0.5);
  return deadline.RemainingSeconds() < options_.shed_safety_factor * p50;
}

std::size_t Frontend::DegradeStepForDepth(std::size_t depth) const {
  const std::size_t max_step = options_.max_degrade_step;
  if (max_step == 0) return 0;
  const double fill = static_cast<double>(depth) /
                      static_cast<double>(options_.queue_capacity);
  const double low = options_.degrade_low_fraction;
  const double high = options_.degrade_high_fraction;
  if (fill <= low || high <= low) return fill >= high ? max_step : 0;
  if (fill >= high) return max_step;
  // Evenly spaced interior steps: (low, high) splits into max_step - 1
  // bands mapping to steps 1 .. max_step - 1.
  const double t = (fill - low) / (high - low);
  const std::size_t step =
      1 + static_cast<std::size_t>(t * static_cast<double>(max_step - 1));
  return step > max_step ? max_step : step;
}

Frontend::Ticket Frontend::Submit(const float* query, std::size_t dim,
                                  const methods::SearchParams& params) {
  const core::Deadline deadline =
      options_.deadline_seconds > 0
          ? core::Deadline::After(options_.deadline_seconds)
          : core::Deadline();
  return Submit(query, dim, params, deadline);
}

Frontend::Ticket Frontend::Submit(const float* query, std::size_t dim,
                                  const methods::SearchParams& params,
                                  const core::Deadline& deadline) {
  Task task;
  task.query = query;
  task.dim = dim;
  task.params = params;
  task.params.deadline = nullptr;  // The frontend owns the deadline.
  task.deadline = deadline;
  task.id = submitted_.fetch_add(1, std::memory_order_relaxed);
  Ticket ticket = task.promise.get_future();

  if (faults_ != nullptr && faults_->ShouldRejectAdmission(task.id)) {
    faults_->CountRejection();
    Reject(&task, &metrics_);
    return ticket;
  }
  // Predicted-late shedding at admission: if the budget already cannot
  // cover a median service, reject now instead of queueing doomed work.
  if (PredictedLate(task.deadline)) {
    Reject(&task, &metrics_);
    return ticket;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_ || queue_.size() >= options_.queue_capacity) {
      Reject(&task, &metrics_);
      return ticket;
    }
    queue_.push_back(std::move(task));
    metrics_.RecordQueueDepth(queue_.size());
  }
  work_cv_.notify_one();
  return ticket;
}

methods::SearchResult Frontend::Search(const float* query, std::size_t dim,
                                       const methods::SearchParams& params) {
  return Submit(query, dim, params).get();
}

void Frontend::WorkerLoop() {
  for (;;) {
    Task task;
    std::size_t depth_after_pop = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and all accepted work done.
      task = std::move(queue_.front());
      queue_.pop_front();
      depth_after_pop = queue_.size();
      ++in_service_;
    }

    // Pressure is sampled when service starts: the depth left behind in
    // the queue decides this query's degradation step.
    const std::size_t step = DegradeStepForDepth(depth_after_pop);

    bool shed = false;
    if (faults_ != nullptr && faults_->ShouldFailSessionAcquire(task.id)) {
      faults_->CountSessionFailure();
      shed = true;
    } else if (task.deadline.IsExpired() || PredictedLate(task.deadline)) {
      // Queue wait consumed the budget (or the p50 prediction says the
      // rest of it cannot cover a median service): shed instead of
      // executing to certain expiry.
      shed = true;
    }

    if (shed) {
      Reject(&task, &metrics_);
    } else {
      if (faults_ != nullptr) faults_->OnExecute(task.id);
      SearchSessionPool::Lease lease = sessions_.Acquire();
      // Same determinism contract as QueryExecutor: results depend only on
      // (seed, admission id), never on which worker ran the query.
      lease->rng =
          core::Rng(options_.seed ^ (0x9E3779B97F4A7C15ULL * (task.id + 1)));
      methods::SearchParams query_params = task.params;
      query_params.degrade_step = static_cast<std::uint32_t>(step);
      query_params.deadline =
          task.deadline.unlimited() ? nullptr : &task.deadline;
      methods::SearchResult result =
          index_.Search(task.query, query_params, lease.get());
      result.expired = result.stats.deadline_expiries > 0;
      result.degrade_step = static_cast<std::uint32_t>(step);
      result.outcome = result.expired ? methods::ServeOutcome::kExpired
                       : step > 0     ? methods::ServeOutcome::kDegraded
                                      : methods::ServeOutcome::kFull;
      metrics_.RecordQuery(result.stats, result.expired);
      metrics_.RecordDegradeStep(
          step, result.outcome == methods::ServeOutcome::kDegraded);
      task.promise.set_value(std::move(result));
    }

    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_service_;
      if (queue_.empty() && in_service_ == 0) drain_cv_.notify_all();
    }
  }
}

void Frontend::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drain_cv_.wait(lock, [this] { return queue_.empty() && in_service_ == 0; });
}

std::size_t Frontend::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace gass::serve
