// Batched concurrent query execution over one shared, read-only index.
//
// The executor owns a core::ThreadPool and a SearchSessionPool; callers
// hand it a batch of queries and get back one SearchResult per query. Every
// query runs with an optional deadline: on expiry the underlying beam
// search returns its best-so-far answers instead of blocking the batch.
//
// Determinism: each query's RNG is reseeded from (executor seed, query
// index), so batch results are identical regardless of thread count or
// scheduling — executor(1 thread) == executor(8 threads), query by query.

#ifndef GASS_SERVE_EXECUTOR_H_
#define GASS_SERVE_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "core/thread_pool.h"
#include "methods/graph_index.h"
#include "obs/trace.h"
#include "serve/metrics.h"
#include "serve/request.h"
#include "serve/search_session.h"

namespace gass::serve {

struct ExecutorOptions {
  /// Worker threads; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Per-query time budget in seconds; <= 0 = unlimited.
  double timeout_seconds = 0.0;
  /// Base seed for the per-query RNG streams.
  std::uint64_t seed = 0x5E44E5ULL;
  /// Trace sampling (obs::TracerOptions::sample_period 0 = off), keyed on
  /// each query's admission id — the batch index, unless the request
  /// carries an explicit id.
  obs::TracerOptions trace;
};

/// Results of one SearchBatch call.
struct BatchResult {
  std::vector<SearchResponse> results;  ///< One per query, in order.
  std::uint64_t expired = 0;      ///< Queries cut short by the deadline.
  double elapsed_seconds = 0.0;   ///< Wall time for the whole batch.

  double Qps() const {
    return elapsed_seconds > 0
               ? static_cast<double>(results.size()) / elapsed_seconds
               : 0.0;
  }
};

/// Runs query batches concurrently against one shared index.
///
/// The index must be built, support concurrent search, and outlive the
/// executor. SearchBatch is not re-entrant: one batch at a time per
/// executor (serving threads live inside the executor, not around it).
class QueryExecutor {
 public:
  QueryExecutor(const methods::GraphIndex& index,
                const ExecutorOptions& options = {});

  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  /// Runs one batch of SearchRequests — the primary entry point. Each
  /// request's auto admission id resolves to its batch index (so the
  /// historic (seed, query index) determinism contract is unchanged).
  ///
  /// Deadline contract: each query runs under the *earliest* of the
  /// request deadline (when has_deadline), the caller-set
  /// `params.deadline` (which must outlive the call), and the executor's
  /// own per-query timeout (`options.timeout_seconds`, measured from that
  /// query's start). A caller deadline is never loosened by a longer
  /// executor timeout, and never silently overwritten by a shorter one
  /// being absent — min always wins.
  BatchResult SearchBatch(const std::vector<SearchRequest>& requests);

  /// Forwarding overload: searches `queries[i * dim .. (i+1) * dim)` for
  /// i in [0, num_queries), all with the same SearchParams.
  BatchResult SearchBatch(const float* queries, std::size_t num_queries,
                          std::size_t dim, const methods::SearchParams& params);

  /// Cumulative metrics across all batches since construction/Reset().
  const ServeMetrics& metrics() const { return metrics_; }
  ServeMetrics& metrics() { return metrics_; }

  /// The executor's trace sampler (configured from options.trace).
  const obs::Tracer& tracer() const { return tracer_; }
  obs::Tracer& tracer() { return tracer_; }

  std::size_t thread_count() const { return pool_.thread_count(); }

 private:
  const methods::GraphIndex& index_;
  ExecutorOptions options_;
  core::ThreadPool pool_;
  SearchSessionPool sessions_;
  ServeMetrics metrics_;
  obs::Tracer tracer_;
};

}  // namespace gass::serve

#endif  // GASS_SERVE_EXECUTOR_H_
