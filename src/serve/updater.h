// Crash-consistent live updates: log first, then apply.
//
// Updater wraps a LiveIndex with the durability protocol of ISSUE 9:
//
//   Insert(v):  route → assign id + sequence → WAL append (+fsync per
//               policy) → apply in memory (arena copy + graph Extend).
//   Delete(id): route to the owning stream → WAL append → tombstone.
//   Checkpoint: freeze updates → write one crash-safe snapshot (live
//               state + tombstones + sequence watermark) → rotate every
//               WAL to an empty log based at the watermark.
//   Open:       load the checkpoint → replay each WAL's records with
//               sequence > watermark (verifying every checksum, stopping
//               at and truncating a torn tail) → ready to serve/append.
//
// The acknowledged-write guarantee: an update's Status is ok only after
// its WAL record is written under the configured fsync policy, so with
// kEveryRecord an acknowledged update survives any crash; with kEveryN /
// kInterval the exposure window is exactly the unsynced suffix (see
// docs/PERSISTENCE.md "Durability & live updates"). Replay is idempotent:
// records at or below the checkpoint watermark — or duplicated within a
// log — are skipped by sequence number, so replaying twice yields a
// bit-identical index.
//
// Locking (two locks, never both held by searches):
//  * update_mutex_ (plain mutex): serializes the whole update path —
//    routing, id/sequence assignment, WAL append, checkpointing. Searches
//    never take it, so log I/O does not block queries.
//  * search_mutex_ (shared_mutex): searches hold it shared; only the brief
//    in-memory apply (graph extend / tombstone flip) holds it exclusive.
//    serve::Frontend takes the shared side around each query.

#ifndef GASS_SERVE_UPDATER_H_
#define GASS_SERVE_UPDATER_H_

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/tombstones.h"
#include "io/wal.h"
#include "obs/trace.h"
#include "serve/live_index.h"
#include "serve/metrics.h"

namespace gass::serve {

struct UpdaterOptions {
  /// Directory holding the checkpoint and WAL files.
  std::string directory;
  /// File-name stem: "<dir>/<name>.ckpt", "<dir>/<name>.wal<stream>".
  std::string name = "live";
  io::WalFsyncOptions wal;
  /// Automatic Checkpoint() after this many applied updates (0 = only
  /// explicit calls).
  std::uint64_t checkpoint_every = 0;
  /// Metric sink (update/WAL/checkpoint counters and wal_append/apply
  /// spans). Null = the updater owns a private ServeMetrics; Frontend
  /// binds its own via BindMetrics() when it adopts the updater.
  ServeMetrics* metrics = nullptr;
};

/// Outcome of one update.
struct UpdateResult {
  core::Status status = core::Status::Ok();
  /// Assigned id (inserts) or the deleted id. Valid when status is ok.
  core::VectorId id = core::kInvalidVectorId;
  /// WAL sequence number the operation was logged under.
  std::uint64_t sequence = 0;
};

/// What recovery (Updater::Open) found and did.
struct RecoveryReport {
  /// Sequence watermark of the checkpoint replayed onto.
  std::uint64_t watermark = 0;
  std::uint64_t records_applied = 0;
  /// Valid records skipped as already-covered or duplicated.
  std::uint64_t records_skipped = 0;
  /// Streams whose WAL ended in a torn tail (truncated during recovery).
  std::uint32_t torn_tails = 0;
  std::uint64_t bytes_truncated = 0;
  /// Streams whose WAL was missing or had an invalid header (recreated
  /// empty — under the crash model such a log held nothing acknowledged).
  std::uint32_t wals_recreated = 0;
};

class Updater {
 public:
  /// Starts a fresh updater over a just-built `live` index: writes the
  /// initial checkpoint and one empty WAL per stream into
  /// options.directory (which must exist). The LiveIndex must outlive the
  /// updater.
  static core::Status Create(LiveIndex* live, const UpdaterOptions& options,
                             std::unique_ptr<Updater>* out);

  /// Recovers from options.directory: loads the checkpoint into `live`
  /// (a Shell()-constructed index over the original base dataset), then
  /// replays each stream's WAL past the watermark. Torn tails are
  /// truncated; invalid/missing WALs recreated. On success the updater
  /// accepts new updates exactly where the crash left off.
  static core::Status Open(LiveIndex* live, const UpdaterOptions& options,
                           std::unique_ptr<Updater>* out,
                           RecoveryReport* report);

  /// Logs and applies one insert; `vec` must hold dim() floats. Ok status
  /// = acknowledged (durable per the fsync policy). `trace` (optional)
  /// receives wal_append / apply spans.
  UpdateResult Insert(const float* vec, obs::QueryTrace* trace = nullptr);

  /// Logs and applies one delete. InvalidArgument when `id` was never
  /// inserted or is already deleted.
  UpdateResult Delete(core::VectorId id, obs::QueryTrace* trace = nullptr);

  /// Writes a crash-safe checkpoint and rotates every WAL. Concurrent
  /// searches proceed; concurrent updates wait.
  core::Status Checkpoint();

  /// Search-side lock: Frontend (or any caller searching index()) holds
  /// this shared for the duration of each query, and reads tombstones()
  /// under it via SearchParams::tombstones.
  std::shared_mutex& search_mutex() const { return search_mutex_; }
  const core::TombstoneSet& tombstones() const { return tombstones_; }

  const methods::GraphIndex& index() const { return live_->SearchIndex(); }
  LiveIndex* live() { return live_; }
  ServeMetrics& metrics() { return *metrics_; }

  /// Adopts `metrics` as the sink iff the updater still uses its private
  /// fallback (Frontend calls this so updater and frontend share one
  /// exporter). No-op when UpdaterOptions::metrics was set explicitly.
  void BindMetrics(ServeMetrics* metrics);

  std::uint64_t last_sequence() const { return sequence_; }
  std::uint64_t updates_since_checkpoint() const {
    return applied_since_checkpoint_;
  }

  /// Test hook: the live WAL writer for `stream` (fault arming).
  io::WalWriter* wal_for_test(std::uint32_t stream) {
    return wals_[stream].get();
  }

  /// Checkpoint file path for this configuration.
  static std::string CheckpointPath(const UpdaterOptions& options);
  /// WAL file path for `stream` under this configuration.
  static std::string WalPath(const UpdaterOptions& options,
                             std::uint32_t stream);

 private:
  Updater(LiveIndex* live, const UpdaterOptions& options);

  io::WalHeader HeaderFor(std::uint32_t stream,
                          std::uint64_t base_sequence) const;
  core::Status CheckpointLocked();
  /// Writes "<name>.ckpt": upd.meta (watermark, next id) + upd.tombstones
  /// + the LiveIndex's sections.
  core::Status WriteCheckpoint(std::uint64_t watermark) const;

  LiveIndex* live_;
  UpdaterOptions options_;
  std::unique_ptr<ServeMetrics> owned_metrics_;
  ServeMetrics* metrics_;
  bool metrics_bound_ = false;

  std::mutex update_mutex_;
  mutable std::shared_mutex search_mutex_;

  std::vector<std::unique_ptr<io::WalWriter>> wals_;
  core::TombstoneSet tombstones_;
  std::uint64_t sequence_ = 0;  ///< Last assigned (and logged) sequence.
  std::uint64_t applied_since_checkpoint_ = 0;
};

}  // namespace gass::serve

#endif  // GASS_SERVE_UPDATER_H_
