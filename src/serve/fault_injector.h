// Deterministic fault injection for the serve path.
//
// Overload behaviour is timing-dependent and therefore miserable to test:
// whether a queue overflows depends on how fast workers drain it. The
// FaultInjector makes that controllable — per-query latency spikes, forced
// admission rejections, forced session-acquire failures, and an execution
// gate that parks workers until the test releases them — all keyed off the
// query's admission id, so a fixed submission order reproduces the exact
// same fault sequence on every run.
//
// The hooks are compiled in unconditionally and cost one null check per
// query when unused (serve::Frontend takes an optional FaultInjector*,
// default null), so production builds and test builds run the same code.

#ifndef GASS_SERVE_FAULT_INJECTOR_H_
#define GASS_SERVE_FAULT_INJECTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace gass::serve {

/// Which queries fault, selected by admission id. A period of 0 disables
/// that fault; period p fires on every id with id % p == 0 — deterministic,
/// order-independent, and easy to reason about in tests ("ids 0, 3, 6
/// reject").
struct FaultPlan {
  /// Sleep this long inside execution (before the search runs) on every
  /// latency_spike_period-th query. Simulates a slow shard, a page fault
  /// storm, or a GC pause downstream.
  std::uint64_t latency_spike_period = 0;
  double latency_spike_seconds = 0.0;
  /// Force admission to reject every reject_period-th query as if the
  /// queue were full.
  std::uint64_t reject_period = 0;
  /// Force the worker-side session acquisition to fail for every
  /// session_fail_period-th query (simulates context-pool exhaustion);
  /// the frontend sheds the query.
  std::uint64_t session_fail_period = 0;
  /// When true the gate starts closed: workers entering execution block
  /// until OpenGate(). Turns "the server is saturated" into a test-
  /// controlled, fully deterministic state.
  bool gate_execution = false;
};

/// Thread-safe; one instance may serve a whole Frontend. All decision
/// methods are pure functions of (plan, id) — only the gate and the
/// counters carry state.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(const FaultPlan& plan)
      : plan_(plan), gate_open_(!plan.gate_execution) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Admission-side: force-reject this query?
  bool ShouldRejectAdmission(std::uint64_t id) const {
    return Fires(plan_.reject_period, id);
  }

  /// Worker-side: fail this query's session acquisition?
  bool ShouldFailSessionAcquire(std::uint64_t id) const {
    return Fires(plan_.session_fail_period, id);
  }

  /// Latency spike for this query (0 = none).
  double LatencySpikeSeconds(std::uint64_t id) const {
    return Fires(plan_.latency_spike_period, id) ? plan_.latency_spike_seconds
                                                 : 0.0;
  }

  /// Worker-side execution hook: applies the latency spike (a real sleep,
  /// so deadlines and queue pressure react as they would to a slow query)
  /// and blocks while the gate is closed. Call before running query `id`.
  void OnExecute(std::uint64_t id);

  /// Gate control (tests). Opening wakes every parked worker; arrivals()
  /// counts workers that have reached the gate, so a test can wait until
  /// the server is provably wedged before measuring shedding.
  void CloseGate();
  void OpenGate();
  /// Blocks until at least `n` workers have entered OnExecute().
  void WaitForArrivals(std::uint64_t n);

  std::uint64_t injected_spikes() const {
    return spikes_.load(std::memory_order_relaxed);
  }
  std::uint64_t forced_rejections() const {
    return rejections_.load(std::memory_order_relaxed);
  }
  std::uint64_t forced_session_failures() const {
    return session_failures_.load(std::memory_order_relaxed);
  }

  /// Called by the frontend when it acts on a decision, so tests can assert
  /// the injected fault count against the observed shed/latency counts.
  void CountRejection() { rejections_.fetch_add(1, std::memory_order_relaxed); }
  void CountSessionFailure() {
    session_failures_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  static bool Fires(std::uint64_t period, std::uint64_t id) {
    return period != 0 && id % period == 0;
  }

  FaultPlan plan_;
  std::mutex gate_mutex_;
  std::condition_variable gate_cv_;
  bool gate_open_ = true;
  std::uint64_t arrivals_ = 0;  // Guarded by gate_mutex_.
  std::atomic<std::uint64_t> spikes_{0};
  std::atomic<std::uint64_t> rejections_{0};
  std::atomic<std::uint64_t> session_failures_{0};
};

}  // namespace gass::serve

#endif  // GASS_SERVE_FAULT_INJECTOR_H_
