// Deterministic fault injection for the serve path.
//
// Overload behaviour is timing-dependent and therefore miserable to test:
// whether a queue overflows depends on how fast workers drain it. The
// FaultInjector makes that controllable — per-query latency spikes, forced
// admission rejections, forced session-acquire failures, and an execution
// gate that parks workers until the test releases them — all keyed off the
// query's admission id, so a fixed submission order reproduces the exact
// same fault sequence on every run.
//
// The hooks are compiled in unconditionally and cost one null check per
// query when unused (serve::Frontend takes an optional FaultInjector*,
// default null), so production builds and test builds run the same code.

#ifndef GASS_SERVE_FAULT_INJECTOR_H_
#define GASS_SERVE_FAULT_INJECTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace gass::serve {

/// Faults scoped to one shard of a sharded index, keyed on (admission id,
/// shard id) so every scenario is reproducible: the same query stream hits
/// the same shard-level failures on every run. Consumed by
/// shard::ShardedIndex (which takes an optional FaultInjector*); the serve
/// layer only defines the plan so the dependency stays acyclic
/// (gass_shard links gass_serve, never the reverse).
struct ShardFaultPlan {
  std::uint32_t shard = 0;
  /// Which replica of the shard the fail_period fault targets: -1 (the
  /// default) faults any replica — the whole shard is sick — while a
  /// specific replica id models one bad copy, leaving its peers healthy so
  /// failover can answer the query. Slow/reload faults are shard-wide.
  std::int32_t replica = -1;
  /// Fail this shard's sub-search on every fail_period-th admission id
  /// (same `id % p == 0` rule as FaultPlan). The failure is injected as an
  /// exception inside the fan-out worker, so it exercises the exact
  /// exception-to-status path a real sub-search failure would take.
  std::uint64_t fail_period = 0;
  /// Sleep inside this shard's sub-search on every slow_period-th
  /// admission id — the "slow shard" a hedged backup is meant to beat.
  std::uint64_t slow_period = 0;
  double slow_seconds = 0.0;
  /// How many attempts of a slow query are slow: 1 (default) slows only
  /// the primary sub-search, so a hedged backup models a healthy replica
  /// and can win; 2+ slows the hedge too (the shard itself is sick).
  std::uint32_t slow_attempts = 1;
  /// Fail the first N online reload attempts of this shard with a
  /// corruption error (the snapshot "is" corrupt), keeping it quarantined;
  /// attempt N+1 onward succeeds.
  std::uint64_t reload_corrupt_times = 0;
};

/// Which queries fault, selected by admission id. A period of 0 disables
/// that fault; period p fires on every id with id % p == 0 — deterministic,
/// order-independent, and easy to reason about in tests ("ids 0, 3, 6
/// reject").
struct FaultPlan {
  /// Sleep this long inside execution (before the search runs) on every
  /// latency_spike_period-th query. Simulates a slow shard, a page fault
  /// storm, or a GC pause downstream.
  std::uint64_t latency_spike_period = 0;
  double latency_spike_seconds = 0.0;
  /// Force admission to reject every reject_period-th query as if the
  /// queue were full.
  std::uint64_t reject_period = 0;
  /// Force the worker-side session acquisition to fail for every
  /// session_fail_period-th query (simulates context-pool exhaustion);
  /// the frontend sheds the query.
  std::uint64_t session_fail_period = 0;
  /// When true the gate starts closed: workers entering execution block
  /// until OpenGate(). Turns "the server is saturated" into a test-
  /// controlled, fully deterministic state.
  bool gate_execution = false;
  /// Per-shard faults (slow shard, failing shard, corrupt reload); at most
  /// one plan per shard id — the first matching entry wins.
  std::vector<ShardFaultPlan> shard_faults;
};

/// Thread-safe; one instance may serve a whole Frontend. All decision
/// methods are pure functions of (plan, id) — only the gate and the
/// counters carry state.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(const FaultPlan& plan)
      : plan_(plan), gate_open_(!plan.gate_execution) {
    if (!plan_.shard_faults.empty()) {
      reload_attempts_ = std::make_unique<std::atomic<std::uint64_t>[]>(
          plan_.shard_faults.size());
      for (std::size_t i = 0; i < plan_.shard_faults.size(); ++i) {
        reload_attempts_[i].store(0, std::memory_order_relaxed);
      }
    }
  }

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Admission-side: force-reject this query?
  bool ShouldRejectAdmission(std::uint64_t id) const {
    return Fires(plan_.reject_period, id);
  }

  /// Worker-side: fail this query's session acquisition?
  bool ShouldFailSessionAcquire(std::uint64_t id) const {
    return Fires(plan_.session_fail_period, id);
  }

  /// Latency spike for this query (0 = none).
  double LatencySpikeSeconds(std::uint64_t id) const {
    return Fires(plan_.latency_spike_period, id) ? plan_.latency_spike_seconds
                                                 : 0.0;
  }

  /// Worker-side execution hook: applies the latency spike (a real sleep,
  /// so deadlines and queue pressure react as they would to a slow query)
  /// and blocks while the gate is closed. Call before running query `id`.
  void OnExecute(std::uint64_t id);

  // --- Shard-level decisions (consumed by shard::ShardedIndex) ---

  /// Fail shard `shard`'s sub-search on replica `replica` for admission id
  /// `id`? Pure; the shard layer acts by throwing inside its fan-out
  /// worker and counts the injection via CountShardFailure(). A plan with
  /// replica = -1 matches every replica.
  bool ShouldFailShardSearch(std::uint64_t id, std::uint32_t shard,
                             std::int32_t replica) const {
    const ShardFaultPlan* p = FindShardPlan(shard);
    return p != nullptr && Fires(p->fail_period, id) &&
           (p->replica < 0 || p->replica == replica);
  }

  /// Replica-oblivious form: fires if the plan would fault ANY replica of
  /// the shard (kept for unreplicated callers and tests).
  bool ShouldFailShardSearch(std::uint64_t id, std::uint32_t shard) const {
    const ShardFaultPlan* p = FindShardPlan(shard);
    return p != nullptr && Fires(p->fail_period, id);
  }

  /// Injected sub-search delay for (id, shard, attempt); 0 = none.
  /// Attempt 0 is the primary probe, 1 the hedged backup.
  double ShardSearchDelaySeconds(std::uint64_t id, std::uint32_t shard,
                                 std::uint32_t attempt) const {
    const ShardFaultPlan* p = FindShardPlan(shard);
    if (p == nullptr || !Fires(p->slow_period, id)) return 0.0;
    return attempt < p->slow_attempts ? p->slow_seconds : 0.0;
  }

  /// Sub-search entry hook: sleeps the injected delay (a real sleep, so
  /// hedging and deadlines react as they would to a genuinely slow shard).
  void OnShardSearch(std::uint64_t id, std::uint32_t shard,
                     std::uint32_t attempt);

  /// Reload hook: true = inject snapshot corruption into this reload
  /// attempt (the shard layer fails the reload with kCorruption). Counts
  /// attempts per shard so the first `reload_corrupt_times` fail and later
  /// ones succeed.
  bool OnShardReload(std::uint32_t shard);

  std::uint64_t injected_shard_failures() const {
    return shard_failures_.load(std::memory_order_relaxed);
  }
  std::uint64_t injected_shard_delays() const {
    return shard_delays_.load(std::memory_order_relaxed);
  }
  std::uint64_t injected_reload_corruptions() const {
    return reload_corruptions_.load(std::memory_order_relaxed);
  }

  /// Called by the shard layer when it acts on ShouldFailShardSearch().
  void CountShardFailure() {
    shard_failures_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Gate control (tests). Opening wakes every parked worker; arrivals()
  /// counts workers that have reached the gate, so a test can wait until
  /// the server is provably wedged before measuring shedding.
  void CloseGate();
  void OpenGate();
  /// Blocks until at least `n` workers have entered OnExecute().
  void WaitForArrivals(std::uint64_t n);

  std::uint64_t injected_spikes() const {
    return spikes_.load(std::memory_order_relaxed);
  }
  std::uint64_t forced_rejections() const {
    return rejections_.load(std::memory_order_relaxed);
  }
  std::uint64_t forced_session_failures() const {
    return session_failures_.load(std::memory_order_relaxed);
  }

  /// Called by the frontend when it acts on a decision, so tests can assert
  /// the injected fault count against the observed shed/latency counts.
  void CountRejection() { rejections_.fetch_add(1, std::memory_order_relaxed); }
  void CountSessionFailure() {
    session_failures_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  static bool Fires(std::uint64_t period, std::uint64_t id) {
    return period != 0 && id % period == 0;
  }

  const ShardFaultPlan* FindShardPlan(std::uint32_t shard) const {
    for (const ShardFaultPlan& p : plan_.shard_faults) {
      if (p.shard == shard) return &p;
    }
    return nullptr;
  }

  FaultPlan plan_;
  std::mutex gate_mutex_;
  std::condition_variable gate_cv_;
  bool gate_open_ = true;
  std::uint64_t arrivals_ = 0;  // Guarded by gate_mutex_.
  std::atomic<std::uint64_t> spikes_{0};
  std::atomic<std::uint64_t> rejections_{0};
  std::atomic<std::uint64_t> session_failures_{0};
  std::atomic<std::uint64_t> shard_failures_{0};
  std::atomic<std::uint64_t> shard_delays_{0};
  std::atomic<std::uint64_t> reload_corruptions_{0};
  /// Reload attempts seen so far, one slot per plan_.shard_faults entry.
  std::unique_ptr<std::atomic<std::uint64_t>[]> reload_attempts_;
};

}  // namespace gass::serve

#endif  // GASS_SERVE_FAULT_INJECTOR_H_
