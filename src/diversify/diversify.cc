#include "diversify/diversify.h"

#include <algorithm>
#include <cmath>

#include "core/macros.h"

namespace gass::diversify {

using core::DistanceComputer;
using core::Neighbor;
using core::VectorId;

std::string StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kNone:
      return "NoND";
    case Strategy::kRnd:
      return "RND";
    case Strategy::kRrnd:
      return "RRND";
    case Strategy::kMond:
      return "MOND";
  }
  return "unknown";
}

namespace {

// cos of the angle at X_q in triangle (X_i, X_q, X_j), via the law of
// cosines over *squared* distances: cos = (a² + b² - c²) / (2ab) with
// a = |X_q X_i|, b = |X_q X_j|, c = |X_i X_j|.
double CosAngleAtQ(float a_sq, float b_sq, float c_sq) {
  const double ab =
      std::sqrt(static_cast<double>(a_sq)) * std::sqrt(static_cast<double>(b_sq));
  if (ab <= 0.0) return 1.0;  // Degenerate: coincident points.
  double value = (static_cast<double>(a_sq) + b_sq - c_sq) / (2.0 * ab);
  return std::clamp(value, -1.0, 1.0);
}

}  // namespace

std::vector<Neighbor> Diversify(DistanceComputer& dc, VectorId self,
                                const std::vector<Neighbor>& candidates,
                                const Params& params, PruneStats* stats) {
  GASS_CHECK(params.max_degree > 0);
  GASS_DCHECK(std::is_sorted(candidates.begin(), candidates.end()));

  const double cos_theta =
      std::cos(static_cast<double>(params.theta_degrees) * 3.14159265358979 /
               180.0);
  const float alpha = params.alpha;
  GASS_CHECK(params.strategy != Strategy::kRrnd || alpha >= 1.0f);

  std::vector<Neighbor> kept;
  kept.reserve(params.max_degree);

  std::size_t offered = 0;
  for (const Neighbor& candidate : candidates) {
    if (kept.size() == params.max_degree) break;
    if (candidate.id == self) continue;
    // Skip duplicates already kept.
    bool duplicate = false;
    for (const Neighbor& existing : kept) {
      if (existing.id == candidate.id) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    ++offered;

    bool keep = true;
    if (params.strategy != Strategy::kNone) {
      for (const Neighbor& existing : kept) {
        const float inter = dc.Between(existing.id, candidate.id);
        switch (params.strategy) {
          case Strategy::kRnd:
            // Keep iff dist(X_q, X_j) < dist(X_i, X_j) for all kept X_i.
            if (candidate.distance >= inter) keep = false;
            break;
          case Strategy::kRrnd:
            // Keep iff dist(X_q, X_j) < α · dist(X_i, X_j). Distances are
            // squared, so α scales as α² on this side.
            if (candidate.distance >= alpha * alpha * inter) keep = false;
            break;
          case Strategy::kMond:
            // Keep iff the angle at X_q exceeds θ, i.e. cos(angle) < cosθ.
            if (CosAngleAtQ(existing.distance, candidate.distance, inter) >=
                cos_theta) {
              keep = false;
            }
            break;
          case Strategy::kNone:
            break;
        }
        if (!keep) break;
      }
    }
    if (keep) kept.push_back(candidate);
  }

  if (stats != nullptr) {
    ++stats->nodes;
    stats->candidates += offered;
    stats->kept += kept.size();
    stats->truncated_quota += std::min(offered, params.max_degree);
  }
  return kept;
}

}  // namespace gass::diversify
