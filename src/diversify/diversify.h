// Neighborhood Diversification (ND) strategies — Section 3.4 of the paper.
//
// Given a node X_q and a candidate neighbor list C_q sorted by ascending
// distance to X_q, a diversifier greedily builds the result list R_q:
// candidates are visited nearest-first, and candidate X_j is kept iff the
// strategy's geometric condition holds against every already-kept X_i:
//
//   RND   (Def. 3): dist(X_q, X_j) <  dist(X_i, X_j)
//   RRND  (Def. 4): dist(X_q, X_j) <  α · dist(X_i, X_j),  α ≥ 1
//   MOND  (Def. 5): ∠(X_i X_q X_j) >  θ,                   θ ≥ 60°
//   NoND:           always kept (plain nearest-first truncation)
//
// All conditions are evaluated from distances only (MOND's angle comes from
// the law of cosines), so a diversifier needs just a DistanceComputer.
// Any node pruned by RRND or MOND is also pruned by RND, but not vice versa
// (paper Section 3.4), which the property tests verify.

#ifndef GASS_DIVERSIFY_DIVERSIFY_H_
#define GASS_DIVERSIFY_DIVERSIFY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/distance.h"
#include "core/neighbor.h"

namespace gass::diversify {

/// Which ND condition to apply.
enum class Strategy {
  kNone,  ///< NoND: nearest-first truncation to max_degree.
  kRnd,   ///< Relative Neighborhood Diversification (HNSW, NSG, SPTAG, ELPIS).
  kRrnd,  ///< Relaxed RND with factor alpha (Vamana).
  kMond,  ///< Maximum-Oriented ND with angle theta (DPG, SSG).
};

/// Human-readable strategy name ("RND", "RRND", ...).
std::string StrategyName(Strategy strategy);

/// Diversification parameters.
struct Params {
  Strategy strategy = Strategy::kRnd;
  /// RRND relaxation factor (α ≥ 1; α = 1 reduces RRND to RND).
  float alpha = 1.3f;
  /// MOND angle threshold in degrees (θ ≥ 60° per Def. 5).
  float theta_degrees = 60.0f;
  /// Maximum size of the kept neighbor list (the graph's out-degree bound).
  std::size_t max_degree = 32;
};

/// Accumulates the before/after list sizes behind Table 1's pruning ratios.
struct PruneStats {
  std::uint64_t nodes = 0;            ///< Diversification calls.
  std::uint64_t candidates = 0;       ///< Total candidates offered.
  std::uint64_t kept = 0;             ///< Total neighbors kept.
  std::uint64_t truncated_quota = 0;  ///< Σ min(|C_q|, max_degree).

  /// Percentage reduction of the kept list versus the NoND baseline
  /// (min(|C_q|, max_degree)) — the Table 1 measure. In [0, 1].
  double PruningRatio() const {
    if (truncated_quota == 0) return 0.0;
    return 1.0 - static_cast<double>(kept) /
                     static_cast<double>(truncated_quota);
  }
};

/// Applies the configured strategy to `candidates` (sorted ascending by
/// distance to the node being diversified; each Neighbor carries
/// dist(X_q, ·)). Returns the kept list, still sorted ascending, of size at
/// most params.max_degree. Inter-candidate distances are computed through
/// `dc` (and counted there). Duplicate ids in `candidates` are ignored.
///
/// `self` is the id of X_q when it is a dataset vector (used only to skip a
/// self-candidate); pass core::kInvalidVectorId for external query points.
std::vector<core::Neighbor> Diversify(core::DistanceComputer& dc,
                                      core::VectorId self,
                                      const std::vector<core::Neighbor>& candidates,
                                      const Params& params,
                                      PruneStats* stats = nullptr);

}  // namespace gass::diversify

#endif  // GASS_DIVERSIFY_DIVERSIFY_H_
