// Random hierarchical clustering — HCNNG's dataset-division primitive.
//
// Recursively bisects the point set: two random pivot points are drawn, each
// point joins its nearer pivot, and each side recurses until the leaf bound.
// Repeating the procedure with fresh randomness yields the overlapping
// clusterings whose per-leaf MSTs HCNNG merges.

#ifndef GASS_TREES_HIERARCHICAL_CLUSTERING_H_
#define GASS_TREES_HIERARCHICAL_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/types.h"

namespace gass::trees {

/// One random hierarchical bisection of all rows of `data`; returns leaf
/// membership lists of at most `leaf_size` points each.
std::vector<std::vector<core::VectorId>> RandomBisectionLeaves(
    const core::Dataset& data, std::size_t leaf_size, std::uint64_t seed);

}  // namespace gass::trees

#endif  // GASS_TREES_HIERARCHICAL_CLUSTERING_H_
