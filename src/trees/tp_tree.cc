#include "trees/tp_tree.h"

#include <algorithm>
#include <cmath>

#include "core/macros.h"
#include "core/rng.h"

namespace gass::trees {

using core::Dataset;
using core::Rng;
using core::VectorId;

namespace {

struct Splitter {
  std::vector<std::size_t> dims;
  std::vector<float> weights;

  float Project(const float* row) const {
    float value = 0.0f;
    for (std::size_t i = 0; i < dims.size(); ++i) {
      value += weights[i] * row[dims[i]];
    }
    return value;
  }
};

// Picks projection dimensions biased toward high variance, with random ±1
// (occasionally ±0.5) weights — the "trinary projection" idea.
Splitter MakeSplitter(const Dataset& data, const std::vector<VectorId>& ids,
                      std::size_t projection_dims, Rng& rng) {
  const std::size_t dim = data.dim();
  std::vector<double> mean(dim, 0.0), m2(dim, 0.0);
  const std::size_t stride = ids.size() > 512 ? ids.size() / 512 : 1;
  std::size_t samples = 0;
  for (std::size_t i = 0; i < ids.size(); i += stride) {
    const float* row = data.Row(ids[i]);
    ++samples;
    for (std::size_t d = 0; d < dim; ++d) {
      const double delta = row[d] - mean[d];
      mean[d] += delta / static_cast<double>(samples);
      m2[d] += delta * (row[d] - mean[d]);
    }
  }
  std::vector<std::size_t> order(dim);
  for (std::size_t d = 0; d < dim; ++d) order[d] = d;
  const std::size_t pool = std::min(dim, projection_dims * 4);
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(pool),
                    order.end(),
                    [&](std::size_t a, std::size_t b) { return m2[a] > m2[b]; });

  Splitter splitter;
  const std::size_t take = std::min(projection_dims, pool);
  for (std::size_t i = 0; i < take; ++i) {
    splitter.dims.push_back(order[rng.UniformInt(pool)]);
    const std::uint64_t coin = rng.UniformInt(4);
    // Weights in {-1, -0.5, +0.5, +1}: signed, two magnitudes.
    splitter.weights.push_back(coin == 0   ? -1.0f
                               : coin == 1 ? -0.5f
                               : coin == 2 ? 0.5f
                                           : 1.0f);
  }
  return splitter;
}

void PartitionRecursive(const Dataset& data, std::vector<VectorId> ids,
                        const TpTreeParams& params, Rng& rng,
                        std::vector<std::vector<VectorId>>* leaves) {
  if (ids.size() <= params.leaf_size) {
    leaves->push_back(std::move(ids));
    return;
  }
  const Splitter splitter =
      MakeSplitter(data, ids, params.projection_dims, rng);

  // Median split on the projection keeps the tree balanced.
  std::vector<float> projections(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    projections[i] = splitter.Project(data.Row(ids[i]));
  }
  std::vector<std::size_t> order(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) order[i] = i;
  const std::size_t mid = ids.size() / 2;
  std::nth_element(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(mid),
                   order.end(), [&](std::size_t a, std::size_t b) {
                     return projections[a] < projections[b];
                   });

  std::vector<VectorId> left, right;
  left.reserve(mid);
  right.reserve(ids.size() - mid);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    (i < mid ? left : right).push_back(ids[order[i]]);
  }
  ids.clear();
  ids.shrink_to_fit();
  PartitionRecursive(data, std::move(left), params, rng, leaves);
  PartitionRecursive(data, std::move(right), params, rng, leaves);
}

}  // namespace

std::vector<std::vector<VectorId>> TpTreePartitionSubset(
    const Dataset& data, const std::vector<VectorId>& ids,
    const TpTreeParams& params, std::uint64_t seed) {
  GASS_CHECK(params.leaf_size > 0);
  std::vector<std::vector<VectorId>> leaves;
  Rng rng(seed);
  PartitionRecursive(data, ids, params, rng, &leaves);
  return leaves;
}

std::vector<std::vector<VectorId>> TpTreePartition(const Dataset& data,
                                                   const TpTreeParams& params,
                                                   std::uint64_t seed) {
  std::vector<VectorId> ids(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    ids[i] = static_cast<VectorId>(i);
  }
  return TpTreePartitionSubset(data, ids, params, seed);
}

}  // namespace gass::trees
