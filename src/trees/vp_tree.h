// Vantage-point tree — NGT's seed-selection structure.
//
// A metric tree: each interior node picks a vantage point and splits the rest
// by distance-to-vantage at the median radius. Approximate k-NN retrieval
// under a node-visit budget supplies seeds for beam search.

#ifndef GASS_TREES_VP_TREE_H_
#define GASS_TREES_VP_TREE_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/neighbor.h"
#include "core/rng.h"
#include "core/status.h"
#include "core/types.h"
#include "io/serialize.h"

namespace gass::trees {

/// VP-tree over a dataset.
class VpTree {
 public:
  static VpTree Build(const core::Dataset& data, std::uint64_t seed);

  /// Approximate k nearest neighbors of `query`, visiting at most
  /// `max_visits` tree leaves/vantage points. Exact when max_visits is
  /// large enough.
  std::vector<core::Neighbor> Search(const core::Dataset& data,
                                     const float* query, std::size_t k,
                                     std::size_t max_visits) const;

  std::size_t MemoryBytes() const {
    return nodes_.size() * sizeof(Node);
  }

  /// Snapshot codec. Decode validates vantage ids against `expected_n` and
  /// child links against the node count.
  void EncodeTo(io::Encoder* enc) const;
  static core::Status DecodeFrom(io::Decoder* dec, std::uint64_t expected_n,
                                 VpTree* out);

 private:
  struct Node {
    core::VectorId vantage = core::kInvalidVectorId;
    float radius = 0.0f;  // Median distance of the node's points to vantage.
    std::int32_t inside = -1;
    std::int32_t outside = -1;
  };

  std::int32_t BuildNode(const core::Dataset& data,
                         std::vector<core::VectorId>& ids, std::size_t begin,
                         std::size_t end, core::Rng& rng);

  std::vector<Node> nodes_;
};

}  // namespace gass::trees

#endif  // GASS_TREES_VP_TREE_H_
