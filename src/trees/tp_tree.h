// Trinary-projection-style partition trees (TP trees), the structure SPTAG
// uses to divide the dataset before building per-leaf k-NN graphs.
//
// Each interior node splits its points by a sparse random projection: a
// signed combination of a few high-variance dimensions, thresholded at the
// projection median. Repeated independent trees produce overlapping leaf
// sets, which SPTAG merges after building a graph per leaf.

#ifndef GASS_TREES_TP_TREE_H_
#define GASS_TREES_TP_TREE_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/types.h"

namespace gass::trees {

/// TP-tree partitioning parameters.
struct TpTreeParams {
  std::size_t leaf_size = 200;
  /// Number of dimensions combined into each projection direction.
  std::size_t projection_dims = 3;
};

/// Recursively partitions all rows of `data` into leaves of at most
/// `params.leaf_size` points; returns the leaf membership lists.
std::vector<std::vector<core::VectorId>> TpTreePartition(
    const core::Dataset& data, const TpTreeParams& params,
    std::uint64_t seed);

/// Partitions only the given subset of rows.
std::vector<std::vector<core::VectorId>> TpTreePartitionSubset(
    const core::Dataset& data, const std::vector<core::VectorId>& ids,
    const TpTreeParams& params, std::uint64_t seed);

}  // namespace gass::trees

#endif  // GASS_TREES_TP_TREE_H_
