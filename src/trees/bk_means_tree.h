// Balanced k-means tree (BKT) — SPTAG-BKT's seed-selection structure.
//
// Each interior node clusters its points with Lloyd's k-means, then balances
// the assignment by capping every cluster at ceil(count / k) points (excess
// points spill to their next-nearest centroid), and recurses per cluster.

#ifndef GASS_TREES_BK_MEANS_TREE_H_
#define GASS_TREES_BK_MEANS_TREE_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/status.h"
#include "core/types.h"
#include "io/serialize.h"

namespace gass::trees {

/// BKT construction parameters.
struct BkTreeParams {
  std::size_t branching = 8;      ///< k of the per-node k-means.
  std::size_t leaf_size = 32;     ///< Max points per leaf.
  std::size_t kmeans_iters = 8;   ///< Lloyd iterations per node.
};

/// Balanced k-means tree over a dataset.
class BkMeansTree {
 public:
  static BkMeansTree Build(const core::Dataset& data,
                           const BkTreeParams& params, std::uint64_t seed);

  /// Collects up to `count` candidate ids for `query` by best-bin-first
  /// descent over centroid distances.
  void SearchCandidates(const core::Dataset& data, const float* query,
                        std::size_t count,
                        std::vector<core::VectorId>* out) const;

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t MemoryBytes() const;

  /// Snapshot codec. Decode validates child links, centroid indices, leaf
  /// ranges, and every stored id against `expected_n`.
  void EncodeTo(io::Encoder* enc) const;
  static core::Status DecodeFrom(io::Decoder* dec, std::uint64_t expected_n,
                                 BkMeansTree* out);

 private:
  struct Node {
    // Interior nodes list child node indices; leaves hold [begin, end) into
    // ids_. `centroid` indexes into centroids_ (dim floats per node; the
    // root's centroid is unused).
    std::vector<std::int32_t> children;
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
    std::int32_t centroid = -1;

    bool IsLeaf() const { return children.empty(); }
  };

  std::int32_t BuildNode(const core::Dataset& data, std::uint32_t begin,
                         std::uint32_t end, const BkTreeParams& params,
                         std::uint64_t seed_state);
  std::int32_t AddCentroid(const core::Dataset& data, std::uint32_t begin,
                           std::uint32_t end);

  std::size_t dim_ = 0;
  std::vector<Node> nodes_;
  std::vector<core::VectorId> ids_;
  std::vector<float> centroids_;  // num centroids × dim_.
};

}  // namespace gass::trees

#endif  // GASS_TREES_BK_MEANS_TREE_H_
