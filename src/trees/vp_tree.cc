#include "trees/vp_tree.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "core/distance.h"
#include "core/macros.h"

namespace gass::trees {

using core::Dataset;
using core::Neighbor;
using core::Rng;
using core::VectorId;

VpTree VpTree::Build(const Dataset& data, std::uint64_t seed) {
  GASS_CHECK(!data.empty());
  VpTree tree;
  std::vector<VectorId> ids(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    ids[i] = static_cast<VectorId>(i);
  }
  Rng rng(seed);
  tree.BuildNode(data, ids, 0, ids.size(), rng);
  return tree;
}

std::int32_t VpTree::BuildNode(const Dataset& data, std::vector<VectorId>& ids,
                               std::size_t begin, std::size_t end, Rng& rng) {
  if (begin >= end) return -1;
  const std::int32_t index = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{});

  // Random vantage point, swapped to the front of the range.
  const std::size_t pick = begin + rng.UniformInt(end - begin);
  std::swap(ids[begin], ids[pick]);
  const VectorId vantage = ids[begin];
  nodes_[index].vantage = vantage;

  if (end - begin == 1) return index;

  // Median-radius split of the remaining points.
  const std::size_t mid = begin + 1 + (end - begin - 1) / 2;
  std::nth_element(
      ids.begin() + static_cast<std::ptrdiff_t>(begin + 1),
      ids.begin() + static_cast<std::ptrdiff_t>(mid),
      ids.begin() + static_cast<std::ptrdiff_t>(end),
      [&](VectorId a, VectorId b) {
        return core::L2Sq(data.Row(vantage), data.Row(a), data.dim()) <
               core::L2Sq(data.Row(vantage), data.Row(b), data.dim());
      });
  nodes_[index].radius =
      core::L2Sq(data.Row(vantage), data.Row(ids[mid]), data.dim());

  const std::int32_t inside = BuildNode(data, ids, begin + 1, mid, rng);
  const std::int32_t outside = BuildNode(data, ids, mid, end, rng);
  nodes_[index].inside = inside;
  nodes_[index].outside = outside;
  return index;
}

std::vector<Neighbor> VpTree::Search(const Dataset& data, const float* query,
                                     std::size_t k,
                                     std::size_t max_visits) const {
  core::CandidatePool pool(k);
  if (nodes_.empty()) return {};

  // Best-first over (lower bound, node); lower bound on *squared* distance
  // from the triangle inequality applied to sqrt-distances.
  using Entry = std::pair<float, std::int32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> frontier;
  frontier.emplace(0.0f, 0);
  std::size_t visits = 0;

  while (!frontier.empty() && visits < max_visits) {
    const auto [bound, node_index] = frontier.top();
    frontier.pop();
    if (bound >= pool.WorstDistance()) break;  // Exact-pruning condition.
    const Node& node = nodes_[static_cast<std::size_t>(node_index)];
    ++visits;

    const float d = core::L2Sq(query, data.Row(node.vantage), data.dim());
    if (d < pool.WorstDistance()) pool.Insert(Neighbor(node.vantage, d));

    if (node.inside < 0 && node.outside < 0) continue;

    const double dist = std::sqrt(static_cast<double>(d));
    const double radius = std::sqrt(static_cast<double>(node.radius));
    // Child lower bounds: inside ball -> max(0, dist - radius); outside ->
    // max(0, radius - dist).
    if (node.inside >= 0) {
      const double lb = std::max(0.0, dist - radius);
      frontier.emplace(static_cast<float>(lb * lb), node.inside);
    }
    if (node.outside >= 0) {
      const double lb = std::max(0.0, radius - dist);
      frontier.emplace(static_cast<float>(lb * lb), node.outside);
    }
  }
  return pool.TopK(k);
}

void VpTree::EncodeTo(io::Encoder* enc) const {
  enc->U64(nodes_.size());
  for (const Node& node : nodes_) {
    enc->U32(node.vantage);
    enc->F32(node.radius);
    enc->U32(static_cast<std::uint32_t>(node.inside));
    enc->U32(static_cast<std::uint32_t>(node.outside));
  }
}

core::Status VpTree::DecodeFrom(io::Decoder* dec, std::uint64_t expected_n,
                                VpTree* out) {
  VpTree tree;
  constexpr std::size_t kNodeBytes = 4 * sizeof(std::uint32_t);
  const std::uint64_t num_nodes = dec->U64();
  if (!dec->Check(num_nodes <= dec->remaining() / kNodeBytes,
                  "vp node count exceeds remaining payload")) {
    return dec->status();
  }
  tree.nodes_.resize(num_nodes);
  for (std::uint64_t i = 0; i < num_nodes; ++i) {
    Node& node = tree.nodes_[i];
    node.vantage = dec->U32();
    node.radius = dec->F32();
    node.inside = static_cast<std::int32_t>(dec->U32());
    node.outside = static_cast<std::int32_t>(dec->U32());
  }
  GASS_RETURN_IF_ERROR(dec->status());
  const auto valid_child = [&](std::int32_t c) {
    return c >= -1 && c < static_cast<std::int64_t>(num_nodes);
  };
  for (std::uint64_t i = 0; i < num_nodes; ++i) {
    const Node& node = tree.nodes_[i];
    if (!dec->Check(node.vantage < expected_n,
                    "vp node " + std::to_string(i) +
                        " vantage id out of range") ||
        !dec->Check(valid_child(node.inside) && valid_child(node.outside),
                    "vp node " + std::to_string(i) +
                        " child link out of range")) {
      return dec->status();
    }
  }
  *out = std::move(tree);
  return core::Status::Ok();
}

}  // namespace gass::trees
