#include "trees/hierarchical_clustering.h"

#include "core/distance.h"
#include "core/macros.h"
#include "core/rng.h"

namespace gass::trees {

using core::Dataset;
using core::Rng;
using core::VectorId;

namespace {

void Bisect(const Dataset& data, std::vector<VectorId> ids,
            std::size_t leaf_size, Rng& rng,
            std::vector<std::vector<VectorId>>* leaves) {
  if (ids.size() <= leaf_size) {
    leaves->push_back(std::move(ids));
    return;
  }
  // Two distinct random pivots.
  const std::size_t a_index = rng.UniformInt(ids.size());
  std::size_t b_index = rng.UniformInt(ids.size() - 1);
  if (b_index >= a_index) ++b_index;
  const VectorId pivot_a = ids[a_index];
  const VectorId pivot_b = ids[b_index];

  std::vector<VectorId> left, right;
  left.reserve(ids.size() / 2 + 1);
  right.reserve(ids.size() / 2 + 1);
  for (VectorId id : ids) {
    const float da = core::L2Sq(data.Row(id), data.Row(pivot_a), data.dim());
    const float db = core::L2Sq(data.Row(id), data.Row(pivot_b), data.dim());
    if (da < db || (da == db && (id & 1u) == 0)) {
      left.push_back(id);
    } else {
      right.push_back(id);
    }
  }
  // Guard against a degenerate split (duplicated pivots): force an even cut.
  if (left.empty() || right.empty()) {
    const std::size_t mid = ids.size() / 2;
    left.assign(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(mid));
    right.assign(ids.begin() + static_cast<std::ptrdiff_t>(mid), ids.end());
  }
  ids.clear();
  ids.shrink_to_fit();
  Bisect(data, std::move(left), leaf_size, rng, leaves);
  Bisect(data, std::move(right), leaf_size, rng, leaves);
}

}  // namespace

std::vector<std::vector<VectorId>> RandomBisectionLeaves(const Dataset& data,
                                                         std::size_t leaf_size,
                                                         std::uint64_t seed) {
  GASS_CHECK(leaf_size >= 2);
  std::vector<VectorId> ids(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    ids[i] = static_cast<VectorId>(i);
  }
  std::vector<std::vector<VectorId>> leaves;
  Rng rng(seed);
  Bisect(data, std::move(ids), leaf_size, rng, &leaves);
  return leaves;
}

}  // namespace gass::trees
