#include "trees/kd_tree.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "core/macros.h"
#include "core/rng.h"

namespace gass::trees {

using core::Dataset;
using core::Rng;
using core::VectorId;

KdTree KdTree::Build(const Dataset& data, const KdTreeParams& params,
                     std::uint64_t seed) {
  std::vector<VectorId> ids(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    ids[i] = static_cast<VectorId>(i);
  }
  return BuildOnSubset(data, ids, params, seed);
}

KdTree KdTree::BuildOnSubset(const Dataset& data,
                             const std::vector<VectorId>& ids,
                             const KdTreeParams& params, std::uint64_t seed) {
  GASS_CHECK(!ids.empty());
  KdTree tree;
  tree.ids_ = ids;
  tree.BuildNode(data, 0, static_cast<std::uint32_t>(ids.size()), params,
                 seed);
  return tree;
}

std::int32_t KdTree::BuildNode(const Dataset& data, std::uint32_t begin,
                               std::uint32_t end, const KdTreeParams& params,
                               std::uint64_t seed_state) {
  const std::int32_t index = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{});

  const std::uint32_t count = end - begin;
  if (count <= params.leaf_size) {
    nodes_[index].split_dim = -1;
    nodes_[index].begin = begin;
    nodes_[index].end = end;
    return index;
  }

  // Per-dimension mean and variance over this node's points (sampled when
  // the node is large; the split only needs a rough variance ranking).
  const std::size_t dim = data.dim();
  std::vector<double> mean(dim, 0.0), m2(dim, 0.0);
  const std::uint32_t stride = count > 1024 ? count / 1024 : 1;
  std::size_t samples = 0;
  for (std::uint32_t i = begin; i < end; i += stride) {
    const float* row = data.Row(ids_[i]);
    ++samples;
    for (std::size_t d = 0; d < dim; ++d) {
      const double delta = row[d] - mean[d];
      mean[d] += delta / static_cast<double>(samples);
      m2[d] += delta * (row[d] - mean[d]);
    }
  }

  // Rank dimensions by variance; draw the split dimension from the top few.
  std::vector<std::size_t> order(dim);
  for (std::size_t d = 0; d < dim; ++d) order[d] = d;
  const std::size_t top =
      std::min(params.top_dims == 0 ? std::size_t{1} : params.top_dims, dim);
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(top),
                    order.end(),
                    [&](std::size_t a, std::size_t b) { return m2[a] > m2[b]; });
  Rng rng(seed_state ^ (static_cast<std::uint64_t>(index) * 0x9E3779B9ULL));
  const std::size_t split_dim = order[rng.UniformInt(top)];
  const float split_value = static_cast<float>(mean[split_dim]);

  // Partition the id range around the split value.
  auto first = ids_.begin() + begin;
  auto last = ids_.begin() + end;
  auto middle = std::partition(first, last, [&](VectorId id) {
    return data.Row(id)[split_dim] < split_value;
  });
  std::uint32_t mid = static_cast<std::uint32_t>(middle - ids_.begin());
  // Degenerate split (all points on one side): fall back to a median split.
  if (mid == begin || mid == end) {
    mid = begin + count / 2;
    std::nth_element(first, ids_.begin() + mid, last,
                     [&](VectorId a, VectorId b) {
                       return data.Row(a)[split_dim] < data.Row(b)[split_dim];
                     });
  }

  nodes_[index].split_dim = static_cast<std::int32_t>(split_dim);
  nodes_[index].split_value = split_value;
  const std::int32_t left = BuildNode(data, begin, mid, params, seed_state);
  const std::int32_t right = BuildNode(data, mid, end, params, seed_state);
  nodes_[index].left = left;
  nodes_[index].right = right;
  return index;
}

void KdTree::SearchCandidates(const Dataset& data, const float* query,
                              std::size_t count,
                              std::vector<VectorId>* out) const {
  if (nodes_.empty() || count == 0) return;

  // Best-bin-first: a min-heap of (lower-bound distance, node index).
  using Entry = std::pair<float, std::int32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> frontier;
  frontier.emplace(0.0f, 0);
  std::size_t collected = 0;

  while (!frontier.empty() && collected < count) {
    const auto [bound, node_index] = frontier.top();
    frontier.pop();
    const Node& node = nodes_[static_cast<std::size_t>(node_index)];
    if (node.split_dim < 0) {
      for (std::uint32_t i = node.begin; i < node.end && collected < count;
           ++i) {
        out->push_back(ids_[i]);
        ++collected;
      }
      continue;
    }
    const float diff =
        query[node.split_dim] - node.split_value;
    const std::int32_t near = diff < 0.0f ? node.left : node.right;
    const std::int32_t far = diff < 0.0f ? node.right : node.left;
    frontier.emplace(bound, near);
    frontier.emplace(bound + diff * diff, far);
  }
  (void)data;  // Leaf scanning uses stored ids only.
}

std::size_t KdTree::MemoryBytes() const {
  return nodes_.size() * sizeof(Node) + ids_.size() * sizeof(VectorId);
}

KdForest KdForest::Build(const Dataset& data, std::size_t num_trees,
                         const KdTreeParams& params, std::uint64_t seed) {
  GASS_CHECK(num_trees > 0);
  KdForest forest;
  forest.data_ = &data;
  forest.trees_.reserve(num_trees);
  Rng rng(seed);
  for (std::size_t t = 0; t < num_trees; ++t) {
    forest.trees_.push_back(KdTree::Build(data, params, rng.Next()));
  }
  return forest;
}

std::vector<VectorId> KdForest::SearchCandidates(const Dataset& data,
                                                 const float* query,
                                                 std::size_t count) const {
  std::vector<VectorId> merged;
  const std::size_t per_tree =
      (count + trees_.size() - 1) / trees_.size();
  for (const KdTree& tree : trees_) {
    tree.SearchCandidates(data, query, per_tree, &merged);
  }
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  if (merged.size() > count) merged.resize(count);
  return merged;
}

std::size_t KdForest::MemoryBytes() const {
  std::size_t total = 0;
  for (const KdTree& tree : trees_) total += tree.MemoryBytes();
  return total;
}

void KdTree::EncodeTo(io::Encoder* enc) const {
  enc->U64(nodes_.size());
  for (const Node& node : nodes_) {
    enc->U32(static_cast<std::uint32_t>(node.split_dim));
    enc->F32(node.split_value);
    enc->U32(static_cast<std::uint32_t>(node.left));
    enc->U32(static_cast<std::uint32_t>(node.right));
    enc->U32(node.begin);
    enc->U32(node.end);
  }
  enc->VecU32(ids_);
}

core::Status KdTree::DecodeFrom(io::Decoder* dec, std::uint64_t expected_n,
                                KdTree* out) {
  KdTree tree;
  constexpr std::size_t kNodeBytes = 6 * sizeof(std::uint32_t);
  const std::uint64_t num_nodes = dec->U64();
  if (!dec->Check(num_nodes <= dec->remaining() / kNodeBytes,
                  "kd node count exceeds remaining payload")) {
    return dec->status();
  }
  tree.nodes_.resize(num_nodes);
  for (std::uint64_t i = 0; i < num_nodes; ++i) {
    Node& node = tree.nodes_[i];
    node.split_dim = static_cast<std::int32_t>(dec->U32());
    node.split_value = dec->F32();
    node.left = static_cast<std::int32_t>(dec->U32());
    node.right = static_cast<std::int32_t>(dec->U32());
    node.begin = dec->U32();
    node.end = dec->U32();
  }
  if (!dec->VecU32(&tree.ids_, expected_n)) return dec->status();
  const auto valid_child = [&](std::int32_t c) {
    return c >= -1 && c < static_cast<std::int64_t>(num_nodes);
  };
  for (std::uint64_t i = 0; i < num_nodes; ++i) {
    const Node& node = tree.nodes_[i];
    if (!dec->Check(valid_child(node.left) && valid_child(node.right),
                    "kd node " + std::to_string(i) +
                        " child link out of range") ||
        !dec->Check(node.begin <= node.end && node.end <= tree.ids_.size(),
                    "kd node " + std::to_string(i) +
                        " leaf range out of bounds")) {
      return dec->status();
    }
  }
  for (core::VectorId id : tree.ids_) {
    if (!dec->Check(id < expected_n,
                    "kd id " + std::to_string(id) + " out of range")) {
      return dec->status();
    }
  }
  GASS_RETURN_IF_ERROR(dec->status());
  *out = std::move(tree);
  return core::Status::Ok();
}

void KdForest::EncodeTo(io::Encoder* enc) const {
  enc->U64(trees_.size());
  for (const KdTree& tree : trees_) tree.EncodeTo(enc);
}

core::Status KdForest::DecodeFrom(io::Decoder* dec, const core::Dataset& data,
                                  KdForest* out) {
  KdForest forest;
  const std::uint64_t num_trees = dec->U64();
  if (!dec->Check(num_trees <= 4096, "kd forest tree count out of range")) {
    return dec->status();
  }
  forest.trees_.resize(num_trees);
  for (std::uint64_t t = 0; t < num_trees; ++t) {
    GASS_RETURN_IF_ERROR(
        KdTree::DecodeFrom(dec, data.size(), &forest.trees_[t]));
  }
  forest.data_ = &data;
  *out = std::move(forest);
  return core::Status::Ok();
}

}  // namespace gass::trees
