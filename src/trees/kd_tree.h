// Randomized truncated K-D trees.
//
// Used (a) as the KD seed-selection structure of EFANNA, SPTAG-KDT and
// HCNNG, and (b) to harvest initial approximate neighbors for EFANNA's base
// graph. Each tree splits on a dimension drawn at random from the locally
// highest-variance dimensions (the randomization that makes a *forest* of
// such trees effective), at the mean value.

#ifndef GASS_TREES_KD_TREE_H_
#define GASS_TREES_KD_TREE_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/status.h"
#include "core/types.h"
#include "io/serialize.h"

namespace gass::trees {

/// K-D tree construction parameters.
struct KdTreeParams {
  std::size_t leaf_size = 32;
  /// Split dimension is drawn uniformly from the top `top_dims`
  /// highest-variance dimensions of the node's point set.
  std::size_t top_dims = 5;
};

/// One randomized K-D tree over (a subset of) a dataset.
class KdTree {
 public:
  /// Builds over all rows of `data`.
  static KdTree Build(const core::Dataset& data, const KdTreeParams& params,
                      std::uint64_t seed);

  /// Builds over the given rows.
  static KdTree BuildOnSubset(const core::Dataset& data,
                              const std::vector<core::VectorId>& ids,
                              const KdTreeParams& params, std::uint64_t seed);

  /// Collects up to `count` candidate ids for `query` by best-bin-first
  /// traversal (descend to the query's leaf, then expand the nearest
  /// unvisited branches). Appends to `out`; may contain ids already in it.
  void SearchCandidates(const core::Dataset& data, const float* query,
                        std::size_t count,
                        std::vector<core::VectorId>* out) const;

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t MemoryBytes() const;

  /// Snapshot codec. Decode validates child links, leaf ranges, and every
  /// stored id against `expected_n`.
  void EncodeTo(io::Encoder* enc) const;
  static core::Status DecodeFrom(io::Decoder* dec, std::uint64_t expected_n,
                                 KdTree* out);

 private:
  struct Node {
    // Interior: split_dim >= 0; leaf: split_dim == -1 with [begin, end)
    // into ids_.
    std::int32_t split_dim = -1;
    float split_value = 0.0f;
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
  };

  std::int32_t BuildNode(const core::Dataset& data, std::uint32_t begin,
                         std::uint32_t end, const KdTreeParams& params,
                         std::uint64_t seed_state);

  std::vector<Node> nodes_;
  std::vector<core::VectorId> ids_;
};

/// A forest of independently randomized K-D trees (what EFANNA/SPTAG build).
class KdForest {
 public:
  static KdForest Build(const core::Dataset& data, std::size_t num_trees,
                        const KdTreeParams& params, std::uint64_t seed);

  /// Union of per-tree candidates, deduplicated, up to `count` ids.
  std::vector<core::VectorId> SearchCandidates(const core::Dataset& data,
                                               const float* query,
                                               std::size_t count) const;

  std::size_t num_trees() const { return trees_.size(); }
  std::size_t MemoryBytes() const;

  /// Snapshot codec. Decode rebinds the forest to `data`.
  void EncodeTo(io::Encoder* enc) const;
  static core::Status DecodeFrom(io::Decoder* dec, const core::Dataset& data,
                                 KdForest* out);

 private:
  std::vector<KdTree> trees_;
  const core::Dataset* data_ = nullptr;
};

}  // namespace gass::trees

#endif  // GASS_TREES_KD_TREE_H_
