#include "trees/bk_means_tree.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "core/distance.h"
#include "core/macros.h"
#include "core/rng.h"

namespace gass::trees {

using core::Dataset;
using core::Rng;
using core::VectorId;

BkMeansTree BkMeansTree::Build(const Dataset& data, const BkTreeParams& params,
                               std::uint64_t seed) {
  GASS_CHECK(!data.empty());
  GASS_CHECK(params.branching >= 2);
  BkMeansTree tree;
  tree.dim_ = data.dim();
  tree.ids_.resize(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    tree.ids_[i] = static_cast<VectorId>(i);
  }
  tree.BuildNode(data, 0, static_cast<std::uint32_t>(data.size()), params,
                 seed);
  return tree;
}

std::int32_t BkMeansTree::AddCentroid(const Dataset& data, std::uint32_t begin,
                                      std::uint32_t end) {
  const std::int32_t index =
      static_cast<std::int32_t>(centroids_.size() / dim_);
  centroids_.resize(centroids_.size() + dim_, 0.0f);
  float* centroid = centroids_.data() + static_cast<std::size_t>(index) * dim_;
  const double count = static_cast<double>(end - begin);
  for (std::uint32_t i = begin; i < end; ++i) {
    const float* row = data.Row(ids_[i]);
    for (std::size_t d = 0; d < dim_; ++d) {
      centroid[d] += static_cast<float>(row[d] / count);
    }
  }
  return index;
}

std::int32_t BkMeansTree::BuildNode(const Dataset& data, std::uint32_t begin,
                                    std::uint32_t end,
                                    const BkTreeParams& params,
                                    std::uint64_t seed_state) {
  const std::int32_t index = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[index].begin = begin;
  nodes_[index].end = end;
  nodes_[index].centroid = AddCentroid(data, begin, end);

  const std::uint32_t count = end - begin;
  if (count <= params.leaf_size) return index;

  const std::size_t k =
      std::min<std::size_t>(params.branching, count);

  // Lloyd's k-means on this node's points, centroids seeded from random
  // members.
  Rng rng(seed_state ^ (static_cast<std::uint64_t>(index) * 0x2545F4914F6CDD1DULL));
  std::vector<float> centers(k * dim_);
  for (std::size_t c = 0; c < k; ++c) {
    const VectorId pick = ids_[begin + rng.UniformInt(count)];
    const float* row = data.Row(pick);
    std::copy(row, row + dim_, centers.begin() + static_cast<std::ptrdiff_t>(c * dim_));
  }

  std::vector<std::uint32_t> assignment(count, 0);
  for (std::size_t iter = 0; iter < params.kmeans_iters; ++iter) {
    bool changed = false;
    for (std::uint32_t i = 0; i < count; ++i) {
      const float* row = data.Row(ids_[begin + i]);
      float best = 3.402823466e38f;
      std::uint32_t best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const float d = core::L2Sq(row, centers.data() + c * dim_, dim_);
        if (d < best) {
          best = d;
          best_c = static_cast<std::uint32_t>(c);
        }
      }
      if (assignment[i] != best_c) {
        assignment[i] = best_c;
        changed = true;
      }
    }
    // Recompute centers.
    std::vector<double> sums(k * dim_, 0.0);
    std::vector<std::size_t> sizes(k, 0);
    for (std::uint32_t i = 0; i < count; ++i) {
      const float* row = data.Row(ids_[begin + i]);
      const std::uint32_t c = assignment[i];
      ++sizes[c];
      for (std::size_t d = 0; d < dim_; ++d) sums[c * dim_ + d] += row[d];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (sizes[c] == 0) {  // Re-seed an empty cluster.
        const VectorId pick = ids_[begin + rng.UniformInt(count)];
        const float* row = data.Row(pick);
        std::copy(row, row + dim_,
                  centers.begin() + static_cast<std::ptrdiff_t>(c * dim_));
        continue;
      }
      for (std::size_t d = 0; d < dim_; ++d) {
        centers[c * dim_ + d] =
            static_cast<float>(sums[c * dim_ + d] / static_cast<double>(sizes[c]));
      }
    }
    if (!changed) break;
  }

  // Balance: cap each cluster at ceil(count / k); spill overflow to the
  // next-nearest under-capacity centroid.
  const std::size_t cap = (count + k - 1) / k;
  std::vector<std::size_t> sizes(k, 0);
  for (std::uint32_t i = 0; i < count; ++i) ++sizes[assignment[i]];
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t c = assignment[i];
    if (sizes[c] <= cap) continue;
    // Move this point to the nearest centroid with spare capacity.
    const float* row = data.Row(ids_[begin + i]);
    float best = 3.402823466e38f;
    std::int64_t best_c = -1;
    for (std::size_t other = 0; other < k; ++other) {
      if (other == c || sizes[other] >= cap) continue;
      const float d = core::L2Sq(row, centers.data() + other * dim_, dim_);
      if (d < best) {
        best = d;
        best_c = static_cast<std::int64_t>(other);
      }
    }
    if (best_c >= 0) {
      --sizes[c];
      ++sizes[static_cast<std::size_t>(best_c)];
      assignment[i] = static_cast<std::uint32_t>(best_c);
    }
  }

  // Reorder ids_ [begin, end) by cluster and recurse.
  std::vector<VectorId> reordered;
  reordered.reserve(count);
  std::vector<std::uint32_t> starts(k + 1, 0);
  for (std::size_t c = 0; c < k; ++c) {
    starts[c] = begin + static_cast<std::uint32_t>(reordered.size());
    for (std::uint32_t i = 0; i < count; ++i) {
      if (assignment[i] == c) reordered.push_back(ids_[begin + i]);
    }
  }
  starts[k] = end;
  std::copy(reordered.begin(), reordered.end(),
            ids_.begin() + static_cast<std::ptrdiff_t>(begin));

  for (std::size_t c = 0; c < k; ++c) {
    if (starts[c] == starts[c + 1]) continue;
    // A cluster that absorbed everything would recurse forever; split it
    // evenly instead by letting the child see a smaller leaf threshold via
    // plain recursion — the balancing pass above guarantees progress except
    // in the k == 1 degenerate case, which cannot happen (branching >= 2 and
    // count > leaf_size >= 1).
    if (starts[c + 1] - starts[c] == count) {
      const std::uint32_t mid = starts[c] + count / 2;
      const std::int32_t left = BuildNode(data, starts[c], mid, params, seed_state);
      const std::int32_t right = BuildNode(data, mid, end, params, seed_state);
      nodes_[index].children.push_back(left);
      nodes_[index].children.push_back(right);
      return index;
    }
    const std::int32_t child =
        BuildNode(data, starts[c], starts[c + 1], params, seed_state);
    nodes_[index].children.push_back(child);
  }
  return index;
}

void BkMeansTree::SearchCandidates(const Dataset& data, const float* query,
                                   std::size_t count,
                                   std::vector<VectorId>* out) const {
  if (nodes_.empty() || count == 0) return;
  using Entry = std::pair<float, std::int32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> frontier;
  frontier.emplace(0.0f, 0);
  std::size_t collected = 0;
  while (!frontier.empty() && collected < count) {
    const auto [bound, node_index] = frontier.top();
    frontier.pop();
    const Node& node = nodes_[static_cast<std::size_t>(node_index)];
    if (node.IsLeaf()) {
      for (std::uint32_t i = node.begin; i < node.end && collected < count;
           ++i) {
        out->push_back(ids_[i]);
        ++collected;
      }
      continue;
    }
    for (std::int32_t child : node.children) {
      const Node& child_node = nodes_[static_cast<std::size_t>(child)];
      const float d = core::L2Sq(
          query,
          centroids_.data() + static_cast<std::size_t>(child_node.centroid) * dim_,
          dim_);
      frontier.emplace(d, child);
    }
  }
  (void)data;
}

std::size_t BkMeansTree::MemoryBytes() const {
  std::size_t total = ids_.size() * sizeof(VectorId) +
                      centroids_.size() * sizeof(float);
  for (const Node& node : nodes_) {
    total += sizeof(Node) + node.children.size() * sizeof(std::int32_t);
  }
  return total;
}

void BkMeansTree::EncodeTo(io::Encoder* enc) const {
  enc->U64(dim_);
  enc->U64(nodes_.size());
  for (const Node& node : nodes_) {
    enc->U64(node.children.size());
    for (std::int32_t c : node.children) {
      enc->U32(static_cast<std::uint32_t>(c));
    }
    enc->U32(node.begin);
    enc->U32(node.end);
    enc->U32(static_cast<std::uint32_t>(node.centroid));
  }
  enc->VecU32(ids_);
  enc->VecF32(centroids_);
}

core::Status BkMeansTree::DecodeFrom(io::Decoder* dec,
                                     std::uint64_t expected_n,
                                     BkMeansTree* out) {
  BkMeansTree tree;
  tree.dim_ = dec->U64();
  const std::uint64_t num_nodes = dec->U64();
  if (!dec->Check(tree.dim_ > 0 && tree.dim_ <= (1u << 24),
                  "bkt dimension out of range") ||
      !dec->Check(num_nodes <= dec->remaining() / (4 * sizeof(std::uint32_t)),
                  "bkt node count exceeds remaining payload")) {
    return dec->status();
  }
  tree.nodes_.resize(num_nodes);
  for (std::uint64_t i = 0; i < num_nodes && dec->ok(); ++i) {
    Node& node = tree.nodes_[i];
    const std::uint64_t num_children = dec->U64();
    if (!dec->Check(num_children <=
                        dec->remaining() / sizeof(std::uint32_t),
                    "bkt child count exceeds remaining payload")) {
      return dec->status();
    }
    node.children.resize(num_children);
    for (std::uint64_t c = 0; c < num_children; ++c) {
      node.children[c] = static_cast<std::int32_t>(dec->U32());
    }
    node.begin = dec->U32();
    node.end = dec->U32();
    node.centroid = static_cast<std::int32_t>(dec->U32());
  }
  if (!dec->VecU32(&tree.ids_, expected_n) ||
      !dec->VecF32(&tree.centroids_, dec->remaining())) {
    return dec->status();
  }
  if (!dec->Check(tree.centroids_.size() % tree.dim_ == 0,
                  "bkt centroid array not a multiple of dim")) {
    return dec->status();
  }
  const std::int64_t num_centroids = tree.centroids_.size() / tree.dim_;
  for (std::uint64_t i = 0; i < num_nodes; ++i) {
    const Node& node = tree.nodes_[i];
    for (std::int32_t c : node.children) {
      if (!dec->Check(c >= 0 && c < static_cast<std::int64_t>(num_nodes),
                      "bkt node " + std::to_string(i) +
                          " child link out of range")) {
        return dec->status();
      }
    }
    if (!dec->Check(node.centroid >= -1 && node.centroid < num_centroids,
                    "bkt node " + std::to_string(i) +
                        " centroid index out of range") ||
        !dec->Check(node.begin <= node.end && node.end <= tree.ids_.size(),
                    "bkt node " + std::to_string(i) +
                        " leaf range out of bounds")) {
      return dec->status();
    }
  }
  for (core::VectorId id : tree.ids_) {
    if (!dec->Check(id < expected_n,
                    "bkt id " + std::to_string(id) + " out of range")) {
      return dec->status();
    }
  }
  GASS_RETURN_IF_ERROR(dec->status());
  *out = std::move(tree);
  return core::Status::Ok();
}

}  // namespace gass::trees
