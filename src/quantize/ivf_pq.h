// IVF-PQ (Jégou et al., paper Section 2): a coarse k-means partitions the
// data into posting lists; each member is stored as a PQ code of its
// residual-free vector. Queries probe the nprobe nearest lists and rank
// members by ADC distance.
//
// Besides being a classic baseline family, IVF-PQ backs the prototype of
// the paper's research direction (2): using a scalable structure to find
// neighbor candidates during graph construction
// (methods::IiBaselineParams::candidate_source).

#ifndef GASS_QUANTIZE_IVF_PQ_H_
#define GASS_QUANTIZE_IVF_PQ_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/neighbor.h"
#include "core/stats.h"
#include "core/status.h"
#include "io/serialize.h"
#include "quantize/product_quantizer.h"

namespace gass::quantize {

/// IVF-PQ parameters.
struct IvfPqParams {
  std::size_t num_lists = 64;       ///< Coarse codebook size (nlist).
  std::size_t kmeans_iters = 10;
  PqParams pq;
};

/// Inverted-file index with PQ-compressed postings.
class IvfPqIndex {
 public:
  static IvfPqIndex Build(const core::Dataset& data, const IvfPqParams& params,
                          std::uint64_t seed);

  /// ANN search probing `nprobe` lists; distances are ADC estimates, then
  /// optionally re-ranked exactly against `data` when `rerank` > 0 (the
  /// top `rerank` ADC candidates are re-scored with true distances).
  std::vector<core::Neighbor> Search(const core::Dataset& data,
                                     const float* query, std::size_t k,
                                     std::size_t nprobe,
                                     std::size_t rerank = 0,
                                     core::SearchStats* stats = nullptr) const;

  /// Candidate ids from the `nprobe` nearest lists, ADC-ranked, capped at
  /// `count` — the graph-construction assist.
  std::vector<core::VectorId> Candidates(const float* query,
                                         std::size_t count,
                                         std::size_t nprobe) const;

  std::size_t num_lists() const { return lists_.size(); }
  std::size_t MemoryBytes() const;

  /// Snapshot codec. Decode validates every posting-list id against
  /// `expected_n` and each code block against the PQ code size.
  void EncodeTo(io::Encoder* enc) const;
  static core::Status DecodeFrom(io::Decoder* dec, std::uint64_t expected_n,
                                 IvfPqIndex* out);

 private:
  struct List {
    std::vector<core::VectorId> ids;
    std::vector<std::uint8_t> codes;  ///< ids.size() × code_size.
  };

  std::vector<std::size_t> NearestLists(const float* query,
                                        std::size_t nprobe) const;

  std::size_t dim_ = 0;
  ProductQuantizer pq_;
  std::vector<float> coarse_centroids_;  ///< num_lists × dim.
  std::vector<List> lists_;
};

}  // namespace gass::quantize

#endif  // GASS_QUANTIZE_IVF_PQ_H_
