#include "quantize/scalar_quantizer.h"

#include <algorithm>
#include <cmath>

#include "core/macros.h"

namespace gass::quantize {

ScalarQuantizer ScalarQuantizer::Train(const core::Dataset& data) {
  GASS_CHECK(!data.empty());
  const std::size_t dim = data.dim();
  ScalarQuantizer sq;
  sq.mins_.assign(dim, 3.402823466e38f);
  std::vector<float> maxs(dim, -3.402823466e38f);
  for (core::VectorId i = 0; i < data.size(); ++i) {
    const float* row = data.Row(i);
    for (std::size_t d = 0; d < dim; ++d) {
      sq.mins_[d] = std::min(sq.mins_[d], row[d]);
      maxs[d] = std::max(maxs[d], row[d]);
    }
  }
  sq.scales_.resize(dim);
  for (std::size_t d = 0; d < dim; ++d) {
    sq.scales_[d] = std::max(1e-12f, (maxs[d] - sq.mins_[d]) / 255.0f);
  }
  return sq;
}

void ScalarQuantizer::Encode(const float* vector, std::uint8_t* code) const {
  for (std::size_t d = 0; d < dim(); ++d) {
    const float cell = (vector[d] - mins_[d]) / scales_[d];
    code[d] = static_cast<std::uint8_t>(
        std::clamp(std::lround(cell), 0L, 255L));
  }
}

void ScalarQuantizer::Decode(const std::uint8_t* code, float* vector) const {
  for (std::size_t d = 0; d < dim(); ++d) {
    vector[d] = mins_[d] + static_cast<float>(code[d]) * scales_[d];
  }
}

void ScalarQuantizer::EncodeTo(io::Encoder* enc) const {
  enc->VecF32(mins_);
  enc->VecF32(scales_);
}

core::Status ScalarQuantizer::DecodeFrom(io::Decoder* dec,
                                         ScalarQuantizer* out) {
  ScalarQuantizer sq;
  dec->VecF32(&sq.mins_, dec->remaining());
  dec->VecF32(&sq.scales_, dec->remaining());
  GASS_RETURN_IF_ERROR(dec->status());
  if (sq.mins_.size() != sq.scales_.size() || sq.mins_.empty()) {
    dec->Fail("scalar quantizer min/scale size mismatch");
    return dec->status();
  }
  *out = std::move(sq);
  return core::Status::Ok();
}

float ScalarQuantizer::AsymmetricL2Sq(const float* query,
                                      const std::uint8_t* code) const {
  float acc = 0.0f;
  for (std::size_t d = 0; d < dim(); ++d) {
    const float decoded =
        mins_[d] + static_cast<float>(code[d]) * scales_[d];
    const float delta = query[d] - decoded;
    acc += delta * delta;
  }
  return acc;
}

}  // namespace gass::quantize
