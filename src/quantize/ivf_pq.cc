#include "quantize/ivf_pq.h"

#include <algorithm>
#include <numeric>

#include "core/distance.h"
#include "core/macros.h"
#include "core/rng.h"

namespace gass::quantize {

using core::Neighbor;
using core::Rng;
using core::VectorId;

IvfPqIndex IvfPqIndex::Build(const core::Dataset& data,
                             const IvfPqParams& params, std::uint64_t seed) {
  GASS_CHECK(!data.empty());
  IvfPqIndex index;
  index.dim_ = data.dim();
  const std::size_t nlist =
      std::max<std::size_t>(1, std::min(params.num_lists, data.size()));
  Rng rng(seed);

  // Coarse k-means.
  index.coarse_centroids_.resize(nlist * data.dim());
  for (std::size_t c = 0; c < nlist; ++c) {
    const float* row =
        data.Row(static_cast<VectorId>(rng.UniformInt(data.size())));
    std::copy(row, row + data.dim(),
              index.coarse_centroids_.begin() +
                  static_cast<std::ptrdiff_t>(c * data.dim()));
  }
  std::vector<std::uint32_t> assignment(data.size(), 0);
  for (std::size_t iter = 0; iter < params.kmeans_iters; ++iter) {
    bool changed = false;
    for (VectorId i = 0; i < data.size(); ++i) {
      const float* row = data.Row(i);
      float best = 3.402823466e38f;
      std::uint32_t best_c = 0;
      for (std::size_t c = 0; c < nlist; ++c) {
        const float d = core::L2Sq(
            row, index.coarse_centroids_.data() + c * data.dim(),
            data.dim());
        if (d < best) {
          best = d;
          best_c = static_cast<std::uint32_t>(c);
        }
      }
      if (iter == 0 || assignment[i] != best_c) {
        assignment[i] = best_c;
        changed = true;
      }
    }
    std::vector<double> sums(nlist * data.dim(), 0.0);
    std::vector<std::size_t> counts(nlist, 0);
    for (VectorId i = 0; i < data.size(); ++i) {
      const float* row = data.Row(i);
      const std::uint32_t c = assignment[i];
      ++counts[c];
      for (std::size_t d = 0; d < data.dim(); ++d) {
        sums[c * data.dim() + d] += row[d];
      }
    }
    for (std::size_t c = 0; c < nlist; ++c) {
      if (counts[c] == 0) {
        const float* row =
            data.Row(static_cast<VectorId>(rng.UniformInt(data.size())));
        std::copy(row, row + data.dim(),
                  index.coarse_centroids_.begin() +
                      static_cast<std::ptrdiff_t>(c * data.dim()));
        continue;
      }
      for (std::size_t d = 0; d < data.dim(); ++d) {
        index.coarse_centroids_[c * data.dim() + d] = static_cast<float>(
            sums[c * data.dim() + d] / static_cast<double>(counts[c]));
      }
    }
    if (!changed) break;
  }

  // PQ codebooks over the raw vectors, codes grouped by list.
  index.pq_ = ProductQuantizer::Train(data, params.pq, rng.Next());
  index.lists_.resize(nlist);
  const std::size_t code_size = index.pq_.code_size();
  std::vector<std::uint8_t> code(code_size);
  for (VectorId i = 0; i < data.size(); ++i) {
    List& list = index.lists_[assignment[i]];
    list.ids.push_back(i);
    index.pq_.Encode(data.Row(i), code.data());
    list.codes.insert(list.codes.end(), code.begin(), code.end());
  }
  return index;
}

std::vector<std::size_t> IvfPqIndex::NearestLists(const float* query,
                                                  std::size_t nprobe) const {
  std::vector<std::size_t> order(lists_.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<float> dists(lists_.size());
  for (std::size_t c = 0; c < lists_.size(); ++c) {
    dists[c] =
        core::L2Sq(query, coarse_centroids_.data() + c * dim_, dim_);
  }
  nprobe = std::min(nprobe, order.size());
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(nprobe),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      return dists[a] < dists[b];
                    });
  order.resize(nprobe);
  return order;
}

std::vector<Neighbor> IvfPqIndex::Search(const core::Dataset& data,
                                         const float* query, std::size_t k,
                                         std::size_t nprobe,
                                         std::size_t rerank,
                                         core::SearchStats* stats) const {
  core::Timer timer;
  const std::vector<float> table = pq_.BuildAdcTable(query);
  const std::size_t pool_size = std::max(k, rerank);
  core::CandidatePool pool(pool_size);
  std::uint64_t adc_evals = 0;
  for (const std::size_t list_index : NearestLists(query, nprobe)) {
    const List& list = lists_[list_index];
    const std::size_t code_size = pq_.code_size();
    for (std::size_t i = 0; i < list.ids.size(); ++i) {
      const float d =
          pq_.AdcDistance(table, list.codes.data() + i * code_size);
      ++adc_evals;
      if (d < pool.WorstDistance()) pool.Insert(Neighbor(list.ids[i], d));
    }
  }

  std::vector<Neighbor> result;
  if (rerank > 0) {
    // Exact re-ranking of the ADC shortlist through a DistanceComputer:
    // full-vector evaluations are batched (rows prefetched ahead of the
    // kernel call) and counted exactly as before, one per shortlist entry.
    core::DistanceComputer dc(data);
    core::CandidatePool exact(k);
    const auto& shortlist = pool.contents();
    constexpr std::size_t kChunk = core::DistanceComputer::kBatchChunk;
    VectorId ids[kChunk];
    float dist[kChunk];
    std::size_t i = 0;
    while (i < shortlist.size()) {
      std::size_t m = 0;
      for (; i < shortlist.size() && m < kChunk; ++i) {
        dc.Prefetch(shortlist[i].id);
        ids[m++] = shortlist[i].id;
      }
      dc.ToQueryBatch(query, ids, m, dist);
      for (std::size_t j = 0; j < m; ++j) {
        if (dist[j] < exact.WorstDistance()) {
          exact.Insert(Neighbor(ids[j], dist[j]));
        }
      }
    }
    if (stats != nullptr) stats->distance_computations += dc.count();
    result = exact.TopK(k);
  } else {
    result = pool.TopK(k);
  }
  if (stats != nullptr) {
    // ADC lookups are far cheaper than full distances; reported separately
    // via hops to keep the distance counter comparable across methods.
    stats->hops += adc_evals;
    stats->elapsed_seconds += timer.Seconds();
  }
  return result;
}

std::vector<VectorId> IvfPqIndex::Candidates(const float* query,
                                             std::size_t count,
                                             std::size_t nprobe) const {
  const std::vector<float> table = pq_.BuildAdcTable(query);
  core::CandidatePool pool(count);
  for (const std::size_t list_index : NearestLists(query, nprobe)) {
    const List& list = lists_[list_index];
    const std::size_t code_size = pq_.code_size();
    for (std::size_t i = 0; i < list.ids.size(); ++i) {
      const float d =
          pq_.AdcDistance(table, list.codes.data() + i * code_size);
      if (d < pool.WorstDistance()) pool.Insert(Neighbor(list.ids[i], d));
    }
  }
  std::vector<VectorId> ids;
  ids.reserve(pool.size());
  for (const Neighbor& nb : pool.contents()) ids.push_back(nb.id);
  return ids;
}

void IvfPqIndex::EncodeTo(io::Encoder* enc) const {
  enc->U64(dim_);
  pq_.EncodeTo(enc);
  enc->VecF32(coarse_centroids_);
  enc->U64(lists_.size());
  for (const List& list : lists_) {
    enc->VecU32(list.ids);
    enc->VecU8(list.codes);
  }
}

core::Status IvfPqIndex::DecodeFrom(io::Decoder* dec,
                                    std::uint64_t expected_n,
                                    IvfPqIndex* out) {
  IvfPqIndex index;
  index.dim_ = dec->U64();
  GASS_RETURN_IF_ERROR(ProductQuantizer::DecodeFrom(dec, &index.pq_));
  if (!dec->Check(index.pq_.dim() == index.dim_,
                  "ivfpq sub-quantizer dimension mismatch")) {
    return dec->status();
  }
  dec->VecF32(&index.coarse_centroids_, dec->remaining());
  const std::uint64_t num_lists = dec->U64();
  GASS_RETURN_IF_ERROR(dec->status());
  if (index.coarse_centroids_.size() != num_lists * index.dim_ ||
      num_lists == 0) {
    dec->Fail("ivfpq coarse centroid array size mismatch");
    return dec->status();
  }
  const std::size_t code_size = index.pq_.code_size();
  index.lists_.resize(num_lists);
  for (std::uint64_t l = 0; l < num_lists && dec->ok(); ++l) {
    List& list = index.lists_[l];
    if (!dec->VecU32(&list.ids, expected_n) ||
        !dec->VecU8(&list.codes, dec->remaining())) {
      return dec->status();
    }
    if (!dec->Check(list.codes.size() == list.ids.size() * code_size,
                    "ivfpq list " + std::to_string(l) +
                        " code block size mismatch")) {
      return dec->status();
    }
    for (core::VectorId id : list.ids) {
      if (!dec->Check(id < expected_n, "ivfpq posting id " +
                                           std::to_string(id) +
                                           " out of range")) {
        return dec->status();
      }
    }
  }
  GASS_RETURN_IF_ERROR(dec->status());
  *out = std::move(index);
  return core::Status::Ok();
}

std::size_t IvfPqIndex::MemoryBytes() const {
  std::size_t total = coarse_centroids_.size() * sizeof(float) +
                      pq_.MemoryBytes();
  for (const List& list : lists_) {
    total += list.ids.size() * sizeof(VectorId) + list.codes.size();
  }
  return total;
}

}  // namespace gass::quantize
