// Product quantization (Jégou et al., paper Section 2): the vector is split
// into M subvectors, each quantized by its own k-means codebook; asymmetric
// distances are computed from a per-query lookup table (ADC).

#ifndef GASS_QUANTIZE_PRODUCT_QUANTIZER_H_
#define GASS_QUANTIZE_PRODUCT_QUANTIZER_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/status.h"
#include "io/serialize.h"

namespace gass::quantize {

/// PQ training parameters.
struct PqParams {
  std::size_t num_subspaces = 8;     ///< M.
  std::size_t codebook_size = 256;   ///< ks (fits one uint8 per subspace).
  std::size_t kmeans_iters = 10;
};

/// A trained product quantizer.
class ProductQuantizer {
 public:
  static ProductQuantizer Train(const core::Dataset& data,
                                const PqParams& params, std::uint64_t seed);

  std::size_t dim() const { return dim_; }
  std::size_t num_subspaces() const { return starts_.size() - 1; }
  std::size_t code_size() const { return num_subspaces(); }

  /// Encodes one vector into num_subspaces() bytes.
  void Encode(const float* vector, std::uint8_t* code) const;

  /// Decodes a code into the concatenation of its centroids.
  void Decode(const std::uint8_t* code, float* vector) const;

  /// Builds the query's ADC table: num_subspaces × codebook_size partial
  /// squared distances.
  std::vector<float> BuildAdcTable(const float* query) const;

  /// Squared-distance estimate from an ADC table and a code.
  float AdcDistance(const std::vector<float>& table,
                    const std::uint8_t* code) const {
    float acc = 0.0f;
    for (std::size_t m = 0; m < num_subspaces(); ++m) {
      acc += table[m * codebook_size_ + code[m]];
    }
    return acc;
  }

  std::size_t codebook_size() const { return codebook_size_; }
  std::size_t MemoryBytes() const {
    return centroids_.size() * sizeof(float);
  }

  /// Snapshot codec. Decode re-derives the codebook offsets from the stored
  /// subspace boundaries and validates the centroid array size against them.
  void EncodeTo(io::Encoder* enc) const;
  static core::Status DecodeFrom(io::Decoder* dec, ProductQuantizer* out);

 private:
  std::size_t SubspaceLength(std::size_t m) const {
    return starts_[m + 1] - starts_[m];
  }
  const float* Centroid(std::size_t m, std::size_t c) const;

  std::size_t dim_ = 0;
  std::size_t codebook_size_ = 0;
  std::vector<std::size_t> starts_;   ///< Subspace boundaries (M + 1).
  std::vector<float> centroids_;      ///< Per subspace: ks × sublen floats.
  std::vector<std::size_t> offsets_;  ///< Float offset of each subspace's
                                      ///< codebook inside centroids_.
};

}  // namespace gass::quantize

#endif  // GASS_QUANTIZE_PRODUCT_QUANTIZER_H_
