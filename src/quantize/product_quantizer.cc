#include "quantize/product_quantizer.h"

#include <algorithm>
#include <cmath>

#include "core/distance.h"
#include "core/macros.h"
#include "core/rng.h"

namespace gass::quantize {

using core::Rng;
using core::VectorId;

const float* ProductQuantizer::Centroid(std::size_t m, std::size_t c) const {
  return centroids_.data() + offsets_[m] + c * SubspaceLength(m);
}

ProductQuantizer ProductQuantizer::Train(const core::Dataset& data,
                                         const PqParams& params,
                                         std::uint64_t seed) {
  GASS_CHECK(!data.empty());
  GASS_CHECK(params.codebook_size >= 2 && params.codebook_size <= 256);
  ProductQuantizer pq;
  pq.dim_ = data.dim();
  const std::size_t subspaces =
      std::max<std::size_t>(1, std::min(params.num_subspaces, data.dim()));
  pq.codebook_size_ =
      std::min(params.codebook_size, data.size());
  pq.starts_.resize(subspaces + 1);
  for (std::size_t m = 0; m <= subspaces; ++m) {
    pq.starts_[m] = m * data.dim() / subspaces;
  }
  pq.offsets_.resize(subspaces);

  Rng rng(seed);
  std::size_t total_floats = 0;
  for (std::size_t m = 0; m < subspaces; ++m) {
    pq.offsets_[m] = total_floats;
    total_floats += pq.codebook_size_ * pq.SubspaceLength(m);
  }
  pq.centroids_.assign(total_floats, 0.0f);

  // Per-subspace Lloyd's k-means.
  std::vector<std::uint32_t> assignment(data.size());
  for (std::size_t m = 0; m < subspaces; ++m) {
    const std::size_t begin = pq.starts_[m];
    const std::size_t len = pq.SubspaceLength(m);
    float* codebook = pq.centroids_.data() + pq.offsets_[m];

    // Seed centroids from random points.
    for (std::size_t c = 0; c < pq.codebook_size_; ++c) {
      const float* row =
          data.Row(static_cast<VectorId>(rng.UniformInt(data.size())));
      std::copy(row + begin, row + begin + len, codebook + c * len);
    }
    for (std::size_t iter = 0; iter < params.kmeans_iters; ++iter) {
      bool changed = false;
      for (VectorId i = 0; i < data.size(); ++i) {
        const float* sub = data.Row(i) + begin;
        float best = 3.402823466e38f;
        std::uint32_t best_c = 0;
        for (std::size_t c = 0; c < pq.codebook_size_; ++c) {
          const float d = core::L2Sq(sub, codebook + c * len, len);
          if (d < best) {
            best = d;
            best_c = static_cast<std::uint32_t>(c);
          }
        }
        if (iter == 0 || assignment[i] != best_c) {
          assignment[i] = best_c;
          changed = true;
        }
      }
      std::vector<double> sums(pq.codebook_size_ * len, 0.0);
      std::vector<std::size_t> counts(pq.codebook_size_, 0);
      for (VectorId i = 0; i < data.size(); ++i) {
        const float* sub = data.Row(i) + begin;
        const std::uint32_t c = assignment[i];
        ++counts[c];
        for (std::size_t d = 0; d < len; ++d) sums[c * len + d] += sub[d];
      }
      for (std::size_t c = 0; c < pq.codebook_size_; ++c) {
        if (counts[c] == 0) {
          const float* row =
              data.Row(static_cast<VectorId>(rng.UniformInt(data.size())));
          std::copy(row + begin, row + begin + len, codebook + c * len);
          continue;
        }
        for (std::size_t d = 0; d < len; ++d) {
          codebook[c * len + d] = static_cast<float>(
              sums[c * len + d] / static_cast<double>(counts[c]));
        }
      }
      if (!changed) break;
    }
  }
  return pq;
}

void ProductQuantizer::Encode(const float* vector, std::uint8_t* code) const {
  for (std::size_t m = 0; m < num_subspaces(); ++m) {
    const std::size_t len = SubspaceLength(m);
    const float* sub = vector + starts_[m];
    float best = 3.402823466e38f;
    std::uint8_t best_c = 0;
    for (std::size_t c = 0; c < codebook_size_; ++c) {
      const float d = core::L2Sq(sub, Centroid(m, c), len);
      if (d < best) {
        best = d;
        best_c = static_cast<std::uint8_t>(c);
      }
    }
    code[m] = best_c;
  }
}

void ProductQuantizer::Decode(const std::uint8_t* code, float* vector) const {
  for (std::size_t m = 0; m < num_subspaces(); ++m) {
    const float* centroid = Centroid(m, code[m]);
    std::copy(centroid, centroid + SubspaceLength(m), vector + starts_[m]);
  }
}

void ProductQuantizer::EncodeTo(io::Encoder* enc) const {
  enc->U64(dim_);
  enc->U64(codebook_size_);
  enc->U64(starts_.size());
  for (std::size_t s : starts_) enc->U64(s);
  enc->VecF32(centroids_);
}

core::Status ProductQuantizer::DecodeFrom(io::Decoder* dec,
                                          ProductQuantizer* out) {
  ProductQuantizer pq;
  pq.dim_ = dec->U64();
  pq.codebook_size_ = dec->U64();
  const std::uint64_t num_starts = dec->U64();
  if (!dec->Check(pq.dim_ > 0 && pq.dim_ <= (1u << 24),
                  "pq dimension out of range") ||
      !dec->Check(pq.codebook_size_ > 0 && pq.codebook_size_ <= 256,
                  "pq codebook size out of range") ||
      !dec->Check(num_starts >= 2 && num_starts <= pq.dim_ + 1,
                  "pq subspace count out of range") ||
      !dec->Check(num_starts <= dec->remaining() / sizeof(std::uint64_t),
                  "pq subspace table exceeds remaining payload")) {
    return dec->status();
  }
  pq.starts_.resize(num_starts);
  for (std::uint64_t m = 0; m < num_starts; ++m) {
    pq.starts_[m] = dec->U64();
  }
  GASS_RETURN_IF_ERROR(dec->status());
  if (pq.starts_.front() != 0 || pq.starts_.back() != pq.dim_) {
    dec->Fail("pq subspace boundaries do not span the dimension");
    return dec->status();
  }
  // Offsets are derived state: recompute rather than trust the file.
  std::size_t offset = 0;
  pq.offsets_.resize(num_starts - 1);
  for (std::size_t m = 0; m + 1 < num_starts; ++m) {
    if (pq.starts_[m + 1] <= pq.starts_[m]) {
      dec->Fail("pq subspace boundaries not strictly increasing");
      return dec->status();
    }
    pq.offsets_[m] = offset;
    offset += pq.codebook_size_ * (pq.starts_[m + 1] - pq.starts_[m]);
  }
  if (!dec->VecF32(&pq.centroids_, offset)) return dec->status();
  if (pq.centroids_.size() != offset) {
    dec->Fail("pq centroid array size mismatch");
    return dec->status();
  }
  *out = std::move(pq);
  return core::Status::Ok();
}

std::vector<float> ProductQuantizer::BuildAdcTable(const float* query) const {
  std::vector<float> table(num_subspaces() * codebook_size_);
  for (std::size_t m = 0; m < num_subspaces(); ++m) {
    const std::size_t len = SubspaceLength(m);
    const float* sub = query + starts_[m];
    for (std::size_t c = 0; c < codebook_size_; ++c) {
      table[m * codebook_size_ + c] = core::L2Sq(sub, Centroid(m, c), len);
    }
  }
  return table;
}

}  // namespace gass::quantize
