// Scalar quantization (Section 2 of the paper): each dimension is mapped
// independently onto an 8-bit grid between its observed min and max.

#ifndef GASS_QUANTIZE_SCALAR_QUANTIZER_H_
#define GASS_QUANTIZE_SCALAR_QUANTIZER_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/status.h"
#include "io/serialize.h"

namespace gass::quantize {

/// Per-dimension uint8 quantizer trained on a dataset.
class ScalarQuantizer {
 public:
  /// Learns per-dimension [min, max] ranges from `data`.
  static ScalarQuantizer Train(const core::Dataset& data);

  std::size_t dim() const { return mins_.size(); }

  /// Encodes one vector to dim() bytes.
  void Encode(const float* vector, std::uint8_t* code) const;

  /// Decodes a code back to floats (the cell midpoint).
  void Decode(const std::uint8_t* code, float* vector) const;

  /// Squared L2 between a raw query and an encoded vector, computed against
  /// the decoded midpoints (asymmetric distance).
  float AsymmetricL2Sq(const float* query, const std::uint8_t* code) const;

  std::size_t MemoryBytes() const {
    return (mins_.size() + scales_.size()) * sizeof(float);
  }

  /// Snapshot codec.
  void EncodeTo(io::Encoder* enc) const;
  static core::Status DecodeFrom(io::Decoder* dec, ScalarQuantizer* out);

 private:
  std::vector<float> mins_;
  std::vector<float> scales_;  ///< (max - min) / 255, floored at epsilon.
};

}  // namespace gass::quantize

#endif  // GASS_QUANTIZE_SCALAR_QUANTIZER_H_
