#include "knngraph/exact_knn_graph.h"

#include <algorithm>
#include <atomic>

#include "core/macros.h"
#include "core/neighbor.h"
#include "core/rng.h"
#include "core/thread_pool.h"

namespace gass::knngraph {

using core::CandidatePool;
using core::Dataset;
using core::DistanceComputer;
using core::Graph;
using core::Neighbor;
using core::VectorId;

core::Graph ExactKnnGraph(DistanceComputer& dc, std::size_t k,
                          std::size_t threads) {
  const Dataset& data = dc.dataset();
  GASS_CHECK(k > 0 && k < data.size());
  Graph graph(data.size());
  std::atomic<std::uint64_t> distances{0};
  core::ParallelFor(data.size(), threads, [&](std::size_t, std::size_t v) {
    CandidatePool pool(k);
    const float* row = data.Row(static_cast<VectorId>(v));
    for (VectorId u = 0; u < data.size(); ++u) {
      if (u == v) continue;
      const float d = core::L2Sq(row, data.Row(u), data.dim());
      if (d < pool.WorstDistance()) pool.Insert(Neighbor(u, d));
    }
    distances.fetch_add(data.size() - 1, std::memory_order_relaxed);
    auto& list = graph.MutableNeighbors(static_cast<VectorId>(v));
    for (const Neighbor& nb : pool.contents()) list.push_back(nb.id);
  });
  dc.AddCount(distances.load());
  return graph;
}

void AddExactKnnEdgesOnSubset(DistanceComputer& dc,
                              const std::vector<VectorId>& ids, std::size_t k,
                              Graph* graph) {
  GASS_CHECK(k > 0);
  if (ids.size() < 2) return;
  const std::size_t effective_k = std::min(k, ids.size() - 1);
  for (VectorId v : ids) {
    CandidatePool pool(effective_k);
    for (VectorId u : ids) {
      if (u == v) continue;
      const float d = dc.Between(v, u);
      if (d < pool.WorstDistance()) pool.Insert(Neighbor(u, d));
    }
    for (const Neighbor& nb : pool.contents()) {
      graph->AddEdgeUnique(v, nb.id);
    }
  }
}

double KnnGraphRecall(const Dataset& data, const Graph& graph, std::size_t k,
                      std::size_t sample_size, std::uint64_t seed) {
  GASS_CHECK(graph.size() == data.size());
  core::Rng rng(seed);
  sample_size = std::min(sample_size, data.size());
  std::size_t hits = 0;
  std::size_t total = 0;
  for (std::size_t s = 0; s < sample_size; ++s) {
    const VectorId v = static_cast<VectorId>(rng.UniformInt(data.size()));
    CandidatePool pool(k);
    const float* row = data.Row(v);
    for (VectorId u = 0; u < data.size(); ++u) {
      if (u == v) continue;
      const float d = core::L2Sq(row, data.Row(u), data.dim());
      if (d < pool.WorstDistance()) pool.Insert(Neighbor(u, d));
    }
    const auto& neighbors = graph.Neighbors(v);
    for (const Neighbor& truth : pool.contents()) {
      ++total;
      if (std::find(neighbors.begin(), neighbors.end(), truth.id) !=
          neighbors.end()) {
        ++hits;
      }
    }
  }
  return total == 0 ? 1.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

}  // namespace gass::knngraph
