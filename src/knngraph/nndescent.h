// NNDescent — Neighborhood Propagation (NP), the refinement behind KGraph,
// IEH, EFANNA, and the base graphs of DPG / NSG / SSG.
//
// Starting from an initial graph (random, tree-derived, or hash-derived),
// each iteration proposes "neighbors of neighbors" as new neighbor
// candidates: for every node, sampled new/old neighbors are cross-joined and
// each pair offers itself to the other's list. The per-node list is a
// bounded max-pool ordered by distance. Iterations stop after a fixed count
// or when the update rate falls below `delta` (empirically O(n^1.14) total
// cost, per Dong et al.).

#ifndef GASS_KNNGRAPH_NNDESCENT_H_
#define GASS_KNNGRAPH_NNDESCENT_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/distance.h"
#include "core/graph.h"

namespace gass::knngraph {

/// NNDescent parameters.
struct NnDescentParams {
  std::size_t k = 20;           ///< Neighbor-list size.
  std::size_t iterations = 10;  ///< Maximum refinement rounds.
  std::size_t sample = 10;      ///< New/old neighbors sampled per round (ρ·k).
  double delta = 0.001;         ///< Stop when updates/n·k drops below this.
};

/// Per-iteration progress record (for the ablation bench).
struct NnDescentTrace {
  std::vector<std::uint64_t> updates_per_iteration;
  std::vector<std::uint64_t> distances_per_iteration;
};

/// Runs NNDescent; `init` optionally supplies initial candidate neighbors
/// (e.g. EFANNA's K-D-tree harvest); missing/short lists are topped up with
/// random ids. Returns the refined k-NN graph (directed, ascending-distance
/// neighbor order).
core::Graph NnDescent(core::DistanceComputer& dc,
                      const NnDescentParams& params, std::uint64_t seed,
                      const core::Graph* init = nullptr,
                      NnDescentTrace* trace = nullptr);

}  // namespace gass::knngraph

#endif  // GASS_KNNGRAPH_NNDESCENT_H_
