#include "knngraph/nndescent.h"

#include <algorithm>

#include "core/macros.h"
#include "core/neighbor.h"
#include "core/rng.h"

namespace gass::knngraph {

using core::Dataset;
using core::DistanceComputer;
using core::Graph;
using core::Rng;
using core::VectorId;

namespace {

// One pool entry: neighbor id, distance, and the NNDescent "new" flag that
// makes each pair of nodes get joined only once.
struct Entry {
  VectorId id;
  float distance;
  bool is_new;
};

// Bounded ascending-distance pool with flagged entries.
class Pool {
 public:
  explicit Pool(std::size_t capacity) : capacity_(capacity) {}

  // Returns true if inserted (id absent and better than the worst).
  bool Insert(VectorId id, float distance) {
    if (entries_.size() == capacity_ &&
        distance >= entries_.back().distance) {
      return false;
    }
    for (const Entry& e : entries_) {
      if (e.id == id) return false;
    }
    Entry entry{id, distance, true};
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), distance,
        [](const Entry& e, float d) { return e.distance < d; });
    entries_.insert(it, entry);
    if (entries_.size() > capacity_) entries_.pop_back();
    return true;
  }

  std::vector<Entry>& entries() { return entries_; }
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::size_t capacity_;
  std::vector<Entry> entries_;
};

}  // namespace

Graph NnDescent(DistanceComputer& dc, const NnDescentParams& params,
                std::uint64_t seed, const Graph* init,
                NnDescentTrace* trace) {
  const Dataset& data = dc.dataset();
  const std::size_t n = data.size();
  GASS_CHECK(params.k > 0 && n > params.k);
  Rng rng(seed);

  // Initialize pools from `init` (if given) topped up with random neighbors.
  std::vector<Pool> pools(n, Pool(params.k));
  for (VectorId v = 0; v < n; ++v) {
    if (init != nullptr && v < init->size()) {
      for (VectorId u : init->Neighbors(v)) {
        if (u == v) continue;
        pools[v].Insert(u, dc.Between(v, u));
      }
    }
    std::size_t guard = 0;
    while (pools[v].entries().size() < params.k && guard < params.k * 4) {
      const VectorId u = static_cast<VectorId>(rng.UniformInt(n));
      ++guard;
      if (u == v) continue;
      pools[v].Insert(u, dc.Between(v, u));
    }
  }

  std::vector<std::vector<VectorId>> new_lists(n), old_lists(n);
  std::vector<std::vector<VectorId>> reverse_new(n), reverse_old(n);

  for (std::size_t iter = 0; iter < params.iterations; ++iter) {
    const std::uint64_t distances_before = dc.count();

    // Sample new/old forward lists and clear the "new" flags of sampled
    // entries (so each new pair joins once).
    for (VectorId v = 0; v < n; ++v) {
      new_lists[v].clear();
      old_lists[v].clear();
      reverse_new[v].clear();
      reverse_old[v].clear();
    }
    for (VectorId v = 0; v < n; ++v) {
      std::size_t sampled_new = 0;
      for (Entry& e : pools[v].entries()) {
        if (e.is_new) {
          if (sampled_new < params.sample) {
            new_lists[v].push_back(e.id);
            e.is_new = false;
            ++sampled_new;
          }
        } else {
          if (old_lists[v].size() < params.sample) {
            old_lists[v].push_back(e.id);
          }
        }
      }
    }
    // Reverse lists (bounded by the same sample size, reservoir-free: take
    // the first arrivals, which is the standard cheap approximation).
    for (VectorId v = 0; v < n; ++v) {
      for (VectorId u : new_lists[v]) {
        if (reverse_new[u].size() < params.sample) {
          reverse_new[u].push_back(v);
        }
      }
      for (VectorId u : old_lists[v]) {
        if (reverse_old[u].size() < params.sample) {
          reverse_old[u].push_back(v);
        }
      }
    }

    // Local join: (new ∪ reverse_new) × (new ∪ old ∪ reverse_old).
    // Pairs with a fixed are evaluated through the batched kernels
    // (prefetch, one kernel call per chunk, then the pool inserts in the
    // original pair order — counts and updates unchanged).
    std::uint64_t updates = 0;
    constexpr std::size_t kChunk = core::DistanceComputer::kBatchChunk;
    VectorId chunk[kChunk];
    float dist[kChunk];
    const auto join_against = [&](VectorId a, const VectorId* bs,
                                  std::size_t count) {
      std::size_t i = 0;
      while (i < count) {
        std::size_t m = 0;
        for (; i < count && m < kChunk; ++i) {
          const VectorId b = bs[i];
          if (a == b) continue;
          dc.Prefetch(b);
          chunk[m++] = b;
        }
        if (m == 0) continue;
        dc.BetweenBatch(a, chunk, m, dist);
        for (std::size_t j = 0; j < m; ++j) {
          updates += pools[a].Insert(chunk[j], dist[j]) ? 1 : 0;
          updates += pools[chunk[j]].Insert(a, dist[j]) ? 1 : 0;
        }
      }
    };
    std::vector<VectorId> join_new, join_old;
    for (VectorId v = 0; v < n; ++v) {
      join_new = new_lists[v];
      join_new.insert(join_new.end(), reverse_new[v].begin(),
                      reverse_new[v].end());
      std::sort(join_new.begin(), join_new.end());
      join_new.erase(std::unique(join_new.begin(), join_new.end()),
                     join_new.end());

      join_old = old_lists[v];
      join_old.insert(join_old.end(), reverse_old[v].begin(),
                      reverse_old[v].end());
      std::sort(join_old.begin(), join_old.end());
      join_old.erase(std::unique(join_old.begin(), join_old.end()),
                     join_old.end());

      for (std::size_t i = 0; i < join_new.size(); ++i) {
        const VectorId a = join_new[i];
        // new × new (unordered pairs).
        join_against(a, join_new.data() + i + 1, join_new.size() - i - 1);
        // new × old.
        join_against(a, join_old.data(), join_old.size());
      }
    }

    if (trace != nullptr) {
      trace->updates_per_iteration.push_back(updates);
      trace->distances_per_iteration.push_back(dc.count() - distances_before);
    }
    if (static_cast<double>(updates) <
        params.delta * static_cast<double>(n) *
            static_cast<double>(params.k)) {
      break;
    }
  }

  Graph graph(n);
  for (VectorId v = 0; v < n; ++v) {
    auto& list = graph.MutableNeighbors(v);
    list.reserve(pools[v].entries().size());
    for (const Entry& e : pools[v].entries()) list.push_back(e.id);
  }
  return graph;
}

}  // namespace gass::knngraph
