// Exact k-NN graph construction (quadratic brute force).
//
// Used for small partitions (SPTAG leaves), as ground truth for NNDescent
// quality measurement, and by tests.

#ifndef GASS_KNNGRAPH_EXACT_KNN_GRAPH_H_
#define GASS_KNNGRAPH_EXACT_KNN_GRAPH_H_

#include <cstddef>
#include <vector>

#include "core/dataset.h"
#include "core/distance.h"
#include "core/graph.h"

namespace gass::knngraph {

/// Exact k-NN graph over the full dataset; edge (v -> u) iff u is among v's
/// k nearest. Distances are charged to `dc`.
core::Graph ExactKnnGraph(core::DistanceComputer& dc, std::size_t k,
                          std::size_t threads = 0);

/// Adds exact k-NN edges *within the subset* `ids` to `graph` (global id
/// space); edges are deduplicated against existing lists.
void AddExactKnnEdgesOnSubset(core::DistanceComputer& dc,
                              const std::vector<core::VectorId>& ids,
                              std::size_t k, core::Graph* graph);

/// Fraction of true k-NN edges present in `graph`, estimated over
/// `sample_size` random nodes — the standard k-NN-graph quality measure.
double KnnGraphRecall(const core::Dataset& data, const core::Graph& graph,
                      std::size_t k, std::size_t sample_size,
                      std::uint64_t seed);

}  // namespace gass::knngraph

#endif  // GASS_KNNGRAPH_EXACT_KNN_GRAPH_H_
