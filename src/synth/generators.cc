#include "synth/generators.h"

#include <cmath>
#include <vector>

#include "core/macros.h"
#include "core/rng.h"

namespace gass::synth {

using core::Dataset;
using core::Rng;

Dataset GaussianClusters(std::size_t n, std::size_t dim,
                         const ClusterParams& params, std::uint64_t seed) {
  GASS_CHECK(params.num_clusters > 0);
  GASS_CHECK(params.intrinsic_rank > 0);
  Rng rng(seed);

  const std::size_t rank = std::min(params.intrinsic_rank, dim);

  // Random rank-dimensional basis (not orthonormalized; columns of Gaussian
  // entries give a well-conditioned frame with overwhelming probability,
  // which is all the difficulty profile needs).
  std::vector<float> basis(rank * dim);
  for (float& b : basis) {
    b = static_cast<float>(rng.Normal()) / std::sqrt(static_cast<float>(dim));
  }

  // Cluster centers in the latent space.
  std::vector<float> centers(params.num_clusters * rank);
  for (float& c : centers) {
    c = static_cast<float>(rng.Normal()) * params.center_std;
  }

  Dataset data(n, dim);
  std::vector<float> latent(rank);
  for (core::VectorId i = 0; i < n; ++i) {
    const std::size_t cluster = rng.UniformInt(params.num_clusters);
    for (std::size_t r = 0; r < rank; ++r) {
      latent[r] = centers[cluster * rank + r] +
                  static_cast<float>(rng.Normal()) * params.cluster_std;
    }
    float* row = data.MutableRow(i);
    for (std::size_t d = 0; d < dim; ++d) {
      float value = 0.0f;
      for (std::size_t r = 0; r < rank; ++r) {
        value += latent[r] * basis[r * dim + d];
      }
      row[d] = value + static_cast<float>(rng.Normal()) * params.ambient_noise;
    }
  }
  return data;
}

Dataset UniformHypercube(std::size_t n, std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  Dataset data(n, dim);
  for (core::VectorId i = 0; i < n; ++i) {
    float* row = data.MutableRow(i);
    for (std::size_t d = 0; d < dim; ++d) {
      row[d] = static_cast<float>(rng.UniformDouble());
    }
  }
  return data;
}

Dataset IsotropicGaussian(std::size_t n, std::size_t dim,
                          std::uint64_t seed) {
  Rng rng(seed);
  Dataset data(n, dim);
  for (core::VectorId i = 0; i < n; ++i) {
    float* row = data.MutableRow(i);
    for (std::size_t d = 0; d < dim; ++d) {
      row[d] = static_cast<float>(rng.Normal());
    }
  }
  return data;
}

Dataset PowerLaw(std::size_t n, std::size_t dim, double exponent,
                 std::uint64_t seed) {
  GASS_CHECK(exponent >= 0.0);
  Rng rng(seed);
  Dataset data(n, dim);
  const double inv = 1.0 / (exponent + 1.0);
  for (core::VectorId i = 0; i < n; ++i) {
    float* row = data.MutableRow(i);
    for (std::size_t d = 0; d < dim; ++d) {
      row[d] = static_cast<float>(std::pow(rng.UniformDouble(), inv));
    }
  }
  return data;
}

Dataset RandomWalkSeries(std::size_t n, std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  Dataset data(n, dim);
  for (core::VectorId i = 0; i < n; ++i) {
    float* row = data.MutableRow(i);
    double level = 0.0;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      level += rng.Normal();
      row[d] = static_cast<float>(level);
      sum += level;
      sum_sq += level * level;
    }
    // Z-normalize, the standard preprocessing for data series.
    const double mean = sum / static_cast<double>(dim);
    const double var =
        sum_sq / static_cast<double>(dim) - mean * mean;
    const double std_dev = var > 1e-12 ? std::sqrt(var) : 1.0;
    for (std::size_t d = 0; d < dim; ++d) {
      row[d] = static_cast<float>((row[d] - mean) / std_dev);
    }
  }
  return data;
}

std::size_t ProxyDim(const std::string& name) {
  if (name == "deep") return 96;
  if (name == "sift") return 128;
  if (name == "sald") return 128;
  if (name == "seismic") return 256;
  if (name == "text2img") return 200;
  if (name == "gist") return 960;
  if (name == "imagenet") return 256;
  GASS_CHECK_MSG(false, "unknown dataset proxy '%s'", name.c_str());
  return 0;
}

Dataset MakeDatasetProxy(const std::string& name, std::size_t n,
                         std::uint64_t seed) {
  const std::size_t dim = ProxyDim(name);
  if (name == "deep" || name == "sift" || name == "imagenet") {
    // Easy tier: clustered, low intrinsic rank (paper Fig. 4 puts these at
    // the lowest LID / highest LRC). Clusters overlap — real embedding
    // collections are not separable islands, and graph methods must
    // navigate between regions.
    ClusterParams params;
    params.num_clusters = 32;
    params.intrinsic_rank = 12;
    params.cluster_std = 0.45f;
    params.ambient_noise = 0.05f;
    return GaussianClusters(n, dim, params, seed);
  }
  if (name == "gist") {
    // Medium: wider within-cluster spread over a higher-rank subspace.
    ClusterParams params;
    params.num_clusters = 24;
    params.intrinsic_rank = 48;
    params.cluster_std = 0.7f;
    params.ambient_noise = 0.05f;
    return GaussianClusters(n, dim, params, seed);
  }
  if (name == "sald") {
    return RandomWalkSeries(n, dim, seed);
  }
  if (name == "seismic") {
    // Hard: near-isotropic heavy mixture (highest LID in Fig. 4).
    ClusterParams params;
    params.num_clusters = 4;
    params.intrinsic_rank = dim;
    params.cluster_std = 1.0f;
    params.ambient_noise = 0.25f;
    return GaussianClusters(n, dim, params, seed);
  }
  // text2img: hard cross-modal embeddings — isotropic Gaussian.
  return IsotropicGaussian(n, dim, seed);
}

}  // namespace gass::synth
