// Synthetic dataset generators.
//
// The paper evaluates on seven real collections (Deep, Sift, SALD, Seismic,
// Text-to-Image, GIST, ImageNet) plus three synthetic power-law datasets
// (RandPow0/5/50, Section 4.1). The real collections are not redistributable
// here, so each gets a *proxy generator* that reproduces its dimensionality
// and its difficulty profile — the paper's own Fig. 4 characterizes
// difficulty purely by LID and LRC, and those are what the proxies are tuned
// to (verified by bench_fig04_complexity):
//
//   easy  (low LID, high LRC):  Deep, Sift, ImageNet  -> low-rank Gaussian
//                               cluster mixtures with small isotropic noise
//   medium:                     GIST, SALD            -> higher-rank mixtures
//                               with larger noise
//   hard  (high LID, low LRC):  Seismic, Text2Img,    -> isotropic /
//                               RandPow*                 heavy-tailed data
//
// The power-law datasets are generated exactly per the paper: each component
// follows density f(x) ∝ x^a on [0,1] (a = 0 is uniform; skewness grows
// with a), via inverse-CDF sampling x = U^(1/(a+1)).

#ifndef GASS_SYNTH_GENERATORS_H_
#define GASS_SYNTH_GENERATORS_H_

#include <cstdint>
#include <string>

#include "core/dataset.h"

namespace gass::synth {

/// Parameters for the Gaussian cluster-mixture generator.
struct ClusterParams {
  std::size_t num_clusters = 20;
  /// Rank of the subspace the cluster centers (and within-cluster spread)
  /// live in; lower rank gives lower LID ("easier" data).
  std::size_t intrinsic_rank = 8;
  /// Standard deviation of within-cluster spread along the subspace.
  float cluster_std = 0.15f;
  /// Isotropic full-dimension noise added on top.
  float ambient_noise = 0.01f;
  /// Spread of cluster centers.
  float center_std = 1.0f;
};

/// n vectors of dimension dim from a low-rank Gaussian cluster mixture.
core::Dataset GaussianClusters(std::size_t n, std::size_t dim,
                               const ClusterParams& params,
                               std::uint64_t seed);

/// n vectors uniform in [0,1]^dim — the hardest isotropic case.
core::Dataset UniformHypercube(std::size_t n, std::size_t dim,
                               std::uint64_t seed);

/// n isotropic standard-normal vectors.
core::Dataset IsotropicGaussian(std::size_t n, std::size_t dim,
                                std::uint64_t seed);

/// Power-law dataset per Section 4.1: each component has density ∝ x^a on
/// [0,1]. exponent = 0 reproduces RandPow0 (uniform), 5 RandPow5, 50
/// RandPow50.
core::Dataset PowerLaw(std::size_t n, std::size_t dim, double exponent,
                       std::uint64_t seed);

/// Random-walk "data series" vectors (cumulative sums of Gaussian steps,
/// z-normalized), the standard model for series collections such as SALD.
core::Dataset RandomWalkSeries(std::size_t n, std::size_t dim,
                               std::uint64_t seed);

/// Named dataset proxies matching the paper's seven real collections.
/// `name` is one of: "deep", "sift", "sald", "seismic", "text2img", "gist",
/// "imagenet". Dimensions follow the paper (96/128/128/256/200/960/256).
/// Aborts on an unknown name.
core::Dataset MakeDatasetProxy(const std::string& name, std::size_t n,
                               std::uint64_t seed);

/// The paper's dimensionality for a named proxy.
std::size_t ProxyDim(const std::string& name);

}  // namespace gass::synth

#endif  // GASS_SYNTH_GENERATORS_H_
