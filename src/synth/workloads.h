// Query-workload construction per Section 4.1 ("Queries").
//
// - Hold-out workloads: queries sampled from the collection and removed from
//   the indexed data (the paper's procedure for SALD / ImageNet / Seismic).
// - In-distribution workloads: fresh draws from the same generator with a
//   different seed (the paper's procedure for the power-law datasets).
// - Hardness workloads: dataset vectors perturbed with Gaussian noise of
//   variance σ² ∈ [0.01, 0.1], labelled 1%–10% (the paper's Fig. 15 recipe,
//   after Zoumpatianos et al.).

#ifndef GASS_SYNTH_WORKLOADS_H_
#define GASS_SYNTH_WORKLOADS_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"

namespace gass::synth {

/// Result of carving a hold-out query set from a dataset.
struct HoldOutSplit {
  core::Dataset base;     ///< Vectors to index.
  core::Dataset queries;  ///< Held-out query vectors.
};

/// Removes `num_queries` random rows from `data` to act as queries.
HoldOutSplit SplitHoldOut(core::Dataset data, std::size_t num_queries,
                          std::uint64_t seed);

/// Queries built by adding N(0, σ²) noise to random dataset vectors; the
/// paper reports σ² as a percentage ("1%" = 0.01). Noise is scaled by the
/// per-dataset RMS component magnitude so the percentage keeps its meaning
/// across differently-scaled collections.
core::Dataset NoisyQueries(const core::Dataset& data, std::size_t num_queries,
                           double noise_variance, std::uint64_t seed);

/// Uniform random sample of `count` distinct row ids.
std::vector<core::VectorId> SampleIds(std::size_t n, std::size_t count,
                                      std::uint64_t seed);

}  // namespace gass::synth

#endif  // GASS_SYNTH_WORKLOADS_H_
