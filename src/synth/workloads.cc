#include "synth/workloads.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/macros.h"
#include "core/rng.h"

namespace gass::synth {

using core::Dataset;
using core::Rng;
using core::VectorId;

std::vector<VectorId> SampleIds(std::size_t n, std::size_t count,
                                std::uint64_t seed) {
  GASS_CHECK(count <= n);
  // Partial Fisher-Yates over an index array: exact uniform sampling
  // without replacement.
  std::vector<VectorId> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<VectorId>(i);
  Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + rng.UniformInt(n - i);
    std::swap(ids[i], ids[j]);
  }
  ids.resize(count);
  return ids;
}

HoldOutSplit SplitHoldOut(Dataset data, std::size_t num_queries,
                          std::uint64_t seed) {
  GASS_CHECK(num_queries < data.size());
  std::vector<VectorId> query_ids =
      SampleIds(data.size(), num_queries, seed);
  std::vector<bool> is_query(data.size(), false);
  for (VectorId id : query_ids) is_query[id] = true;

  std::vector<VectorId> base_ids;
  base_ids.reserve(data.size() - num_queries);
  for (VectorId id = 0; id < data.size(); ++id) {
    if (!is_query[id]) base_ids.push_back(id);
  }

  HoldOutSplit split;
  split.queries = data.Select(query_ids);
  split.base = data.Select(base_ids);
  return split;
}

Dataset NoisyQueries(const Dataset& data, std::size_t num_queries,
                     double noise_variance, std::uint64_t seed) {
  GASS_CHECK(!data.empty());
  GASS_CHECK(noise_variance >= 0.0);
  Rng rng(seed);

  // RMS component magnitude of the collection (sampled), so σ is expressed
  // relative to the data scale.
  double sum_sq = 0.0;
  std::size_t samples = 0;
  const std::size_t stride = std::max<std::size_t>(1, data.size() / 1000);
  for (std::size_t i = 0; i < data.size(); i += stride) {
    const float* row = data.Row(static_cast<VectorId>(i));
    for (std::size_t d = 0; d < data.dim(); ++d) {
      sum_sq += static_cast<double>(row[d]) * row[d];
      ++samples;
    }
  }
  const double rms = samples > 0 ? std::sqrt(sum_sq / samples) : 1.0;
  const double sigma = std::sqrt(noise_variance) * rms;

  Dataset queries(num_queries, data.dim());
  for (VectorId q = 0; q < num_queries; ++q) {
    const VectorId src = static_cast<VectorId>(rng.UniformInt(data.size()));
    const float* row = data.Row(src);
    float* out = queries.MutableRow(q);
    for (std::size_t d = 0; d < data.dim(); ++d) {
      out[d] = row[d] + static_cast<float>(rng.Normal() * sigma);
    }
  }
  return queries;
}

}  // namespace gass::synth
