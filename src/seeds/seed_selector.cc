#include "seeds/seed_selector.h"

#include <algorithm>
#include <cmath>

#include "core/beam_search.h"
#include "core/macros.h"
#include "core/neighbor.h"
#include "core/visited.h"
#include "diversify/diversify.h"

namespace gass::seeds {

using core::DistanceComputer;
using core::Graph;
using core::Neighbor;
using core::Rng;
using core::VectorId;

std::string StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kSn:
      return "SN";
    case Strategy::kKd:
      return "KD";
    case Strategy::kLsh:
      return "LSH";
    case Strategy::kMd:
      return "MD";
    case Strategy::kSf:
      return "SF";
    case Strategy::kKs:
      return "KS";
    case Strategy::kKm:
      return "KM";
  }
  return "unknown";
}

std::vector<VectorId> KsRandomSeeds::Select(DistanceComputer& dc,
                                            const float* query,
                                            std::size_t count,
                                            Rng* rng) const {
  (void)dc;
  (void)query;
  GASS_CHECK(n_ > 0);
  count = std::max<std::size_t>(1, std::min(count, n_));
  std::vector<VectorId> seeds;
  seeds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    seeds.push_back(static_cast<VectorId>(rng->UniformInt(n_)));
  }
  std::sort(seeds.begin(), seeds.end());
  seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
  return seeds;
}

namespace {

std::vector<VectorId> NodePlusNeighbors(VectorId node, const Graph* graph,
                                        std::size_t count) {
  std::vector<VectorId> seeds{node};
  if (graph != nullptr && node < graph->size()) {
    for (VectorId u : graph->Neighbors(node)) {
      if (seeds.size() >= count) break;
      seeds.push_back(u);
    }
  }
  return seeds;
}

}  // namespace

std::vector<VectorId> SfFixedSeed::Select(DistanceComputer& dc,
                                          const float* query,
                                          std::size_t count, Rng* rng) const {
  (void)dc;
  (void)query;
  (void)rng;
  return NodePlusNeighbors(fixed_, graph_, std::max<std::size_t>(1, count));
}

std::vector<VectorId> MedoidSeeds::Select(DistanceComputer& dc,
                                          const float* query,
                                          std::size_t count, Rng* rng) const {
  (void)dc;
  (void)query;
  (void)rng;
  return NodePlusNeighbors(medoid_, graph_, std::max<std::size_t>(1, count));
}

std::vector<VectorId> KdSeeds::Select(DistanceComputer& dc, const float* query,
                                      std::size_t count, Rng* rng) const {
  (void)dc;  // Tree traversal compares split planes, not full vectors.
  (void)rng;
  std::vector<VectorId> seeds =
      forest_->SearchCandidates(*data_, query, std::max<std::size_t>(1, count));
  if (seeds.empty()) seeds.push_back(0);
  return seeds;
}

std::vector<VectorId> KmSeeds::Select(DistanceComputer& dc, const float* query,
                                      std::size_t count, Rng* rng) const {
  (void)dc;  // Centroid comparisons are against tree centroids, not data.
  (void)rng;
  std::vector<VectorId> seeds;
  tree_->SearchCandidates(*data_, query, std::max<std::size_t>(1, count),
                          &seeds);
  if (seeds.empty()) seeds.push_back(0);
  return seeds;
}

std::vector<VectorId> LshSeeds::Select(DistanceComputer& dc,
                                       const float* query, std::size_t count,
                                       Rng* rng) const {
  (void)dc;
  count = std::max<std::size_t>(1, count);
  std::vector<VectorId> seeds = index_->Candidates(query, count);
  // Bucket misses (common for out-of-distribution queries): top up with
  // random warm-up seeds so the beam search always has coverage.
  while (seeds.size() < count && n_ > 0) {
    seeds.push_back(static_cast<VectorId>(rng->UniformInt(n_)));
  }
  return seeds;
}

StackedNswLayers StackedNswLayers::Build(const core::Dataset& data,
                                         const Params& params,
                                         std::uint64_t seed,
                                         DistanceComputer* dc) {
  GASS_CHECK(!data.empty());
  GASS_CHECK(params.max_degree >= 2);
  StackedNswLayers stack;
  Rng rng(seed);

  // Draw each node's maximum layer per the paper's Eq. 1:
  //   L = -ln(ξ) / ln(M / 2)   (ξ uniform in (0,1)),
  // floored; layer 0 (the base graph) belongs to the caller.
  const double denom =
      std::log(std::max(2.0, static_cast<double>(params.max_degree) / 2.0));
  std::vector<std::uint32_t> level(data.size(), 0);
  std::uint32_t top = 0;
  VectorId top_node = 0;
  for (VectorId v = 0; v < data.size(); ++v) {
    double xi = rng.UniformDouble();
    if (xi < 1e-12) xi = 1e-12;
    const auto l = static_cast<std::uint32_t>(-std::log(xi) / denom);
    level[v] = l;
    if (l >= top) {
      top = l;
      top_node = v;
    }
  }
  stack.entry_point_ = top_node;
  if (top == 0) {
    // No hierarchical nodes at all (tiny datasets): keep a single layer
    // containing just the entry point so Descend still works.
    level[top_node] = 1;
    top = 1;
  }

  stack.layers_.assign(top, Graph(data.size()));
  stack.member_.assign(top, std::vector<bool>(data.size(), false));

  diversify::Params prune;
  prune.strategy = diversify::Strategy::kRnd;
  prune.max_degree = params.max_degree;

  core::VisitedTable visited(data.size());
  VectorId entry = top_node;
  std::uint32_t entry_level = top;
  bool first = true;
  for (VectorId v = 0; v < data.size(); ++v) {
    const std::uint32_t node_level = std::min(level[v], top);
    if (node_level == 0) continue;
    if (first) {
      for (std::uint32_t l = 0; l < node_level; ++l) {
        stack.member_[l][v] = true;
      }
      entry = v;
      entry_level = node_level;
      first = false;
      continue;
    }
    // Greedy descent through layers above the node's level.
    VectorId current = entry;
    float current_dist = dc->ToQuery(data.Row(v), current);
    for (std::uint32_t l = entry_level; l-- > node_level;) {
      bool improved = true;
      while (improved) {
        improved = false;
        for (VectorId u : stack.layers_[l].Neighbors(current)) {
          const float d = dc->ToQuery(data.Row(v), u);
          if (d < current_dist) {
            current_dist = d;
            current = u;
            improved = true;
          }
        }
      }
    }
    // Insert into layers [0, node_level) with beam search + RND pruning.
    for (std::uint32_t l = std::min(node_level, entry_level); l-- > 0;) {
      std::vector<Neighbor> candidates = core::BeamSearch(
          stack.layers_[l], *dc, data.Row(v), {current}, params.beam_width,
          params.beam_width, &visited);
      std::vector<Neighbor> kept =
          diversify::Diversify(*dc, v, candidates, prune);
      std::vector<VectorId>& list = stack.layers_[l].MutableNeighbors(v);
      for (const Neighbor& nb : kept) {
        list.push_back(nb.id);
        // Bidirectional link with overflow re-pruning.
        auto& back = stack.layers_[l].MutableNeighbors(nb.id);
        back.push_back(v);
        if (back.size() > params.max_degree) {
          std::vector<Neighbor> back_candidates;
          back_candidates.reserve(back.size());
          for (VectorId u : back) {
            back_candidates.emplace_back(u, dc->Between(nb.id, u));
          }
          std::sort(back_candidates.begin(), back_candidates.end());
          std::vector<Neighbor> back_kept =
              diversify::Diversify(*dc, nb.id, back_candidates, prune);
          back.clear();
          for (const Neighbor& b : back_kept) back.push_back(b.id);
        }
      }
      if (!candidates.empty()) current = candidates.front().id;
      stack.member_[l][v] = true;
    }
    if (node_level > entry_level) {
      for (std::uint32_t l = entry_level; l < node_level; ++l) {
        stack.member_[l][v] = true;
      }
      entry = v;
      entry_level = node_level;
    }
  }
  stack.entry_point_ = entry;
  return stack;
}

VectorId StackedNswLayers::Descend(DistanceComputer& dc,
                                   const float* query) const {
  VectorId current = entry_point_;
  float current_dist = dc.ToQuery(query, current);
  for (std::size_t l = layers_.size(); l-- > 0;) {
    bool improved = true;
    while (improved) {
      improved = false;
      // Prefetch-then-batch sweep; sequential scan keeps the greedy step
      // and distance count identical to the one-at-a-time loop.
      const auto& list = layers_[l].Neighbors(current);
      const VectorId* ids = list.data();
      const std::size_t degree = list.size();
      constexpr std::size_t kChunk = DistanceComputer::kBatchChunk;
      float dist[kChunk];
      for (std::size_t i = 0; i < degree; i += kChunk) {
        const std::size_t m = std::min(kChunk, degree - i);
        for (std::size_t j = 0; j < m; ++j) dc.Prefetch(ids[i + j]);
        dc.ToQueryBatch(query, ids + i, m, dist);
        for (std::size_t j = 0; j < m; ++j) {
          if (dist[j] < current_dist) {
            current_dist = dist[j];
            current = ids[i + j];
            improved = true;
          }
        }
      }
    }
  }
  return current;
}

std::vector<VectorId> StackedNswLayers::Layer1Neighbors(VectorId node) const {
  if (layers_.empty() || node >= layers_[0].size()) return {};
  return layers_[0].Neighbors(node);
}

std::size_t StackedNswLayers::MemoryBytes() const {
  std::size_t total = 0;
  for (const Graph& layer : layers_) total += layer.MemoryBytes();
  for (const auto& bits : member_) total += bits.size() / 8;
  return total;
}

std::vector<VectorId> SnSeeds::Select(DistanceComputer& dc,
                                      const float* query, std::size_t count,
                                      Rng* rng) const {
  (void)rng;
  const VectorId node = layers_->Descend(dc, query);
  std::vector<VectorId> seeds{node};
  for (VectorId u : layers_->Layer1Neighbors(node)) {
    if (seeds.size() >= std::max<std::size_t>(1, count)) break;
    seeds.push_back(u);
  }
  return seeds;
}

VectorId ComputeMedoid(const core::Dataset& data) {
  GASS_CHECK(!data.empty());
  const std::size_t dim = data.dim();
  std::vector<double> mean(dim, 0.0);
  for (VectorId i = 0; i < data.size(); ++i) {
    const float* row = data.Row(i);
    for (std::size_t d = 0; d < dim; ++d) mean[d] += row[d];
  }
  std::vector<float> center(dim);
  for (std::size_t d = 0; d < dim; ++d) {
    center[d] = static_cast<float>(mean[d] / static_cast<double>(data.size()));
  }
  VectorId best = 0;
  float best_dist = 3.402823466e38f;
  for (VectorId i = 0; i < data.size(); ++i) {
    const float d = core::L2Sq(center.data(), data.Row(i), dim);
    if (d < best_dist) {
      best_dist = d;
      best = i;
    }
  }
  return best;
}

}  // namespace gass::seeds
