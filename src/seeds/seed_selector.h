// Seed Selection (SS) strategies — Section 3.3 of the paper.
//
// A SeedSelector produces the initial candidate nodes that warm up beam
// search (Algorithm 1). The seven strategies studied by the paper:
//
//   SN  — Stacked NSW: greedy descent through hierarchical NSW layers
//         (HNSW, ELPIS).
//   KD  — DFS over randomized K-D trees (EFANNA, SPTAG-KDT, HCNNG).
//   LSH — bucket mates from an LSH index (IEH, LSHAPG).
//   MD  — the dataset medoid and its graph neighbors (NSG, Vamana).
//   SF  — one fixed random node and its graph neighbors (baseline; not used
//         by any published method).
//   KS  — k fresh random nodes per query (KGraph, DPG, NSG, Vamana).
//   KM  — DFS over a balanced k-means tree (SPTAG-BKT).

#ifndef GASS_SEEDS_SEED_SELECTOR_H_
#define GASS_SEEDS_SEED_SELECTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/distance.h"
#include "core/graph.h"
#include "core/rng.h"
#include "core/types.h"
#include "hash/lsh.h"
#include "trees/bk_means_tree.h"
#include "trees/kd_tree.h"

namespace gass::seeds {

/// Strategy tags, mirroring the paper's acronyms.
enum class Strategy { kSn, kKd, kLsh, kMd, kSf, kKs, kKm };

std::string StrategyName(Strategy strategy);

/// Produces seed node ids for a query. `count` is advisory — selectors may
/// return fewer (e.g. MD returns the medoid plus its neighbors) but never
/// zero on a non-empty index. Distance computations a selector performs
/// (e.g. SN's descent) are charged to `dc`, matching how the paper accounts
/// seed-selection overhead.
///
/// Thread-safety: the four-argument Select is const and touches no selector
/// state — any randomness draws from the caller-supplied RNG — so one
/// selector instance serves concurrent searches (each thread passing its
/// own `rng`, see methods::SearchContext). The three-argument overload is
/// the serial convenience using the selector's internal stream; it is NOT
/// thread-safe.
class SeedSelector {
 public:
  explicit SeedSelector(std::uint64_t serial_seed = 0x5EEDULL)
      : serial_rng_(serial_seed) {}
  virtual ~SeedSelector() = default;

  /// Thread-safe selection; `rng` must be non-null.
  virtual std::vector<core::VectorId> Select(core::DistanceComputer& dc,
                                             const float* query,
                                             std::size_t count,
                                             core::Rng* rng) const = 0;

  /// Serial convenience drawing from the selector's own stream.
  std::vector<core::VectorId> Select(core::DistanceComputer& dc,
                                     const float* query, std::size_t count) {
    return Select(dc, query, count, &serial_rng_);
  }

  virtual Strategy strategy() const = 0;
  virtual std::size_t MemoryBytes() const { return 0; }

 private:
  core::Rng serial_rng_;
};

/// KS: `count` fresh uniform random ids per query.
class KsRandomSeeds : public SeedSelector {
 public:
  using SeedSelector::Select;
  KsRandomSeeds(std::size_t n, std::uint64_t seed)
      : SeedSelector(seed), n_(n) {}
  std::vector<core::VectorId> Select(core::DistanceComputer& dc,
                                     const float* query, std::size_t count,
                                     core::Rng* rng) const override;
  Strategy strategy() const override { return Strategy::kKs; }

 private:
  std::size_t n_;
};

/// SF: one fixed node (chosen once at random) plus its graph neighbors.
class SfFixedSeed : public SeedSelector {
 public:
  using SeedSelector::Select;
  SfFixedSeed(core::VectorId fixed, const core::Graph* graph)
      : fixed_(fixed), graph_(graph) {}
  std::vector<core::VectorId> Select(core::DistanceComputer& dc,
                                     const float* query, std::size_t count,
                                     core::Rng* rng) const override;
  Strategy strategy() const override { return Strategy::kSf; }

 private:
  core::VectorId fixed_;
  const core::Graph* graph_;
};

/// MD: the dataset medoid plus its graph neighbors.
class MedoidSeeds : public SeedSelector {
 public:
  using SeedSelector::Select;
  MedoidSeeds(core::VectorId medoid, const core::Graph* graph)
      : medoid_(medoid), graph_(graph) {}
  std::vector<core::VectorId> Select(core::DistanceComputer& dc,
                                     const float* query, std::size_t count,
                                     core::Rng* rng) const override;
  Strategy strategy() const override { return Strategy::kMd; }
  core::VectorId medoid() const { return medoid_; }

 private:
  core::VectorId medoid_;
  const core::Graph* graph_;
};

/// KD: candidates from a randomized K-D forest.
class KdSeeds : public SeedSelector {
 public:
  using SeedSelector::Select;
  KdSeeds(std::shared_ptr<const trees::KdForest> forest,
          const core::Dataset* data)
      : forest_(std::move(forest)), data_(data) {}
  std::vector<core::VectorId> Select(core::DistanceComputer& dc,
                                     const float* query, std::size_t count,
                                     core::Rng* rng) const override;
  Strategy strategy() const override { return Strategy::kKd; }
  std::size_t MemoryBytes() const override { return forest_->MemoryBytes(); }
  const std::shared_ptr<const trees::KdForest>& forest() const {
    return forest_;
  }

 private:
  std::shared_ptr<const trees::KdForest> forest_;
  const core::Dataset* data_;
};

/// KM: candidates from a balanced k-means tree.
class KmSeeds : public SeedSelector {
 public:
  using SeedSelector::Select;
  KmSeeds(std::shared_ptr<const trees::BkMeansTree> tree,
          const core::Dataset* data)
      : tree_(std::move(tree)), data_(data) {}
  std::vector<core::VectorId> Select(core::DistanceComputer& dc,
                                     const float* query, std::size_t count,
                                     core::Rng* rng) const override;
  Strategy strategy() const override { return Strategy::kKm; }
  std::size_t MemoryBytes() const override { return tree_->MemoryBytes(); }
  const std::shared_ptr<const trees::BkMeansTree>& tree() const {
    return tree_;
  }

 private:
  std::shared_ptr<const trees::BkMeansTree> tree_;
  const core::Dataset* data_;
};

/// LSH: bucket mates of the query. Out-of-distribution queries can miss
/// every bucket; sparse results are topped up with random ids (the
/// multi-probe fallback of practical LSH seeding).
class LshSeeds : public SeedSelector {
 public:
  using SeedSelector::Select;
  LshSeeds(std::shared_ptr<const hash::LshIndex> index, std::size_t n,
           std::uint64_t seed = 0x15ADULL)
      : SeedSelector(seed), index_(std::move(index)), n_(n) {}
  std::vector<core::VectorId> Select(core::DistanceComputer& dc,
                                     const float* query, std::size_t count,
                                     core::Rng* rng) const override;
  Strategy strategy() const override { return Strategy::kLsh; }
  std::size_t MemoryBytes() const override { return index_->MemoryBytes(); }
  const std::shared_ptr<const hash::LshIndex>& index() const {
    return index_;
  }

 private:
  std::shared_ptr<const hash::LshIndex> index_;
  std::size_t n_;
};

/// The hierarchical NSW layer stack of HNSW (layers 1..top; layer 0 is the
/// caller's base graph). Nodes draw their maximum layer from the
/// geometric-like distribution of the paper's Eq. 1 and are inserted
/// incrementally with RND-pruned neighbor lists.
class StackedNswLayers {
 public:
  struct Params {
    std::size_t max_degree = 16;  ///< M: per-layer out-degree bound.
    std::size_t beam_width = 32;  ///< ef during layer construction.
  };

  static StackedNswLayers Build(const core::Dataset& data,
                                const Params& params, std::uint64_t seed,
                                core::DistanceComputer* dc);

  /// Greedy descent from the top layer; returns the closest layer-1 node.
  core::VectorId Descend(core::DistanceComputer& dc,
                         const float* query) const;

  /// Neighbors of `node` at layer 1 (empty if the node is base-layer only).
  std::vector<core::VectorId> Layer1Neighbors(core::VectorId node) const;

  std::size_t num_layers() const { return layers_.size(); }
  core::VectorId entry_point() const { return entry_point_; }
  std::size_t MemoryBytes() const;

 private:
  // layers_[l] holds the layer-(l+1) adjacency over global node ids; nodes
  // absent from a layer have empty lists and a false membership bit.
  std::vector<core::Graph> layers_;
  std::vector<std::vector<bool>> member_;
  core::VectorId entry_point_ = core::kInvalidVectorId;
};

/// SN: descend the stacked layers, seed with the found node plus its
/// layer-1 neighborhood.
class SnSeeds : public SeedSelector {
 public:
  using SeedSelector::Select;
  explicit SnSeeds(std::shared_ptr<const StackedNswLayers> layers)
      : layers_(std::move(layers)) {}
  std::vector<core::VectorId> Select(core::DistanceComputer& dc,
                                     const float* query, std::size_t count,
                                     core::Rng* rng) const override;
  Strategy strategy() const override { return Strategy::kSn; }
  std::size_t MemoryBytes() const override { return layers_->MemoryBytes(); }

 private:
  std::shared_ptr<const StackedNswLayers> layers_;
};

/// Index of the vector closest to the dataset mean — the standard medoid
/// approximation used by NSG and Vamana.
core::VectorId ComputeMedoid(const core::Dataset& data);

}  // namespace gass::seeds

#endif  // GASS_SEEDS_SEED_SELECTOR_H_
