// Exact serial scan with a time-to-best-so-far trace — the exact-search
// baseline of the paper's Fig. 1.

#ifndef GASS_EVAL_SERIAL_SCAN_H_
#define GASS_EVAL_SERIAL_SCAN_H_

#include <cstddef>
#include <vector>

#include "core/dataset.h"
#include "core/neighbor.h"
#include "core/stats.h"

namespace gass::eval {

/// One improvement of the best-so-far answer during a search.
struct BsfEvent {
  double seconds = 0.0;       ///< Wall time at which the bsf improved.
  core::VectorId id = 0;      ///< The new best answer.
  float distance = 0.0f;      ///< Its squared distance.
};

/// Exact k-NN by scanning every base vector; optionally records the
/// best-so-far trace (used to reproduce the time-to-answer comparison of
/// Fig. 1).
std::vector<core::Neighbor> SerialScan(const core::Dataset& base,
                                       const float* query, std::size_t k,
                                       core::SearchStats* stats = nullptr,
                                       std::vector<BsfEvent>* trace = nullptr);

}  // namespace gass::eval

#endif  // GASS_EVAL_SERIAL_SCAN_H_
