#include "eval/serial_scan.h"

#include "core/distance.h"

namespace gass::eval {

using core::Dataset;
using core::Neighbor;
using core::VectorId;

std::vector<Neighbor> SerialScan(const Dataset& base, const float* query,
                                 std::size_t k, core::SearchStats* stats,
                                 std::vector<BsfEvent>* trace) {
  core::CandidatePool pool(k);
  core::Timer timer;
  float bsf = 3.402823466e38f;
  for (VectorId i = 0; i < base.size(); ++i) {
    const float d = core::L2Sq(query, base.Row(i), base.dim());
    if (d < pool.WorstDistance()) pool.Insert(Neighbor(i, d));
    if (trace != nullptr && d < bsf) {
      bsf = d;
      trace->push_back(BsfEvent{timer.Seconds(), i, d});
    }
  }
  if (stats != nullptr) {
    stats->distance_computations += base.size();
    stats->elapsed_seconds += timer.Seconds();
  }
  return pool.TopK(k);
}

}  // namespace gass::eval
