// Recall: the paper's accuracy measure for k-NN answers.

#ifndef GASS_EVAL_RECALL_H_
#define GASS_EVAL_RECALL_H_

#include <cstddef>
#include <vector>

#include "core/neighbor.h"
#include "eval/ground_truth.h"

namespace gass::eval {

/// Fraction of the true k nearest neighbors present in `result`.
///
/// Matching is distance-aware: a returned id counts if it appears in the
/// truth list, and ties at the k-th true distance are accepted (standard
/// benchmark convention, avoids penalizing equally-near answers).
double RecallAtK(const std::vector<core::Neighbor>& result,
                 const std::vector<core::Neighbor>& truth, std::size_t k);

/// Mean RecallAtK over a workload.
double MeanRecall(const std::vector<std::vector<core::Neighbor>>& results,
                  const GroundTruth& truth, std::size_t k);

}  // namespace gass::eval

#endif  // GASS_EVAL_RECALL_H_
