#include "eval/graph_stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/distance.h"
#include "core/macros.h"
#include "core/rng.h"
#include "core/visited.h"

namespace gass::eval {

using core::Dataset;
using core::Graph;
using core::Rng;
using core::VectorId;

DegreeStats ComputeDegreeStats(const Graph& graph) {
  DegreeStats stats;
  if (graph.size() == 0) return stats;
  std::vector<std::size_t> degrees(graph.size());
  for (VectorId v = 0; v < graph.size(); ++v) {
    degrees[v] = graph.Neighbors(v).size();
  }
  std::sort(degrees.begin(), degrees.end());
  stats.min = degrees.front();
  stats.max = degrees.back();
  stats.mean = static_cast<double>(std::accumulate(degrees.begin(),
                                                   degrees.end(),
                                                   std::size_t{0})) /
               static_cast<double>(degrees.size());
  stats.p50 = static_cast<double>(degrees[degrees.size() / 2]);
  stats.p99 = static_cast<double>(degrees[degrees.size() * 99 / 100]);
  return stats;
}

ConnectivityStats ComputeConnectivity(const Graph& graph) {
  ConnectivityStats stats;
  const std::size_t n = graph.size();
  if (n == 0) return stats;

  // Undirected adjacency via forward + reverse edges.
  std::vector<std::vector<VectorId>> reverse(n);
  for (VectorId v = 0; v < n; ++v) {
    for (VectorId u : graph.Neighbors(v)) reverse[u].push_back(v);
  }
  std::vector<bool> seen(n, false);
  std::vector<VectorId> stack;
  for (VectorId start = 0; start < n; ++start) {
    if (seen[start]) continue;
    ++stats.components;
    std::size_t size = 0;
    stack.push_back(start);
    seen[start] = true;
    while (!stack.empty()) {
      const VectorId v = stack.back();
      stack.pop_back();
      ++size;
      for (VectorId u : graph.Neighbors(v)) {
        if (!seen[u]) {
          seen[u] = true;
          stack.push_back(u);
        }
      }
      for (VectorId u : reverse[v]) {
        if (!seen[u]) {
          seen[u] = true;
          stack.push_back(u);
        }
      }
    }
    stats.largest_component = std::max(stats.largest_component, size);
  }
  return stats;
}

EdgeLengthStats ComputeEdgeLengthStats(const Dataset& data,
                                       const Graph& graph,
                                       std::size_t sample_nodes,
                                       double long_factor,
                                       std::uint64_t seed) {
  GASS_CHECK(graph.size() == data.size());
  EdgeLengthStats stats;
  if (data.size() < 2) return stats;
  Rng rng(seed);
  double total_relative = 0.0;
  std::size_t long_edges = 0;
  for (std::size_t s = 0; s < sample_nodes; ++s) {
    const VectorId v = static_cast<VectorId>(rng.UniformInt(data.size()));
    const auto& neighbors = graph.Neighbors(v);
    if (neighbors.empty()) continue;
    // Local scale: v's true nearest-neighbor distance.
    float nn_sq = 3.402823466e38f;
    for (VectorId u = 0; u < data.size(); ++u) {
      if (u == v) continue;
      nn_sq = std::min(nn_sq, core::L2Sq(data.Row(v), data.Row(u),
                                         data.dim()));
    }
    const double nn = std::sqrt(std::max(1e-30f, nn_sq));
    for (VectorId u : neighbors) {
      const double length = std::sqrt(static_cast<double>(
          core::L2Sq(data.Row(v), data.Row(u), data.dim())));
      total_relative += length / nn;
      if (length >= long_factor * nn) ++long_edges;
      ++stats.sampled_edges;
    }
  }
  if (stats.sampled_edges > 0) {
    stats.mean_relative_length =
        total_relative / static_cast<double>(stats.sampled_edges);
    stats.long_range_fraction = static_cast<double>(long_edges) /
                                static_cast<double>(stats.sampled_edges);
  }
  return stats;
}

double EstimateGreedyPathLength(const Dataset& data, const Graph& graph,
                                std::size_t num_walks, std::size_t max_hops,
                                std::uint64_t seed) {
  GASS_CHECK(graph.size() == data.size());
  if (data.size() < 2 || num_walks == 0) return 0.0;
  Rng rng(seed);
  double total_hops = 0.0;
  for (std::size_t w = 0; w < num_walks; ++w) {
    const VectorId target = static_cast<VectorId>(rng.UniformInt(data.size()));
    VectorId current = static_cast<VectorId>(rng.UniformInt(data.size()));
    const float* target_row = data.Row(target);
    float current_dist =
        core::L2Sq(target_row, data.Row(current), data.dim());
    std::size_t hops = 0;
    while (hops < max_hops) {
      VectorId best = current;
      float best_dist = current_dist;
      for (VectorId u : graph.Neighbors(current)) {
        const float d = core::L2Sq(target_row, data.Row(u), data.dim());
        if (d < best_dist) {
          best_dist = d;
          best = u;
        }
      }
      if (best == current) break;  // Greedy local minimum.
      current = best;
      current_dist = best_dist;
      ++hops;
    }
    total_hops += static_cast<double>(hops);
  }
  return total_hops / static_cast<double>(num_walks);
}

}  // namespace gass::eval
