// Structural diagnostics of proximity graphs.
//
// The paper's taxonomy explains *why* methods behave as they do through the
// structure their paradigms produce: ND creates sparse, long-range-rich
// neighborhoods; NoND converges to dense nearest-only lists; DC merges
// leave overlapping local subgraphs. These statistics quantify that anatomy
// for any built graph.

#ifndef GASS_EVAL_GRAPH_STATS_H_
#define GASS_EVAL_GRAPH_STATS_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/graph.h"

namespace gass::eval {

/// Degree distribution summary.
struct DegreeStats {
  double mean = 0.0;
  std::size_t min = 0;
  std::size_t max = 0;
  double p50 = 0.0;
  double p99 = 0.0;
};

DegreeStats ComputeDegreeStats(const core::Graph& graph);

/// Number of weakly-connected components and the largest component's size
/// (edges treated as undirected).
struct ConnectivityStats {
  std::size_t components = 0;
  std::size_t largest_component = 0;
};

ConnectivityStats ComputeConnectivity(const core::Graph& graph);

/// Edge-length anatomy over a node sample: how edge lengths compare to each
/// node's local scale (its nearest-neighbor distance). The long-range
/// fraction measures small-world shortcuts: edges ≥ `long_factor` × the
/// node's NN distance.
struct EdgeLengthStats {
  double mean_relative_length = 0.0;  ///< E[ |edge| / nn_dist ].
  double long_range_fraction = 0.0;   ///< P[ |edge| ≥ long_factor·nn_dist ].
  std::size_t sampled_edges = 0;
};

EdgeLengthStats ComputeEdgeLengthStats(const core::Dataset& data,
                                       const core::Graph& graph,
                                       std::size_t sample_nodes,
                                       double long_factor,
                                       std::uint64_t seed);

/// Mean number of hops of a greedy walk from a random start to the node
/// nearest a random dataset target (capped at `max_hops`); the navigability
/// proxy behind the small-world property.
double EstimateGreedyPathLength(const core::Dataset& data,
                                const core::Graph& graph,
                                std::size_t num_walks, std::size_t max_hops,
                                std::uint64_t seed);

}  // namespace gass::eval

#endif  // GASS_EVAL_GRAPH_STATS_H_
