// Dataset-complexity measures of Section 4.1: Local Intrinsic Dimensionality
// (LID, Eq. 5) and Local Relative Contrast (LRC, Eq. 6).
//
// Low LID / high LRC indicate an easy dataset for vector search; the paper's
// Fig. 4 uses both (k = 100, on a 1M random sample) to rank its workloads.

#ifndef GASS_EVAL_COMPLEXITY_H_
#define GASS_EVAL_COMPLEXITY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/dataset.h"

namespace gass::eval {

/// LID and LRC of one query point against a base collection.
struct PointComplexity {
  double lid = 0.0;
  double lrc = 0.0;
};

/// Distribution summary over a query sample.
struct ComplexitySummary {
  double mean_lid = 0.0;
  double median_lid = 0.0;
  double mean_lrc = 0.0;
  double median_lrc = 0.0;
  std::size_t num_points = 0;
};

/// LID(x) = -( (1/k) Σ_{i=1..k} log(dist_i(x) / dist_k(x)) )^{-1} and
/// LRC(x) = dist_mean(x) / dist_k(x), both in (non-squared) Euclidean
/// distance, for query `x` against `base`.
PointComplexity ComputePointComplexity(const core::Dataset& base,
                                       const float* x, std::size_t k);

/// Estimates the summary over `sample_size` points sampled from `base`
/// (each sampled point is excluded from its own neighbor set), k per Eq. 5-6.
ComplexitySummary EstimateComplexity(const core::Dataset& base,
                                     std::size_t sample_size, std::size_t k,
                                     std::uint64_t seed,
                                     std::size_t threads = 0);

}  // namespace gass::eval

#endif  // GASS_EVAL_COMPLEXITY_H_
