// Exact k-NN ground truth via multithreaded brute force.

#ifndef GASS_EVAL_GROUND_TRUTH_H_
#define GASS_EVAL_GROUND_TRUTH_H_

#include <cstddef>
#include <vector>

#include "core/dataset.h"
#include "core/neighbor.h"

namespace gass::eval {

/// Exact neighbor lists per query: truth[q] holds the k nearest base ids in
/// ascending distance order.
using GroundTruth = std::vector<std::vector<core::Neighbor>>;

/// Computes exact k-NN of every query against `base` (O(|Q| · n · d)).
/// `threads` = 0 uses hardware concurrency.
GroundTruth BruteForceKnn(const core::Dataset& base,
                          const core::Dataset& queries, std::size_t k,
                          std::size_t threads = 0);

/// Exact k-NN of base vector `id` against the rest of `base` (excludes
/// itself).
std::vector<core::Neighbor> BruteForceKnnOfPoint(const core::Dataset& base,
                                                 core::VectorId id,
                                                 std::size_t k);

}  // namespace gass::eval

#endif  // GASS_EVAL_GROUND_TRUTH_H_
