#include "eval/recall.h"

#include <algorithm>

#include "core/macros.h"

namespace gass::eval {

using core::Neighbor;

double RecallAtK(const std::vector<Neighbor>& result,
                 const std::vector<Neighbor>& truth, std::size_t k) {
  GASS_CHECK(k > 0);
  const std::size_t truth_count = std::min(k, truth.size());
  if (truth_count == 0) return 1.0;

  // Ties at the k-th true distance are acceptable answers.
  const float kth_distance = truth[truth_count - 1].distance;

  std::size_t hits = 0;
  const std::size_t result_count = std::min(k, result.size());
  for (std::size_t i = 0; i < result_count; ++i) {
    const Neighbor& r = result[i];
    if (r.distance < kth_distance) {
      ++hits;
      continue;
    }
    if (r.distance == kth_distance) {
      // Accept if it matches a truth id or ties the boundary distance.
      ++hits;
      continue;
    }
    // Strictly farther than the k-th true neighbor: not a hit.
  }
  if (hits > truth_count) hits = truth_count;
  return static_cast<double>(hits) / static_cast<double>(truth_count);
}

double MeanRecall(const std::vector<std::vector<Neighbor>>& results,
                  const GroundTruth& truth, std::size_t k) {
  GASS_CHECK(results.size() == truth.size());
  if (results.empty()) return 1.0;
  double total = 0.0;
  for (std::size_t q = 0; q < results.size(); ++q) {
    total += RecallAtK(results[q], truth[q], k);
  }
  return total / static_cast<double>(results.size());
}

}  // namespace gass::eval
