#include "eval/complexity.h"

#include <algorithm>
#include <cmath>

#include "core/distance.h"
#include "core/macros.h"
#include "core/neighbor.h"
#include "core/rng.h"
#include "core/thread_pool.h"

namespace gass::eval {

using core::CandidatePool;
using core::Dataset;
using core::Neighbor;
using core::VectorId;

PointComplexity ComputePointComplexity(const Dataset& base, const float* x,
                                       std::size_t k) {
  GASS_CHECK(k > 0 && base.size() > k);
  CandidatePool pool(k + 1);  // +1 so an exact self-match can be dropped.
  double sum_all = 0.0;
  std::size_t counted = 0;
  for (VectorId i = 0; i < base.size(); ++i) {
    const float d_sq = core::L2Sq(x, base.Row(i), base.dim());
    if (d_sq < pool.WorstDistance()) pool.Insert(Neighbor(i, d_sq));
    sum_all += std::sqrt(static_cast<double>(d_sq));
    ++counted;
  }

  // Drop a zero-distance self match if present.
  std::vector<Neighbor> nearest = pool.TopK(k + 1);
  std::size_t start = 0;
  if (!nearest.empty() && nearest[0].distance == 0.0f) start = 1;
  GASS_CHECK(nearest.size() >= start + k);

  const double dist_k =
      std::sqrt(static_cast<double>(nearest[start + k - 1].distance));
  PointComplexity result;

  // Eq. 5. Terms with dist_i == 0 are skipped (log undefined); dist_k == 0
  // means the point has >= k duplicates, where LID is conventionally 0.
  if (dist_k <= 0.0) {
    result.lid = 0.0;
  } else {
    double acc = 0.0;
    std::size_t terms = 0;
    for (std::size_t i = 0; i < k; ++i) {
      const double dist_i =
          std::sqrt(static_cast<double>(nearest[start + i].distance));
      if (dist_i <= 0.0) continue;
      acc += std::log(dist_i / dist_k);
      ++terms;
    }
    result.lid = (terms == 0 || acc == 0.0)
                     ? 0.0
                     : -1.0 / (acc / static_cast<double>(terms));
  }

  // Eq. 6.
  const double dist_mean = sum_all / static_cast<double>(counted);
  result.lrc = dist_k > 0.0 ? dist_mean / dist_k : 0.0;
  return result;
}

namespace {

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  return values[mid];
}

}  // namespace

ComplexitySummary EstimateComplexity(const Dataset& base,
                                     std::size_t sample_size, std::size_t k,
                                     std::uint64_t seed,
                                     std::size_t threads) {
  sample_size = std::min(sample_size, base.size());
  core::Rng rng(seed);
  std::vector<VectorId> sample(sample_size);
  for (std::size_t i = 0; i < sample_size; ++i) {
    sample[i] = static_cast<VectorId>(rng.UniformInt(base.size()));
  }

  std::vector<double> lids(sample_size);
  std::vector<double> lrcs(sample_size);
  core::ParallelFor(sample_size, threads, [&](std::size_t, std::size_t i) {
    const PointComplexity pc =
        ComputePointComplexity(base, base.Row(sample[i]), k);
    lids[i] = pc.lid;
    lrcs[i] = pc.lrc;
  });

  ComplexitySummary summary;
  summary.num_points = sample_size;
  for (std::size_t i = 0; i < sample_size; ++i) {
    summary.mean_lid += lids[i];
    summary.mean_lrc += lrcs[i];
  }
  if (sample_size > 0) {
    summary.mean_lid /= static_cast<double>(sample_size);
    summary.mean_lrc /= static_cast<double>(sample_size);
  }
  summary.median_lid = Median(lids);
  summary.median_lrc = Median(lrcs);
  return summary;
}

}  // namespace gass::eval
