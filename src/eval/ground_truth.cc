#include "eval/ground_truth.h"

#include "core/distance.h"
#include "core/thread_pool.h"

namespace gass::eval {

using core::CandidatePool;
using core::Dataset;
using core::Neighbor;
using core::VectorId;

GroundTruth BruteForceKnn(const Dataset& base, const Dataset& queries,
                          std::size_t k, std::size_t threads) {
  GroundTruth truth(queries.size());
  core::ParallelFor(queries.size(), threads, [&](std::size_t, std::size_t q) {
    const float* query = queries.Row(static_cast<VectorId>(q));
    CandidatePool pool(k);
    for (VectorId i = 0; i < base.size(); ++i) {
      const float d = core::L2Sq(query, base.Row(i), base.dim());
      if (d < pool.WorstDistance()) pool.Insert(Neighbor(i, d));
    }
    truth[q] = pool.TopK(k);
  });
  return truth;
}

std::vector<Neighbor> BruteForceKnnOfPoint(const Dataset& base, VectorId id,
                                           std::size_t k) {
  CandidatePool pool(k);
  const float* query = base.Row(id);
  for (VectorId i = 0; i < base.size(); ++i) {
    if (i == id) continue;
    const float d = core::L2Sq(query, base.Row(i), base.dim());
    if (d < pool.WorstDistance()) pool.Insert(Neighbor(i, d));
  }
  return pool.TopK(k);
}

}  // namespace gass::eval
