// Fundamental identifier and value types shared across the library.

#ifndef GASS_CORE_TYPES_H_
#define GASS_CORE_TYPES_H_

#include <cstdint>
#include <limits>

namespace gass::core {

/// Identifier of a vector (a row of a Dataset and a vertex of a Graph).
using VectorId = std::uint32_t;

/// Sentinel for "no vector".
inline constexpr VectorId kInvalidVectorId =
    std::numeric_limits<VectorId>::max();

}  // namespace gass::core

#endif  // GASS_CORE_TYPES_H_
