// In-memory vector dataset: an aligned, row-major float matrix plus IO for
// the standard fvecs / bvecs / ivecs interchange formats used by the public
// SIFT / GIST / Deep collections.

#ifndef GASS_CORE_DATASET_H_
#define GASS_CORE_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/align.h"
#include "core/macros.h"
#include "core/status.h"
#include "core/types.h"

namespace gass::core {

/// A collection of `size()` dense vectors of dimension `dim()`, stored
/// row-major in one contiguous buffer.
///
/// Alignment contract: `data()` (and therefore `Row(0)`) is always aligned
/// to kAlignment (64) bytes, including after move, Clone, Prefix, Select,
/// Append, and the fvecs/bvecs readers. Rows are packed at a stride of
/// exactly `dim()` floats, so every row is 64-byte-aligned precisely when
/// `dim()` is a multiple of 16; for other dimensions only the buffer start
/// is guaranteed. The SIMD kernels (src/core/simd/) use unaligned loads and
/// rely on the contract only for cache-line economy, so queries from
/// arbitrary caller memory remain legal. See docs/PERF.md.
///
/// Dataset is movable but not copyable (copies of multi-GB buffers should be
/// explicit via Clone()).
class Dataset {
 public:
  /// Guaranteed alignment of data(), in bytes.
  static constexpr std::size_t kAlignment = kCacheLineBytes;
  Dataset() = default;

  /// Creates an uninitialized dataset of `n` vectors of dimension `dim`.
  Dataset(std::size_t n, std::size_t dim);

  Dataset(Dataset&&) noexcept = default;
  Dataset& operator=(Dataset&&) noexcept = default;
  Dataset(const Dataset&) = delete;
  Dataset& operator=(const Dataset&) = delete;

  /// Deep copy.
  Dataset Clone() const;

  std::size_t size() const { return n_; }
  std::size_t dim() const { return dim_; }
  bool empty() const { return n_ == 0; }

  /// Pointer to the first component of vector `id`.
  const float* Row(VectorId id) const {
    GASS_DCHECK(id < n_);
    return data_.data() + static_cast<std::size_t>(id) * dim_;
  }
  float* MutableRow(VectorId id) {
    GASS_DCHECK(id < n_);
    return data_.data() + static_cast<std::size_t>(id) * dim_;
  }

  const float* data() const { return data_.data(); }
  float* mutable_data() { return data_.data(); }

  /// Total payload in bytes (excluding object overhead).
  std::size_t SizeBytes() const { return n_ * dim_ * sizeof(float); }

  /// Returns a dataset containing rows [0, count) of this one.
  Dataset Prefix(std::size_t count) const;

  /// Returns a dataset containing the given rows, in order.
  Dataset Select(const std::vector<VectorId>& ids) const;

  /// Appends all rows of `other` (dimensions must match; this may not be
  /// empty unless dims are equal by construction).
  void Append(const Dataset& other);

 private:
  std::size_t n_ = 0;
  std::size_t dim_ = 0;
  /// n_ * dim_ floats, 64-byte-aligned base address.
  std::vector<float, AlignedAllocator<float, kAlignment>> data_;
};

/// Zero-copy row-subset view over a Dataset: a list of row ids plus a
/// pointer to the parent's storage. Row(i) resolves straight into the
/// parent buffer, so building a view never duplicates vector data — the
/// sharding partitioners (src/shard/) iterate candidate subsets through
/// views and only materialize a real Dataset (Materialize) for the rows a
/// shard finally owns.
///
/// The parent dataset must outlive the view. Because rows alias the parent
/// buffer, the Dataset alignment contract carries over unchanged: the
/// parent's base address is 64-byte aligned, and a viewed row is 64-byte
/// aligned exactly when the parent row is (dim a multiple of 16). The SIMD
/// kernels use unaligned loads either way, so any viewed row is legal input.
class DatasetView {
 public:
  DatasetView() = default;

  /// View of the given parent rows, in order. Ids must be < parent.size().
  DatasetView(const Dataset& parent, std::vector<VectorId> ids)
      : parent_(&parent), ids_(std::move(ids)) {
#ifndef NDEBUG
    for (const VectorId id : ids_) GASS_DCHECK(id < parent.size());
#endif
  }

  /// View of every parent row (identity id map, still zero-copy).
  static DatasetView All(const Dataset& parent);

  std::size_t size() const { return ids_.size(); }
  std::size_t dim() const { return parent_ != nullptr ? parent_->dim() : 0; }
  bool empty() const { return ids_.empty(); }

  /// Pointer into the PARENT buffer for view row `i`.
  const float* Row(std::size_t i) const {
    GASS_DCHECK(i < ids_.size());
    return parent_->Row(ids_[i]);
  }

  /// Parent id of view row `i`.
  VectorId GlobalId(std::size_t i) const {
    GASS_DCHECK(i < ids_.size());
    return ids_[i];
  }

  const std::vector<VectorId>& ids() const { return ids_; }
  const Dataset* parent() const { return parent_; }

  /// Copies the viewed rows into an owning Dataset (the one deliberate
  /// copy, used when a shard's rows must live contiguously for a build).
  Dataset Materialize() const;

 private:
  const Dataset* parent_ = nullptr;
  std::vector<VectorId> ids_;
};

/// Reads an fvecs file (per vector: int32 dim then dim float32 values).
Status ReadFvecs(const std::string& path, Dataset* out);

/// Writes a Dataset in fvecs format.
Status WriteFvecs(const std::string& path, const Dataset& dataset);

/// Reads a bvecs file (per vector: int32 dim then dim uint8 values),
/// widening components to float.
Status ReadBvecs(const std::string& path, Dataset* out);

/// Reads an ivecs file (per row: int32 count then count int32 values) —
/// the standard ground-truth neighbor-list format.
Status ReadIvecs(const std::string& path,
                 std::vector<std::vector<std::int32_t>>* out);

/// Writes neighbor lists in ivecs format.
Status WriteIvecs(const std::string& path,
                  const std::vector<std::vector<std::int32_t>>& rows);

}  // namespace gass::core

#endif  // GASS_CORE_DATASET_H_
