// Tombstone set for logically deleted vectors.
//
// Graph indexes cannot cheaply unlink a node: removing it would tear the
// navigable small-world structure the paper's methods depend on (and HNSW's
// layer entry points may route through it). Deletes are therefore logical —
// the node stays in the graph as a waypoint but its id is recorded here and
// filtered out of search *results* (core::BeamSearch emission and the
// sharded merge). The node is physically dropped at the next full rebuild.
//
// Externally synchronized: serve::Updater mutates it under its exclusive
// update lock while searches read it under the shared lock.

#ifndef GASS_CORE_TOMBSTONES_H_
#define GASS_CORE_TOMBSTONES_H_

#include <cstdint>
#include <vector>

#include "core/types.h"

namespace gass::core {

/// Dense bitset over vector ids [0, capacity).
class TombstoneSet {
 public:
  TombstoneSet() = default;
  explicit TombstoneSet(std::size_t capacity) { Resize(capacity); }

  /// Grows the id space (never shrinks; new ids start live).
  void Resize(std::size_t capacity) {
    if (capacity > capacity_) {
      bits_.resize((capacity + 63) / 64, 0);
      capacity_ = capacity;
    }
  }

  /// Marks `id` deleted. Returns false when it already was.
  bool Insert(VectorId id) {
    Resize(static_cast<std::size_t>(id) + 1);
    std::uint64_t& word = bits_[id >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (id & 63);
    if ((word & bit) != 0) return false;
    word |= bit;
    ++count_;
    return true;
  }

  /// Whether `id` is deleted. Ids beyond capacity are live — the hot path
  /// in beam-search emission, kept branch-light.
  bool Contains(VectorId id) const {
    return static_cast<std::size_t>(id) < capacity_ &&
           (bits_[id >> 6] & (std::uint64_t{1} << (id & 63))) != 0;
  }

  bool empty() const { return count_ == 0; }
  std::size_t count() const { return count_; }
  std::size_t capacity() const { return capacity_; }

  /// Deleted ids in ascending order (checkpoint serialization).
  std::vector<std::uint64_t> ToVector() const {
    std::vector<std::uint64_t> ids;
    ids.reserve(count_);
    for (std::size_t id = 0; id < capacity_; ++id) {
      if ((bits_[id >> 6] & (std::uint64_t{1} << (id & 63))) != 0) {
        ids.push_back(id);
      }
    }
    return ids;
  }

  void Clear() {
    bits_.assign(bits_.size(), 0);
    count_ = 0;
  }

 private:
  std::vector<std::uint64_t> bits_;
  std::size_t capacity_ = 0;
  std::size_t count_ = 0;
};

}  // namespace gass::core

#endif  // GASS_CORE_TOMBSTONES_H_
