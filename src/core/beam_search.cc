#include "core/beam_search.h"

namespace gass::core {

// Explicit instantiations keep the common cases out of every client TU.
template std::vector<Neighbor> BeamSearch<Graph>(
    const Graph&, DistanceComputer&, const float*,
    const std::vector<VectorId>&, std::size_t, std::size_t, VisitedTable*,
    SearchStats*, float, const Deadline*, const TombstoneSet*);
template std::vector<Neighbor> BeamSearch<FlatGraph>(
    const FlatGraph&, DistanceComputer&, const float*,
    const std::vector<VectorId>&, std::size_t, std::size_t, VisitedTable*,
    SearchStats*, float, const Deadline*, const TombstoneSet*);
template std::vector<Neighbor> BeamSearchCollect<Graph>(
    const Graph&, DistanceComputer&, const float*,
    const std::vector<VectorId>&, std::size_t, std::size_t, VisitedTable*,
    std::vector<Neighbor>*, SearchStats*);
template std::vector<Neighbor> BeamSearchCollect<FlatGraph>(
    const FlatGraph&, DistanceComputer&, const float*,
    const std::vector<VectorId>&, std::size_t, std::size_t, VisitedTable*,
    std::vector<Neighbor>*, SearchStats*);

}  // namespace gass::core
