// Distance kernels and the instrumented DistanceComputer.
//
// All methods in the paper are evaluated under Euclidean distance; we compute
// squared L2 internally (monotone in L2, saves the sqrt) and expose dot
// products for the angle tests of MOND diversification.
//
// The arithmetic lives in src/core/simd/ behind a dispatch table selected at
// startup (AVX-512 / AVX2 / NEON / scalar, override with GASS_SIMD_LEVEL);
// the free functions below are thin forwarders kept so existing callers
// compile unchanged. Every level returns bit-identical values — see the
// canonical-order contract in core/simd/simd.h and docs/PERF.md.

#ifndef GASS_CORE_DISTANCE_H_
#define GASS_CORE_DISTANCE_H_

#include <cstddef>
#include <cstdint>

#include "core/dataset.h"
#include "core/simd/simd.h"
#include "core/types.h"

namespace gass::core {

/// Squared Euclidean distance between two `dim`-dimensional vectors.
inline float L2Sq(const float* a, const float* b, std::size_t dim) {
  return simd::ActiveKernels().l2sq(a, b, dim);
}

/// Dot product of two `dim`-dimensional vectors.
inline float Dot(const float* a, const float* b, std::size_t dim) {
  return simd::ActiveKernels().dot(a, b, dim);
}

/// Euclidean norm of a vector.
inline float Norm(const float* a, std::size_t dim) {
  return simd::ActiveKernels().norm(a, dim);
}

/// Dataset-bound distance evaluator that counts every distance computation.
///
/// The paper reports distance calculations as its hardware-independent cost
/// measure (Figs. 5, 6; Table 2); every index build and search in this
/// library routes distances through a DistanceComputer so those counts are
/// exact. The batched entry points below count one computation per row —
/// `ToQueryBatch(q, ids, n, out)` adds exactly `n`, the same as `n` calls to
/// `ToQuery`, and returns bit-identical distances, so switching a loop to
/// the batch form never changes the paper's cost accounting. Not
/// thread-safe: builders give each worker its own computer and sum the
/// counts afterwards.
class DistanceComputer {
 public:
  explicit DistanceComputer(const Dataset& dataset)
      : dataset_(&dataset), count_(0) {}

  /// Squared distance between two dataset vectors.
  float Between(VectorId a, VectorId b) {
    ++count_;
    return L2Sq(dataset_->Row(a), dataset_->Row(b), dataset_->dim());
  }

  /// Squared distance from an external query vector to a dataset vector.
  float ToQuery(const float* query, VectorId id) {
    ++count_;
    return L2Sq(query, dataset_->Row(id), dataset_->dim());
  }

  /// out[i] = squared distance from `query` to row ids[i], for i in [0, n).
  /// Counts n computations; bit-identical to n ToQuery calls but lets the
  /// batched kernels amortize query loads across rows.
  void ToQueryBatch(const float* query, const VectorId* ids, std::size_t n,
                    float* out) {
    count_ += n;
    const simd::DistanceKernels& kernels = simd::ActiveKernels();
    const std::size_t dim = dataset_->dim();
    const float* rows[kBatchChunk];
    std::size_t done = 0;
    while (done < n) {
      const std::size_t m = n - done < kBatchChunk ? n - done : kBatchChunk;
      for (std::size_t j = 0; j < m; ++j) {
        rows[j] = dataset_->Row(ids[done + j]);
      }
      kernels.l2sq_batch(query, rows, m, dim, out + done);
      done += m;
    }
  }

  /// out[i] = squared distance between rows v and ids[i]. Counts n.
  void BetweenBatch(VectorId v, const VectorId* ids, std::size_t n,
                    float* out) {
    ToQueryBatch(dataset_->Row(v), ids, n, out);
  }

  /// Hints that row `id` will be evaluated shortly. Touches up to
  /// kPrefetchBytes of the row so neighbor expansion overlaps memory
  /// latency with compute; a no-op wherever the builtin is unavailable.
  void Prefetch(VectorId id) const {
    const char* row = reinterpret_cast<const char*>(dataset_->Row(id));
    std::size_t bytes = dataset_->dim() * sizeof(float);
    if (bytes > kPrefetchBytes) bytes = kPrefetchBytes;
#if defined(__GNUC__) || defined(__clang__)
    for (std::size_t off = 0; off < bytes; off += kCacheLineBytes) {
      __builtin_prefetch(row + off, /*rw=*/0, /*locality=*/3);
    }
#else
    (void)row;
    (void)bytes;
#endif
  }

  /// Number of distance computations performed so far.
  std::uint64_t count() const { return count_; }
  void ResetCount() { count_ = 0; }
  void AddCount(std::uint64_t c) { count_ += c; }

  const Dataset& dataset() const { return *dataset_; }
  std::size_t dim() const { return dataset_->dim(); }

  /// Rows handed to the batch kernel per call; batch entry points accept any
  /// n and chunk internally.
  static constexpr std::size_t kBatchChunk = 32;
  /// Per-row prefetch cap (8 cache lines = a full 128-dim float row).
  static constexpr std::size_t kPrefetchBytes = 512;

 private:
  const Dataset* dataset_;
  std::uint64_t count_;
};

}  // namespace gass::core

#endif  // GASS_CORE_DISTANCE_H_
