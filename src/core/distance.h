// Distance kernels and the instrumented DistanceComputer.
//
// All methods in the paper are evaluated under Euclidean distance; we compute
// squared L2 internally (monotone in L2, saves the sqrt) and expose dot
// products for the angle tests of MOND diversification.

#ifndef GASS_CORE_DISTANCE_H_
#define GASS_CORE_DISTANCE_H_

#include <cstddef>
#include <cstdint>

#include "core/dataset.h"
#include "core/types.h"

namespace gass::core {

/// Squared Euclidean distance between two `dim`-dimensional vectors.
float L2Sq(const float* a, const float* b, std::size_t dim);

/// Dot product of two `dim`-dimensional vectors.
float Dot(const float* a, const float* b, std::size_t dim);

/// Euclidean norm of a vector.
float Norm(const float* a, std::size_t dim);

/// Dataset-bound distance evaluator that counts every distance computation.
///
/// The paper reports distance calculations as its hardware-independent cost
/// measure (Figs. 5, 6; Table 2); every index build and search in this
/// library routes distances through a DistanceComputer so those counts are
/// exact. Not thread-safe: builders give each worker its own computer and
/// sum the counts afterwards.
class DistanceComputer {
 public:
  explicit DistanceComputer(const Dataset& dataset)
      : dataset_(&dataset), count_(0) {}

  /// Squared distance between two dataset vectors.
  float Between(VectorId a, VectorId b) {
    ++count_;
    return L2Sq(dataset_->Row(a), dataset_->Row(b), dataset_->dim());
  }

  /// Squared distance from an external query vector to a dataset vector.
  float ToQuery(const float* query, VectorId id) {
    ++count_;
    return L2Sq(query, dataset_->Row(id), dataset_->dim());
  }

  /// Number of distance computations performed so far.
  std::uint64_t count() const { return count_; }
  void ResetCount() { count_ = 0; }
  void AddCount(std::uint64_t c) { count_ += c; }

  const Dataset& dataset() const { return *dataset_; }
  std::size_t dim() const { return dataset_->dim(); }

 private:
  const Dataset* dataset_;
  std::uint64_t count_;
};

}  // namespace gass::core

#endif  // GASS_CORE_DISTANCE_H_
