// Lightweight error propagation for recoverable failures (file IO, parsing).
//
// The library is exception-free: fatal invariant violations use GASS_CHECK,
// recoverable conditions return Status.

#ifndef GASS_CORE_STATUS_H_
#define GASS_CORE_STATUS_H_

#include <string>
#include <utility>

namespace gass::core {

/// Result of an operation that can fail for environmental reasons.
class Status {
 public:
  /// Success value.
  static Status Ok() { return Status(); }

  /// Failure with a human-readable message.
  static Status Error(std::string message) {
    Status s;
    s.ok_ = false;
    s.message_ = std::move(message);
    return s;
  }

  bool ok() const { return ok_; }
  const std::string& message() const { return message_; }

 private:
  bool ok_ = true;
  std::string message_;
};

}  // namespace gass::core

#endif  // GASS_CORE_STATUS_H_
