// Lightweight error propagation for recoverable failures (file IO, parsing).
//
// The library is exception-free: fatal invariant violations use GASS_CHECK,
// recoverable conditions return Status. Each Status carries a machine-
// readable code (so callers can branch on the failure class — e.g. retry
// kIoError but never kCorruption) plus a human-readable message.

#ifndef GASS_CORE_STATUS_H_
#define GASS_CORE_STATUS_H_

#include <string>
#include <utility>

namespace gass::core {

/// Failure class of a non-ok Status.
enum class StatusCode {
  kOk = 0,
  kUnknown = 1,          ///< Legacy Error() without a class.
  kIoError = 2,          ///< The environment failed (open/read/write).
  kCorruption = 3,       ///< The bytes are wrong (checksum, bounds, magic).
  kInvalidArgument = 4,  ///< The caller's request cannot be satisfied.
  kUnimplemented = 5,    ///< The operation is not supported here.
};

/// Human-readable name of a code ("CORRUPTION", "IO_ERROR", ...).
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kUnknown: return "UNKNOWN";
    case StatusCode::kIoError: return "IO_ERROR";
    case StatusCode::kCorruption: return "CORRUPTION";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
  }
  return "OK";
}

/// Result of an operation that can fail for environmental reasons.
class Status {
 public:
  /// Success value.
  static Status Ok() { return Status(); }

  /// Failure with a human-readable message (legacy, code kUnknown).
  static Status Error(std::string message) {
    return Status(StatusCode::kUnknown, std::move(message));
  }

  /// The environment failed: open/read/write/rename errors.
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }

  /// The stored bytes are wrong: bad magic, checksum mismatch, impossible
  /// lengths or offsets, out-of-range ids.
  static Status Corruption(std::string message) {
    return Status(StatusCode::kCorruption, std::move(message));
  }

  /// The request itself cannot be satisfied (wrong method, wrong dataset,
  /// mismatched build parameters).
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }

  /// The operation is not supported by this implementation.
  static Status Unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "CORRUPTION: section 'graph': checksum mismatch" — for logs and CLIs.
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

 private:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace gass::core

/// Propagates a non-ok Status to the caller; evaluates `expr` exactly once.
#define GASS_RETURN_IF_ERROR(expr)                     \
  do {                                                 \
    ::gass::core::Status gass_status_tmp_ = (expr);    \
    if (!gass_status_tmp_.ok()) return gass_status_tmp_; \
  } while (false)

#endif  // GASS_CORE_STATUS_H_
