#include "core/dataset.h"

#include <cstdio>
#include <cstring>

namespace gass::core {

Dataset::Dataset(std::size_t n, std::size_t dim)
    : n_(n), dim_(dim), data_(n * dim) {
  GASS_CHECK(dim > 0 || n == 0);
}

Dataset Dataset::Clone() const {
  Dataset copy(n_, dim_);
  copy.data_ = data_;
  return copy;
}

Dataset Dataset::Prefix(std::size_t count) const {
  GASS_CHECK(count <= n_);
  Dataset out(count, dim_);
  std::memcpy(out.data_.data(), data_.data(), count * dim_ * sizeof(float));
  return out;
}

Dataset Dataset::Select(const std::vector<VectorId>& ids) const {
  Dataset out(ids.size(), dim_);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    std::memcpy(out.MutableRow(static_cast<VectorId>(i)), Row(ids[i]),
                dim_ * sizeof(float));
  }
  return out;
}

DatasetView DatasetView::All(const Dataset& parent) {
  std::vector<VectorId> ids(parent.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<VectorId>(i);
  }
  return DatasetView(parent, std::move(ids));
}

Dataset DatasetView::Materialize() const {
  GASS_CHECK(parent_ != nullptr || ids_.empty());
  if (parent_ == nullptr) return Dataset();
  return parent_->Select(ids_);
}

void Dataset::Append(const Dataset& other) {
  if (other.empty()) return;
  if (empty()) {
    dim_ = other.dim_;
  }
  GASS_CHECK(dim_ == other.dim_);
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  n_ += other.n_;
}

namespace {

// RAII wrapper over std::FILE so early returns do not leak handles.
class File {
 public:
  File(const std::string& path, const char* mode)
      : f_(std::fopen(path.c_str(), mode)) {}
  ~File() {
    if (f_ != nullptr) std::fclose(f_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  std::FILE* get() const { return f_; }
  bool ok() const { return f_ != nullptr; }

 private:
  std::FILE* f_;
};

}  // namespace

Status ReadFvecs(const std::string& path, Dataset* out) {
  File file(path, "rb");
  if (!file.ok()) return Status::IoError("cannot open " + path);

  std::vector<float> values;
  std::size_t dim = 0;
  std::size_t n = 0;
  for (;;) {
    std::int32_t d = 0;
    std::size_t read = std::fread(&d, sizeof(d), 1, file.get());
    if (read == 0) break;  // Clean EOF between records.
    if (d <= 0) return Status::Corruption("corrupt fvecs header in " + path);
    if (dim == 0) dim = static_cast<std::size_t>(d);
    if (static_cast<std::size_t>(d) != dim) {
      return Status::Corruption("inconsistent dimensions in " + path);
    }
    values.resize((n + 1) * dim);
    if (std::fread(values.data() + n * dim, sizeof(float), dim, file.get()) !=
        dim) {
      return Status::Corruption("truncated fvecs record in " + path);
    }
    ++n;
  }
  Dataset dataset(n, dim == 0 ? 1 : dim);
  if (n > 0) {
    std::memcpy(dataset.mutable_data(), values.data(),
                n * dim * sizeof(float));
  }
  *out = std::move(dataset);
  return Status::Ok();
}

Status WriteFvecs(const std::string& path, const Dataset& dataset) {
  File file(path, "wb");
  if (!file.ok()) return Status::IoError("cannot create " + path);
  const std::int32_t d = static_cast<std::int32_t>(dataset.dim());
  for (VectorId i = 0; i < dataset.size(); ++i) {
    if (std::fwrite(&d, sizeof(d), 1, file.get()) != 1 ||
        std::fwrite(dataset.Row(i), sizeof(float), dataset.dim(),
                    file.get()) != dataset.dim()) {
      return Status::IoError("short write to " + path);
    }
  }
  return Status::Ok();
}

Status ReadBvecs(const std::string& path, Dataset* out) {
  File file(path, "rb");
  if (!file.ok()) return Status::IoError("cannot open " + path);

  std::vector<float> values;
  std::vector<std::uint8_t> row;
  std::size_t dim = 0;
  std::size_t n = 0;
  for (;;) {
    std::int32_t d = 0;
    std::size_t read = std::fread(&d, sizeof(d), 1, file.get());
    if (read == 0) break;
    if (d <= 0) return Status::Corruption("corrupt bvecs header in " + path);
    if (dim == 0) dim = static_cast<std::size_t>(d);
    if (static_cast<std::size_t>(d) != dim) {
      return Status::Corruption("inconsistent dimensions in " + path);
    }
    row.resize(dim);
    if (std::fread(row.data(), 1, dim, file.get()) != dim) {
      return Status::Corruption("truncated bvecs record in " + path);
    }
    values.resize((n + 1) * dim);
    for (std::size_t j = 0; j < dim; ++j) {
      values[n * dim + j] = static_cast<float>(row[j]);
    }
    ++n;
  }
  Dataset dataset(n, dim == 0 ? 1 : dim);
  if (n > 0) {
    std::memcpy(dataset.mutable_data(), values.data(),
                n * dim * sizeof(float));
  }
  *out = std::move(dataset);
  return Status::Ok();
}

Status ReadIvecs(const std::string& path,
                 std::vector<std::vector<std::int32_t>>* out) {
  File file(path, "rb");
  if (!file.ok()) return Status::IoError("cannot open " + path);
  out->clear();
  for (;;) {
    std::int32_t count = 0;
    std::size_t read = std::fread(&count, sizeof(count), 1, file.get());
    if (read == 0) break;
    if (count < 0) return Status::Corruption("corrupt ivecs header in " + path);
    std::vector<std::int32_t> row(static_cast<std::size_t>(count));
    if (count > 0 && std::fread(row.data(), sizeof(std::int32_t), row.size(),
                                file.get()) != row.size()) {
      return Status::Corruption("truncated ivecs record in " + path);
    }
    out->push_back(std::move(row));
  }
  return Status::Ok();
}

Status WriteIvecs(const std::string& path,
                  const std::vector<std::vector<std::int32_t>>& rows) {
  File file(path, "wb");
  if (!file.ok()) return Status::IoError("cannot create " + path);
  for (const auto& row : rows) {
    const std::int32_t count = static_cast<std::int32_t>(row.size());
    if (std::fwrite(&count, sizeof(count), 1, file.get()) != 1) {
      return Status::IoError("short write to " + path);
    }
    if (!row.empty() && std::fwrite(row.data(), sizeof(std::int32_t),
                                    row.size(), file.get()) != row.size()) {
      return Status::IoError("short write to " + path);
    }
  }
  return Status::Ok();
}

}  // namespace gass::core
