// Cost accounting shared by builds and searches.

#ifndef GASS_CORE_STATS_H_
#define GASS_CORE_STATS_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace gass::core {

/// Costs accumulated by one or more searches (or by an index build).
///
/// `distance_computations` is the paper's primary hardware-independent
/// measure; `hops` counts expanded graph vertices. `deadline_expiries`
/// counts searches cut short by a Deadline (0 or 1 per query; additive
/// across aggregation like the other fields).
struct SearchStats {
  std::uint64_t distance_computations = 0;
  std::uint64_t hops = 0;
  std::uint64_t deadline_expiries = 0;
  /// Shard sub-searches this query fanned out to (0 for unsharded indexes;
  /// set by shard::ShardedIndex, aggregated additively like the rest).
  std::uint64_t shards_probed = 0;
  /// Shard sub-searches that contributed nothing because the shard failed
  /// (sub-search error or injected fault) or was skipped by an open circuit
  /// breaker. Fault-caused, unlike deadline_expiries; see docs/SHARDING.md
  /// "Failure semantics".
  std::uint64_t shards_failed = 0;
  /// Hedged backup sub-searches launched after the hedge trigger fired
  /// (shard::ShardedIndexOptions::hedge_fraction), and how many of those
  /// backups resolved their shard before the primary did.
  std::uint64_t shards_hedged = 0;
  std::uint64_t hedge_wins = 0;
  /// Shard sub-searches that failed on one replica and were retried (and
  /// answered) by another replica of the same shard — fault-masking that
  /// never surfaces as shards_failed (set by shard::ShardedIndex when
  /// replication > 1; see docs/SHARDING.md "Replication").
  std::uint64_t replica_failovers = 0;
  /// Vectors prefetched ahead of the batched distance evaluations in beam
  /// search (the memory-latency-hiding half of the SIMD pipeline; see
  /// docs/PERF.md). Deterministic for a fixed search, like hops.
  std::uint64_t prefetches = 0;
  double elapsed_seconds = 0.0;

  SearchStats& operator+=(const SearchStats& other) {
    distance_computations += other.distance_computations;
    hops += other.hops;
    deadline_expiries += other.deadline_expiries;
    shards_probed += other.shards_probed;
    shards_failed += other.shards_failed;
    shards_hedged += other.shards_hedged;
    hedge_wins += other.hedge_wins;
    replica_failovers += other.replica_failovers;
    prefetches += other.prefetches;
    elapsed_seconds += other.elapsed_seconds;
    return *this;
  }

  /// Mutex-free aggregation of SearchStats from concurrent searches.
  ///
  /// Serving threads call Add() once per finished query; readers take
  /// Snapshot() at any time. Counters are independent relaxed atomics:
  /// totals are exact once the writers quiesce, and a concurrent snapshot
  /// may only be "torn" across fields (never within one), which is fine
  /// for monitoring.
  class AtomicAccumulator {
   public:
    void Add(const SearchStats& s) {
      distance_computations_.fetch_add(s.distance_computations,
                                       std::memory_order_relaxed);
      hops_.fetch_add(s.hops, std::memory_order_relaxed);
      deadline_expiries_.fetch_add(s.deadline_expiries,
                                   std::memory_order_relaxed);
      shards_probed_.fetch_add(s.shards_probed, std::memory_order_relaxed);
      shards_failed_.fetch_add(s.shards_failed, std::memory_order_relaxed);
      shards_hedged_.fetch_add(s.shards_hedged, std::memory_order_relaxed);
      hedge_wins_.fetch_add(s.hedge_wins, std::memory_order_relaxed);
      replica_failovers_.fetch_add(s.replica_failovers,
                                   std::memory_order_relaxed);
      prefetches_.fetch_add(s.prefetches, std::memory_order_relaxed);
      // Stored in nanoseconds so the hot path never touches floating-point
      // CAS loops (pre-C++20 atomic<double> has no fetch_add).
      elapsed_ns_.fetch_add(
          static_cast<std::uint64_t>(s.elapsed_seconds * 1e9),
          std::memory_order_relaxed);
      queries_.fetch_add(1, std::memory_order_relaxed);
    }

    SearchStats Snapshot() const {
      SearchStats s;
      s.distance_computations =
          distance_computations_.load(std::memory_order_relaxed);
      s.hops = hops_.load(std::memory_order_relaxed);
      s.deadline_expiries = deadline_expiries_.load(std::memory_order_relaxed);
      s.shards_probed = shards_probed_.load(std::memory_order_relaxed);
      s.shards_failed = shards_failed_.load(std::memory_order_relaxed);
      s.shards_hedged = shards_hedged_.load(std::memory_order_relaxed);
      s.hedge_wins = hedge_wins_.load(std::memory_order_relaxed);
      s.replica_failovers =
          replica_failovers_.load(std::memory_order_relaxed);
      s.prefetches = prefetches_.load(std::memory_order_relaxed);
      s.elapsed_seconds =
          static_cast<double>(elapsed_ns_.load(std::memory_order_relaxed)) *
          1e-9;
      return s;
    }

    /// Number of Add() calls (i.e. queries aggregated so far).
    std::uint64_t queries() const {
      return queries_.load(std::memory_order_relaxed);
    }

    void Reset() {
      distance_computations_.store(0, std::memory_order_relaxed);
      hops_.store(0, std::memory_order_relaxed);
      deadline_expiries_.store(0, std::memory_order_relaxed);
      shards_probed_.store(0, std::memory_order_relaxed);
      shards_failed_.store(0, std::memory_order_relaxed);
      shards_hedged_.store(0, std::memory_order_relaxed);
      hedge_wins_.store(0, std::memory_order_relaxed);
      replica_failovers_.store(0, std::memory_order_relaxed);
      prefetches_.store(0, std::memory_order_relaxed);
      elapsed_ns_.store(0, std::memory_order_relaxed);
      queries_.store(0, std::memory_order_relaxed);
    }

   private:
    std::atomic<std::uint64_t> distance_computations_{0};
    std::atomic<std::uint64_t> hops_{0};
    std::atomic<std::uint64_t> deadline_expiries_{0};
    std::atomic<std::uint64_t> shards_probed_{0};
    std::atomic<std::uint64_t> shards_failed_{0};
    std::atomic<std::uint64_t> shards_hedged_{0};
    std::atomic<std::uint64_t> hedge_wins_{0};
    std::atomic<std::uint64_t> replica_failovers_{0};
    std::atomic<std::uint64_t> prefetches_{0};
    std::atomic<std::uint64_t> elapsed_ns_{0};
    std::atomic<std::uint64_t> queries_{0};
  };
};

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gass::core

#endif  // GASS_CORE_STATS_H_
