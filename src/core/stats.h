// Cost accounting shared by builds and searches.

#ifndef GASS_CORE_STATS_H_
#define GASS_CORE_STATS_H_

#include <chrono>
#include <cstdint>

namespace gass::core {

/// Costs accumulated by one or more searches (or by an index build).
///
/// `distance_computations` is the paper's primary hardware-independent
/// measure; `hops` counts expanded graph vertices.
struct SearchStats {
  std::uint64_t distance_computations = 0;
  std::uint64_t hops = 0;
  double elapsed_seconds = 0.0;

  SearchStats& operator+=(const SearchStats& other) {
    distance_computations += other.distance_computations;
    hops += other.hops;
    elapsed_seconds += other.elapsed_seconds;
    return *this;
  }
};

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gass::core

#endif  // GASS_CORE_STATS_H_
