#include "core/distance.h"

#include <cmath>

namespace gass::core {

// Four-way unrolled kernels: with -O2/-O3 and -march=native the compiler
// vectorizes these loops; explicit intrinsics are avoided for portability.

float L2Sq(const float* a, const float* b, std::size_t dim) {
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  std::size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  float acc = (acc0 + acc1) + (acc2 + acc3);
  for (; i < dim; ++i) {
    const float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

float Dot(const float* a, const float* b, std::size_t dim) {
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  std::size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  float acc = (acc0 + acc1) + (acc2 + acc3);
  for (; i < dim; ++i) acc += a[i] * b[i];
  return acc;
}

float Norm(const float* a, std::size_t dim) {
  return std::sqrt(Dot(a, a, dim));
}

}  // namespace gass::core
