// Process memory introspection for the indexing-footprint experiments.
//
// The paper reads peak virtual memory from the proc pseudo-filesystem
// (Section 4.4, footnote 1); PeakRssBytes/CurrentRssBytes do the same here,
// and MemoryLedger offers a portable, allocation-accounting alternative that
// works when /proc is unavailable (and is what the benches report, since the
// scaled-down experiments are too small for RSS deltas to be reliable).

#ifndef GASS_CORE_MEMORY_TRACKER_H_
#define GASS_CORE_MEMORY_TRACKER_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace gass::core {

/// Peak resident set size of this process in bytes (VmHWM), 0 if unknown.
std::size_t PeakRssBytes();

/// Current resident set size in bytes (VmRSS), 0 if unknown.
std::size_t CurrentRssBytes();

/// Peak virtual memory (VmPeak) in bytes, 0 if unknown — the measure the
/// paper's footprint figures use.
std::size_t PeakVmBytes();

/// Explicit accounting ledger: components report their logical footprint
/// (index structures + raw data) so benches can compare methods without
/// relying on allocator behaviour.
class MemoryLedger {
 public:
  void Add(const std::string& label, std::size_t bytes);
  std::size_t Total() const { return total_; }
  std::size_t Peak() const { return peak_; }
  void Release(std::size_t bytes);
  void Clear();

 private:
  std::size_t total_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace gass::core

#endif  // GASS_CORE_MEMORY_TRACKER_H_
