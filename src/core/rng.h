// Deterministic, seedable random number generation.
//
// Every randomized component of the library takes an explicit uint64 seed and
// derives its stream from this SplitMix64-based engine, so builds and
// experiments are reproducible bit-for-bit across runs.

#ifndef GASS_CORE_RNG_H_
#define GASS_CORE_RNG_H_

#include <cstdint>

namespace gass::core {

/// SplitMix64: a tiny, fast, high-quality 64-bit PRNG.
///
/// Deliberately not std::mt19937: SplitMix64 is trivially seedable (any seed
/// gives a good stream), copyable, and an order of magnitude cheaper to
/// construct, which matters when builders fork one stream per node.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Next raw 64-bit value.
  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  std::uint64_t UniformInt(std::uint64_t bound) { return Next() % bound; }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  float UniformFloat(float lo, float hi) {
    return lo + static_cast<float>(UniformDouble()) * (hi - lo);
  }

  /// Standard normal variate (Box-Muller, one value per call).
  double Normal();

  /// Forks an independent stream (for per-worker determinism).
  Rng Fork() { return Rng(Next()); }

 private:
  std::uint64_t state_;
};

inline double Rng::Normal() {
  // Box-Muller on two fresh uniforms; discards the second output for
  // simplicity (generation is not a hot path).
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  constexpr double kTwoPi = 6.283185307179586;
  return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
         __builtin_cos(kTwoPi * u2);
}

}  // namespace gass::core

#endif  // GASS_CORE_RNG_H_
