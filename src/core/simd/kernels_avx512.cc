// AVX-512F kernels in the canonical 16-lane order (see simd.h): one 16-lane
// accumulator per vector, native masked tail (untouched lanes keep their
// bits via _mm512_mask_add_ps), explicit mul+add (-ffp-contract=off), and
// the canonical pairwise reduction built from AVX512F-only extracts.
// Compiled only when the toolchain accepts -mavx512f; empty TU otherwise.

#if defined(__AVX512F__)

#include <immintrin.h>

#include <cmath>
#include <cstddef>

#include "core/simd/simd.h"

namespace gass::core::simd::internal {

namespace {

// Canonical reduction of one 16-lane accumulator: halves give s8 (lanes
// l and l+8 added), then the same 8->4->2->1 schedule as the AVX2 and
// scalar reductions, bit for bit. The accumulator is spilled through an
// aligned buffer because GCC's AVX-512 lane-extract intrinsics are built on
// _mm256_undefined_pd and trip -Wuninitialized; one L1 store+reload per
// distance is noise next to the main loop.
inline float Reduce16(__m512 acc) {
  alignas(64) float lanes[16];
  _mm512_store_ps(lanes, acc);
  const __m256 lo = _mm256_load_ps(lanes);      // lanes 0-7
  const __m256 hi = _mm256_load_ps(lanes + 8);  // lanes 8-15
  const __m256 s8 = _mm256_add_ps(lo, hi);
  const __m128 s4 =
      _mm_add_ps(_mm256_castps256_ps128(s8), _mm256_extractf128_ps(s8, 1));
  const __m128 s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));
  const __m128 s1 = _mm_add_ss(s2, _mm_movehdup_ps(s2));
  return _mm_cvtss_f32(s1);
}

}  // namespace

float Avx512L2Sq(const float* a, const float* b, std::size_t dim) {
  __m512 acc = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m512 d =
        _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    acc = _mm512_add_ps(acc, _mm512_mul_ps(d, d));
  }
  const std::size_t rem = dim - i;
  if (rem > 0) {
    const __mmask16 mask = static_cast<__mmask16>((1u << rem) - 1u);
    const __m512 d = _mm512_sub_ps(_mm512_maskz_loadu_ps(mask, a + i),
                                   _mm512_maskz_loadu_ps(mask, b + i));
    acc = _mm512_mask_add_ps(acc, mask, acc, _mm512_mul_ps(d, d));
  }
  return Reduce16(acc);
}

float Avx512Dot(const float* a, const float* b, std::size_t dim) {
  __m512 acc = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    acc = _mm512_add_ps(
        acc, _mm512_mul_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i)));
  }
  const std::size_t rem = dim - i;
  if (rem > 0) {
    const __mmask16 mask = static_cast<__mmask16>((1u << rem) - 1u);
    const __m512 p = _mm512_mul_ps(_mm512_maskz_loadu_ps(mask, a + i),
                                   _mm512_maskz_loadu_ps(mask, b + i));
    acc = _mm512_mask_add_ps(acc, mask, acc, p);
  }
  return Reduce16(acc);
}

float Avx512Norm(const float* a, std::size_t dim) {
  return std::sqrt(Avx512Dot(a, a, dim));
}

void Avx512L2SqBatch(const float* query, const float* const* rows,
                     std::size_t n, std::size_t dim, float* out) {
  std::size_t r = 0;
  // Rows in pairs: query loads are shared, each row keeps its own canonical
  // accumulator (bit-identical to Avx512L2Sq).
  for (; r + 2 <= n; r += 2) {
    const float* b0 = rows[r];
    const float* b1 = rows[r + 1];
    __m512 acc0 = _mm512_setzero_ps();
    __m512 acc1 = _mm512_setzero_ps();
    std::size_t i = 0;
    for (; i + 16 <= dim; i += 16) {
      const __m512 q = _mm512_loadu_ps(query + i);
      const __m512 d0 = _mm512_sub_ps(q, _mm512_loadu_ps(b0 + i));
      const __m512 d1 = _mm512_sub_ps(q, _mm512_loadu_ps(b1 + i));
      acc0 = _mm512_add_ps(acc0, _mm512_mul_ps(d0, d0));
      acc1 = _mm512_add_ps(acc1, _mm512_mul_ps(d1, d1));
    }
    const std::size_t rem = dim - i;
    if (rem > 0) {
      const __mmask16 mask = static_cast<__mmask16>((1u << rem) - 1u);
      const __m512 q = _mm512_maskz_loadu_ps(mask, query + i);
      const __m512 d0 = _mm512_sub_ps(q, _mm512_maskz_loadu_ps(mask, b0 + i));
      const __m512 d1 = _mm512_sub_ps(q, _mm512_maskz_loadu_ps(mask, b1 + i));
      acc0 = _mm512_mask_add_ps(acc0, mask, acc0, _mm512_mul_ps(d0, d0));
      acc1 = _mm512_mask_add_ps(acc1, mask, acc1, _mm512_mul_ps(d1, d1));
    }
    out[r] = Reduce16(acc0);
    out[r + 1] = Reduce16(acc1);
  }
  if (r < n) out[r] = Avx512L2Sq(query, rows[r], dim);
}

void Avx512DotBatch(const float* query, const float* const* rows,
                    std::size_t n, std::size_t dim, float* out) {
  std::size_t r = 0;
  for (; r + 2 <= n; r += 2) {
    const float* b0 = rows[r];
    const float* b1 = rows[r + 1];
    __m512 acc0 = _mm512_setzero_ps();
    __m512 acc1 = _mm512_setzero_ps();
    std::size_t i = 0;
    for (; i + 16 <= dim; i += 16) {
      const __m512 q = _mm512_loadu_ps(query + i);
      acc0 = _mm512_add_ps(acc0, _mm512_mul_ps(q, _mm512_loadu_ps(b0 + i)));
      acc1 = _mm512_add_ps(acc1, _mm512_mul_ps(q, _mm512_loadu_ps(b1 + i)));
    }
    const std::size_t rem = dim - i;
    if (rem > 0) {
      const __mmask16 mask = static_cast<__mmask16>((1u << rem) - 1u);
      const __m512 q = _mm512_maskz_loadu_ps(mask, query + i);
      const __m512 p0 = _mm512_mul_ps(q, _mm512_maskz_loadu_ps(mask, b0 + i));
      const __m512 p1 = _mm512_mul_ps(q, _mm512_maskz_loadu_ps(mask, b1 + i));
      acc0 = _mm512_mask_add_ps(acc0, mask, acc0, p0);
      acc1 = _mm512_mask_add_ps(acc1, mask, acc1, p1);
    }
    out[r] = Reduce16(acc0);
    out[r + 1] = Reduce16(acc1);
  }
  if (r < n) out[r] = Avx512Dot(query, rows[r], dim);
}

}  // namespace gass::core::simd::internal

#endif  // defined(__AVX512F__)
