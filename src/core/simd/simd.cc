// Runtime CPU-feature detection and the kernel dispatch tables.
//
// Which kernel sets exist in this binary is decided at build time
// (GASS_SIMD_HAVE_AVX2 / _AVX512 / _NEON, set by src/CMakeLists.txt when the
// toolchain accepts the matching -m flags); which of those actually runs is
// decided here, once, at first use — from the CPU's feature bits, overridden
// by the GASS_SIMD_LEVEL environment variable.

#include "core/simd/simd.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/macros.h"

namespace gass::core::simd {

namespace {

const DistanceKernels kScalarKernels = {
    internal::ScalarL2Sq, internal::ScalarDot, internal::ScalarNorm,
    internal::ScalarL2SqBatch, internal::ScalarDotBatch};

#if defined(GASS_SIMD_HAVE_AVX2)
const DistanceKernels kAvx2Kernels = {
    internal::Avx2L2Sq, internal::Avx2Dot, internal::Avx2Norm,
    internal::Avx2L2SqBatch, internal::Avx2DotBatch};
#endif

#if defined(GASS_SIMD_HAVE_AVX512)
const DistanceKernels kAvx512Kernels = {
    internal::Avx512L2Sq, internal::Avx512Dot, internal::Avx512Norm,
    internal::Avx512L2SqBatch, internal::Avx512DotBatch};
#endif

#if defined(GASS_SIMD_HAVE_NEON)
const DistanceKernels kNeonKernels = {
    internal::NeonL2Sq, internal::NeonDot, internal::NeonNorm,
    internal::NeonL2SqBatch, internal::NeonDotBatch};
#endif

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kNeon:
      return "neon";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool ParseSimdLevel(const char* text, SimdLevel* out) {
  if (text == nullptr) return false;
  if (std::strcmp(text, "scalar") == 0) {
    *out = SimdLevel::kScalar;
  } else if (std::strcmp(text, "neon") == 0) {
    *out = SimdLevel::kNeon;
  } else if (std::strcmp(text, "avx2") == 0) {
    *out = SimdLevel::kAvx2;
  } else if (std::strcmp(text, "avx512") == 0) {
    *out = SimdLevel::kAvx512;
  } else {
    return false;
  }
  return true;
}

SimdLevel DetectedSimdLevel() {
#if defined(GASS_SIMD_HAVE_AVX512)
  if (__builtin_cpu_supports("avx512f")) return SimdLevel::kAvx512;
#endif
#if defined(GASS_SIMD_HAVE_AVX2)
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
#if defined(GASS_SIMD_HAVE_NEON)
  return SimdLevel::kNeon;
#else
  return SimdLevel::kScalar;
#endif
}

bool IsSupported(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kNeon:
#if defined(GASS_SIMD_HAVE_NEON)
      return true;
#else
      return false;
#endif
    case SimdLevel::kAvx2:
#if defined(GASS_SIMD_HAVE_AVX2)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case SimdLevel::kAvx512:
#if defined(GASS_SIMD_HAVE_AVX512)
      return __builtin_cpu_supports("avx512f");
#else
      return false;
#endif
  }
  return false;
}

std::vector<SimdLevel> SupportedSimdLevels() {
  std::vector<SimdLevel> levels;
  for (SimdLevel level : {SimdLevel::kScalar, SimdLevel::kNeon,
                          SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    if (IsSupported(level)) levels.push_back(level);
  }
  return levels;
}

const DistanceKernels& KernelsFor(SimdLevel level) {
  GASS_CHECK_MSG(IsSupported(level), "SIMD level '%s' is not supported here",
                 SimdLevelName(level));
  switch (level) {
#if defined(GASS_SIMD_HAVE_NEON)
    case SimdLevel::kNeon:
      return kNeonKernels;
#endif
#if defined(GASS_SIMD_HAVE_AVX2)
    case SimdLevel::kAvx2:
      return kAvx2Kernels;
#endif
#if defined(GASS_SIMD_HAVE_AVX512)
    case SimdLevel::kAvx512:
      return kAvx512Kernels;
#endif
    default:
      return kScalarKernels;
  }
}

SimdLevel ResolveSimdLevel(const char* override_text) {
  const SimdLevel detected = DetectedSimdLevel();
  if (override_text == nullptr || *override_text == '\0' ||
      std::strcmp(override_text, "auto") == 0) {
    return detected;
  }
  SimdLevel requested;
  if (!ParseSimdLevel(override_text, &requested)) {
    std::fprintf(stderr,
                 "GASS_SIMD_LEVEL='%s' is not a level "
                 "(scalar|neon|avx2|avx512|auto); using '%s'\n",
                 override_text, SimdLevelName(detected));
    return detected;
  }
  if (!IsSupported(requested)) {
    std::fprintf(stderr,
                 "GASS_SIMD_LEVEL='%s' is not supported on this "
                 "build/CPU; using '%s'\n",
                 override_text, SimdLevelName(detected));
    return detected;
  }
  return requested;
}

SimdLevel ActiveSimdLevel() {
  static const SimdLevel level =
      ResolveSimdLevel(std::getenv("GASS_SIMD_LEVEL"));
  return level;
}

const DistanceKernels& ActiveKernels() {
  static const DistanceKernels& kernels = KernelsFor(ActiveSimdLevel());
  return kernels;
}

}  // namespace gass::core::simd
