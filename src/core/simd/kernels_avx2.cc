// AVX2 kernels in the canonical 16-lane order (see simd.h): two 8-lane
// accumulators per vector (lanes 0-7 and 8-15), explicit mul+add (this TU is
// compiled with -ffp-contract=off so the compiler cannot fuse them), masked
// tail, and the canonical pairwise reduction. Compiled only when the
// toolchain accepts -mavx2; guarded so the TU is empty otherwise.

#if defined(__AVX2__)

#include <immintrin.h>

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "core/simd/simd.h"

namespace gass::core::simd::internal {

namespace {

// Lane mask for an m-element partial vector, m in [0, 8]: lanes < m active.
inline __m256i MaskFor(std::size_t m) {
  alignas(32) static const std::int32_t kMaskTable[16] = {
      -1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0};
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMaskTable + 8 - m));
}

// Canonical reduction of 16 lanes held as (lanes 0-7, lanes 8-15).
inline float Reduce16(__m256 lo, __m256 hi) {
  const __m256 s8 = _mm256_add_ps(lo, hi);  // s8[l] = acc[l] + acc[l+8]
  const __m128 s4 = _mm_add_ps(_mm256_castps256_ps128(s8),
                               _mm256_extractf128_ps(s8, 1));
  const __m128 s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));
  const __m128 s1 = _mm_add_ss(s2, _mm_movehdup_ps(s2));
  return _mm_cvtss_f32(s1);
}

// Applies the canonical tail (rem in [0, 16)) starting at a/b to the
// accumulator pair. Masked-out lanes are left bit-untouched.
inline void TailL2(__m256* acc_lo, __m256* acc_hi, const float* a,
                   const float* b, std::size_t rem) {
  const std::size_t m_lo = rem < 8 ? rem : 8;
  if (m_lo > 0) {
    const __m256i mask = MaskFor(m_lo);
    const __m256 d =
        _mm256_sub_ps(_mm256_maskload_ps(a, mask), _mm256_maskload_ps(b, mask));
    const __m256 sum = _mm256_add_ps(*acc_lo, _mm256_mul_ps(d, d));
    *acc_lo = _mm256_blendv_ps(*acc_lo, sum, _mm256_castsi256_ps(mask));
  }
  if (rem > 8) {
    const __m256i mask = MaskFor(rem - 8);
    const __m256 d = _mm256_sub_ps(_mm256_maskload_ps(a + 8, mask),
                                   _mm256_maskload_ps(b + 8, mask));
    const __m256 sum = _mm256_add_ps(*acc_hi, _mm256_mul_ps(d, d));
    *acc_hi = _mm256_blendv_ps(*acc_hi, sum, _mm256_castsi256_ps(mask));
  }
}

inline void TailDot(__m256* acc_lo, __m256* acc_hi, const float* a,
                    const float* b, std::size_t rem) {
  const std::size_t m_lo = rem < 8 ? rem : 8;
  if (m_lo > 0) {
    const __m256i mask = MaskFor(m_lo);
    const __m256 p =
        _mm256_mul_ps(_mm256_maskload_ps(a, mask), _mm256_maskload_ps(b, mask));
    const __m256 sum = _mm256_add_ps(*acc_lo, p);
    *acc_lo = _mm256_blendv_ps(*acc_lo, sum, _mm256_castsi256_ps(mask));
  }
  if (rem > 8) {
    const __m256i mask = MaskFor(rem - 8);
    const __m256 p = _mm256_mul_ps(_mm256_maskload_ps(a + 8, mask),
                                   _mm256_maskload_ps(b + 8, mask));
    const __m256 sum = _mm256_add_ps(*acc_hi, p);
    *acc_hi = _mm256_blendv_ps(*acc_hi, sum, _mm256_castsi256_ps(mask));
  }
}

}  // namespace

float Avx2L2Sq(const float* a, const float* b, std::size_t dim) {
  __m256 acc_lo = _mm256_setzero_ps();
  __m256 acc_hi = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m256 d0 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    const __m256 d1 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8));
    acc_lo = _mm256_add_ps(acc_lo, _mm256_mul_ps(d0, d0));
    acc_hi = _mm256_add_ps(acc_hi, _mm256_mul_ps(d1, d1));
  }
  TailL2(&acc_lo, &acc_hi, a + i, b + i, dim - i);
  return Reduce16(acc_lo, acc_hi);
}

float Avx2Dot(const float* a, const float* b, std::size_t dim) {
  __m256 acc_lo = _mm256_setzero_ps();
  __m256 acc_hi = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    acc_lo = _mm256_add_ps(
        acc_lo, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
    acc_hi = _mm256_add_ps(acc_hi, _mm256_mul_ps(_mm256_loadu_ps(a + i + 8),
                                                 _mm256_loadu_ps(b + i + 8)));
  }
  TailDot(&acc_lo, &acc_hi, a + i, b + i, dim - i);
  return Reduce16(acc_lo, acc_hi);
}

float Avx2Norm(const float* a, std::size_t dim) {
  return std::sqrt(Avx2Dot(a, a, dim));
}

void Avx2L2SqBatch(const float* query, const float* const* rows, std::size_t n,
                   std::size_t dim, float* out) {
  std::size_t r = 0;
  // Rows in pairs: query loads are shared, each row keeps its own
  // accumulator pair in the canonical order (bit-identical to Avx2L2Sq).
  for (; r + 2 <= n; r += 2) {
    const float* b0 = rows[r];
    const float* b1 = rows[r + 1];
    __m256 a0_lo = _mm256_setzero_ps(), a0_hi = _mm256_setzero_ps();
    __m256 a1_lo = _mm256_setzero_ps(), a1_hi = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 16 <= dim; i += 16) {
      const __m256 q_lo = _mm256_loadu_ps(query + i);
      const __m256 q_hi = _mm256_loadu_ps(query + i + 8);
      const __m256 d0 = _mm256_sub_ps(q_lo, _mm256_loadu_ps(b0 + i));
      const __m256 d1 = _mm256_sub_ps(q_hi, _mm256_loadu_ps(b0 + i + 8));
      const __m256 e0 = _mm256_sub_ps(q_lo, _mm256_loadu_ps(b1 + i));
      const __m256 e1 = _mm256_sub_ps(q_hi, _mm256_loadu_ps(b1 + i + 8));
      a0_lo = _mm256_add_ps(a0_lo, _mm256_mul_ps(d0, d0));
      a0_hi = _mm256_add_ps(a0_hi, _mm256_mul_ps(d1, d1));
      a1_lo = _mm256_add_ps(a1_lo, _mm256_mul_ps(e0, e0));
      a1_hi = _mm256_add_ps(a1_hi, _mm256_mul_ps(e1, e1));
    }
    TailL2(&a0_lo, &a0_hi, query + i, b0 + i, dim - i);
    TailL2(&a1_lo, &a1_hi, query + i, b1 + i, dim - i);
    out[r] = Reduce16(a0_lo, a0_hi);
    out[r + 1] = Reduce16(a1_lo, a1_hi);
  }
  if (r < n) out[r] = Avx2L2Sq(query, rows[r], dim);
}

void Avx2DotBatch(const float* query, const float* const* rows, std::size_t n,
                  std::size_t dim, float* out) {
  std::size_t r = 0;
  for (; r + 2 <= n; r += 2) {
    const float* b0 = rows[r];
    const float* b1 = rows[r + 1];
    __m256 a0_lo = _mm256_setzero_ps(), a0_hi = _mm256_setzero_ps();
    __m256 a1_lo = _mm256_setzero_ps(), a1_hi = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 16 <= dim; i += 16) {
      const __m256 q_lo = _mm256_loadu_ps(query + i);
      const __m256 q_hi = _mm256_loadu_ps(query + i + 8);
      a0_lo = _mm256_add_ps(a0_lo,
                            _mm256_mul_ps(q_lo, _mm256_loadu_ps(b0 + i)));
      a0_hi = _mm256_add_ps(a0_hi,
                            _mm256_mul_ps(q_hi, _mm256_loadu_ps(b0 + i + 8)));
      a1_lo = _mm256_add_ps(a1_lo,
                            _mm256_mul_ps(q_lo, _mm256_loadu_ps(b1 + i)));
      a1_hi = _mm256_add_ps(a1_hi,
                            _mm256_mul_ps(q_hi, _mm256_loadu_ps(b1 + i + 8)));
    }
    TailDot(&a0_lo, &a0_hi, query + i, b0 + i, dim - i);
    TailDot(&a1_lo, &a1_hi, query + i, b1 + i, dim - i);
    out[r] = Reduce16(a0_lo, a0_hi);
    out[r + 1] = Reduce16(a1_lo, a1_hi);
  }
  if (r < n) out[r] = Avx2Dot(query, rows[r], dim);
}

}  // namespace gass::core::simd::internal

#endif  // defined(__AVX2__)
