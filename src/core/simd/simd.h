// SIMD distance-kernel subsystem: explicit AVX-512 / AVX2 / NEON / scalar
// implementations of the core kernels (L2Sq, Dot, Norm, plus batched
// variants) behind one dispatch table chosen once at startup from runtime
// CPU-feature detection, overridable with the GASS_SIMD_LEVEL environment
// variable ("scalar", "neon", "avx2", "avx512", or "auto").
//
// Numerical contract — the canonical lane order
// ---------------------------------------------
// Every implementation, at every level, computes bit-identical results by
// following one fixed accumulation schedule ("the canonical order"):
//
//   * 16 virtual accumulator lanes; element i of the input contributes to
//     lane i mod 16 while full 16-element blocks last.
//   * The final r = dim mod 16 tail elements go to lanes 0..r-1 (one per
//     lane, in order); the remaining lanes are left untouched.
//   * Per element the update is  acc = acc + (x * y)  — an IEEE multiply
//     followed by an IEEE add, never a fused multiply-add (the kernel
//     translation units are compiled with -ffp-contract=off).
//   * Reduction: s8[l] = acc[l] + acc[l+8];  s4[l] = s8[l] + s8[l+4];
//     s2[l] = s4[l] + s4[l+2];  result = s2[0] + s2[1].
//
// Because IEEE-754 operations are deterministic, a fixed schedule makes the
// scalar reference and all vector kernels agree to the last bit, so index
// builds, searches, and the paper's distance-computation counts are
// reproducible across SIMD levels (see docs/PERF.md). The batched kernels
// evaluate each row with exactly the single-vector schedule, so batch and
// loop evaluation also agree bitwise.

#ifndef GASS_CORE_SIMD_SIMD_H_
#define GASS_CORE_SIMD_SIMD_H_

#include <cstddef>
#include <vector>

namespace gass::core::simd {

/// Kernel instruction tiers, ordered weakest to strongest. kNeon is only
/// supported on AArch64; kAvx2/kAvx512 only on x86-64 CPUs (and builds)
/// with the matching features.
enum class SimdLevel : int {
  kScalar = 0,
  kNeon = 1,
  kAvx2 = 2,
  kAvx512 = 3,
};

/// The dispatch table: one function pointer per kernel. All pointers are
/// always non-null.
struct DistanceKernels {
  /// Squared Euclidean distance between two `dim`-dimensional vectors.
  float (*l2sq)(const float* a, const float* b, std::size_t dim);
  /// Dot product of two `dim`-dimensional vectors.
  float (*dot)(const float* a, const float* b, std::size_t dim);
  /// Euclidean norm of a vector.
  float (*norm)(const float* a, std::size_t dim);
  /// out[i] = L2Sq(query, rows[i]) for i in [0, n); bit-identical to the
  /// corresponding l2sq calls but amortizes query loads across rows.
  void (*l2sq_batch)(const float* query, const float* const* rows,
                     std::size_t n, std::size_t dim, float* out);
  /// out[i] = Dot(query, rows[i]) for i in [0, n).
  void (*dot_batch)(const float* query, const float* const* rows,
                    std::size_t n, std::size_t dim, float* out);
};

/// Human-readable lower-case level name ("scalar", "neon", ...).
const char* SimdLevelName(SimdLevel level);

/// Parses a level name (case-sensitive, lower-case). Returns false and
/// leaves `*out` untouched for unknown names (including "auto").
bool ParseSimdLevel(const char* text, SimdLevel* out);

/// Strongest level this binary AND this CPU support. Never higher than what
/// the build enabled (a binary compiled without AVX-512 kernels reports at
/// most kAvx2 even on an AVX-512 machine).
SimdLevel DetectedSimdLevel();

/// Whether `level` is runnable here (compiled in and CPU-supported).
bool IsSupported(SimdLevel level);

/// Every runnable level, weakest first. Always contains kScalar.
std::vector<SimdLevel> SupportedSimdLevels();

/// The kernel table for a specific level. Aborts if unsupported — guard
/// with IsSupported() when probing.
const DistanceKernels& KernelsFor(SimdLevel level);

/// Resolves the level to run at given an override string (the value of
/// GASS_SIMD_LEVEL): null/empty/"auto" → DetectedSimdLevel(); a valid,
/// supported level name → that level; anything else → a warning on stderr
/// and DetectedSimdLevel(). Pure — exposed separately from ActiveSimdLevel
/// so the policy is testable without mutating the environment.
SimdLevel ResolveSimdLevel(const char* override_text);

/// The process-wide level: ResolveSimdLevel(getenv("GASS_SIMD_LEVEL")),
/// computed once on first use and fixed thereafter.
SimdLevel ActiveSimdLevel();

/// The process-wide kernel table, KernelsFor(ActiveSimdLevel()).
const DistanceKernels& ActiveKernels();

namespace internal {

// Per-level entry points, defined in kernels_<level>.cc. The scalar set is
// always compiled; the others only when the toolchain/arch provides the
// instruction set (see GASS_SIMD_HAVE_* in src/CMakeLists.txt).
float ScalarL2Sq(const float* a, const float* b, std::size_t dim);
float ScalarDot(const float* a, const float* b, std::size_t dim);
float ScalarNorm(const float* a, std::size_t dim);
void ScalarL2SqBatch(const float* query, const float* const* rows,
                     std::size_t n, std::size_t dim, float* out);
void ScalarDotBatch(const float* query, const float* const* rows,
                    std::size_t n, std::size_t dim, float* out);

float Avx2L2Sq(const float* a, const float* b, std::size_t dim);
float Avx2Dot(const float* a, const float* b, std::size_t dim);
float Avx2Norm(const float* a, std::size_t dim);
void Avx2L2SqBatch(const float* query, const float* const* rows,
                   std::size_t n, std::size_t dim, float* out);
void Avx2DotBatch(const float* query, const float* const* rows,
                  std::size_t n, std::size_t dim, float* out);

float Avx512L2Sq(const float* a, const float* b, std::size_t dim);
float Avx512Dot(const float* a, const float* b, std::size_t dim);
float Avx512Norm(const float* a, std::size_t dim);
void Avx512L2SqBatch(const float* query, const float* const* rows,
                     std::size_t n, std::size_t dim, float* out);
void Avx512DotBatch(const float* query, const float* const* rows,
                    std::size_t n, std::size_t dim, float* out);

float NeonL2Sq(const float* a, const float* b, std::size_t dim);
float NeonDot(const float* a, const float* b, std::size_t dim);
float NeonNorm(const float* a, std::size_t dim);
void NeonL2SqBatch(const float* query, const float* const* rows,
                   std::size_t n, std::size_t dim, float* out);
void NeonDotBatch(const float* query, const float* const* rows,
                  std::size_t n, std::size_t dim, float* out);

}  // namespace internal

}  // namespace gass::core::simd

#endif  // GASS_CORE_SIMD_SIMD_H_
