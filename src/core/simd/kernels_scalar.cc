// Scalar reference kernels in the canonical 16-lane order (see simd.h).
//
// This translation unit is the portable reference the vector kernels are
// tested against, so src/CMakeLists.txt compiles it with auto-vectorization
// and floating-point contraction disabled: the loops below must stay plain
// scalar multiplies and adds for "GASS_SIMD_LEVEL=scalar" to mean what it
// says (and for the bit-identity contract to hold on compilers that would
// otherwise emit FMAs).

#include <cmath>
#include <cstddef>

#include "core/simd/simd.h"

namespace gass::core::simd::internal {

namespace {

constexpr std::size_t kLanes = 16;

// The canonical reduction: lanes 16 -> 8 -> 4 -> 2 -> 1, pairwise.
inline float ReduceLanes(const float* acc) {
  float s8[8];
  for (int l = 0; l < 8; ++l) s8[l] = acc[l] + acc[l + 8];
  float s4[4];
  for (int l = 0; l < 4; ++l) s4[l] = s8[l] + s8[l + 4];
  const float s2_0 = s4[0] + s4[2];
  const float s2_1 = s4[1] + s4[3];
  return s2_0 + s2_1;
}

}  // namespace

float ScalarL2Sq(const float* a, const float* b, std::size_t dim) {
  float acc[kLanes] = {};
  std::size_t i = 0;
  for (; i + kLanes <= dim; i += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      const float d = a[i + l] - b[i + l];
      acc[l] = acc[l] + d * d;
    }
  }
  for (std::size_t l = 0; i < dim; ++i, ++l) {
    const float d = a[i] - b[i];
    acc[l] = acc[l] + d * d;
  }
  return ReduceLanes(acc);
}

float ScalarDot(const float* a, const float* b, std::size_t dim) {
  float acc[kLanes] = {};
  std::size_t i = 0;
  for (; i + kLanes <= dim; i += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      acc[l] = acc[l] + a[i + l] * b[i + l];
    }
  }
  for (std::size_t l = 0; i < dim; ++i, ++l) {
    acc[l] = acc[l] + a[i] * b[i];
  }
  return ReduceLanes(acc);
}

float ScalarNorm(const float* a, std::size_t dim) {
  return std::sqrt(ScalarDot(a, a, dim));
}

void ScalarL2SqBatch(const float* query, const float* const* rows,
                     std::size_t n, std::size_t dim, float* out) {
  for (std::size_t r = 0; r < n; ++r) out[r] = ScalarL2Sq(query, rows[r], dim);
}

void ScalarDotBatch(const float* query, const float* const* rows,
                    std::size_t n, std::size_t dim, float* out) {
  for (std::size_t r = 0; r < n; ++r) out[r] = ScalarDot(query, rows[r], dim);
}

}  // namespace gass::core::simd::internal
