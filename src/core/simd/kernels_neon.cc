// NEON (AArch64) kernels in the canonical 16-lane order (see simd.h): four
// 4-lane accumulators covering lanes 0-15, explicit vmul+vadd (no fused
// multiply-add; the TU is compiled with -ffp-contract=off), with the tail
// and reduction done on spilled lanes in exactly the scalar schedule.
// AArch64 NEON arithmetic is fully IEEE-754 compliant, so the bit-identity
// contract holds. Empty TU on other architectures.

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

#include <cmath>
#include <cstddef>

#include "core/simd/simd.h"

namespace gass::core::simd::internal {

namespace {

// Canonical tail + reduction over the 16 spilled accumulator lanes.
inline float FinishL2(float* acc, const float* a, const float* b,
                      std::size_t rem) {
  for (std::size_t l = 0; l < rem; ++l) {
    const float d = a[l] - b[l];
    acc[l] = acc[l] + d * d;
  }
  float s8[8];
  for (int l = 0; l < 8; ++l) s8[l] = acc[l] + acc[l + 8];
  float s4[4];
  for (int l = 0; l < 4; ++l) s4[l] = s8[l] + s8[l + 4];
  return (s4[0] + s4[2]) + (s4[1] + s4[3]);
}

inline float FinishDot(float* acc, const float* a, const float* b,
                       std::size_t rem) {
  for (std::size_t l = 0; l < rem; ++l) {
    acc[l] = acc[l] + a[l] * b[l];
  }
  float s8[8];
  for (int l = 0; l < 8; ++l) s8[l] = acc[l] + acc[l + 8];
  float s4[4];
  for (int l = 0; l < 4; ++l) s4[l] = s8[l] + s8[l + 4];
  return (s4[0] + s4[2]) + (s4[1] + s4[3]);
}

}  // namespace

float NeonL2Sq(const float* a, const float* b, std::size_t dim) {
  float32x4_t acc0 = vdupq_n_f32(0.0f);
  float32x4_t acc1 = vdupq_n_f32(0.0f);
  float32x4_t acc2 = vdupq_n_f32(0.0f);
  float32x4_t acc3 = vdupq_n_f32(0.0f);
  std::size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const float32x4_t d0 = vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    const float32x4_t d1 =
        vsubq_f32(vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
    const float32x4_t d2 =
        vsubq_f32(vld1q_f32(a + i + 8), vld1q_f32(b + i + 8));
    const float32x4_t d3 =
        vsubq_f32(vld1q_f32(a + i + 12), vld1q_f32(b + i + 12));
    acc0 = vaddq_f32(acc0, vmulq_f32(d0, d0));
    acc1 = vaddq_f32(acc1, vmulq_f32(d1, d1));
    acc2 = vaddq_f32(acc2, vmulq_f32(d2, d2));
    acc3 = vaddq_f32(acc3, vmulq_f32(d3, d3));
  }
  float lanes[16];
  vst1q_f32(lanes, acc0);
  vst1q_f32(lanes + 4, acc1);
  vst1q_f32(lanes + 8, acc2);
  vst1q_f32(lanes + 12, acc3);
  return FinishL2(lanes, a + i, b + i, dim - i);
}

float NeonDot(const float* a, const float* b, std::size_t dim) {
  float32x4_t acc0 = vdupq_n_f32(0.0f);
  float32x4_t acc1 = vdupq_n_f32(0.0f);
  float32x4_t acc2 = vdupq_n_f32(0.0f);
  float32x4_t acc3 = vdupq_n_f32(0.0f);
  std::size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    acc0 = vaddq_f32(acc0, vmulq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
    acc1 = vaddq_f32(acc1,
                     vmulq_f32(vld1q_f32(a + i + 4), vld1q_f32(b + i + 4)));
    acc2 = vaddq_f32(acc2,
                     vmulq_f32(vld1q_f32(a + i + 8), vld1q_f32(b + i + 8)));
    acc3 = vaddq_f32(acc3,
                     vmulq_f32(vld1q_f32(a + i + 12), vld1q_f32(b + i + 12)));
  }
  float lanes[16];
  vst1q_f32(lanes, acc0);
  vst1q_f32(lanes + 4, acc1);
  vst1q_f32(lanes + 8, acc2);
  vst1q_f32(lanes + 12, acc3);
  return FinishDot(lanes, a + i, b + i, dim - i);
}

float NeonNorm(const float* a, std::size_t dim) {
  return std::sqrt(NeonDot(a, a, dim));
}

void NeonL2SqBatch(const float* query, const float* const* rows,
                   std::size_t n, std::size_t dim, float* out) {
  for (std::size_t r = 0; r < n; ++r) out[r] = NeonL2Sq(query, rows[r], dim);
}

void NeonDotBatch(const float* query, const float* const* rows, std::size_t n,
                  std::size_t dim, float* out) {
  for (std::size_t r = 0; r < n; ++r) out[r] = NeonDot(query, rows[r], dim);
}

}  // namespace gass::core::simd::internal

#endif  // defined(__aarch64__) && defined(__ARM_NEON)
