// Beam search (Algorithm 1 of the paper): the single query-answering routine
// shared by every graph-based method.
//
// The search warms a sorted fixed-capacity candidate pool of width L with the
// seed nodes, then repeatedly expands the closest unexplored candidate,
// inserting its unvisited out-neighbors, until every candidate in the pool is
// explored. The best k candidates are returned.

#ifndef GASS_CORE_BEAM_SEARCH_H_
#define GASS_CORE_BEAM_SEARCH_H_

#include <cstddef>
#include <vector>

#include "core/deadline.h"
#include "core/distance.h"
#include "core/graph.h"
#include "core/neighbor.h"
#include "core/stats.h"
#include "core/tombstones.h"
#include "core/types.h"
#include "core/visited.h"

namespace gass::core {

namespace internal {

/// Result emission shared by BeamSearch overloads: the pool's best k
/// candidates, minus logically deleted ids. Tombstoned nodes still steer
/// the traversal (they stay in the graph as waypoints); they are only
/// barred from the answer. With deletions present the result may hold
/// fewer than k neighbors — the pool is not re-widened, keeping the
/// explored set (and therefore distance_computations/hops) bit-identical
/// to a tombstone-free search. The null/empty path is the exact pre-delete
/// code path.
inline std::vector<Neighbor> EmitTopK(const CandidatePool& pool,
                                      std::size_t k,
                                      const TombstoneSet* tombstones) {
  if (tombstones == nullptr || tombstones->empty()) return pool.TopK(k);
  std::vector<Neighbor> out;
  out.reserve(k);
  for (std::size_t i = 0; i < pool.size() && out.size() < k; ++i) {
    if (tombstones->Contains(pool[i].id)) continue;
    out.push_back(pool[i]);
  }
  return out;
}

inline void ExpandNeighbors(const Graph& graph, VectorId v,
                            const VectorId** out, std::size_t* degree) {
  const auto& list = graph.Neighbors(v);
  *out = list.data();
  *degree = list.size();
}

inline void ExpandNeighbors(const FlatGraph& graph, VectorId v,
                            const VectorId** out, std::size_t* degree) {
  *out = graph.Neighbors(v, degree);
}

/// Neighbors evaluated per batched kernel call during expansion.
inline constexpr std::size_t kExpandBatch = DistanceComputer::kBatchChunk;

}  // namespace internal

/// Runs Algorithm 1 over `graph` (Graph or FlatGraph).
///
/// `seeds` warm the candidate pool (the first seed acts as the entry node —
/// it is simply the first candidate expanded, since the pool is sorted by
/// distance the distinction only matters for instrumentation). `beam_width`
/// is L (clamped up to k). `visited` must cover the graph's vertex range and
/// is re-epoched here. Distance computations are counted on `dc`; expanded
/// hops on `stats` when provided.
///
/// `deadline`, when given, is polled every kDeadlineCheckHops expansions;
/// on expiry the search stops and returns its best-so-far answers (a
/// partial result), recording the cutoff in `stats->deadline_expiries`.
///
/// `tombstones`, when given, filters logically deleted ids out of the
/// returned results (traversal is unaffected; see internal::EmitTopK).
inline constexpr std::uint64_t kDeadlineCheckHops = 32;

template <typename GraphT>
std::vector<Neighbor> BeamSearch(const GraphT& graph, DistanceComputer& dc,
                                 const float* query,
                                 const std::vector<VectorId>& seeds,
                                 std::size_t k, std::size_t beam_width,
                                 VisitedTable* visited,
                                 SearchStats* stats = nullptr,
                                 float prune_bound = 3.402823466e38f,
                                 const Deadline* deadline = nullptr,
                                 const TombstoneSet* tombstones = nullptr) {
  const std::size_t width = beam_width < k ? k : beam_width;
  CandidatePool pool(width);
  pool.SetPruneBound(prune_bound);
  visited->NewEpoch();

  for (VectorId seed : seeds) {
    if (!visited->TryVisit(seed)) continue;
    pool.Insert(Neighbor(seed, dc.ToQuery(query, seed)));
  }

  std::uint64_t hops = 0;
  std::uint64_t prefetched = 0;
  for (;;) {
    if (deadline != nullptr && hops % kDeadlineCheckHops == 0 &&
        deadline->IsExpired()) {
      if (stats != nullptr) stats->deadline_expiries += 1;
      break;
    }
    const std::size_t next = pool.FirstUnexplored();
    if (next == pool.size()) break;
    const VectorId v = pool[next].id;
    pool.MarkExplored(next);
    ++hops;

    // Prefetch-then-batch expansion: gather the unvisited out-neighbors
    // (prefetching each row as it is claimed), evaluate the chunk with one
    // batched kernel call, then filter/insert sequentially. The evaluated
    // set, distance values, count, and insert order are all identical to the
    // one-at-a-time loop — only the memory/compute overlap changes.
    const VectorId* neighbors = nullptr;
    std::size_t degree = 0;
    internal::ExpandNeighbors(graph, v, &neighbors, &degree);
    VectorId chunk[internal::kExpandBatch];
    float dist[internal::kExpandBatch];
    std::size_t i = 0;
    while (i < degree) {
      std::size_t m = 0;
      for (; i < degree && m < internal::kExpandBatch; ++i) {
        const VectorId u = neighbors[i];
        if (!visited->TryVisit(u)) continue;
        dc.Prefetch(u);
        chunk[m++] = u;
      }
      if (m == 0) continue;
      prefetched += m;
      dc.ToQueryBatch(query, chunk, m, dist);
      for (std::size_t j = 0; j < m; ++j) {
        if (dist[j] >= pool.WorstDistance()) continue;
        pool.Insert(Neighbor(chunk[j], dist[j]));
      }
    }
  }

  if (stats != nullptr) {
    stats->hops += hops;
    stats->prefetches += prefetched;
  }
  return internal::EmitTopK(pool, k, tombstones);
}

/// BeamSearch variant that also returns every vertex whose distance was
/// evaluated, in visit order. Builders (NSG, Vamana) use the visited list as
/// the candidate set for diversified pruning.
template <typename GraphT>
std::vector<Neighbor> BeamSearchCollect(const GraphT& graph,
                                        DistanceComputer& dc,
                                        const float* query,
                                        const std::vector<VectorId>& seeds,
                                        std::size_t k, std::size_t beam_width,
                                        VisitedTable* visited,
                                        std::vector<Neighbor>* evaluated,
                                        SearchStats* stats = nullptr) {
  const std::size_t width = beam_width < k ? k : beam_width;
  CandidatePool pool(width);
  visited->NewEpoch();
  evaluated->clear();

  for (VectorId seed : seeds) {
    if (!visited->TryVisit(seed)) continue;
    const float d = dc.ToQuery(query, seed);
    evaluated->push_back(Neighbor(seed, d));
    pool.Insert(Neighbor(seed, d));
  }

  std::uint64_t hops = 0;
  std::uint64_t prefetched = 0;
  for (;;) {
    const std::size_t next = pool.FirstUnexplored();
    if (next == pool.size()) break;
    const VectorId v = pool[next].id;
    pool.MarkExplored(next);
    ++hops;

    // Same prefetch-then-batch expansion as BeamSearch; `evaluated` is
    // appended in chunk order, which equals the original visit order.
    const VectorId* neighbors = nullptr;
    std::size_t degree = 0;
    internal::ExpandNeighbors(graph, v, &neighbors, &degree);
    VectorId chunk[internal::kExpandBatch];
    float dist[internal::kExpandBatch];
    std::size_t i = 0;
    while (i < degree) {
      std::size_t m = 0;
      for (; i < degree && m < internal::kExpandBatch; ++i) {
        const VectorId u = neighbors[i];
        if (!visited->TryVisit(u)) continue;
        dc.Prefetch(u);
        chunk[m++] = u;
      }
      if (m == 0) continue;
      prefetched += m;
      dc.ToQueryBatch(query, chunk, m, dist);
      for (std::size_t j = 0; j < m; ++j) {
        evaluated->push_back(Neighbor(chunk[j], dist[j]));
        if (dist[j] >= pool.WorstDistance()) continue;
        pool.Insert(Neighbor(chunk[j], dist[j]));
      }
    }
  }

  if (stats != nullptr) {
    stats->hops += hops;
    stats->prefetches += prefetched;
  }
  return pool.TopK(k);
}

}  // namespace gass::core

#endif  // GASS_CORE_BEAM_SEARCH_H_
