#include "core/thread_pool.h"

#include <algorithm>

namespace gass::core {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = DefaultThreadCount();
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
    if (joined_) return;
    joined_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // A task accepted here is guaranteed to run: workers drain the queue
    // before exiting, and shutdown cannot begin between this push and the
    // notify because shutting_down_ flips under the same mutex.
    if (shutting_down_) return false;
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
  return true;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_exception_ != nullptr) {
    std::exception_ptr pending = first_exception_;
    first_exception_ = nullptr;
    lock.unlock();
    std::rethrow_exception(pending);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // Only reachable when shutting down.
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    try {
      task();
    } catch (...) {
      // An exception escaping a worker would std::terminate the process;
      // capture the first one for the next Wait() instead (see the header
      // contract). Later tasks still run.
      std::unique_lock<std::mutex> lock(mutex_);
      if (first_exception_ == nullptr) {
        first_exception_ = std::current_exception();
      }
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

std::size_t DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ParallelFor(std::size_t count, std::size_t threads,
                 const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  if (threads == 0) threads = DefaultThreadCount();
  threads = std::min(threads, count);
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(0, i);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(threads);
  std::mutex exception_mutex;
  std::exception_ptr first_exception;
  const std::size_t chunk = (count + threads - 1) / threads;
  for (std::size_t w = 0; w < threads; ++w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = std::min(begin + chunk, count);
    if (begin >= end) break;
    workers.emplace_back(
        [w, begin, end, &fn, &exception_mutex, &first_exception] {
          try {
            for (std::size_t i = begin; i < end; ++i) fn(w, i);
          } catch (...) {
            std::unique_lock<std::mutex> lock(exception_mutex);
            if (first_exception == nullptr) {
              first_exception = std::current_exception();
            }
          }
        });
  }
  for (auto& worker : workers) worker.join();
  if (first_exception != nullptr) std::rethrow_exception(first_exception);
}

}  // namespace gass::core
