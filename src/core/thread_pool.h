// Minimal work-stealing-free thread pool with a ParallelFor convenience.
//
// The surveyed methods all build multithreaded indexes; builders in this
// library use ParallelFor over node ranges, and the serving layer
// (serve::QueryExecutor) dispatches query batches through Submit. On a
// single-core machine the pool degrades to serial execution with no thread
// overhead.

#ifndef GASS_CORE_THREAD_POOL_H_
#define GASS_CORE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gass::core {

/// Fixed-size thread pool executing submitted closures FIFO.
///
/// Lifecycle contract: the pool accepts tasks from construction until
/// Shutdown() begins (the destructor calls Shutdown()). Tasks already
/// queued when Shutdown() starts are drained and run to completion;
/// Submit() during or after shutdown returns false and the task is
/// dropped, never enqueued into a dying pool. Submit/Wait may be called
/// from any thread; tasks must not themselves block on the pool.
///
/// Exception contract: a throwing task does NOT take the process down (the
/// historical behavior — an exception escaping a worker thread is
/// std::terminate). The worker catches it, the remaining tasks still run,
/// and the *first* captured exception is rethrown to the caller of the
/// next Wait(). Parallel shard builds (shard::ShardedIndex) rely on this:
/// one shard's std::bad_alloc surfaces in the coordinating thread as an
/// ordinary exception instead of aborting the server. Exceptions still
/// pending when Shutdown() runs without a Wait() are dropped.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task; returns false (dropping the task) once shutdown has
  /// begun. A true return guarantees the task will run.
  [[nodiscard]] bool Submit(std::function<void()> task);

  /// Blocks until every accepted task has completed, then rethrows the
  /// first exception any task threw since the last Wait() (clearing it).
  void Wait();

  /// Stops accepting tasks, drains the queue, and joins the workers.
  /// Idempotent; called by the destructor.
  void Shutdown();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  std::exception_ptr first_exception_;  // Guarded by mutex_.
  bool shutting_down_ = false;
  bool joined_ = false;
};

/// Runs fn(worker_index, i) for i in [0, count), split into contiguous
/// chunks across `threads` workers (0 = hardware concurrency; 1 = inline).
///
/// `worker_index` is in [0, threads) and is stable within a chunk, letting
/// callers keep per-worker scratch (DistanceComputer, VisitedTable) without
/// locking.
///
/// An exception thrown by `fn` ends that worker's chunk (other chunks run
/// to completion) and the first one captured is rethrown on the calling
/// thread after the join — same contract as ThreadPool::Wait().
void ParallelFor(std::size_t count, std::size_t threads,
                 const std::function<void(std::size_t, std::size_t)>& fn);

/// Number of workers ParallelFor(count, 0, ...) would use.
std::size_t DefaultThreadCount();

}  // namespace gass::core

#endif  // GASS_CORE_THREAD_POOL_H_
