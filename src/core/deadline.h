// Per-query time budgets for serving.
//
// A Deadline is a fixed point on the steady clock; search loops poll it at a
// coarse granularity (every few dozen hops) and return their best-so-far
// answers when it passes, so an expiring query degrades to a partial result
// instead of blocking the serving thread.

#ifndef GASS_CORE_DEADLINE_H_
#define GASS_CORE_DEADLINE_H_

#include <chrono>
#include <limits>

namespace gass::core {

/// A point in time after which a search should stop and return what it has.
///
/// Default-constructed deadlines never expire, so callers can thread one
/// through unconditionally. Copyable and immutable; safe to share across
/// threads.
class Deadline {
 public:
  /// Never expires.
  Deadline() : at_(Clock::time_point::max()) {}

  /// Expires `seconds` from now. Non-positive budgets expire immediately.
  static Deadline After(double seconds) {
    return Deadline(Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(seconds)));
  }

  /// An already-expired deadline (for tests and load-shedding).
  static Deadline Expired() { return Deadline(Clock::time_point::min()); }

  /// The earlier of two deadlines. An unlimited deadline is later than
  /// everything, so Earliest(unlimited, d) == d. Lets layered budgets
  /// (caller deadline vs. executor timeout) combine without either side
  /// silently overriding the other.
  static Deadline Earliest(const Deadline& a, const Deadline& b) {
    return a.at_ <= b.at_ ? a : b;
  }

  bool unlimited() const { return at_ == Clock::time_point::max(); }

  bool IsExpired() const {
    return !unlimited() && Clock::now() >= at_;
  }

  /// Seconds until expiry (negative when past; +inf when unlimited, -inf
  /// for Expired()).
  double RemainingSeconds() const {
    if (unlimited()) return std::numeric_limits<double>::infinity();
    // time_point::min() - now would overflow the int64 tick count and wrap
    // positive, making an Expired() deadline look like infinite budget.
    if (at_ == Clock::time_point::min()) {
      return -std::numeric_limits<double>::infinity();
    }
    return std::chrono::duration<double>(at_ - Clock::now()).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  explicit Deadline(Clock::time_point at) : at_(at) {}
  Clock::time_point at_;
};

}  // namespace gass::core

#endif  // GASS_CORE_DEADLINE_H_
