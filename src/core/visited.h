// Epoch-stamped visited-set, reusable across searches without clearing.

#ifndef GASS_CORE_VISITED_H_
#define GASS_CORE_VISITED_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/types.h"

namespace gass::core {

/// Tracks which vertices a traversal has touched.
///
/// Instead of clearing an n-bit array per query, each search bumps an epoch;
/// a vertex is "visited" when its stamp equals the current epoch. Reset is
/// O(1) amortized (a full clear happens only on epoch wrap, every ~2^32
/// searches — long-running serving processes do reach it).
///
/// Not thread-safe: concurrent searches use one table per thread (see
/// methods::SearchContext).
class VisitedTable {
 public:
  explicit VisitedTable(std::size_t n) : stamps_(n, 0), epoch_(1) {}

  /// Begins a new traversal; all vertices become unvisited.
  void NewEpoch() {
    if (epoch_ == kMaxEpoch) {
      // Wrapped: stale stamps from the previous cycle would alias the new
      // epoch values, so clear everything and restart. Stamp 0 is reserved
      // as "never visited", epoch 0 is never current.
      std::fill(stamps_.begin(), stamps_.end(), 0);
      epoch_ = 1;
      return;
    }
    ++epoch_;
  }

  bool Visited(VectorId id) const { return stamps_[id] == epoch_; }

  void MarkVisited(VectorId id) { stamps_[id] = epoch_; }

  /// Marks visited; returns true if this was the first visit this epoch.
  bool TryVisit(VectorId id) {
    if (stamps_[id] == epoch_) return false;
    stamps_[id] = epoch_;
    return true;
  }

  std::size_t size() const { return stamps_.size(); }

  std::uint32_t epoch() const { return epoch_; }

  /// Jumps the counter to just below the wrap point so tests can exercise
  /// the overflow reset without 2^32 NewEpoch() calls. Existing stamps are
  /// left untouched (they become stale, exactly as after that many real
  /// epochs with no visits).
  void JumpToEpochForTesting(std::uint32_t epoch) { epoch_ = epoch; }

  static constexpr std::uint32_t kMaxEpoch = 0xFFFFFFFFu;

 private:
  std::vector<std::uint32_t> stamps_;
  std::uint32_t epoch_;
};

}  // namespace gass::core

#endif  // GASS_CORE_VISITED_H_
