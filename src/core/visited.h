// Epoch-stamped visited-set, reusable across searches without clearing.

#ifndef GASS_CORE_VISITED_H_
#define GASS_CORE_VISITED_H_

#include <cstdint>
#include <vector>

#include "core/types.h"

namespace gass::core {

/// Tracks which vertices a traversal has touched.
///
/// Instead of clearing an n-bit array per query, each search bumps an epoch;
/// a vertex is "visited" when its stamp equals the current epoch. Reset is
/// O(1) amortized (a full clear happens only on epoch wrap, every ~2^32
/// searches).
class VisitedTable {
 public:
  explicit VisitedTable(std::size_t n) : stamps_(n, 0), epoch_(1) {}

  /// Begins a new traversal; all vertices become unvisited.
  void NewEpoch() {
    ++epoch_;
    if (epoch_ == 0) {  // Wrapped: clear and restart.
      std::fill(stamps_.begin(), stamps_.end(), 0);
      epoch_ = 1;
    }
  }

  bool Visited(VectorId id) const { return stamps_[id] == epoch_; }

  void MarkVisited(VectorId id) { stamps_[id] = epoch_; }

  /// Marks visited; returns true if this was the first visit this epoch.
  bool TryVisit(VectorId id) {
    if (stamps_[id] == epoch_) return false;
    stamps_[id] = epoch_;
    return true;
  }

  std::size_t size() const { return stamps_.size(); }

 private:
  std::vector<std::uint32_t> stamps_;
  std::uint32_t epoch_;
};

}  // namespace gass::core

#endif  // GASS_CORE_VISITED_H_
