#include "core/graph.h"

#include <algorithm>
#include <cstdio>
#include <queue>

#include "core/visited.h"

namespace gass::core {

bool Graph::AddEdgeUnique(VectorId from, VectorId to) {
  auto& list = adjacency_[from];
  if (std::find(list.begin(), list.end(), to) != list.end()) return false;
  list.push_back(to);
  return true;
}

std::size_t Graph::EdgeCount() const {
  std::size_t total = 0;
  for (const auto& list : adjacency_) total += list.size();
  return total;
}

std::size_t Graph::MaxDegree() const {
  std::size_t max_degree = 0;
  for (const auto& list : adjacency_) {
    max_degree = std::max(max_degree, list.size());
  }
  return max_degree;
}

double Graph::AverageDegree() const {
  if (adjacency_.empty()) return 0.0;
  return static_cast<double>(EdgeCount()) /
         static_cast<double>(adjacency_.size());
}

void Graph::MakeUndirected() {
  const std::size_t n = adjacency_.size();
  // Collect reverse edges first so iteration is not invalidated.
  std::vector<std::vector<VectorId>> reverse(n);
  for (VectorId v = 0; v < n; ++v) {
    for (VectorId u : adjacency_[v]) reverse[u].push_back(v);
  }
  for (VectorId v = 0; v < n; ++v) {
    auto& list = adjacency_[v];
    list.insert(list.end(), reverse[v].begin(), reverse[v].end());
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    // Self-loops can appear when inputs contained them; drop them.
    list.erase(std::remove(list.begin(), list.end(), v), list.end());
  }
}

std::size_t Graph::ReachableFrom(VectorId start) const {
  if (adjacency_.empty()) return 0;
  VisitedTable visited(adjacency_.size());
  visited.NewEpoch();
  std::queue<VectorId> frontier;
  frontier.push(start);
  visited.MarkVisited(start);
  std::size_t count = 1;
  while (!frontier.empty()) {
    const VectorId v = frontier.front();
    frontier.pop();
    for (VectorId u : adjacency_[v]) {
      if (visited.TryVisit(u)) {
        ++count;
        frontier.push(u);
      }
    }
  }
  return count;
}

std::size_t Graph::MemoryBytes() const {
  std::size_t bytes = adjacency_.size() * sizeof(std::vector<VectorId>);
  for (const auto& list : adjacency_) {
    bytes += list.capacity() * sizeof(VectorId);
  }
  return bytes;
}

Status Graph::Validate() const {
  const std::size_t n = adjacency_.size();
  for (VectorId v = 0; v < n; ++v) {
    for (const VectorId u : adjacency_[v]) {
      if (u >= n) {
        return Status::Corruption(
            "graph vertex " + std::to_string(v) + " has neighbor id " +
            std::to_string(u) + " out of range (n=" + std::to_string(n) +
            ")");
      }
      if (u == v) {
        return Status::Corruption("graph vertex " + std::to_string(v) +
                                  " has a self-loop");
      }
    }
  }
  return Status::Ok();
}

Status Graph::Save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot create " + path);
  const std::uint64_t n = adjacency_.size();
  bool ok = std::fwrite(&n, sizeof(n), 1, f) == 1;
  for (const auto& list : adjacency_) {
    if (!ok) break;
    const std::uint32_t degree = static_cast<std::uint32_t>(list.size());
    ok = std::fwrite(&degree, sizeof(degree), 1, f) == 1 &&
         (list.empty() ||
          std::fwrite(list.data(), sizeof(VectorId), list.size(), f) ==
              list.size());
  }
  std::fclose(f);
  return ok ? Status::Ok() : Status::IoError("short write to " + path);
}

Status Graph::Load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  std::uint64_t n = 0;
  if (std::fread(&n, sizeof(n), 1, f) != 1) {
    std::fclose(f);
    return Status::Corruption("truncated graph file " + path);
  }
  adjacency_.assign(n, {});
  for (std::uint64_t v = 0; v < n; ++v) {
    std::uint32_t degree = 0;
    if (std::fread(&degree, sizeof(degree), 1, f) != 1) {
      std::fclose(f);
      return Status::Corruption("truncated graph file " + path);
    }
    adjacency_[v].resize(degree);
    if (degree > 0 && std::fread(adjacency_[v].data(), sizeof(VectorId),
                                 degree, f) != degree) {
      std::fclose(f);
      return Status::Corruption("truncated graph file " + path);
    }
  }
  std::fclose(f);
  return Status::Ok();
}

FlatGraph FlatGraph::FromGraph(const Graph& graph) {
  FlatGraph flat;
  const std::size_t n = graph.size();
  flat.offsets_.resize(n + 1);
  flat.offsets_[0] = 0;
  for (VectorId v = 0; v < n; ++v) {
    flat.offsets_[v + 1] = flat.offsets_[v] + graph.Neighbors(v).size();
  }
  flat.edges_.resize(flat.offsets_[n]);
  for (VectorId v = 0; v < n; ++v) {
    const auto& list = graph.Neighbors(v);
    std::copy(list.begin(), list.end(), flat.edges_.begin() +
                                            static_cast<std::ptrdiff_t>(
                                                flat.offsets_[v]));
  }
  return flat;
}

}  // namespace gass::core
