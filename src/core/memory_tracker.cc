#include "core/memory_tracker.h"

#include <cstdio>
#include <cstring>

namespace gass::core {

namespace {

// Parses "<Key>:   <kB> kB" lines from /proc/self/status.
std::size_t ReadProcStatusKb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t value_kb = 0;
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      unsigned long long kb = 0;
      if (std::sscanf(line + key_len + 1, "%llu", &kb) == 1) {
        value_kb = static_cast<std::size_t>(kb);
      }
      break;
    }
  }
  std::fclose(f);
  return value_kb;
}

}  // namespace

std::size_t PeakRssBytes() { return ReadProcStatusKb("VmHWM") * 1024; }

std::size_t CurrentRssBytes() { return ReadProcStatusKb("VmRSS") * 1024; }

std::size_t PeakVmBytes() { return ReadProcStatusKb("VmPeak") * 1024; }

void MemoryLedger::Add(const std::string& label, std::size_t bytes) {
  (void)label;  // Labels exist for future itemized reporting.
  total_ += bytes;
  if (total_ > peak_) peak_ = total_;
}

void MemoryLedger::Release(std::size_t bytes) {
  total_ = bytes > total_ ? 0 : total_ - bytes;
}

void MemoryLedger::Clear() {
  total_ = 0;
  peak_ = 0;
}

}  // namespace gass::core
