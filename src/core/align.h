// Cache-line-aligned allocation for hot numeric buffers.

#ifndef GASS_CORE_ALIGN_H_
#define GASS_CORE_ALIGN_H_

#include <cstddef>
#include <new>

namespace gass::core {

/// One x86/ARM cache line; also the strongest alignment the SIMD kernels
/// can exploit (a full AVX-512 register load).
inline constexpr std::size_t kCacheLineBytes = 64;

/// Minimal C++17 allocator handing out `Alignment`-byte-aligned storage.
/// Used by Dataset so vector rows start on cache-line boundaries whenever
/// the row stride allows (see Dataset's alignment contract).
template <typename T, std::size_t Alignment>
class AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "Alignment must not weaken the type's natural alignment");

 public:
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

}  // namespace gass::core

#endif  // GASS_CORE_ALIGN_H_
