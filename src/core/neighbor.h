// Neighbor record and the fixed-capacity sorted candidate pool used by beam
// search.
//
// The paper harmonizes all methods onto "a single linear buffer as a priority
// queue" (Section 4.1); CandidatePool is that buffer: a sorted array of
// (distance, id, explored) capped at the beam width L.

#ifndef GASS_CORE_NEIGHBOR_H_
#define GASS_CORE_NEIGHBOR_H_

#include <cstddef>
#include <cstring>
#include <vector>

#include "core/macros.h"
#include "core/types.h"

namespace gass::core {

/// A candidate neighbor: vector id plus its (squared) distance to the query.
struct Neighbor {
  VectorId id = kInvalidVectorId;
  float distance = 0.0f;
  bool explored = false;

  Neighbor() = default;
  Neighbor(VectorId id_in, float distance_in, bool explored_in = false)
      : id(id_in), distance(distance_in), explored(explored_in) {}

  friend bool operator<(const Neighbor& a, const Neighbor& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  }
  friend bool operator==(const Neighbor& a, const Neighbor& b) {
    return a.id == b.id && a.distance == b.distance;
  }
};

/// Sorted fixed-capacity candidate buffer (ascending distance).
///
/// Insert is O(L) via memmove — for the beam widths used in practice
/// (L ≤ a few thousand) this beats heap-based queues on real hardware, which
/// is exactly why the surveyed implementations use it.
class CandidatePool {
 public:
  explicit CandidatePool(std::size_t capacity) : capacity_(capacity) {
    GASS_CHECK(capacity > 0);
    pool_.reserve(capacity + 1);
  }

  std::size_t size() const { return pool_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return pool_.empty(); }
  bool full() const { return pool_.size() == capacity_; }

  const Neighbor& operator[](std::size_t i) const { return pool_[i]; }
  Neighbor& operator[](std::size_t i) { return pool_[i]; }

  /// Distance of the current worst (last) candidate; +inf when not full.
  /// Once full, an external prune bound (SetPruneBound) caps the value —
  /// it behaves like pre-inserted "virtual answers" at the bound distance,
  /// the mechanism by which a search warmed by earlier answers (ELPIS's
  /// cross-leaf best-so-far) tightens its pruning. The bound deliberately
  /// does not apply while the pool is filling: early far-away candidates
  /// are kept as routing anchors, exactly as real warm queue entries would
  /// allow.
  float WorstDistance() const {
    if (!full()) return kInfinity;
    return pool_.back().distance < bound_ ? pool_.back().distance : bound_;
  }

  /// Installs an upper bound on acceptable candidate distances (effective
  /// once the pool is full).
  void SetPruneBound(float bound) { bound_ = bound; }

  /// Inserts a candidate, keeping the buffer sorted and capped.
  ///
  /// Returns the insertion position, or capacity() if the candidate was
  /// rejected (worse than the current worst of a full pool). Duplicate ids
  /// at equal distance are rejected.
  std::size_t Insert(Neighbor candidate) {
    if (full() && candidate.distance >= WorstDistance()) {
      return capacity_;
    }
    // Binary search for the insertion point.
    std::size_t lo = 0, hi = pool_.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (pool_[mid].distance < candidate.distance) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    // Reject exact duplicates (same id within the equal-distance run).
    std::size_t probe = lo;
    while (probe < pool_.size() &&
           pool_[probe].distance == candidate.distance) {
      if (pool_[probe].id == candidate.id) return capacity_;
      ++probe;
    }
    if (lo > 0 && pool_[lo - 1].distance == candidate.distance) {
      for (std::size_t back = lo; back-- > 0;) {
        if (pool_[back].distance != candidate.distance) break;
        if (pool_[back].id == candidate.id) return capacity_;
      }
    }
    pool_.insert(pool_.begin() + static_cast<std::ptrdiff_t>(lo), candidate);
    if (pool_.size() > capacity_) pool_.pop_back();
    return lo;
  }

  /// Index of the closest unexplored candidate, or size() if none.
  std::size_t FirstUnexplored() const {
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      if (!pool_[i].explored) return i;
    }
    return pool_.size();
  }

  void MarkExplored(std::size_t i) {
    GASS_DCHECK(i < pool_.size());
    pool_[i].explored = true;
  }

  /// Copies out the best `k` candidates (fewer if the pool is smaller).
  std::vector<Neighbor> TopK(std::size_t k) const {
    const std::size_t count = k < pool_.size() ? k : pool_.size();
    return std::vector<Neighbor>(pool_.begin(),
                                 pool_.begin() + static_cast<std::ptrdiff_t>(count));
  }

  const std::vector<Neighbor>& contents() const { return pool_; }

  void Clear() { pool_.clear(); }

 private:
  static constexpr float kInfinity = 3.402823466e38f;

  std::size_t capacity_;
  float bound_ = kInfinity;
  std::vector<Neighbor> pool_;
};

}  // namespace gass::core

#endif  // GASS_CORE_NEIGHBOR_H_
