// Fatal-check and logging macros.
//
// The library is exception-free; invariant violations abort with a message.

#ifndef GASS_CORE_MACROS_H_
#define GASS_CORE_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// Aborts with a file:line message when `condition` is false.
///
/// Used for programmer errors and violated invariants, never for recoverable
/// conditions (IO failures return core::Status instead).
#define GASS_CHECK(condition)                                               \
  do {                                                                      \
    if (!(condition)) {                                                     \
      std::fprintf(stderr, "GASS_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #condition);                                   \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

/// GASS_CHECK with a printf-style explanation appended.
#define GASS_CHECK_MSG(condition, ...)                                      \
  do {                                                                      \
    if (!(condition)) {                                                     \
      std::fprintf(stderr, "GASS_CHECK failed at %s:%d: %s: ", __FILE__,    \
                   __LINE__, #condition);                                   \
      std::fprintf(stderr, __VA_ARGS__);                                    \
      std::fprintf(stderr, "\n");                                           \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

#ifdef NDEBUG
#define GASS_DCHECK(condition) \
  do {                         \
  } while (false)
#else
#define GASS_DCHECK(condition) GASS_CHECK(condition)
#endif

#endif  // GASS_CORE_MACROS_H_
