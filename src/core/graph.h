// Proximity-graph representations.
//
// Graph is the mutable adjacency-list structure used during construction.
// FlatGraph is the read-only contiguous (CSR-style) layout used by the
// "optimized implementation" experiments (paper Fig. 17): one block holds all
// neighbor lists, removing per-node pointer chasing during search.

#ifndef GASS_CORE_GRAPH_H_
#define GASS_CORE_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/macros.h"
#include "core/status.h"
#include "core/types.h"

namespace gass::core {

/// Mutable directed proximity graph: per-vertex neighbor id lists.
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t n) : adjacency_(n) {}

  std::size_t size() const { return adjacency_.size(); }

  void Resize(std::size_t n) { adjacency_.resize(n); }

  const std::vector<VectorId>& Neighbors(VectorId v) const {
    GASS_DCHECK(v < adjacency_.size());
    return adjacency_[v];
  }
  std::vector<VectorId>& MutableNeighbors(VectorId v) {
    GASS_DCHECK(v < adjacency_.size());
    return adjacency_[v];
  }

  void AddEdge(VectorId from, VectorId to) {
    GASS_DCHECK(from < adjacency_.size() && to < adjacency_.size());
    adjacency_[from].push_back(to);
  }

  /// Adds `to` to `from`'s list only if absent. O(degree).
  bool AddEdgeUnique(VectorId from, VectorId to);

  void SetNeighbors(VectorId v, std::vector<VectorId> neighbors) {
    adjacency_[v] = std::move(neighbors);
  }

  /// Total number of directed edges.
  std::size_t EdgeCount() const;

  /// Maximum out-degree across vertices.
  std::size_t MaxDegree() const;

  /// Mean out-degree.
  double AverageDegree() const;

  /// Adds the reverse of every edge (deduplicated), making the graph
  /// effectively undirected. Used by DPG and NGT-style bidirection.
  void MakeUndirected();

  /// Number of vertices reachable from `start` by BFS over out-edges.
  std::size_t ReachableFrom(VectorId start) const;

  /// Approximate heap usage in bytes (ids + per-vector overhead).
  std::size_t MemoryBytes() const;

  /// Structural integrity check: every neighbor id is a valid vertex and no
  /// vertex lists itself. Used by the snapshot loader (never trust on-disk
  /// adjacency) and as a post-build assertion in construction tests.
  /// Returns kCorruption naming the first offending vertex.
  Status Validate() const;

  Status Save(const std::string& path) const;
  Status Load(const std::string& path);

 private:
  std::vector<std::vector<VectorId>> adjacency_;
};

/// Read-only contiguous graph layout.
///
/// Stores offsets[n+1] and one flat neighbor array; Neighbors(v) is a pure
/// pointer-arithmetic slice. This mirrors the hnswlib/ParlayANN layouts whose
/// impact the paper measures in Fig. 17.
class FlatGraph {
 public:
  FlatGraph() = default;

  /// Builds the flat layout from an adjacency-list graph.
  static FlatGraph FromGraph(const Graph& graph);

  std::size_t size() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  /// Pointer to v's neighbor ids; degree returned via out-parameter.
  const VectorId* Neighbors(VectorId v, std::size_t* degree) const {
    GASS_DCHECK(v + 1 < offsets_.size());
    *degree = offsets_[v + 1] - offsets_[v];
    return edges_.data() + offsets_[v];
  }

  std::size_t Degree(VectorId v) const {
    GASS_DCHECK(v + 1 < offsets_.size());
    return offsets_[v + 1] - offsets_[v];
  }

  std::size_t EdgeCount() const { return edges_.size(); }

  std::size_t MemoryBytes() const {
    return offsets_.size() * sizeof(std::uint64_t) +
           edges_.size() * sizeof(VectorId);
  }

 private:
  std::vector<std::uint64_t> offsets_;  // size n+1.
  std::vector<VectorId> edges_;
};

}  // namespace gass::core

#endif  // GASS_CORE_GRAPH_H_
