#include "methods/dpg_index.h"

#include <algorithm>

#include "core/macros.h"
#include "diversify/diversify.h"
#include "methods/build_util.h"
#include "methods/fingerprint.h"

namespace gass::methods {

using core::Graph;
using core::Neighbor;
using core::VectorId;

BuildStats DpgIndex::Build(const core::Dataset& data) {
  GASS_CHECK(!data.empty());
  data_ = &data;
  core::Timer timer;
  core::DistanceComputer dc(data);

  Graph base = knngraph::NnDescent(dc, params_.nndescent, params_.seed);

  // MOND-diversify each node's base list.
  diversify::Params prune;
  prune.strategy = diversify::Strategy::kMond;
  prune.theta_degrees = params_.theta_degrees;
  prune.max_degree = params_.max_degree;

  graph_ = Graph(data.size());
  for (VectorId v = 0; v < data.size(); ++v) {
    std::vector<Neighbor> candidates;
    const auto& base_list = base.Neighbors(v);
    candidates.reserve(base_list.size());
    AppendScored(dc, v, base_list.data(), base_list.size(), &candidates);
    std::sort(candidates.begin(), candidates.end());
    const std::vector<Neighbor> kept =
        diversify::Diversify(dc, v, candidates, prune);
    auto& list = graph_.MutableNeighbors(v);
    for (const Neighbor& nb : kept) list.push_back(nb.id);
  }

  // Undirect for connectivity (DPG's final step).
  graph_.MakeUndirected();

  visited_ = std::make_unique<core::VisitedTable>(data.size());
  seed_selector_ = std::make_unique<seeds::KsRandomSeeds>(
      data.size(), params_.seed ^ 0x5EEDULL);

  BuildStats stats;
  stats.elapsed_seconds = timer.Seconds();
  stats.distance_computations = dc.count();
  stats.index_bytes = IndexBytes();
  stats.peak_bytes = stats.index_bytes + base.MemoryBytes() * 2;
  return stats;
}

std::uint64_t DpgIndex::ParamsFingerprint() const {
  io::Encoder enc;
  EncodeParams(&enc, params_.nndescent);
  enc.U64(params_.max_degree);
  enc.F32(params_.theta_degrees);
  enc.U64(params_.seed);
  return FingerprintBytes(enc);
}

core::Status DpgIndex::LoadAux(const io::SnapshotReader& reader,
                               const std::string& prefix) {
  (void)reader;
  (void)prefix;
  seed_selector_ = std::make_unique<seeds::KsRandomSeeds>(
      data_->size(), params_.seed ^ 0x5EEDULL);
  return core::Status::Ok();
}

}  // namespace gass::methods
