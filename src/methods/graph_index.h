// The public index interface shared by all twelve methods.

#ifndef GASS_METHODS_GRAPH_INDEX_H_
#define GASS_METHODS_GRAPH_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/deadline.h"
#include "core/distance.h"
#include "core/graph.h"
#include "core/neighbor.h"
#include "core/rng.h"
#include "core/stats.h"
#include "core/status.h"
#include "core/tombstones.h"
#include "core/visited.h"
#include "io/snapshot.h"
#include "seeds/seed_selector.h"

namespace gass::obs {
class QueryTrace;  // obs/trace.h; methods/ only carries the pointer.
}  // namespace gass::obs

namespace gass::methods {

/// Per-query search knobs.
struct SearchParams {
  std::size_t k = 10;          ///< Neighbors to return.
  std::size_t beam_width = 64; ///< L of Algorithm 1.
  std::size_t num_seeds = 16;  ///< Advisory seed count for the SS strategy.
  /// Upper bound on acceptable squared distances; candidates at or beyond
  /// it are rejected without entering the pool. Used by coordinators that
  /// already hold answers (ELPIS warms later leaf searches with the current
  /// k-th best-so-far). Default: no bound.
  float prune_bound = 3.402823466e38f;
  /// Optional time budget (owned by the caller, e.g. serve::QueryExecutor).
  /// On expiry the search stops and returns its best-so-far answers,
  /// flagging `stats.deadline_expiries`. Null = unlimited.
  const core::Deadline* deadline = nullptr;
  /// Adaptive-degradation step: 0 = full effort; each step halves the
  /// effective beam width, never below k (see EffectiveBeamWidth()).
  /// Set by serve::Frontend under queue pressure so an overloaded server
  /// trades recall for latency instead of missing every deadline at once.
  std::uint32_t degrade_step = 0;
  /// Per-query trace sink (owned by the caller's obs::Tracer; null = not
  /// traced, the common case). Trace-aware indexes (shard::ShardedIndex)
  /// append stage spans to it; plain indexes ignore it and the serving
  /// tier records one whole-search span instead. Carried here — not as a
  /// fourth Search argument — so the span plumbing crosses the GraphIndex
  /// virtual boundary without touching twelve method signatures.
  obs::QueryTrace* trace = nullptr;
  /// Admission id of the enclosing serve request (serve::Frontend /
  /// serve::QueryExecutor assign one per query; 0 = unserved/unknown).
  /// Carried here, like `trace`, so composite indexes can key deterministic
  /// per-shard decisions — fault injection, trace sampling — on the query
  /// identity. Never part of the ParseSearchParams round trip.
  std::uint64_t admission_id = 0;
  /// Logically deleted ids to filter out of the returned neighbors (owned
  /// by the caller, e.g. serve::Updater, which keeps it consistent under
  /// its search lock). Traversal still walks tombstoned nodes — they
  /// remain graph waypoints — so with deletions a result may hold fewer
  /// than k answers. Null (the default) is the exact pre-delete code path.
  /// Like `trace`, never part of the ParseSearchParams round trip.
  const core::TombstoneSet* tombstones = nullptr;
};

/// The beam width a search actually runs with: `beam_width >> degrade_step`,
/// clamped to at least `k`. Every method's query path consumes the beam
/// width through this helper, so the serving tier's degradation knob applies
/// uniformly. With degrade_step == 0 this is exactly `max(beam_width, k)`,
/// the historic behavior.
inline std::size_t EffectiveBeamWidth(const SearchParams& params) {
  const std::size_t width =
      params.degrade_step >= 63 ? 0 : params.beam_width >> params.degrade_step;
  return width > params.k ? width : params.k;
}

/// How the serving tier handled a query. Plain (non-serving) searches always
/// report kFull; serve::Frontend distinguishes the four overload outcomes so
/// clients can tell a complete answer from a cheapened, truncated, or shed
/// one (see docs/SERVING.md).
enum class ServeOutcome : std::uint8_t {
  kFull = 0,   ///< Full-effort result.
  kDegraded,   ///< Served at a reduced effort step (see degrade_step).
  kExpired,    ///< Deadline truncated the search; best-so-far answers.
  kRejected,   ///< Shed before execution; no answers.
};

/// Short lowercase label ("full", "degraded", "expired", "rejected").
const char* ServeOutcomeName(ServeOutcome outcome);

/// One query's answers plus its costs.
struct SearchResult {
  std::vector<core::Neighbor> neighbors;
  core::SearchStats stats;
  /// True when a deadline cut the search short: `neighbors` holds the
  /// best-so-far answers, not a full-effort result. Set by deadline-running
  /// callers (serve::QueryExecutor) so batch consumers can tell truncated
  /// results apart without digging through stats.
  bool expired = false;
  /// True when a fault — not a deadline — cost the query some shard's
  /// contribution: a sub-search failed, a fault was injected, or an open
  /// circuit breaker skipped the shard at routing time. Independent of
  /// `expired`: a query can be partial without being expired (a shard
  /// failed fast, the rest completed) and expired without being partial
  /// (every shard answered, some truncated by the deadline). Set by
  /// shard::ShardedIndex; see docs/SHARDING.md "Failure semantics".
  bool partial = false;
  /// Overload disposition, set by the serving tier (kExpired wins over
  /// kDegraded when both apply; kRejected results carry no neighbors).
  ServeOutcome outcome = ServeOutcome::kFull;
  /// Degradation step the query actually ran with (0 = full effort).
  std::uint32_t degrade_step = 0;
};

/// Costs of one index construction.
struct BuildStats {
  double elapsed_seconds = 0.0;
  std::uint64_t distance_computations = 0;
  std::size_t index_bytes = 0;  ///< Final index footprint (excl. raw data).
  std::size_t peak_bytes = 0;   ///< Peak transient footprint during build.
};

/// Per-thread scratch for searching a shared, read-only index.
///
/// Holds everything a query mutates — the visited table and the RNG feeding
/// stochastic seed selection — so a single built index can be searched from
/// many threads at once, each thread bringing its own context (see
/// serve::SearchSessionPool for pooling/reuse). Contexts are cheap relative
/// to the index (4 bytes per vector) but not free; reuse them across
/// queries rather than constructing per query.
struct SearchContext {
  core::VisitedTable visited;
  core::Rng rng;

  SearchContext(std::size_t n, std::uint64_t seed)
      : visited(n), rng(seed) {}
};

/// A built graph-based vector index.
///
/// Lifecycle: construct with method parameters, call Build(data) once (the
/// dataset must outlive the index), then Search per query.
///
/// Thread-safety: the two-argument Search keeps per-query state inside the
/// index and is single-threaded — one instance per thread, or use the
/// three-argument const overload, which routes all mutable state through a
/// caller-owned SearchContext and may run concurrently from many threads on
/// one shared instance when SupportsConcurrentSearch() is true. Builds are
/// never concurrent with searches. See docs/SERVING.md for the per-method
/// contract.
class GraphIndex {
 public:
  virtual ~GraphIndex() = default;

  virtual std::string Name() const = 0;

  virtual BuildStats Build(const core::Dataset& data) = 0;

  virtual SearchResult Search(const float* query,
                              const SearchParams& params) = 0;

  /// Concurrent search: const, all per-query mutable state in `*ctx`.
  /// Aborts when SupportsConcurrentSearch() is false (composite indexes
  /// whose sub-indexes hold private query state, e.g. ELPIS).
  virtual SearchResult Search(const float* query, const SearchParams& params,
                              SearchContext* ctx) const;

  /// Whether the three-argument Search may be called, concurrently, on a
  /// shared instance.
  virtual bool SupportsConcurrentSearch() const { return false; }

  /// Creates a context sized for this (built) index. Virtual so composite
  /// indexes whose sub-searches run over a different vertex range than the
  /// bound dataset (shard::LiveShardedIndex sizes by its largest shard
  /// arena) can widen the visited table.
  virtual SearchContext MakeSearchContext(std::uint64_t seed) const;

  /// The searchable base graph (for inspection, flat re-layout, and tests).
  /// Indexes with no single base graph (ELPIS) abort; check HasBaseGraph().
  virtual const core::Graph& graph() const = 0;
  virtual bool HasBaseGraph() const { return true; }

  /// Final index footprint in bytes (graph + auxiliary seed structures),
  /// excluding the raw vectors.
  virtual std::size_t IndexBytes() const = 0;

  const core::Dataset* data() const { return data_; }

  // --- Persistence (see docs/PERSISTENCE.md) ---

  /// Stable 64-bit hash of the construction parameters (including the
  /// build seed). Stored in snapshot headers; LoadIndex() rejects a
  /// snapshot whose fingerprint differs from the target index's, so an
  /// index can never silently adopt a graph built with other knobs.
  virtual std::uint64_t ParamsFingerprint() const { return 0; }

  /// Writes the built index's state as snapshot sections named under
  /// `prefix` (composite indexes nest: HVS saves its base HNSW under
  /// "base.", ELPIS each leaf under "leaf<i>."). Default: kUnimplemented.
  virtual core::Status SaveSections(io::SnapshotWriter* writer,
                                    const std::string& prefix) const;

  /// Restores state from sections under `prefix`, binding the index to
  /// `data` (which must be the dataset the snapshot was built over and must
  /// outlive the index). Every count, offset, and neighbor id is validated
  /// before use. Default: kUnimplemented.
  virtual core::Status LoadSections(const io::SnapshotReader& reader,
                                    const std::string& prefix,
                                    const core::Dataset& data);

  /// Writes this built index to `path`. The default writes one crash-safe
  /// snapshot file (header + SaveSections); indexes whose on-disk form is a
  /// *set* of files override it (shard::ShardedIndex writes a manifest at
  /// `path` plus one snapshot per shard next to it). SaveIndex() delegates
  /// here, so callers never need to know which layout they are saving.
  virtual core::Status SaveSnapshot(const std::string& path) const;

  /// Inverse of SaveSnapshot: validates the snapshot's method name, params
  /// fingerprint, and dataset shape against this index / `data`, then
  /// restores state. LoadIndex() delegates here.
  virtual core::Status LoadSnapshot(const std::string& path,
                                    const core::Dataset& data);

 protected:
  const core::Dataset* data_ = nullptr;
};

/// Saves a built index to `path` as a crash-safe snapshot (written to
/// "<path>.tmp", fsynced, atomically renamed). Thin wrapper over
/// GraphIndex::SaveSnapshot — composite indexes may write extra files.
core::Status SaveIndex(const GraphIndex& index, const std::string& path);

/// Loads a snapshot into an unbuilt (or rebuilt) index. Fails with a
/// descriptive error when the snapshot's method name, params fingerprint,
/// or dataset shape (n, dim) does not match `index`/`data`. Thin wrapper
/// over GraphIndex::LoadSnapshot.
core::Status LoadIndex(GraphIndex* index, const core::Dataset& data,
                       const std::string& path);

/// Common implementation: a single base graph searched with Algorithm 1,
/// seeded by a pluggable SS strategy. Subclasses implement BuildGraph() and
/// install a seed selector.
class SingleGraphIndex : public GraphIndex {
 public:
  SearchResult Search(const float* query, const SearchParams& params) override;
  SearchResult Search(const float* query, const SearchParams& params,
                      SearchContext* ctx) const override;
  bool SupportsConcurrentSearch() const override { return true; }

  const core::Graph& graph() const override { return graph_; }
  std::size_t IndexBytes() const override;

  /// Replaces the query-time seed selector (used by the SS experiments).
  void SetSeedSelector(std::unique_ptr<seeds::SeedSelector> selector) {
    seed_selector_ = std::move(selector);
  }
  seeds::SeedSelector* seed_selector() { return seed_selector_.get(); }

  /// Saves the base graph under "<prefix>graph" plus any method sections
  /// (SaveAux); the inverse decodes and Validate()s the graph, rebinds
  /// `data`, and delegates seed-structure restoration to LoadAux.
  core::Status SaveSections(io::SnapshotWriter* writer,
                            const std::string& prefix) const override;
  core::Status LoadSections(const io::SnapshotReader& reader,
                            const std::string& prefix,
                            const core::Dataset& data) override;

 protected:
  /// Method-specific auxiliary sections (seed trees, hash tables). The
  /// defaults save nothing / fail with kUnimplemented — every method that
  /// snapshots must override LoadAux to reinstall its seed selector.
  virtual core::Status SaveAux(io::SnapshotWriter* writer,
                               const std::string& prefix) const;
  virtual core::Status LoadAux(const io::SnapshotReader& reader,
                               const std::string& prefix);

  /// Shared implementation behind both Search overloads. `rng` null means
  /// "use the seed selector's internal serial stream" (the classic
  /// single-threaded path, bit-for-bit identical to historic behavior).
  SearchResult SearchWith(const float* query, const SearchParams& params,
                          core::VisitedTable* visited, core::Rng* rng) const;

  core::Graph graph_;
  std::unique_ptr<seeds::SeedSelector> seed_selector_;
  std::unique_ptr<core::VisitedTable> visited_;
};

}  // namespace gass::methods

#endif  // GASS_METHODS_GRAPH_INDEX_H_
