// The public index interface shared by all twelve methods.

#ifndef GASS_METHODS_GRAPH_INDEX_H_
#define GASS_METHODS_GRAPH_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/distance.h"
#include "core/graph.h"
#include "core/neighbor.h"
#include "core/stats.h"
#include "core/visited.h"
#include "seeds/seed_selector.h"

namespace gass::methods {

/// Per-query search knobs.
struct SearchParams {
  std::size_t k = 10;          ///< Neighbors to return.
  std::size_t beam_width = 64; ///< L of Algorithm 1.
  std::size_t num_seeds = 16;  ///< Advisory seed count for the SS strategy.
  /// Upper bound on acceptable squared distances; candidates at or beyond
  /// it are rejected without entering the pool. Used by coordinators that
  /// already hold answers (ELPIS warms later leaf searches with the current
  /// k-th best-so-far). Default: no bound.
  float prune_bound = 3.402823466e38f;
};

/// One query's answers plus its costs.
struct SearchResult {
  std::vector<core::Neighbor> neighbors;
  core::SearchStats stats;
};

/// Costs of one index construction.
struct BuildStats {
  double elapsed_seconds = 0.0;
  std::uint64_t distance_computations = 0;
  std::size_t index_bytes = 0;  ///< Final index footprint (excl. raw data).
  std::size_t peak_bytes = 0;   ///< Peak transient footprint during build.
};

/// A built graph-based vector index.
///
/// Lifecycle: construct with method parameters, call Build(data) once (the
/// dataset must outlive the index), then Search per query. Search is not
/// const (seed selectors and the visited table carry per-query state); use
/// one index instance per thread or clone.
class GraphIndex {
 public:
  virtual ~GraphIndex() = default;

  virtual std::string Name() const = 0;

  virtual BuildStats Build(const core::Dataset& data) = 0;

  virtual SearchResult Search(const float* query,
                              const SearchParams& params) = 0;

  /// The searchable base graph (for inspection, flat re-layout, and tests).
  /// Indexes with no single base graph (ELPIS) abort; check HasBaseGraph().
  virtual const core::Graph& graph() const = 0;
  virtual bool HasBaseGraph() const { return true; }

  /// Final index footprint in bytes (graph + auxiliary seed structures),
  /// excluding the raw vectors.
  virtual std::size_t IndexBytes() const = 0;

  const core::Dataset* data() const { return data_; }

 protected:
  const core::Dataset* data_ = nullptr;
};

/// Common implementation: a single base graph searched with Algorithm 1,
/// seeded by a pluggable SS strategy. Subclasses implement BuildGraph() and
/// install a seed selector.
class SingleGraphIndex : public GraphIndex {
 public:
  SearchResult Search(const float* query, const SearchParams& params) override;

  const core::Graph& graph() const override { return graph_; }
  std::size_t IndexBytes() const override;

  /// Replaces the query-time seed selector (used by the SS experiments).
  void SetSeedSelector(std::unique_ptr<seeds::SeedSelector> selector) {
    seed_selector_ = std::move(selector);
  }
  seeds::SeedSelector* seed_selector() { return seed_selector_.get(); }

 protected:
  core::Graph graph_;
  std::unique_ptr<seeds::SeedSelector> seed_selector_;
  std::unique_ptr<core::VisitedTable> visited_;
};

}  // namespace gass::methods

#endif  // GASS_METHODS_GRAPH_INDEX_H_
