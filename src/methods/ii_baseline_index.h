// The paper's Section 4 experimental instrument: a basic Incremental
// Insertion (II) graph with *pluggable* neighborhood diversification and
// seed selection.
//
// Construction (Section 4.2): nodes are inserted sequentially; node i
// acquires candidate neighbors through a beam search (width L) on the
// partial graph of already-inserted nodes, the candidate list is pruned to
// max_degree R by the configured ND strategy, and bi-directional edges are
// added with overflow lists re-pruned by the same strategy.
//
// Seed selection during construction (Section 4.3, Table 2): the per-
// insertion beam search is seeded either by KS (random already-inserted
// nodes) or SN (greedy descent through incrementally-maintained stacked NSW
// layers), the two strategies whose indexing impact the paper measures.
//
// Query answering: any of the seven SS strategies, attached after build.

#ifndef GASS_METHODS_II_BASELINE_INDEX_H_
#define GASS_METHODS_II_BASELINE_INDEX_H_

#include <cstdint>

#include "diversify/diversify.h"
#include "methods/graph_index.h"
#include "quantize/ivf_pq.h"

namespace gass::methods {

/// Where an inserted node's candidate neighbors come from.
enum class CandidateSource {
  kBeamSearch,  ///< Beam search on the partial graph (the paper's setup).
  kIvfPq,       ///< IVF-PQ probe — the prototype of the paper's research
                ///< direction (2): a scalable structure replaces the
                ///< construction-time beam search.
};

/// Build-time and query-time configuration of the II baseline.
struct IiBaselineParams {
  std::size_t max_degree = 32;        ///< R.
  std::size_t build_beam_width = 128; ///< L of the per-insertion search.
  CandidateSource candidate_source = CandidateSource::kBeamSearch;
  quantize::IvfPqParams ivf;          ///< Used when candidate_source=kIvfPq.
  std::size_t ivf_nprobe = 8;
  diversify::Params diversify;        ///< ND strategy (max_degree is forced
                                      ///< to this struct's max_degree).
  /// Seed strategy for the *construction* beam searches (kKs or kSn).
  seeds::Strategy build_ss = seeds::Strategy::kKs;
  /// Seed strategy attached for *query* answering.
  seeds::Strategy query_ss = seeds::Strategy::kKs;
  std::size_t build_seeds = 8;  ///< Seeds per construction search (KS).
  /// Aux-structure sizing for tree/hash-based query SS.
  std::size_t kd_num_trees = 4;
  std::size_t kd_leaf_size = 32;
  std::size_t bkt_branching = 8;
  std::size_t lsh_tables = 4;
  std::size_t sn_max_degree = 16;
  std::uint64_t seed = 42;
};

/// The II baseline index.
class IiBaselineIndex : public SingleGraphIndex {
 public:
  explicit IiBaselineIndex(const IiBaselineParams& params);

  std::string Name() const override;
  BuildStats Build(const core::Dataset& data) override;

  /// ND pruning statistics accumulated during Build (Table 1).
  const diversify::PruneStats& prune_stats() const { return prune_stats_; }

  /// Re-attaches a query seed selector of the given strategy without
  /// rebuilding the graph (the Fig. 6 experiment sweeps strategies over one
  /// graph).
  void AttachQuerySeeds(seeds::Strategy strategy);

  std::uint64_t ParamsFingerprint() const override;

 private:
  core::Status LoadAux(const io::SnapshotReader& reader,
                       const std::string& prefix) override;

  IiBaselineParams params_;
  diversify::PruneStats prune_stats_;
};

}  // namespace gass::methods

#endif  // GASS_METHODS_II_BASELINE_INDEX_H_
