#include "methods/search_params.h"

#include <cstdio>
#include <cstdlib>
#include <limits>

namespace gass::methods {

namespace {

bool ParseSize(const std::string& text, std::size_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return false;
  *out = static_cast<std::size_t>(value);
  return true;
}

bool ParseFloat(const std::string& text, float* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const float value = std::strtof(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  *out = value;
  return true;
}

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

SearchParams MakeSearchParams(std::size_t k, std::size_t beam_width,
                              std::size_t num_seeds) {
  SearchParams params;
  params.k = k;
  params.beam_width = beam_width;
  params.num_seeds = num_seeds;
  return params;
}

bool ParseSearchParams(const std::string& spec, SearchParams* params,
                       std::string* error) {
  // One slot per recognized key, in the order documented in the header. A
  // spec that names the same key twice is ambiguous — which value did the
  // caller mean? — so it is rejected instead of silently letting the last
  // entry win.
  enum Key { kKeyK, kKeyBeam, kKeySeeds, kKeyPrune, kKeyDegrade, kKeyCount };
  bool seen[kKeyCount] = {};

  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(start, comma - start);
    start = comma + 1;
    if (token.empty()) continue;

    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Fail(error,
                  "search parameter '" + token + "': expected key=value");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);

    Key slot = kKeyCount;
    if (key == "k") {
      slot = kKeyK;
    } else if (key == "beam") {
      slot = kKeyBeam;
    } else if (key == "seeds") {
      slot = kKeySeeds;
    } else if (key == "prune") {
      slot = kKeyPrune;
    } else if (key == "degrade") {
      slot = kKeyDegrade;
    } else {
      return Fail(error, "unknown search parameter '" + key +
                             "' (expected k, beam, seeds, prune, or degrade)");
    }
    if (seen[slot]) {
      return Fail(error, "duplicate search parameter '" + key + "': value '" +
                             value + "' would override an earlier entry");
    }
    seen[slot] = true;

    switch (slot) {
      case kKeyK:
        if (!ParseSize(value, &params->k) || params->k == 0) {
          return Fail(error, "search parameter 'k': bad value '" + value +
                                 "' (expected a positive integer)");
        }
        break;
      case kKeyBeam:
        if (!ParseSize(value, &params->beam_width) || params->beam_width == 0) {
          return Fail(error, "search parameter 'beam': bad value '" + value +
                                 "' (expected a positive integer)");
        }
        break;
      case kKeySeeds:
        if (!ParseSize(value, &params->num_seeds)) {
          return Fail(error, "search parameter 'seeds': bad value '" + value +
                                 "' (expected a non-negative integer)");
        }
        break;
      case kKeyPrune:
        if (!ParseFloat(value, &params->prune_bound)) {
          return Fail(error, "search parameter 'prune': bad value '" + value +
                                 "' (expected a float)");
        }
        break;
      case kKeyDegrade: {
        std::size_t step = 0;
        if (!ParseSize(value, &step) || step > 62) {
          return Fail(error, "search parameter 'degrade': bad value '" + value +
                                 "' (expected an integer in [0, 62])");
        }
        params->degrade_step = static_cast<std::uint32_t>(step);
        break;
      }
      case kKeyCount:
        break;  // Unreachable: unknown keys return above.
    }
  }
  return true;
}

std::string SearchParamsToString(const SearchParams& params) {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), "k=%zu,beam=%zu,seeds=%zu",
                params.k, params.beam_width, params.num_seeds);
  std::string out = buffer;
  if (params.prune_bound < std::numeric_limits<float>::max()) {
    std::snprintf(buffer, sizeof(buffer), ",prune=%g",
                  static_cast<double>(params.prune_bound));
    out += buffer;
  }
  if (params.degrade_step > 0) {
    std::snprintf(buffer, sizeof(buffer), ",degrade=%u", params.degrade_step);
    out += buffer;
  }
  return out;
}

}  // namespace gass::methods
