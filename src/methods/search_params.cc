#include "methods/search_params.h"

#include <cstdio>
#include <cstdlib>
#include <limits>

namespace gass::methods {

namespace {

bool ParseSize(const std::string& text, std::size_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return false;
  *out = static_cast<std::size_t>(value);
  return true;
}

bool ParseFloat(const std::string& text, float* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const float value = std::strtof(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  *out = value;
  return true;
}

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

SearchParams MakeSearchParams(std::size_t k, std::size_t beam_width,
                              std::size_t num_seeds) {
  SearchParams params;
  params.k = k;
  params.beam_width = beam_width;
  params.num_seeds = num_seeds;
  return params;
}

bool ParseSearchParams(const std::string& spec, SearchParams* params,
                       std::string* error) {
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(start, comma - start);
    start = comma + 1;
    if (token.empty()) continue;

    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Fail(error, "expected key=value, got '" + token + "'");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "k") {
      if (!ParseSize(value, &params->k) || params->k == 0) {
        return Fail(error, "bad k '" + value + "'");
      }
    } else if (key == "beam") {
      if (!ParseSize(value, &params->beam_width) || params->beam_width == 0) {
        return Fail(error, "bad beam '" + value + "'");
      }
    } else if (key == "seeds") {
      if (!ParseSize(value, &params->num_seeds)) {
        return Fail(error, "bad seeds '" + value + "'");
      }
    } else if (key == "prune") {
      if (!ParseFloat(value, &params->prune_bound)) {
        return Fail(error, "bad prune '" + value + "'");
      }
    } else if (key == "degrade") {
      std::size_t step = 0;
      if (!ParseSize(value, &step) || step > 62) {
        return Fail(error, "bad degrade '" + value + "'");
      }
      params->degrade_step = static_cast<std::uint32_t>(step);
    } else {
      return Fail(error, "unknown search parameter '" + key +
                             "' (expected k, beam, seeds, prune, or degrade)");
    }
  }
  return true;
}

std::string SearchParamsToString(const SearchParams& params) {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), "k=%zu,beam=%zu,seeds=%zu",
                params.k, params.beam_width, params.num_seeds);
  std::string out = buffer;
  if (params.prune_bound < std::numeric_limits<float>::max()) {
    std::snprintf(buffer, sizeof(buffer), ",prune=%g",
                  static_cast<double>(params.prune_bound));
    out += buffer;
  }
  if (params.degrade_step > 0) {
    std::snprintf(buffer, sizeof(buffer), ",degrade=%u", params.degrade_step);
    out += buffer;
  }
  return out;
}

}  // namespace gass::methods
