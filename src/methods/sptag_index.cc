#include "methods/sptag_index.h"

#include <algorithm>

#include "core/macros.h"
#include "core/rng.h"
#include "diversify/diversify.h"
#include "knngraph/exact_knn_graph.h"
#include "methods/build_util.h"
#include "methods/fingerprint.h"

namespace gass::methods {

using core::Graph;
using core::Neighbor;
using core::Rng;
using core::VectorId;

BuildStats SptagIndex::Build(const core::Dataset& data) {
  GASS_CHECK(!data.empty());
  data_ = &data;
  core::Timer timer;
  core::DistanceComputer dc(data);
  Rng rng(params_.seed);

  // Merge exact per-leaf k-NN graphs across several TP-tree partitions.
  graph_ = Graph(data.size());
  for (std::size_t p = 0; p < params_.num_partitions; ++p) {
    const auto leaves =
        trees::TpTreePartition(data, params_.tp_tree, rng.Next());
    for (const auto& leaf : leaves) {
      knngraph::AddExactKnnEdgesOnSubset(dc, leaf, params_.leaf_knn,
                                         &graph_);
    }
  }

  // RND refinement of the merged lists.
  diversify::Params prune;
  prune.strategy = diversify::Strategy::kRnd;
  prune.max_degree = params_.max_degree;
  for (VectorId v = 0; v < data.size(); ++v) {
    auto& list = graph_.MutableNeighbors(v);
    std::vector<Neighbor> candidates;
    candidates.reserve(list.size());
    AppendScored(dc, v, list.data(), list.size(), &candidates);
    std::sort(candidates.begin(), candidates.end());
    const std::vector<Neighbor> kept =
        diversify::Diversify(dc, v, candidates, prune);
    list.clear();
    for (const Neighbor& nb : kept) list.push_back(nb.id);
  }

  // Seed structure.
  if (params_.seed_tree == SptagSeedTree::kBkt) {
    trees::BkTreeParams tree_params;
    tree_params.branching = params_.bkt_branching;
    auto tree = std::make_shared<trees::BkMeansTree>(
        trees::BkMeansTree::Build(data, tree_params, rng.Next()));
    seed_selector_ = std::make_unique<seeds::KmSeeds>(tree, data_);
  } else {
    trees::KdTreeParams tree_params;
    auto forest = std::make_shared<trees::KdForest>(trees::KdForest::Build(
        data, params_.kd_num_trees, tree_params, rng.Next()));
    seed_selector_ = std::make_unique<seeds::KdSeeds>(forest, data_);
  }
  visited_ = std::make_unique<core::VisitedTable>(data.size());

  BuildStats stats;
  stats.elapsed_seconds = timer.Seconds();
  stats.distance_computations = dc.count();
  stats.index_bytes = IndexBytes();
  // Pre-refinement merged lists are num_partitions times larger than the
  // final pruned graph.
  stats.peak_bytes =
      stats.index_bytes + graph_.MemoryBytes() * params_.num_partitions;
  return stats;
}

std::uint64_t SptagIndex::ParamsFingerprint() const {
  io::Encoder enc;
  enc.U64(params_.num_partitions);
  enc.U64(params_.tp_tree.leaf_size);
  enc.U64(params_.tp_tree.projection_dims);
  enc.U64(params_.leaf_knn);
  enc.U64(params_.max_degree);
  enc.U8(params_.seed_tree == SptagSeedTree::kBkt ? 1 : 0);
  enc.U64(params_.kd_num_trees);
  enc.U64(params_.bkt_branching);
  enc.U64(params_.seed);
  return FingerprintBytes(enc);
}

core::Status SptagIndex::SaveAux(io::SnapshotWriter* writer,
                                 const std::string& prefix) const {
  if (params_.seed_tree == SptagSeedTree::kBkt) {
    const auto* km = dynamic_cast<const seeds::KmSeeds*>(seed_selector_.get());
    if (km == nullptr) {
      return core::Status::Unimplemented(
          "SPTAG-BKT snapshot requires a k-means-tree seed selector");
    }
    io::Encoder enc;
    km->tree()->EncodeTo(&enc);
    return writer->AddSection(prefix + "bkt", std::move(enc));
  }
  const auto* kd = dynamic_cast<const seeds::KdSeeds*>(seed_selector_.get());
  if (kd == nullptr) {
    return core::Status::Unimplemented(
        "SPTAG-KDT snapshot requires a KD seed selector");
  }
  io::Encoder enc;
  kd->forest()->EncodeTo(&enc);
  return writer->AddSection(prefix + "kdforest", std::move(enc));
}

core::Status SptagIndex::LoadAux(const io::SnapshotReader& reader,
                                 const std::string& prefix) {
  io::AlignedBytes buffer;
  io::Decoder dec(nullptr, 0, "");
  if (params_.seed_tree == SptagSeedTree::kBkt) {
    GASS_RETURN_IF_ERROR(reader.OpenSection(prefix + "bkt", &buffer, &dec));
    auto tree = std::make_shared<trees::BkMeansTree>();
    GASS_RETURN_IF_ERROR(
        trees::BkMeansTree::DecodeFrom(&dec, data_->size(), tree.get()));
    if (!dec.ExpectEnd()) return dec.status();
    seed_selector_ = std::make_unique<seeds::KmSeeds>(std::move(tree), data_);
    return core::Status::Ok();
  }
  GASS_RETURN_IF_ERROR(reader.OpenSection(prefix + "kdforest", &buffer, &dec));
  auto forest = std::make_shared<trees::KdForest>();
  GASS_RETURN_IF_ERROR(trees::KdForest::DecodeFrom(&dec, *data_, forest.get()));
  if (!dec.ExpectEnd()) return dec.status();
  seed_selector_ = std::make_unique<seeds::KdSeeds>(std::move(forest), data_);
  return core::Status::Ok();
}

}  // namespace gass::methods
