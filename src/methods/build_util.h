// Shared construction helpers for the method implementations.

#ifndef GASS_METHODS_BUILD_UTIL_H_
#define GASS_METHODS_BUILD_UTIL_H_

#include <algorithm>
#include <vector>

#include "core/distance.h"
#include "core/graph.h"
#include "core/neighbor.h"
#include "diversify/diversify.h"

namespace gass::methods {

/// Appends (u, dc.Between(v, u)) for every u in [ids, ids + n) to `scored`,
/// evaluating distances through the batched kernels with rows prefetched
/// ahead of the compute. Same count and bit-identical distances as the
/// per-neighbor loop it replaces.
inline void AppendScored(core::DistanceComputer& dc, core::VectorId v,
                         const core::VectorId* ids, std::size_t n,
                         std::vector<core::Neighbor>* scored) {
  constexpr std::size_t kChunk = core::DistanceComputer::kBatchChunk;
  float dist[kChunk];
  std::size_t done = 0;
  while (done < n) {
    const std::size_t m = n - done < kChunk ? n - done : kChunk;
    for (std::size_t j = 0; j < m; ++j) dc.Prefetch(ids[done + j]);
    dc.BetweenBatch(v, ids + done, m, dist);
    for (std::size_t j = 0; j < m; ++j) {
      scored->emplace_back(ids[done + j], dist[j]);
    }
    done += m;
  }
}

/// Installs `kept` as v's neighbor list and adds the reverse edge to each
/// kept neighbor; a reverse list that overflows `prune.max_degree` is
/// re-pruned with the same ND strategy (the standard II/Vamana overflow
/// treatment).
inline void InstallBidirectional(core::DistanceComputer& dc,
                                 core::Graph* graph, core::VectorId v,
                                 const std::vector<core::Neighbor>& kept,
                                 const diversify::Params& prune,
                                 diversify::PruneStats* stats = nullptr) {
  auto& forward = graph->MutableNeighbors(v);
  forward.clear();
  for (const core::Neighbor& nb : kept) forward.push_back(nb.id);

  for (const core::Neighbor& nb : kept) {
    auto& back = graph->MutableNeighbors(nb.id);
    if (std::find(back.begin(), back.end(), v) != back.end()) continue;
    back.push_back(v);
    if (back.size() > prune.max_degree) {
      std::vector<core::Neighbor> candidates;
      candidates.reserve(back.size());
      AppendScored(dc, nb.id, back.data(), back.size(), &candidates);
      std::sort(candidates.begin(), candidates.end());
      const std::vector<core::Neighbor> re_kept =
          diversify::Diversify(dc, nb.id, candidates, prune, stats);
      back.clear();
      for (const core::Neighbor& b : re_kept) back.push_back(b.id);
    }
  }
}

/// Truncates every neighbor list to its `max_degree` nearest (used by NoND
/// paths and final degree capping).
inline void CapDegrees(core::DistanceComputer& dc, core::Graph* graph,
                       std::size_t max_degree) {
  for (core::VectorId v = 0; v < graph->size(); ++v) {
    auto& list = graph->MutableNeighbors(v);
    if (list.size() <= max_degree) continue;
    std::vector<core::Neighbor> scored;
    scored.reserve(list.size());
    AppendScored(dc, v, list.data(), list.size(), &scored);
    std::sort(scored.begin(), scored.end());
    list.clear();
    for (std::size_t i = 0; i < max_degree; ++i) list.push_back(scored[i].id);
  }
}

}  // namespace gass::methods

#endif  // GASS_METHODS_BUILD_UTIL_H_
