// Shared construction helpers for the method implementations.

#ifndef GASS_METHODS_BUILD_UTIL_H_
#define GASS_METHODS_BUILD_UTIL_H_

#include <algorithm>
#include <vector>

#include "core/distance.h"
#include "core/graph.h"
#include "core/neighbor.h"
#include "diversify/diversify.h"

namespace gass::methods {

/// Installs `kept` as v's neighbor list and adds the reverse edge to each
/// kept neighbor; a reverse list that overflows `prune.max_degree` is
/// re-pruned with the same ND strategy (the standard II/Vamana overflow
/// treatment).
inline void InstallBidirectional(core::DistanceComputer& dc,
                                 core::Graph* graph, core::VectorId v,
                                 const std::vector<core::Neighbor>& kept,
                                 const diversify::Params& prune,
                                 diversify::PruneStats* stats = nullptr) {
  auto& forward = graph->MutableNeighbors(v);
  forward.clear();
  for (const core::Neighbor& nb : kept) forward.push_back(nb.id);

  for (const core::Neighbor& nb : kept) {
    auto& back = graph->MutableNeighbors(nb.id);
    if (std::find(back.begin(), back.end(), v) != back.end()) continue;
    back.push_back(v);
    if (back.size() > prune.max_degree) {
      std::vector<core::Neighbor> candidates;
      candidates.reserve(back.size());
      for (core::VectorId u : back) {
        candidates.emplace_back(u, dc.Between(nb.id, u));
      }
      std::sort(candidates.begin(), candidates.end());
      const std::vector<core::Neighbor> re_kept =
          diversify::Diversify(dc, nb.id, candidates, prune, stats);
      back.clear();
      for (const core::Neighbor& b : re_kept) back.push_back(b.id);
    }
  }
}

/// Truncates every neighbor list to its `max_degree` nearest (used by NoND
/// paths and final degree capping).
inline void CapDegrees(core::DistanceComputer& dc, core::Graph* graph,
                       std::size_t max_degree) {
  for (core::VectorId v = 0; v < graph->size(); ++v) {
    auto& list = graph->MutableNeighbors(v);
    if (list.size() <= max_degree) continue;
    std::vector<core::Neighbor> scored;
    scored.reserve(list.size());
    for (core::VectorId u : list) scored.emplace_back(u, dc.Between(v, u));
    std::sort(scored.begin(), scored.end());
    list.clear();
    for (std::size_t i = 0; i < max_degree; ++i) list.push_back(scored[i].id);
  }
}

}  // namespace gass::methods

#endif  // GASS_METHODS_BUILD_UTIL_H_
