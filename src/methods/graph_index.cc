#include "methods/graph_index.h"

#include "core/beam_search.h"
#include "core/macros.h"

namespace gass::methods {

const char* ServeOutcomeName(ServeOutcome outcome) {
  switch (outcome) {
    case ServeOutcome::kFull: return "full";
    case ServeOutcome::kDegraded: return "degraded";
    case ServeOutcome::kExpired: return "expired";
    case ServeOutcome::kRejected: return "rejected";
  }
  return "unknown";
}

SearchResult GraphIndex::Search(const float* query, const SearchParams& params,
                                SearchContext* ctx) const {
  (void)query;
  (void)params;
  (void)ctx;
  GASS_CHECK_MSG(false, "%s does not support concurrent (context) search",
                 Name().c_str());
  return SearchResult{};
}

SearchContext GraphIndex::MakeSearchContext(std::uint64_t seed) const {
  GASS_CHECK_MSG(data_ != nullptr, "MakeSearchContext before Build");
  return SearchContext(data_->size(), seed);
}

SearchResult SingleGraphIndex::Search(const float* query,
                                      const SearchParams& params) {
  // Serial path: the index-owned visited table plus the selector's internal
  // RNG stream (null rng), preserving historic seeded reproducibility.
  return SearchWith(query, params, visited_.get(), nullptr);
}

SearchResult SingleGraphIndex::Search(const float* query,
                                      const SearchParams& params,
                                      SearchContext* ctx) const {
  return SearchWith(query, params, &ctx->visited, &ctx->rng);
}

SearchResult SingleGraphIndex::SearchWith(const float* query,
                                          const SearchParams& params,
                                          core::VisitedTable* visited,
                                          core::Rng* rng) const {
  GASS_CHECK_MSG(data_ != nullptr, "Search before Build");
  GASS_CHECK(seed_selector_ != nullptr);
  SearchResult result;
  core::Timer timer;
  core::DistanceComputer dc(*data_);
  const std::vector<core::VectorId> seeds =
      rng != nullptr ? seed_selector_->Select(dc, query, params.num_seeds, rng)
                     : seed_selector_->Select(dc, query, params.num_seeds);
  result.neighbors = core::BeamSearch(
      graph_, dc, query, seeds, params.k, EffectiveBeamWidth(params), visited,
      &result.stats, params.prune_bound, params.deadline, params.tombstones);
  result.stats.distance_computations = dc.count();
  result.stats.elapsed_seconds = timer.Seconds();
  result.degrade_step = params.degrade_step;
  return result;
}

std::size_t SingleGraphIndex::IndexBytes() const {
  std::size_t total = graph_.MemoryBytes();
  if (seed_selector_ != nullptr) total += seed_selector_->MemoryBytes();
  return total;
}

core::Status GraphIndex::SaveSections(io::SnapshotWriter* writer,
                                      const std::string& prefix) const {
  (void)writer;
  (void)prefix;
  return core::Status::Unimplemented(Name() + " does not support snapshots");
}

core::Status GraphIndex::LoadSections(const io::SnapshotReader& reader,
                                      const std::string& prefix,
                                      const core::Dataset& data) {
  (void)reader;
  (void)prefix;
  (void)data;
  return core::Status::Unimplemented(Name() + " does not support snapshots");
}

core::Status SingleGraphIndex::SaveSections(io::SnapshotWriter* writer,
                                            const std::string& prefix) const {
  io::Encoder enc;
  io::EncodeGraph(graph_, &enc);
  GASS_RETURN_IF_ERROR(writer->AddSection(prefix + "graph", std::move(enc)));
  return SaveAux(writer, prefix);
}

core::Status SingleGraphIndex::LoadSections(const io::SnapshotReader& reader,
                                            const std::string& prefix,
                                            const core::Dataset& data) {
  io::AlignedBytes buffer;
  io::Decoder dec(nullptr, 0, "");
  GASS_RETURN_IF_ERROR(reader.OpenSection(prefix + "graph", &buffer, &dec));
  GASS_RETURN_IF_ERROR(io::DecodeGraph(&dec, data.size(), &graph_));
  if (!dec.ExpectEnd()) return dec.status();
  data_ = &data;
  visited_ = std::make_unique<core::VisitedTable>(data.size());
  return LoadAux(reader, prefix);
}

core::Status SingleGraphIndex::SaveAux(io::SnapshotWriter* writer,
                                       const std::string& prefix) const {
  (void)writer;
  (void)prefix;
  return core::Status::Ok();
}

core::Status SingleGraphIndex::LoadAux(const io::SnapshotReader& reader,
                                       const std::string& prefix) {
  (void)reader;
  (void)prefix;
  return core::Status::Unimplemented(Name() +
                                     " does not restore seed structures");
}

core::Status GraphIndex::SaveSnapshot(const std::string& path) const {
  if (data_ == nullptr) {
    return core::Status::InvalidArgument("cannot save an unbuilt " + Name() +
                                         " index");
  }
  io::SnapshotWriter writer(Name(), ParamsFingerprint(), data_->size(),
                            data_->dim());
  GASS_RETURN_IF_ERROR(SaveSections(&writer, ""));
  return writer.WriteTo(path);
}

core::Status GraphIndex::LoadSnapshot(const std::string& path,
                                      const core::Dataset& data) {
  io::SnapshotReader reader;
  GASS_RETURN_IF_ERROR(io::SnapshotReader::Open(path, &reader));
  if (reader.method() != Name()) {
    return core::Status::InvalidArgument(path + ": snapshot holds a " +
                                         reader.method() +
                                         " index, cannot load into " + Name());
  }
  if (reader.params_fingerprint() != ParamsFingerprint()) {
    return core::Status::InvalidArgument(
        path + ": snapshot was built with different " + Name() +
        " parameters (fingerprint mismatch)");
  }
  if (reader.data_n() != data.size() || reader.data_dim() != data.dim()) {
    return core::Status::InvalidArgument(
        path + ": snapshot was built over a " +
        std::to_string(reader.data_n()) + "x" +
        std::to_string(reader.data_dim()) + " dataset, got " +
        std::to_string(data.size()) + "x" + std::to_string(data.dim()));
  }
  return LoadSections(reader, "", data);
}

core::Status SaveIndex(const GraphIndex& index, const std::string& path) {
  return index.SaveSnapshot(path);
}

core::Status LoadIndex(GraphIndex* index, const core::Dataset& data,
                       const std::string& path) {
  return index->LoadSnapshot(path, data);
}

}  // namespace gass::methods
