#include "methods/graph_index.h"

#include "core/beam_search.h"
#include "core/macros.h"

namespace gass::methods {

SearchResult SingleGraphIndex::Search(const float* query,
                                      const SearchParams& params) {
  GASS_CHECK_MSG(data_ != nullptr, "Search before Build");
  GASS_CHECK(seed_selector_ != nullptr);
  SearchResult result;
  core::Timer timer;
  core::DistanceComputer dc(*data_);
  const std::vector<core::VectorId> seeds =
      seed_selector_->Select(dc, query, params.num_seeds);
  result.neighbors =
      core::BeamSearch(graph_, dc, query, seeds, params.k, params.beam_width,
                       visited_.get(), &result.stats, params.prune_bound);
  result.stats.distance_computations = dc.count();
  result.stats.elapsed_seconds = timer.Seconds();
  return result;
}

std::size_t SingleGraphIndex::IndexBytes() const {
  std::size_t total = graph_.MemoryBytes();
  if (seed_selector_ != nullptr) total += seed_selector_->MemoryBytes();
  return total;
}

}  // namespace gass::methods
