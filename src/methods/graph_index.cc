#include "methods/graph_index.h"

#include "core/beam_search.h"
#include "core/macros.h"

namespace gass::methods {

SearchResult GraphIndex::Search(const float* query, const SearchParams& params,
                                SearchContext* ctx) const {
  (void)query;
  (void)params;
  (void)ctx;
  GASS_CHECK_MSG(false, "%s does not support concurrent (context) search",
                 Name().c_str());
  return SearchResult{};
}

SearchContext GraphIndex::MakeSearchContext(std::uint64_t seed) const {
  GASS_CHECK_MSG(data_ != nullptr, "MakeSearchContext before Build");
  return SearchContext(data_->size(), seed);
}

SearchResult SingleGraphIndex::Search(const float* query,
                                      const SearchParams& params) {
  // Serial path: the index-owned visited table plus the selector's internal
  // RNG stream (null rng), preserving historic seeded reproducibility.
  return SearchWith(query, params, visited_.get(), nullptr);
}

SearchResult SingleGraphIndex::Search(const float* query,
                                      const SearchParams& params,
                                      SearchContext* ctx) const {
  return SearchWith(query, params, &ctx->visited, &ctx->rng);
}

SearchResult SingleGraphIndex::SearchWith(const float* query,
                                          const SearchParams& params,
                                          core::VisitedTable* visited,
                                          core::Rng* rng) const {
  GASS_CHECK_MSG(data_ != nullptr, "Search before Build");
  GASS_CHECK(seed_selector_ != nullptr);
  SearchResult result;
  core::Timer timer;
  core::DistanceComputer dc(*data_);
  const std::vector<core::VectorId> seeds =
      rng != nullptr ? seed_selector_->Select(dc, query, params.num_seeds, rng)
                     : seed_selector_->Select(dc, query, params.num_seeds);
  result.neighbors = core::BeamSearch(
      graph_, dc, query, seeds, params.k, params.beam_width, visited,
      &result.stats, params.prune_bound, params.deadline);
  result.stats.distance_computations = dc.count();
  result.stats.elapsed_seconds = timer.Seconds();
  return result;
}

std::size_t SingleGraphIndex::IndexBytes() const {
  std::size_t total = graph_.MemoryBytes();
  if (seed_selector_ != nullptr) total += seed_selector_->MemoryBytes();
  return total;
}

}  // namespace gass::methods
