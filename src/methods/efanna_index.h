// EFANNA (Fu & Cai 2016) — Neighborhood Propagation seeded by trees: initial
// neighbor candidates are harvested from randomized truncated K-D trees,
// refined with NNDescent, and the same trees provide KD seed selection at
// query time.

#ifndef GASS_METHODS_EFANNA_INDEX_H_
#define GASS_METHODS_EFANNA_INDEX_H_

#include "knngraph/nndescent.h"
#include "methods/graph_index.h"
#include "trees/kd_tree.h"

namespace gass::methods {

struct EfannaParams {
  knngraph::NnDescentParams nndescent;
  std::size_t num_trees = 4;
  std::size_t tree_leaf_size = 32;
  /// Candidates harvested per node from the forest to initialize NNDescent.
  std::size_t init_candidates = 30;
  std::uint64_t seed = 42;
};

class EfannaIndex : public SingleGraphIndex {
 public:
  explicit EfannaIndex(const EfannaParams& params) : params_(params) {}

  std::string Name() const override { return "EFANNA"; }
  BuildStats Build(const core::Dataset& data) override;
  std::uint64_t ParamsFingerprint() const override;

 private:
  core::Status SaveAux(io::SnapshotWriter* writer,
                       const std::string& prefix) const override;
  core::Status LoadAux(const io::SnapshotReader& reader,
                       const std::string& prefix) override;

  EfannaParams params_;
};

}  // namespace gass::methods

#endif  // GASS_METHODS_EFANNA_INDEX_H_
