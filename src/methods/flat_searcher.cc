#include "methods/flat_searcher.h"

#include "core/beam_search.h"
#include "core/macros.h"

namespace gass::methods {

FlatGraphSearcher::FlatGraphSearcher(
    const core::Dataset& data, const core::Graph& graph,
    std::unique_ptr<seeds::SeedSelector> seed_selector)
    : data_(&data),
      flat_(core::FlatGraph::FromGraph(graph)),
      seed_selector_(std::move(seed_selector)),
      visited_(std::make_unique<core::VisitedTable>(graph.size())) {
  GASS_CHECK(seed_selector_ != nullptr);
}

SearchResult FlatGraphSearcher::Search(const float* query,
                                       const SearchParams& params) {
  SearchResult result;
  core::Timer timer;
  core::DistanceComputer dc(*data_);
  const std::vector<core::VectorId> seeds =
      seed_selector_->Select(dc, query, params.num_seeds);
  result.neighbors =
      core::BeamSearch(flat_, dc, query, seeds, params.k,
                       EffectiveBeamWidth(params), visited_.get(),
                       &result.stats);
  result.stats.distance_computations = dc.count();
  result.stats.elapsed_seconds = timer.Seconds();
  return result;
}

}  // namespace gass::methods
