#include "methods/vamana_index.h"

#include <algorithm>
#include <cmath>

#include "core/beam_search.h"
#include "core/macros.h"
#include "diversify/diversify.h"
#include "methods/base_graphs.h"
#include "methods/build_util.h"
#include "methods/fingerprint.h"

namespace gass::methods {

using core::Graph;
using core::Neighbor;
using core::Rng;
using core::VectorId;

void VamanaIndex::RefinePass(core::DistanceComputer& dc, float alpha,
                             const std::vector<VectorId>& order) {
  diversify::Params prune;
  prune.strategy = alpha <= 1.0f ? diversify::Strategy::kRnd
                                 : diversify::Strategy::kRrnd;
  prune.alpha = alpha;
  prune.max_degree = params_.max_degree;

  std::vector<Neighbor> evaluated;
  for (VectorId v : order) {
    core::BeamSearchCollect(graph_, dc, data_->Row(v), {medoid_},
                            params_.build_beam_width,
                            params_.build_beam_width, visited_.get(),
                            &evaluated);
    const auto& current = graph_.Neighbors(v);
    AppendScored(dc, v, current.data(), current.size(), &evaluated);
    std::sort(evaluated.begin(), evaluated.end());
    evaluated.erase(std::unique(evaluated.begin(), evaluated.end()),
                    evaluated.end());
    const std::vector<Neighbor> kept =
        diversify::Diversify(dc, v, evaluated, prune);
    InstallBidirectional(dc, &graph_, v, kept, prune);
  }
}

BuildStats VamanaIndex::Build(const core::Dataset& data) {
  GASS_CHECK(!data.empty());
  data_ = &data;
  core::Timer timer;
  core::DistanceComputer dc(data);

  const std::size_t n = data.size();
  // Initial degree ≥ log2(n), capped by R.
  const std::size_t init_degree = std::min(
      params_.max_degree,
      std::max<std::size_t>(4, static_cast<std::size_t>(
                                   std::ceil(std::log2(std::max<std::size_t>(
                                       2, n))))));
  graph_ = RandomRegularGraph(n, init_degree, params_.seed);
  visited_ = std::make_unique<core::VisitedTable>(n);
  medoid_ = seeds::ComputeMedoid(data);

  // Random insertion order, reshuffled between passes.
  Rng rng(params_.seed ^ 0xABCDULL);
  std::vector<VectorId> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<VectorId>(i);
  for (std::size_t i = n; i-- > 1;) {
    std::swap(order[i], order[rng.UniformInt(i + 1)]);
  }
  RefinePass(dc, 1.0f, order);
  for (std::size_t i = n; i-- > 1;) {
    std::swap(order[i], order[rng.UniformInt(i + 1)]);
  }
  RefinePass(dc, params_.alpha, order);

  query_rng_ = std::make_unique<Rng>(params_.seed ^ 0x5EEDULL);

  BuildStats stats;
  stats.elapsed_seconds = timer.Seconds();
  stats.distance_computations = dc.count();
  stats.index_bytes = IndexBytes();
  stats.peak_bytes = stats.index_bytes;
  return stats;
}

SearchResult VamanaIndex::Search(const float* query,
                                 const SearchParams& params) {
  return SearchFrom(query, params, visited_.get(), query_rng_.get());
}

SearchResult VamanaIndex::Search(const float* query,
                                 const SearchParams& params,
                                 SearchContext* ctx) const {
  return SearchFrom(query, params, &ctx->visited, &ctx->rng);
}

SearchResult VamanaIndex::SearchFrom(const float* query,
                                     const SearchParams& params,
                                     core::VisitedTable* visited,
                                     core::Rng* rng) const {
  GASS_CHECK_MSG(data_ != nullptr, "Search before Build");
  SearchResult result;
  core::Timer timer;
  core::DistanceComputer dc(*data_);

  std::vector<VectorId> seeds{medoid_};
  for (std::size_t s = 1; s < std::max<std::size_t>(1, params.num_seeds);
       ++s) {
    seeds.push_back(static_cast<VectorId>(rng->UniformInt(data_->size())));
  }
  result.neighbors =
      core::BeamSearch(graph_, dc, query, seeds, params.k, EffectiveBeamWidth(params),
                       visited, &result.stats, params.prune_bound,
                       params.deadline);
  result.stats.distance_computations = dc.count();
  result.stats.elapsed_seconds = timer.Seconds();
  return result;
}

std::uint64_t VamanaIndex::ParamsFingerprint() const {
  io::Encoder enc;
  enc.U64(params_.max_degree);
  enc.U64(params_.build_beam_width);
  enc.F32(params_.alpha);
  enc.U64(params_.seed);
  return FingerprintBytes(enc);
}

core::Status VamanaIndex::SaveAux(io::SnapshotWriter* writer,
                                  const std::string& prefix) const {
  io::Encoder enc;
  enc.U32(medoid_);
  return writer->AddSection(prefix + "medoid", std::move(enc));
}

core::Status VamanaIndex::LoadAux(const io::SnapshotReader& reader,
                                  const std::string& prefix) {
  io::AlignedBytes buffer;
  io::Decoder dec(nullptr, 0, "");
  GASS_RETURN_IF_ERROR(reader.OpenSection(prefix + "medoid", &buffer, &dec));
  const core::VectorId medoid = dec.U32();
  if (!dec.ExpectEnd()) return dec.status();
  if (!dec.Check(medoid < data_->size(), "medoid id out of range")) {
    return dec.status();
  }
  medoid_ = medoid;
  query_rng_ = std::make_unique<core::Rng>(params_.seed ^ 0x5EEDULL);
  return core::Status::Ok();
}

}  // namespace gass::methods
