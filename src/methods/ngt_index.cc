#include "methods/ngt_index.h"

#include <algorithm>

#include "core/beam_search.h"
#include "core/macros.h"
#include "diversify/diversify.h"
#include "methods/build_util.h"
#include "methods/fingerprint.h"

namespace gass::methods {

using core::Graph;
using core::Neighbor;
using core::VectorId;

BuildStats NgtIndex::Build(const core::Dataset& data) {
  GASS_CHECK(!data.empty());
  data_ = &data;
  core::Timer timer;
  core::DistanceComputer dc(data);

  // Bi-directed k-NN graph.
  graph_ = knngraph::NnDescent(dc, params_.nndescent, params_.seed);
  graph_.MakeUndirected();

  // RND prune every (now enlarged) neighbor list.
  diversify::Params prune;
  prune.strategy = diversify::Strategy::kRnd;
  prune.max_degree = params_.max_degree;
  for (VectorId v = 0; v < data.size(); ++v) {
    auto& list = graph_.MutableNeighbors(v);
    std::vector<Neighbor> candidates;
    candidates.reserve(list.size());
    AppendScored(dc, v, list.data(), list.size(), &candidates);
    std::sort(candidates.begin(), candidates.end());
    const std::vector<Neighbor> kept =
        diversify::Diversify(dc, v, candidates, prune);
    list.clear();
    for (const Neighbor& nb : kept) list.push_back(nb.id);
  }

  vp_tree_ = std::make_unique<trees::VpTree>(
      trees::VpTree::Build(data, params_.seed ^ 0x7EEULL));
  visited_ = std::make_unique<core::VisitedTable>(data.size());

  BuildStats stats;
  stats.elapsed_seconds = timer.Seconds();
  stats.distance_computations = dc.count();
  stats.index_bytes = IndexBytes();
  stats.peak_bytes = stats.index_bytes * 2;
  return stats;
}

SearchResult NgtIndex::Search(const float* query, const SearchParams& params) {
  return SearchOver(query, params, visited_.get());
}

SearchResult NgtIndex::Search(const float* query, const SearchParams& params,
                              SearchContext* ctx) const {
  return SearchOver(query, params, &ctx->visited);
}

SearchResult NgtIndex::SearchOver(const float* query,
                                  const SearchParams& params,
                                  core::VisitedTable* visited) const {
  GASS_CHECK_MSG(data_ != nullptr, "Search before Build");
  SearchResult result;
  core::Timer timer;
  core::DistanceComputer dc(*data_);

  // VP-tree seed retrieval (distances inside the tree are charged manually:
  // every visit evaluates one vantage point).
  const std::vector<Neighbor> found = vp_tree_->Search(
      *data_, query, std::max<std::size_t>(1, params.num_seeds),
      params_.vp_seed_visits);
  dc.AddCount(std::min<std::uint64_t>(params_.vp_seed_visits,
                                      data_->size()));
  std::vector<VectorId> seeds;
  seeds.reserve(found.size());
  for (const Neighbor& nb : found) seeds.push_back(nb.id);
  if (seeds.empty()) seeds.push_back(0);

  result.neighbors =
      core::BeamSearch(graph_, dc, query, seeds, params.k, EffectiveBeamWidth(params),
                       visited, &result.stats, params.prune_bound,
                       params.deadline);
  result.stats.distance_computations = dc.count();
  result.stats.elapsed_seconds = timer.Seconds();
  return result;
}

std::size_t NgtIndex::IndexBytes() const {
  std::size_t total = graph_.MemoryBytes();
  if (vp_tree_ != nullptr) total += vp_tree_->MemoryBytes();
  return total;
}

std::uint64_t NgtIndex::ParamsFingerprint() const {
  io::Encoder enc;
  EncodeParams(&enc, params_.nndescent);
  enc.U64(params_.max_degree);
  enc.U64(params_.seed);
  return FingerprintBytes(enc);
}

core::Status NgtIndex::SaveAux(io::SnapshotWriter* writer,
                               const std::string& prefix) const {
  if (vp_tree_ == nullptr) {
    return core::Status::Unimplemented("NGT snapshot requires a VP tree");
  }
  io::Encoder enc;
  vp_tree_->EncodeTo(&enc);
  return writer->AddSection(prefix + "vptree", std::move(enc));
}

core::Status NgtIndex::LoadAux(const io::SnapshotReader& reader,
                               const std::string& prefix) {
  io::AlignedBytes buffer;
  io::Decoder dec(nullptr, 0, "");
  GASS_RETURN_IF_ERROR(reader.OpenSection(prefix + "vptree", &buffer, &dec));
  trees::VpTree tree;
  GASS_RETURN_IF_ERROR(trees::VpTree::DecodeFrom(&dec, data_->size(), &tree));
  if (!dec.ExpectEnd()) return dec.status();
  vp_tree_ = std::make_unique<trees::VpTree>(std::move(tree));
  return core::Status::Ok();
}

}  // namespace gass::methods
