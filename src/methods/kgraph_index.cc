#include "methods/kgraph_index.h"

#include "core/macros.h"
#include "methods/fingerprint.h"

namespace gass::methods {

BuildStats KgraphIndex::Build(const core::Dataset& data) {
  GASS_CHECK(!data.empty());
  data_ = &data;
  core::Timer timer;
  core::DistanceComputer dc(data);

  graph_ = knngraph::NnDescent(dc, params_.nndescent, params_.seed);
  visited_ = std::make_unique<core::VisitedTable>(data.size());
  seed_selector_ = std::make_unique<seeds::KsRandomSeeds>(
      data.size(), params_.seed ^ 0x5EEDULL);

  BuildStats stats;
  stats.elapsed_seconds = timer.Seconds();
  stats.distance_computations = dc.count();
  stats.index_bytes = IndexBytes();
  // NNDescent keeps per-node candidate pools with flags alongside the final
  // lists; its transient footprint is roughly twice the final graph (the
  // paper observes KGraph/EFANNA footprints far above their index sizes).
  stats.peak_bytes = stats.index_bytes * 2;
  return stats;
}

std::uint64_t KgraphIndex::ParamsFingerprint() const {
  io::Encoder enc;
  EncodeParams(&enc, params_.nndescent);
  enc.U64(params_.seed);
  return FingerprintBytes(enc);
}

core::Status KgraphIndex::LoadAux(const io::SnapshotReader& reader,
                                  const std::string& prefix) {
  (void)reader;
  (void)prefix;
  seed_selector_ = std::make_unique<seeds::KsRandomSeeds>(
      data_->size(), params_.seed ^ 0x5EEDULL);
  return core::Status::Ok();
}

}  // namespace gass::methods
