// FANNG — Fast Approximate Nearest Neighbour Graphs (Harwood & Drummond
// 2016). Part of the paper's survey; excluded from its timed evaluation for
// suboptimal performance (Section 4.1), implemented here to complete the
// taxonomy.
//
// Construction: rich per-node candidate lists (NNDescent) are pruned with
// the occlusion rule — identical geometry to RND — and then the graph is
// trained by "traverse-and-add": dataset points act as queries for greedy
// walks from random starts, and whenever a walk gets stuck before reaching
// the target point itself, an escape edge (stuck node → target) is added
// and the stuck node's list re-pruned. Queries use KS seeding.

#ifndef GASS_METHODS_FANNG_INDEX_H_
#define GASS_METHODS_FANNG_INDEX_H_

#include "knngraph/nndescent.h"
#include "methods/graph_index.h"

namespace gass::methods {

struct FanngParams {
  knngraph::NnDescentParams nndescent;  ///< Candidate-list construction.
  std::size_t max_degree = 24;          ///< Occlusion-rule degree bound.
  /// Traverse-and-add training walks, as a multiple of n (the original
  /// trains until convergence; a small multiple captures most escapes).
  double training_walks_per_node = 0.5;
  std::size_t max_walk_hops = 128;
  std::uint64_t seed = 42;
};

class FanngIndex : public SingleGraphIndex {
 public:
  explicit FanngIndex(const FanngParams& params) : params_(params) {}

  std::string Name() const override { return "FANNG"; }
  BuildStats Build(const core::Dataset& data) override;

  /// Escape edges added by traverse-and-add in the last Build.
  std::size_t escape_edges() const { return escape_edges_; }

  std::uint64_t ParamsFingerprint() const override;

 private:
  core::Status LoadAux(const io::SnapshotReader& reader,
                       const std::string& prefix) override;

  FanngParams params_;
  std::size_t escape_edges_ = 0;
};

}  // namespace gass::methods

#endif  // GASS_METHODS_FANNG_INDEX_H_
