#include "methods/nsg_index.h"

#include <algorithm>

#include "core/beam_search.h"
#include "core/macros.h"
#include "diversify/diversify.h"
#include "methods/base_graphs.h"
#include "methods/build_util.h"
#include "methods/fingerprint.h"

namespace gass::methods {

using core::Graph;
using core::Neighbor;
using core::VectorId;

BuildStats NsgIndex::Build(const core::Dataset& data) {
  GASS_CHECK(!data.empty());
  data_ = &data;
  core::Timer timer;
  core::DistanceComputer dc(data);

  Graph base = BuildEfannaBaseGraph(
      dc, params_.nndescent, params_.num_trees, params_.tree_leaf_size,
      params_.init_candidates, params_.seed);

  medoid_ = seeds::ComputeMedoid(data);
  visited_ = std::make_unique<core::VisitedTable>(data.size());

  diversify::Params prune;
  prune.strategy = diversify::Strategy::kRnd;
  prune.max_degree = params_.max_degree;

  graph_ = Graph(data.size());
  std::vector<Neighbor> evaluated;
  for (VectorId v = 0; v < data.size(); ++v) {
    core::BeamSearchCollect(base, dc, data.Row(v), {medoid_},
                            params_.build_beam_width,
                            params_.build_beam_width, visited_.get(),
                            &evaluated);
    // Candidate set: the visited nodes plus v's base-graph neighbors.
    const auto& base_list = base.Neighbors(v);
    AppendScored(dc, v, base_list.data(), base_list.size(), &evaluated);
    std::sort(evaluated.begin(), evaluated.end());
    evaluated.erase(std::unique(evaluated.begin(), evaluated.end()),
                    evaluated.end());
    const std::vector<Neighbor> kept =
        diversify::Diversify(dc, v, evaluated, prune);
    InstallBidirectional(dc, &graph_, v, kept, prune);
  }

  EnsureConnectedFrom(dc, &graph_, medoid_, params_.build_beam_width,
                      visited_.get());

  query_rng_ = std::make_unique<core::Rng>(params_.seed ^ 0x5EEDULL);

  BuildStats stats;
  stats.elapsed_seconds = timer.Seconds();
  stats.distance_computations = dc.count();
  stats.index_bytes = IndexBytes();
  // The EFANNA base graph (plus its build pools) dominates the transient
  // footprint — the effect the paper highlights for NSG/SSG.
  stats.peak_bytes = stats.index_bytes + base.MemoryBytes() * 3;
  return stats;
}

SearchResult NsgIndex::Search(const float* query, const SearchParams& params) {
  return SearchFrom(query, params, visited_.get(), query_rng_.get());
}

SearchResult NsgIndex::Search(const float* query, const SearchParams& params,
                              SearchContext* ctx) const {
  return SearchFrom(query, params, &ctx->visited, &ctx->rng);
}

SearchResult NsgIndex::SearchFrom(const float* query,
                                  const SearchParams& params,
                                  core::VisitedTable* visited,
                                  core::Rng* rng) const {
  GASS_CHECK_MSG(data_ != nullptr, "Search before Build");
  SearchResult result;
  core::Timer timer;
  core::DistanceComputer dc(*data_);

  // MD + KS: the medoid as entry plus random warm-up seeds.
  std::vector<VectorId> seeds{medoid_};
  for (std::size_t s = 1; s < std::max<std::size_t>(1, params.num_seeds);
       ++s) {
    seeds.push_back(static_cast<VectorId>(rng->UniformInt(data_->size())));
  }
  result.neighbors =
      core::BeamSearch(graph_, dc, query, seeds, params.k, EffectiveBeamWidth(params),
                       visited, &result.stats, params.prune_bound,
                       params.deadline);
  result.stats.distance_computations = dc.count();
  result.stats.elapsed_seconds = timer.Seconds();
  return result;
}

std::uint64_t NsgIndex::ParamsFingerprint() const {
  io::Encoder enc;
  EncodeParams(&enc, params_.nndescent);
  enc.U64(params_.num_trees);
  enc.U64(params_.tree_leaf_size);
  enc.U64(params_.init_candidates);
  enc.U64(params_.max_degree);
  enc.U64(params_.build_beam_width);
  enc.U64(params_.seed);
  return FingerprintBytes(enc);
}

core::Status NsgIndex::SaveAux(io::SnapshotWriter* writer,
                               const std::string& prefix) const {
  io::Encoder enc;
  enc.U32(medoid_);
  return writer->AddSection(prefix + "medoid", std::move(enc));
}

core::Status NsgIndex::LoadAux(const io::SnapshotReader& reader,
                               const std::string& prefix) {
  io::AlignedBytes buffer;
  io::Decoder dec(nullptr, 0, "");
  GASS_RETURN_IF_ERROR(reader.OpenSection(prefix + "medoid", &buffer, &dec));
  const core::VectorId medoid = dec.U32();
  if (!dec.ExpectEnd()) return dec.status();
  if (!dec.Check(medoid < data_->size(), "medoid id out of range")) {
    return dec.status();
  }
  medoid_ = medoid;
  query_rng_ = std::make_unique<core::Rng>(params_.seed ^ 0x5EEDULL);
  return core::Status::Ok();
}

}  // namespace gass::methods
