// NGT-style index (Yahoo Japan; the bi-directed k-NN-graph construction of
// Iwasaki 2016 that the paper evaluates): an NNDescent k-NN graph is given
// reverse edges (bi-directed KNNG), pruned per node with RND, and seeded at
// query time from a Vantage-Point tree.

#ifndef GASS_METHODS_NGT_INDEX_H_
#define GASS_METHODS_NGT_INDEX_H_

#include <memory>

#include "knngraph/nndescent.h"
#include "methods/graph_index.h"
#include "trees/vp_tree.h"

namespace gass::methods {

struct NgtParams {
  knngraph::NnDescentParams nndescent;
  std::size_t max_degree = 24;     ///< Degree bound after RND pruning.
  std::size_t vp_seed_visits = 64; ///< VP-tree node-visit budget per query.
  std::uint64_t seed = 42;
};

class NgtIndex : public SingleGraphIndex {
 public:
  explicit NgtIndex(const NgtParams& params) : params_(params) {}

  std::string Name() const override { return "NGT"; }
  BuildStats Build(const core::Dataset& data) override;
  SearchResult Search(const float* query, const SearchParams& params) override;
  SearchResult Search(const float* query, const SearchParams& params,
                      SearchContext* ctx) const override;
  std::size_t IndexBytes() const override;
  std::uint64_t ParamsFingerprint() const override;

 private:
  core::Status SaveAux(io::SnapshotWriter* writer,
                       const std::string& prefix) const override;
  core::Status LoadAux(const io::SnapshotReader& reader,
                       const std::string& prefix) override;

  /// VP-tree seeding (deterministic) + Algorithm 1 over `visited`.
  SearchResult SearchOver(const float* query, const SearchParams& params,
                          core::VisitedTable* visited) const;

  NgtParams params_;
  std::unique_ptr<trees::VpTree> vp_tree_;
};

}  // namespace gass::methods

#endif  // GASS_METHODS_NGT_INDEX_H_
