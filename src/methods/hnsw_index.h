// HNSW — Hierarchical Navigable Small World (Malkov & Yashunin 2020).
//
// Incremental Insertion + RND diversification + Stacked-NSW seed selection.
// Each node draws a maximum layer from Eq. 1; insertion descends greedily
// from the global entry point through layers above the node's level, then at
// every layer from the node's level down to 0 runs a beam search
// (ef_construction wide), prunes the candidates with RND ("select neighbors
// by heuristic"), and installs bidirectional edges — overflowing lists are
// re-pruned with RND. Layer 0 allows 2·M neighbors (hnswlib's maxM0).
// Queries descend the layers greedily and beam-search layer 0.
//
// Because construction is one-node-at-a-time, the index also supports
// streaming growth: BuildPrefix() indexes the first rows of a collection
// and Extend() inserts further rows later without a rebuild.

#ifndef GASS_METHODS_HNSW_INDEX_H_
#define GASS_METHODS_HNSW_INDEX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/rng.h"
#include "methods/graph_index.h"

namespace gass::methods {

struct HnswParams {
  std::size_t m = 16;                   ///< Out-degree bound (upper layers).
  std::size_t ef_construction = 100;    ///< Construction beam width.
  std::uint64_t seed = 42;
};

class HnswIndex : public GraphIndex {
 public:
  explicit HnswIndex(const HnswParams& params) : params_(params) {}

  std::string Name() const override { return "HNSW"; }

  /// Indexes all rows of `data`.
  BuildStats Build(const core::Dataset& data) override;

  /// Indexes only rows [0, count); the rest can be added later with
  /// Extend(). `data` must already contain every row that will ever be
  /// inserted (rows beyond `count` are simply not indexed yet).
  BuildStats BuildPrefix(const core::Dataset& data, std::size_t count);

  /// Inserts rows [inserted_count(), new_count) into the index.
  BuildStats Extend(std::size_t new_count);

  SearchResult Search(const float* query, const SearchParams& params) override;
  SearchResult Search(const float* query, const SearchParams& params,
                      SearchContext* ctx) const override;
  bool SupportsConcurrentSearch() const override { return true; }

  const core::Graph& graph() const override { return base_; }
  std::size_t IndexBytes() const override;

  std::size_t num_layers() const { return layers_.size(); }
  core::VectorId entry_point() const { return entry_; }
  std::size_t inserted_count() const { return inserted_; }

  /// Persists the full index (levels, entry point, base graph and layer
  /// graphs) as a single snapshot file. The raw vectors are not included;
  /// Load() must be given the same dataset. Thin wrappers over
  /// methods::SaveIndex / methods::LoadIndex.
  core::Status Save(const std::string& path) const;
  core::Status Load(const std::string& path, const core::Dataset& data);

  std::uint64_t ParamsFingerprint() const override;
  core::Status SaveSections(io::SnapshotWriter* writer,
                            const std::string& prefix) const override;
  core::Status LoadSections(const io::SnapshotReader& reader,
                            const std::string& prefix,
                            const core::Dataset& data) override;

 private:
  /// Greedy descent from the entry point down to (exclusive) layer
  /// `target` → returns the entry for layer `target`.
  core::VectorId DescendToLayer(core::DistanceComputer& dc,
                                const float* query, std::size_t from_layer,
                                std::size_t target) const;

  /// Shared implementation behind both Search overloads; the descent is
  /// deterministic, so only the visited table varies per caller.
  SearchResult SearchWith(const float* query, const SearchParams& params,
                          core::VisitedTable* visited) const;

  void InsertNode(core::DistanceComputer& dc, core::VectorId v);

  HnswParams params_;
  core::Graph base_;                 ///< Layer 0.
  std::vector<core::Graph> layers_;  ///< Layers 1..top.
  std::vector<std::uint32_t> level_;
  core::VectorId entry_ = 0;
  std::uint32_t entry_level_ = 0;
  std::size_t inserted_ = 0;
  std::unique_ptr<core::Rng> level_rng_;
  std::unique_ptr<core::VisitedTable> visited_;
};

}  // namespace gass::methods

#endif  // GASS_METHODS_HNSW_INDEX_H_
