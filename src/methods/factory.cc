#include "methods/factory.h"

#include "core/macros.h"
#include "methods/dpg_index.h"
#include "methods/efanna_index.h"
#include "methods/elpis_index.h"
#include "methods/fanng_index.h"
#include "methods/hcnng_index.h"
#include "methods/hnsw_index.h"
#include "methods/hvs_index.h"
#include "methods/ieh_index.h"
#include "methods/kgraph_index.h"
#include "methods/lshapg_index.h"
#include "methods/ngt_index.h"
#include "methods/nsg_index.h"
#include "methods/nsw_index.h"
#include "methods/sptag_index.h"
#include "methods/ssg_index.h"
#include "methods/vamana_index.h"

namespace gass::methods {

std::unique_ptr<GraphIndex> CreateIndex(const std::string& name,
                                        std::uint64_t seed) {
  if (name == "kgraph") {
    KgraphParams params;
    params.nndescent.k = 20;
    params.seed = seed;
    return std::make_unique<KgraphIndex>(params);
  }
  if (name == "efanna") {
    EfannaParams params;
    params.nndescent.k = 30;  // Richer lists: EFANNA searches its directed
                              // k-NN graph, whose reachability needs depth.
    params.num_trees = 6;
    params.init_candidates = 40;
    params.seed = seed;
    return std::make_unique<EfannaIndex>(params);
  }
  if (name == "ieh") {
    IehParams params;
    params.nndescent.k = 30;
    params.lsh.num_tables = 6;
    params.lsh.hash_bits = 6;
    params.init_candidates = 40;
    params.seed = seed;
    return std::make_unique<IehIndex>(params);
  }
  if (name == "fanng") {
    FanngParams params;
    params.nndescent.k = 30;
    params.seed = seed;
    return std::make_unique<FanngIndex>(params);
  }
  if (name == "nsw") {
    NswParams params;
    params.seed = seed;
    return std::make_unique<NswIndex>(params);
  }
  if (name == "hnsw") {
    HnswParams params;
    params.seed = seed;
    return std::make_unique<HnswIndex>(params);
  }
  if (name == "hvs") {
    HvsParams params;
    params.seed = seed;
    return std::make_unique<HvsIndex>(params);
  }
  if (name == "dpg") {
    DpgParams params;
    params.nndescent.k = 32;  // Base lists 2× the kept degree.
    params.max_degree = 16;
    params.seed = seed;
    return std::make_unique<DpgIndex>(params);
  }
  if (name == "ngt") {
    NgtParams params;
    params.nndescent.k = 20;
    params.seed = seed;
    return std::make_unique<NgtIndex>(params);
  }
  if (name == "nsg") {
    NsgParams params;
    params.nndescent.k = 20;
    params.seed = seed;
    return std::make_unique<NsgIndex>(params);
  }
  if (name == "ssg") {
    SsgParams params;
    params.nndescent.k = 20;
    params.seed = seed;
    return std::make_unique<SsgIndex>(params);
  }
  if (name == "vamana") {
    VamanaParams params;
    // DiskANN-typical construction beam; the two refinement passes over an
    // already-dense graph are what keep Vamana the costliest scalable
    // builder (paper Fig. 7).
    params.build_beam_width = 64;
    params.seed = seed;
    return std::make_unique<VamanaIndex>(params);
  }
  if (name == "sptag-kdt" || name == "sptag-bkt") {
    SptagParams params;
    // Many partitions with large leaves: the quadratic per-leaf graphs are
    // what makes SPTAG the slowest builder in the paper's Fig. 7.
    params.num_partitions = 8;
    params.tp_tree.leaf_size = 400;
    params.leaf_knn = 16;
    params.seed_tree =
        name == "sptag-bkt" ? SptagSeedTree::kBkt : SptagSeedTree::kKdt;
    params.seed = seed;
    return std::make_unique<SptagIndex>(params);
  }
  if (name == "hcnng") {
    HcnngParams params;
    // The paper's HCNNG repeats many clusterings with sizeable leaves; the
    // all-pairs MST edges per leaf drive its footprint and build time.
    params.num_clusterings = 12;
    params.leaf_size = 300;
    params.seed = seed;
    return std::make_unique<HcnngIndex>(params);
  }
  if (name == "lshapg") {
    LshApgParams params;
    params.seed = seed;
    return std::make_unique<LshApgIndex>(params);
  }
  if (name == "elpis") {
    ElpisParams params;
    // nprobe is a *maximum*: easy datasets prune most leaves via the EAPCA
    // lower bound, hard (uniform-like) datasets need the probes.
    params.nprobe = 8;
    params.seed = seed;
    return std::make_unique<ElpisIndex>(params);
  }
  GASS_CHECK_MSG(false, "unknown index method '%s'", name.c_str());
  return nullptr;
}

std::vector<std::string> AllMethodNames() {
  return {"kgraph", "ieh",       "fanng",     "efanna", "nsw",
          "hnsw",   "hvs",       "dpg",       "ngt",    "nsg",
          "ssg",    "vamana",    "sptag-kdt", "sptag-bkt", "hcnng",
          "lshapg", "elpis"};
}

core::Status LoadAnyIndex(const std::string& path, const core::Dataset& data,
                          std::uint64_t seed,
                          std::unique_ptr<GraphIndex>* out) {
  io::SnapshotReader reader;
  GASS_RETURN_IF_ERROR(io::SnapshotReader::Open(path, &reader));
  for (const std::string& name : AllMethodNames()) {
    std::unique_ptr<GraphIndex> candidate = CreateIndex(name, seed);
    if (candidate->Name() != reader.method()) continue;
    GASS_RETURN_IF_ERROR(LoadIndex(candidate.get(), data, path));
    *out = std::move(candidate);
    return core::Status::Ok();
  }
  return core::Status::InvalidArgument("snapshot method '" + reader.method() +
                                       "' is not a registered method");
}

}  // namespace gass::methods
