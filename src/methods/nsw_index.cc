#include "methods/nsw_index.h"

#include <algorithm>

#include "core/beam_search.h"
#include "core/macros.h"
#include "core/rng.h"
#include "methods/build_util.h"
#include "methods/fingerprint.h"

namespace gass::methods {

using core::DistanceComputer;
using core::Graph;
using core::Neighbor;
using core::Rng;
using core::VectorId;

BuildStats NswIndex::Build(const core::Dataset& data) {
  GASS_CHECK(!data.empty());
  data_ = &data;
  core::Timer timer;
  DistanceComputer dc(data);
  Rng rng(params_.seed);

  const std::size_t n = data.size();
  graph_ = Graph(n);
  visited_ = std::make_unique<core::VisitedTable>(n);

  for (VectorId v = 1; v < n; ++v) {
    std::vector<VectorId> seeds{0};
    for (std::size_t s = 1; s < 4; ++s) {
      seeds.push_back(static_cast<VectorId>(rng.UniformInt(v)));
    }
    std::vector<Neighbor> candidates = core::BeamSearch(
        graph_, dc, data.Row(v), seeds, params_.max_degree,
        params_.build_beam_width, visited_.get());
    if (candidates.size() > params_.max_degree) {
      candidates.resize(params_.max_degree);
    }
    // Bidirectional links without diversification; in-degrees are only
    // capped (nearest-first) when they exceed the hard limit.
    auto& forward = graph_.MutableNeighbors(v);
    for (const Neighbor& nb : candidates) {
      forward.push_back(nb.id);
      auto& back = graph_.MutableNeighbors(nb.id);
      if (std::find(back.begin(), back.end(), v) == back.end()) {
        back.push_back(v);
        if (back.size() > params_.degree_cap) {
          std::vector<Neighbor> scored;
          scored.reserve(back.size());
          AppendScored(dc, nb.id, back.data(), back.size(), &scored);
          std::sort(scored.begin(), scored.end());
          back.clear();
          for (std::size_t i = 0; i < params_.degree_cap; ++i) {
            back.push_back(scored[i].id);
          }
        }
      }
    }
  }

  seed_selector_ =
      std::make_unique<seeds::KsRandomSeeds>(n, params_.seed ^ 0x5EEDULL);

  BuildStats stats;
  stats.elapsed_seconds = timer.Seconds();
  stats.distance_computations = dc.count();
  stats.index_bytes = IndexBytes();
  stats.peak_bytes = stats.index_bytes;
  return stats;
}

std::uint64_t NswIndex::ParamsFingerprint() const {
  io::Encoder enc;
  enc.U64(params_.max_degree);
  enc.U64(params_.build_beam_width);
  enc.U64(params_.degree_cap);
  enc.U64(params_.seed);
  return FingerprintBytes(enc);
}

core::Status NswIndex::LoadAux(const io::SnapshotReader& reader,
                               const std::string& prefix) {
  (void)reader;
  (void)prefix;
  seed_selector_ = std::make_unique<seeds::KsRandomSeeds>(
      data_->size(), params_.seed ^ 0x5EEDULL);
  return core::Status::Ok();
}

}  // namespace gass::methods
