#include "methods/hcnng_index.h"

#include <algorithm>
#include <numeric>

#include "core/macros.h"
#include "core/rng.h"
#include "trees/hierarchical_clustering.h"
#include "trees/kd_tree.h"
#include "methods/fingerprint.h"

namespace gass::methods {

using core::Graph;
using core::Rng;
using core::VectorId;

namespace {

// Union-find for Kruskal.
class DisjointSet {
 public:
  explicit DisjointSet(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool Union(std::size_t a, std::size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

// Degree-capped MST (Kruskal) over one leaf; adds the selected edges to the
// global graph, undirected.
void AddLeafMst(core::DistanceComputer& dc,
                const std::vector<VectorId>& leaf, std::size_t degree_cap,
                Graph* graph) {
  const std::size_t m = leaf.size();
  if (m < 2) return;

  struct Edge {
    float weight;
    std::uint32_t a, b;  // Local indices.
    bool operator<(const Edge& other) const { return weight < other.weight; }
  };
  std::vector<Edge> edges;
  edges.reserve(m * (m - 1) / 2);
  for (std::uint32_t i = 0; i < m; ++i) {
    for (std::uint32_t j = i + 1; j < m; ++j) {
      edges.push_back(Edge{dc.Between(leaf[i], leaf[j]), i, j});
    }
  }
  std::sort(edges.begin(), edges.end());

  DisjointSet components(m);
  std::vector<std::uint32_t> degree(m, 0);
  std::size_t added = 0;
  for (const Edge& e : edges) {
    if (added == m - 1) break;
    if (degree[e.a] >= degree_cap || degree[e.b] >= degree_cap) continue;
    if (!components.Union(e.a, e.b)) continue;
    ++degree[e.a];
    ++degree[e.b];
    ++added;
    graph->AddEdgeUnique(leaf[e.a], leaf[e.b]);
    graph->AddEdgeUnique(leaf[e.b], leaf[e.a]);
  }
}

}  // namespace

BuildStats HcnngIndex::Build(const core::Dataset& data) {
  GASS_CHECK(!data.empty());
  data_ = &data;
  core::Timer timer;
  core::DistanceComputer dc(data);
  Rng rng(params_.seed);

  graph_ = Graph(data.size());
  for (std::size_t c = 0; c < params_.num_clusterings; ++c) {
    const auto leaves =
        trees::RandomBisectionLeaves(data, params_.leaf_size, rng.Next());
    for (const auto& leaf : leaves) {
      AddLeafMst(dc, leaf, params_.mst_degree_cap, &graph_);
    }
  }

  trees::KdTreeParams tree_params;
  auto forest = std::make_shared<trees::KdForest>(trees::KdForest::Build(
      data, params_.kd_num_trees, tree_params, rng.Next()));
  seed_selector_ = std::make_unique<seeds::KdSeeds>(forest, data_);
  visited_ = std::make_unique<core::VisitedTable>(data.size());

  BuildStats stats;
  stats.elapsed_seconds = timer.Seconds();
  stats.distance_computations = dc.count();
  stats.index_bytes = IndexBytes();
  // The per-leaf edge lists (all pairs) dominate transient memory — the
  // HCNNG footprint spike the paper reports in Fig. 8.
  stats.peak_bytes =
      stats.index_bytes +
      params_.leaf_size * params_.leaf_size * sizeof(float) * 2;
  return stats;
}

std::uint64_t HcnngIndex::ParamsFingerprint() const {
  io::Encoder enc;
  enc.U64(params_.num_clusterings);
  enc.U64(params_.leaf_size);
  enc.U64(params_.mst_degree_cap);
  enc.U64(params_.kd_num_trees);
  enc.U64(params_.seed);
  return FingerprintBytes(enc);
}

core::Status HcnngIndex::SaveAux(io::SnapshotWriter* writer,
                                 const std::string& prefix) const {
  const auto* kd = dynamic_cast<const seeds::KdSeeds*>(seed_selector_.get());
  if (kd == nullptr) {
    return core::Status::Unimplemented(
        "HCNNG snapshot requires a KD seed selector");
  }
  io::Encoder enc;
  kd->forest()->EncodeTo(&enc);
  return writer->AddSection(prefix + "kdforest", std::move(enc));
}

core::Status HcnngIndex::LoadAux(const io::SnapshotReader& reader,
                                 const std::string& prefix) {
  io::AlignedBytes buffer;
  io::Decoder dec(nullptr, 0, "");
  GASS_RETURN_IF_ERROR(reader.OpenSection(prefix + "kdforest", &buffer, &dec));
  auto forest = std::make_shared<trees::KdForest>();
  GASS_RETURN_IF_ERROR(trees::KdForest::DecodeFrom(&dec, *data_, forest.get()));
  if (!dec.ExpectEnd()) return dec.status();
  seed_selector_ = std::make_unique<seeds::KdSeeds>(std::move(forest), data_);
  return core::Status::Ok();
}

}  // namespace gass::methods
