#include "methods/ssg_index.h"

#include <algorithm>

#include "core/macros.h"
#include "core/rng.h"
#include "diversify/diversify.h"
#include "methods/base_graphs.h"
#include "methods/build_util.h"
#include "methods/fingerprint.h"

namespace gass::methods {

using core::Graph;
using core::Neighbor;
using core::Rng;
using core::VectorId;

BuildStats SsgIndex::Build(const core::Dataset& data) {
  GASS_CHECK(!data.empty());
  data_ = &data;
  core::Timer timer;
  core::DistanceComputer dc(data);

  Graph base = BuildEfannaBaseGraph(
      dc, params_.nndescent, params_.num_trees, params_.tree_leaf_size,
      params_.init_candidates, params_.seed);

  visited_ = std::make_unique<core::VisitedTable>(data.size());

  diversify::Params prune;
  prune.strategy = diversify::Strategy::kMond;
  prune.theta_degrees = params_.theta_degrees;
  prune.max_degree = params_.max_degree;

  graph_ = Graph(data.size());
  for (VectorId v = 0; v < data.size(); ++v) {
    // Local expansion: 1-hop plus 2-hop base-graph neighbors, capped.
    visited_->NewEpoch();
    visited_->MarkVisited(v);
    std::vector<Neighbor> candidates;
    std::vector<VectorId> pending;
    for (VectorId u : base.Neighbors(v)) {
      if (!visited_->TryVisit(u)) continue;
      pending.push_back(u);
    }
    AppendScored(dc, v, pending.data(), pending.size(), &candidates);
    const std::size_t one_hop = candidates.size();
    for (std::size_t i = 0;
         i < one_hop && candidates.size() < params_.expansion_limit; ++i) {
      pending.clear();
      for (VectorId w : base.Neighbors(candidates[i].id)) {
        if (candidates.size() + pending.size() >= params_.expansion_limit) {
          break;
        }
        if (!visited_->TryVisit(w)) continue;
        pending.push_back(w);
      }
      AppendScored(dc, v, pending.data(), pending.size(), &candidates);
    }
    std::sort(candidates.begin(), candidates.end());
    const std::vector<Neighbor> kept =
        diversify::Diversify(dc, v, candidates, prune);
    InstallBidirectional(dc, &graph_, v, kept, prune);
  }

  // Multiple DFS-tree connectivity repairs from random roots.
  Rng rng(params_.seed ^ 0xD00DULL);
  for (std::size_t t = 0; t < params_.num_dfs_roots; ++t) {
    const VectorId root =
        static_cast<VectorId>(rng.UniformInt(data.size()));
    EnsureConnectedFrom(dc, &graph_, root, params_.max_degree * 4,
                        visited_.get());
  }

  seed_selector_ = std::make_unique<seeds::KsRandomSeeds>(
      data.size(), params_.seed ^ 0x5EEDULL);

  BuildStats stats;
  stats.elapsed_seconds = timer.Seconds();
  stats.distance_computations = dc.count();
  stats.index_bytes = IndexBytes();
  stats.peak_bytes = stats.index_bytes + base.MemoryBytes() * 3;
  return stats;
}

std::uint64_t SsgIndex::ParamsFingerprint() const {
  io::Encoder enc;
  EncodeParams(&enc, params_.nndescent);
  enc.U64(params_.num_trees);
  enc.U64(params_.tree_leaf_size);
  enc.U64(params_.init_candidates);
  enc.U64(params_.max_degree);
  enc.F32(params_.theta_degrees);
  enc.U64(params_.expansion_limit);
  enc.U64(params_.num_dfs_roots);
  enc.U64(params_.seed);
  return FingerprintBytes(enc);
}

core::Status SsgIndex::LoadAux(const io::SnapshotReader& reader,
                               const std::string& prefix) {
  (void)reader;
  (void)prefix;
  seed_selector_ = std::make_unique<seeds::KsRandomSeeds>(
      data_->size(), params_.seed ^ 0x5EEDULL);
  return core::Status::Ok();
}

}  // namespace gass::methods
