#include "methods/fanng_index.h"

#include <algorithm>

#include "core/macros.h"
#include "core/rng.h"
#include "diversify/diversify.h"
#include "methods/build_util.h"
#include "methods/fingerprint.h"

namespace gass::methods {

using core::Graph;
using core::Neighbor;
using core::Rng;
using core::VectorId;

BuildStats FanngIndex::Build(const core::Dataset& data) {
  GASS_CHECK(!data.empty());
  data_ = &data;
  core::Timer timer;
  core::DistanceComputer dc(data);
  Rng rng(params_.seed);

  // Rich candidate lists, occlusion-pruned (RND geometry).
  Graph base = knngraph::NnDescent(dc, params_.nndescent, params_.seed);
  diversify::Params prune;
  prune.strategy = diversify::Strategy::kRnd;
  prune.max_degree = params_.max_degree;

  graph_ = Graph(data.size());
  for (VectorId v = 0; v < data.size(); ++v) {
    std::vector<Neighbor> candidates;
    const auto& base_list = base.Neighbors(v);
    candidates.reserve(base_list.size());
    AppendScored(dc, v, base_list.data(), base_list.size(), &candidates);
    std::sort(candidates.begin(), candidates.end());
    const std::vector<Neighbor> kept =
        diversify::Diversify(dc, v, candidates, prune);
    auto& list = graph_.MutableNeighbors(v);
    for (const Neighbor& nb : kept) list.push_back(nb.id);
  }

  // Traverse-and-add: dataset points as training queries. A greedy walk
  // from a random start must reach the target node itself; a stuck walk
  // earns an escape edge from the stuck node to the target.
  escape_edges_ = 0;
  const auto walks = static_cast<std::size_t>(
      params_.training_walks_per_node * static_cast<double>(data.size()));
  for (std::size_t w = 0; w < walks; ++w) {
    const VectorId target =
        static_cast<VectorId>(rng.UniformInt(data.size()));
    VectorId current = static_cast<VectorId>(rng.UniformInt(data.size()));
    if (current == target) continue;
    float current_dist = dc.Between(target, current);
    std::size_t hops = 0;
    while (hops < params_.max_walk_hops) {
      VectorId best = current;
      float best_dist = current_dist;
      for (VectorId u : graph_.Neighbors(current)) {
        const float d = u == target ? 0.0f : dc.Between(target, u);
        if (d < best_dist) {
          best_dist = d;
          best = u;
        }
      }
      if (best == current) break;  // Stuck.
      current = best;
      current_dist = best_dist;
      if (current == target) break;
      ++hops;
    }
    if (current != target) {
      // Escape edge; re-prune the stuck node's enlarged list.
      if (graph_.AddEdgeUnique(current, target)) {
        ++escape_edges_;
        auto& list = graph_.MutableNeighbors(current);
        if (list.size() > params_.max_degree) {
          std::vector<Neighbor> candidates;
          candidates.reserve(list.size());
          AppendScored(dc, current, list.data(), list.size(), &candidates);
          std::sort(candidates.begin(), candidates.end());
          const std::vector<Neighbor> kept =
              diversify::Diversify(dc, current, candidates, prune);
          list.clear();
          for (const Neighbor& nb : kept) list.push_back(nb.id);
        }
      }
    }
  }

  visited_ = std::make_unique<core::VisitedTable>(data.size());
  seed_selector_ = std::make_unique<seeds::KsRandomSeeds>(
      data.size(), params_.seed ^ 0x5EEDULL);

  BuildStats stats;
  stats.elapsed_seconds = timer.Seconds();
  stats.distance_computations = dc.count();
  stats.index_bytes = IndexBytes();
  stats.peak_bytes = stats.index_bytes + base.MemoryBytes() * 2;
  return stats;
}

std::uint64_t FanngIndex::ParamsFingerprint() const {
  io::Encoder enc;
  EncodeParams(&enc, params_.nndescent);
  enc.U64(params_.max_degree);
  enc.F64(params_.training_walks_per_node);
  enc.U64(params_.max_walk_hops);
  enc.U64(params_.seed);
  return FingerprintBytes(enc);
}

core::Status FanngIndex::LoadAux(const io::SnapshotReader& reader,
                                 const std::string& prefix) {
  (void)reader;
  (void)prefix;
  seed_selector_ = std::make_unique<seeds::KsRandomSeeds>(
      data_->size(), params_.seed ^ 0x5EEDULL);
  return core::Status::Ok();
}

}  // namespace gass::methods
