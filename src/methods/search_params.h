// Construction, parsing, and formatting of methods::SearchParams, shared by
// the CLI, the benchmark drivers, and the serving executor so "k=10,beam=64,
// seeds=48" means the same thing everywhere.

#ifndef GASS_METHODS_SEARCH_PARAMS_H_
#define GASS_METHODS_SEARCH_PARAMS_H_

#include <cstddef>
#include <string>

#include "core/deadline.h"
#include "methods/graph_index.h"

namespace gass::methods {

/// SearchParams with the three common knobs set and everything else at its
/// default (no prune bound, no deadline).
SearchParams MakeSearchParams(std::size_t k, std::size_t beam_width,
                              std::size_t num_seeds);

/// Parses a comma-separated "key=value" spec into `*params` (on top of
/// whatever `*params` already holds, so callers can layer a spec over
/// defaults). Recognized keys: `k`, `beam` (beam width L), `seeds` (seed
/// count), `prune` (squared-distance prune bound, float), `degrade`
/// (degradation step, halves the effective beam per step). Each key may
/// appear at most once per spec; a repeated key is rejected rather than
/// letting the last entry silently win. Returns false — leaving `*params`
/// partially updated — and describes the problem in `*error` (when
/// non-null), always naming the offending key and its value, for unknown
/// keys, duplicate keys, malformed numbers, or zero k/beam.
bool ParseSearchParams(const std::string& spec, SearchParams* params,
                       std::string* error = nullptr);

/// Formats params as a spec string ParseSearchParams accepts, e.g.
/// "k=10,beam=64,seeds=48". The prune bound and degrade step are included
/// only when set; the deadline (a caller-owned pointer) is never part of
/// the round trip.
std::string SearchParamsToString(const SearchParams& params);

/// Copy of `params` with the deadline replaced (null = unlimited).
inline SearchParams WithDeadline(const SearchParams& params,
                                 const core::Deadline* deadline) {
  SearchParams out = params;
  out.deadline = deadline;
  return out;
}

}  // namespace gass::methods

#endif  // GASS_METHODS_SEARCH_PARAMS_H_
