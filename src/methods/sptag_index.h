// SPTAG (Chen et al., Microsoft) — Divide-and-Conquer + RND.
//
// The dataset is partitioned several times with TP trees; an *exact* k-NN
// graph is built inside every leaf and the per-leaf graphs are merged into
// one global graph, which is then RND-refined per node. Seed selection uses
// either randomized K-D trees (SPTAG-KDT) or a balanced k-means tree
// (SPTAG-BKT). The repeated exact per-leaf graphs are what make SPTAG's
// indexing cost grow steeply with n — the scalability wall in the paper's
// Fig. 7.

#ifndef GASS_METHODS_SPTAG_INDEX_H_
#define GASS_METHODS_SPTAG_INDEX_H_

#include "methods/graph_index.h"
#include "trees/tp_tree.h"

namespace gass::methods {

/// Which seed structure the SPTAG variant builds.
enum class SptagSeedTree { kKdt, kBkt };

struct SptagParams {
  std::size_t num_partitions = 4;  ///< Independent TP-tree divisions.
  trees::TpTreeParams tp_tree;     ///< leaf_size controls partition grain.
  std::size_t leaf_knn = 12;       ///< k of the per-leaf exact graph.
  std::size_t max_degree = 32;     ///< RND degree bound after merging.
  SptagSeedTree seed_tree = SptagSeedTree::kBkt;
  std::size_t kd_num_trees = 4;
  std::size_t bkt_branching = 8;
  std::uint64_t seed = 42;
};

class SptagIndex : public SingleGraphIndex {
 public:
  explicit SptagIndex(const SptagParams& params) : params_(params) {}

  std::string Name() const override {
    return params_.seed_tree == SptagSeedTree::kBkt ? "SPTAG-BKT"
                                                    : "SPTAG-KDT";
  }
  BuildStats Build(const core::Dataset& data) override;
  std::uint64_t ParamsFingerprint() const override;

 private:
  core::Status SaveAux(io::SnapshotWriter* writer,
                       const std::string& prefix) const override;
  core::Status LoadAux(const io::SnapshotReader& reader,
                       const std::string& prefix) override;

  SptagParams params_;
};

}  // namespace gass::methods

#endif  // GASS_METHODS_SPTAG_INDEX_H_
