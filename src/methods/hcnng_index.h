// HCNNG — Hierarchical Clustering-based Nearest Neighbor Graph (Munoz et
// al. 2019): Divide-and-Conquer without diversification.
//
// The dataset is divided `num_clusterings` times by random hierarchical
// bisection; a degree-capped exact Minimum Spanning Tree is computed inside
// every leaf (Kruskal, per-node degree ≤ 3 as in the original), and the MST
// edges of all clusterings are unioned into one undirected graph. K-D trees
// provide query seeds.

#ifndef GASS_METHODS_HCNNG_INDEX_H_
#define GASS_METHODS_HCNNG_INDEX_H_

#include "methods/graph_index.h"

namespace gass::methods {

struct HcnngParams {
  std::size_t num_clusterings = 8;
  std::size_t leaf_size = 200;
  std::size_t mst_degree_cap = 3;
  std::size_t kd_num_trees = 4;
  std::uint64_t seed = 42;
};

class HcnngIndex : public SingleGraphIndex {
 public:
  explicit HcnngIndex(const HcnngParams& params) : params_(params) {}

  std::string Name() const override { return "HCNNG"; }
  BuildStats Build(const core::Dataset& data) override;
  std::uint64_t ParamsFingerprint() const override;

 private:
  core::Status SaveAux(io::SnapshotWriter* writer,
                       const std::string& prefix) const override;
  core::Status LoadAux(const io::SnapshotReader& reader,
                       const std::string& prefix) override;

  HcnngParams params_;
};

}  // namespace gass::methods

#endif  // GASS_METHODS_HCNNG_INDEX_H_
