// Base-graph construction and connectivity-repair helpers shared by the
// refine-a-base-graph methods (NSG, SSG, Vamana).

#ifndef GASS_METHODS_BASE_GRAPHS_H_
#define GASS_METHODS_BASE_GRAPHS_H_

#include <cstdint>
#include <vector>

#include "core/beam_search.h"
#include "core/dataset.h"
#include "core/distance.h"
#include "core/graph.h"
#include "core/rng.h"
#include "knngraph/nndescent.h"
#include "trees/kd_tree.h"

namespace gass::methods {

/// EFANNA-style base graph: per-node candidates harvested from a randomized
/// K-D forest, refined by NNDescent. NSG and SSG both start from this.
inline core::Graph BuildEfannaBaseGraph(
    core::DistanceComputer& dc, const knngraph::NnDescentParams& nndescent,
    std::size_t num_trees, std::size_t tree_leaf_size,
    std::size_t init_candidates, std::uint64_t seed) {
  const core::Dataset& data = dc.dataset();
  trees::KdTreeParams tree_params;
  tree_params.leaf_size = tree_leaf_size;
  const trees::KdForest forest =
      trees::KdForest::Build(data, num_trees, tree_params, seed);

  core::Graph init(data.size());
  for (core::VectorId v = 0; v < data.size(); ++v) {
    for (core::VectorId u :
         forest.SearchCandidates(data, data.Row(v), init_candidates)) {
      if (u != v) init.MutableNeighbors(v).push_back(u);
    }
  }
  return knngraph::NnDescent(dc, nndescent, seed ^ 0x1ULL, &init);
}

/// Random regular directed graph: every node gets `degree` distinct random
/// out-neighbors — Vamana's initial graph (degree ≥ log n keeps it
/// connected with high probability).
inline core::Graph RandomRegularGraph(std::size_t n, std::size_t degree,
                                      std::uint64_t seed) {
  core::Graph graph(n);
  core::Rng rng(seed);
  for (core::VectorId v = 0; v < n; ++v) {
    auto& list = graph.MutableNeighbors(v);
    std::size_t guard = 0;
    while (list.size() < degree && guard < degree * 8) {
      ++guard;
      const auto u = static_cast<core::VectorId>(rng.UniformInt(n));
      if (u == v) continue;
      bool present = false;
      for (core::VectorId w : list) {
        if (w == u) {
          present = true;
          break;
        }
      }
      if (!present) list.push_back(u);
    }
  }
  return graph;
}

/// NSG-style connectivity repair: every node unreachable from `root` gets an
/// in-edge from the nearest *reachable* node found by a beam search for its
/// vector. One pass suffices (the linking endpoint is always reachable).
inline void EnsureConnectedFrom(core::DistanceComputer& dc,
                                core::Graph* graph, core::VectorId root,
                                std::size_t beam_width,
                                core::VisitedTable* visited) {
  const core::Dataset& data = dc.dataset();
  // Mark the reachable set by BFS.
  std::vector<bool> reachable(graph->size(), false);
  std::vector<core::VectorId> frontier{root};
  reachable[root] = true;
  while (!frontier.empty()) {
    const core::VectorId v = frontier.back();
    frontier.pop_back();
    for (core::VectorId u : graph->Neighbors(v)) {
      if (!reachable[u]) {
        reachable[u] = true;
        frontier.push_back(u);
      }
    }
  }
  for (core::VectorId v = 0; v < graph->size(); ++v) {
    if (reachable[v]) continue;
    const std::vector<core::Neighbor> found = core::BeamSearch(
        *graph, dc, data.Row(v), {root}, 1, beam_width, visited);
    // Repair edges added earlier in this pass can have made v reachable
    // already; the search proves it by finding v itself. Linking then
    // would put a self-loop in the graph (Graph::Validate() rejects it).
    if (!found.empty() && found.front().id == v) continue;
    const core::VectorId anchor = found.empty() ? root : found.front().id;
    graph->AddEdgeUnique(anchor, v);
  }
}

}  // namespace gass::methods

#endif  // GASS_METHODS_BASE_GRAPHS_H_
