// LSHAPG (Zhao et al. 2023) — an HNSW base-layer graph whose beam searches
// are seeded from L LSB-style LSH tables instead of the hierarchical
// descent, with *probabilistic routing*: during expansion a neighbor's cheap
// projected distance is tested first, and only candidates whose projection
// passes the current pruning bound are evaluated exactly (which can discard
// promising neighbors — the accuracy cost the paper observes).

#ifndef GASS_METHODS_LSHAPG_INDEX_H_
#define GASS_METHODS_LSHAPG_INDEX_H_

#include <memory>

#include "hash/lsh.h"
#include "methods/graph_index.h"
#include "methods/hnsw_index.h"

namespace gass::methods {

struct LshApgParams {
  HnswParams hnsw;           ///< Base-graph construction.
  hash::LshParams lsh;       ///< Seed tables + projection.
  /// Projected-distance pruning slack: a neighbor is evaluated exactly only
  /// if projected_dist < routing_beta × current worst pool distance. Set
  /// large (or +inf) to disable probabilistic routing.
  float routing_beta = 2.0f;
  std::uint64_t seed = 42;
};

class LshApgIndex : public SingleGraphIndex {
 public:
  explicit LshApgIndex(const LshApgParams& params) : params_(params) {}

  std::string Name() const override { return "LSHAPG"; }
  BuildStats Build(const core::Dataset& data) override;
  SearchResult Search(const float* query, const SearchParams& params) override;
  SearchResult Search(const float* query, const SearchParams& params,
                      SearchContext* ctx) const override;
  std::size_t IndexBytes() const override;
  std::uint64_t ParamsFingerprint() const override;

 private:
  core::Status SaveAux(io::SnapshotWriter* writer,
                       const std::string& prefix) const override;
  core::Status LoadAux(const io::SnapshotReader& reader,
                       const std::string& prefix) override;

  /// LSH-seeded beam search with probabilistic routing. `rng` null = the
  /// selector's serial stream (see SingleGraphIndex::SearchWith).
  SearchResult SearchRouted(const float* query, const SearchParams& params,
                            core::VisitedTable* visited,
                            core::Rng* rng) const;

  LshApgParams params_;
  std::shared_ptr<const hash::LshIndex> lsh_;
};

}  // namespace gass::methods

#endif  // GASS_METHODS_LSHAPG_INDEX_H_
