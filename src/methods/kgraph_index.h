// KGraph (Dong et al.) — the original Neighborhood Propagation method: an
// approximate k-NN graph produced by NNDescent over a random initial graph,
// searched with KS (random) seeding.

#ifndef GASS_METHODS_KGRAPH_INDEX_H_
#define GASS_METHODS_KGRAPH_INDEX_H_

#include "knngraph/nndescent.h"
#include "methods/graph_index.h"

namespace gass::methods {

struct KgraphParams {
  knngraph::NnDescentParams nndescent;  ///< k is the graph out-degree.
  std::uint64_t seed = 42;
};

class KgraphIndex : public SingleGraphIndex {
 public:
  explicit KgraphIndex(const KgraphParams& params) : params_(params) {}

  std::string Name() const override { return "KGraph"; }
  BuildStats Build(const core::Dataset& data) override;
  std::uint64_t ParamsFingerprint() const override;

 private:
  core::Status LoadAux(const io::SnapshotReader& reader,
                       const std::string& prefix) override;

  KgraphParams params_;
};

}  // namespace gass::methods

#endif  // GASS_METHODS_KGRAPH_INDEX_H_
