// NSW — Navigable Small World (Ponomarenko et al. 2011, Malkov et al. 2014).
//
// Pure Incremental Insertion: each node is connected bidirectionally to the
// `max_degree` nearest nodes found by a beam search on the partial graph,
// with *no* neighborhood diversification. Early-inserted edges survive as
// long-range links, giving the small-world navigability. Queries use KS
// seeding (random restarts), as in the original method.

#ifndef GASS_METHODS_NSW_INDEX_H_
#define GASS_METHODS_NSW_INDEX_H_

#include <cstdint>

#include "methods/graph_index.h"

namespace gass::methods {

struct NswParams {
  std::size_t max_degree = 16;        ///< Friends per insertion (paper: 2d+1).
  std::size_t build_beam_width = 64;
  std::size_t degree_cap = 64;        ///< Hard cap on grown in-degrees.
  std::uint64_t seed = 42;
};

class NswIndex : public SingleGraphIndex {
 public:
  explicit NswIndex(const NswParams& params) : params_(params) {}

  std::string Name() const override { return "NSW"; }
  BuildStats Build(const core::Dataset& data) override;
  std::uint64_t ParamsFingerprint() const override;

 private:
  core::Status LoadAux(const io::SnapshotReader& reader,
                       const std::string& prefix) override;

  NswParams params_;
};

}  // namespace gass::methods

#endif  // GASS_METHODS_NSW_INDEX_H_
