#include "methods/hvs_index.h"

#include <algorithm>
#include <numeric>

#include "core/beam_search.h"
#include "core/macros.h"
#include "core/rng.h"
#include "methods/fingerprint.h"

namespace gass::methods {

using core::Neighbor;
using core::Rng;
using core::VectorId;

BuildStats HvsIndex::Build(const core::Dataset& data) {
  GASS_CHECK(!data.empty());
  data_ = &data;
  core::Timer timer;
  Rng rng(params_.seed);

  // Base layer: HNSW's incremental base-graph construction (HVS keeps the
  // base search identical to HNSW's).
  HnswParams base_params = params_.base;
  base_params.seed = params_.seed;
  base_ = std::make_unique<HnswIndex>(base_params);
  const BuildStats base_stats = base_->Build(data);
  visited_ = std::make_unique<core::VisitedTable>(data.size());

  // Local density per node: distance to the nearest of `density_sample`
  // random others (simplification of HVS's density estimate; smaller =
  // denser). Routed through a DistanceComputer so these evaluations show up
  // in the build's distance count like every other full-vector distance.
  core::DistanceComputer density_dc(data);
  std::vector<float> density(data.size());
  for (VectorId v = 0; v < data.size(); ++v) {
    float nearest = 3.402823466e38f;
    for (std::size_t s = 0; s < params_.density_sample; ++s) {
      const VectorId u = static_cast<VectorId>(rng.UniformInt(data.size()));
      if (u == v) continue;
      nearest = std::min(nearest, density_dc.Between(v, u));
    }
    density[v] = nearest;
  }
  std::vector<VectorId> by_density(data.size());
  std::iota(by_density.begin(), by_density.end(), 0);
  std::sort(by_density.begin(), by_density.end(),
            [&](VectorId a, VectorId b) { return density[a] < density[b]; });

  // Layer membership by density: the bottom hierarchical level keeps the
  // densest `level_fraction` of all nodes, each level above keeps the same
  // fraction of the one below.
  levels_.clear();
  levels_.resize(params_.num_levels);
  std::size_t count = data.size();
  for (std::size_t l = params_.num_levels; l-- > 0;) {
    count = std::max<std::size_t>(
        4, static_cast<std::size_t>(static_cast<double>(count) *
                                    params_.level_fraction));
    levels_[l].members.assign(by_density.begin(),
                              by_density.begin() +
                                  static_cast<std::ptrdiff_t>(
                                      std::min(count, data.size())));
  }

  // Per-level quantizers: subspace count doubles toward the base (the
  // multi-level quantization of the paper's description).
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    Level& level = levels_[l];
    const core::Dataset member_data = data.Select(level.members);
    quantize::PqParams pq_params;
    pq_params.num_subspaces = params_.top_subspaces << l;
    pq_params.codebook_size =
        std::min<std::size_t>(64, std::max<std::size_t>(2,
                                                        member_data.size()));
    level.pq = quantize::ProductQuantizer::Train(member_data, pq_params,
                                                 rng.Next());
    level.codes.resize(level.members.size() * level.pq.code_size());
    for (std::size_t i = 0; i < level.members.size(); ++i) {
      level.pq.Encode(member_data.Row(static_cast<VectorId>(i)),
                      level.codes.data() + i * level.pq.code_size());
    }
  }

  BuildStats stats;
  stats.elapsed_seconds = timer.Seconds();
  stats.distance_computations =
      base_stats.distance_computations + density_dc.count();
  stats.index_bytes = IndexBytes();
  stats.peak_bytes = stats.index_bytes;
  return stats;
}

SearchResult HvsIndex::Search(const float* query,
                              const SearchParams& params) {
  return SearchThrough(query, params, visited_.get());
}

SearchResult HvsIndex::Search(const float* query, const SearchParams& params,
                              SearchContext* ctx) const {
  return SearchThrough(query, params, &ctx->visited);
}

SearchResult HvsIndex::SearchThrough(const float* query,
                                     const SearchParams& params,
                                     core::VisitedTable* visited) const {
  GASS_CHECK_MSG(data_ != nullptr, "Search before Build");
  SearchResult result;
  core::Timer timer;
  core::DistanceComputer dc(*data_);

  // Descend the quantized levels: at each, rank members by ADC distance
  // (cheap codebook lookups, charged to hops) and carry the best few down.
  std::vector<VectorId> carried;
  for (const Level& level : levels_) {
    const std::vector<float> table = level.pq.BuildAdcTable(query);
    core::CandidatePool pool(params_.descent_width);
    for (std::size_t i = 0; i < level.members.size(); ++i) {
      const float d = level.pq.AdcDistance(
          table, level.codes.data() + i * level.pq.code_size());
      ++result.stats.hops;
      if (d < pool.WorstDistance()) {
        pool.Insert(Neighbor(level.members[i], d));
      }
    }
    carried.clear();
    for (const Neighbor& nb : pool.contents()) carried.push_back(nb.id);
  }

  // Seed the base beam search with the finest-level survivors (exact
  // distances now) — the HNSW-style entry into the base layer.
  std::vector<VectorId> seeds = carried;
  if (seeds.empty()) seeds.push_back(base_->entry_point());

  result.neighbors = core::BeamSearch(
      base_->graph(), dc, query, seeds, params.k, EffectiveBeamWidth(params),
      visited, &result.stats, params.prune_bound, params.deadline);
  result.stats.distance_computations = dc.count();
  result.stats.elapsed_seconds = timer.Seconds();
  return result;
}

std::size_t HvsIndex::IndexBytes() const {
  std::size_t total = base_ != nullptr ? base_->IndexBytes() : 0;
  for (const Level& level : levels_) {
    total += level.members.size() * sizeof(VectorId) + level.codes.size() +
             level.pq.MemoryBytes();
  }
  return total;
}

std::uint64_t HvsIndex::ParamsFingerprint() const {
  io::Encoder enc;
  EncodeParams(&enc, params_.base);
  enc.U64(params_.num_levels);
  enc.F64(params_.level_fraction);
  enc.U64(params_.top_subspaces);
  enc.U64(params_.density_sample);
  enc.U64(params_.seed);
  return FingerprintBytes(enc);
}

core::Status HvsIndex::SaveSections(io::SnapshotWriter* writer,
                                    const std::string& prefix) const {
  if (base_ == nullptr) {
    return core::Status::InvalidArgument("HVS snapshot before Build");
  }
  GASS_RETURN_IF_ERROR(base_->SaveSections(writer, prefix + "base."));
  io::Encoder enc;
  enc.U64(levels_.size());
  for (const Level& level : levels_) {
    enc.VecU32(level.members);
    level.pq.EncodeTo(&enc);
    enc.VecU8(level.codes);
  }
  return writer->AddSection(prefix + "levels", std::move(enc));
}

core::Status HvsIndex::LoadSections(const io::SnapshotReader& reader,
                                    const std::string& prefix,
                                    const core::Dataset& data) {
  HnswParams base_params = params_.base;
  base_params.seed = params_.seed;
  auto base = std::make_unique<HnswIndex>(base_params);
  GASS_RETURN_IF_ERROR(base->LoadSections(reader, prefix + "base.", data));

  io::AlignedBytes buffer;
  io::Decoder dec(nullptr, 0, "");
  GASS_RETURN_IF_ERROR(reader.OpenSection(prefix + "levels", &buffer, &dec));
  const std::uint64_t num_levels = dec.U64();
  if (!dec.Check(num_levels <= 64, "implausible HVS level count")) {
    return dec.status();
  }
  std::vector<Level> levels(num_levels);
  for (std::uint64_t l = 0; l < num_levels && dec.ok(); ++l) {
    Level& level = levels[l];
    dec.VecU32(&level.members, data.size());
    for (VectorId member : level.members) {
      if (member >= data.size()) {
        dec.Check(false, "HVS level member id out of range");
        break;
      }
    }
    GASS_RETURN_IF_ERROR(
        quantize::ProductQuantizer::DecodeFrom(&dec, &level.pq));
    dec.VecU8(&level.codes, dec.remaining());
    dec.Check(level.pq.dim() == data.dim(),
              "HVS level quantizer dimensionality mismatch");
    dec.Check(level.codes.size() ==
                  level.members.size() * level.pq.code_size(),
              "HVS level code block size mismatch");
  }
  if (!dec.ExpectEnd()) return dec.status();

  base_ = std::move(base);
  levels_ = std::move(levels);
  data_ = &data;
  visited_ = std::make_unique<core::VisitedTable>(data.size());
  return core::Status::Ok();
}

}  // namespace gass::methods
