#include "methods/ieh_index.h"

#include "core/macros.h"
#include "methods/fingerprint.h"

namespace gass::methods {

using core::Graph;
using core::VectorId;

BuildStats IehIndex::Build(const core::Dataset& data) {
  GASS_CHECK(!data.empty());
  data_ = &data;
  core::Timer timer;
  core::DistanceComputer dc(data);

  auto lsh = std::make_shared<hash::LshIndex>(
      hash::LshIndex::Build(data, params_.lsh, params_.seed));

  // Hash-derived initial candidates for NNDescent.
  Graph init(data.size());
  for (VectorId v = 0; v < data.size(); ++v) {
    for (VectorId u : lsh->Candidates(data.Row(v), params_.init_candidates)) {
      if (u != v) init.MutableNeighbors(v).push_back(u);
    }
  }
  graph_ = knngraph::NnDescent(dc, params_.nndescent, params_.seed ^ 0x1ULL,
                               &init);
  visited_ = std::make_unique<core::VisitedTable>(data.size());
  seed_selector_ = std::make_unique<seeds::LshSeeds>(lsh, data.size(),
                                                     params_.seed ^ 0x5EEDULL);

  BuildStats stats;
  stats.elapsed_seconds = timer.Seconds();
  stats.distance_computations = dc.count();
  stats.index_bytes = IndexBytes();
  stats.peak_bytes = stats.index_bytes * 2 + init.MemoryBytes();
  return stats;
}

std::uint64_t IehIndex::ParamsFingerprint() const {
  io::Encoder enc;
  EncodeParams(&enc, params_.nndescent);
  EncodeParams(&enc, params_.lsh);
  enc.U64(params_.init_candidates);
  enc.U64(params_.seed);
  return FingerprintBytes(enc);
}

core::Status IehIndex::SaveAux(io::SnapshotWriter* writer,
                               const std::string& prefix) const {
  const auto* selector =
      dynamic_cast<const seeds::LshSeeds*>(seed_selector_.get());
  if (selector == nullptr) {
    return core::Status::Unimplemented(
        "IEH snapshot requires an LSH seed selector");
  }
  io::Encoder enc;
  selector->index()->EncodeTo(&enc);
  return writer->AddSection(prefix + "lsh", std::move(enc));
}

core::Status IehIndex::LoadAux(const io::SnapshotReader& reader,
                               const std::string& prefix) {
  io::AlignedBytes buffer;
  io::Decoder dec(nullptr, 0, "");
  GASS_RETURN_IF_ERROR(reader.OpenSection(prefix + "lsh", &buffer, &dec));
  auto lsh = std::make_shared<hash::LshIndex>();
  GASS_RETURN_IF_ERROR(hash::LshIndex::DecodeFrom(&dec, data_->size(),
                                                  lsh.get()));
  if (!dec.ExpectEnd()) return dec.status();
  seed_selector_ = std::make_unique<seeds::LshSeeds>(
      std::move(lsh), data_->size(), params_.seed ^ 0x5EEDULL);
  return core::Status::Ok();
}

}  // namespace gass::methods
