#include "methods/ieh_index.h"

#include "core/macros.h"

namespace gass::methods {

using core::Graph;
using core::VectorId;

BuildStats IehIndex::Build(const core::Dataset& data) {
  GASS_CHECK(!data.empty());
  data_ = &data;
  core::Timer timer;
  core::DistanceComputer dc(data);

  auto lsh = std::make_shared<hash::LshIndex>(
      hash::LshIndex::Build(data, params_.lsh, params_.seed));

  // Hash-derived initial candidates for NNDescent.
  Graph init(data.size());
  for (VectorId v = 0; v < data.size(); ++v) {
    for (VectorId u : lsh->Candidates(data.Row(v), params_.init_candidates)) {
      if (u != v) init.MutableNeighbors(v).push_back(u);
    }
  }
  graph_ = knngraph::NnDescent(dc, params_.nndescent, params_.seed ^ 0x1ULL,
                               &init);
  visited_ = std::make_unique<core::VisitedTable>(data.size());
  seed_selector_ = std::make_unique<seeds::LshSeeds>(lsh, data.size(),
                                                     params_.seed ^ 0x5EEDULL);

  BuildStats stats;
  stats.elapsed_seconds = timer.Seconds();
  stats.distance_computations = dc.count();
  stats.index_bytes = IndexBytes();
  stats.peak_bytes = stats.index_bytes * 2 + init.MemoryBytes();
  return stats;
}

}  // namespace gass::methods
