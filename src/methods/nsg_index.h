// NSG — Navigating Spreading-out Graph (Fu et al. 2019).
//
// Builds an EFANNA base graph, then for every node runs a beam search from
// the medoid over the base graph, uses the *visited* node set as the
// candidate list, prunes it with RND, and installs bidirectional edges.
// A DFS-tree pass finally repairs connectivity from the medoid. Queries
// start from the medoid augmented with random seeds (MD + KS).

#ifndef GASS_METHODS_NSG_INDEX_H_
#define GASS_METHODS_NSG_INDEX_H_

#include "knngraph/nndescent.h"
#include "methods/graph_index.h"

namespace gass::methods {

struct NsgParams {
  knngraph::NnDescentParams nndescent;  ///< Base-graph parameters.
  std::size_t num_trees = 4;            ///< EFANNA forest size.
  std::size_t tree_leaf_size = 32;
  std::size_t init_candidates = 30;
  std::size_t max_degree = 24;          ///< R.
  std::size_t build_beam_width = 128;   ///< L of the per-node search.
  std::uint64_t seed = 42;
};

class NsgIndex : public SingleGraphIndex {
 public:
  explicit NsgIndex(const NsgParams& params) : params_(params) {}

  std::string Name() const override { return "NSG"; }
  BuildStats Build(const core::Dataset& data) override;
  SearchResult Search(const float* query, const SearchParams& params) override;
  SearchResult Search(const float* query, const SearchParams& params,
                      SearchContext* ctx) const override;

  core::VectorId medoid() const { return medoid_; }

  std::uint64_t ParamsFingerprint() const override;

 private:
  core::Status SaveAux(io::SnapshotWriter* writer,
                       const std::string& prefix) const override;
  core::Status LoadAux(const io::SnapshotReader& reader,
                       const std::string& prefix) override;

  /// MD + KS seeding with the given RNG, then Algorithm 1 over `visited`.
  SearchResult SearchFrom(const float* query, const SearchParams& params,
                          core::VisitedTable* visited, core::Rng* rng) const;

  NsgParams params_;
  core::VectorId medoid_ = 0;
  std::unique_ptr<core::Rng> query_rng_;
};

}  // namespace gass::methods

#endif  // GASS_METHODS_NSG_INDEX_H_
