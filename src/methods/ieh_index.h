// IEH — Iterative Expanding Hashing (Jin et al. 2014).
//
// The third NP-family initializer the paper surveys: initial neighbor
// candidates come from LSH buckets (IEH-LSH), refined by NNDescent, with
// the same hash tables providing query seeds. Excluded from the paper's
// timed evaluation for suboptimal performance, implemented here for
// completeness of the taxonomy.

#ifndef GASS_METHODS_IEH_INDEX_H_
#define GASS_METHODS_IEH_INDEX_H_

#include "hash/lsh.h"
#include "knngraph/nndescent.h"
#include "methods/graph_index.h"

namespace gass::methods {

struct IehParams {
  knngraph::NnDescentParams nndescent;
  hash::LshParams lsh;
  std::size_t init_candidates = 30;  ///< Bucket mates per node for init.
  std::uint64_t seed = 42;
};

class IehIndex : public SingleGraphIndex {
 public:
  explicit IehIndex(const IehParams& params) : params_(params) {}

  std::string Name() const override { return "IEH"; }
  BuildStats Build(const core::Dataset& data) override;
  std::uint64_t ParamsFingerprint() const override;

 private:
  core::Status SaveAux(io::SnapshotWriter* writer,
                       const std::string& prefix) const override;
  core::Status LoadAux(const io::SnapshotReader& reader,
                       const std::string& prefix) override;

  IehParams params_;
};

}  // namespace gass::methods

#endif  // GASS_METHODS_IEH_INDEX_H_
