#include "methods/efanna_index.h"

#include "core/macros.h"
#include "methods/fingerprint.h"

namespace gass::methods {

using core::Graph;
using core::VectorId;

BuildStats EfannaIndex::Build(const core::Dataset& data) {
  GASS_CHECK(!data.empty());
  data_ = &data;
  core::Timer timer;
  core::DistanceComputer dc(data);

  // Randomized K-D forest: both the NNDescent initializer and the query
  // seed structure.
  trees::KdTreeParams tree_params;
  tree_params.leaf_size = params_.tree_leaf_size;
  auto forest = std::make_shared<trees::KdForest>(trees::KdForest::Build(
      data, params_.num_trees, tree_params, params_.seed));

  // Harvest per-node initial candidates from the forest.
  Graph init(data.size());
  for (VectorId v = 0; v < data.size(); ++v) {
    std::vector<VectorId> candidates = forest->SearchCandidates(
        data, data.Row(v), params_.init_candidates);
    auto& list = init.MutableNeighbors(v);
    for (VectorId u : candidates) {
      if (u != v) list.push_back(u);
    }
  }

  graph_ = knngraph::NnDescent(dc, params_.nndescent, params_.seed ^ 0x1ULL,
                               &init);
  visited_ = std::make_unique<core::VisitedTable>(data.size());
  seed_selector_ = std::make_unique<seeds::KdSeeds>(forest, data_);

  BuildStats stats;
  stats.elapsed_seconds = timer.Seconds();
  stats.distance_computations = dc.count();
  stats.index_bytes = IndexBytes();
  // Trees + initial graph + NNDescent pools coexist during build.
  stats.peak_bytes = stats.index_bytes * 2 + init.MemoryBytes();
  return stats;
}

std::uint64_t EfannaIndex::ParamsFingerprint() const {
  io::Encoder enc;
  EncodeParams(&enc, params_.nndescent);
  enc.U64(params_.num_trees);
  enc.U64(params_.tree_leaf_size);
  enc.U64(params_.init_candidates);
  enc.U64(params_.seed);
  return FingerprintBytes(enc);
}

core::Status EfannaIndex::SaveAux(io::SnapshotWriter* writer,
                                  const std::string& prefix) const {
  const auto* kd = dynamic_cast<const seeds::KdSeeds*>(seed_selector_.get());
  if (kd == nullptr) {
    return core::Status::Unimplemented(
        "EFANNA snapshot requires a KD seed selector");
  }
  io::Encoder enc;
  kd->forest()->EncodeTo(&enc);
  return writer->AddSection(prefix + "kdforest", std::move(enc));
}

core::Status EfannaIndex::LoadAux(const io::SnapshotReader& reader,
                                  const std::string& prefix) {
  io::AlignedBytes buffer;
  io::Decoder dec(nullptr, 0, "");
  GASS_RETURN_IF_ERROR(reader.OpenSection(prefix + "kdforest", &buffer, &dec));
  auto forest = std::make_shared<trees::KdForest>();
  GASS_RETURN_IF_ERROR(trees::KdForest::DecodeFrom(&dec, *data_, forest.get()));
  if (!dec.ExpectEnd()) return dec.status();
  seed_selector_ = std::make_unique<seeds::KdSeeds>(std::move(forest), data_);
  return core::Status::Ok();
}

}  // namespace gass::methods
