// Name-based index construction with bench-calibrated defaults.

#ifndef GASS_METHODS_FACTORY_H_
#define GASS_METHODS_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "methods/graph_index.h"

namespace gass::methods {

/// Builds an unconstructed index by method name. Recognized names:
/// "kgraph", "ieh", "fanng", "efanna", "nsw", "hnsw", "hvs", "dpg", "ngt",
/// "nsg", "ssg", "vamana", "sptag-kdt", "sptag-bkt", "hcnng", "lshapg",
/// "elpis".
/// Aborts on an unknown name. `seed` drives all of the method's
/// randomness.
std::unique_ptr<GraphIndex> CreateIndex(const std::string& name,
                                        std::uint64_t seed = 42);

/// All recognized method names, in the paper's taxonomy order.
std::vector<std::string> AllMethodNames();

}  // namespace gass::methods

#endif  // GASS_METHODS_FACTORY_H_
