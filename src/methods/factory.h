// Name-based index construction with bench-calibrated defaults.

#ifndef GASS_METHODS_FACTORY_H_
#define GASS_METHODS_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "methods/graph_index.h"

namespace gass::methods {

/// Builds an unconstructed index by method name. Recognized names:
/// "kgraph", "ieh", "fanng", "efanna", "nsw", "hnsw", "hvs", "dpg", "ngt",
/// "nsg", "ssg", "vamana", "sptag-kdt", "sptag-bkt", "hcnng", "lshapg",
/// "elpis".
/// Aborts on an unknown name. `seed` drives all of the method's
/// randomness.
std::unique_ptr<GraphIndex> CreateIndex(const std::string& name,
                                        std::uint64_t seed = 42);

/// All recognized method names, in the paper's taxonomy order.
std::vector<std::string> AllMethodNames();

/// Opens the snapshot at `path`, instantiates the registered method whose
/// Name() matches the snapshot header (constructed with `seed`, which must
/// match the seed the saved index was built with — the params fingerprint
/// is verified), loads it against `data`, and returns it. Fails with a
/// descriptive status on unknown methods, fingerprint mismatches, or any
/// corruption the defensive decoder detects.
core::Status LoadAnyIndex(const std::string& path, const core::Dataset& data,
                          std::uint64_t seed,
                          std::unique_ptr<GraphIndex>* out);

}  // namespace gass::methods

#endif  // GASS_METHODS_FACTORY_H_
