#include "methods/lshapg_index.h"

#include <algorithm>

#include "core/beam_search.h"
#include "core/macros.h"
#include "core/neighbor.h"
#include "methods/fingerprint.h"

namespace gass::methods {

using core::Neighbor;
using core::VectorId;

BuildStats LshApgIndex::Build(const core::Dataset& data) {
  GASS_CHECK(!data.empty());
  data_ = &data;
  core::Timer timer;

  // Reuse HNSW's incremental construction for the base-layer graph; only
  // layer 0 is kept (the hierarchy is replaced by LSH seeding).
  HnswParams hnsw_params = params_.hnsw;
  hnsw_params.seed = params_.seed;
  HnswIndex hnsw(hnsw_params);
  const BuildStats hnsw_stats = hnsw.Build(data);
  graph_ = hnsw.graph();

  lsh_ = std::make_shared<const hash::LshIndex>(
      hash::LshIndex::Build(data, params_.lsh, params_.seed ^ 0x15A4ULL));
  seed_selector_ = std::make_unique<seeds::LshSeeds>(
      lsh_, data.size(), params_.seed ^ 0x5EEDULL);
  visited_ = std::make_unique<core::VisitedTable>(data.size());

  BuildStats stats;
  stats.elapsed_seconds = timer.Seconds();
  stats.distance_computations = hnsw_stats.distance_computations;
  stats.index_bytes = IndexBytes();
  stats.peak_bytes = stats.index_bytes + hnsw_stats.index_bytes;
  return stats;
}

SearchResult LshApgIndex::Search(const float* query,
                                 const SearchParams& params) {
  return SearchRouted(query, params, visited_.get(), nullptr);
}

SearchResult LshApgIndex::Search(const float* query,
                                 const SearchParams& params,
                                 SearchContext* ctx) const {
  return SearchRouted(query, params, &ctx->visited, &ctx->rng);
}

SearchResult LshApgIndex::SearchRouted(const float* query,
                                       const SearchParams& params,
                                       core::VisitedTable* visited,
                                       core::Rng* rng) const {
  GASS_CHECK_MSG(data_ != nullptr, "Search before Build");
  SearchResult result;
  core::Timer timer;
  core::DistanceComputer dc(*data_);

  const std::vector<VectorId> seeds =
      rng != nullptr ? seed_selector_->Select(dc, query, params.num_seeds, rng)
                     : seed_selector_->Select(dc, query, params.num_seeds);

  // Beam search with probabilistic routing: each unvisited neighbor's
  // projected distance gates the exact evaluation.
  const std::size_t width = EffectiveBeamWidth(params);
  core::CandidatePool pool(width);
  visited->NewEpoch();
  const std::vector<float> query_projection = lsh_->ProjectQuery(query);

  for (VectorId seed : seeds) {
    if (!visited->TryVisit(seed)) continue;
    pool.Insert(Neighbor(seed, dc.ToQuery(query, seed)));
  }
  std::uint64_t hops = 0;
  for (;;) {
    if (params.deadline != nullptr && hops % core::kDeadlineCheckHops == 0 &&
        params.deadline->IsExpired()) {
      result.stats.deadline_expiries += 1;
      break;
    }
    const std::size_t next = pool.FirstUnexplored();
    if (next == pool.size()) break;
    const VectorId v = pool[next].id;
    pool.MarkExplored(next);
    ++hops;
    ++result.stats.hops;
    for (VectorId u : graph_.Neighbors(v)) {
      if (!visited->TryVisit(u)) continue;
      const float worst = pool.WorstDistance();
      if (pool.full()) {
        // Projected pre-screen (the LSB-derived routing test): skip the
        // exact distance when even the optimistic projection is far beyond
        // the pool's worst answer.
        const float projected = lsh_->ProjectedDistance(query_projection, u);
        if (projected >= params_.routing_beta * worst) continue;
      }
      const float d = dc.ToQuery(query, u);
      if (d >= pool.WorstDistance()) continue;
      pool.Insert(Neighbor(u, d));
    }
  }
  result.neighbors = pool.TopK(params.k);
  result.stats.distance_computations = dc.count();
  result.stats.elapsed_seconds = timer.Seconds();
  return result;
}

std::size_t LshApgIndex::IndexBytes() const {
  std::size_t total = graph_.MemoryBytes();
  if (lsh_ != nullptr) total += lsh_->MemoryBytes();
  return total;
}

std::uint64_t LshApgIndex::ParamsFingerprint() const {
  io::Encoder enc;
  EncodeParams(&enc, params_.hnsw);
  EncodeParams(&enc, params_.lsh);
  enc.U64(params_.seed);
  return FingerprintBytes(enc);
}

core::Status LshApgIndex::SaveAux(io::SnapshotWriter* writer,
                                  const std::string& prefix) const {
  if (lsh_ == nullptr) {
    return core::Status::Unimplemented("LSHAPG snapshot requires LSH tables");
  }
  io::Encoder enc;
  lsh_->EncodeTo(&enc);
  return writer->AddSection(prefix + "lsh", std::move(enc));
}

core::Status LshApgIndex::LoadAux(const io::SnapshotReader& reader,
                                  const std::string& prefix) {
  io::AlignedBytes buffer;
  io::Decoder dec(nullptr, 0, "");
  GASS_RETURN_IF_ERROR(reader.OpenSection(prefix + "lsh", &buffer, &dec));
  hash::LshIndex lsh;
  GASS_RETURN_IF_ERROR(hash::LshIndex::DecodeFrom(&dec, data_->size(), &lsh));
  if (!dec.ExpectEnd()) return dec.status();
  lsh_ = std::make_shared<const hash::LshIndex>(std::move(lsh));
  seed_selector_ = std::make_unique<seeds::LshSeeds>(
      lsh_, data_->size(), params_.seed ^ 0x5EEDULL);
  return core::Status::Ok();
}

}  // namespace gass::methods
