// ELPIS (Azizi, Echihabi, Palpanas 2023) — Divide-and-Conquer + II + RND.
//
// The dataset is divided by a Hercules-style EAPCA tree into leaves; an HNSW
// graph is built on every leaf (in parallel). A query first searches the
// leaf with the smallest EAPCA lower bound; the k-th best-so-far distance
// then prunes every leaf whose lower bound exceeds it, and the surviving
// leaves (up to nprobe) are searched — optionally concurrently — with their
// results merged.
//
// ELPIS keeps the leaves as separate contiguous datasets (raw-vector
// duplication in exchange for locality), which is why its loaded search
// footprint exceeds its on-disk index size — the effect the paper notes in
// Fig. 10.

#ifndef GASS_METHODS_ELPIS_INDEX_H_
#define GASS_METHODS_ELPIS_INDEX_H_

#include <memory>
#include <vector>

#include "methods/graph_index.h"
#include "methods/hnsw_index.h"
#include "summaries/eapca_tree.h"

namespace gass::methods {

struct ElpisParams {
  summaries::EapcaTreeParams tree;  ///< Partitioning (leaf_size, segments).
  HnswParams leaf_hnsw;             ///< Per-leaf graph construction.
  std::size_t nprobe = 4;           ///< Max leaves searched per query.
  std::size_t search_threads = 1;   ///< Concurrent leaf searches.
  std::size_t build_threads = 0;    ///< 0 = hardware concurrency.
  std::uint64_t seed = 42;
};

class ElpisIndex : public GraphIndex {
 public:
  explicit ElpisIndex(const ElpisParams& params) : params_(params) {}

  std::string Name() const override { return "ELPIS"; }
  BuildStats Build(const core::Dataset& data) override;
  SearchResult Search(const float* query, const SearchParams& params) override;
  // Concurrent (SearchContext) search is NOT supported: each leaf is a
  // private HNSW sub-index whose query state lives inside the leaf, and the
  // coordinator threads leaf results through a shared pruning bound. Clone
  // the index per serving thread instead (see docs/SERVING.md).

  /// ELPIS has no single base graph.
  bool HasBaseGraph() const override { return false; }
  const core::Graph& graph() const override;
  std::size_t IndexBytes() const override;

  std::size_t num_leaves() const { return leaves_.size(); }
  /// Leaves whose lower bound survived pruning for the last query (for the
  /// nprobe ablation bench).
  std::size_t last_probed() const { return last_probed_; }

  std::uint64_t ParamsFingerprint() const override;
  core::Status SaveSections(io::SnapshotWriter* writer,
                            const std::string& prefix) const override;
  core::Status LoadSections(const io::SnapshotReader& reader,
                            const std::string& prefix,
                            const core::Dataset& data) override;

 private:
  struct Leaf {
    std::vector<core::VectorId> global_ids;
    core::Dataset data;
    std::unique_ptr<HnswIndex> index;
  };

  ElpisParams params_;
  std::unique_ptr<summaries::EapcaTree> tree_;
  std::vector<Leaf> leaves_;
  std::size_t last_probed_ = 0;
};

}  // namespace gass::methods

#endif  // GASS_METHODS_ELPIS_INDEX_H_
