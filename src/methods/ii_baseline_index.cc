#include "methods/ii_baseline_index.h"

#include <algorithm>
#include <cmath>

#include "core/beam_search.h"
#include "core/macros.h"
#include "core/rng.h"
#include "methods/build_util.h"
#include "methods/fingerprint.h"

namespace gass::methods {

using core::DistanceComputer;
using core::Graph;
using core::Neighbor;
using core::Rng;
using core::VectorId;

IiBaselineIndex::IiBaselineIndex(const IiBaselineParams& params)
    : params_(params) {
  params_.diversify.max_degree = params_.max_degree;
  GASS_CHECK(params_.build_ss == seeds::Strategy::kKs ||
             params_.build_ss == seeds::Strategy::kSn);
}

std::string IiBaselineIndex::Name() const {
  return "II(" + diversify::StrategyName(params_.diversify.strategy) + "," +
         seeds::StrategyName(params_.query_ss) + ")";
}

BuildStats IiBaselineIndex::Build(const core::Dataset& data) {
  GASS_CHECK(!data.empty());
  data_ = &data;
  core::Timer timer;
  DistanceComputer dc(data);
  Rng rng(params_.seed);

  const std::size_t n = data.size();
  graph_ = Graph(n);
  visited_ = std::make_unique<core::VisitedTable>(n);
  prune_stats_ = {};

  // Optional incrementally-maintained stacked layers for SN build seeding:
  // levels drawn per Eq. 1, layer graphs grown alongside the base graph.
  const bool sn_build = params_.build_ss == seeds::Strategy::kSn;
  std::vector<std::uint32_t> level;
  std::vector<Graph> layers;
  VectorId sn_entry = 0;
  std::uint32_t sn_entry_level = 0;
  diversify::Params layer_prune;
  layer_prune.strategy = diversify::Strategy::kRnd;
  layer_prune.max_degree = params_.sn_max_degree;
  if (sn_build) {
    level.resize(n, 0);
    const double denom = std::log(
        std::max(2.0, static_cast<double>(params_.sn_max_degree) / 2.0));
    std::uint32_t top = 0;
    for (VectorId v = 0; v < n; ++v) {
      double xi = rng.UniformDouble();
      if (xi < 1e-12) xi = 1e-12;
      level[v] = static_cast<std::uint32_t>(-std::log(xi) / denom);
      top = std::max(top, level[v]);
    }
    layers.assign(top == 0 ? 1 : top, Graph(n));
  }

  // Research-direction prototype: one IVF-PQ over the full dataset supplies
  // construction candidates instead of per-insertion beam searches.
  std::unique_ptr<quantize::IvfPqIndex> ivf;
  if (params_.candidate_source == CandidateSource::kIvfPq) {
    ivf = std::make_unique<quantize::IvfPqIndex>(
        quantize::IvfPqIndex::Build(data, params_.ivf,
                                    params_.seed ^ 0x1F7ULL));
  }

  for (VectorId v = 0; v < n; ++v) {
    if (v == 0) {
      if (sn_build) {
        sn_entry = 0;
        sn_entry_level = level[0];
      }
      continue;
    }

    if (ivf != nullptr) {
      // ADC-ranked candidates restricted to already-inserted nodes.
      std::vector<Neighbor> candidates;
      for (VectorId u :
           ivf->Candidates(data.Row(v), params_.build_beam_width * 2,
                           params_.ivf_nprobe)) {
        if (u >= v) continue;  // Not inserted yet.
        candidates.emplace_back(u, dc.ToQuery(data.Row(v), u));
        if (candidates.size() >= params_.build_beam_width) break;
      }
      // Fall back to random links when the probes covered no inserted node
      // (only possible very early in the insertion order).
      while (candidates.size() < 2 && v >= 1) {
        const VectorId u = static_cast<VectorId>(rng.UniformInt(v));
        candidates.emplace_back(u, dc.ToQuery(data.Row(v), u));
      }
      std::sort(candidates.begin(), candidates.end());
      candidates.erase(std::unique(candidates.begin(), candidates.end()),
                       candidates.end());
      const std::vector<Neighbor> kept = diversify::Diversify(
          dc, v, candidates, params_.diversify, &prune_stats_);
      InstallBidirectional(dc, &graph_, v, kept, params_.diversify);
      continue;
    }

    // Seeds for the construction beam search.
    std::vector<VectorId> search_seeds;
    if (sn_build) {
      // Greedy descent through layers above this node's level.
      VectorId current = sn_entry;
      float current_dist = dc.ToQuery(data.Row(v), current);
      for (std::uint32_t l = sn_entry_level; l-- > level[v];) {
        if (l >= layers.size()) continue;
        bool improved = true;
        while (improved) {
          improved = false;
          for (VectorId u : layers[l].Neighbors(current)) {
            const float d = dc.ToQuery(data.Row(v), u);
            if (d < current_dist) {
              current_dist = d;
              current = u;
              improved = true;
            }
          }
        }
      }
      search_seeds.push_back(current);
    } else {
      search_seeds.push_back(0);
      for (std::size_t s = 1; s < params_.build_seeds; ++s) {
        search_seeds.push_back(static_cast<VectorId>(rng.UniformInt(v)));
      }
    }

    // Candidates via beam search on the partial graph.
    std::vector<Neighbor> candidates = core::BeamSearch(
        graph_, dc, data.Row(v), search_seeds, params_.build_beam_width,
        params_.build_beam_width, visited_.get());

    const std::vector<Neighbor> kept =
        diversify::Diversify(dc, v, candidates, params_.diversify,
                             &prune_stats_);
    InstallBidirectional(dc, &graph_, v, kept, params_.diversify);

    // Grow the stacked layers for nodes with level >= 1.
    if (sn_build && level[v] > 0) {
      VectorId current = search_seeds.front();
      const std::uint32_t node_level =
          std::min<std::uint32_t>(level[v],
                                  static_cast<std::uint32_t>(layers.size()));
      for (std::uint32_t l = std::min(node_level, sn_entry_level); l-- > 0;) {
        std::vector<Neighbor> layer_candidates = core::BeamSearch(
            layers[l], dc, data.Row(v), {current}, params_.sn_max_degree * 2,
            params_.sn_max_degree * 2, visited_.get());
        const std::vector<Neighbor> layer_kept =
            diversify::Diversify(dc, v, layer_candidates, layer_prune);
        InstallBidirectional(dc, &layers[l], v, layer_kept, layer_prune);
        if (!layer_candidates.empty()) current = layer_candidates.front().id;
      }
      if (level[v] > sn_entry_level) {
        sn_entry = v;
        sn_entry_level = level[v];
      }
    }
  }

  // Attach the query-time seed selector.
  AttachQuerySeeds(params_.query_ss);

  BuildStats stats;
  stats.elapsed_seconds = timer.Seconds();
  stats.distance_computations = dc.count();
  stats.index_bytes = IndexBytes();
  stats.peak_bytes = stats.index_bytes;
  return stats;
}

void IiBaselineIndex::AttachQuerySeeds(seeds::Strategy strategy) {
  GASS_CHECK_MSG(data_ != nullptr, "AttachQuerySeeds before Build");
  params_.query_ss = strategy;
  const std::size_t n = data_->size();
  Rng rng(params_.seed ^ 0xA5A5A5A5ULL);
  switch (strategy) {
    case seeds::Strategy::kKs:
      seed_selector_ = std::make_unique<seeds::KsRandomSeeds>(n, rng.Next());
      break;
    case seeds::Strategy::kSf:
      seed_selector_ = std::make_unique<seeds::SfFixedSeed>(
          static_cast<VectorId>(rng.UniformInt(n)), &graph_);
      break;
    case seeds::Strategy::kMd:
      seed_selector_ = std::make_unique<seeds::MedoidSeeds>(
          seeds::ComputeMedoid(*data_), &graph_);
      break;
    case seeds::Strategy::kKd: {
      trees::KdTreeParams params;
      params.leaf_size = params_.kd_leaf_size;
      auto forest = std::make_shared<trees::KdForest>(trees::KdForest::Build(
          *data_, params_.kd_num_trees, params, rng.Next()));
      seed_selector_ = std::make_unique<seeds::KdSeeds>(forest, data_);
      break;
    }
    case seeds::Strategy::kKm: {
      trees::BkTreeParams params;
      params.branching = params_.bkt_branching;
      auto tree = std::make_shared<trees::BkMeansTree>(
          trees::BkMeansTree::Build(*data_, params, rng.Next()));
      seed_selector_ = std::make_unique<seeds::KmSeeds>(tree, data_);
      break;
    }
    case seeds::Strategy::kLsh: {
      hash::LshParams params;
      params.num_tables = params_.lsh_tables;
      auto index = std::make_shared<hash::LshIndex>(
          hash::LshIndex::Build(*data_, params, rng.Next()));
      seed_selector_ =
          std::make_unique<seeds::LshSeeds>(index, n, rng.Next());
      break;
    }
    case seeds::Strategy::kSn: {
      DistanceComputer dc(*data_);
      seeds::StackedNswLayers::Params params;
      params.max_degree = params_.sn_max_degree;
      auto layers = std::make_shared<seeds::StackedNswLayers>(
          seeds::StackedNswLayers::Build(*data_, params, rng.Next(), &dc));
      seed_selector_ = std::make_unique<seeds::SnSeeds>(layers);
      break;
    }
  }
}

std::uint64_t IiBaselineIndex::ParamsFingerprint() const {
  io::Encoder enc;
  enc.U64(params_.max_degree);
  enc.U64(params_.build_beam_width);
  enc.U8(static_cast<std::uint8_t>(params_.candidate_source));
  enc.U64(params_.ivf.num_lists);
  enc.U64(params_.ivf.kmeans_iters);
  enc.U64(params_.ivf.pq.num_subspaces);
  enc.U64(params_.ivf.pq.codebook_size);
  enc.U64(params_.ivf_nprobe);
  enc.U8(static_cast<std::uint8_t>(params_.diversify.strategy));
  enc.F32(params_.diversify.alpha);
  enc.F32(params_.diversify.theta_degrees);
  enc.U8(static_cast<std::uint8_t>(params_.build_ss));
  enc.U8(static_cast<std::uint8_t>(params_.query_ss));
  enc.U64(params_.build_seeds);
  enc.U64(params_.kd_num_trees);
  enc.U64(params_.kd_leaf_size);
  enc.U64(params_.bkt_branching);
  enc.U64(params_.lsh_tables);
  enc.U64(params_.sn_max_degree);
  enc.U64(params_.seed);
  return FingerprintBytes(enc);
}

core::Status IiBaselineIndex::LoadAux(const io::SnapshotReader& reader,
                                      const std::string& prefix) {
  (void)reader;
  (void)prefix;
  // Every query seed structure is rebuilt deterministically from the
  // dataset + params (AttachQuerySeeds always starts from a fresh RNG), so
  // nothing auxiliary is stored in the snapshot.
  AttachQuerySeeds(params_.query_ss);
  return core::Status::Ok();
}

}  // namespace gass::methods
