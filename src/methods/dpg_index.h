// DPG — Diversified Proximity Graph (Li et al. 2019).
//
// Extends KGraph: an NNDescent k-NN graph is diversified per node with MOND
// (angle-maximizing pruning, which DPG introduced), then made undirected to
// restore connectivity. Queries use KS seeding.

#ifndef GASS_METHODS_DPG_INDEX_H_
#define GASS_METHODS_DPG_INDEX_H_

#include "knngraph/nndescent.h"
#include "methods/graph_index.h"

namespace gass::methods {

struct DpgParams {
  knngraph::NnDescentParams nndescent;  ///< Base list size (2·target is usual).
  std::size_t max_degree = 16;          ///< Kept per node after MOND.
  float theta_degrees = 60.0f;
  std::uint64_t seed = 42;
};

class DpgIndex : public SingleGraphIndex {
 public:
  explicit DpgIndex(const DpgParams& params) : params_(params) {}

  std::string Name() const override { return "DPG"; }
  BuildStats Build(const core::Dataset& data) override;
  std::uint64_t ParamsFingerprint() const override;

 private:
  core::Status LoadAux(const io::SnapshotReader& reader,
                       const std::string& prefix) override;

  DpgParams params_;
};

}  // namespace gass::methods

#endif  // GASS_METHODS_DPG_INDEX_H_
