// Helpers for GraphIndex::ParamsFingerprint overrides: each method encodes
// its construction parameters (field by field, fixed widths, including the
// build seed) into an io::Encoder and hashes the bytes. Any parameter change
// therefore changes the fingerprint stored in snapshot headers, and
// LoadIndex() refuses to bind the snapshot to a differently-configured
// index.

#ifndef GASS_METHODS_FINGERPRINT_H_
#define GASS_METHODS_FINGERPRINT_H_

#include <cstdint>

#include "hash/lsh.h"
#include "io/hash.h"
#include "io/serialize.h"
#include "knngraph/nndescent.h"
#include "methods/hnsw_index.h"

namespace gass::methods {

inline std::uint64_t FingerprintBytes(const io::Encoder& enc) {
  return io::Hash64(enc.bytes().data(), enc.size(), /*seed=*/0x464E47ULL);
}

inline void EncodeParams(io::Encoder* enc,
                         const knngraph::NnDescentParams& p) {
  enc->U64(p.k);
  enc->U64(p.iterations);
  enc->U64(p.sample);
  enc->F64(p.delta);
}

inline void EncodeParams(io::Encoder* enc, const hash::LshParams& p) {
  enc->U64(p.num_tables);
  enc->U64(p.hash_bits);
  enc->F32(p.bucket_width);
  enc->U64(p.projection_dim);
}

inline void EncodeParams(io::Encoder* enc, const HnswParams& p) {
  enc->U64(p.m);
  enc->U64(p.ef_construction);
  enc->U64(p.seed);
}

}  // namespace gass::methods

#endif  // GASS_METHODS_FINGERPRINT_H_
