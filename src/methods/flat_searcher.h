// FlatGraphSearcher — the "optimized implementation" of Fig. 17.
//
// Takes any built base graph and re-lays it out as a contiguous CSR block
// (the hnswlib/ParlayANN layout), then answers queries with the same beam
// search. The layout removes per-node pointer chasing, which is the entire
// difference measured by the paper's implementation-impact experiment.

#ifndef GASS_METHODS_FLAT_SEARCHER_H_
#define GASS_METHODS_FLAT_SEARCHER_H_

#include <memory>

#include "methods/graph_index.h"

namespace gass::methods {

class FlatGraphSearcher {
 public:
  /// Snapshots `index`'s base graph into a flat layout and reuses its seed
  /// strategy via `seed_selector` (pass the index's, or any other).
  FlatGraphSearcher(const core::Dataset& data, const core::Graph& graph,
                    std::unique_ptr<seeds::SeedSelector> seed_selector);

  SearchResult Search(const float* query, const SearchParams& params);

  std::size_t IndexBytes() const {
    return flat_.MemoryBytes() +
           (seed_selector_ != nullptr ? seed_selector_->MemoryBytes() : 0);
  }

 private:
  const core::Dataset* data_;
  core::FlatGraph flat_;
  std::unique_ptr<seeds::SeedSelector> seed_selector_;
  std::unique_ptr<core::VisitedTable> visited_;
};

}  // namespace gass::methods

#endif  // GASS_METHODS_FLAT_SEARCHER_H_
