// SSG — Satellite System Graph (Fu et al. 2021).
//
// Follows NSG's refine-a-base-graph recipe but (a) gathers candidates by
// *local expansion* (breadth-first over the base graph's 2-hop
// neighborhood) instead of a per-node beam search, (b) prunes with MOND
// (angle threshold θ), and (c) repairs connectivity with multiple DFS trees
// rooted at random nodes. Queries use KS seeding.

#ifndef GASS_METHODS_SSG_INDEX_H_
#define GASS_METHODS_SSG_INDEX_H_

#include "knngraph/nndescent.h"
#include "methods/graph_index.h"

namespace gass::methods {

struct SsgParams {
  knngraph::NnDescentParams nndescent;
  std::size_t num_trees = 4;
  std::size_t tree_leaf_size = 32;
  std::size_t init_candidates = 30;
  std::size_t max_degree = 24;     ///< R.
  float theta_degrees = 60.0f;     ///< MOND angle.
  std::size_t expansion_limit = 200;  ///< Max candidates per local expansion.
  std::size_t num_dfs_roots = 4;   ///< Connectivity-repair trees.
  std::uint64_t seed = 42;
};

class SsgIndex : public SingleGraphIndex {
 public:
  explicit SsgIndex(const SsgParams& params) : params_(params) {}

  std::string Name() const override { return "SSG"; }
  BuildStats Build(const core::Dataset& data) override;
  std::uint64_t ParamsFingerprint() const override;

 private:
  core::Status LoadAux(const io::SnapshotReader& reader,
                       const std::string& prefix) override;

  SsgParams params_;
};

}  // namespace gass::methods

#endif  // GASS_METHODS_SSG_INDEX_H_
