// Vamana (Subramanya et al. 2019, DiskANN's in-memory graph).
//
// Starts from a random regular graph (degree ≥ log n for connectivity),
// then refines every node in two rounds: a beam search from the medoid
// collects the visited set, which is pruned with RRND — α = 1 in the first
// round (i.e. plain RND) and α > 1 in the second to add relaxed long-range
// edges — and bidirectional edges are installed with RND re-pruning on
// overflow. Queries start from the medoid plus random seeds (MD + KS).

#ifndef GASS_METHODS_VAMANA_INDEX_H_
#define GASS_METHODS_VAMANA_INDEX_H_

#include "methods/graph_index.h"

namespace gass::methods {

struct VamanaParams {
  std::size_t max_degree = 32;        ///< R.
  std::size_t build_beam_width = 128; ///< L.
  float alpha = 1.2f;                 ///< Second-round relaxation.
  std::uint64_t seed = 42;
};

class VamanaIndex : public SingleGraphIndex {
 public:
  explicit VamanaIndex(const VamanaParams& params) : params_(params) {}

  std::string Name() const override { return "Vamana"; }
  BuildStats Build(const core::Dataset& data) override;
  SearchResult Search(const float* query, const SearchParams& params) override;
  SearchResult Search(const float* query, const SearchParams& params,
                      SearchContext* ctx) const override;

  core::VectorId medoid() const { return medoid_; }

  std::uint64_t ParamsFingerprint() const override;

 private:
  core::Status SaveAux(io::SnapshotWriter* writer,
                       const std::string& prefix) const override;
  core::Status LoadAux(const io::SnapshotReader& reader,
                       const std::string& prefix) override;

  /// MD + KS seeding with the given RNG, then Algorithm 1 over `visited`.
  SearchResult SearchFrom(const float* query, const SearchParams& params,
                          core::VisitedTable* visited, core::Rng* rng) const;

  void RefinePass(core::DistanceComputer& dc, float alpha,
                  const std::vector<core::VectorId>& order);

  VamanaParams params_;
  core::VectorId medoid_ = 0;
  std::unique_ptr<core::Rng> query_rng_;
};

}  // namespace gass::methods

#endif  // GASS_METHODS_VAMANA_INDEX_H_
