#include "methods/hnsw_index.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/beam_search.h"
#include "core/macros.h"
#include "diversify/diversify.h"
#include "methods/build_util.h"

namespace gass::methods {

using core::DistanceComputer;
using core::Graph;
using core::Neighbor;
using core::VectorId;

core::VectorId HnswIndex::DescendToLayer(DistanceComputer& dc,
                                         const float* query,
                                         std::size_t from_layer,
                                         std::size_t target) const {
  VectorId current = entry_;
  float current_dist = dc.ToQuery(query, current);
  for (std::size_t l = from_layer; l-- > target;) {
    if (l >= layers_.size()) continue;
    bool improved = true;
    while (improved) {
      improved = false;
      // Prefetch-then-batch over the full neighbor list of the node we
      // started this sweep from; the sequential scan below makes the greedy
      // step (and the distance count) identical to the one-at-a-time loop.
      const auto& list = layers_[l].Neighbors(current);
      const VectorId* ids = list.data();
      const std::size_t degree = list.size();
      constexpr std::size_t kChunk = DistanceComputer::kBatchChunk;
      float dist[kChunk];
      for (std::size_t i = 0; i < degree; i += kChunk) {
        const std::size_t m = std::min(kChunk, degree - i);
        for (std::size_t j = 0; j < m; ++j) dc.Prefetch(ids[i + j]);
        dc.ToQueryBatch(query, ids + i, m, dist);
        for (std::size_t j = 0; j < m; ++j) {
          if (dist[j] < current_dist) {
            current_dist = dist[j];
            current = ids[i + j];
            improved = true;
          }
        }
      }
    }
  }
  return current;
}

void HnswIndex::InsertNode(DistanceComputer& dc, VectorId v) {
  const core::Dataset& data = *data_;

  // Draw the node's maximum layer per Eq. 1.
  const double denom =
      std::log(std::max(2.0, static_cast<double>(params_.m) / 2.0));
  double xi = level_rng_->UniformDouble();
  if (xi < 1e-12) xi = 1e-12;
  const auto node_level =
      static_cast<std::uint32_t>(-std::log(xi) / denom);
  level_[v] = node_level;

  if (inserted_ == 0) {
    entry_ = v;
    entry_level_ = node_level;
    while (layers_.size() < node_level) layers_.emplace_back(data.size());
    ++inserted_;
    return;
  }

  diversify::Params upper_prune;
  upper_prune.strategy = diversify::Strategy::kRnd;
  upper_prune.max_degree = params_.m;
  diversify::Params base_prune = upper_prune;
  base_prune.max_degree = params_.m * 2;  // maxM0.

  VectorId current = DescendToLayer(dc, data.Row(v), entry_level_,
                                    std::min<std::size_t>(entry_level_,
                                                          node_level));

  // Grow the layer stack if this node's level exceeds the current top.
  while (layers_.size() < node_level) layers_.emplace_back(data.size());

  for (std::uint32_t l = std::min(node_level, entry_level_) + 1; l-- > 0;) {
    Graph& layer_graph = l == 0 ? base_ : layers_[l - 1];
    const diversify::Params& prune = l == 0 ? base_prune : upper_prune;
    std::vector<Neighbor> candidates = core::BeamSearch(
        layer_graph, dc, data.Row(v), {current}, params_.ef_construction,
        params_.ef_construction, visited_.get());
    std::vector<Neighbor> kept =
        diversify::Diversify(dc, v, candidates, prune);
    // The forward list at any layer is bounded by M (heuristic selects at
    // most M); reverse lists may grow to the layer cap before re-pruning.
    if (kept.size() > params_.m) kept.resize(params_.m);
    InstallBidirectional(dc, &layer_graph, v, kept, prune);
    if (!candidates.empty()) current = candidates.front().id;
  }

  if (node_level > entry_level_) {
    entry_ = v;
    entry_level_ = node_level;
  }
  ++inserted_;
}

BuildStats HnswIndex::Build(const core::Dataset& data) {
  return BuildPrefix(data, data.size());
}

BuildStats HnswIndex::BuildPrefix(const core::Dataset& data,
                                  std::size_t count) {
  GASS_CHECK(!data.empty());
  GASS_CHECK(count <= data.size());
  data_ = &data;
  core::Timer timer;
  DistanceComputer dc(data);

  base_ = Graph(data.size());
  layers_.clear();
  level_.assign(data.size(), 0);
  visited_ = std::make_unique<core::VisitedTable>(data.size());
  level_rng_ = std::make_unique<core::Rng>(params_.seed);
  inserted_ = 0;

  for (VectorId v = 0; v < count; ++v) InsertNode(dc, v);

  BuildStats stats;
  stats.elapsed_seconds = timer.Seconds();
  stats.distance_computations = dc.count();
  stats.index_bytes = IndexBytes();
  stats.peak_bytes = stats.index_bytes;
  return stats;
}

BuildStats HnswIndex::Extend(std::size_t new_count) {
  GASS_CHECK_MSG(data_ != nullptr, "Extend before Build");
  GASS_CHECK(new_count <= data_->size());
  GASS_CHECK(new_count >= inserted_);
  core::Timer timer;
  DistanceComputer dc(*data_);
  for (VectorId v = static_cast<VectorId>(inserted_); v < new_count; ++v) {
    InsertNode(dc, v);
  }
  BuildStats stats;
  stats.elapsed_seconds = timer.Seconds();
  stats.distance_computations = dc.count();
  stats.index_bytes = IndexBytes();
  stats.peak_bytes = stats.index_bytes;
  return stats;
}

SearchResult HnswIndex::Search(const float* query,
                               const SearchParams& params) {
  return SearchWith(query, params, visited_.get());
}

SearchResult HnswIndex::Search(const float* query, const SearchParams& params,
                               SearchContext* ctx) const {
  return SearchWith(query, params, &ctx->visited);
}

SearchResult HnswIndex::SearchWith(const float* query,
                                   const SearchParams& params,
                                   core::VisitedTable* visited) const {
  GASS_CHECK_MSG(data_ != nullptr, "Search before Build");
  SearchResult result;
  core::Timer timer;
  DistanceComputer dc(*data_);

  // SN seed selection: descend to layer 1's best node; it and its layer-1
  // neighborhood seed the base-layer beam search.
  const VectorId node = DescendToLayer(dc, query, layers_.size(), 0);
  std::vector<VectorId> seeds{node};
  if (!layers_.empty()) {
    for (VectorId u : layers_[0].Neighbors(node)) {
      if (seeds.size() >= params.num_seeds) break;
      seeds.push_back(u);
    }
  }

  result.neighbors =
      core::BeamSearch(base_, dc, query, seeds, params.k, params.beam_width,
                       visited, &result.stats, params.prune_bound,
                       params.deadline);
  result.stats.distance_computations = dc.count();
  result.stats.elapsed_seconds = timer.Seconds();
  return result;
}

core::Status HnswIndex::Save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return core::Status::Error("cannot create " + path);
  const std::uint64_t magic = 0x47415353484E5357ULL;  // "GASSHNSW".
  const std::uint64_t n = level_.size();
  const std::uint64_t num_layers = layers_.size();
  const std::uint64_t inserted = inserted_;
  const std::uint32_t entry = entry_;
  const std::uint32_t entry_level = entry_level_;
  bool ok = std::fwrite(&magic, sizeof(magic), 1, f) == 1 &&
            std::fwrite(&n, sizeof(n), 1, f) == 1 &&
            std::fwrite(&num_layers, sizeof(num_layers), 1, f) == 1 &&
            std::fwrite(&inserted, sizeof(inserted), 1, f) == 1 &&
            std::fwrite(&entry, sizeof(entry), 1, f) == 1 &&
            std::fwrite(&entry_level, sizeof(entry_level), 1, f) == 1 &&
            (level_.empty() ||
             std::fwrite(level_.data(), sizeof(std::uint32_t), level_.size(),
                         f) == level_.size());
  std::fclose(f);
  if (!ok) return core::Status::Error("short write to " + path);

  // Graphs go to sidecar sections via the Graph serializer appended to the
  // same file.
  core::Status status = base_.Save(path + ".base");
  if (!status.ok()) return status;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    status = layers_[l].Save(path + ".layer" + std::to_string(l));
    if (!status.ok()) return status;
  }
  return core::Status::Ok();
}

core::Status HnswIndex::Load(const std::string& path,
                             const core::Dataset& data) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return core::Status::Error("cannot open " + path);
  std::uint64_t magic = 0, n = 0, num_layers = 0, inserted = 0;
  std::uint32_t entry = 0, entry_level = 0;
  const bool ok = std::fread(&magic, sizeof(magic), 1, f) == 1 &&
                  std::fread(&n, sizeof(n), 1, f) == 1 &&
                  std::fread(&num_layers, sizeof(num_layers), 1, f) == 1 &&
                  std::fread(&inserted, sizeof(inserted), 1, f) == 1 &&
                  std::fread(&entry, sizeof(entry), 1, f) == 1 &&
                  std::fread(&entry_level, sizeof(entry_level), 1, f) == 1;
  if (!ok || magic != 0x47415353484E5357ULL) {
    std::fclose(f);
    return core::Status::Error("not a GASS HNSW index: " + path);
  }
  if (n != data.size()) {
    std::fclose(f);
    return core::Status::Error("index/data size mismatch for " + path);
  }
  level_.resize(n);
  if (n > 0 &&
      std::fread(level_.data(), sizeof(std::uint32_t), n, f) != n) {
    std::fclose(f);
    return core::Status::Error("truncated HNSW index: " + path);
  }
  std::fclose(f);

  core::Status status = base_.Load(path + ".base");
  if (!status.ok()) return status;
  layers_.resize(num_layers);
  for (std::size_t l = 0; l < num_layers; ++l) {
    status = layers_[l].Load(path + ".layer" + std::to_string(l));
    if (!status.ok()) return status;
  }
  data_ = &data;
  entry_ = entry;
  entry_level_ = entry_level;
  inserted_ = inserted;
  visited_ = std::make_unique<core::VisitedTable>(data.size());
  level_rng_ = std::make_unique<core::Rng>(params_.seed ^ inserted_);
  return core::Status::Ok();
}

std::size_t HnswIndex::IndexBytes() const {
  std::size_t total =
      base_.MemoryBytes() + level_.size() * sizeof(std::uint32_t);
  for (const Graph& layer : layers_) total += layer.MemoryBytes();
  return total;
}

}  // namespace gass::methods
