#include "methods/hnsw_index.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/beam_search.h"
#include "core/macros.h"
#include "diversify/diversify.h"
#include "methods/build_util.h"
#include "methods/fingerprint.h"

namespace gass::methods {

using core::DistanceComputer;
using core::Graph;
using core::Neighbor;
using core::VectorId;

core::VectorId HnswIndex::DescendToLayer(DistanceComputer& dc,
                                         const float* query,
                                         std::size_t from_layer,
                                         std::size_t target) const {
  VectorId current = entry_;
  float current_dist = dc.ToQuery(query, current);
  for (std::size_t l = from_layer; l-- > target;) {
    if (l >= layers_.size()) continue;
    bool improved = true;
    while (improved) {
      improved = false;
      // Prefetch-then-batch over the full neighbor list of the node we
      // started this sweep from; the sequential scan below makes the greedy
      // step (and the distance count) identical to the one-at-a-time loop.
      const auto& list = layers_[l].Neighbors(current);
      const VectorId* ids = list.data();
      const std::size_t degree = list.size();
      constexpr std::size_t kChunk = DistanceComputer::kBatchChunk;
      float dist[kChunk];
      for (std::size_t i = 0; i < degree; i += kChunk) {
        const std::size_t m = std::min(kChunk, degree - i);
        for (std::size_t j = 0; j < m; ++j) dc.Prefetch(ids[i + j]);
        dc.ToQueryBatch(query, ids + i, m, dist);
        for (std::size_t j = 0; j < m; ++j) {
          if (dist[j] < current_dist) {
            current_dist = dist[j];
            current = ids[i + j];
            improved = true;
          }
        }
      }
    }
  }
  return current;
}

void HnswIndex::InsertNode(DistanceComputer& dc, VectorId v) {
  const core::Dataset& data = *data_;

  // Draw the node's maximum layer per Eq. 1.
  const double denom =
      std::log(std::max(2.0, static_cast<double>(params_.m) / 2.0));
  double xi = level_rng_->UniformDouble();
  if (xi < 1e-12) xi = 1e-12;
  const auto node_level =
      static_cast<std::uint32_t>(-std::log(xi) / denom);
  level_[v] = node_level;

  if (inserted_ == 0) {
    entry_ = v;
    entry_level_ = node_level;
    while (layers_.size() < node_level) layers_.emplace_back(data.size());
    ++inserted_;
    return;
  }

  diversify::Params upper_prune;
  upper_prune.strategy = diversify::Strategy::kRnd;
  upper_prune.max_degree = params_.m;
  diversify::Params base_prune = upper_prune;
  base_prune.max_degree = params_.m * 2;  // maxM0.

  VectorId current = DescendToLayer(dc, data.Row(v), entry_level_,
                                    std::min<std::size_t>(entry_level_,
                                                          node_level));

  // Grow the layer stack if this node's level exceeds the current top.
  while (layers_.size() < node_level) layers_.emplace_back(data.size());

  for (std::uint32_t l = std::min(node_level, entry_level_) + 1; l-- > 0;) {
    Graph& layer_graph = l == 0 ? base_ : layers_[l - 1];
    const diversify::Params& prune = l == 0 ? base_prune : upper_prune;
    std::vector<Neighbor> candidates = core::BeamSearch(
        layer_graph, dc, data.Row(v), {current}, params_.ef_construction,
        params_.ef_construction, visited_.get());
    std::vector<Neighbor> kept =
        diversify::Diversify(dc, v, candidates, prune);
    // The forward list at any layer is bounded by M (heuristic selects at
    // most M); reverse lists may grow to the layer cap before re-pruning.
    if (kept.size() > params_.m) kept.resize(params_.m);
    InstallBidirectional(dc, &layer_graph, v, kept, prune);
    if (!candidates.empty()) current = candidates.front().id;
  }

  if (node_level > entry_level_) {
    entry_ = v;
    entry_level_ = node_level;
  }
  ++inserted_;
}

BuildStats HnswIndex::Build(const core::Dataset& data) {
  return BuildPrefix(data, data.size());
}

BuildStats HnswIndex::BuildPrefix(const core::Dataset& data,
                                  std::size_t count) {
  GASS_CHECK(!data.empty());
  GASS_CHECK(count <= data.size());
  data_ = &data;
  core::Timer timer;
  DistanceComputer dc(data);

  base_ = Graph(data.size());
  layers_.clear();
  level_.assign(data.size(), 0);
  visited_ = std::make_unique<core::VisitedTable>(data.size());
  level_rng_ = std::make_unique<core::Rng>(params_.seed);
  inserted_ = 0;

  for (VectorId v = 0; v < count; ++v) InsertNode(dc, v);

  BuildStats stats;
  stats.elapsed_seconds = timer.Seconds();
  stats.distance_computations = dc.count();
  stats.index_bytes = IndexBytes();
  stats.peak_bytes = stats.index_bytes;
  return stats;
}

BuildStats HnswIndex::Extend(std::size_t new_count) {
  GASS_CHECK_MSG(data_ != nullptr, "Extend before Build");
  GASS_CHECK(new_count <= data_->size());
  GASS_CHECK(new_count >= inserted_);
  core::Timer timer;
  DistanceComputer dc(*data_);
  for (VectorId v = static_cast<VectorId>(inserted_); v < new_count; ++v) {
    InsertNode(dc, v);
  }
  BuildStats stats;
  stats.elapsed_seconds = timer.Seconds();
  stats.distance_computations = dc.count();
  stats.index_bytes = IndexBytes();
  stats.peak_bytes = stats.index_bytes;
  return stats;
}

SearchResult HnswIndex::Search(const float* query,
                               const SearchParams& params) {
  return SearchWith(query, params, visited_.get());
}

SearchResult HnswIndex::Search(const float* query, const SearchParams& params,
                               SearchContext* ctx) const {
  return SearchWith(query, params, &ctx->visited);
}

SearchResult HnswIndex::SearchWith(const float* query,
                                   const SearchParams& params,
                                   core::VisitedTable* visited) const {
  GASS_CHECK_MSG(data_ != nullptr, "Search before Build");
  SearchResult result;
  core::Timer timer;
  DistanceComputer dc(*data_);

  // SN seed selection: descend to layer 1's best node; it and its layer-1
  // neighborhood seed the base-layer beam search.
  const VectorId node = DescendToLayer(dc, query, layers_.size(), 0);
  std::vector<VectorId> seeds{node};
  if (!layers_.empty()) {
    for (VectorId u : layers_[0].Neighbors(node)) {
      if (seeds.size() >= params.num_seeds) break;
      seeds.push_back(u);
    }
  }

  result.neighbors =
      core::BeamSearch(base_, dc, query, seeds, params.k, EffectiveBeamWidth(params),
                       visited, &result.stats, params.prune_bound,
                       params.deadline, params.tombstones);
  result.stats.distance_computations = dc.count();
  result.stats.elapsed_seconds = timer.Seconds();
  return result;
}

core::Status HnswIndex::Save(const std::string& path) const {
  return SaveIndex(*this, path);
}

core::Status HnswIndex::Load(const std::string& path,
                             const core::Dataset& data) {
  return LoadIndex(this, data, path);
}

std::uint64_t HnswIndex::ParamsFingerprint() const {
  io::Encoder enc;
  EncodeParams(&enc, params_);
  return FingerprintBytes(enc);
}

core::Status HnswIndex::SaveSections(io::SnapshotWriter* writer,
                                     const std::string& prefix) const {
  io::Encoder meta;
  meta.U32(entry_);
  meta.U32(entry_level_);
  meta.U64(inserted_);
  meta.U64(layers_.size());
  meta.VecU32(level_);
  GASS_RETURN_IF_ERROR(writer->AddSection(prefix + "meta", std::move(meta)));

  io::Encoder base;
  io::EncodeGraph(base_, &base);
  GASS_RETURN_IF_ERROR(writer->AddSection(prefix + "base", std::move(base)));

  io::Encoder layers;
  for (const Graph& layer : layers_) io::EncodeGraph(layer, &layers);
  return writer->AddSection(prefix + "layers", std::move(layers));
}

core::Status HnswIndex::LoadSections(const io::SnapshotReader& reader,
                                     const std::string& prefix,
                                     const core::Dataset& data) {
  const std::uint64_t n = data.size();
  io::AlignedBytes buffer;
  io::Decoder dec(nullptr, 0, "");
  GASS_RETURN_IF_ERROR(reader.OpenSection(prefix + "meta", &buffer, &dec));
  const std::uint32_t entry = dec.U32();
  const std::uint32_t entry_level = dec.U32();
  const std::uint64_t inserted = dec.U64();
  const std::uint64_t num_layers = dec.U64();
  std::vector<std::uint32_t> level;
  dec.VecU32(&level, n);
  if (!dec.ExpectEnd()) return dec.status();
  dec.Check(level.size() == n, "HNSW level table size mismatch");
  dec.Check(inserted <= n, "HNSW inserted count exceeds dataset size");
  dec.Check(num_layers <= (1ULL << 20), "implausible HNSW layer count");
  dec.Check(entry < n, "HNSW entry point out of range");
  dec.Check(entry_level <= num_layers, "HNSW entry level above layer stack");
  for (std::uint32_t node_level : level) {
    if (node_level > num_layers) {
      dec.Check(false, "HNSW node level above layer stack");
      break;
    }
  }
  if (!dec.ok()) return dec.status();

  Graph base;
  GASS_RETURN_IF_ERROR(reader.OpenSection(prefix + "base", &buffer, &dec));
  GASS_RETURN_IF_ERROR(io::DecodeGraph(&dec, n, &base));
  if (!dec.ExpectEnd()) return dec.status();

  std::vector<Graph> layers(num_layers);
  GASS_RETURN_IF_ERROR(reader.OpenSection(prefix + "layers", &buffer, &dec));
  for (std::uint64_t l = 0; l < num_layers; ++l) {
    GASS_RETURN_IF_ERROR(io::DecodeGraph(&dec, n, &layers[l]));
  }
  if (!dec.ExpectEnd()) return dec.status();

  base_ = std::move(base);
  layers_ = std::move(layers);
  level_ = std::move(level);
  entry_ = entry;
  entry_level_ = entry_level;
  inserted_ = inserted;
  data_ = &data;
  visited_ = std::make_unique<core::VisitedTable>(data.size());
  // Replay the level stream (one draw per inserted node) so a later
  // Extend() continues exactly where the saved build left off.
  level_rng_ = std::make_unique<core::Rng>(params_.seed);
  for (std::uint64_t i = 0; i < inserted_; ++i) level_rng_->UniformDouble();
  return core::Status::Ok();
}

std::size_t HnswIndex::IndexBytes() const {
  std::size_t total =
      base_.MemoryBytes() + level_.size() * sizeof(std::uint32_t);
  for (const Graph& layer : layers_) total += layer.MemoryBytes();
  return total;
}

}  // namespace gass::methods
