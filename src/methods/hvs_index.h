// HVS — Hierarchical Voronoi-diagram Structure (Lu et al. 2021).
//
// The paper surveys HVS as an HNSW variant that rebuilds the hierarchical
// layers: nodes are assigned to layers by *local density* (not uniformly at
// random), each layer forms a Voronoi diagram over multi-level-quantized
// vectors (quantization granularity doubling toward the base), and base-
// layer search proceeds as in HNSW. The official implementation could not
// be run by the paper's authors (Section 4.1); this reconstruction follows
// the published description with two simplifications, noted inline:
// density is estimated from a random-sample nearest-neighbor distance, and
// each layer is scanned by PQ/ADC distance (its Voronoi cells are induced
// by the quantizer codebook rather than stored explicitly).

#ifndef GASS_METHODS_HVS_INDEX_H_
#define GASS_METHODS_HVS_INDEX_H_

#include <memory>
#include <vector>

#include "methods/graph_index.h"
#include "methods/hnsw_index.h"
#include "quantize/product_quantizer.h"

namespace gass::methods {

struct HvsParams {
  HnswParams base;                 ///< Base-layer construction.
  std::size_t num_levels = 2;      ///< Hierarchical quantized levels.
  /// Fraction of the level below kept at each level (densest first).
  double level_fraction = 0.125;
  /// PQ subspaces at the*top* level; doubled at each level toward the base
  /// (the paper's "increasing dimensionality by a factor of 2").
  std::size_t top_subspaces = 2;
  /// Density-estimation sample per node.
  std::size_t density_sample = 24;
  /// Candidates carried between levels during the descent.
  std::size_t descent_width = 8;
  std::uint64_t seed = 42;
};

class HvsIndex : public GraphIndex {
 public:
  explicit HvsIndex(const HvsParams& params) : params_(params) {}

  std::string Name() const override { return "HVS"; }
  BuildStats Build(const core::Dataset& data) override;
  SearchResult Search(const float* query, const SearchParams& params) override;
  SearchResult Search(const float* query, const SearchParams& params,
                      SearchContext* ctx) const override;
  bool SupportsConcurrentSearch() const override { return true; }

  const core::Graph& graph() const override { return base_->graph(); }
  std::size_t IndexBytes() const override;

  std::size_t num_levels() const { return levels_.size(); }
  std::size_t LevelSize(std::size_t level) const {
    return levels_[level].members.size();
  }

  std::uint64_t ParamsFingerprint() const override;
  core::Status SaveSections(io::SnapshotWriter* writer,
                            const std::string& prefix) const override;
  core::Status LoadSections(const io::SnapshotReader& reader,
                            const std::string& prefix,
                            const core::Dataset& data) override;

 private:
  /// Quantized-level descent (read-only) + base beam search over `visited`.
  SearchResult SearchThrough(const float* query, const SearchParams& params,
                             core::VisitedTable* visited) const;

  struct Level {
    std::vector<core::VectorId> members;      ///< Densest-first node sample.
    quantize::ProductQuantizer pq;            ///< Level quantizer.
    std::vector<std::uint8_t> codes;          ///< members × code_size.
  };

  HvsParams params_;
  std::unique_ptr<HnswIndex> base_;
  std::unique_ptr<core::VisitedTable> visited_;
  std::vector<Level> levels_;  ///< levels_[0] is the top (coarsest).
};

}  // namespace gass::methods

#endif  // GASS_METHODS_HVS_INDEX_H_
