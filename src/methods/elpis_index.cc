#include "methods/elpis_index.h"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "core/macros.h"
#include "core/thread_pool.h"
#include "methods/fingerprint.h"

namespace gass::methods {

using core::Neighbor;
using core::VectorId;

BuildStats ElpisIndex::Build(const core::Dataset& data) {
  GASS_CHECK(!data.empty());
  data_ = &data;
  core::Timer timer;

  tree_ = std::make_unique<summaries::EapcaTree>(
      summaries::EapcaTree::Build(data, params_.tree, params_.seed));

  leaves_.clear();
  leaves_.resize(tree_->num_leaves());
  std::atomic<std::uint64_t> distances{0};
  core::ParallelFor(
      leaves_.size(), params_.build_threads,
      [&](std::size_t, std::size_t i) {
        Leaf& leaf = leaves_[i];
        leaf.global_ids = tree_->LeafMembers(i);
        leaf.data = data.Select(leaf.global_ids);
        HnswParams hnsw_params = params_.leaf_hnsw;
        hnsw_params.seed = params_.seed ^ (i * 0x9E3779B97F4A7C15ULL);
        leaf.index = std::make_unique<HnswIndex>(hnsw_params);
        const BuildStats leaf_stats = leaf.index->Build(leaf.data);
        distances.fetch_add(leaf_stats.distance_computations,
                            std::memory_order_relaxed);
      });

  BuildStats stats;
  stats.elapsed_seconds = timer.Seconds();
  stats.distance_computations = distances.load();
  stats.index_bytes = IndexBytes();
  stats.peak_bytes = stats.index_bytes;
  return stats;
}

SearchResult ElpisIndex::Search(const float* query,
                                const SearchParams& params) {
  GASS_CHECK_MSG(data_ != nullptr, "Search before Build");
  SearchResult result;
  core::Timer timer;

  // Order leaves by EAPCA lower bound.
  const summaries::EapcaSummary summary = tree_->SummarizeQuery(query);
  std::vector<std::size_t> order(leaves_.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<float> bounds(leaves_.size());
  for (std::size_t i = 0; i < leaves_.size(); ++i) {
    bounds[i] = tree_->LeafLowerBound(summary, i);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return bounds[a] < bounds[b];
  });

  // Search the most promising leaf first to obtain a pruning bound.
  std::vector<Neighbor> merged;
  auto search_leaf = [&](std::size_t leaf_index) {
    Leaf& leaf = leaves_[leaf_index];
    SearchParams leaf_params = params;
    const SearchResult leaf_result =
        leaf.index->Search(query, leaf_params);
    result.stats.distance_computations +=
        leaf_result.stats.distance_computations;
    result.stats.hops += leaf_result.stats.hops;
    return leaf_result.neighbors;
  };

  const std::vector<Neighbor> first = search_leaf(order[0]);
  for (const Neighbor& nb : first) {
    merged.push_back(Neighbor(leaves_[order[0]].global_ids[nb.id],
                              nb.distance));
  }
  std::sort(merged.begin(), merged.end());
  float kth_bsf = merged.size() >= params.k
                      ? merged[params.k - 1].distance
                      : 3.402823466e38f;

  // Remaining leaves: prune by lower bound, search survivors (up to nprobe
  // total probes), concurrently when configured.
  std::vector<std::size_t> survivors;
  for (std::size_t rank = 1;
       rank < order.size() && survivors.size() + 1 < params_.nprobe;
       ++rank) {
    if (bounds[order[rank]] >= kth_bsf) continue;
    survivors.push_back(order[rank]);
  }
  last_probed_ = 1 + survivors.size();

  if (!survivors.empty()) {
    // Warm the remaining leaf searches with the current k-th best-so-far:
    // candidates at or beyond it cannot enter the final answer ("the
    // retrieved set of answers feed the search priority queues for the
    // other leaves").
    SearchParams warmed = params;
    warmed.prune_bound = std::min(params.prune_bound, kth_bsf);
    std::vector<std::vector<Neighbor>> leaf_results(survivors.size());
    std::vector<core::SearchStats> leaf_stats(survivors.size());
    core::ParallelFor(
        survivors.size(),
        std::max<std::size_t>(1, params_.search_threads),
        [&](std::size_t, std::size_t i) {
          Leaf& leaf = leaves_[survivors[i]];
          const SearchResult r = leaf.index->Search(query, warmed);
          leaf_stats[i] = r.stats;
          leaf_results[i] = r.neighbors;
        });
    for (std::size_t i = 0; i < survivors.size(); ++i) {
      result.stats.distance_computations +=
          leaf_stats[i].distance_computations;
      result.stats.hops += leaf_stats[i].hops;
      for (const Neighbor& nb : leaf_results[i]) {
        merged.push_back(Neighbor(
            leaves_[survivors[i]].global_ids[nb.id], nb.distance));
      }
    }
    std::sort(merged.begin(), merged.end());
  }

  if (merged.size() > params.k) merged.resize(params.k);
  result.neighbors = std::move(merged);
  result.stats.elapsed_seconds = timer.Seconds();
  return result;
}

const core::Graph& ElpisIndex::graph() const {
  GASS_CHECK_MSG(false, "ELPIS has no single base graph");
  static const core::Graph kEmpty;
  return kEmpty;
}

std::size_t ElpisIndex::IndexBytes() const {
  std::size_t total = tree_ != nullptr ? tree_->MemoryBytes() : 0;
  for (const Leaf& leaf : leaves_) {
    total += leaf.global_ids.size() * sizeof(VectorId);
    total += leaf.data.SizeBytes();  // Duplicated contiguous leaf vectors.
    if (leaf.index != nullptr) total += leaf.index->IndexBytes();
  }
  return total;
}

std::uint64_t ElpisIndex::ParamsFingerprint() const {
  io::Encoder enc;
  enc.U64(params_.tree.num_segments);
  enc.U64(params_.tree.leaf_size);
  enc.U64(params_.tree.min_leaf_size);
  EncodeParams(&enc, params_.leaf_hnsw);
  enc.U64(params_.seed);
  return FingerprintBytes(enc);
}

core::Status ElpisIndex::SaveSections(io::SnapshotWriter* writer,
                                      const std::string& prefix) const {
  if (tree_ == nullptr) {
    return core::Status::InvalidArgument("ELPIS snapshot before Build");
  }
  io::Encoder enc;
  tree_->EncodeTo(&enc);
  GASS_RETURN_IF_ERROR(writer->AddSection(prefix + "tree", std::move(enc)));
  for (std::size_t i = 0; i < leaves_.size(); ++i) {
    GASS_RETURN_IF_ERROR(leaves_[i].index->SaveSections(
        writer, prefix + "leaf" + std::to_string(i) + "."));
  }
  return core::Status::Ok();
}

core::Status ElpisIndex::LoadSections(const io::SnapshotReader& reader,
                                      const std::string& prefix,
                                      const core::Dataset& data) {
  io::AlignedBytes buffer;
  io::Decoder dec(nullptr, 0, "");
  GASS_RETURN_IF_ERROR(reader.OpenSection(prefix + "tree", &buffer, &dec));
  std::unique_ptr<summaries::EapcaTree> tree;
  GASS_RETURN_IF_ERROR(
      summaries::EapcaTree::DecodeFrom(&dec, data.size(), &tree));
  if (!dec.ExpectEnd()) return dec.status();

  // Leaves are reconstructed from the tree partition (the leaf datasets are
  // row selections, not stored); only each leaf's HNSW sections live in the
  // snapshot. Resize up front so leaf.data stays at a stable address while
  // its index loads.
  std::vector<Leaf> leaves(tree->num_leaves());
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    Leaf& leaf = leaves[i];
    leaf.global_ids = tree->LeafMembers(i);
    if (leaf.global_ids.empty()) {
      return core::Status::Corruption("ELPIS snapshot has an empty leaf");
    }
    leaf.data = data.Select(leaf.global_ids);
    HnswParams hnsw_params = params_.leaf_hnsw;
    hnsw_params.seed = params_.seed ^ (i * 0x9E3779B97F4A7C15ULL);
    leaf.index = std::make_unique<HnswIndex>(hnsw_params);
    GASS_RETURN_IF_ERROR(leaf.index->LoadSections(
        reader, prefix + "leaf" + std::to_string(i) + ".", leaf.data));
  }

  tree_ = std::move(tree);
  leaves_ = std::move(leaves);
  data_ = &data;
  last_probed_ = 0;
  return core::Status::Ok();
}

}  // namespace gass::methods
