#include "summaries/eapca_tree.h"

#include <algorithm>

#include "core/macros.h"

namespace gass::summaries {

using core::Dataset;
using core::VectorId;

namespace {

// Summary coordinates laid out as [means..., stds...] per point.
struct SummaryMatrix {
  std::size_t width = 0;  // 2 × num_segments.
  std::vector<float> values;

  const float* Row(std::size_t i) const { return values.data() + i * width; }
};

void SplitRecursive(const SummaryMatrix& summaries,
                    std::vector<VectorId> ids,
                    const std::vector<std::size_t>& row_of,
                    const EapcaTreeParams& params,
                    std::vector<std::vector<VectorId>>* leaves) {
  if (ids.size() <= params.leaf_size) {
    leaves->push_back(std::move(ids));
    return;
  }
  // Widest-range summary coordinate.
  const std::size_t width = summaries.width;
  std::vector<float> lo(width, 3.402823466e38f);
  std::vector<float> hi(width, -3.402823466e38f);
  for (VectorId id : ids) {
    const float* row = summaries.Row(row_of[id]);
    for (std::size_t c = 0; c < width; ++c) {
      lo[c] = std::min(lo[c], row[c]);
      hi[c] = std::max(hi[c], row[c]);
    }
  }
  std::size_t split_coord = 0;
  float best_range = -1.0f;
  for (std::size_t c = 0; c < width; ++c) {
    const float range = hi[c] - lo[c];
    if (range > best_range) {
      best_range = range;
      split_coord = c;
    }
  }
  const float split_value = 0.5f * (lo[split_coord] + hi[split_coord]);

  std::vector<VectorId> left, right;
  for (VectorId id : ids) {
    const float value = summaries.Row(row_of[id])[split_coord];
    (value < split_value ? left : right).push_back(id);
  }
  // Degenerate split (all summaries identical): cut evenly.
  if (left.size() < params.min_leaf_size ||
      right.size() < params.min_leaf_size) {
    const std::size_t mid = ids.size() / 2;
    left.assign(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(mid));
    right.assign(ids.begin() + static_cast<std::ptrdiff_t>(mid), ids.end());
  }
  ids.clear();
  ids.shrink_to_fit();
  SplitRecursive(summaries, std::move(left), row_of, params, leaves);
  SplitRecursive(summaries, std::move(right), row_of, params, leaves);
}

}  // namespace

EapcaTree EapcaTree::Build(const Dataset& data, const EapcaTreeParams& params,
                           std::uint64_t seed) {
  (void)seed;  // The split rule is deterministic; kept for API symmetry.
  GASS_CHECK(!data.empty());
  GASS_CHECK(params.leaf_size >= params.min_leaf_size);
  EapcaTree tree;
  tree.summarizer_ = EapcaSummarizer(data.dim(), params.num_segments);
  const std::size_t segments = tree.summarizer_.num_segments();

  SummaryMatrix summaries;
  summaries.width = 2 * segments;
  summaries.values.resize(data.size() * summaries.width);
  std::vector<std::size_t> row_of(data.size());
  for (VectorId i = 0; i < data.size(); ++i) {
    row_of[i] = i;
    const EapcaSummary s = tree.summarizer_.Summarize(data.Row(i));
    float* out = summaries.values.data() + i * summaries.width;
    std::copy(s.means.begin(), s.means.end(), out);
    std::copy(s.stds.begin(), s.stds.end(), out + segments);
  }

  std::vector<VectorId> all(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    all[i] = static_cast<VectorId>(i);
  }
  SplitRecursive(summaries, std::move(all), row_of, params, &tree.leaves_);

  // Per-leaf envelopes.
  tree.envelopes_.resize(tree.leaves_.size());
  for (std::size_t leaf = 0; leaf < tree.leaves_.size(); ++leaf) {
    LeafEnvelope& env = tree.envelopes_[leaf];
    env.min_means.assign(segments, 3.402823466e38f);
    env.max_means.assign(segments, -3.402823466e38f);
    env.min_stds.assign(segments, 3.402823466e38f);
    env.max_stds.assign(segments, -3.402823466e38f);
    for (VectorId id : tree.leaves_[leaf]) {
      const float* row = summaries.Row(row_of[id]);
      for (std::size_t s = 0; s < segments; ++s) {
        env.min_means[s] = std::min(env.min_means[s], row[s]);
        env.max_means[s] = std::max(env.max_means[s], row[s]);
        env.min_stds[s] = std::min(env.min_stds[s], row[segments + s]);
        env.max_stds[s] = std::max(env.max_stds[s], row[segments + s]);
      }
    }
  }
  return tree;
}

float EapcaTree::LeafLowerBound(const EapcaSummary& query_summary,
                                std::size_t leaf) const {
  const LeafEnvelope& env = envelopes_[leaf];
  return summarizer_.EnvelopeLowerBound(query_summary, env.min_means,
                                        env.max_means, env.min_stds,
                                        env.max_stds);
}

float EapcaTree::LeafLowerBound(const float* query, std::size_t leaf) const {
  return LeafLowerBound(summarizer_.Summarize(query), leaf);
}

std::size_t EapcaTree::MemoryBytes() const {
  std::size_t total = 0;
  for (const auto& leaf : leaves_) total += leaf.size() * sizeof(VectorId);
  for (const auto& env : envelopes_) {
    total += (env.min_means.size() + env.max_means.size() +
              env.min_stds.size() + env.max_stds.size()) *
             sizeof(float);
  }
  return total;
}

void EapcaTree::EncodeTo(io::Encoder* enc) const {
  enc->U64(summarizer_.dim());
  enc->U64(summarizer_.num_segments());
  enc->U64(leaves_.size());
  for (std::size_t leaf = 0; leaf < leaves_.size(); ++leaf) {
    enc->VecU32(leaves_[leaf]);
    const LeafEnvelope& env = envelopes_[leaf];
    enc->VecF32(env.min_means);
    enc->VecF32(env.max_means);
    enc->VecF32(env.min_stds);
    enc->VecF32(env.max_stds);
  }
}

core::Status EapcaTree::DecodeFrom(io::Decoder* dec,
                                   std::uint64_t expected_n,
                                   std::unique_ptr<EapcaTree>* out) {
  const std::uint64_t dim = dec->U64();
  const std::uint64_t num_segments = dec->U64();
  const std::uint64_t num_leaves = dec->U64();
  if (!dec->Check(dim > 0 && dim <= (1u << 24),
                  "eapca dimension out of range") ||
      !dec->Check(num_segments > 0 && num_segments <= dim,
                  "eapca segment count out of range") ||
      !dec->Check(num_leaves > 0 && num_leaves <= expected_n,
                  "eapca leaf count out of range")) {
    return dec->status();
  }
  std::unique_ptr<EapcaTree> tree(new EapcaTree());
  tree->summarizer_ = EapcaSummarizer(dim, num_segments);
  tree->leaves_.resize(num_leaves);
  tree->envelopes_.resize(num_leaves);
  for (std::uint64_t leaf = 0; leaf < num_leaves && dec->ok(); ++leaf) {
    if (!dec->VecU32(&tree->leaves_[leaf], expected_n)) break;
    LeafEnvelope& env = tree->envelopes_[leaf];
    dec->VecF32(&env.min_means, num_segments);
    dec->VecF32(&env.max_means, num_segments);
    dec->VecF32(&env.min_stds, num_segments);
    dec->VecF32(&env.max_stds, num_segments);
    if (!dec->ok()) break;
    const std::size_t segments = tree->summarizer_.num_segments();
    if (!dec->Check(env.min_means.size() == segments &&
                        env.max_means.size() == segments &&
                        env.min_stds.size() == segments &&
                        env.max_stds.size() == segments,
                    "eapca leaf " + std::to_string(leaf) +
                        " envelope size mismatch")) {
      break;
    }
    for (core::VectorId id : tree->leaves_[leaf]) {
      if (!dec->Check(id < expected_n, "eapca member id " +
                                           std::to_string(id) +
                                           " out of range")) {
        return dec->status();
      }
    }
  }
  GASS_RETURN_IF_ERROR(dec->status());
  *out = std::move(tree);
  return core::Status::Ok();
}

}  // namespace gass::summaries
