#include "summaries/eapca.h"

#include <algorithm>
#include <cmath>

#include "core/macros.h"

namespace gass::summaries {

EapcaSummarizer::EapcaSummarizer(std::size_t dim, std::size_t num_segments)
    : dim_(dim) {
  GASS_CHECK(dim > 0);
  num_segments = std::max<std::size_t>(1, std::min(num_segments, dim));
  starts_.resize(num_segments + 1);
  for (std::size_t s = 0; s <= num_segments; ++s) {
    starts_[s] = s * dim / num_segments;
  }
}

EapcaSummary EapcaSummarizer::Summarize(const float* vector) const {
  const std::size_t segments = num_segments();
  EapcaSummary summary;
  summary.means.resize(segments);
  summary.stds.resize(segments);
  for (std::size_t s = 0; s < segments; ++s) {
    const std::size_t begin = starts_[s];
    const std::size_t end = starts_[s + 1];
    const double len = static_cast<double>(end - begin);
    double sum = 0.0, sum_sq = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      sum += vector[i];
      sum_sq += static_cast<double>(vector[i]) * vector[i];
    }
    const double mean = sum / len;
    const double var = std::max(0.0, sum_sq / len - mean * mean);
    summary.means[s] = static_cast<float>(mean);
    summary.stds[s] = static_cast<float>(std::sqrt(var));
  }
  return summary;
}

float EapcaSummarizer::LowerBound(const EapcaSummary& a,
                                  const EapcaSummary& b) const {
  float bound = 0.0f;
  for (std::size_t s = 0; s < num_segments(); ++s) {
    const float dm = a.means[s] - b.means[s];
    const float ds = a.stds[s] - b.stds[s];
    bound += static_cast<float>(SegmentLength(s)) * (dm * dm + ds * ds);
  }
  return bound;
}

namespace {

// Distance from value to the interval [lo, hi]; zero inside.
inline float Gap(float value, float lo, float hi) {
  if (value < lo) return lo - value;
  if (value > hi) return value - hi;
  return 0.0f;
}

}  // namespace

float EapcaSummarizer::EnvelopeLowerBound(
    const EapcaSummary& query, const std::vector<float>& min_means,
    const std::vector<float>& max_means, const std::vector<float>& min_stds,
    const std::vector<float>& max_stds) const {
  float bound = 0.0f;
  for (std::size_t s = 0; s < num_segments(); ++s) {
    const float gm = Gap(query.means[s], min_means[s], max_means[s]);
    const float gs = Gap(query.stds[s], min_stds[s], max_stds[s]);
    bound += static_cast<float>(SegmentLength(s)) * (gm * gm + gs * gs);
  }
  return bound;
}

}  // namespace gass::summaries
