#include "summaries/sax.h"

#include <algorithm>
#include <cmath>

#include "core/macros.h"

namespace gass::summaries {

namespace {

// Standard normal CDF.
double NormalCdf(double x) { return 0.5 * (1.0 + std::erf(x / 1.41421356237)); }

// Inverse CDF by bisection (breakpoints are computed once; speed is moot).
double NormalQuantile(double p) {
  double lo = -10.0, hi = 10.0;
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (NormalCdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

SaxSummarizer::SaxSummarizer(std::size_t dim, std::size_t num_segments,
                             std::size_t alphabet)
    : paa_(dim, num_segments) {
  GASS_CHECK(alphabet >= 2 && alphabet <= 64);
  breakpoints_.resize(alphabet - 1);
  for (std::size_t i = 0; i + 1 < alphabet; ++i) {
    breakpoints_[i] = static_cast<float>(NormalQuantile(
        static_cast<double>(i + 1) / static_cast<double>(alphabet)));
  }
}

std::vector<std::uint8_t> SaxSummarizer::Summarize(const float* vector) const {
  const std::vector<float> means = paa_.Summarize(vector);
  std::vector<std::uint8_t> symbols(means.size());
  for (std::size_t s = 0; s < means.size(); ++s) {
    const auto it =
        std::upper_bound(breakpoints_.begin(), breakpoints_.end(), means[s]);
    symbols[s] = static_cast<std::uint8_t>(it - breakpoints_.begin());
  }
  return symbols;
}

float SaxSummarizer::MinDistSq(const std::vector<std::uint8_t>& a,
                               const std::vector<std::uint8_t>& b) const {
  GASS_DCHECK(a.size() == num_segments() && b.size() == num_segments());
  float bound = 0.0f;
  for (std::size_t s = 0; s < num_segments(); ++s) {
    const int ca = a[s];
    const int cb = b[s];
    if (std::abs(ca - cb) <= 1) continue;  // Adjacent cells: gap may be 0.
    const int hi = std::max(ca, cb);
    const int lo = std::min(ca, cb);
    // Facing breakpoints: upper bound of the lower cell vs lower bound of
    // the upper cell.
    const float gap = breakpoints_[static_cast<std::size_t>(hi - 1)] -
                      breakpoints_[static_cast<std::size_t>(lo)];
    bound += static_cast<float>(paa_.SegmentLength(s)) * gap * gap;
  }
  return bound;
}

}  // namespace gass::summaries
