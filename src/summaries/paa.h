// Piecewise Aggregate Approximation (Keogh et al., paper Section 2): a
// vector is split into equal segments summarized by their means, with the
// classic lower-bounding distance
//
//   ||x − y||² ≥ Σ_j len_j · (μx_j − μy_j)²
//
// (the mean-only weakening of the EAPCA bound; see summaries/eapca.h).

#ifndef GASS_SUMMARIES_PAA_H_
#define GASS_SUMMARIES_PAA_H_

#include <cstddef>
#include <vector>

namespace gass::summaries {

/// Fixed-segmentation PAA transform.
class PaaSummarizer {
 public:
  PaaSummarizer(std::size_t dim, std::size_t num_segments);

  /// Per-segment means of `vector`.
  std::vector<float> Summarize(const float* vector) const;

  std::size_t num_segments() const { return starts_.size() - 1; }
  std::size_t SegmentLength(std::size_t segment) const {
    return starts_[segment + 1] - starts_[segment];
  }
  std::size_t dim() const { return dim_; }

  /// PAA lower bound on the squared Euclidean distance of the originals.
  float LowerBound(const std::vector<float>& a,
                   const std::vector<float>& b) const;

 private:
  friend class SaxSummarizer;

  std::size_t dim_;
  std::vector<std::size_t> starts_;
};

}  // namespace gass::summaries

#endif  // GASS_SUMMARIES_PAA_H_
