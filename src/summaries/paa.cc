#include "summaries/paa.h"

#include <algorithm>

#include "core/macros.h"

namespace gass::summaries {

PaaSummarizer::PaaSummarizer(std::size_t dim, std::size_t num_segments)
    : dim_(dim) {
  GASS_CHECK(dim > 0);
  num_segments = std::max<std::size_t>(1, std::min(num_segments, dim));
  starts_.resize(num_segments + 1);
  for (std::size_t s = 0; s <= num_segments; ++s) {
    starts_[s] = s * dim / num_segments;
  }
}

std::vector<float> PaaSummarizer::Summarize(const float* vector) const {
  std::vector<float> means(num_segments());
  for (std::size_t s = 0; s < num_segments(); ++s) {
    double sum = 0.0;
    for (std::size_t i = starts_[s]; i < starts_[s + 1]; ++i) {
      sum += vector[i];
    }
    means[s] = static_cast<float>(sum / static_cast<double>(SegmentLength(s)));
  }
  return means;
}

float PaaSummarizer::LowerBound(const std::vector<float>& a,
                                const std::vector<float>& b) const {
  GASS_DCHECK(a.size() == num_segments() && b.size() == num_segments());
  float bound = 0.0f;
  for (std::size_t s = 0; s < num_segments(); ++s) {
    const float delta = a[s] - b[s];
    bound += static_cast<float>(SegmentLength(s)) * delta * delta;
  }
  return bound;
}

}  // namespace gass::summaries
