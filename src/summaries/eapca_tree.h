// Hercules-style EAPCA tree: the divide step of ELPIS.
//
// The dataset is recursively bisected in EAPCA space — each split picks the
// summary coordinate (a segment mean or std) with the widest range and cuts
// at its midpoint — until leaves hold at most `leaf_size` vectors. Each leaf
// stores a per-coordinate envelope, giving an EAPCA lower-bound distance
// from any query to the leaf, which ELPIS uses to prune entire leaves during
// search.

#ifndef GASS_SUMMARIES_EAPCA_TREE_H_
#define GASS_SUMMARIES_EAPCA_TREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/dataset.h"
#include "core/status.h"
#include "core/types.h"
#include "io/serialize.h"
#include "summaries/eapca.h"

namespace gass::summaries {

/// EAPCA tree parameters.
struct EapcaTreeParams {
  std::size_t num_segments = 8;
  std::size_t leaf_size = 1024;
  /// Minimum leaf occupancy; splits producing a smaller side are balanced.
  std::size_t min_leaf_size = 32;
};

/// The leaf partition of a Hercules-style EAPCA tree.
class EapcaTree {
 public:
  static EapcaTree Build(const core::Dataset& data,
                         const EapcaTreeParams& params, std::uint64_t seed);

  std::size_t num_leaves() const { return leaves_.size(); }

  /// Members of leaf `leaf` (ids into the original dataset).
  const std::vector<core::VectorId>& LeafMembers(std::size_t leaf) const {
    return leaves_[leaf];
  }

  /// EAPCA lower bound of squared distance from `query` to every vector in
  /// `leaf`.
  float LeafLowerBound(const float* query, std::size_t leaf) const;

  /// Precomputes the query summary once for repeated LeafLowerBound calls.
  EapcaSummary SummarizeQuery(const float* query) const {
    return summarizer_.Summarize(query);
  }
  float LeafLowerBound(const EapcaSummary& query_summary,
                       std::size_t leaf) const;

  std::size_t MemoryBytes() const;

  /// Snapshot codec. The summarizer is reconstructed from its (dim,
  /// num_segments) pair; leaf membership and envelopes are stored verbatim.
  /// Decode validates member ids against `expected_n` and envelope sizes
  /// against the segment count. Returns via unique_ptr because the default
  /// constructor is private.
  void EncodeTo(io::Encoder* enc) const;
  static core::Status DecodeFrom(io::Decoder* dec, std::uint64_t expected_n,
                                 std::unique_ptr<EapcaTree>* out);

 private:
  struct LeafEnvelope {
    std::vector<float> min_means, max_means, min_stds, max_stds;
  };

  EapcaTree() : summarizer_(1, 1) {}

  EapcaSummarizer summarizer_;
  std::vector<std::vector<core::VectorId>> leaves_;
  std::vector<LeafEnvelope> envelopes_;
};

}  // namespace gass::summaries

#endif  // GASS_SUMMARIES_EAPCA_TREE_H_
