// EAPCA summarization (Extended Adaptive Piecewise Constant Approximation).
//
// A vector is segmented (equal-length segments here) and each segment is
// summarized by its mean and standard deviation. The key property — used by
// the Hercules tree and therefore by ELPIS — is the lower bound:
//
//   ||x − y||² ≥ Σ_j len_j · ( (μx_j − μy_j)² + (σx_j − σy_j)² )
//
// Within a segment, Σ(x_i − y_i)² = len·((μx−μy)² + Var(x−y)) and
// Var(x−y) ≥ (σx − σy)² by the reverse triangle inequality on the centered
// sub-vectors, so the bound is sound; the same argument extends to
// min/max envelopes over sets of vectors (see EnvelopeLowerBound).

#ifndef GASS_SUMMARIES_EAPCA_H_
#define GASS_SUMMARIES_EAPCA_H_

#include <cstddef>
#include <vector>

#include "core/dataset.h"
#include "core/types.h"

namespace gass::summaries {

/// EAPCA summary of one vector: per segment, its mean and std.
struct EapcaSummary {
  std::vector<float> means;
  std::vector<float> stds;
};

/// Computes EAPCA summaries with a fixed segmentation.
class EapcaSummarizer {
 public:
  /// `dim` components split into `num_segments` near-equal segments.
  EapcaSummarizer(std::size_t dim, std::size_t num_segments);

  EapcaSummary Summarize(const float* vector) const;

  std::size_t dim() const { return dim_; }
  std::size_t num_segments() const { return starts_.size() - 1; }
  std::size_t SegmentLength(std::size_t segment) const {
    return starts_[segment + 1] - starts_[segment];
  }

  /// The pairwise EAPCA lower bound on squared Euclidean distance.
  float LowerBound(const EapcaSummary& a, const EapcaSummary& b) const;

  /// Lower bound of `query` against any vector whose summary lies inside
  /// the per-coordinate envelope [min_means, max_means] × [min_stds,
  /// max_stds].
  float EnvelopeLowerBound(const EapcaSummary& query,
                           const std::vector<float>& min_means,
                           const std::vector<float>& max_means,
                           const std::vector<float>& min_stds,
                           const std::vector<float>& max_stds) const;

 private:
  std::size_t dim_;
  std::vector<std::size_t> starts_;  // num_segments + 1 boundaries.
};

}  // namespace gass::summaries

#endif  // GASS_SUMMARIES_EAPCA_H_
