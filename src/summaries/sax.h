// Symbolic Aggregate Approximation (Lin et al., paper Section 2): PAA
// coefficients discretized by equiprobable N(0,1) breakpoints into a small
// alphabet, with the MINDIST lower bound
//
//   ||x − y||² ≥ Σ_j len_j · cell_gap(c_x[j], c_y[j])²
//
// where cell_gap is 0 for adjacent-or-equal symbols and the distance
// between the facing breakpoints otherwise. Tight on z-normalized data
// series (the SAX design point), valid for any vectors whose PAA values lie
// in the encoded cells.

#ifndef GASS_SUMMARIES_SAX_H_
#define GASS_SUMMARIES_SAX_H_

#include <cstdint>
#include <vector>

#include "summaries/paa.h"

namespace gass::summaries {

/// Fixed-segmentation, fixed-alphabet SAX transform.
class SaxSummarizer {
 public:
  /// `alphabet` symbols (2..64) over `num_segments` PAA segments.
  SaxSummarizer(std::size_t dim, std::size_t num_segments,
                std::size_t alphabet);

  /// Symbol string of `vector` (one byte per segment, values < alphabet()).
  std::vector<std::uint8_t> Summarize(const float* vector) const;

  /// MINDIST² between two symbol strings — a lower bound on the squared
  /// Euclidean distance of the original vectors.
  float MinDistSq(const std::vector<std::uint8_t>& a,
                  const std::vector<std::uint8_t>& b) const;

  std::size_t alphabet() const { return breakpoints_.size() + 1; }
  std::size_t num_segments() const { return paa_.num_segments(); }

  /// The N(0,1) equiprobable breakpoints in use (alphabet() - 1 values).
  const std::vector<float>& breakpoints() const { return breakpoints_; }

 private:
  PaaSummarizer paa_;
  std::vector<float> breakpoints_;
};

}  // namespace gass::summaries

#endif  // GASS_SUMMARIES_SAX_H_
