// Shared fixtures for the test suite.

#ifndef GASS_TESTS_TEST_UTIL_H_
#define GASS_TESTS_TEST_UTIL_H_

#include <cstdint>

#include "core/dataset.h"
#include "core/rng.h"

namespace gass::testing {

/// Small clustered dataset: easy enough that well-built graph indexes reach
/// high recall with modest beams, making recall-floor assertions stable.
inline core::Dataset SmallClustered(std::size_t n, std::size_t dim,
                                    std::uint64_t seed) {
  core::Rng rng(seed);
  core::Dataset data(n, dim);
  const std::size_t clusters = 8;
  for (core::VectorId i = 0; i < n; ++i) {
    const std::size_t c = rng.UniformInt(clusters);
    float* row = data.MutableRow(i);
    for (std::size_t d = 0; d < dim; ++d) {
      row[d] = static_cast<float>(c) * 4.0f +
               static_cast<float>(rng.Normal()) * 0.5f;
    }
  }
  return data;
}

/// Uniform queries drawn inside the data's span.
inline core::Dataset UniformQueries(std::size_t count, std::size_t dim,
                                    float lo, float hi, std::uint64_t seed) {
  core::Rng rng(seed);
  core::Dataset queries(count, dim);
  for (core::VectorId q = 0; q < count; ++q) {
    float* row = queries.MutableRow(q);
    for (std::size_t d = 0; d < dim; ++d) row[d] = rng.UniformFloat(lo, hi);
  }
  return queries;
}

}  // namespace gass::testing

#endif  // GASS_TESTS_TEST_UTIL_H_
