// Recall parity across SIMD levels: HNSW must build the same graph, return
// the same neighbor IDs with bit-identical distances, and report the same
// distance-computation counts under every GASS_SIMD_LEVEL.
//
// The active level is resolved once per process, so each level runs in a
// re-exec'd child: this binary, invoked with GASS_PARITY_CHILD=1, prints a
// build+search trace (neighbor ids, hex-exact distances, distance counts)
// and exits before gtest starts. The parent launches one child per
// supported level and asserts the traces are byte-identical.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "core/simd/simd.h"
#include "methods/hnsw_index.h"
#include "synth/generators.h"

namespace gass {
namespace {

void PrintParityTrace() {
  const core::Dataset data = synth::UniformHypercube(1200, 24, 99);
  const core::Dataset queries = synth::UniformHypercube(25, 24, 100);

  methods::HnswParams build;
  build.m = 8;
  build.seed = 7;
  methods::HnswIndex index(build);
  index.Build(data);

  methods::SearchParams params;
  params.k = 10;
  params.beam_width = 50;
  for (core::VectorId q = 0; q < queries.size(); ++q) {
    const methods::SearchResult result = index.Search(queries.Row(q), params);
    std::printf("q%u", static_cast<unsigned>(q));
    for (const core::Neighbor& nb : result.neighbors) {
      // %a prints the exact bit pattern, so any divergence shows up.
      std::printf(" %u:%a", static_cast<unsigned>(nb.id), nb.distance);
    }
    std::printf(" dc=%llu\n",
                static_cast<unsigned long long>(
                    result.stats.distance_computations));
  }
}

// Runs before gtest in the re-exec'd children; a no-op in the parent.
const int kChildHook = [] {
  if (std::getenv("GASS_PARITY_CHILD") != nullptr) {
    PrintParityTrace();
    std::exit(0);
  }
  return 0;
}();

// /proc/self/exe must be resolved here, in the test process — inside the
// popen shell it would name the shell.
std::string SelfPath() {
  char buffer[4096];
  const ssize_t len = readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (len <= 0) return "";
  return std::string(buffer, static_cast<std::size_t>(len));
}

// Launches this binary with the given SIMD level forced and captures the
// trace. Returns an empty string on failure.
std::string RunChild(const char* level_name) {
  const std::string self = SelfPath();
  if (self.empty()) return "";
  const std::string command = std::string("GASS_PARITY_CHILD=1 GASS_SIMD_LEVEL=") +
                              level_name + " '" + self + "'";
  std::FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return "";
  std::string output;
  char buffer[4096];
  std::size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output.append(buffer, got);
  }
  const int status = pclose(pipe);
  if (status != 0) return "";
  return output;
}

TEST(SimdParityTest, HnswIdenticalUnderEveryLevel) {
  const std::vector<core::simd::SimdLevel> levels =
      core::simd::SupportedSimdLevels();
  ASSERT_FALSE(levels.empty());

  const std::string reference = RunChild(core::simd::SimdLevelName(levels[0]));
  ASSERT_FALSE(reference.empty()) << "scalar child produced no trace";
  // 25 queries → 25 trace lines, each carrying a distance count.
  EXPECT_EQ(std::count(reference.begin(), reference.end(), '\n'), 25);
  EXPECT_NE(reference.find(" dc="), std::string::npos);

  for (std::size_t i = 1; i < levels.size(); ++i) {
    const char* name = core::simd::SimdLevelName(levels[i]);
    const std::string trace = RunChild(name);
    ASSERT_FALSE(trace.empty()) << name << " child produced no trace";
    EXPECT_EQ(trace, reference)
        << "HNSW results diverge between "
        << core::simd::SimdLevelName(levels[0]) << " and " << name;
  }
}

}  // namespace
}  // namespace gass
