// Cross-method conformance: every one of the twelve methods must build on a
// small collection and reach a recall floor with a generous beam.

#include <gtest/gtest.h>

#include "eval/ground_truth.h"
#include "eval/recall.h"
#include "methods/factory.h"
#include "synth/generators.h"

namespace gass::methods {
namespace {

using core::Dataset;
using core::VectorId;

class AllMethodsTest : public ::testing::TestWithParam<std::string> {
 protected:
  static void SetUpTestSuite() {
    synth::ClusterParams params;
    params.num_clusters = 12;
    data_ = new Dataset(synth::GaussianClusters(800, 24, params, 42));
    queries_ = new Dataset(synth::GaussianClusters(20, 24, params, 43));
    truth_ = new eval::GroundTruth(
        eval::BruteForceKnn(*data_, *queries_, 10, 1));
  }
  static void TearDownTestSuite() {
    delete truth_;
    delete queries_;
    delete data_;
    truth_ = nullptr;
    queries_ = nullptr;
    data_ = nullptr;
  }

  static Dataset* data_;
  static Dataset* queries_;
  static eval::GroundTruth* truth_;
};

Dataset* AllMethodsTest::data_ = nullptr;
Dataset* AllMethodsTest::queries_ = nullptr;
eval::GroundTruth* AllMethodsTest::truth_ = nullptr;

TEST_P(AllMethodsTest, BuildsAndReachesRecallFloor) {
  auto index = CreateIndex(GetParam(), 42);
  ASSERT_NE(index, nullptr);
  const BuildStats build = index->Build(*data_);
  EXPECT_GT(build.distance_computations, 0u);
  EXPECT_GT(build.index_bytes, 0u);
  EXPECT_GE(build.peak_bytes, build.index_bytes);
  EXPECT_GT(index->IndexBytes(), 0u);

  SearchParams params;
  params.k = 10;
  params.beam_width = 128;
  // KS-seeded methods warm the candidate list with random nodes; with
  // clustered data the seed count must be large enough that every cluster
  // is sampled with high probability (the paper's KS uses beam-width-many
  // seeds).
  params.num_seeds = 64;
  std::vector<std::vector<core::Neighbor>> results;
  std::uint64_t distances = 0;
  for (VectorId q = 0; q < queries_->size(); ++q) {
    SearchResult result = index->Search(queries_->Row(q), params);
    EXPECT_LE(result.neighbors.size(), 10u);
    for (const auto& nb : result.neighbors) {
      EXPECT_LT(nb.id, data_->size());
    }
    for (std::size_t i = 0; i + 1 < result.neighbors.size(); ++i) {
      EXPECT_LE(result.neighbors[i].distance,
                result.neighbors[i + 1].distance);
    }
    distances += result.stats.distance_computations;
    results.push_back(std::move(result.neighbors));
  }
  EXPECT_GT(distances, 0u);
  const double recall = eval::MeanRecall(results, *truth_, 10);
  EXPECT_GE(recall, 0.80) << GetParam() << " recall too low: " << recall;
}

TEST_P(AllMethodsTest, NameIsStable) {
  auto index = CreateIndex(GetParam(), 1);
  EXPECT_FALSE(index->Name().empty());
}

INSTANTIATE_TEST_SUITE_P(
    Methods, AllMethodsTest,
    ::testing::ValuesIn(AllMethodNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(FactoryTest, UnknownNameDies) {
  EXPECT_DEATH(CreateIndex("definitely-not-a-method", 1), "unknown");
}

TEST(FactoryTest, ListsSeventeenVariants) {
  EXPECT_EQ(AllMethodNames().size(), 17u);
}

}  // namespace
}  // namespace gass::methods
