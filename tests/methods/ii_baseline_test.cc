#include "methods/ii_baseline_index.h"

#include <gtest/gtest.h>

#include "eval/ground_truth.h"
#include "eval/recall.h"
#include "synth/generators.h"

namespace gass::methods {
namespace {

using core::Dataset;
using core::VectorId;

struct Workload {
  Dataset data;
  Dataset queries;
  eval::GroundTruth truth;

  Workload() {
    synth::ClusterParams params;
    data = synth::GaussianClusters(700, 16, params, 1);
    queries = synth::GaussianClusters(15, 16, params, 2);
    truth = eval::BruteForceKnn(data, queries, 10, 1);
  }
};

double RunRecall(IiBaselineIndex& index, const Workload& w,
                 std::size_t beam) {
  SearchParams params;
  params.k = 10;
  params.beam_width = beam;
  std::vector<std::vector<core::Neighbor>> results;
  for (VectorId q = 0; q < w.queries.size(); ++q) {
    results.push_back(index.Search(w.queries.Row(q), params).neighbors);
  }
  return eval::MeanRecall(results, w.truth, 10);
}

TEST(IiBaselineTest, AllNdStrategiesBuildAndSearch) {
  const Workload w;
  for (const auto strategy :
       {diversify::Strategy::kNone, diversify::Strategy::kRnd,
        diversify::Strategy::kRrnd, diversify::Strategy::kMond}) {
    IiBaselineParams params;
    params.max_degree = 16;
    params.build_beam_width = 64;
    params.diversify.strategy = strategy;
    IiBaselineIndex index(params);
    const BuildStats build = index.Build(w.data);
    EXPECT_GT(build.distance_computations, 0u);
    EXPECT_GE(RunRecall(index, w, 96), 0.8)
        << diversify::StrategyName(strategy);
  }
}

TEST(IiBaselineTest, DegreesBounded) {
  const Workload w;
  IiBaselineParams params;
  params.max_degree = 12;
  IiBaselineIndex index(params);
  index.Build(w.data);
  EXPECT_LE(index.graph().MaxDegree(), 12u + 1u);
}

TEST(IiBaselineTest, PruneStatsOrderingMatchesTable1) {
  // Table 1: RND prunes most, then MOND, then RRND.
  const Workload w;
  double ratios[3];
  const diversify::Strategy strategies[3] = {diversify::Strategy::kRnd,
                                             diversify::Strategy::kMond,
                                             diversify::Strategy::kRrnd};
  for (int s = 0; s < 3; ++s) {
    IiBaselineParams params;
    params.max_degree = 16;
    params.build_beam_width = 64;
    params.diversify.strategy = strategies[s];
    params.diversify.alpha = 1.3f;
    params.diversify.theta_degrees = 60.0f;
    IiBaselineIndex index(params);
    index.Build(w.data);
    ratios[s] = index.prune_stats().PruningRatio();
  }
  EXPECT_GT(ratios[0], ratios[1]);  // RND > MOND.
  EXPECT_GT(ratios[1], ratios[2]);  // MOND > RRND.
}

TEST(IiBaselineTest, AllQuerySeedStrategiesWork) {
  const Workload w;
  IiBaselineParams params;
  params.max_degree = 16;
  IiBaselineIndex index(params);
  index.Build(w.data);
  for (const auto strategy :
       {seeds::Strategy::kKs, seeds::Strategy::kSf, seeds::Strategy::kMd,
        seeds::Strategy::kKd, seeds::Strategy::kKm, seeds::Strategy::kLsh,
        seeds::Strategy::kSn}) {
    index.AttachQuerySeeds(strategy);
    const double recall = RunRecall(index, w, 96);
    EXPECT_GE(recall, 0.7) << seeds::StrategyName(strategy);
  }
}

TEST(IiBaselineTest, SnBuildSeedingWorks) {
  const Workload w;
  IiBaselineParams params;
  params.max_degree = 16;
  params.build_ss = seeds::Strategy::kSn;
  IiBaselineIndex index(params);
  const BuildStats build = index.Build(w.data);
  EXPECT_GT(build.distance_computations, 0u);
  EXPECT_GE(RunRecall(index, w, 96), 0.8);
}

TEST(IiBaselineTest, IvfPqCandidateSourceBuildsSearchableGraph) {
  // Research direction (2): IVF-PQ supplies construction candidates.
  const Workload w;
  IiBaselineParams params;
  params.max_degree = 16;
  params.candidate_source = CandidateSource::kIvfPq;
  params.ivf.num_lists = 32;
  params.ivf_nprobe = 8;
  IiBaselineIndex index(params);
  const BuildStats build = index.Build(w.data);
  EXPECT_GT(build.distance_computations, 0u);
  EXPECT_GE(RunRecall(index, w, 96), 0.7);
}

TEST(IiBaselineTest, IvfBuildCheaperInExactDistances) {
  const Workload w;
  IiBaselineParams params;
  params.max_degree = 16;
  params.build_beam_width = 96;

  IiBaselineIndex beam(params);
  const BuildStats beam_build = beam.Build(w.data);

  params.candidate_source = CandidateSource::kIvfPq;
  IiBaselineIndex ivf(params);
  const BuildStats ivf_build = ivf.Build(w.data);

  EXPECT_LT(ivf_build.distance_computations,
            beam_build.distance_computations);
}

TEST(IiBaselineTest, NameReflectsConfiguration) {
  IiBaselineParams params;
  params.diversify.strategy = diversify::Strategy::kMond;
  params.query_ss = seeds::Strategy::kKd;
  IiBaselineIndex index(params);
  EXPECT_EQ(index.Name(), "II(MOND,KD)");
}

TEST(IiBaselineTest, NdBeatsNoNdAtEqualBudget) {
  // The Fig. 5 headline: at the same beam width, the RND graph needs no
  // more distance computations for at-least-equal recall. We assert the
  // cheaper proxy: RND recall >= NoND recall - small slack at a tight beam.
  const Workload w;
  IiBaselineParams params;
  params.max_degree = 16;
  params.build_beam_width = 64;

  params.diversify.strategy = diversify::Strategy::kRnd;
  IiBaselineIndex rnd(params);
  rnd.Build(w.data);
  params.diversify.strategy = diversify::Strategy::kNone;
  IiBaselineIndex nond(params);
  nond.Build(w.data);

  EXPECT_GE(RunRecall(rnd, w, 32) + 0.05, RunRecall(nond, w, 32));
}

}  // namespace
}  // namespace gass::methods
