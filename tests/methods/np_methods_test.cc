// Structure-level tests for the Neighborhood-Propagation family and its
// diversified descendants: KGraph, IEH, DPG, NGT.

#include <algorithm>

#include <gtest/gtest.h>

#include "knngraph/exact_knn_graph.h"
#include "methods/dpg_index.h"
#include "methods/fanng_index.h"
#include "methods/ieh_index.h"
#include "methods/kgraph_index.h"
#include "methods/ngt_index.h"
#include "synth/generators.h"

namespace gass::methods {
namespace {

using core::Dataset;
using core::VectorId;

TEST(KgraphStructureTest, GraphIsGoodKnnApproximation) {
  synth::ClusterParams cluster_params;
  const Dataset data = synth::GaussianClusters(600, 16, cluster_params, 1);
  KgraphParams params;
  params.nndescent.k = 10;
  KgraphIndex index(params);
  index.Build(data);
  EXPECT_GE(knngraph::KnnGraphRecall(data, index.graph(), 10, 40, 3), 0.85);
}

TEST(IehStructureTest, HashInitConvergesLikeRandomInit) {
  const Dataset data = synth::UniformHypercube(500, 16, 3);
  IehParams ieh_params;
  ieh_params.nndescent.k = 10;
  IehIndex ieh(ieh_params);
  ieh.Build(data);
  KgraphParams kg_params;
  kg_params.nndescent.k = 10;
  KgraphIndex kgraph(kg_params);
  kgraph.Build(data);
  const double ieh_recall =
      knngraph::KnnGraphRecall(data, ieh.graph(), 10, 40, 5);
  const double kg_recall =
      knngraph::KnnGraphRecall(data, kgraph.graph(), 10, 40, 5);
  EXPECT_NEAR(ieh_recall, kg_recall, 0.15);
  EXPECT_GE(ieh_recall, 0.75);
}

TEST(DpgStructureTest, UndirectedAfterBuild) {
  const Dataset data = synth::UniformHypercube(400, 12, 5);
  DpgParams params;
  params.nndescent.k = 16;
  params.max_degree = 8;
  DpgIndex index(params);
  index.Build(data);
  const core::Graph& graph = index.graph();
  for (VectorId v = 0; v < graph.size(); ++v) {
    for (VectorId u : graph.Neighbors(v)) {
      const auto& back = graph.Neighbors(u);
      EXPECT_NE(std::find(back.begin(), back.end(), v), back.end());
    }
  }
}

TEST(DpgStructureTest, AverageDegreeBoundedByUndirectedMond) {
  const Dataset data = synth::UniformHypercube(400, 12, 7);
  DpgParams params;
  params.nndescent.k = 24;
  params.max_degree = 10;
  DpgIndex index(params);
  index.Build(data);
  // Each node contributes <= max_degree forward edges; undirection doubles
  // the total at most, so the *average* degree is <= 2·max_degree (a few
  // hub nodes may individually exceed it through in-edges).
  EXPECT_LE(index.graph().AverageDegree(), 20.0);
  EXPECT_GT(index.graph().AverageDegree(), 2.0);
}

TEST(FanngStructureTest, TraverseAndAddAddsEscapeEdges) {
  // Clustered data with a sparse occlusion-pruned graph: training walks
  // between clusters must discover stuck states and add escapes.
  synth::ClusterParams cluster_params;
  cluster_params.num_clusters = 8;
  cluster_params.cluster_std = 0.1f;
  const Dataset data = synth::GaussianClusters(500, 12, cluster_params, 13);
  FanngParams params;
  params.nndescent.k = 10;
  params.max_degree = 8;
  params.training_walks_per_node = 1.0;
  FanngIndex index(params);
  index.Build(data);
  EXPECT_GT(index.escape_edges(), 0u);
}

TEST(FanngStructureTest, TrainingImprovesNarrowBeamReachability) {
  synth::ClusterParams cluster_params;
  cluster_params.num_clusters = 8;
  cluster_params.cluster_std = 0.1f;
  const Dataset data = synth::GaussianClusters(500, 12, cluster_params, 17);

  auto self_hit_rate = [&](double walks) {
    FanngParams params;
    params.nndescent.k = 10;
    params.max_degree = 8;
    params.training_walks_per_node = walks;
    FanngIndex index(params);
    index.Build(data);
    SearchParams search;
    search.k = 1;
    search.beam_width = 4;
    search.num_seeds = 2;  // Few seeds: traversal must do the work.
    int hits = 0;
    for (VectorId q = 0; q < 40; ++q) {
      const auto result = index.Search(data.Row(q * 11), search);
      if (!result.neighbors.empty() &&
          result.neighbors[0].distance == 0.0f) {
        ++hits;
      }
    }
    return hits;
  };
  EXPECT_GE(self_hit_rate(2.0) + 2, self_hit_rate(0.0));
}

TEST(NgtStructureTest, RndBoundsDegreeOfBidirectedGraph) {
  const Dataset data = synth::UniformHypercube(400, 12, 9);
  NgtParams params;
  params.nndescent.k = 16;
  params.max_degree = 12;
  NgtIndex index(params);
  index.Build(data);
  EXPECT_LE(index.graph().MaxDegree(), 12u);
}

TEST(NgtStructureTest, VpSeedBudgetAffectsCost) {
  const Dataset data = synth::UniformHypercube(600, 12, 11);
  auto cost_with = [&](std::size_t visits) {
    NgtParams params;
    params.vp_seed_visits = visits;
    NgtIndex index(params);
    index.Build(data);
    SearchParams search;
    search.k = 5;
    search.beam_width = 16;
    search.num_seeds = 8;
    std::uint64_t total = 0;
    for (VectorId q = 0; q < 10; ++q) {
      total += index.Search(data.Row(q * 7), search)
                   .stats.distance_computations;
    }
    return total;
  };
  EXPECT_LT(cost_with(16), cost_with(512));
}

}  // namespace
}  // namespace gass::methods
