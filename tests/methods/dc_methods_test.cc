// Structure-level tests for the Divide-and-Conquer family: SPTAG and HCNNG.

#include <algorithm>

#include <gtest/gtest.h>

#include "eval/graph_stats.h"
#include "methods/hcnng_index.h"
#include "methods/sptag_index.h"
#include "synth/generators.h"

namespace gass::methods {
namespace {

using core::Dataset;
using core::VectorId;

TEST(SptagTest, DegreesBoundedAfterRndRefine) {
  const Dataset data = synth::UniformHypercube(600, 12, 1);
  SptagParams params;
  params.max_degree = 20;
  params.num_partitions = 3;
  params.tp_tree.leaf_size = 100;
  SptagIndex index(params);
  index.Build(data);
  EXPECT_LE(index.graph().MaxDegree(), 20u);
}

TEST(SptagTest, MorePartitionsDenserMergedGraph) {
  const Dataset data = synth::UniformHypercube(500, 12, 3);
  auto edges_with = [&](std::size_t partitions) {
    SptagParams params;
    params.num_partitions = partitions;
    params.tp_tree.leaf_size = 80;
    params.leaf_knn = 6;
    params.max_degree = 64;  // High enough that RND rarely truncates.
    SptagIndex index(params);
    index.Build(data);
    return index.graph().EdgeCount();
  };
  EXPECT_GT(edges_with(4), edges_with(1));
}

TEST(SptagTest, BothSeedTreesWork) {
  const Dataset data = synth::UniformHypercube(400, 8, 5);
  for (const SptagSeedTree tree :
       {SptagSeedTree::kKdt, SptagSeedTree::kBkt}) {
    SptagParams params;
    params.seed_tree = tree;
    params.num_partitions = 2;
    params.tp_tree.leaf_size = 80;
    SptagIndex index(params);
    index.Build(data);
    SearchParams search;
    search.k = 5;
    search.beam_width = 48;
    const auto result = index.Search(data.Row(3), search);
    ASSERT_FALSE(result.neighbors.empty());
    EXPECT_EQ(result.neighbors[0].id, 3u);
  }
  SptagParams kdt;
  kdt.seed_tree = SptagSeedTree::kKdt;
  EXPECT_EQ(SptagIndex(kdt).Name(), "SPTAG-KDT");
  SptagParams bkt;
  bkt.seed_tree = SptagSeedTree::kBkt;
  EXPECT_EQ(SptagIndex(bkt).Name(), "SPTAG-BKT");
}

TEST(HcnngTest, GraphIsUndirectedByConstruction) {
  const Dataset data = synth::UniformHypercube(400, 8, 7);
  HcnngParams params;
  params.num_clusterings = 4;
  params.leaf_size = 80;
  HcnngIndex index(params);
  index.Build(data);
  const core::Graph& graph = index.graph();
  for (VectorId v = 0; v < graph.size(); ++v) {
    for (VectorId u : graph.Neighbors(v)) {
      const auto& back = graph.Neighbors(u);
      EXPECT_NE(std::find(back.begin(), back.end(), v), back.end())
          << "edge " << v << "->" << u << " missing reverse";
    }
  }
}

TEST(HcnngTest, MoreClusteringsImproveConnectivity) {
  const Dataset data = synth::UniformHypercube(500, 12, 9);
  auto largest_with = [&](std::size_t clusterings) {
    HcnngParams params;
    params.num_clusterings = clusterings;
    params.leaf_size = 50;
    HcnngIndex index(params);
    index.Build(data);
    return eval::ComputeConnectivity(index.graph()).largest_component;
  };
  EXPECT_GE(largest_with(8), largest_with(1));
  EXPECT_EQ(largest_with(8), 500u);  // Enough overlap to connect everything.
}

TEST(HcnngTest, MstDegreeCapHoldsPerClustering) {
  const Dataset data = synth::UniformHypercube(300, 8, 11);
  HcnngParams params;
  params.num_clusterings = 1;
  params.leaf_size = 60;
  params.mst_degree_cap = 3;
  HcnngIndex index(params);
  index.Build(data);
  // With one clustering (disjoint leaves) every node belongs to a single
  // MST, so the cap is a hard bound.
  EXPECT_LE(index.graph().MaxDegree(), 3u);
}

}  // namespace
}  // namespace gass::methods
