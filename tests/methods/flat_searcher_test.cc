#include "methods/flat_searcher.h"

#include <gtest/gtest.h>

#include "core/beam_search.h"
#include "methods/hnsw_index.h"
#include "synth/generators.h"

namespace gass::methods {
namespace {

using core::Dataset;
using core::VectorId;

TEST(FlatSearcherTest, MatchesGraphSearchWithSameSeeds) {
  const Dataset data = synth::UniformHypercube(600, 8, 1);
  HnswIndex hnsw(HnswParams{});
  hnsw.Build(data);

  // A fixed seed selector makes both searches deterministic and identical.
  auto fixed_a =
      std::make_unique<seeds::SfFixedSeed>(0, &hnsw.graph());
  FlatGraphSearcher flat(data, hnsw.graph(), std::move(fixed_a));

  core::VisitedTable visited(data.size());
  SearchParams params;
  params.k = 10;
  params.beam_width = 64;
  for (VectorId q = 0; q < 15; ++q) {
    core::DistanceComputer dc(data);
    seeds::SfFixedSeed fixed_b(0, &hnsw.graph());
    const auto seeds = fixed_b.Select(dc, data.Row(q), params.num_seeds);
    const auto expect =
        core::BeamSearch(hnsw.graph(), dc, data.Row(q), seeds, params.k,
                         params.beam_width, &visited);
    const SearchResult got = flat.Search(data.Row(q), params);
    ASSERT_EQ(got.neighbors.size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(got.neighbors[i].id, expect[i].id);
      EXPECT_FLOAT_EQ(got.neighbors[i].distance, expect[i].distance);
    }
  }
}

TEST(FlatSearcherTest, FlatLayoutSmallerThanAdjacency) {
  const Dataset data = synth::UniformHypercube(500, 8, 3);
  HnswIndex hnsw(HnswParams{});
  hnsw.Build(data);
  FlatGraphSearcher flat(
      data, hnsw.graph(),
      std::make_unique<seeds::KsRandomSeeds>(data.size(), 7));
  EXPECT_LT(flat.IndexBytes(), hnsw.graph().MemoryBytes());
}

TEST(FlatSearcherTest, StatsPopulated) {
  const Dataset data = synth::UniformHypercube(300, 8, 5);
  HnswIndex hnsw(HnswParams{});
  hnsw.Build(data);
  FlatGraphSearcher flat(
      data, hnsw.graph(),
      std::make_unique<seeds::KsRandomSeeds>(data.size(), 7));
  const SearchResult result = flat.Search(data.Row(1), SearchParams{});
  EXPECT_GT(result.stats.distance_computations, 0u);
  EXPECT_GT(result.stats.hops, 0u);
  EXPECT_FALSE(result.neighbors.empty());
}

}  // namespace
}  // namespace gass::methods
