#include "methods/build_util.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "methods/base_graphs.h"
#include "synth/generators.h"

namespace gass::methods {
namespace {

using core::Dataset;
using core::DistanceComputer;
using core::Graph;
using core::Neighbor;
using core::VectorId;

TEST(InstallBidirectionalTest, AddsForwardAndReverseEdges) {
  const Dataset data = synth::UniformHypercube(20, 4, 1);
  DistanceComputer dc(data);
  Graph graph(20);
  diversify::Params prune;
  prune.strategy = diversify::Strategy::kNone;
  prune.max_degree = 8;

  std::vector<Neighbor> kept = {Neighbor(3, dc.Between(0, 3)),
                                Neighbor(7, dc.Between(0, 7))};
  std::sort(kept.begin(), kept.end());
  InstallBidirectional(dc, &graph, 0, kept, prune);

  EXPECT_EQ(graph.Neighbors(0).size(), 2u);
  EXPECT_NE(std::find(graph.Neighbors(3).begin(), graph.Neighbors(3).end(),
                      0u),
            graph.Neighbors(3).end());
  EXPECT_NE(std::find(graph.Neighbors(7).begin(), graph.Neighbors(7).end(),
                      0u),
            graph.Neighbors(7).end());
}

TEST(InstallBidirectionalTest, OverflowRePrunesReverseList) {
  const Dataset data = synth::UniformHypercube(40, 4, 3);
  DistanceComputer dc(data);
  Graph graph(40);
  diversify::Params prune;
  prune.strategy = diversify::Strategy::kNone;
  prune.max_degree = 3;

  // Point many nodes at node 0; its list must stay capped at max_degree.
  for (VectorId v = 1; v < 10; ++v) {
    std::vector<Neighbor> kept = {Neighbor(0, dc.Between(v, 0))};
    InstallBidirectional(dc, &graph, v, kept, prune);
  }
  EXPECT_LE(graph.Neighbors(0).size(), 3u);
}

TEST(InstallBidirectionalTest, NoDuplicateReverseEdges) {
  const Dataset data = synth::UniformHypercube(10, 4, 5);
  DistanceComputer dc(data);
  Graph graph(10);
  diversify::Params prune;
  prune.strategy = diversify::Strategy::kNone;
  prune.max_degree = 8;
  std::vector<Neighbor> kept = {Neighbor(2, dc.Between(1, 2))};
  InstallBidirectional(dc, &graph, 1, kept, prune);
  InstallBidirectional(dc, &graph, 1, kept, prune);
  EXPECT_EQ(std::count(graph.Neighbors(2).begin(), graph.Neighbors(2).end(),
                       1u),
            1);
}

TEST(CapDegreesTest, TruncatesToNearest) {
  const Dataset data = synth::UniformHypercube(30, 4, 7);
  DistanceComputer dc(data);
  Graph graph(30);
  for (VectorId u = 1; u < 20; ++u) graph.AddEdge(0, u);
  CapDegrees(dc, &graph, 5);
  ASSERT_EQ(graph.Neighbors(0).size(), 5u);
  // Kept neighbors are the 5 nearest of the original 19.
  std::vector<Neighbor> scored;
  for (VectorId u = 1; u < 20; ++u) scored.emplace_back(u, dc.Between(0, u));
  std::sort(scored.begin(), scored.end());
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(graph.Neighbors(0)[i], scored[i].id);
  }
}

TEST(RandomRegularGraphTest, DegreesAndNoSelfLoops) {
  const Graph graph = RandomRegularGraph(200, 8, 11);
  for (VectorId v = 0; v < 200; ++v) {
    const auto& list = graph.Neighbors(v);
    EXPECT_EQ(list.size(), 8u);
    for (std::size_t i = 0; i < list.size(); ++i) {
      EXPECT_NE(list[i], v);
      for (std::size_t j = i + 1; j < list.size(); ++j) {
        EXPECT_NE(list[i], list[j]);
      }
    }
  }
}

TEST(RandomRegularGraphTest, LogDegreeIsConnected) {
  // Erdős–Rényi-style folklore the Vamana paper leans on: degree ≥ log n
  // keeps the digraph connected with overwhelming probability.
  const Graph graph = RandomRegularGraph(500, 9, 13);
  EXPECT_EQ(graph.ReachableFrom(0), 500u);
}

TEST(EnsureConnectedFromTest, RepairsDisconnectedComponents) {
  const Dataset data = synth::UniformHypercube(60, 4, 17);
  DistanceComputer dc(data);
  // Two directed chains with no link between them.
  Graph graph(60);
  for (VectorId v = 0; v + 1 < 30; ++v) graph.AddEdge(v, v + 1);
  for (VectorId v = 30; v + 1 < 60; ++v) graph.AddEdge(v, v + 1);
  ASSERT_LT(graph.ReachableFrom(0), 60u);

  core::VisitedTable visited(60);
  EnsureConnectedFrom(dc, &graph, 0, 16, &visited);
  EXPECT_EQ(graph.ReachableFrom(0), 60u);
}

TEST(EnsureConnectedFromTest, NoSelfLoopWhenRepairReachesNodeMidPass) {
  // Regression: a repair edge added for an earlier node can make a later
  // unreachable node v reachable, so v's own beam search finds v itself as
  // the nearest "reachable" anchor. Linking then would create v->v.
  const Dataset data = synth::UniformHypercube(12, 4, 23);
  DistanceComputer dc(data);
  Graph graph(12);
  // Connected cluster {0..9} around the root.
  for (VectorId v = 0; v < 9; ++v) graph.AddEdge(v, v + 1);
  for (VectorId v = 1; v <= 9; ++v) graph.AddEdge(v, v - 1);
  // Island 10 -> 11: repairing 10 first makes 11 reachable before 11's
  // own repair turn.
  graph.AddEdge(10, 11);
  ASSERT_LT(graph.ReachableFrom(0), 12u);

  core::VisitedTable visited(12);
  EnsureConnectedFrom(dc, &graph, 0, 16, &visited);
  EXPECT_EQ(graph.ReachableFrom(0), 12u);
  EXPECT_TRUE(graph.Validate().ok());
}

TEST(EnsureConnectedFromTest, RepairedGraphsStayValid) {
  // Post-build invariant shared with the snapshot loader: repairs never
  // introduce out-of-range ids or self-loops.
  const Dataset data = synth::UniformHypercube(80, 4, 29);
  DistanceComputer dc(data);
  Graph graph(80);
  // Four disjoint directed chains.
  for (VectorId start : {0u, 20u, 40u, 60u}) {
    for (VectorId v = start; v + 1 < start + 20; ++v) graph.AddEdge(v, v + 1);
  }
  core::VisitedTable visited(80);
  EnsureConnectedFrom(dc, &graph, 0, 16, &visited);
  EXPECT_EQ(graph.ReachableFrom(0), 80u);
  EXPECT_TRUE(graph.Validate().ok());
}

TEST(EnsureConnectedFromTest, NoopOnConnectedGraph) {
  const Dataset data = synth::UniformHypercube(30, 4, 19);
  DistanceComputer dc(data);
  Graph graph(30);
  for (VectorId v = 0; v < 30; ++v) graph.AddEdge(v, (v + 1) % 30);
  const std::size_t edges_before = graph.EdgeCount();
  core::VisitedTable visited(30);
  EnsureConnectedFrom(dc, &graph, 0, 16, &visited);
  EXPECT_EQ(graph.EdgeCount(), edges_before);
}

}  // namespace
}  // namespace gass::methods
