#include "methods/search_params.h"

#include <cfloat>

#include <gtest/gtest.h>

namespace gass::methods {
namespace {

TEST(MakeSearchParamsTest, SetsCommonKnobsOnly) {
  const SearchParams params = MakeSearchParams(5, 40, 12);
  EXPECT_EQ(params.k, 5u);
  EXPECT_EQ(params.beam_width, 40u);
  EXPECT_EQ(params.num_seeds, 12u);
  EXPECT_EQ(params.prune_bound, FLT_MAX);
  EXPECT_EQ(params.deadline, nullptr);
}

TEST(ParseSearchParamsTest, ParsesFullSpec) {
  SearchParams params;
  std::string error;
  ASSERT_TRUE(ParseSearchParams("k=3,beam=128,seeds=7", &params, &error))
      << error;
  EXPECT_EQ(params.k, 3u);
  EXPECT_EQ(params.beam_width, 128u);
  EXPECT_EQ(params.num_seeds, 7u);
}

TEST(ParseSearchParamsTest, LayersOverExistingValues) {
  SearchParams params = MakeSearchParams(10, 64, 48);
  ASSERT_TRUE(ParseSearchParams("beam=200", &params));
  EXPECT_EQ(params.k, 10u);         // Untouched.
  EXPECT_EQ(params.beam_width, 200u);
  EXPECT_EQ(params.num_seeds, 48u); // Untouched.
}

TEST(ParseSearchParamsTest, EmptySpecIsNoOp) {
  SearchParams params = MakeSearchParams(10, 64, 48);
  ASSERT_TRUE(ParseSearchParams("", &params));
  EXPECT_EQ(params.k, 10u);
  EXPECT_EQ(params.beam_width, 64u);
}

TEST(ParseSearchParamsTest, ParsesPruneBound) {
  SearchParams params;
  ASSERT_TRUE(ParseSearchParams("prune=2.5", &params));
  EXPECT_FLOAT_EQ(params.prune_bound, 2.5f);
}

TEST(ParseSearchParamsTest, RejectsUnknownKey) {
  SearchParams params;
  std::string error;
  EXPECT_FALSE(ParseSearchParams("width=3", &params, &error));
  EXPECT_NE(error.find("width"), std::string::npos);
}

TEST(ParseSearchParamsTest, RejectsMalformedEntries) {
  SearchParams params;
  EXPECT_FALSE(ParseSearchParams("k", &params));           // No '='.
  EXPECT_FALSE(ParseSearchParams("k=", &params));          // Empty value.
  EXPECT_FALSE(ParseSearchParams("k=abc", &params));       // Not a number.
  EXPECT_FALSE(ParseSearchParams("k=3x", &params));        // Trailing junk.
  EXPECT_TRUE(ParseSearchParams("k=3,,beam=4", &params));  // Empty entries OK.
  EXPECT_EQ(params.beam_width, 4u);
}

TEST(ParseSearchParamsTest, RejectsZeroKAndBeam) {
  SearchParams params;
  std::string error;
  EXPECT_FALSE(ParseSearchParams("k=0", &params, &error));
  EXPECT_FALSE(ParseSearchParams("beam=0", &params, &error));
  EXPECT_TRUE(ParseSearchParams("seeds=0", &params));  // Zero seeds is legal.
}

TEST(ParseSearchParamsTest, ErrorsNameTheKeyAndValue) {
  SearchParams params;
  std::string error;
  EXPECT_FALSE(ParseSearchParams("k=abc", &params, &error));
  EXPECT_NE(error.find("'k'"), std::string::npos) << error;
  EXPECT_NE(error.find("'abc'"), std::string::npos) << error;

  EXPECT_FALSE(ParseSearchParams("beam=0", &params, &error));
  EXPECT_NE(error.find("'beam'"), std::string::npos) << error;
  EXPECT_NE(error.find("'0'"), std::string::npos) << error;

  EXPECT_FALSE(ParseSearchParams("prune=fast", &params, &error));
  EXPECT_NE(error.find("'prune'"), std::string::npos) << error;
  EXPECT_NE(error.find("'fast'"), std::string::npos) << error;

  EXPECT_FALSE(ParseSearchParams("degrade=99", &params, &error));
  EXPECT_NE(error.find("'degrade'"), std::string::npos) << error;
  EXPECT_NE(error.find("'99'"), std::string::npos) << error;
}

TEST(ParseSearchParamsTest, RejectsDuplicateKeys) {
  SearchParams params;
  std::string error;
  EXPECT_FALSE(ParseSearchParams("k=3,beam=64,k=5", &params, &error));
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
  EXPECT_NE(error.find("'k'"), std::string::npos) << error;
  EXPECT_NE(error.find("'5'"), std::string::npos) << error;

  // Same value twice is still a duplicate: the spec is malformed either way.
  EXPECT_FALSE(ParseSearchParams("seeds=8,seeds=8", &params, &error));
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
  EXPECT_NE(error.find("'seeds'"), std::string::npos) << error;

  // Distinct keys never trip the duplicate check.
  EXPECT_TRUE(
      ParseSearchParams("k=3,beam=64,seeds=8,prune=1.5,degrade=1", &params));
}

TEST(ParseSearchParamsTest, NullErrorPointerIsSafe) {
  SearchParams params;
  EXPECT_FALSE(ParseSearchParams("bogus=1", &params, nullptr));
}

TEST(SearchParamsToStringTest, RoundTripsThroughParse) {
  SearchParams original = MakeSearchParams(17, 96, 5);
  const std::string spec = SearchParamsToString(original);
  EXPECT_EQ(spec, "k=17,beam=96,seeds=5");

  SearchParams reparsed;
  ASSERT_TRUE(ParseSearchParams(spec, &reparsed));
  EXPECT_EQ(reparsed.k, original.k);
  EXPECT_EQ(reparsed.beam_width, original.beam_width);
  EXPECT_EQ(reparsed.num_seeds, original.num_seeds);
}

TEST(SearchParamsToStringTest, IncludesPruneOnlyWhenSet) {
  SearchParams params = MakeSearchParams(10, 64, 48);
  EXPECT_EQ(SearchParamsToString(params).find("prune"), std::string::npos);

  params.prune_bound = 1.5f;
  const std::string spec = SearchParamsToString(params);
  EXPECT_NE(spec.find("prune=1.5"), std::string::npos);

  SearchParams reparsed;
  ASSERT_TRUE(ParseSearchParams(spec, &reparsed));
  EXPECT_FLOAT_EQ(reparsed.prune_bound, 1.5f);
}

TEST(ParseSearchParamsTest, ParsesDegradeStep) {
  SearchParams params;
  ASSERT_TRUE(ParseSearchParams("k=5,beam=64,degrade=2", &params));
  EXPECT_EQ(params.degrade_step, 2u);
  ASSERT_TRUE(ParseSearchParams("degrade=0", &params));
  EXPECT_EQ(params.degrade_step, 0u);
}

TEST(ParseSearchParamsTest, RejectsOversizedDegradeStep) {
  // Steps above 62 would shift past the width of beam_width; the parser
  // rejects them instead of letting EffectiveBeamWidth clamp silently.
  SearchParams params;
  std::string error;
  EXPECT_TRUE(ParseSearchParams("degrade=62", &params));
  EXPECT_FALSE(ParseSearchParams("degrade=63", &params, &error));
  EXPECT_NE(error.find("degrade"), std::string::npos);
}

TEST(SearchParamsToStringTest, IncludesDegradeOnlyWhenSet) {
  SearchParams params = MakeSearchParams(10, 64, 48);
  EXPECT_EQ(SearchParamsToString(params).find("degrade"), std::string::npos);

  params.degrade_step = 3;
  const std::string spec = SearchParamsToString(params);
  EXPECT_NE(spec.find("degrade=3"), std::string::npos);

  SearchParams reparsed;
  ASSERT_TRUE(ParseSearchParams(spec, &reparsed));
  EXPECT_EQ(reparsed.degrade_step, 3u);
}

TEST(EffectiveBeamWidthTest, HalvesPerStepAndFloorsAtK) {
  SearchParams params = MakeSearchParams(10, 64, 48);
  EXPECT_EQ(EffectiveBeamWidth(params), 64u);  // Step 0: untouched.
  params.degrade_step = 1;
  EXPECT_EQ(EffectiveBeamWidth(params), 32u);
  params.degrade_step = 2;
  EXPECT_EQ(EffectiveBeamWidth(params), 16u);
  params.degrade_step = 3;
  EXPECT_EQ(EffectiveBeamWidth(params), 10u);  // 8 < k: floor at k.
  params.degrade_step = 62;                    // Deep steps never underflow.
  EXPECT_EQ(EffectiveBeamWidth(params), 10u);
}

TEST(WithDeadlineTest, ReplacesOnlyTheDeadline) {
  const SearchParams base = MakeSearchParams(10, 64, 48);
  core::Deadline deadline = core::Deadline::After(10.0);
  const SearchParams timed = WithDeadline(base, &deadline);
  EXPECT_EQ(timed.deadline, &deadline);
  EXPECT_EQ(timed.k, base.k);
  EXPECT_EQ(timed.beam_width, base.beam_width);

  const SearchParams untimed = WithDeadline(timed, nullptr);
  EXPECT_EQ(untimed.deadline, nullptr);
}

}  // namespace
}  // namespace gass::methods
