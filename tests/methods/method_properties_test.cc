// Cross-method property tests: invariants every index must satisfy
// regardless of its construction paradigm.

#include <set>

#include <gtest/gtest.h>

#include "eval/ground_truth.h"
#include "eval/recall.h"
#include "methods/factory.h"
#include "synth/generators.h"

namespace gass::methods {
namespace {

using core::Dataset;
using core::VectorId;

class MethodPropertyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(MethodPropertyTest, DeterministicAcrossRebuilds) {
  const Dataset data = synth::MakeDatasetProxy("deep", 400, 7);
  const Dataset queries = synth::MakeDatasetProxy("deep", 5, 8);

  auto run = [&]() {
    auto index = CreateIndex(GetParam(), 99);
    index->Build(data);
    SearchParams params;
    params.k = 5;
    params.beam_width = 48;
    std::vector<std::vector<core::Neighbor>> results;
    for (VectorId q = 0; q < queries.size(); ++q) {
      results.push_back(index->Search(queries.Row(q), params).neighbors);
    }
    return results;
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t q = 0; q < a.size(); ++q) {
    ASSERT_EQ(a[q].size(), b[q].size()) << GetParam() << " query " << q;
    for (std::size_t i = 0; i < a[q].size(); ++i) {
      EXPECT_EQ(a[q][i].id, b[q][i].id) << GetParam() << " query " << q;
    }
  }
}

TEST_P(MethodPropertyTest, NoDuplicateAnswers) {
  const Dataset data = synth::MakeDatasetProxy("sift", 500, 11);
  auto index = CreateIndex(GetParam(), 3);
  index->Build(data);
  SearchParams params;
  params.k = 10;
  params.beam_width = 64;
  for (VectorId q = 0; q < 10; ++q) {
    const auto result = index->Search(data.Row(q * 17), params);
    std::set<VectorId> unique;
    for (const auto& nb : result.neighbors) {
      EXPECT_TRUE(unique.insert(nb.id).second)
          << GetParam() << ": duplicate id " << nb.id;
      EXPECT_LT(nb.id, data.size());
    }
  }
}

TEST_P(MethodPropertyTest, WiderBeamDoesNotHurtMuch) {
  const Dataset data = synth::MakeDatasetProxy("deep", 600, 13);
  const Dataset queries = synth::MakeDatasetProxy("deep", 15, 14);
  const auto truth = eval::BruteForceKnn(data, queries, 10, 1);
  auto index = CreateIndex(GetParam(), 5);
  index->Build(data);

  auto recall_at = [&](std::size_t beam) {
    SearchParams params;
    params.k = 10;
    params.beam_width = beam;
    params.num_seeds = 48;
    std::vector<std::vector<core::Neighbor>> results;
    for (VectorId q = 0; q < queries.size(); ++q) {
      results.push_back(index->Search(queries.Row(q), params).neighbors);
    }
    return eval::MeanRecall(results, truth, 10);
  };
  const double narrow = recall_at(12);
  const double wide = recall_at(160);
  // Small slack: KS-style seeding re-randomizes per query.
  EXPECT_GE(wide + 0.05, narrow) << GetParam();
}

TEST_P(MethodPropertyTest, TinyCollection) {
  const Dataset data = synth::MakeDatasetProxy("deep", 50, 17);
  auto index = CreateIndex(GetParam(), 7);
  index->Build(data);
  SearchParams params;
  params.k = 3;
  params.beam_width = 32;
  const auto result = index->Search(data.Row(0), params);
  ASSERT_FALSE(result.neighbors.empty()) << GetParam();
  EXPECT_EQ(result.neighbors[0].id, 0u) << GetParam();
}

TEST_P(MethodPropertyTest, SelfQueryIsTopAnswerAtWideBeam) {
  const Dataset data = synth::MakeDatasetProxy("sift", 400, 19);
  auto index = CreateIndex(GetParam(), 9);
  index->Build(data);
  SearchParams params;
  params.k = 1;
  params.beam_width = 128;
  params.num_seeds = 64;
  int hits = 0;
  for (VectorId q = 0; q < 20; ++q) {
    const auto result = index->Search(data.Row(q * 13), params);
    if (!result.neighbors.empty() &&
        result.neighbors[0].distance == 0.0f) {
      ++hits;
    }
  }
  EXPECT_GE(hits, 18) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Methods, MethodPropertyTest, ::testing::ValuesIn(AllMethodNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace gass::methods
