#include "methods/hnsw_index.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "eval/ground_truth.h"
#include "eval/recall.h"
#include "synth/generators.h"

namespace gass::methods {
namespace {

using core::Dataset;
using core::VectorId;

TEST(HnswTest, LayersExistOnModerateData) {
  const Dataset data = synth::UniformHypercube(2000, 8, 1);
  HnswParams params;
  params.m = 8;
  HnswIndex index(params);
  index.Build(data);
  // With n = 2000 and M = 8, Eq. 1 yields several hierarchical layers.
  EXPECT_GE(index.num_layers(), 1u);
  EXPECT_LT(index.entry_point(), data.size());
}

TEST(HnswTest, BaseLayerDegreesBounded) {
  const Dataset data = synth::UniformHypercube(800, 8, 3);
  HnswParams params;
  params.m = 8;
  HnswIndex index(params);
  index.Build(data);
  EXPECT_LE(index.graph().MaxDegree(), params.m * 2);
}

TEST(HnswTest, HighRecallAtWideBeam) {
  synth::ClusterParams cluster_params;
  const Dataset data = synth::GaussianClusters(1000, 16, cluster_params, 5);
  const Dataset queries = synth::GaussianClusters(20, 16, cluster_params, 6);
  const auto truth = eval::BruteForceKnn(data, queries, 10, 1);

  HnswIndex index(HnswParams{});
  index.Build(data);
  SearchParams params;
  params.k = 10;
  params.beam_width = 100;
  std::vector<std::vector<core::Neighbor>> results;
  for (VectorId q = 0; q < queries.size(); ++q) {
    results.push_back(index.Search(queries.Row(q), params).neighbors);
  }
  EXPECT_GE(eval::MeanRecall(results, truth, 10), 0.95);
}

TEST(HnswTest, RecallImprovesWithBeamWidth) {
  const Dataset data = synth::UniformHypercube(1500, 12, 7);
  const Dataset queries = synth::UniformHypercube(25, 12, 8);
  const auto truth = eval::BruteForceKnn(data, queries, 10, 1);

  HnswIndex index(HnswParams{});
  index.Build(data);
  auto recall_at = [&](std::size_t beam) {
    SearchParams params;
    params.k = 10;
    params.beam_width = beam;
    std::vector<std::vector<core::Neighbor>> results;
    for (VectorId q = 0; q < queries.size(); ++q) {
      results.push_back(index.Search(queries.Row(q), params).neighbors);
    }
    return eval::MeanRecall(results, truth, 10);
  };
  const double narrow = recall_at(10);
  const double wide = recall_at(200);
  EXPECT_GE(wide, narrow);
  EXPECT_GE(wide, 0.9);
}

TEST(HnswTest, DeterministicAcrossRebuilds) {
  const Dataset data = synth::UniformHypercube(400, 8, 9);
  HnswParams params;
  params.seed = 77;
  HnswIndex a(params), b(params);
  a.Build(data);
  b.Build(data);
  for (VectorId v = 0; v < data.size(); ++v) {
    EXPECT_EQ(a.graph().Neighbors(v), b.graph().Neighbors(v));
  }
}

TEST(HnswTest, SaveLoadRoundTripPreservesSearchExactly) {
  const Dataset data = synth::UniformHypercube(500, 8, 23);
  HnswParams params;
  params.seed = 5;
  HnswIndex original(params);
  original.Build(data);

  const std::string path =
      std::string(::testing::TempDir()) + "/hnsw_full_index.bin";
  ASSERT_TRUE(original.Save(path).ok());

  HnswIndex restored(params);
  ASSERT_TRUE(restored.Load(path, data).ok());
  EXPECT_EQ(restored.num_layers(), original.num_layers());
  EXPECT_EQ(restored.entry_point(), original.entry_point());
  EXPECT_EQ(restored.inserted_count(), original.inserted_count());

  SearchParams search;
  search.k = 10;
  search.beam_width = 64;
  for (VectorId q = 0; q < 10; ++q) {
    const auto a = original.Search(data.Row(q * 31), search);
    const auto b = restored.Search(data.Row(q * 31), search);
    ASSERT_EQ(a.neighbors.size(), b.neighbors.size());
    for (std::size_t i = 0; i < a.neighbors.size(); ++i) {
      EXPECT_EQ(a.neighbors[i].id, b.neighbors[i].id);
    }
  }
  std::remove(path.c_str());
  std::remove((path + ".base").c_str());
  for (std::size_t l = 0; l < original.num_layers(); ++l) {
    std::remove((path + ".layer" + std::to_string(l)).c_str());
  }
}

TEST(HnswTest, LoadRejectsMismatchedData) {
  const Dataset data = synth::UniformHypercube(200, 8, 29);
  HnswIndex index(HnswParams{});
  index.Build(data);
  const std::string path =
      std::string(::testing::TempDir()) + "/hnsw_mismatch.bin";
  ASSERT_TRUE(index.Save(path).ok());

  const Dataset other = synth::UniformHypercube(100, 8, 29);
  HnswIndex restored(HnswParams{});
  EXPECT_FALSE(restored.Load(path, other).ok());
  std::remove(path.c_str());
  std::remove((path + ".base").c_str());
  for (std::size_t l = 0; l < index.num_layers(); ++l) {
    std::remove((path + ".layer" + std::to_string(l)).c_str());
  }
}

TEST(HnswTest, ExtendMatchesFullBuildBehaviour) {
  // Streaming insertion: index half the rows, Extend with the rest, and
  // verify searches cover the late insertions.
  const Dataset data = synth::UniformHypercube(600, 8, 13);
  HnswIndex index(HnswParams{});
  index.BuildPrefix(data, 300);
  EXPECT_EQ(index.inserted_count(), 300u);

  // A query equal to a not-yet-inserted row must not return that row.
  SearchParams params;
  params.k = 1;
  params.beam_width = 64;
  {
    const auto result = index.Search(data.Row(450), params);
    ASSERT_FALSE(result.neighbors.empty());
    EXPECT_LT(result.neighbors[0].id, 300u);
  }

  index.Extend(600);
  EXPECT_EQ(index.inserted_count(), 600u);
  {
    const auto result = index.Search(data.Row(450), params);
    ASSERT_FALSE(result.neighbors.empty());
    EXPECT_EQ(result.neighbors[0].id, 450u);
    EXPECT_FLOAT_EQ(result.neighbors[0].distance, 0.0f);
  }
}

TEST(HnswTest, ExtendedIndexStillHighRecall) {
  const Dataset data = synth::UniformHypercube(800, 12, 17);
  HnswIndex streamed(HnswParams{});
  streamed.BuildPrefix(data, 400);
  streamed.Extend(800);

  const Dataset queries = synth::UniformHypercube(20, 12, 18);
  const auto truth = eval::BruteForceKnn(data, queries, 10, 1);
  SearchParams params;
  params.k = 10;
  params.beam_width = 120;
  std::vector<std::vector<core::Neighbor>> results;
  for (VectorId q = 0; q < queries.size(); ++q) {
    results.push_back(streamed.Search(queries.Row(q), params).neighbors);
  }
  EXPECT_GE(eval::MeanRecall(results, truth, 10), 0.9);
}

TEST(HnswTest, SearchStatsPopulated) {
  const Dataset data = synth::UniformHypercube(300, 8, 11);
  HnswIndex index(HnswParams{});
  index.Build(data);
  SearchParams params;
  const SearchResult result = index.Search(data.Row(0), params);
  EXPECT_GT(result.stats.distance_computations, 0u);
  EXPECT_GT(result.stats.hops, 0u);
  EXPECT_GE(result.stats.elapsed_seconds, 0.0);
  ASSERT_FALSE(result.neighbors.empty());
  EXPECT_EQ(result.neighbors[0].id, 0u);  // Query is a dataset point.
}

}  // namespace
}  // namespace gass::methods
