// Method-specific invariants for the refine-a-base-graph family.

#include <gtest/gtest.h>

#include "eval/ground_truth.h"
#include "eval/recall.h"
#include "methods/nsg_index.h"
#include "methods/ssg_index.h"
#include "methods/vamana_index.h"
#include "synth/generators.h"

namespace gass::methods {
namespace {

using core::Dataset;
using core::VectorId;

TEST(VamanaTest, DegreesBoundedByR) {
  const Dataset data = synth::UniformHypercube(600, 12, 1);
  VamanaParams params;
  params.max_degree = 20;
  VamanaIndex index(params);
  index.Build(data);
  EXPECT_LE(index.graph().MaxDegree(), 20u + 1u);
}

TEST(VamanaTest, GraphConnectedFromMedoid) {
  const Dataset data = synth::UniformHypercube(500, 12, 3);
  VamanaIndex index(VamanaParams{});
  index.Build(data);
  // Vamana's random init plus bidirectional refinement keeps the graph
  // reachable from the medoid — the property its search depends on.
  EXPECT_GE(index.graph().ReachableFrom(index.medoid()),
            data.size() * 95 / 100);
}

TEST(VamanaTest, AlphaAboveOneAddsEdges) {
  const Dataset data = synth::UniformHypercube(500, 12, 5);
  VamanaParams tight;
  tight.alpha = 1.0f;
  VamanaParams relaxed;
  relaxed.alpha = 1.6f;
  VamanaIndex a(tight), b(relaxed);
  a.Build(data);
  b.Build(data);
  EXPECT_GE(b.graph().EdgeCount(), a.graph().EdgeCount());
}

TEST(NsgTest, ConnectivityRepairReachesEveryNode) {
  const Dataset data = synth::UniformHypercube(500, 12, 7);
  NsgIndex index(NsgParams{});
  index.Build(data);
  EXPECT_EQ(index.graph().ReachableFrom(index.medoid()), data.size());
}

TEST(NsgTest, RecallFloor) {
  synth::ClusterParams cluster_params;
  const Dataset data = synth::GaussianClusters(700, 16, cluster_params, 9);
  const Dataset queries =
      synth::GaussianClusters(15, 16, cluster_params, 10);
  const auto truth = eval::BruteForceKnn(data, queries, 10, 1);
  NsgIndex index(NsgParams{});
  index.Build(data);
  SearchParams params;
  params.k = 10;
  params.beam_width = 100;
  std::vector<std::vector<core::Neighbor>> results;
  for (VectorId q = 0; q < queries.size(); ++q) {
    results.push_back(index.Search(queries.Row(q), params).neighbors);
  }
  EXPECT_GE(eval::MeanRecall(results, truth, 10), 0.9);
}

TEST(SsgTest, DegreesBoundedAndSearchable) {
  const Dataset data = synth::UniformHypercube(500, 12, 11);
  SsgParams params;
  params.max_degree = 20;
  SsgIndex index(params);
  index.Build(data);
  // The DFS connectivity repair may push a few nodes past R by one edge.
  EXPECT_LE(index.graph().MaxDegree(), 20u + params.num_dfs_roots);
  const SearchResult result = index.Search(data.Row(0), SearchParams{});
  EXPECT_FALSE(result.neighbors.empty());
}

}  // namespace
}  // namespace gass::methods
