#include "methods/elpis_index.h"

#include <gtest/gtest.h>

#include "eval/ground_truth.h"
#include "eval/recall.h"
#include "synth/generators.h"

namespace gass::methods {
namespace {

using core::Dataset;
using core::VectorId;

struct ElpisWorkload {
  Dataset data;
  Dataset queries;
  eval::GroundTruth truth;

  ElpisWorkload() {
    synth::ClusterParams params;
    data = synth::GaussianClusters(900, 16, params, 1);
    queries = synth::GaussianClusters(15, 16, params, 2);
    truth = eval::BruteForceKnn(data, queries, 10, 1);
  }
};

ElpisParams SmallElpisParams() {
  ElpisParams params;
  params.tree.leaf_size = 200;
  params.tree.min_leaf_size = 16;
  params.nprobe = 6;
  return params;
}

TEST(ElpisTest, BuildsMultipleLeaves) {
  const ElpisWorkload w;
  ElpisIndex index(SmallElpisParams());
  index.Build(w.data);
  EXPECT_GE(index.num_leaves(), 4u);
  EXPECT_FALSE(index.HasBaseGraph());
}

TEST(ElpisTest, HighRecallWithModestProbes) {
  const ElpisWorkload w;
  ElpisIndex index(SmallElpisParams());
  index.Build(w.data);
  SearchParams params;
  params.k = 10;
  params.beam_width = 96;
  std::vector<std::vector<core::Neighbor>> results;
  for (VectorId q = 0; q < w.queries.size(); ++q) {
    results.push_back(index.Search(w.queries.Row(q), params).neighbors);
  }
  EXPECT_GE(eval::MeanRecall(results, w.truth, 10), 0.8);
}

TEST(ElpisTest, GlobalIdsReturned) {
  const ElpisWorkload w;
  ElpisIndex index(SmallElpisParams());
  index.Build(w.data);
  SearchParams params;
  params.k = 5;
  params.beam_width = 64;
  const SearchResult result = index.Search(w.data.Row(3), params);
  ASSERT_FALSE(result.neighbors.empty());
  EXPECT_EQ(result.neighbors[0].id, 3u);  // Global id, exact self-match.
  EXPECT_FLOAT_EQ(result.neighbors[0].distance, 0.0f);
}

TEST(ElpisTest, MoreProbesNeverReduceRecall) {
  const ElpisWorkload w;
  auto recall_with = [&](std::size_t nprobe) {
    ElpisParams params = SmallElpisParams();
    params.nprobe = nprobe;
    ElpisIndex index(params);
    index.Build(w.data);
    SearchParams search;
    search.k = 10;
    search.beam_width = 96;
    std::vector<std::vector<core::Neighbor>> results;
    for (VectorId q = 0; q < w.queries.size(); ++q) {
      results.push_back(index.Search(w.queries.Row(q), search).neighbors);
    }
    return eval::MeanRecall(results, w.truth, 10);
  };
  EXPECT_GE(recall_with(8) + 1e-9, recall_with(1));
}

TEST(ElpisTest, ProbeCountBounded) {
  const ElpisWorkload w;
  ElpisParams params = SmallElpisParams();
  params.nprobe = 2;
  ElpisIndex index(params);
  index.Build(w.data);
  SearchParams search;
  index.Search(w.queries.Row(0), search);
  EXPECT_LE(index.last_probed(), 2u);
  EXPECT_GE(index.last_probed(), 1u);
}

TEST(ElpisTest, ParallelLeafSearchMatchesSerial) {
  // The paper's 1B-scale advantage: ELPIS can search candidate leaves
  // concurrently for a single query. Results must not depend on the thread
  // count.
  const ElpisWorkload w;
  ElpisParams serial_params = SmallElpisParams();
  serial_params.search_threads = 1;
  ElpisParams parallel_params = SmallElpisParams();
  parallel_params.search_threads = 4;

  ElpisIndex serial(serial_params), parallel(parallel_params);
  serial.Build(w.data);
  parallel.Build(w.data);

  SearchParams params;
  params.k = 10;
  params.beam_width = 64;
  for (VectorId q = 0; q < w.queries.size(); ++q) {
    const auto a = serial.Search(w.queries.Row(q), params);
    const auto b = parallel.Search(w.queries.Row(q), params);
    ASSERT_EQ(a.neighbors.size(), b.neighbors.size());
    for (std::size_t i = 0; i < a.neighbors.size(); ++i) {
      EXPECT_EQ(a.neighbors[i].id, b.neighbors[i].id) << "query " << q;
    }
  }
}

TEST(ElpisTest, IndexBytesIncludeDuplicatedLeafData) {
  const ElpisWorkload w;
  ElpisIndex index(SmallElpisParams());
  index.Build(w.data);
  EXPECT_GE(index.IndexBytes(), w.data.SizeBytes());
}

}  // namespace
}  // namespace gass::methods
