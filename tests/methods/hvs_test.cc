#include "methods/hvs_index.h"

#include <gtest/gtest.h>

#include "eval/ground_truth.h"
#include "eval/recall.h"
#include "synth/generators.h"

namespace gass::methods {
namespace {

using core::Dataset;
using core::VectorId;

TEST(HvsTest, LevelsShrinkTowardTheTop) {
  const Dataset data = synth::MakeDatasetProxy("deep", 1200, 3);
  HvsParams params;
  params.num_levels = 2;
  HvsIndex index(params);
  index.Build(data);
  ASSERT_EQ(index.num_levels(), 2u);
  EXPECT_LT(index.LevelSize(0), index.LevelSize(1));  // Top is coarsest.
  EXPECT_LT(index.LevelSize(1), data.size());
}

TEST(HvsTest, RecallFloorWithQuantizedDescent) {
  synth::ClusterParams cluster_params;
  const Dataset data = synth::GaussianClusters(900, 16, cluster_params, 5);
  const Dataset queries = synth::GaussianClusters(15, 16, cluster_params, 6);
  const auto truth = eval::BruteForceKnn(data, queries, 10, 1);
  HvsIndex index(HvsParams{});
  index.Build(data);
  SearchParams params;
  params.k = 10;
  params.beam_width = 100;
  std::vector<std::vector<core::Neighbor>> results;
  for (VectorId q = 0; q < queries.size(); ++q) {
    results.push_back(index.Search(queries.Row(q), params).neighbors);
  }
  EXPECT_GE(eval::MeanRecall(results, truth, 10), 0.9);
}

TEST(HvsTest, DescentChargesAdcToHopsNotDistances) {
  const Dataset data = synth::MakeDatasetProxy("deep", 800, 7);
  HvsIndex index(HvsParams{});
  index.Build(data);
  SearchParams params;
  params.k = 5;
  params.beam_width = 32;
  const SearchResult result = index.Search(data.Row(0), params);
  // The quantized level scans register as hops (cheap ADC lookups) on top
  // of the beam-search hops; exact distances stay bounded by the beam.
  EXPECT_GT(result.stats.hops, index.LevelSize(0));
  EXPECT_GT(result.stats.distance_computations, 0u);
}

TEST(HvsTest, ExposesBaseGraph) {
  const Dataset data = synth::MakeDatasetProxy("deep", 400, 9);
  HvsIndex index(HvsParams{});
  index.Build(data);
  EXPECT_TRUE(index.HasBaseGraph());
  EXPECT_EQ(index.graph().size(), data.size());
  EXPECT_GT(index.IndexBytes(), 0u);
}

}  // namespace
}  // namespace gass::methods
