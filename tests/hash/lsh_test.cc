#include "hash/lsh.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/distance.h"
#include "synth/generators.h"

namespace gass::hash {
namespace {

using core::Dataset;
using core::VectorId;

TEST(LshTest, ExactDuplicateQueryHitsItsBucket) {
  const Dataset data = synth::UniformHypercube(400, 16, 1);
  const LshIndex index = LshIndex::Build(data, LshParams{}, 7);
  int hits = 0;
  for (VectorId q = 0; q < 50; ++q) {
    const auto candidates = index.Candidates(data.Row(q), 100);
    if (std::find(candidates.begin(), candidates.end(), q) !=
        candidates.end()) {
      ++hits;
    }
  }
  // A point always collides with itself in every table.
  EXPECT_EQ(hits, 50);
}

TEST(LshTest, CandidatesRespectCap) {
  const Dataset data = synth::UniformHypercube(400, 16, 1);
  LshParams params;
  params.hash_bits = 2;  // Coarse buckets -> many collisions.
  const LshIndex index = LshIndex::Build(data, params, 7);
  const auto candidates = index.Candidates(data.Row(0), 10);
  EXPECT_LE(candidates.size(), 10u);
}

TEST(LshTest, CandidatesDeduplicated) {
  const Dataset data = synth::UniformHypercube(200, 8, 3);
  LshParams params;
  params.num_tables = 8;
  params.hash_bits = 2;
  const LshIndex index = LshIndex::Build(data, params, 5);
  const auto candidates = index.Candidates(data.Row(0), 400);
  auto sorted = candidates;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(LshTest, ProjectedDistanceApproximatesExact) {
  const Dataset data = synth::IsotropicGaussian(300, 64, 9);
  LshParams params;
  params.projection_dim = 32;
  const LshIndex index = LshIndex::Build(data, params, 11);
  // JL-style concentration: the mean ratio of projected to exact squared
  // distance should be near 1.
  double ratio_sum = 0.0;
  int counted = 0;
  const auto projection = index.ProjectQuery(data.Row(0));
  for (VectorId u = 1; u < 100; ++u) {
    const float exact = core::L2Sq(data.Row(0), data.Row(u), data.dim());
    if (exact <= 0.0f) continue;
    ratio_sum += index.ProjectedDistance(projection, u) / exact;
    ++counted;
  }
  EXPECT_NEAR(ratio_sum / counted, 1.0, 0.3);
}

TEST(LshTest, MemoryReported) {
  const Dataset data = synth::UniformHypercube(100, 8, 3);
  const LshIndex index = LshIndex::Build(data, LshParams{}, 5);
  EXPECT_GT(index.MemoryBytes(), 0u);
  EXPECT_EQ(index.num_tables(), LshParams{}.num_tables);
}

}  // namespace
}  // namespace gass::hash
