#include "hash/qalsh_scan.h"

#include <gtest/gtest.h>

#include "eval/ground_truth.h"
#include "eval/recall.h"
#include "synth/generators.h"

namespace gass::hash {
namespace {

using core::Dataset;
using core::VectorId;

TEST(QalshTest, ReasonableRecallOnClusteredData) {
  synth::ClusterParams cluster_params;
  const Dataset data = synth::GaussianClusters(1000, 32, cluster_params, 1);
  const Dataset queries = data.Prefix(20);
  const auto truth = eval::BruteForceKnn(data, queries, 10, 1);

  QalshParams params;
  params.candidate_fraction = 0.2;
  const QalshScanner scanner = QalshScanner::Build(data, params, 7);
  std::vector<std::vector<core::Neighbor>> results;
  for (VectorId q = 0; q < queries.size(); ++q) {
    results.push_back(scanner.Search(data, queries.Row(q), 10));
  }
  EXPECT_GE(eval::MeanRecall(results, truth, 10), 0.5);
}

TEST(QalshTest, VerifiesFarFewerThanAllVectors) {
  const Dataset data = synth::UniformHypercube(2000, 16, 3);
  QalshParams params;
  params.candidate_fraction = 0.05;
  const QalshScanner scanner = QalshScanner::Build(data, params, 5);
  core::SearchStats stats;
  scanner.Search(data, data.Row(0), 5, &stats);
  EXPECT_GT(stats.distance_computations, 0u);
  // The verification budget is 5% of n plus rounding slack.
  EXPECT_LE(stats.distance_computations, 2000u * 0.05 + 64);
}

TEST(QalshTest, MoreBudgetNeverWorse) {
  const Dataset data = synth::UniformHypercube(1000, 16, 9);
  const Dataset queries = synth::UniformHypercube(15, 16, 10);
  const auto truth = eval::BruteForceKnn(data, queries, 5, 1);

  auto recall_with = [&](double fraction) {
    QalshParams params;
    params.candidate_fraction = fraction;
    const QalshScanner scanner = QalshScanner::Build(data, params, 7);
    std::vector<std::vector<core::Neighbor>> results;
    for (VectorId q = 0; q < queries.size(); ++q) {
      results.push_back(scanner.Search(data, queries.Row(q), 5));
    }
    return eval::MeanRecall(results, truth, 5);
  };
  EXPECT_GE(recall_with(0.5) + 1e-9, recall_with(0.02));
}

TEST(QalshTest, MemoryReported) {
  const Dataset data = synth::UniformHypercube(100, 8, 3);
  const QalshScanner scanner = QalshScanner::Build(data, QalshParams{}, 5);
  EXPECT_GT(scanner.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace gass::hash
