#include "synth/generators.h"

#include <cmath>

#include <gtest/gtest.h>

namespace gass::synth {
namespace {

TEST(GeneratorsTest, GaussianClustersShape) {
  ClusterParams params;
  const core::Dataset data = GaussianClusters(100, 16, params, 1);
  EXPECT_EQ(data.size(), 100u);
  EXPECT_EQ(data.dim(), 16u);
}

TEST(GeneratorsTest, GaussianClustersDeterministic) {
  ClusterParams params;
  const core::Dataset a = GaussianClusters(50, 8, params, 5);
  const core::Dataset b = GaussianClusters(50, 8, params, 5);
  for (core::VectorId i = 0; i < 50; ++i) {
    for (std::size_t d = 0; d < 8; ++d) {
      EXPECT_FLOAT_EQ(a.Row(i)[d], b.Row(i)[d]);
    }
  }
}

TEST(GeneratorsTest, DifferentSeedsDiffer) {
  ClusterParams params;
  const core::Dataset a = GaussianClusters(50, 8, params, 5);
  const core::Dataset b = GaussianClusters(50, 8, params, 6);
  bool any_diff = false;
  for (core::VectorId i = 0; i < 50 && !any_diff; ++i) {
    for (std::size_t d = 0; d < 8; ++d) {
      if (a.Row(i)[d] != b.Row(i)[d]) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorsTest, UniformHypercubeInUnitBox) {
  const core::Dataset data = UniformHypercube(200, 10, 3);
  for (core::VectorId i = 0; i < data.size(); ++i) {
    for (std::size_t d = 0; d < data.dim(); ++d) {
      EXPECT_GE(data.Row(i)[d], 0.0f);
      EXPECT_LT(data.Row(i)[d], 1.0f);
    }
  }
}

TEST(GeneratorsTest, PowerLawZeroExponentIsUniformish) {
  const core::Dataset data = PowerLaw(2000, 4, 0.0, 7);
  double mean = 0.0;
  for (core::VectorId i = 0; i < data.size(); ++i) {
    for (std::size_t d = 0; d < 4; ++d) mean += data.Row(i)[d];
  }
  mean /= 2000.0 * 4.0;
  EXPECT_NEAR(mean, 0.5, 0.02);  // Uniform [0,1) has mean 0.5.
}

TEST(GeneratorsTest, PowerLawSkewGrowsWithExponent) {
  // Density ∝ x^a on [0,1] has mean (a+1)/(a+2): 0.5, ~0.857, ~0.98.
  double means[3] = {0.0, 0.0, 0.0};
  const double exponents[3] = {0.0, 5.0, 50.0};
  for (int e = 0; e < 3; ++e) {
    const core::Dataset data = PowerLaw(2000, 4, exponents[e], 11);
    for (core::VectorId i = 0; i < data.size(); ++i) {
      for (std::size_t d = 0; d < 4; ++d) means[e] += data.Row(i)[d];
    }
    means[e] /= 2000.0 * 4.0;
  }
  EXPECT_LT(means[0], means[1]);
  EXPECT_LT(means[1], means[2]);
  EXPECT_NEAR(means[1], 6.0 / 7.0, 0.03);
  EXPECT_NEAR(means[2], 51.0 / 52.0, 0.01);
}

TEST(GeneratorsTest, RandomWalkSeriesZNormalized) {
  const core::Dataset data = RandomWalkSeries(20, 64, 13);
  for (core::VectorId i = 0; i < data.size(); ++i) {
    double sum = 0.0, sum_sq = 0.0;
    for (std::size_t d = 0; d < 64; ++d) {
      sum += data.Row(i)[d];
      sum_sq += static_cast<double>(data.Row(i)[d]) * data.Row(i)[d];
    }
    EXPECT_NEAR(sum / 64.0, 0.0, 1e-4);
    EXPECT_NEAR(sum_sq / 64.0, 1.0, 1e-3);
  }
}

TEST(GeneratorsTest, ProxyDimsMatchPaper) {
  EXPECT_EQ(ProxyDim("deep"), 96u);
  EXPECT_EQ(ProxyDim("sift"), 128u);
  EXPECT_EQ(ProxyDim("sald"), 128u);
  EXPECT_EQ(ProxyDim("seismic"), 256u);
  EXPECT_EQ(ProxyDim("text2img"), 200u);
  EXPECT_EQ(ProxyDim("gist"), 960u);
  EXPECT_EQ(ProxyDim("imagenet"), 256u);
}

class ProxyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ProxyTest, GeneratesRequestedSizeAndDim) {
  const std::string name = GetParam();
  const core::Dataset data = MakeDatasetProxy(name, 64, 21);
  EXPECT_EQ(data.size(), 64u);
  EXPECT_EQ(data.dim(), ProxyDim(name));
}

INSTANTIATE_TEST_SUITE_P(AllProxies, ProxyTest,
                         ::testing::Values("deep", "sift", "sald", "seismic",
                                           "text2img", "gist", "imagenet"));

}  // namespace
}  // namespace gass::synth
