#include "synth/workloads.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "synth/generators.h"

namespace gass::synth {
namespace {

TEST(SampleIdsTest, DistinctAndInRange) {
  const auto ids = SampleIds(100, 30, 5);
  EXPECT_EQ(ids.size(), 30u);
  std::set<core::VectorId> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), 30u);
  for (core::VectorId id : ids) EXPECT_LT(id, 100u);
}

TEST(SampleIdsTest, FullSampleIsPermutation) {
  const auto ids = SampleIds(20, 20, 9);
  std::set<core::VectorId> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), 20u);
}

TEST(SplitHoldOutTest, SizesAddUp) {
  core::Dataset data = UniformHypercube(100, 4, 3);
  const HoldOutSplit split = SplitHoldOut(std::move(data), 10, 7);
  EXPECT_EQ(split.base.size(), 90u);
  EXPECT_EQ(split.queries.size(), 10u);
  EXPECT_EQ(split.base.dim(), 4u);
}

TEST(SplitHoldOutTest, QueriesAbsentFromBase) {
  // Use unique integer markers so membership is checkable exactly.
  core::Dataset data(50, 1);
  for (core::VectorId i = 0; i < 50; ++i) {
    data.MutableRow(i)[0] = static_cast<float>(i);
  }
  const HoldOutSplit split = SplitHoldOut(std::move(data), 8, 11);
  std::set<float> base_values;
  for (core::VectorId i = 0; i < split.base.size(); ++i) {
    base_values.insert(split.base.Row(i)[0]);
  }
  for (core::VectorId q = 0; q < split.queries.size(); ++q) {
    EXPECT_EQ(base_values.count(split.queries.Row(q)[0]), 0u);
  }
  EXPECT_EQ(base_values.size(), 42u);
}

TEST(NoisyQueriesTest, ShapeAndScale) {
  const core::Dataset data = UniformHypercube(200, 16, 3);
  const core::Dataset queries = NoisyQueries(data, 20, 0.01, 5);
  EXPECT_EQ(queries.size(), 20u);
  EXPECT_EQ(queries.dim(), 16u);
}

TEST(NoisyQueriesTest, NoiseGrowsWithVariance) {
  const core::Dataset data = UniformHypercube(500, 16, 3);
  // Mean nearest-distance of noisy queries to the dataset grows with σ².
  auto mean_min_dist = [&](const core::Dataset& queries) {
    double total = 0.0;
    for (core::VectorId q = 0; q < queries.size(); ++q) {
      float best = 3.402823466e38f;
      for (core::VectorId i = 0; i < data.size(); ++i) {
        float acc = 0.0f;
        for (std::size_t d = 0; d < 16; ++d) {
          const float delta = queries.Row(q)[d] - data.Row(i)[d];
          acc += delta * delta;
        }
        best = std::min(best, acc);
      }
      total += std::sqrt(best);
    }
    return total / queries.size();
  };
  const double low = mean_min_dist(NoisyQueries(data, 30, 0.01, 5));
  const double high = mean_min_dist(NoisyQueries(data, 30, 0.1, 5));
  EXPECT_LT(low, high);
}

TEST(NoisyQueriesTest, ZeroVarianceReproducesDataVectors) {
  const core::Dataset data = UniformHypercube(50, 8, 3);
  const core::Dataset queries = NoisyQueries(data, 10, 0.0, 5);
  for (core::VectorId q = 0; q < queries.size(); ++q) {
    bool matched = false;
    for (core::VectorId i = 0; i < data.size() && !matched; ++i) {
      matched = std::equal(queries.Row(q), queries.Row(q) + 8, data.Row(i));
    }
    EXPECT_TRUE(matched);
  }
}

}  // namespace
}  // namespace gass::synth
