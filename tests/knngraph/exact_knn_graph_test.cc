#include "knngraph/exact_knn_graph.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "eval/ground_truth.h"
#include "synth/generators.h"

namespace gass::knngraph {
namespace {

using core::Dataset;
using core::DistanceComputer;
using core::Graph;
using core::VectorId;

TEST(ExactKnnGraphTest, EdgesMatchBruteForce) {
  const Dataset data = synth::UniformHypercube(150, 8, 1);
  DistanceComputer dc(data);
  const Graph graph = ExactKnnGraph(dc, 5, 1);
  ASSERT_EQ(graph.size(), data.size());
  for (VectorId v = 0; v < 20; ++v) {
    const auto truth = eval::BruteForceKnnOfPoint(data, v, 5);
    const auto& neighbors = graph.Neighbors(v);
    ASSERT_EQ(neighbors.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(neighbors[i], truth[i].id);
    }
  }
}

TEST(ExactKnnGraphTest, CountsDistances) {
  const Dataset data = synth::UniformHypercube(60, 4, 3);
  DistanceComputer dc(data);
  ExactKnnGraph(dc, 3, 1);
  EXPECT_EQ(dc.count(), 60u * 59u);
}

TEST(ExactKnnGraphTest, MultithreadedMatchesSerial) {
  const Dataset data = synth::UniformHypercube(120, 6, 5);
  DistanceComputer dc1(data), dc2(data);
  const Graph serial = ExactKnnGraph(dc1, 4, 1);
  const Graph parallel = ExactKnnGraph(dc2, 4, 3);
  for (VectorId v = 0; v < data.size(); ++v) {
    EXPECT_EQ(serial.Neighbors(v), parallel.Neighbors(v));
  }
}

TEST(SubsetKnnEdgesTest, EdgesStayInsideSubset) {
  const Dataset data = synth::UniformHypercube(100, 4, 7);
  DistanceComputer dc(data);
  Graph graph(100);
  std::vector<VectorId> subset = {2, 5, 8, 11, 14, 17, 20, 23};
  AddExactKnnEdgesOnSubset(dc, subset, 3, &graph);
  for (VectorId v : subset) {
    EXPECT_EQ(graph.Neighbors(v).size(), 3u);
    for (VectorId u : graph.Neighbors(v)) {
      EXPECT_NE(std::find(subset.begin(), subset.end(), u), subset.end());
    }
  }
  EXPECT_TRUE(graph.Neighbors(0).empty());
}

TEST(SubsetKnnEdgesTest, SmallSubsetClampsK) {
  const Dataset data = synth::UniformHypercube(10, 4, 7);
  DistanceComputer dc(data);
  Graph graph(10);
  AddExactKnnEdgesOnSubset(dc, {1, 2, 3}, 8, &graph);
  EXPECT_EQ(graph.Neighbors(1).size(), 2u);
}

TEST(SubsetKnnEdgesTest, MergingPartitionsDeduplicates) {
  const Dataset data = synth::UniformHypercube(30, 4, 9);
  DistanceComputer dc(data);
  Graph graph(30);
  std::vector<VectorId> subset = {0, 1, 2, 3, 4};
  AddExactKnnEdgesOnSubset(dc, subset, 2, &graph);
  const std::size_t before = graph.Neighbors(0).size();
  AddExactKnnEdgesOnSubset(dc, subset, 2, &graph);  // Same edges again.
  EXPECT_EQ(graph.Neighbors(0).size(), before);
}

TEST(KnnGraphRecallTest, ExactGraphScoresPerfect) {
  const Dataset data = synth::UniformHypercube(80, 4, 11);
  DistanceComputer dc(data);
  const Graph graph = ExactKnnGraph(dc, 5, 1);
  EXPECT_DOUBLE_EQ(KnnGraphRecall(data, graph, 5, 30, 1), 1.0);
}

TEST(KnnGraphRecallTest, RandomGraphScoresLow) {
  const Dataset data = synth::UniformHypercube(200, 8, 13);
  Graph random(200);
  core::Rng rng(5);
  for (VectorId v = 0; v < 200; ++v) {
    for (int e = 0; e < 5; ++e) {
      random.AddEdge(v, static_cast<VectorId>(rng.UniformInt(200)));
    }
  }
  EXPECT_LT(KnnGraphRecall(data, random, 5, 30, 1), 0.3);
}

}  // namespace
}  // namespace gass::knngraph
