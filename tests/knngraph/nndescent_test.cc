#include "knngraph/nndescent.h"

#include <gtest/gtest.h>

#include "knngraph/exact_knn_graph.h"
#include "synth/generators.h"

namespace gass::knngraph {
namespace {

using core::Dataset;
using core::DistanceComputer;
using core::Graph;
using core::VectorId;

TEST(NnDescentTest, HighGraphRecallOnEasyData) {
  synth::ClusterParams cluster_params;
  const Dataset data = synth::GaussianClusters(600, 16, cluster_params, 1);
  DistanceComputer dc(data);
  NnDescentParams params;
  params.k = 10;
  const Graph graph = NnDescent(dc, params, 7);
  EXPECT_GE(KnnGraphRecall(data, graph, 10, 50, 3), 0.85);
}

TEST(NnDescentTest, DegreesExactlyK) {
  const Dataset data = synth::UniformHypercube(200, 8, 3);
  DistanceComputer dc(data);
  NnDescentParams params;
  params.k = 8;
  const Graph graph = NnDescent(dc, params, 5);
  for (VectorId v = 0; v < graph.size(); ++v) {
    EXPECT_EQ(graph.Neighbors(v).size(), 8u);
  }
}

TEST(NnDescentTest, FarCheaperThanBruteForce) {
  const Dataset data = synth::UniformHypercube(1200, 8, 5);
  DistanceComputer dc(data);
  NnDescentParams params;
  params.k = 10;
  NnDescent(dc, params, 7);
  const std::uint64_t brute = 1200ULL * 1199ULL;
  EXPECT_LT(dc.count(), brute / 2);
}

TEST(NnDescentTest, GoodInitReducesWork) {
  const Dataset data = synth::UniformHypercube(500, 8, 7);
  // Exact graph as init: nothing to improve, so updates die out fast.
  DistanceComputer dc_exact(data);
  const Graph exact = ExactKnnGraph(dc_exact, 10, 1);

  NnDescentParams params;
  params.k = 10;
  DistanceComputer dc_good(data), dc_cold(data);
  NnDescentTrace good_trace, cold_trace;
  NnDescent(dc_good, params, 9, &exact, &good_trace);
  NnDescent(dc_cold, params, 9, nullptr, &cold_trace);
  ASSERT_FALSE(good_trace.updates_per_iteration.empty());
  ASSERT_FALSE(cold_trace.updates_per_iteration.empty());
  EXPECT_LT(good_trace.updates_per_iteration[0],
            cold_trace.updates_per_iteration[0]);
}

TEST(NnDescentTest, TraceRecordsConvergence) {
  const Dataset data = synth::UniformHypercube(400, 8, 11);
  DistanceComputer dc(data);
  NnDescentParams params;
  params.k = 10;
  params.iterations = 12;
  NnDescentTrace trace;
  NnDescent(dc, params, 13, nullptr, &trace);
  ASSERT_GE(trace.updates_per_iteration.size(), 2u);
  // Updates in the last recorded round are far below the first round.
  EXPECT_LT(trace.updates_per_iteration.back(),
            trace.updates_per_iteration.front() / 2);
}

TEST(NnDescentTest, ProducesValidGraph) {
  // The same invariant the snapshot loader enforces (every neighbor id in
  // range, no self-loops) must already hold straight out of the builder.
  const Dataset data = synth::UniformHypercube(500, 10, 21);
  DistanceComputer dc(data);
  NnDescentParams params;
  params.k = 12;
  const Graph graph = NnDescent(dc, params, 23);
  EXPECT_TRUE(graph.Validate().ok());
}

TEST(NnDescentTest, NoSelfLoopsNoDuplicates) {
  const Dataset data = synth::UniformHypercube(150, 6, 13);
  DistanceComputer dc(data);
  NnDescentParams params;
  params.k = 6;
  const Graph graph = NnDescent(dc, params, 15);
  for (VectorId v = 0; v < graph.size(); ++v) {
    const auto& list = graph.Neighbors(v);
    for (std::size_t i = 0; i < list.size(); ++i) {
      EXPECT_NE(list[i], v);
      for (std::size_t j = i + 1; j < list.size(); ++j) {
        EXPECT_NE(list[i], list[j]);
      }
    }
  }
}

}  // namespace
}  // namespace gass::knngraph
