// Long-running overload stress for serve::Frontend (ctest label: stress).
//
// Eight submitter threads drive a small frontend far past its queue bound
// while a FaultInjector adds latency spikes, forced rejections, and
// session-acquire failures. The invariant under test: every submission
// resolves exactly once, as full-effort, degraded, expired, or shed — and
// the aggregate accounting closes: accepted + shed + expired == submitted.
// Run under the tsan/asan presets (which enable GASS_STRESS_TESTS) to turn
// "the accounting closes" into "the accounting closes with no data races".

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "methods/hnsw_index.h"
#include "serve/fault_injector.h"
#include "serve/frontend.h"
#include "serve/retry.h"
#include "synth/generators.h"

namespace gass::serve {
namespace {

using methods::ServeOutcome;

struct OutcomeCounts {
  std::atomic<std::uint64_t> full{0};
  std::atomic<std::uint64_t> degraded{0};
  std::atomic<std::uint64_t> expired{0};
  std::atomic<std::uint64_t> rejected{0};

  void Count(ServeOutcome outcome) {
    switch (outcome) {
      case ServeOutcome::kFull: full.fetch_add(1); break;
      case ServeOutcome::kDegraded: degraded.fetch_add(1); break;
      case ServeOutcome::kExpired: expired.fetch_add(1); break;
      case ServeOutcome::kRejected: rejected.fetch_add(1); break;
    }
  }
  std::uint64_t Total() const {
    return full.load() + degraded.load() + expired.load() + rejected.load();
  }
};

class FrontendStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = synth::UniformHypercube(2000, 12, 31);
    queries_ = synth::UniformHypercube(64, 12, 32);
    index_ = std::make_unique<methods::HnswIndex>(methods::HnswParams{});
    index_->Build(data_);
    params_.k = 10;
    params_.beam_width = 64;
  }

  core::Dataset data_;
  core::Dataset queries_;
  std::unique_ptr<methods::HnswIndex> index_;
  methods::SearchParams params_;
};

TEST_F(FrontendStressTest, EightThreadsPastQueueBoundAccountingCloses) {
  constexpr std::size_t kSubmitters = 8;
  constexpr std::size_t kPerThread = 400;

  FaultPlan plan;
  plan.latency_spike_period = 97;  // Occasional 2ms stalls.
  plan.latency_spike_seconds = 0.002;
  plan.reject_period = 113;
  plan.session_fail_period = 131;
  FaultInjector faults(plan);

  FrontendOptions options;
  options.threads = 2;         // Few workers...
  options.queue_capacity = 16; // ...tiny queue: overload is guaranteed.
  options.deadline_seconds = 0.005;
  options.max_degrade_step = 3;
  options.min_service_samples = 16;
  Frontend frontend(*index_, options, &faults);

  OutcomeCounts counts;
  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::size_t q = (t * kPerThread + i) % queries_.size();
        counts.Count(frontend
                         .Submit(queries_.data() + q * queries_.dim(),
                                 queries_.dim(), params_)
                         .get()
                         .outcome);
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  frontend.Drain();

  const std::uint64_t submitted = kSubmitters * kPerThread;
  EXPECT_EQ(frontend.submitted(), submitted);
  // Every submission resolved exactly once.
  EXPECT_EQ(counts.Total(), submitted);
  // The frontend's own books agree with the client-side tally...
  EXPECT_EQ(frontend.metrics().shed_queries(), counts.rejected.load());
  EXPECT_EQ(frontend.metrics().expired_queries(), counts.expired.load());
  EXPECT_EQ(frontend.metrics().degraded_queries(), counts.degraded.load());
  EXPECT_EQ(frontend.metrics().queries(),
            counts.full.load() + counts.degraded.load() +
                counts.expired.load());
  // ...and the headline invariant closes: accepted + shed + expired ==
  // submitted, so no query was dropped silently or counted twice.
  const std::uint64_t accepted = counts.full.load() + counts.degraded.load();
  EXPECT_EQ(accepted + counts.rejected.load() + counts.expired.load(),
            submitted);
  // Degrade-step occupancy covers exactly the executed queries.
  std::uint64_t occupancy = 0;
  for (std::size_t s = 0; s < ServeMetrics::kMaxDegradeSteps; ++s) {
    occupancy += frontend.metrics().degrade_step_count(s);
  }
  EXPECT_EQ(occupancy, frontend.metrics().queries());
  // The queue respected its bound.
  EXPECT_LE(frontend.metrics().queue_depth_high_water(),
            options.queue_capacity);
  // The injected faults actually fired.
  EXPECT_GT(faults.forced_rejections(), 0u);
  EXPECT_GT(faults.forced_session_failures(), 0u);
  EXPECT_GT(faults.injected_spikes(), 0u);
}

TEST_F(FrontendStressTest, RetryLoopUnderOverloadStillCloses) {
  constexpr std::size_t kSubmitters = 8;
  constexpr std::size_t kPerThread = 100;

  FrontendOptions options;
  options.threads = 2;
  options.queue_capacity = 8;
  options.deadline_seconds = 0.020;
  Frontend frontend(*index_, options);

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_seconds = 1e-4;
  policy.max_backoff_seconds = 1e-3;

  std::atomic<std::uint64_t> answered{0}, gave_up{0};
  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      core::Rng rng(1000 + t);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::size_t q = (t * kPerThread + i) % queries_.size();
        const methods::SearchResult result = SearchWithRetry(
            frontend, queries_.data() + q * queries_.dim(), queries_.dim(),
            params_, core::Deadline::After(options.deadline_seconds), policy,
            &rng);
        if (result.outcome == ServeOutcome::kRejected) {
          gave_up.fetch_add(1);
        } else {
          answered.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  frontend.Drain();

  EXPECT_EQ(answered.load() + gave_up.load(), kSubmitters * kPerThread);
  // Retries mean total submissions >= client requests; the frontend's
  // executed + shed books must still cover every submission.
  EXPECT_EQ(frontend.metrics().queries() + frontend.metrics().shed_queries(),
            frontend.submitted());
  EXPECT_GT(answered.load(), 0u);
}

}  // namespace
}  // namespace gass::serve
